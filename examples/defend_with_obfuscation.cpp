// Defense demo (paper §5): the same structure attack that cracks the clear
// trace collapses once an ORAM-style obfuscating controller sits between
// the accelerator and DRAM — at a quantified traffic cost.
//
//   $ ./defend_with_obfuscation
#include <iostream>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "defense/obfuscation.h"
#include "models/zoo.h"
#include "support/rng.h"
#include "trace/stats.h"

int main() {
  using namespace sc;
  nn::Network victim = models::MakeLeNet(11);

  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  nn::Tensor image(victim.input_shape());
  Rng rng(3);
  for (std::size_t i = 0; i < image.numel(); ++i)
    image[i] = rng.GaussianF(1.0f);
  trace::Trace clear;
  accelerator.Run(victim, image, &clear);

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;

  const auto broken = attack::RunStructureAttack(clear, cfg);
  std::cout << "without defense: attack finds " << broken.num_structures()
            << " candidate structures (LeNet among them)\n";

  defense::ObfuscationConfig ocfg;
  ocfg.dummy_per_access = 2.0;
  const defense::ObfuscationResult shielded =
      defense::ObfuscateTrace(clear, ocfg);
  std::cout << "\nobfuscation cost: " << shielded.traffic_overhead
            << "x traffic, " << shielded.event_overhead << "x bus events\n";

  std::size_t candidates = 0;
  try {
    candidates =
        attack::RunStructureAttack(shielded.trace, cfg).num_structures();
    std::cout << "with defense: attack finds " << candidates
              << " structures\n";
  } catch (const sc::Error& e) {
    std::cout << "with defense: attack analysis fails outright (" << e.what()
              << ")\n";
  }
  std::cout << "\nThe paper's conclusion stands: hiding the access pattern "
               "works, but the overhead is why accelerators do not do it.\n";
  return candidates == 0 ? 0 : 1;
}
