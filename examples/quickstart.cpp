// Quickstart: build a small CNN victim, run it on the simulated
// accelerator, capture the memory trace, and reverse engineer the layer
// structure from nothing but addresses, access types and timing.
//
//   $ ./quickstart
#include <iostream>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/rng.h"
#include "trace/stats.h"

int main() {
  using namespace sc;

  // --- 1. The victim: a small CNN with secret structure & weights. ------
  nn::Network victim(nn::Shape{3, 32, 32});
  victim.Append(std::make_unique<nn::Conv2D>("conv1", 3, 16, 5, 1, 2));
  victim.Append(std::make_unique<nn::Relu>("relu1"));
  victim.Append(nn::MakeMaxPool("pool1", 2, 2));
  victim.Append(std::make_unique<nn::Conv2D>("conv2", 16, 24, 3, 1, 1));
  victim.Append(std::make_unique<nn::Relu>("relu2"));
  victim.Append(nn::MakeMaxPool("pool2", 2, 2));
  victim.Append(std::make_unique<nn::FullyConnected>("fc", 24 * 8 * 8, 10));
  Rng rng(1);
  nn::InitNetwork(victim, rng);

  // --- 2. Run it on the accelerator and capture the bus trace. ----------
  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  nn::Tensor image(victim.input_shape());
  for (std::size_t i = 0; i < image.numel(); ++i)
    image[i] = rng.GaussianF(1.0f);
  trace::Trace trace;
  accel::RunResult run = accelerator.Run(victim, image, &trace);
  std::cout << "accelerator finished in " << run.total_cycles
            << " cycles; bus trace: " << trace::ComputeStats(trace) << "\n";

  // --- 3. The adversary sees only the trace (plus input/output dims). ---
  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3 * 32 * 32;
  cfg.search.known_input_width = 32;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 10;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  const attack::StructureAttackResult result =
      attack::RunStructureAttack(trace, cfg);

  std::cout << "\nrecovered " << result.analysis.observations.size()
            << " layers from RAW dependencies:\n";
  for (const auto& o : result.analysis.observations)
    std::cout << "  " << o << "\n";

  std::cout << "\ncandidate structures: " << result.num_structures() << "\n";
  for (std::size_t i = 0; i < result.num_structures(); ++i) {
    std::cout << "candidate " << i << ":\n";
    for (const auto& layer : result.search.structures[i].layers)
      std::cout << "    " << layer.geom << "\n";
  }
  std::cout << "\nThe victim's conv1 really is 5x5/1 pad 2 with 16 filters "
               "and a 2x2/2 pool — check the list above.\n";
  return result.num_structures() > 0 ? 0 : 1;
}
