// Weight extraction through zero pruning (paper §4): drive a fused
// conv+ReLU+maxpool layer with crafted inputs, watch only the *number of
// non-zero values* the accelerator writes back, and recover every weight as
// a ratio to the bias — then pin the bias itself with the threshold knob.
//
//   $ ./steal_weights
#include <cmath>
#include <iostream>

#include "attack/weights/attack.h"
#include "models/zoo.h"
#include "support/rng.h"

int main() {
  using namespace sc;

  // --- victim: one fused conv stage with secret weights ----------------
  models::ConvStageVictimSpec spec;
  spec.in_depth = 2;
  spec.in_width = 16;
  spec.out_depth = 4;
  spec.filter = 3;
  spec.stride = 1;
  spec.pad = 0;
  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 2;
  spec.pool_stride = 2;

  nn::Tensor weights(nn::Shape{4, 2, 3, 3});
  nn::Tensor bias(nn::Shape{4});
  Rng rng(7);
  for (std::size_t i = 0; i < weights.numel(); ++i)
    weights[i] = rng.GaussianF(0.5f);
  weights.at(2, 0, 1, 1) = 0.0f;  // plant a pruned (zero) weight
  for (int k = 0; k < 4; ++k) bias.at(k) = -rng.UniformF(0.1f, 0.4f);

  nn::Network victim = models::MakeConvStageVictim(spec, weights, bias);

  // --- the adversary's view: zero-pruned write volumes -----------------
  attack::AcceleratorOracle oracle(victim, victim.num_nodes() - 1,
                                   accel::AcceleratorConfig{});

  attack::SparseConvOracle::StageSpec geometry;  // public facts only
  geometry.in_depth = 2;
  geometry.in_width = 16;
  geometry.filter = 3;
  geometry.stride = 1;
  geometry.pool = nn::PoolKind::kMax;
  geometry.pool_window = 2;
  geometry.pool_stride = 2;

  attack::WeightAttack attack(oracle, geometry,
                              attack::WeightAttackConfig{});

  std::cout << "recovering w/b for 4 filters x 2 channels x 3x3 weights\n";
  float max_err = 0.0f;
  for (int k = 0; k < 4; ++k) {
    const attack::RecoveredFilter rec = attack.RecoverFilter(k);
    std::cout << "filter " << k << " (bias "
              << (rec.bias_positive ? "positive" : "negative") << ", "
              << rec.queries << " oracle queries):\n";
    for (int c = 0; c < 2; ++c) {
      for (int i = 0; i < 3; ++i) {
        std::cout << "   ";
        for (int j = 0; j < 3; ++j) {
          const float truth = weights.at(k, c, i, j) / bias.at(k);
          const float got = rec.ratio.at(c, i, j);
          max_err = std::max(max_err, std::fabs(got - truth));
          std::cout << (rec.zero_at(c, i, j, 3) ? " [zero]  "
                                                : "")
                    << (rec.zero_at(c, i, j, 3) ? "" : " ") << got << " ";
        }
        std::cout << "\n";
      }
    }
  }
  std::cout << "\nmax |recovered - true| ratio error: " << max_err
            << " (paper reports < 2^-10 = " << 1.0 / 1024 << ")\n";
  std::cout << "note the planted zero weight at filter 2, channel 0, "
               "position (1,1) — flagged by its missing zero-crossing.\n";
  return max_err < 1.0f / 1024.0f ? 0 : 1;
}
