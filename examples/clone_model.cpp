// The paper's end-to-end objective: duplicate a secret model.
//
// Pipeline: memory trace -> layer structure (attack §3) -> per-weight
// ratios + absolute bias via the threshold knob (attack §4) -> rebuild,
// serialize and validate a functional clone of the victim.
//
//   $ ./clone_model
#include <iostream>
#include <sstream>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/serialize.h"
#include "support/rng.h"

int main() {
  using namespace sc;

  // Victim: a fused conv stage with secret parameters.
  models::ConvStageVictimSpec spec;
  spec.in_depth = 3;
  spec.in_width = 16;
  spec.out_depth = 6;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{6, 3, 3, 3});
  nn::Tensor b(nn::Shape{6});
  Rng rng(2026);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.4f);
  for (int k = 0; k < 6; ++k)
    b.at(k) = (k % 2 ? -1.0f : 1.0f) * rng.UniformF(0.1f, 0.3f);
  nn::Network victim = models::MakeConvStageVictim(spec, w, b);
  std::cout << "victim: conv 3x3, 3->6 channels on 16x16 (parameters "
               "secret)\n";

  // Step 1: structure from the bus trace.
  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor probe(victim.input_shape());
  for (std::size_t i = 0; i < probe.numel(); ++i)
    probe[i] = rng.GaussianF(1.0f);
  accelerator.Run(victim, probe, &tr);

  attack::StructureAttackConfig scfg;
  scfg.analysis.known_input_elems = 3 * 16 * 16;
  scfg.search.known_input_width = 16;
  scfg.search.known_input_depth = 3;
  scfg.search.timing_tolerance = 0.0;
  const auto structure = attack::RunStructureAttack(tr, scfg);
  std::cout << "step 1: " << structure.num_structures()
            << " structure candidates from " << tr.size() << " bus events\n";
  if (structure.num_structures() == 0) return 1;

  // In a full campaign every candidate is cloned and validated against
  // chosen inputs; the demonstration picks the one whose geometry the
  // weight attack then confirms.
  const nn::LayerGeometry& g = structure.search.structures[0].layers[0].geom;
  std::cout << "        trying candidate: " << g << "\n";

  // Step 2: absolute weights via zero pruning + threshold knob.
  attack::AcceleratorOracle oracle(victim, victim.num_nodes() - 1,
                                   accel::AcceleratorConfig{});
  attack::SparseConvOracle::StageSpec geo;
  geo.in_depth = g.d_ifm;
  geo.in_width = g.w_ifm;
  geo.filter = g.f_conv;
  geo.stride = g.s_conv;
  geo.pad = g.p_conv;
  attack::WeightAttack wattack(oracle, geo, attack::WeightAttackConfig{});

  auto conv = std::make_unique<nn::Conv2D>("cloned", g.d_ifm, g.d_ofm,
                                           g.f_conv, g.s_conv, g.p_conv);
  std::uint64_t queries = 0;
  for (int k = 0; k < g.d_ofm; ++k) {
    const attack::RecoveredFilter ratios = wattack.RecoverFilter(k);
    queries += ratios.queries;
    const auto abs = wattack.RecoverAbsolute(k, ratios);
    if (!abs) {
      std::cout << "filter " << k << ": absolute recovery failed\n";
      return 1;
    }
    conv->bias().at(k) = abs->bias;
    for (int c = 0; c < g.d_ifm; ++c)
      for (int i = 0; i < g.f_conv; ++i)
        for (int j = 0; j < g.f_conv; ++j)
          conv->weights().at(k, c, i, j) = abs->weights.at(c, i, j);
  }
  std::cout << "step 2: weights + biases recovered with " << queries
            << "+ oracle queries\n";

  // Step 3: assemble, persist and validate the clone.
  nn::Network clone(victim.input_shape());
  clone.Append(std::move(conv));
  clone.Append(std::make_unique<nn::Relu>("relu"));
  nn::SaveNetworkFile(clone, "stolen_model.scnn");
  nn::Network shipped = nn::LoadNetworkFile("stolen_model.scnn");

  float worst = 0.0f;
  for (int t = 0; t < 16; ++t) {
    nn::Tensor x(victim.input_shape());
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
    worst = std::max(worst, nn::Tensor::MaxAbsDiff(victim.ForwardFinal(x),
                                                   shipped.ForwardFinal(x)));
  }
  std::cout << "step 3: clone saved to stolen_model.scnn; max output "
               "deviation from the victim over 16 random inputs: "
            << worst << "\n";
  std::cout << (worst < 5e-3f ? "model duplicated.\n"
                              : "clone diverges - attack failed.\n");
  return worst < 5e-3f ? 0 : 1;
}
