// Full structure-extraction walkthrough on AlexNet (paper §3): trace
// capture, RAW segmentation, region analysis, constraint solving, timing
// filter, and the final candidate list — then rebuilding a trainable clone
// of one candidate.
//
//   $ ./steal_structure
#include <iostream>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "models/zoo.h"
#include "nn/init.h"
#include "support/rng.h"

int main() {
  using namespace sc;
  std::cout << "victim: AlexNet (structure + weights secret)\n";
  nn::Network victim = models::MakeAlexNet(2024);

  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  nn::Tensor image(victim.input_shape());
  Rng rng(99);
  for (std::size_t i = 0; i < image.numel(); ++i)
    image[i] = rng.GaussianF(1.0f);
  trace::Trace trace;
  accelerator.Run(victim, image, &trace);
  std::cout << "captured " << trace.size() << " bus events\n";

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 227 * 227;
  cfg.search.known_input_width = 227;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  const attack::StructureAttackResult result =
      attack::RunStructureAttack(trace, cfg);

  std::cout << "\nstep 1-2 (Algorithm 1): layer boundaries and sizes\n";
  for (const auto& o : result.analysis.observations)
    std::cout << "  " << o << "\n";

  std::cout << "\nstep 3-5: " << result.num_structures()
            << " structures survive the constraints and the timing filter "
               "(paper: 24)\n";

  if (result.num_structures() == 0) return 1;

  // Rebuild candidate 0 as a trainable network at 1/8 channel width.
  attack::InstantiateOptions opts;
  opts.channel_divisor = 8;
  opts.num_classes = 10;
  nn::Network clone = attack::InstantiateCandidate(
      result.analysis.observations, result.search.structures[0], opts);
  std::cout << "\nrebuilt candidate 0 as a trainable clone: "
            << clone.num_nodes() << " nodes, input "
            << clone.input_shape().ToString() << ", output "
            << clone.final_shape().ToString() << "\n";
  std::cout << "(train it with nn::train::Train — see the fig4 bench for "
               "the full ranking experiment)\n";
  return 0;
}
