#include "accel/accelerator.h"

#include <gtest/gtest.h>

#include "accel/stage.h"
#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/rng.h"
#include "trace/interval.h"
#include "trace/stats.h"

namespace sc::accel {
namespace {

using nn::Shape;
using nn::Tensor;

nn::Network SmallCnn(std::uint64_t seed) {
  nn::Network net(Shape{3, 16, 16});
  net.Append(std::make_unique<nn::Conv2D>("c1", 3, 8, 3, 1, 1));
  net.Append(std::make_unique<nn::Relu>("r1"));
  net.Append(nn::MakeMaxPool("p1", 2, 2));
  net.Append(std::make_unique<nn::Conv2D>("c2", 8, 12, 3, 1, 0));
  net.Append(std::make_unique<nn::Relu>("r2"));
  net.Append(std::make_unique<nn::FullyConnected>("fc", 12 * 6 * 6, 10));
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

// Fire-module style branch/concat/bypass network.
nn::Network BranchyCnn(std::uint64_t seed) {
  nn::Network net(Shape{2, 12, 12});
  int c0 = net.Add(std::make_unique<nn::Conv2D>("c0", 2, 8, 3, 1, 1),
                   {nn::kInputNode});
  int r0 = net.Add(std::make_unique<nn::Relu>("r0"), {c0});
  int s = net.Add(std::make_unique<nn::Conv2D>("squeeze", 8, 4, 1, 1, 0),
                  {r0});
  int rs = net.Add(std::make_unique<nn::Relu>("rs"), {s});
  int e1 = net.Add(std::make_unique<nn::Conv2D>("e1", 4, 4, 1, 1, 0), {rs});
  int re1 = net.Add(std::make_unique<nn::Relu>("re1"), {e1});
  int e3 = net.Add(std::make_unique<nn::Conv2D>("e3", 4, 4, 3, 1, 1), {rs});
  int re3 = net.Add(std::make_unique<nn::Relu>("re3"), {e3});
  int cat = net.Add(std::make_unique<nn::Concat>("cat", 2), {re1, re3});
  int byp = net.Add(std::make_unique<nn::EltwiseAdd>("byp", 2), {cat, r0});
  net.Add(nn::MakeMaxPool("pool", 3, 2), {byp});
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

Tensor RandomInput(const Shape& s, std::uint64_t seed) {
  Tensor t(s);
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

TEST(Stages, FusesConvReluPool) {
  nn::Network net = SmallCnn(1);
  auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 3u);  // conv+relu+pool, conv+relu, fc
  EXPECT_EQ(stages[0].kind, StageKind::kConv);
  EXPECT_NE(stages[0].relu_node, -1);
  EXPECT_NE(stages[0].pool_node, -1);
  EXPECT_EQ(stages[1].pool_node, -1);
  EXPECT_EQ(stages[2].kind, StageKind::kFc);
}

TEST(Stages, ConcatDissolvesAndEltwiseIsAStage) {
  nn::Network net = BranchyCnn(1);
  auto stages = BuildStages(net);
  // c0, squeeze, e1, e3, eltwise, pool — concat is not a stage.
  ASSERT_EQ(stages.size(), 6u);
  EXPECT_EQ(stages[4].kind, StageKind::kEltwise);
  EXPECT_EQ(stages[5].kind, StageKind::kPool);
}

TEST(Stages, RejectsStandaloneRelu) {
  nn::Network net(Shape{1, 4, 4});
  int a = net.Add(std::make_unique<nn::Conv2D>("c", 1, 2, 1, 1, 0),
                  {nn::kInputNode});
  int r = net.Add(std::make_unique<nn::Relu>("r"), {a});
  // Two consumers of the conv: the relu cannot fuse.
  net.Add(std::make_unique<nn::EltwiseAdd>("add", 2), {a, r});
  EXPECT_THROW(BuildStages(net), sc::Error);
}

TEST(AddressMap, DisjointGuardedRegions) {
  nn::Network net = SmallCnn(2);
  AddressMap map(net, 4, 4096, 4096);
  std::vector<Region> regions{map.input()};
  for (int i = 0; i < net.num_nodes(); ++i) {
    if (map.weights(i).valid()) regions.push_back(map.weights(i));
    // Only non-aliased outputs must be disjoint; SmallCnn has no concat.
    regions.push_back(map.ofm(i));
  }
  for (std::size_t a = 0; a < regions.size(); ++a) {
    for (std::size_t b = a + 1; b < regions.size(); ++b) {
      const bool disjoint = regions[a].end() + 4096 <= regions[b].base ||
                            regions[b].end() + 4096 <= regions[a].base;
      EXPECT_TRUE(disjoint) << "regions " << a << " and " << b << " overlap";
    }
  }
}

TEST(AddressMap, ConcatAliasing) {
  nn::Network net = BranchyCnn(3);
  AddressMap map(net, 4, 4096, 4096);
  // Nodes: 0 c0, 1 r0, 2 squeeze, 3 rs, 4 e1, 5 re1, 6 e3, 7 re3, 8 cat...
  const Region cat = map.ofm(8);
  const Region left = map.ofm(5);
  const Region right = map.ofm(7);
  EXPECT_EQ(left.base, cat.base);
  EXPECT_EQ(right.base, cat.base + left.bytes);
  EXPECT_EQ(cat.bytes, left.bytes + right.bytes);
}

TEST(Accelerator, MatchesReferenceInference) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    nn::Network net = SmallCnn(seed);
    const Tensor x = RandomInput(net.input_shape(), seed + 100);
    const Tensor ref = net.ForwardFinal(x);
    Accelerator accel{AcceleratorConfig{}};
    trace::Trace tr;
    RunResult run = accel.Run(net, x, &tr);
    EXPECT_EQ(Tensor::MaxAbsDiff(ref, run.output), 0.0f);
    EXPECT_FALSE(tr.empty());
    EXPECT_GT(run.total_cycles, 0u);
  }
}

TEST(Accelerator, MatchesReferenceOnBranchyNetwork) {
  nn::Network net = BranchyCnn(4);
  const Tensor x = RandomInput(net.input_shape(), 42);
  const Tensor ref = net.ForwardFinal(x);
  Accelerator accel{AcceleratorConfig{}};
  RunResult run = accel.Run(net, x, nullptr);
  EXPECT_EQ(Tensor::MaxAbsDiff(ref, run.output), 0.0f);
  ASSERT_EQ(run.stages.size(), 6u);
}

TEST(Accelerator, PruningDoesNotChangeValues) {
  nn::Network net = BranchyCnn(5);
  const Tensor x = RandomInput(net.input_shape(), 7);
  AcceleratorConfig cfg;
  cfg.zero_pruning = true;
  Accelerator accel{cfg};
  RunResult run = accel.Run(net, x, nullptr);
  EXPECT_EQ(Tensor::MaxAbsDiff(net.ForwardFinal(x), run.output), 0.0f);
}

TEST(Accelerator, TraceCoversAllTensors) {
  nn::Network net = SmallCnn(6);
  const Tensor x = RandomInput(net.input_shape(), 8);
  Accelerator accel{AcceleratorConfig{}};
  trace::Trace tr;
  accel.Run(net, x, &tr);
  const AddressMap map = accel.BuildMap(net);

  trace::IntervalSet reads, writes;
  for (const auto& e : tr) {
    if (e.op == trace::MemOp::kRead)
      reads.Insert(e.addr, e.end());
    else
      writes.Insert(e.addr, e.end());
  }
  // The whole input is read; every OFM is written in full; weights are
  // fully read and never written.
  auto covered = [&](const trace::IntervalSet& s, const Region& r) {
    std::uint64_t bytes = 0;
    for (const auto& part : s.parts()) {
      const std::uint64_t lo = std::max(part.lo, r.base);
      const std::uint64_t hi = std::min(part.hi, r.end());
      if (lo < hi) bytes += hi - lo;
    }
    return bytes;
  };
  EXPECT_EQ(covered(reads, map.input()), map.input().bytes);
  for (int i = 0; i < net.num_nodes(); ++i) {
    if (map.weights(i).valid()) {
      EXPECT_EQ(covered(reads, map.weights(i)), map.weights(i).bytes);
      EXPECT_EQ(covered(writes, map.weights(i)), 0u);
    }
  }
  const std::vector<Stage> stages = BuildStages(net);
  for (const Stage& s : stages) {
    const Region r = map.ofm(s.output_node);
    EXPECT_EQ(covered(writes, r), r.bytes) << "stage " << s.main_node;
  }
}

TEST(Accelerator, CompressedWriteVolumeLeaksNonZeroCount) {
  nn::Network net = SmallCnn(9);
  const Tensor x = RandomInput(net.input_shape(), 10);
  AcceleratorConfig cfg;
  cfg.zero_pruning = true;
  Accelerator accel{cfg};
  trace::Trace tr;
  RunResult run = accel.Run(net, x, &tr);
  const AddressMap map = accel.BuildMap(net);

  const auto per_elem = static_cast<std::uint64_t>(cfg.element_bytes +
                                                   cfg.prune_index_bytes);
  const auto header = static_cast<std::uint64_t>(cfg.prune_header_bytes);
  for (const StageStats& s : run.stages) {
    const Region r = map.ofm(s.output_node);
    std::uint64_t written = 0, bursts = 0;
    for (const auto& e : tr) {
      if (e.op != trace::MemOp::kWrite) continue;
      if (e.addr < r.base || e.addr >= r.end()) continue;
      written += e.bytes;
      ++bursts;
    }
    // written = bursts*header + nnz*per_elem — exactly invertible.
    EXPECT_EQ(written, bursts * header + s.ofm_nonzeros * per_elem)
        << "stage " << s.stage_index;
    EXPECT_LE(s.ofm_nonzeros, s.ofm_elems);
  }
}

TEST(Accelerator, StatsChannelCountsSumToTotal) {
  nn::Network net = BranchyCnn(11);
  const Tensor x = RandomInput(net.input_shape(), 12);
  Accelerator accel{AcceleratorConfig{}};
  RunResult run = accel.Run(net, x, nullptr);
  for (const StageStats& s : run.stages) {
    std::size_t sum = 0;
    for (std::size_t c : s.ofm_channel_nonzeros) sum += c;
    EXPECT_EQ(sum, s.ofm_nonzeros);
  }
}

TEST(Accelerator, ThresholdOverridePrunesMore) {
  nn::Network net = SmallCnn(13);
  const Tensor x = RandomInput(net.input_shape(), 14);
  AcceleratorConfig cfg;
  Accelerator plain{cfg};
  const std::size_t base_nnz =
      plain.Run(net, x, nullptr).stages[0].ofm_nonzeros;
  cfg.relu_threshold_override = 1.0f;
  Accelerator strict{cfg};
  const std::size_t strict_nnz =
      strict.Run(net, x, nullptr).stages[0].ofm_nonzeros;
  EXPECT_LT(strict_nnz, base_nnz);
}

TEST(Accelerator, StageTimingMonotoneInMacs) {
  nn::Network net = SmallCnn(15);
  const Tensor x = RandomInput(net.input_shape(), 16);
  Accelerator accel{AcceleratorConfig{}};
  RunResult run = accel.Run(net, x, nullptr);
  // Stage cycle spans are positive and orderd.
  std::uint64_t prev_end = 0;
  for (const StageStats& s : run.stages) {
    EXPECT_GE(s.start_cycle, prev_end);
    EXPECT_GT(s.end_cycle, s.start_cycle);
    prev_end = s.end_cycle;
  }
}

}  // namespace
}  // namespace sc::accel
