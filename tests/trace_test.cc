#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"
#include "trace/interval.h"
#include "trace/stats.h"

namespace sc::trace {
namespace {

TEST(Trace, AppendAndAccessors) {
  Trace t;
  EXPECT_TRUE(t.empty());
  t.Append(10, 0x1000, 64, MemOp::kRead);
  t.Append(12, 0x2000, 128, MemOp::kWrite);
  t.Append(12, 0x3000, 64, MemOp::kRead);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.last_cycle(), 12u);
  EXPECT_EQ(t.bytes_read(), 128u);
  EXPECT_EQ(t.bytes_written(), 128u);
  EXPECT_EQ(t[1].end(), 0x2000u + 128u);
}

TEST(Trace, RejectsNonMonotonicCycles) {
  Trace t;
  t.Append(10, 0x1000, 64, MemOp::kRead);
  EXPECT_THROW(t.Append(9, 0x1000, 64, MemOp::kRead), sc::Error);
}

TEST(Trace, RejectsEmptyBurst) {
  Trace t;
  EXPECT_THROW(t.Append(0, 0x1000, 0, MemOp::kRead), sc::Error);
}

TEST(Trace, CsvRoundTrip) {
  Trace t;
  t.Append(1, 4096, 64, MemOp::kRead);
  t.Append(5, 8192, 256, MemOp::kWrite);
  std::stringstream ss;
  t.WriteCsv(ss);
  Trace back = Trace::ReadCsv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], t[0]);
  EXPECT_EQ(back[1], t[1]);
}

TEST(Trace, CsvRejectsMalformedInput) {
  {
    std::stringstream ss("not,a,header\n");
    EXPECT_THROW(Trace::ReadCsv(ss), sc::Error);
  }
  {
    std::stringstream ss("cycle,addr,bytes,op\n1,2,3,X\n");
    EXPECT_THROW(Trace::ReadCsv(ss), sc::Error);
  }
  {
    std::stringstream ss("cycle,addr,bytes,op\n1,2,0,R\n");
    EXPECT_THROW(Trace::ReadCsv(ss), sc::Error);
  }
  {
    std::stringstream ss("cycle,addr,bytes,op\ngarbage\n");
    EXPECT_THROW(Trace::ReadCsv(ss), sc::Error);
  }
  {
    std::stringstream ss("");
    EXPECT_THROW(Trace::ReadCsv(ss), sc::Error);
  }
}

TEST(Trace, CsvEdgeCasesNameOffendingLine) {
  struct Case {
    const char* name;
    const char* csv;
    const char* want;  // substring the error message must contain
  };
  const Case kCases[] = {
      {"truncated row", "cycle,addr,bytes,op\n1,2,64,R\n5,6\n",
       "malformed CSV row 3"},
      {"missing op", "cycle,addr,bytes,op\n1,2,64\n", "malformed CSV row 2"},
      {"zero-byte burst", "cycle,addr,bytes,op\n1,2,64,R\n2,4,0,W\n",
       "zero-byte burst on row 3"},
      {"non-monotone cycles", "cycle,addr,bytes,op\n9,0,64,R\n3,0,64,R\n",
       "non-monotone cycle on row 3"},
      {"bad op letter", "cycle,addr,bytes,op\n1,2,64,Q\n", "op 'Q' on row 2"},
      {"glued trailing field", "cycle,addr,bytes,op\n1,2,64,R,x\n",
       "on row 2"},
      {"trailing data", "cycle,addr,bytes,op\n1,2,64,R x\n",
       "trailing data 'x' on row 2"},
      {"oversized burst", "cycle,addr,bytes,op\n1,2,4294967296,R\n",
       "bad burst size on row 2"},
  };
  for (const Case& tc : kCases) {
    SCOPED_TRACE(tc.name);
    std::stringstream ss(tc.csv);
    try {
      Trace::ReadCsv(ss);
      FAIL() << "expected rejection";
    } catch (const sc::Error& e) {
      EXPECT_NE(std::string(e.what()).find(tc.want), std::string::npos)
          << "got: " << e.what();
    }
  }
}

TEST(Trace, CsvBlankLinesSkippedButCounted) {
  // Blank lines are tolerated; line numbers in errors still refer to the
  // physical file line.
  std::stringstream ok("cycle,addr,bytes,op\n1,2,64,R\n\n2,3,64,W\n");
  const Trace t = Trace::ReadCsv(ok);
  EXPECT_EQ(t.size(), 2u);

  std::stringstream bad("cycle,addr,bytes,op\n1,2,64,R\n\n0,3,64,W\n");
  try {
    Trace::ReadCsv(bad);
    FAIL() << "expected rejection";
  } catch (const sc::Error& e) {
    EXPECT_NE(std::string(e.what()).find("row 4"), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(IntervalSet, InsertAndMerge) {
  IntervalSet s;
  s.Insert(10, 20);
  s.Insert(30, 40);
  EXPECT_EQ(s.parts().size(), 2u);
  EXPECT_EQ(s.CoveredBytes(), 20u);
  s.Insert(20, 30);  // adjacency merges
  EXPECT_EQ(s.parts().size(), 1u);
  EXPECT_EQ(s.CoveredBytes(), 30u);
  s.Insert(5, 50);  // engulfing
  EXPECT_EQ(s.parts().size(), 1u);
  EXPECT_EQ(s.CoveredBytes(), 45u);
}

TEST(IntervalSet, ContainsAndOverlaps) {
  IntervalSet s;
  s.Insert(100, 200);
  s.Insert(300, 400);
  EXPECT_TRUE(s.Contains(100));
  EXPECT_FALSE(s.Contains(200));
  EXPECT_TRUE(s.Contains(399));
  EXPECT_FALSE(s.Contains(250));
  EXPECT_TRUE(s.OverlapsInterval({150, 250}));
  EXPECT_TRUE(s.OverlapsInterval({250, 301}));
  EXPECT_FALSE(s.OverlapsInterval({200, 300}));
  EXPECT_FALSE(s.OverlapsInterval({0, 0}));
}

TEST(IntervalSet, EmptyInsertIsNoop) {
  IntervalSet s;
  s.Insert(5, 5);
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.Insert(10, 5), sc::Error);
}

TEST(IntervalSet, Hull) {
  IntervalSet s;
  EXPECT_THROW(s.Hull(), sc::Error);
  s.Insert(10, 20);
  s.Insert(100, 110);
  EXPECT_EQ(s.Hull(), (AddrInterval{10, 110}));
}

TEST(IntervalSet, SplitRegions) {
  IntervalSet s;
  s.Insert(0, 100);
  s.Insert(150, 200);    // gap 50
  s.Insert(5000, 6000);  // gap 4800
  auto regions = s.SplitRegions(100);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0], (AddrInterval{0, 200}));
  EXPECT_EQ(regions[1], (AddrInterval{5000, 6000}));
  auto fine = s.SplitRegions(10);
  EXPECT_EQ(fine.size(), 3u);
}

TEST(IntervalSet, RandomizedInsertMatchesNaive) {
  // Property: covered bytes equal a bitmap-based reference.
  std::vector<bool> bitmap(512, false);
  IntervalSet s;
  unsigned state = 12345;
  for (int iter = 0; iter < 200; ++iter) {
    state = state * 1664525u + 1013904223u;
    const auto lo = state % 500;
    state = state * 1664525u + 1013904223u;
    const auto len = state % 12;
    s.Insert(lo, lo + len);
    for (std::uint64_t b = lo; b < lo + len; ++b) bitmap[b] = true;
    std::uint64_t expect = 0;
    for (bool v : bitmap) expect += v ? 1 : 0;
    ASSERT_EQ(s.CoveredBytes(), expect);
    // Canonical form: sorted and disjoint with gaps.
    for (std::size_t i = 1; i < s.parts().size(); ++i)
      ASSERT_LT(s.parts()[i - 1].hi, s.parts()[i].lo);
  }
}

TEST(TraceStats, ComputesFootprintAndBytes) {
  Trace t;
  t.Append(0, 0, 64, MemOp::kRead);
  t.Append(1, 0, 64, MemOp::kRead);  // re-read: bytes count, footprint not
  t.Append(2, 4096, 64, MemOp::kWrite);
  const TraceStats s = ComputeStats(t);
  EXPECT_EQ(s.read_events, 2u);
  EXPECT_EQ(s.write_events, 1u);
  EXPECT_EQ(s.bytes_read, 128u);
  EXPECT_EQ(s.unique_bytes_read, 64u);
  EXPECT_EQ(s.bytes_written, 64u);
  EXPECT_EQ(s.unique_bytes_written, 64u);
  EXPECT_EQ(s.duration_cycles(), 2u);
}

}  // namespace
}  // namespace sc::trace
