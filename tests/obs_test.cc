// Unit tests for the observability layer (src/obs): metric semantics, the
// enable gate, registry identity/export, and thread safety of concurrent
// recording.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "support/check.h"

namespace sc::obs {
namespace {

// Every test runs with collection on and a clean slate; the registry is
// process-wide, so state must not leak between tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    Registry::Get().ResetAll();
  }
  void TearDown() override {
    Registry::Get().ResetAll();
    SetEnabled(false);
  }
};

TEST_F(ObsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterIsNoOpWhenDisabled) {
  Counter c;
  SetEnabled(false);
  c.Add(100);
  EXPECT_EQ(c.value(), 0u);
  SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST_F(ObsTest, GaugeTracksValueAndPeak) {
  Gauge g;
  g.Set(5);
  g.Set(12);
  g.Set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 12);
  g.Add(-10);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.peak(), 12);
}

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Record(0);
  h.Record(1);
  h.Record(7);
  h.Record(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1032u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 258.0);
  // log2 buckets: 0 -> bucket 0, 1 -> bucket 1, 7 -> bucket 3 (4..7),
  // 1024 -> bucket 11 (1024..2047).
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST_F(ObsTest, ScopedTimerRecordsWhenEnabled) {
  Histogram h;
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
  SetEnabled(false);
  { ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);  // disarmed
}

TEST_F(ObsTest, RegistryReturnsStableIdentity) {
  Counter& a = Registry::Get().GetCounter("obs_test.stable");
  Counter& b = Registry::Get().GetCounter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  // ResetAll zeroes but preserves the address.
  Registry::Get().ResetAll();
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(&Registry::Get().GetCounter("obs_test.stable"), &a);
}

TEST_F(ObsTest, RegistryRejectsKindConflicts) {
  Registry::Get().GetCounter("obs_test.kind_conflict");
  EXPECT_THROW(Registry::Get().GetGauge("obs_test.kind_conflict"), Error);
  EXPECT_THROW(Registry::Get().GetHistogram("obs_test.kind_conflict"), Error);
}

TEST_F(ObsTest, ScopePrefixesNames) {
  Scope s = Registry::Get().scope("obs_test.scoped");
  s.GetCounter("inner").Add(2);
  EXPECT_EQ(Registry::Get().GetCounter("obs_test.scoped.inner").value(), 2u);
}

TEST_F(ObsTest, SnapshotListsAllKindsInNameOrder) {
  Registry::Get().GetCounter("obs_test.snap.a").Add(1);
  Registry::Get().GetGauge("obs_test.snap.b").Set(-4);
  Registry::Get().GetHistogram("obs_test.snap.c").Record(9);
  const std::vector<MetricSample> snap = Registry::Get().Snapshot();
  bool saw_a = false, saw_b = false, saw_c = false;
  for (const MetricSample& s : snap) {
    if (s.name == "obs_test.snap.a") {
      saw_a = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
      EXPECT_EQ(s.value, 1u);
    } else if (s.name == "obs_test.snap.b") {
      saw_b = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kGauge);
      EXPECT_EQ(s.gauge_value, -4);
    } else if (s.name == "obs_test.snap.c") {
      saw_c = true;
      EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.sum, 9u);
    }
  }
  EXPECT_TRUE(saw_a && saw_b && saw_c);
  // Counters come sorted by name.
  std::vector<std::string> counter_names;
  for (const MetricSample& s : snap)
    if (s.kind == MetricSample::Kind::kCounter)
      counter_names.push_back(s.name);
  EXPECT_TRUE(
      std::is_sorted(counter_names.begin(), counter_names.end()));
}

TEST_F(ObsTest, JsonExportIsWellFormed) {
  Registry::Get().GetCounter("obs_test.json.count").Add(7);
  Registry::Get().GetGauge("obs_test.json.depth").Set(2);
  Registry::Get().GetHistogram("obs_test.json.lat").Record(100);
  std::ostringstream os;
  Registry::Get().WriteJson(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"obs_test.json.count\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"obs_test.json.depth\": {\"value\": 2, \"peak\": 2}"),
            std::string::npos);
  EXPECT_NE(j.find("\"obs_test.json.lat\": {\"count\": 1, \"sum\": 100"),
            std::string::npos);
  // Balanced braces (cheap well-formedness proxy; the e2e test runs a real
  // parser over the accel/attack export).
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
}

TEST_F(ObsTest, CsvExportOneRowPerField) {
  Registry::Get().GetCounter("obs_test.csv.count").Add(3);
  Registry::Get().GetHistogram("obs_test.csv.lat").Record(5);
  std::ostringstream os;
  Registry::Get().WriteCsv(os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,obs_test.csv.count,value,3\n"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,obs_test.csv.lat,count,1\n"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,obs_test.csv.lat,sum,5\n"),
            std::string::npos);
}

TEST_F(ObsTest, ConcurrentRecordingLosesNothing) {
  Counter& c = Registry::Get().GetCounter("obs_test.mt.counter");
  Histogram& h = Registry::Get().GetHistogram("obs_test.mt.hist");
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        c.Add();
        h.Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.max(), static_cast<std::uint64_t>(kIters - 1));
}

// Concurrent registration of the same name must return one metric.
TEST_F(ObsTest, ConcurrentRegistrationIsSafe) {
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[static_cast<std::size_t>(t)] =
          &Registry::Get().GetCounter("obs_test.mt.registration");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
}

}  // namespace
}  // namespace sc::obs
