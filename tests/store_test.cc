// sc_store test suite (DESIGN.md §14): sct-v1 codec round trips, hostile
// input rejection, the committed golden artifact, the corpus manifest,
// and the accelerator's capture-to-store mode.
//
// The codec contract under test:
//   - encode(decode(x)) == x for every accepted file (sct-v1 is canonical);
//   - decode(encode(t)) == t bit-exactly for every valid trace;
//   - every corrupted byte, flipped bit, or truncation of a valid file is
//     rejected with a typed sc::Error (no UB, no partial traces);
//   - the committed golden lenet_trace.sct pins the format: any codec or
//     accelerator traffic-model change shows up as a byte diff here.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "accel/accelerator.h"
#include "models/zoo.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "store/corpus.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "support/check.h"
#include "support/rng.h"
#include "trace/trace.h"

#ifndef SC_GOLDEN_DIR
#error "SC_GOLDEN_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace sc::store {
namespace {

namespace json = support::json;

constexpr int kCases = 100;

// Mirrors trace_property_test's adversarial generator: empty traces,
// single events, 1-byte and UINT32_MAX bursts, addresses at the top of the
// address space, long runs of equal cycles.
trace::Trace RandomTrace(std::uint64_t seed) {
  Rng rng(seed);
  trace::Trace t;
  const int n = rng.UniformInt(0, 200);
  std::uint64_t cycle = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  for (int i = 0; i < n; ++i) {
    trace::MemEvent e;
    if (!rng.Chance(0.25))
      cycle += static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 16));
    e.cycle = cycle;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        e.bytes = 1;
        break;
      case 1:
        e.bytes = std::numeric_limits<std::uint32_t>::max();
        break;
      default:
        e.bytes = static_cast<std::uint32_t>(rng.UniformInt(1, 1 << 20));
    }
    e.addr = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 30));
    if (rng.Chance(0.05))
      e.addr = std::numeric_limits<std::uint64_t>::max() - e.bytes - e.addr;
    e.op = rng.Chance(0.5) ? trace::MemOp::kRead : trace::MemOp::kWrite;
    t.Append(e);
  }
  return t;
}

void ExpectTracesEqual(const trace::Trace& a, const trace::Trace& b,
                       const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " event " << i;
  EXPECT_EQ(a.last_cycle(), b.last_cycle()) << what;
  EXPECT_EQ(a.bytes_read(), b.bytes_read()) << what;
  EXPECT_EQ(a.bytes_written(), b.bytes_written()) << what;
}

trace::Trace Decode(const std::string& bytes) {
  return StoreReader::FromString(bytes).ReadAll();
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Byte-exact expectations pin the dataflow so SC_DATAFLOW sweeps cannot
// redefine them; the capture-to-store test overrides it explicitly.
accel::AcceleratorConfig PinnedConfig() {
  accel::AcceleratorConfig cfg;
  cfg.dataflow = accel::Dataflow::kWeightStationary;
  return cfg;
}

trace::Trace CaptureLeNetTrace(
    const accel::AcceleratorConfig& cfg = PinnedConfig()) {
  nn::Network net = models::MakeLeNet(3);
  nn::Tensor input(net.input_shape(), 0.5f);
  accel::Accelerator accelerator{cfg};
  trace::Trace tr;
  accelerator.Run(net, input, &tr);
  return tr;
}

// --- round trips ---------------------------------------------------------

TEST(StoreCodec, RandomTraceRoundTripIsExact) {
  StoreWriter w;
  for (int c = 0; c < kCases; ++c) {
    const trace::Trace original =
        RandomTrace(static_cast<std::uint64_t>(c) + 1);
    const std::string bytes = w.Encode(original);
    const trace::Trace restored = Decode(bytes);
    ExpectTracesEqual(original, restored, "seed " + std::to_string(c + 1));
  }
}

TEST(StoreCodec, EncodeIsDeterministicAndCanonical) {
  for (int c = 0; c < 10; ++c) {
    const trace::Trace t = RandomTrace(static_cast<std::uint64_t>(c) + 1);
    StoreWriter w;
    json::Value meta = json::Value::Object();
    meta.object["b"] = json::Value::String("two");
    meta.object["a"] = json::Value::Number(1);
    w.set_meta(meta);
    const std::string once = w.Encode(t);
    const std::string twice = w.Encode(t);
    EXPECT_EQ(once, twice);
    // Any accepted file re-encodes to itself: one encoding per contents.
    StoreReader r = StoreReader::FromString(once);
    StoreWriter w2;
    w2.set_meta(r.header().meta);
    EXPECT_EQ(w2.Encode(r.ReadAll()), once);
  }
}

TEST(StoreCodec, MultiChunkTraceRoundTrips) {
  // 2.5 chunks: exercises the full-chunk grid, the cross-chunk
  // cycle/address predecessor carry, and the short tail chunk.
  trace::Trace t;
  Rng rng(7);
  std::uint64_t cycle = 0;
  const std::size_t n = trace::TraceBuffer::kChunkEvents * 5 / 2;
  for (std::size_t i = 0; i < n; ++i) {
    cycle += static_cast<std::uint64_t>(rng.UniformInt(0, 100));
    t.Append(cycle, static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 28)),
             static_cast<std::uint32_t>(rng.UniformInt(1, 4096)),
             rng.Chance(0.5) ? trace::MemOp::kRead : trace::MemOp::kWrite);
  }
  const std::string bytes = StoreWriter{}.Encode(t);

  StoreReader r = StoreReader::FromString(bytes);
  EXPECT_EQ(r.header().event_count, n);
  EXPECT_EQ(r.header().chunk_count, 3u);
  trace::TraceBuffer::ChunkView v;
  ASSERT_TRUE(r.NextChunk(&v));
  EXPECT_EQ(v.count, trace::TraceBuffer::kChunkEvents);
  ASSERT_TRUE(r.NextChunk(&v));
  EXPECT_EQ(v.count, trace::TraceBuffer::kChunkEvents);
  ASSERT_TRUE(r.NextChunk(&v));
  EXPECT_EQ(v.count, n - 2 * trace::TraceBuffer::kChunkEvents);
  EXPECT_FALSE(r.NextChunk(&v));

  ExpectTracesEqual(t, Decode(bytes), "multi-chunk");
}

TEST(StoreCodec, EmptyTraceRoundTrips) {
  const trace::Trace empty;
  const std::string bytes = StoreWriter{}.Encode(empty);
  StoreReader r = StoreReader::FromString(bytes);
  EXPECT_EQ(r.header().event_count, 0u);
  EXPECT_EQ(r.header().chunk_count, 0u);
  trace::TraceBuffer::ChunkView v;
  EXPECT_FALSE(r.NextChunk(&v));
  EXPECT_EQ(Decode(bytes).size(), 0u);
}

TEST(StoreCodec, CsvAndSctDecodeIdentically) {
  // The two persistence formats must agree event-for-event, LeNet capture
  // included — sctool's from-csv/to-csv conversions rely on this.
  for (int c = 0; c < 20; ++c) {
    const trace::Trace original =
        c == 0 ? CaptureLeNetTrace()
               : RandomTrace(static_cast<std::uint64_t>(c) + 1);
    std::stringstream csv;
    original.WriteCsv(csv);
    const trace::Trace via_csv = trace::Trace::ReadCsv(csv);
    const trace::Trace via_sct = Decode(StoreWriter{}.Encode(original));
    ExpectTracesEqual(via_csv, via_sct, "case " + std::to_string(c));
  }
}

TEST(StoreCodec, MetadataRoundTrips) {
  StoreWriter w;
  json::Value meta = json::Value::Object();
  meta.object["victim"] = json::Value::String("lenet");
  meta.object["seed"] = json::Value::String("42");
  meta.object["nested"] = json::Value::Object();
  meta.object["nested"].object["k"] = json::Value::Bool(true);
  w.set_meta(meta);
  const std::string bytes = w.Encode(RandomTrace(3));
  StoreReader r = StoreReader::FromString(bytes);
  EXPECT_EQ(json::Dump(r.header().meta), json::Dump(meta));
}

TEST(StoreCodec, NonObjectMetadataIsRejected) {
  StoreWriter w;
  EXPECT_THROW(w.set_meta(json::Value::Number(3)), Error);
  EXPECT_THROW(w.set_meta(json::Value::Array()), Error);
}

TEST(StoreCodec, FileRoundTripIsAtomicAndExact) {
  const trace::Trace t = RandomTrace(11);
  const std::string path = TempPath("sc_store_test_roundtrip.sct");
  json::Value meta = json::Value::Object();
  meta.object["k"] = json::Value::String("v");
  WriteTraceFile(path, t, std::move(meta));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  json::Value back_meta;
  const trace::Trace back = ReadTraceFile(path, &back_meta);
  ExpectTracesEqual(t, back, "file round trip");
  EXPECT_EQ(back_meta.Str("k"), "v");
  std::filesystem::remove(path);
}

// --- hostile input -------------------------------------------------------

TEST(StoreHardening, EveryTruncationIsRejected) {
  const std::string bytes = StoreWriter{}.Encode(RandomTrace(5));
  ASSERT_GT(bytes.size(), 100u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    try {
      Decode(bytes.substr(0, len));
      FAIL() << "prefix of length " << len << " decoded";
    } catch (const Error&) {
      // Typed rejection is the contract.
    }
  }
}

TEST(StoreHardening, EverySingleBitFlipIsRejected) {
  // Every field of the format is integrity-protected: the header by its
  // CRC, payloads by theirs, and the chunk headers by the grid/consumption
  // cross-checks. So *any* single-bit corruption must surface as a typed
  // error, never as a silently different trace.
  const std::string bytes = StoreWriter{}.Encode(RandomTrace(5));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      std::string mut = bytes;
      mut[i] = static_cast<char>(mut[i] ^ (1 << b));
      try {
        Decode(mut);
        FAIL() << "bit " << b << " of byte " << i << " flipped undetected";
      } catch (const Error&) {
      }
    }
  }
}

TEST(StoreHardening, HeaderFieldCorruptionsAreTyped) {
  const trace::Trace t = RandomTrace(9);
  const std::string bytes = StoreWriter{}.Encode(t);

  auto expect_reject = [](std::string mut, const std::string& what) {
    try {
      Decode(mut);
      FAIL() << what << " accepted";
    } catch (const Error&) {
    }
  };

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  expect_reject(bad_magic, "bad magic");

  std::string bad_version = bytes;
  bad_version[8] = 2;
  expect_reject(bad_version, "unsupported version");

  // meta_len far past the file (and past the cap).
  std::string bad_meta = bytes;
  bad_meta[14] = '\x7f';
  expect_reject(bad_meta, "oversized meta_len");

  // event_count perturbed: chunk-grid mirror check fires before any
  // payload decode.
  std::string bad_events = bytes;
  bad_events[16] = static_cast<char>(bad_events[16] ^ 0x01);
  expect_reject(bad_events, "event/chunk mismatch");

  expect_reject(bytes + "x", "trailing bytes");
  expect_reject(std::string(), "empty file");
  expect_reject("sctrace1", "header-only file");
}

TEST(StoreHardening, PayloadCrcMismatchCountsAndThrows) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter& failures =
      obs::Registry::Get().GetCounter("store.crc_failures");
  const std::uint64_t before = failures.value();

  std::string bytes = StoreWriter{}.Encode(RandomTrace(5));
  bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x40);
  EXPECT_THROW(Decode(bytes), Error);
  EXPECT_GT(failures.value(), before);
  obs::SetEnabled(was_enabled);
}

TEST(StoreHardening, ForgedHeaderCannotDemandHugeAllocation) {
  // A tiny file claiming 2^40 events must be rejected from the header
  // geometry alone — decode scratch is bounded by the fixed chunk size.
  std::string out;
  out.append(kMagic, sizeof kMagic);
  PutU32(out, kFormatVersion);
  PutU32(out, 2);  // meta_len
  PutU64(out, std::uint64_t{1} << 40);
  PutU64(out, (std::uint64_t{1} << 40) / trace::TraceBuffer::kChunkEvents);
  PutU64(out, 0);
  PutU64(out, 0);
  PutU64(out, 0);
  out += "{}";
  PutU32(out, Crc32c(out.data(), out.size()));
  EXPECT_THROW(Decode(out), Error);
}

TEST(StoreHardening, NonCanonicalVarintIsRejected) {
  // Re-encode event 0's cycle delta with a redundant trailing group; fix
  // up the chunk header and CRC so only the varint rule can object.
  trace::Trace t;
  t.Append(5, 100, 8, trace::MemOp::kRead);
  const std::string bytes = StoreWriter{}.Encode(t);
  const std::uint8_t* base =
      reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::size_t chunk_at = kFixedHeaderBytes + GetU32(base + 12) + 4;
  std::string payload = bytes.substr(chunk_at + kChunkHeaderBytes);
  ASSERT_EQ(payload[0], 5);  // cycle delta varint
  payload = std::string("\x85\x00", 2) + payload.substr(1);
  std::string mut = bytes.substr(0, chunk_at);
  PutU32(mut, 1);
  PutU32(mut, static_cast<std::uint32_t>(payload.size()));
  PutU32(mut, Crc32c(payload.data(), payload.size()));
  mut += payload;
  try {
    Decode(mut);
    FAIL() << "non-minimal varint accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("non-minimal"), std::string::npos);
  }
}

TEST(StoreHardening, NonCanonicalMetadataIsRejected) {
  // Same JSON value, non-canonical spelling (whitespace): the header CRC
  // is valid, so only the canonical-form rule can reject it.
  const std::string meta = "{ }";
  std::string out;
  out.append(kMagic, sizeof kMagic);
  PutU32(out, kFormatVersion);
  PutU32(out, static_cast<std::uint32_t>(meta.size()));
  PutU64(out, 0);
  PutU64(out, 0);
  PutU64(out, 0);
  PutU64(out, 0);
  PutU64(out, 0);
  out += meta;
  PutU32(out, Crc32c(out.data(), out.size()));
  try {
    Decode(out);
    FAIL() << "non-canonical metadata accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("canonical"), std::string::npos);
  }
}

// --- golden artifact -----------------------------------------------------

// Binary golden: the LeNet weight-stationary capture as sct-v1. Pins the
// byte format itself — chunk layout, varint coding, CRCs — on top of the
// accelerator traffic model the CSV goldens already pin. Regenerate with
// SC_REGEN_GOLDENS=1 after an intentional format or traffic change.
TEST(StoreGolden, LeNetTraceSct) {
  StoreWriter w;
  json::Value meta = json::Value::Object();
  meta.object["victim"] = json::Value::String("lenet");
  meta.object["dataflow"] = json::Value::String("weight_stationary");
  w.set_meta(std::move(meta));
  const std::string actual = w.Encode(CaptureLeNetTrace());

  const std::string path = std::string(SC_GOLDEN_DIR) + "/lenet_trace.sct";
  const char* regen = std::getenv("SC_REGEN_GOLDENS");
  if (regen && std::string(regen) == "1") {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot rewrite " << path;
    out.write(actual.data(), static_cast<std::streamsize>(actual.size()));
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing; regenerate with SC_REGEN_GOLDENS=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  ASSERT_EQ(actual.size(), expected.size()) << "golden size differs";
  for (std::size_t i = 0; i < actual.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "first byte difference at offset "
                                      << i;
  // And the committed golden must decode back to the capture.
  ExpectTracesEqual(CaptureLeNetTrace(), Decode(expected), "golden decode");
}

// --- capture-to-store ----------------------------------------------------

TEST(StoreCapture, AcceleratorPersistsTheAdversaryView) {
  const std::string path = TempPath("sc_store_test_capture.sct");
  accel::AcceleratorConfig cfg;
  cfg.dataflow = accel::Dataflow::kOutputStationary;
  cfg.capture_store_path = path;
  const trace::Trace live = CaptureLeNetTrace(cfg);

  json::Value meta;
  const trace::Trace stored = ReadTraceFile(path, &meta);
  ExpectTracesEqual(live, stored, "capture");
  EXPECT_EQ(meta.Str("dataflow"), "output_stationary");
  std::filesystem::remove(path);
}

// --- corpus manifest -----------------------------------------------------

Corpus::Entry MakeEntry() {
  Corpus::Entry e;
  e.file = "acquire_0.sct";
  e.victim = "lenet";
  e.seed = std::numeric_limits<std::uint64_t>::max();  // string-coded: exact
  e.dataflow = "weight_stationary";
  e.noise = "";
  e.events = 659;
  return e;
}

TEST(CorpusManifest, RoundTripsExactly) {
  Corpus c("fp-1");
  c.Record("acquire:0", MakeEntry());
  Corpus::Entry e2 = MakeEntry();
  e2.file = "clean.sct";
  e2.noise = "{\"drop\":0.01}";
  c.Record("clean", e2);

  const Corpus back = Corpus::Parse(c.Serialize(), "fp-1");
  EXPECT_EQ(back.fingerprint(), "fp-1");
  ASSERT_EQ(back.size(), 2u);
  const Corpus::Entry& a = back.Get("acquire:0");
  EXPECT_EQ(a.file, "acquire_0.sct");
  EXPECT_EQ(a.victim, "lenet");
  EXPECT_EQ(a.seed, std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(a.dataflow, "weight_stationary");
  EXPECT_EQ(a.events, 659u);
  EXPECT_EQ(back.Get("clean").noise, "{\"drop\":0.01}");
  // Canonical: serializing the parse reproduces the bytes.
  EXPECT_EQ(back.Serialize(), c.Serialize());
}

TEST(CorpusManifest, RejectsForeignAndMalformed) {
  Corpus c("fp-1");
  c.Record("acquire:0", MakeEntry());
  const std::string good = c.Serialize();

  EXPECT_THROW(Corpus::Parse(good, "fp-2"), Error);     // foreign fingerprint
  EXPECT_THROW(Corpus::Parse("{]", "fp-1"), Error);     // garbage
  EXPECT_THROW(Corpus::Parse("[]", "fp-1"), Error);     // wrong root
  EXPECT_THROW(Corpus::Parse("{}", "fp-1"), Error);     // missing schema

  std::string foreign = good;
  const std::size_t at = foreign.find("sc-corpus-v1");
  ASSERT_NE(at, std::string::npos);
  foreign.replace(at, 12, "sc-other-v99");
  EXPECT_THROW(Corpus::Parse(foreign, "fp-1"), Error);  // foreign schema

  // Entries must name plain files: no separators, no dot-dot traversal out
  // of the store directory.
  Corpus evil("fp-1");
  Corpus::Entry e = MakeEntry();
  e.file = "../../etc/passwd";
  evil.Record("acquire:0", e);
  EXPECT_THROW(Corpus::Parse(evil.Serialize(), "fp-1"), Error);
  e.file = "..";
  evil.Record("acquire:0", e);
  EXPECT_THROW(Corpus::Parse(evil.Serialize(), "fp-1"), Error);
}

TEST(CorpusManifest, FileRoundTripIsAtomic) {
  const std::string path = TempPath("sc_store_test_corpus.json");
  Corpus c("fp-x");
  c.Record("acquire:0", MakeEntry());
  c.SaveFile(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const Corpus back = Corpus::LoadFile(path, "fp-x");
  EXPECT_EQ(back.Serialize(), c.Serialize());
  EXPECT_THROW(Corpus::LoadFile(path, "other"), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sc::store
