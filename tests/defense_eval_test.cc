// Tier-1 smoke over the attack-vs-defense harness (defense/eval.h): the
// undefended column must reproduce the paper's headline results and the
// RLE-padding column must zero out the weight attack. The full matrix
// (every strategy x strength x victim) runs in bench/defense_matrix.
#include "defense/eval.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sc::defense {
namespace {

const EvalCell* FindCell(const EvalMatrix& m, const std::string& victim,
                         const std::string& attack, DefenseKind kind) {
  for (const EvalCell& c : m.cells)
    if (c.victim == victim && c.attack == attack && c.kind == kind) return &c;
  return nullptr;
}

class DefenseEvalSmoke : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    EvalConfig cfg;
    cfg.kinds = {DefenseKind::kNone, DefenseKind::kRlePadding};
    cfg.strengths = {Strength::kMedium};
    cfg.convnet = false;  // LeNet column only: keeps this in tier 1
    matrix_ = new EvalMatrix(RunDefenseMatrix(cfg));
  }
  static void TearDownTestSuite() {
    delete matrix_;
    matrix_ = nullptr;
  }
  static EvalMatrix* matrix_;
};

EvalMatrix* DefenseEvalSmoke::matrix_ = nullptr;

TEST_F(DefenseEvalSmoke, UndefendedStructureAttackIsUniquelyTopRanked) {
  const EvalCell* c =
      FindCell(*matrix_, "lenet", "structure", DefenseKind::kNone);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->outcome, "ok");
  EXPECT_EQ(c->truth_rank, 1u);
  EXPECT_TRUE(c->truth_unique_top);
  EXPECT_TRUE(c->timing_filter_ok);
  EXPECT_EQ(c->slack_used, 0);
  // The control column is free by construction.
  EXPECT_DOUBLE_EQ(c->traffic_overhead, 1.0);
  EXPECT_DOUBLE_EQ(c->latency_overhead, 1.0);
}

TEST_F(DefenseEvalSmoke, UndefendedWeightAttackRecoversEveryFilter) {
  const EvalCell* c =
      FindCell(*matrix_, "conv_stage", "weight", DefenseKind::kNone);
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->filters_total, 0);
  EXPECT_EQ(c->filters_recovered, c->filters_total);
  EXPECT_DOUBLE_EQ(c->fraction_recovered, 1.0);
  // Figure-7 headline: ratio error below 2^-10.
  EXPECT_LT(c->max_ratio_error, 1.0 / 1024.0);
}

TEST_F(DefenseEvalSmoke, RlePaddingZeroesTheWeightAttack) {
  const EvalCell* c =
      FindCell(*matrix_, "conv_stage", "weight", DefenseKind::kRlePadding);
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->filters_total, 0);
  EXPECT_EQ(c->filters_recovered, 0);
  EXPECT_DOUBLE_EQ(c->fraction_recovered, 0.0);
  // Constant-shape write-back costs bus traffic on the defended victim.
  EXPECT_GT(c->traffic_overhead, 1.0);
}

TEST_F(DefenseEvalSmoke, RlePaddingLeavesTheStructureChannelOpen) {
  // Honest scorecard: closing the count channel does nothing for the
  // address-trace channel, and the matrix must say so.
  const EvalCell* c =
      FindCell(*matrix_, "lenet", "structure", DefenseKind::kRlePadding);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->outcome, "ok");
  EXPECT_TRUE(c->truth_unique_top);
}

TEST_F(DefenseEvalSmoke, RobustAttackMatchesSingleTraceOnDeterministicCells) {
  // Neither kNone nor kRlePadding randomizes the bus, so the consensus
  // attacker sees five identical acquisitions and must agree with the
  // single-trace cell.
  for (DefenseKind k : {DefenseKind::kNone, DefenseKind::kRlePadding}) {
    const EvalCell* one = FindCell(*matrix_, "lenet", "structure", k);
    const EvalCell* rob = FindCell(*matrix_, "lenet", "structure_robust", k);
    ASSERT_NE(one, nullptr);
    ASSERT_NE(rob, nullptr);
    EXPECT_EQ(one->outcome, rob->outcome);
    EXPECT_EQ(one->candidates, rob->candidates);
    EXPECT_EQ(one->truth_rank, rob->truth_rank);
  }
}

TEST_F(DefenseEvalSmoke, CsvAndScorecardCoverEveryCell) {
  std::ostringstream csv;
  WriteMatrixCsv(csv, *matrix_);
  const std::string text = csv.str();
  std::size_t rows = 0;
  for (char ch : text)
    if (ch == '\n') ++rows;
  EXPECT_EQ(rows, matrix_->cells.size() + 1);  // header + one per cell
  EXPECT_NE(text.find("victim,attack,defense"), std::string::npos);

  std::ostringstream json;
  WriteScorecardJson(json, *matrix_);
  const std::string doc = json.str();
  EXPECT_EQ(doc.front(), '{');
  EXPECT_NE(doc.find("\"defense_matrix\""), std::string::npos);
  std::size_t objects = 0;
  for (std::size_t pos = doc.find("\"victim\""); pos != std::string::npos;
       pos = doc.find("\"victim\"", pos + 1))
    ++objects;
  EXPECT_EQ(objects, matrix_->cells.size());
}

}  // namespace
}  // namespace sc::defense
