#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "support/rng.h"

namespace sc::nn {
namespace {

Tensor RandomInput(const Shape& s, std::uint64_t seed) {
  Tensor t(s);
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

TEST(Serialize, RoundTripsSequentialNet) {
  Network net = models::MakeLeNet(5);
  std::stringstream ss;
  SaveNetwork(net, ss);
  Network back = LoadNetwork(ss);

  EXPECT_EQ(back.num_nodes(), net.num_nodes());
  EXPECT_EQ(back.input_shape(), net.input_shape());
  const Tensor x = RandomInput(net.input_shape(), 3);
  EXPECT_EQ(Tensor::MaxAbsDiff(net.ForwardFinal(x), back.ForwardFinal(x)),
            0.0f);
}

TEST(Serialize, RoundTripsBranchyNet) {
  Network net = models::MakeSqueezeNet({.bypass_fires = {3, 5},
                                        .seed = 9});
  std::stringstream ss;
  SaveNetwork(net, ss);
  Network back = LoadNetwork(ss);
  EXPECT_EQ(back.num_nodes(), net.num_nodes());
  for (int i = 0; i < net.num_nodes(); ++i) {
    EXPECT_EQ(back.inputs_of(i), net.inputs_of(i));
    EXPECT_EQ(back.layer(i).name(), net.layer(i).name());
    EXPECT_EQ(back.layer(i).kind(), net.layer(i).kind());
  }
}

TEST(Serialize, PreservesReluThreshold) {
  Network net(Shape{1, 4, 4});
  net.Append(std::make_unique<Conv2D>("c", 1, 2, 3, 1, 1));
  net.Append(std::make_unique<Relu>("r", 0.75f));
  std::stringstream ss;
  SaveNetwork(net, ss);
  Network back = LoadNetwork(ss);
  EXPECT_FLOAT_EQ(dynamic_cast<const Relu&>(back.layer(1)).threshold(),
                  0.75f);
}

TEST(Serialize, RejectsGarbage) {
  {
    std::stringstream ss("not a network at all");
    EXPECT_THROW(LoadNetwork(ss), sc::Error);
  }
  {
    std::stringstream ss;
    ss.write("SCNN", 4);  // magic only, then truncation
    EXPECT_THROW(LoadNetwork(ss), sc::Error);
  }
}

TEST(Serialize, RejectsTruncatedStream) {
  Network net = models::MakeLeNet(1);
  std::stringstream ss;
  SaveNetwork(net, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(LoadNetwork(cut), sc::Error);
}

TEST(Serialize, FileRoundTrip) {
  Network net = models::MakeConvNet(2);
  const std::string path = "serialize_test_tmp.scnn";
  SaveNetworkFile(net, path);
  Network back = LoadNetworkFile(path);
  const Tensor x = RandomInput(net.input_shape(), 4);
  EXPECT_EQ(Tensor::MaxAbsDiff(net.ForwardFinal(x), back.ForwardFinal(x)),
            0.0f);
  std::remove(path.c_str());
  EXPECT_THROW(LoadNetworkFile("does_not_exist.scnn"), sc::Error);
}

}  // namespace
}  // namespace sc::nn
