#include "attack/structure/region_analysis.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

// Simple two-conv + fc network with exactly known sizes.
nn::Network TinyNet() {
  nn::Network net(nn::Shape{3, 16, 16});
  net.Append(std::make_unique<nn::Conv2D>("c1", 3, 8, 3, 1, 1));  // 16x16x8
  net.Append(std::make_unique<nn::Relu>("r1"));
  net.Append(nn::MakeMaxPool("p1", 2, 2));                        // 8x8x8
  net.Append(std::make_unique<nn::Conv2D>("c2", 8, 4, 3, 1, 0));  // 6x6x4
  net.Append(std::make_unique<nn::Relu>("r2"));
  net.Append(std::make_unique<nn::FullyConnected>("fc", 144, 10));
  sc::Rng rng(5);
  nn::InitNetwork(net, rng);
  return net;
}

trace::Trace TraceOf(const nn::Network& net, std::uint64_t seed) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accel.Run(net, RandomInput(net.input_shape(), seed), &tr);
  return tr;
}

TEST(AnalyzeTrace, RecoversExactLayerSizes) {
  nn::Network net = TinyNet();
  AnalysisConfig cfg;
  cfg.known_input_elems = 3 * 16 * 16;
  const TraceAnalysis a = AnalyzeTrace(TraceOf(net, 1), cfg);

  ASSERT_EQ(a.observations.size(), 3u);
  const LayerObservation& l0 = a.observations[0];
  EXPECT_EQ(l0.role, SegmentRole::kConvOrFc);
  EXPECT_TRUE(l0.reads_network_input);
  EXPECT_EQ(l0.size_ifm, 3 * 16 * 16);
  EXPECT_EQ(l0.size_ofm, 8 * 8 * 8);                 // post-pool
  EXPECT_EQ(l0.size_fltr, 3 * 3 * 3 * 8);  // biases stay on chip

  const LayerObservation& l1 = a.observations[1];
  EXPECT_EQ(l1.size_ifm, 8 * 8 * 8);
  EXPECT_EQ(l1.size_ofm, 6 * 6 * 4);
  EXPECT_EQ(l1.size_fltr, 3 * 3 * 8 * 4);
  ASSERT_EQ(l1.inputs.size(), 1u);
  EXPECT_EQ(l1.inputs[0].writer_segments, std::vector<int>{0});

  const LayerObservation& l2 = a.observations[2];
  EXPECT_EQ(l2.size_ifm, 144);
  EXPECT_EQ(l2.size_ofm, 10);
  EXPECT_EQ(l2.size_fltr, 144 * 10);
  EXPECT_GT(l2.cycles, 0u);
}

TEST(AnalyzeTrace, InputHeuristicWithoutPriorKnowledge) {
  nn::Network net = TinyNet();
  AnalysisConfig cfg;  // no known input size: falls back to largest region
  const TraceAnalysis a = AnalyzeTrace(TraceOf(net, 2), cfg);
  // Input (768 elems) is larger than conv1 weights (224): heuristic works.
  EXPECT_TRUE(a.observations[0].reads_network_input);
  EXPECT_EQ(a.observations[0].size_ifm, 768);
}

TEST(AnalyzeTrace, BranchTopologyRecovered) {
  // squeeze -> (e1, e3) -> concat -> eltwise bypass -> pool.
  nn::Network net(nn::Shape{2, 12, 12});
  int c0 = net.Add(std::make_unique<nn::Conv2D>("c0", 2, 8, 3, 1, 1),
                   {nn::kInputNode});
  int r0 = net.Add(std::make_unique<nn::Relu>("r0"), {c0});
  int s = net.Add(std::make_unique<nn::Conv2D>("squeeze", 8, 4, 1, 1, 0),
                  {r0});
  int rs = net.Add(std::make_unique<nn::Relu>("rs"), {s});
  int e1 = net.Add(std::make_unique<nn::Conv2D>("e1", 4, 4, 1, 1, 0), {rs});
  int re1 = net.Add(std::make_unique<nn::Relu>("re1"), {e1});
  int e3 = net.Add(std::make_unique<nn::Conv2D>("e3", 4, 4, 3, 1, 1), {rs});
  int re3 = net.Add(std::make_unique<nn::Relu>("re3"), {e3});
  int cat = net.Add(std::make_unique<nn::Concat>("cat", 2), {re1, re3});
  int byp = net.Add(std::make_unique<nn::EltwiseAdd>("byp", 2), {cat, r0});
  net.Add(nn::MakeMaxPool("pool", 3, 2), {byp});
  sc::Rng rng(9);
  nn::InitNetwork(net, rng);

  AnalysisConfig cfg;
  cfg.known_input_elems = 2 * 12 * 12;
  const TraceAnalysis a = AnalyzeTrace(TraceOf(net, 3), cfg);

  // Segments: c0, squeeze, e1, e3, eltwise, pool.
  ASSERT_EQ(a.observations.size(), 6u);
  EXPECT_EQ(a.observations[1].inputs[0].writer_segments,
            std::vector<int>{0});
  // Both expands read the squeeze output.
  EXPECT_EQ(a.observations[2].inputs[0].writer_segments,
            std::vector<int>{1});
  EXPECT_EQ(a.observations[3].inputs[0].writer_segments,
            std::vector<int>{1});
  // The eltwise reads the concat (written by segments 2 and 3) and the
  // bypass operand (segment 0) as two separate inputs.
  const LayerObservation& elt = a.observations[4];
  EXPECT_EQ(elt.role, SegmentRole::kEltwise);
  ASSERT_EQ(elt.inputs.size(), 2u);
  const std::vector<int> concat_writers{2, 3};
  const bool first_is_concat =
      elt.inputs[0].writer_segments == concat_writers;
  const ObservedInput& cat_in = first_is_concat ? elt.inputs[0]
                                                : elt.inputs[1];
  const ObservedInput& byp_in = first_is_concat ? elt.inputs[1]
                                                : elt.inputs[0];
  EXPECT_EQ(cat_in.writer_segments, concat_writers);
  EXPECT_EQ(byp_in.writer_segments, std::vector<int>{0});
  EXPECT_EQ(cat_in.elems, 8 * 12 * 12);

  // Final pool: single input written by the eltwise, smaller output.
  const LayerObservation& pool = a.observations[5];
  EXPECT_EQ(pool.role, SegmentRole::kPool);
  EXPECT_EQ(pool.inputs[0].writer_segments, std::vector<int>{4});
  EXPECT_EQ(pool.size_ofm, 8 * 6 * 6);
  (void)byp;
  (void)cat;
}

TEST(AnalyzeTrace, EmptyTrace) {
  const TraceAnalysis a = AnalyzeTrace(trace::Trace{}, AnalysisConfig{});
  EXPECT_TRUE(a.observations.empty());
  EXPECT_TRUE(a.segments.empty());
}

TEST(AnalyzeTrace, RejectsBadElementSize) {
  AnalysisConfig cfg;
  cfg.element_bytes = 0;
  trace::Trace t;
  t.Append(0, 0, 64, trace::MemOp::kRead);
  EXPECT_THROW(AnalyzeTrace(t, cfg), sc::Error);
}

}  // namespace
}  // namespace sc::attack
