// End-to-end observability test: a LeNet inference + structure attack +
// weight attack with SC_METRICS collection on must populate the DRAM,
// solver and oracle counters, and the JSON export must validate against
// the metrics schema (parsed here with a minimal JSON reader — the export
// has no external consumers to borrow a parser from).
//
// Also locks in the zero-interference contract: with collection off, no
// counter moves; and toggling collection never changes attack results.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "attack/weights/oracle.h"
#include "models/zoo.h"
#include "obs/metrics.h"
#include "support/rng.h"

namespace sc {
namespace {

// --- minimal JSON reader for the metrics export ----------------------------
// Grammar actually emitted by Registry::WriteJson: an object of three
// objects; leaf values are unsigned integers or flat objects of integers.

struct JsonValue {
  // nullopt-free tagged union: integers or string-keyed maps.
  std::map<std::string, JsonValue> object;
  long long number = 0;
  bool is_number = false;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    EXPECT_EQ(pos_, s_.size()) << "trailing JSON content";
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char Peek() {
    SkipWs();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\' && pos_ + 1 < s_.size()) ++pos_;
      out += s_[pos_++];
    }
    Expect('"');
    return out;
  }

  JsonValue ParseValue() {
    JsonValue v;
    if (Peek() == '{') {
      ++pos_;
      if (Peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        const std::string key = ParseString();
        Expect(':');
        v.object[key] = ParseValue();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect('}');
        break;
      }
      return v;
    }
    // Number (the export emits only unsigned integers and gauges' int64).
    v.is_number = true;
    std::size_t end = pos_;
    if (end < s_.size() && s_[end] == '-') ++end;
    while (end < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[end])))
      ++end;
    EXPECT_GT(end, pos_) << "expected a number at offset " << pos_;
    v.number = std::stoll(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::string s_;  // by value: callers may pass a temporary
  std::size_t pos_ = 0;
};

// --- schema validation ------------------------------------------------------

// The export contract (DESIGN.md §9): top level has exactly the three kind
// maps; counters are non-negative integers; gauges have value/peak; every
// histogram has count/sum/min/max with count==0 => sum==0.
void ValidateMetricsSchema(const JsonValue& root) {
  ASSERT_FALSE(root.is_number);
  ASSERT_EQ(root.object.size(), 3u);
  ASSERT_TRUE(root.object.count("counters"));
  ASSERT_TRUE(root.object.count("gauges"));
  ASSERT_TRUE(root.object.count("histograms"));

  for (const auto& [name, v] : root.object.at("counters").object) {
    EXPECT_TRUE(v.is_number) << name;
    EXPECT_GE(v.number, 0) << name;
  }
  for (const auto& [name, v] : root.object.at("gauges").object) {
    ASSERT_EQ(v.object.size(), 2u) << name;
    ASSERT_TRUE(v.object.count("value")) << name;
    ASSERT_TRUE(v.object.count("peak")) << name;
  }
  for (const auto& [name, v] : root.object.at("histograms").object) {
    ASSERT_EQ(v.object.size(), 4u) << name;
    for (const char* field : {"count", "sum", "min", "max"}) {
      ASSERT_TRUE(v.object.count(field)) << name << "." << field;
      EXPECT_TRUE(v.object.at(field).is_number) << name << "." << field;
      EXPECT_GE(v.object.at(field).number, 0) << name << "." << field;
    }
    if (v.object.at("count").number == 0)
      EXPECT_EQ(v.object.at("sum").number, 0) << name;
    else
      EXPECT_LE(v.object.at("min").number, v.object.at("max").number) << name;
  }
}

long long CounterIn(const JsonValue& root, const std::string& name) {
  const auto& counters = root.object.at("counters").object;
  auto it = counters.find(name);
  return it == counters.end() ? -1 : it->second.number;
}

// --- end-to-end workload ----------------------------------------------------

struct E2eResults {
  std::size_t structures = 0;
  std::uint64_t cycles = 0;
  std::uint64_t queries = 0;
};

// LeNet inference on the accelerator, the full structure attack on its
// trace, and one filter's worth of the weight attack.
E2eResults RunLeNetEndToEnd() {
  E2eResults out;

  nn::Network net = models::MakeLeNet(3);
  nn::Tensor input(net.input_shape());
  Rng rng(11);
  for (std::size_t i = 0; i < input.numel(); ++i)
    input[i] = rng.GaussianF(1.0f);
  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  trace::Trace tr;
  const accel::RunResult run = accelerator.Run(net, input, &tr);
  out.cycles = run.total_cycles;

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  out.structures =
      attack::RunStructureAttack(tr, cfg).search.structures.size();

  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 28;
  spec.filter = 5;
  spec.stride = 1;
  spec.pad = 0;
  nn::Tensor weights(nn::Shape{2, 1, 5, 5});
  nn::Tensor bias(nn::Shape{2});
  for (std::size_t i = 0; i < weights.numel(); ++i)
    weights[i] = rng.GaussianF(0.6f);
  bias.at(0) = -0.3f;
  bias.at(1) = -0.2f;
  attack::SparseConvOracle oracle(spec, weights, bias);
  attack::WeightAttack attack(oracle, spec, attack::WeightAttackConfig{});
  const attack::RecoveredFilter rec = attack.RecoverFilter(0);
  out.queries = rec.queries;
  return out;
}

class MetricsE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetEnabled(true);
    obs::Registry::Get().ResetAll();
  }
  void TearDown() override {
    obs::Registry::Get().ResetAll();
    obs::SetEnabled(false);
  }
};

TEST_F(MetricsE2eTest, LeNetEndToEndPopulatesAndValidates) {
  const E2eResults results = RunLeNetEndToEnd();
  EXPECT_GT(results.structures, 0u);
  EXPECT_GT(results.queries, 0u);

  std::ostringstream os;
  obs::Registry::Get().WriteJson(os);
  JsonReader reader(os.str());
  const JsonValue root = reader.Parse();
  ValidateMetricsSchema(root);

  // The acceptance bar: nonzero DRAM, solver and oracle-query counters for
  // a LeNet end-to-end run.
  EXPECT_GT(CounterIn(root, "accel.runs"), 0);
  EXPECT_GT(CounterIn(root, "accel.dram.read_bytes"), 0);
  EXPECT_GT(CounterIn(root, "accel.dram.write_bytes"), 0);
  EXPECT_GT(CounterIn(root, "accel.dram.read_events"), 0);
  EXPECT_GT(CounterIn(root, "accel.raw_reads"), 0);
  EXPECT_GT(CounterIn(root, "attack.structure.segments_found"), 0);
  EXPECT_GT(CounterIn(root, "attack.structure.solver.candidates_emitted"), 0);
  EXPECT_GT(CounterIn(root, "attack.structure.search.structures_found"), 0);
  EXPECT_GT(CounterIn(root, "attack.weights.oracle_queries"), 0);
  EXPECT_GT(CounterIn(root, "attack.weights.bisect_iters"), 0);

  // Cross-checks against ground truth the workload returned directly.
  EXPECT_EQ(CounterIn(root, "accel.runs"), 1);
  EXPECT_EQ(CounterIn(root, "attack.weights.oracle_queries"),
            static_cast<long long>(results.queries));
  EXPECT_EQ(CounterIn(root, "attack.structure.search.structures_found"),
            static_cast<long long>(results.structures));

  // Histogram sum of per-stage cycles equals the run's total cycle count
  // (stages partition the clock).
  const auto& hist =
      root.object.at("histograms").object.at("accel.stage.cycles");
  EXPECT_EQ(hist.object.at("sum").number,
            static_cast<long long>(results.cycles));
}

TEST_F(MetricsE2eTest, DisabledCollectionRecordsNothing) {
  obs::SetEnabled(false);
  RunLeNetEndToEnd();
  obs::SetEnabled(true);  // read-back below must see enabled state... not
                          // required for value(), but keeps teardown simple
  for (const obs::MetricSample& s : obs::Registry::Get().Snapshot()) {
    if (s.kind == obs::MetricSample::Kind::kCounter) {
      EXPECT_EQ(s.value, 0u) << s.name;
    }
    if (s.kind == obs::MetricSample::Kind::kHistogram) {
      EXPECT_EQ(s.count, 0u) << s.name;
    }
  }
}

TEST_F(MetricsE2eTest, TogglingCollectionDoesNotChangeResults) {
  const E2eResults on = RunLeNetEndToEnd();
  obs::SetEnabled(false);
  const E2eResults off = RunLeNetEndToEnd();
  EXPECT_EQ(on.structures, off.structures);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.queries, off.queries);
}

TEST_F(MetricsE2eTest, CollectMetricsConfigToggleExcludesAccel) {
  nn::Network net = models::MakeLeNet(3);
  nn::Tensor input(net.input_shape());
  Rng rng(11);
  for (std::size_t i = 0; i < input.numel(); ++i)
    input[i] = rng.GaussianF(1.0f);
  accel::AcceleratorConfig cfg;
  cfg.collect_metrics = false;  // per-instance opt-out
  accel::Accelerator accelerator{cfg};
  accelerator.Run(net, input, nullptr);
  EXPECT_EQ(obs::Registry::Get().GetCounter("accel.runs").value(), 0u);
  EXPECT_EQ(
      obs::Registry::Get().GetCounter("accel.dram.read_bytes").value(), 0u);
}

}  // namespace
}  // namespace sc
