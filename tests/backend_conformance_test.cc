// Cross-backend differential conformance suite (DESIGN.md §13).
//
// The two dataflow backends are independent walks of the same tiled
// schedule space, which makes them mutual oracles for the whole
// trace→attack pipeline:
//   - victim outputs must be bit-identical across backends (the functional
//     forward pass is shared; a divergence means a backend corrupted it),
//   - the weight-stationary trace must stay byte-identical to the pre-split
//     goldens (the refactor is not allowed to move a single burst),
//   - the structure attack must recover the same architecture from either
//     backend's trace — same candidate set, ground truth ranked first —
//     because the paper's Eq. (1)-(8) constraints are schedule-invariant
//     once the search consumes the backend's ScheduleModel.
// Everything runs at SC-thread counts 1 and 4: results must not depend on
// attack-side parallelism either.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/backend.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/report.h"
#include "models/zoo.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "trace/trace.h"

#ifndef SC_GOLDEN_DIR
#error "SC_GOLDEN_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace sc {
namespace {

constexpr accel::Dataflow kDataflows[] = {
    accel::Dataflow::kWeightStationary,
    accel::Dataflow::kOutputStationary,
};
constexpr int kThreadCounts[] = {1, 4};

struct Victim {
  nn::Network net;
  attack::StructureAttackConfig attack;  // priors + datasheet, no schedule
  std::vector<attack::LayerFingerprint> truth;
};

Victim MakeVictim(const std::string& name) {
  const bool lenet = name == "lenet";
  Victim v{lenet ? models::MakeLeNet(3) : models::MakeConvNet(3), {}, {}};
  const accel::AcceleratorConfig datasheet;
  v.attack.search.macs_per_cycle = datasheet.macs_per_cycle;
  v.attack.search.bytes_per_cycle = datasheet.bytes_per_cycle;
  if (lenet) {
    v.attack.analysis.known_input_elems = 28 * 28;
    v.attack.search.known_input_width = 28;
    v.attack.search.known_input_depth = 1;
    v.attack.search.known_output_classes = 10;
    v.truth = {{5, 20}, {5, 50}, {4, 500}, {1, 10}};
  } else {
    v.attack.analysis.known_input_elems = 3 * 32 * 32;
    v.attack.search.known_input_width = 32;
    v.attack.search.known_input_depth = 3;
    v.attack.search.known_output_classes = 10;
    v.truth = {{5, 32}, {5, 32}, {3, 64}, {4, 10}};
  }
  return v;
}

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

accel::Accelerator MakeAccel(accel::Dataflow d) {
  accel::AcceleratorConfig cfg;
  cfg.dataflow = d;
  return accel::Accelerator{cfg};
}

// A candidate structure reduced to its comparable payload.
using GeomChain = std::vector<nn::LayerGeometry>;

std::vector<GeomChain> CandidateSet(const attack::SearchResult& r) {
  std::vector<GeomChain> out;
  out.reserve(r.structures.size());
  for (const attack::CandidateStructure& cs : r.structures) {
    GeomChain chain;
    chain.reserve(cs.layers.size());
    for (const attack::LayerConfig& l : cs.layers) chain.push_back(l.geom);
    out.push_back(std::move(chain));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {
 protected:
  void SetUp() override {
    support::ThreadPool::SetGlobalThreads(std::get<1>(GetParam()));
  }
  void TearDown() override {
    support::ThreadPool::SetGlobalThreads(
        support::ThreadPool::DefaultThreads());
  }
};

// Backends share the functional forward pass; their outputs must agree to
// the last bit, under dense and zero-pruned configs alike.
TEST_P(BackendConformance, OutputsBitIdenticalAcrossBackends) {
  const Victim v = MakeVictim(std::get<0>(GetParam()));
  const nn::Tensor input = RandomInput(v.net.input_shape(), 7);
  for (const bool pruned : {false, true}) {
    accel::AcceleratorConfig ws_cfg, os_cfg;
    ws_cfg.dataflow = accel::Dataflow::kWeightStationary;
    os_cfg.dataflow = accel::Dataflow::kOutputStationary;
    ws_cfg.zero_pruning = os_cfg.zero_pruning = pruned;
    const accel::RunResult ws =
        accel::Accelerator{ws_cfg}.Run(v.net, input, nullptr);
    const accel::RunResult os =
        accel::Accelerator{os_cfg}.Run(v.net, input, nullptr);
    ASSERT_EQ(ws.output.numel(), os.output.numel());
    ASSERT_EQ(0, std::memcmp(ws.output.data(), os.output.data(),
                             ws.output.numel() * sizeof(float)))
        << "outputs diverged (pruned=" << pruned << ")";
    // Per-stage §4 observables agree too (shared write-back engine).
    ASSERT_EQ(ws.stages.size(), os.stages.size());
    for (std::size_t i = 0; i < ws.stages.size(); ++i) {
      EXPECT_EQ(ws.stages[i].ofm_nonzeros, os.stages[i].ofm_nonzeros);
      EXPECT_EQ(ws.stages[i].ofm_channel_nonzeros,
                os.stages[i].ofm_channel_nonzeros);
      EXPECT_EQ(ws.stages[i].macs, os.stages[i].macs);
    }
  }
}

// The structure attack recovers the same architecture from either
// backend's trace: identical candidate sets, truth ranked first.
TEST_P(BackendConformance, StructureAttackAgreesAcrossBackends) {
  const Victim v = MakeVictim(std::get<0>(GetParam()));
  const nn::Tensor input = RandomInput(v.net.input_shape(), 11);

  std::vector<std::vector<GeomChain>> sets;
  for (const accel::Dataflow d : kDataflows) {
    const accel::Accelerator accel = MakeAccel(d);
    trace::Trace tr;
    accel.Run(v.net, input, &tr);

    attack::StructureAttackConfig cfg = v.attack;
    cfg.search.schedule = accel.schedule_model();
    const attack::StructureAttackResult r = attack::RunStructureAttack(tr, cfg);
    ASSERT_GT(r.search.structures.size(), 0u)
        << accel::ToString(d) << ": no structures survived";

    const attack::TruthRanking ranking = attack::RankTruth(r.search, v.truth);
    EXPECT_EQ(ranking.rank, 1u)
        << accel::ToString(d) << ": truth not top-ranked";
    sets.push_back(CandidateSet(r.search));
  }
  EXPECT_EQ(sets[0], sets[1])
      << "candidate sets differ between dataflow backends";
}

INSTANTIATE_TEST_SUITE_P(
    Victims, BackendConformance,
    ::testing::Combine(::testing::Values(std::string("lenet"),
                                         std::string("convnet")),
                       ::testing::ValuesIn(kThreadCounts)),
    [](const ::testing::TestParamInfo<BackendConformance::ParamType>& p) {
      return std::get<0>(p.param) + "_threads" +
             std::to_string(std::get<1>(p.param));
    });

// The weight-stationary backend IS the pre-split accelerator: its LeNet
// trace must still match the committed golden byte-for-byte (same capture
// recipe as golden_artifact_test.cc; the golden file is owned there and
// regenerated only via SC_REGEN_GOLDENS). Run at both thread counts to pin
// thread-independence of the capture path as well.
TEST(BackendConformanceGolden, WeightStationaryTraceMatchesPrePrGolden) {
  for (const int threads : kThreadCounts) {
    support::ThreadPool::SetGlobalThreads(threads);
    nn::Network net = models::MakeLeNet(3);
    nn::Tensor input(net.input_shape(), 0.5f);
    trace::Trace tr;
    MakeAccel(accel::Dataflow::kWeightStationary).Run(net, input, &tr);

    const std::size_t stride = std::max<std::size_t>(1, tr.size() / 2000);
    std::ostringstream csv;
    csv << "cycle,addr,op\n";
    for (std::size_t i = 0; i < tr.size(); i += stride)
      csv << tr[i].cycle << ',' << tr[i].addr << ','
          << trace::ToString(tr[i].op) << '\n';

    std::ifstream in(std::string(SC_GOLDEN_DIR) + "/fig3_lenet_trace.csv");
    ASSERT_TRUE(in.is_open());
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(csv.str(), expected.str())
        << "WS trace diverged from pre-PR golden at SC_THREADS=" << threads;
  }
  support::ThreadPool::SetGlobalThreads(support::ThreadPool::DefaultThreads());
}

}  // namespace
}  // namespace sc
