// The pre-bulk-emission Emitter, kept verbatim (modulo the class name) as
// the differential reference for the columnar producer path: it appends one
// trace event per DMA burst at the moment the burst is emitted, which was
// the accelerator's emission strategy before stage blocks + AppendColumns.
// emitter_differential_test.cc drives both emitters through the same
// schedules and requires byte-identical traces. Do not "improve" this file;
// its value is that it does not change.
#ifndef SC_TESTS_LEGACY_EMITTER_H_
#define SC_TESTS_LEGACY_EMITTER_H_

#include <algorithm>
#include <cstdint>

#include "accel/backend_common.h"
#include "accel/config.h"
#include "support/check.h"
#include "trace/trace.h"

namespace sc::accel {

// Collects trace events and per-stage byte counters; owns the cycle clock.
class LegacyEmitter {
 public:
  LegacyEmitter(trace::Trace* t, const AcceleratorConfig& cfg)
      : trace_(t), cfg_(cfg) {}

  void Read(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_read_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().read_events.Add();
      Metrics().read_bytes.Add(bytes);
    }
    if (trace_)
      trace_->Append(cycle_, addr, Narrow(bytes), trace::MemOp::kRead);
  }

  void Write(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_written_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().write_events.Add();
      Metrics().write_bytes.Add(bytes);
    }
    if (trace_)
      trace_->Append(cycle_, addr, Narrow(bytes), trace::MemOp::kWrite);
  }

  // Ends the current tile: advances the clock by the larger of the tile's
  // compute time and its memory time, then starts a fresh tile.
  void FinishTile(long long tile_macs, long long tile_simd_ops) {
    const std::uint64_t compute =
        CeilDiv(static_cast<std::uint64_t>(tile_macs),
                static_cast<std::uint64_t>(cfg_.macs_per_cycle)) +
        CeilDiv(static_cast<std::uint64_t>(tile_simd_ops),
                static_cast<std::uint64_t>(cfg_.simd_lanes));
    const std::uint64_t mem =
        CeilDiv(tile_bytes_, static_cast<std::uint64_t>(cfg_.bytes_per_cycle));
    cycle_ += std::max<std::uint64_t>(1, std::max(compute, mem));
    tile_bytes_ = 0;
  }

  void BeginStage() {
    stage_read_ = 0;
    stage_written_ = 0;
    tile_bytes_ = 0;
  }

  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t stage_read() const { return stage_read_; }
  std::uint64_t stage_written() const { return stage_written_; }

 private:
  static std::uint32_t Narrow(std::uint64_t bytes) {
    SC_CHECK_MSG(bytes <= UINT32_MAX, "burst too large");
    return static_cast<std::uint32_t>(bytes);
  }

  trace::Trace* trace_;
  const AcceleratorConfig& cfg_;
  std::uint64_t cycle_ = 0;
  std::uint64_t stage_read_ = 0;
  std::uint64_t stage_written_ = 0;
  std::uint64_t tile_bytes_ = 0;
};

}  // namespace sc::accel

#endif  // SC_TESTS_LEGACY_EMITTER_H_
