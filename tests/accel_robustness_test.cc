// Property suite: the attacks must be robust to the victim accelerator's
// microarchitectural knobs — buffer sizes (tiling changes), bandwidth and
// PE throughput (timing changes), element width. The trace changes shape
// under every configuration; the recovered facts must not.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "models/zoo.h"
#include "support/rng.h"

namespace sc::accel {
namespace {

struct ConfigCase {
  const char* name;
  AcceleratorConfig cfg;
};

std::vector<ConfigCase> Cases() {
  std::vector<ConfigCase> cases;
  {
    ConfigCase c{"default", {}};
    cases.push_back(c);
  }
  {
    ConfigCase c{"tiny_buffers", {}};
    c.cfg.ifm_buffer_bytes = 8 * 1024;
    c.cfg.weight_buffer_bytes = 8 * 1024;
    c.cfg.ofm_buffer_bytes = 4 * 1024;
    cases.push_back(c);
  }
  {
    ConfigCase c{"huge_buffers", {}};
    c.cfg.ifm_buffer_bytes = 8 * 1024 * 1024;
    c.cfg.weight_buffer_bytes = 8 * 1024 * 1024;
    c.cfg.ofm_buffer_bytes = 8 * 1024 * 1024;
    cases.push_back(c);
  }
  {
    ConfigCase c{"narrow_bus", {}};
    c.cfg.bytes_per_cycle = 2;
    cases.push_back(c);
  }
  {
    ConfigCase c{"wide_pe", {}};
    c.cfg.macs_per_cycle = 1024;
    cases.push_back(c);
  }
  {
    ConfigCase c{"fp16_storage", {}};
    c.cfg.element_bytes = 2;
    cases.push_back(c);
  }
  {
    ConfigCase c{"pruned", {}};
    c.cfg.zero_pruning = true;
    cases.push_back(c);
  }
  return cases;
}

class AccelConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(AccelConfigTest, InferenceMatchesReference) {
  nn::Network net = models::MakeConvNet(3);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(4);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  Accelerator accel{GetParam().cfg};
  const RunResult run = accel.Run(net, x, nullptr);
  EXPECT_EQ(nn::Tensor::MaxAbsDiff(net.ForwardFinal(x), run.output), 0.0f)
      << GetParam().name;
}

TEST_P(AccelConfigTest, StructureSizesRecoveredExactly) {
  if (GetParam().cfg.zero_pruning) {
    // The structure attack targets un-pruned traffic (paper Table 1 keeps
    // the two attacks' assumptions separate).
    GTEST_SKIP();
  }
  nn::Network net = models::MakeLeNet(5);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(6);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  Accelerator accel{GetParam().cfg};
  trace::Trace tr;
  accel.Run(net, x, &tr);

  attack::AnalysisConfig cfg;
  cfg.element_bytes = GetParam().cfg.element_bytes;
  cfg.known_input_elems = 28 * 28;
  const attack::TraceAnalysis a = attack::AnalyzeTrace(tr, cfg);
  ASSERT_EQ(a.observations.size(), 4u) << GetParam().name;
  EXPECT_EQ(a.observations[0].size_ofm, 20 * 12 * 12);
  EXPECT_EQ(a.observations[0].size_fltr, 5 * 5 * 20);
  EXPECT_EQ(a.observations[1].size_ofm, 50 * 4 * 4);
  EXPECT_EQ(a.observations[2].size_fltr, 800 * 500);
  EXPECT_EQ(a.observations[3].size_ofm, 10);
}

TEST_P(AccelConfigTest, TraceIsDeterministic) {
  nn::Network net = models::MakeLeNet(7);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(8);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  Accelerator accel{GetParam().cfg};
  trace::Trace t1, t2;
  accel.Run(net, x, &t1);
  accel.Run(net, x, &t2);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) ASSERT_EQ(t1[i], t2[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Microarchitectures, AccelConfigTest, ::testing::ValuesIn(Cases()),
    [](const ::testing::TestParamInfo<ConfigCase>& case_info) {
      return std::string(case_info.param.name);
    });

TEST(AccelRobustness, BuffersTooSmallIsAHardError) {
  AcceleratorConfig cfg;
  cfg.ifm_buffer_bytes = 64;  // cannot stage one output row's halo
  cfg.weight_buffer_bytes = 64;
  cfg.ofm_buffer_bytes = 64;
  nn::Network net = models::MakeConvNet(1);
  nn::Tensor x(net.input_shape());
  Accelerator accel{cfg};
  EXPECT_THROW(accel.Run(net, x, nullptr), sc::Error);
}

TEST(AccelRobustness, ConstantShapeWritesAreInputInvariant) {
  // With the §4 mitigation enabled, the write-burst sizes must not depend
  // on the input values at all.
  models::ConvStageVictimSpec spec;
  spec.in_depth = 1;
  spec.in_width = 8;
  spec.out_depth = 2;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{2, 1, 3, 3}, 0.5f);
  nn::Tensor b(nn::Shape{2}, -0.1f);
  nn::Network net = models::MakeConvStageVictim(spec, w, b);

  AcceleratorConfig cfg;
  cfg.zero_pruning = true;
  cfg.prune_constant_shape = true;
  Accelerator accel{cfg};

  auto write_sizes = [&](float pixel) {
    nn::Tensor x(net.input_shape());
    x.at(0, 3, 3) = pixel;
    trace::Trace tr;
    accel.Run(net, x, &tr);
    std::vector<std::uint32_t> sizes;
    for (const auto& e : tr)
      if (e.op == trace::MemOp::kWrite) sizes.push_back(e.bytes);
    return sizes;
  };
  EXPECT_EQ(write_sizes(0.0f), write_sizes(5.0f));
  EXPECT_EQ(write_sizes(-3.0f), write_sizes(100.0f));
}

}  // namespace
}  // namespace sc::accel
