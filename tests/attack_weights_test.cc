// Weight-recovery attack (Algorithm 2 + pooling variants + bias recovery).
#include "attack/weights/attack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/zoo.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

struct Victim {
  SparseConvOracle::StageSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
};

Victim MakeVictim(std::uint64_t seed, int in_depth, int in_width, int oc,
                  int f, int s, nn::PoolKind pool, int pool_window,
                  int pool_stride, bool relu_before_pool, float bias_sign,
                  float zero_fraction = 0.0f) {
  Victim v;
  v.spec.in_depth = in_depth;
  v.spec.in_width = in_width;
  v.spec.filter = f;
  v.spec.stride = s;
  v.spec.pad = 0;
  v.spec.pool = pool;
  v.spec.pool_window = pool_window;
  v.spec.pool_stride = pool_stride;
  v.spec.relu_before_pool = relu_before_pool;
  v.weights = nn::Tensor(nn::Shape{oc, in_depth, f, f});
  v.bias = nn::Tensor(nn::Shape{oc});
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < v.weights.numel(); ++i) {
    v.weights[i] = rng.GaussianF(0.6f);
    if (zero_fraction > 0 && rng.Chance(zero_fraction)) v.weights[i] = 0.0f;
  }
  for (int k = 0; k < oc; ++k)
    v.bias.at(k) = bias_sign * rng.UniformF(0.1f, 0.5f);
  return v;
}

// Max |recovered w/b - true w/b| over non-failed positions; returns the
// count of positions checked through *checked.
float MaxRatioError(const Victim& v, const RecoveredFilter& rec,
                    int channel, int* checked) {
  float max_err = 0.0f;
  *checked = 0;
  const int f = v.spec.filter;
  for (int c = 0; c < v.spec.in_depth; ++c) {
    for (int i = 0; i < f; ++i) {
      for (int j = 0; j < f; ++j) {
        const auto id = static_cast<std::size_t>((c * f + i) * f + j);
        if (rec.failed[id]) continue;
        const float truth =
            v.weights.at(channel, c, i, j) / v.bias.at(channel);
        max_err = std::max(max_err,
                           std::fabs(rec.ratio.at(c, i, j) - truth));
        ++(*checked);
      }
    }
  }
  return max_err;
}

constexpr float kPaperBound = 1.0f / 1024.0f;  // paper: error < 2^-10

TEST(WeightAttack, NoPoolPositiveBias) {
  const Victim v = MakeVictim(1, 2, 10, 3, 3, 1, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  for (int k = 0; k < 3; ++k) {
    const RecoveredFilter rec = attack.RecoverFilter(k);
    EXPECT_TRUE(rec.bias_positive);
    int checked = 0;
    EXPECT_LT(MaxRatioError(v, rec, k, &checked), kPaperBound);
    EXPECT_EQ(checked, 2 * 3 * 3);  // every weight recovered
  }
}

TEST(WeightAttack, NoPoolNegativeBias) {
  const Victim v = MakeVictim(2, 1, 9, 2, 3, 1, nn::PoolKind::kNone, 0, 0,
                              true, -1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  EXPECT_FALSE(rec.bias_positive);
  int checked = 0;
  EXPECT_LT(MaxRatioError(v, rec, 0, &checked), kPaperBound);
  EXPECT_EQ(checked, 9);
}

TEST(WeightAttack, StridedConv) {
  const Victim v = MakeVictim(3, 1, 13, 2, 4, 2, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(1);
  int checked = 0;
  EXPECT_LT(MaxRatioError(v, rec, 1, &checked), kPaperBound);
  EXPECT_EQ(checked, 16);
}

TEST(WeightAttack, DetectsZeroWeights) {
  Victim v = MakeVictim(4, 1, 10, 1, 3, 1, nn::PoolKind::kNone, 0, 0, true,
                        +1.0f);
  v.weights.at(0, 0, 1, 1) = 0.0f;
  v.weights.at(0, 0, 2, 0) = 0.0f;
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  EXPECT_TRUE(rec.zero_at(0, 1, 1, 3));
  EXPECT_TRUE(rec.zero_at(0, 2, 0, 3));
  EXPECT_FALSE(rec.zero_at(0, 0, 0, 3));
  int checked = 0;
  EXPECT_LT(MaxRatioError(v, rec, 0, &checked), kPaperBound);
}

TEST(WeightAttack, MaxPoolNegativeBias) {
  // 2x2/2 max pool fused after a 3x3 conv (paper Eq. 10 regime).
  const Victim v = MakeVictim(5, 1, 12, 2, 3, 1, nn::PoolKind::kMax, 2, 2,
                              true, -1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  int checked = 0;
  const float err = MaxRatioError(v, rec, 0, &checked);
  EXPECT_LT(err, kPaperBound);
  EXPECT_GE(checked, 7);  // pinning may fail on isolated degenerate spots
}

TEST(WeightAttack, MaxPool3x3Stride2) {
  const Victim v = MakeVictim(6, 1, 15, 1, 3, 1, nn::PoolKind::kMax, 3, 2,
                              true, -1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  int checked = 0;
  EXPECT_LT(MaxRatioError(v, rec, 0, &checked), kPaperBound);
  EXPECT_GE(checked, 7);
}

TEST(WeightAttack, MaxPoolPositiveBiasIsBlindWithoutKnob) {
  const Victim v = MakeVictim(7, 1, 12, 1, 3, 1, nn::PoolKind::kMax, 2, 2,
                              true, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  // Every position must be reported failed, not silently wrong.
  for (bool f : rec.failed) EXPECT_TRUE(f);
}

TEST(WeightAttack, AvgPoolBeforeActivation) {
  // Pre-activation 2x2/2 average pooling (paper Eq. 11 regime).
  const Victim v = MakeVictim(8, 1, 12, 2, 3, 1, nn::PoolKind::kAvg, 2, 2,
                              false, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  int checked = 0;
  EXPECT_LT(MaxRatioError(v, rec, 0, &checked), 4 * kPaperBound);
  EXPECT_GE(checked, 8);
}

TEST(WeightAttack, ThresholdKnobRecoversAbsoluteWeights) {
  Victim v = MakeVictim(9, 1, 10, 2, 3, 1, nn::PoolKind::kNone, 0, 0, true,
                        +1.0f);
  v.spec.has_threshold_knob = true;
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  const auto abs = attack.RecoverAbsolute(0, rec);
  ASSERT_TRUE(abs.has_value());
  EXPECT_NEAR(abs->bias, v.bias.at(0), 2e-3f);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_NEAR(abs->weights.at(0, i, j), v.weights.at(0, 0, i, j), 5e-3f)
          << i << "," << j;
}

TEST(WeightAttack, AbsoluteRecoveryNeedsKnob) {
  const Victim v = MakeVictim(10, 1, 10, 1, 3, 1, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);  // no knob
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  EXPECT_FALSE(attack.RecoverAbsolute(0, rec).has_value());
}

TEST(WeightAttack, AggregateModeRecoversRatioSets) {
  const Victim v = MakeVictim(11, 1, 8, 3, 2, 1, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  const auto sets = attack.RecoverRatioSetsAggregate();
  ASSERT_EQ(sets.size(), 4u);  // 2x2 filter positions
  // The pixel isolating position (i,j) also reaches the already-covered
  // weights (ky <= i, kx <= j), so each crossing's -1/x* must match some
  // filter's w/b at one of those positions (the paper's "new crossing"
  // bookkeeping). Position (0,0) has exactly one candidate weight per
  // filter.
  EXPECT_GE(sets[0].size(), 2u);
  for (std::size_t pos = 0; pos < sets.size(); ++pos) {
    const int i = static_cast<int>(pos) / 2;
    const int j = static_cast<int>(pos) % 2;
    for (float x : sets[pos]) {
      const float recovered = -1.0f / x;
      float best = 1e9f;
      for (int k = 0; k < 3; ++k)
        for (int ky = 0; ky <= i; ++ky)
          for (int kx = 0; kx <= j; ++kx)
            best = std::min(best,
                            std::fabs(recovered -
                                      v.weights.at(k, 0, ky, kx) /
                                          v.bias.at(k)));
      EXPECT_LT(best, 1e-2f) << "pos " << pos;
    }
  }
}

TEST(WeightAttack, EndToEndAgainstAcceleratorOracle) {
  // The full side channel: accelerator simulator + zero pruning + trace
  // decode, no shortcuts.
  models::ConvStageVictimSpec spec;
  spec.in_depth = 1;
  spec.in_width = 8;
  spec.out_depth = 2;
  spec.filter = 3;
  spec.stride = 1;
  spec.pad = 0;
  nn::Tensor w(nn::Shape{2, 1, 3, 3});
  nn::Tensor b(nn::Shape{2});
  sc::Rng rng(12);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  b.at(0) = 0.3f;
  b.at(1) = -0.2f;
  nn::Network net = models::MakeConvStageVictim(spec, w, b);
  AcceleratorOracle oracle(net, net.num_nodes() - 1,
                           accel::AcceleratorConfig{});

  SparseConvOracle::StageSpec geo;
  geo.in_depth = 1;
  geo.in_width = 8;
  geo.filter = 3;
  geo.stride = 1;
  WeightAttackConfig cfg;
  cfg.max_bisect_iters = 60;
  WeightAttack attack(oracle, geo, cfg);
  for (int k = 0; k < 2; ++k) {
    const RecoveredFilter rec = attack.RecoverFilter(k);
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        EXPECT_NEAR(rec.ratio.at(0, i, j), w.at(k, 0, i, j) / b.at(k),
                    kPaperBound)
            << "filter " << k;
  }
}

// Oracle whose Clone() succeeds only `budget` times, then returns nullptr —
// models a probe with a bounded duplication budget. RecoverAllFilters'
// parallel path probes Clone() once up front; a mid-run nullptr must fall
// back to serialized chunks on the shared oracle, not crash.
class FlakyCloneOracle : public ZeroCountOracle {
 public:
  FlakyCloneOracle(const Victim& v, int budget)
      : inner_(v.spec, v.weights, v.bias), budget_(budget) {}

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>& pixels,
                              int channel) override {
    ++queries_;
    return inner_.ChannelNonZeros(pixels, channel);
  }
  std::size_t TotalNonZeros(const std::vector<SparsePixel>& pixels) override {
    ++queries_;
    return inner_.TotalNonZeros(pixels);
  }
  int num_channels() const override { return inner_.num_channels(); }
  std::unique_ptr<ZeroCountOracle> Clone() const override {
    if (clones_made_ >= budget_) return nullptr;
    ++clones_made_;
    return inner_.Clone();
  }

 private:
  SparseConvOracle inner_;
  int budget_;
  mutable int clones_made_ = 0;
};

TEST(RecoverAllFilters, FallsBackWhenCloneBudgetExhaustsMidRun) {
  const Victim v = MakeVictim(31, 2, 10, 6, 3, 1, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  SparseConvOracle serial_oracle(v.spec, v.weights, v.bias);
  std::vector<RecoveredFilter> serial;
  {
    WeightAttack attack(serial_oracle, v.spec, WeightAttackConfig{});
    for (int k = 0; k < 6; ++k) serial.push_back(attack.RecoverFilter(k));
  }

  // Budget 1: the up-front probe succeeds, every worker chunk's Clone()
  // returns nullptr, so all six filters run through the mutex fallback.
  for (const int budget : {1, 3}) {
    FlakyCloneOracle flaky(v, budget);
    const std::vector<RecoveredFilter> got =
        RecoverAllFilters(flaky, v.spec, WeightAttackConfig{});
    ASSERT_EQ(got.size(), serial.size()) << "budget " << budget;
    for (std::size_t k = 0; k < serial.size(); ++k) {
      EXPECT_EQ(got[k].queries, serial[k].queries)
          << "budget " << budget << " filter " << k;
      for (std::size_t i = 0; i < serial[k].ratio.numel(); ++i)
        EXPECT_EQ(got[k].ratio[i], serial[k].ratio[i])
            << "budget " << budget << " filter " << k;
    }
  }
}

TEST(RecoverAllFilters, NonCloneableOracleStaysSerial) {
  const Victim v = MakeVictim(32, 1, 9, 3, 3, 1, nn::PoolKind::kNone, 0, 0,
                              true, +1.0f);
  FlakyCloneOracle sealed(v, 0);  // never cloneable, not even the probe
  const std::vector<RecoveredFilter> got =
      RecoverAllFilters(sealed, v.spec, WeightAttackConfig{});

  SparseConvOracle oracle(v.spec, v.weights, v.bias);
  WeightAttack attack(oracle, v.spec, WeightAttackConfig{});
  for (int k = 0; k < 3; ++k) {
    const RecoveredFilter want = attack.RecoverFilter(k);
    const auto ku = static_cast<std::size_t>(k);
    EXPECT_EQ(got[ku].queries, want.queries);
    for (std::size_t i = 0; i < want.ratio.numel(); ++i)
      EXPECT_EQ(got[ku].ratio[i], want.ratio[i]);
  }
}

}  // namespace
}  // namespace sc::attack
