// End-to-end structure attack: simulator trace in, candidate structures out.
#include "attack/structure/pipeline.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

trace::Trace TraceOf(const nn::Network& net, std::uint64_t seed) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accel.Run(net, RandomInput(net.input_shape(), seed), &tr);
  return tr;
}

// True if some candidate reproduces the exact geometry chain of `truth`
// (compared through the per-layer 11-parameter tuples).
bool ContainsTruth(const StructureAttackResult& result,
                   const std::vector<nn::LayerGeometry>& truth) {
  for (const CandidateStructure& cs : result.search.structures) {
    if (cs.layers.size() != truth.size()) continue;
    bool all = true;
    for (std::size_t i = 0; i < truth.size() && all; ++i) {
      nn::LayerGeometry t = truth[i];
      if (t.has_pool()) t.pool = nn::PoolKind::kMax;
      all = cs.layers[i].geom == t;
    }
    if (all) return true;
  }
  return false;
}

TEST(StructureAttack, RecoversLeNetFamily) {
  nn::Network net = models::MakeLeNet(3);
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  const StructureAttackResult r = RunStructureAttack(TraceOf(net, 1), cfg);

  ASSERT_EQ(r.analysis.observations.size(), 4u);
  const std::vector<nn::LayerGeometry> truth = {
      {28, 1, 12, 20, 5, 1, 0, nn::PoolKind::kMax, 2, 2, 0},
      {12, 20, 4, 50, 5, 1, 0, nn::PoolKind::kMax, 2, 2, 0},
      {4, 50, 1, 500, 4, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 500, 1, 10, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
  };
  EXPECT_TRUE(ContainsTruth(r, truth));
  EXPECT_GE(r.num_structures(), 1u);
  EXPECT_LE(r.num_structures(), 64u) << "candidate set should stay small";
}

TEST(StructureAttack, RecoversConvNetFamily) {
  nn::Network net = models::MakeConvNet(4);
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3 * 32 * 32;
  cfg.search.known_input_width = 32;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 10;
  const StructureAttackResult r = RunStructureAttack(TraceOf(net, 2), cfg);

  const std::vector<nn::LayerGeometry> truth = {
      {32, 3, 16, 32, 5, 1, 2, nn::PoolKind::kMax, 2, 2, 0},
      {16, 32, 8, 32, 5, 1, 2, nn::PoolKind::kMax, 2, 2, 0},
      {8, 32, 4, 64, 3, 1, 1, nn::PoolKind::kMax, 2, 2, 0},
      {4, 64, 1, 10, 4, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
  };
  EXPECT_TRUE(ContainsTruth(r, truth));
  EXPECT_GE(r.num_structures(), 1u);
}

TEST(StructureAttack, FireModuleTopologyAndBypass) {
  // Miniature SqueezeNet-like victim exercising branch, concat, bypass.
  nn::Network net(nn::Shape{3, 16, 16});
  int c1 = net.Add(std::make_unique<nn::Conv2D>("c1", 3, 8, 3, 1, 1),
                   {nn::kInputNode});
  int r1 = net.Add(std::make_unique<nn::Relu>("r1"), {c1});
  // fire: squeeze 4, expand 4+4.
  int s = net.Add(std::make_unique<nn::Conv2D>("sq", 8, 4, 1, 1, 0), {r1});
  int rs = net.Add(std::make_unique<nn::Relu>("rs"), {s});
  int e1 = net.Add(std::make_unique<nn::Conv2D>("e1", 4, 4, 1, 1, 0), {rs});
  int re1 = net.Add(std::make_unique<nn::Relu>("re1"), {e1});
  int e3 = net.Add(std::make_unique<nn::Conv2D>("e3", 4, 4, 3, 1, 1), {rs});
  int re3 = net.Add(std::make_unique<nn::Relu>("re3"), {e3});
  int cat = net.Add(std::make_unique<nn::Concat>("cat", 2), {re1, re3});
  int byp = net.Add(std::make_unique<nn::EltwiseAdd>("byp", 2), {cat, r1});
  int c10 = net.Add(std::make_unique<nn::Conv2D>("c10", 8, 10, 1, 1, 0),
                    {byp});
  int r10 = net.Add(std::make_unique<nn::Relu>("r10"), {c10});
  net.Add(nn::MakeAvgPool("gpool", 16, 1), {r10});
  sc::Rng rng(6);
  nn::InitNetwork(net, rng);

  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3 * 16 * 16;
  cfg.search.known_input_width = 16;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 10;
  // Layers this small are memory-bound on the accelerator, so the paper's
  // compute-bound timing assumption does not hold; this test exercises the
  // topology recovery, so the timing filter stays off.
  cfg.search.timing_tolerance = 0.0;
  const StructureAttackResult r = RunStructureAttack(TraceOf(net, 3), cfg);

  // Segments: c1, squeeze, e1, e3, eltwise, conv10(+gpool fused).
  ASSERT_EQ(r.analysis.observations.size(), 6u);
  EXPECT_EQ(r.analysis.observations[4].role, SegmentRole::kEltwise);
  EXPECT_GE(r.num_structures(), 1u);
  // Every surviving candidate must place the fire-module widths correctly.
  for (const CandidateStructure& cs : r.search.structures) {
    EXPECT_EQ(cs.layers[1].geom.d_ifm, 8);   // squeeze input depth
    EXPECT_EQ(cs.layers[4].geom.d_ifm, 8);   // eltwise operand depth
    EXPECT_EQ(cs.layers[5].geom.d_ofm, 10);  // classes
    EXPECT_EQ(cs.layers[5].geom.w_ofm, 1);
  }
  (void)cat;
}

TEST(InstantiateCandidate, RebuildsTrainableNetwork) {
  nn::Network net = models::MakeLeNet(7);
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  const StructureAttackResult r = RunStructureAttack(TraceOf(net, 5), cfg);
  ASSERT_GE(r.num_structures(), 1u);

  InstantiateOptions opts;
  opts.channel_divisor = 2;
  opts.num_classes = 5;
  nn::Network rebuilt = InstantiateCandidate(
      r.analysis.observations, r.search.structures[0], opts);
  EXPECT_EQ(rebuilt.input_shape(), nn::Shape({1, 28, 28}));
  EXPECT_EQ(rebuilt.final_shape(), nn::Shape({5, 1, 1}));
  // It must run end to end.
  nn::Tensor x = RandomInput(rebuilt.input_shape(), 8);
  EXPECT_NO_THROW(rebuilt.ForwardFinal(x));
}

}  // namespace
}  // namespace sc::attack
