// Golden-artifact regression tests for the bench CSV formats.
//
// Regenerates miniature (LeNet-sized) versions of the fig3 trace series
// and the table4 structures export and diffs them byte-for-byte against
// CSVs committed under tests/golden/. Any change to the accelerator's
// traffic model, the structure search, or the CSV writers shows up as a
// full-text diff here instead of silently shifting the paper-figure
// artifacts.
//
// To regenerate after an intentional change:
//   SC_REGEN_GOLDENS=1 ./build/tests/golden_artifact_test
// then commit the rewritten files in tests/golden/ with the change.
//
// Default-config traces are data-independent (zero pruning off), so these
// bytes depend only on model geometry and the accelerator timing model —
// not on float arithmetic — and are stable across compilers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/report.h"
#include "models/zoo.h"
#include "nn/tensor.h"
#include "trace/trace.h"

#ifndef SC_GOLDEN_DIR
#error "SC_GOLDEN_DIR must be defined by the build (tests/CMakeLists.txt)"
#endif

namespace sc {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(SC_GOLDEN_DIR) + "/" + name;
}

bool RegenRequested() {
  const char* env = std::getenv("SC_REGEN_GOLDENS");
  return env && std::string(env) == "1";
}

// Compares `actual` against the committed golden, or rewrites the golden
// when SC_REGEN_GOLDENS=1. On mismatch the first differing line is named,
// so the failure is actionable without running a diff tool.
void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open()) << "cannot rewrite " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open())
      << path << " missing; regenerate with SC_REGEN_GOLDENS=1";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string expected = buf.str();
  if (actual == expected) return;

  std::istringstream a(actual), e(expected);
  std::string al, el;
  std::size_t lineno = 0;
  while (true) {
    ++lineno;
    const bool more_a = static_cast<bool>(std::getline(a, al));
    const bool more_e = static_cast<bool>(std::getline(e, el));
    if (!more_a && !more_e) break;
    ASSERT_EQ(more_a, more_e) << name << ": length differs at line "
                              << lineno;
    ASSERT_EQ(al, el) << name << ": first difference at line " << lineno;
  }
  FAIL() << name << " differs from golden";  // unreachable in practice
}

// The shared LeNet capture both artifacts derive from. The input is a
// constant tensor: with zero pruning off the trace is data-independent,
// and a constant keeps that visibly true in the test itself.
trace::Trace CaptureLeNetTrace() {
  nn::Network net = models::MakeLeNet(3);
  nn::Tensor input(net.input_shape(), 0.5f);
  accel::AcceleratorConfig cfg;
  // Golden CSVs are byte-exact captures of the weight-stationary schedule;
  // pin the dataflow so SC_DATAFLOW sweeps cannot redefine them.
  cfg.dataflow = accel::Dataflow::kWeightStationary;
  accel::Accelerator accelerator{cfg};
  trace::Trace tr;
  accelerator.Run(net, input, &tr);
  return tr;
}

TEST(GoldenArtifact, Fig3StyleLeNetTraceSeries) {
  const trace::Trace tr = CaptureLeNetTrace();
  // Same downsampled address-vs-time series fig3_memory_trace.cc emits,
  // shrunk to ~2000 points so the golden stays reviewable.
  const std::size_t stride = std::max<std::size_t>(1, tr.size() / 2000);
  std::ostringstream csv;
  csv << "cycle,addr,op\n";
  for (std::size_t i = 0; i < tr.size(); i += stride)
    csv << tr[i].cycle << ',' << tr[i].addr << ','
        << trace::ToString(tr[i].op) << '\n';
  CheckGolden("fig3_lenet_trace.csv", csv.str());
}

TEST(GoldenArtifact, Table4StyleLeNetStructures) {
  const trace::Trace tr = CaptureLeNetTrace();
  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  const attack::StructureAttackResult r = attack::RunStructureAttack(tr, cfg);
  ASSERT_GT(r.search.structures.size(), 0u);

  std::ostringstream csv;
  attack::WriteStructuresCsv(csv, r.search);
  CheckGolden("table4_lenet_structures.csv", csv.str());
}

// The round-trip golden: the captured trace serialized through the Trace
// CSV writer itself (full fidelity, not downsampled) must both match the
// golden and parse back to an identical trace. Guards the on-disk trace
// format end to end.
TEST(GoldenArtifact, LeNetTraceCsvRoundTrip) {
  const trace::Trace tr = CaptureLeNetTrace();
  std::ostringstream csv;
  tr.WriteCsv(csv);
  std::istringstream in(csv.str());
  const trace::Trace back = trace::Trace::ReadCsv(in);
  ASSERT_EQ(back.size(), tr.size());
  for (std::size_t i = 0; i < tr.size(); ++i) EXPECT_EQ(back[i], tr[i]);
}

}  // namespace
}  // namespace sc
