#include "attack/structure/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/check.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

using nn::LayerGeometry;
using nn::PoolKind;

LayerObservation ObservationFor(const LayerGeometry& g, bool with_bias) {
  LayerObservation o;
  o.role = SegmentRole::kConvOrFc;
  // Observed IFM reads cover (W - u) * W * D (row-granular DMA) where u is
  // the conv walk's unread row tail (0 for exact division and FC layers).
  const int rem =
      (g.w_ifm + 2 * g.p_conv - g.f_conv) % g.s_conv;
  const int u = g.IsFullyConnected() ? 0 : std::max(0, rem - g.p_conv);
  o.size_ifm =
      static_cast<long long>(g.w_ifm - u) * g.w_ifm * g.d_ifm;
  o.size_ofm = g.SizeOfm();
  o.size_fltr = g.SizeFilter() + (with_bias ? g.d_ofm : 0);
  return o;
}

bool ContainsSameShape(const std::vector<LayerGeometry>& cands,
                       const LayerGeometry& truth) {
  // The trace cannot distinguish max from average pooling (compare with
  // the pool kind normalized), and paddings whose extra ring is discarded
  // by floor division are trace-equivalent (the solver returns the
  // canonical minimal padding), so p_conv matches only up to equal conv
  // widths.
  return std::any_of(cands.begin(), cands.end(), [&](LayerGeometry c) {
    LayerGeometry t = truth;
    if (t.has_pool()) t.pool = PoolKind::kMax;
    if (c == t) return true;
    LayerGeometry cp = c;
    cp.p_conv = t.p_conv;
    return cp == t && c.p_conv <= t.p_conv &&
           c.ConvStageWidth() == t.ConvStageWidth();
  });
}

TEST(FactorizeFmapSize, AllSquareFactorizations) {
  const IfmDims dims = FactorizeFmapSize(27 * 27 * 96);
  // Must contain (27, 96) and (54, 24); all entries must multiply back.
  EXPECT_TRUE(std::count(dims.begin(), dims.end(),
                         std::make_pair(27, 96)) == 1);
  EXPECT_TRUE(std::count(dims.begin(), dims.end(),
                         std::make_pair(54, 24)) == 1);
  for (auto [w, d] : dims)
    EXPECT_EQ(static_cast<long long>(w) * w * d, 27LL * 27 * 96);
}

TEST(EnumerateConvConfigs, FindsAlexNetConv1) {
  LayerGeometry truth{227, 3, 27, 96, 11, 4, 0, PoolKind::kMax, 3, 2, 0};
  ASSERT_TRUE(truth.IsConsistent());
  SolverConfig cfg;
  auto cands = EnumerateConvConfigs(ObservationFor(truth, false),
                                    {{227, 3}}, cfg);
  EXPECT_TRUE(ContainsSameShape(cands, truth));
  // The paper's CONV1_2 sibling must also appear.
  LayerGeometry sibling{227, 3, 27, 96, 11, 4, 2, PoolKind::kMax, 4, 2, 0};
  EXPECT_TRUE(ContainsSameShape(cands, sibling));
  // Everything returned is internally consistent and size-matching.
  for (const LayerGeometry& g : cands) {
    EXPECT_TRUE(g.IsConsistent()) << g;
    EXPECT_EQ(g.SizeIfm(), truth.SizeIfm());
    EXPECT_EQ(g.SizeOfm(), truth.SizeOfm());
    EXPECT_EQ(g.SizeFilter(), truth.SizeFilter());
  }
}

TEST(EnumerateConvConfigs, FcAlwaysUniqueForGivenInput) {
  // AlexNet fc6: 6x6x256 -> 4096.
  LayerGeometry fc{6, 256, 1, 4096, 6, 1, 0, PoolKind::kNone, 0, 0, 0};
  SolverConfig cfg;
  auto cands = EnumerateConvConfigs(ObservationFor(fc, false), {{6, 256}},
                                    cfg);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_TRUE(cands[0].IsFullyConnected());
  EXPECT_EQ(cands[0].d_ofm, 4096);
}

TEST(EnumerateConvConfigs, BiasInRegionConventionAlsoSolves) {
  LayerGeometry truth{28, 1, 12, 20, 5, 1, 0, PoolKind::kMax, 2, 2, 0};
  SolverConfig cfg;
  cfg.bias_in_filter_region = true;
  auto cands = EnumerateConvConfigs(ObservationFor(truth, true),
                                    {{28, 1}}, cfg);
  EXPECT_TRUE(ContainsSameShape(cands, truth));
}

TEST(EnumerateConvConfigs, GlobalPoolingOnUnitOutput) {
  // SqueezeNet conv10 fused with its global average pool: 13x13x512 ->
  // 1x1x1000 through a 1x1 conv and a 13-wide pool window.
  LayerGeometry truth{13, 512, 1, 1000, 1, 1, 0, PoolKind::kAvg, 13, 1, 0};
  ASSERT_TRUE(truth.IsConsistent());
  SolverConfig cfg;
  auto cands = EnumerateConvConfigs(ObservationFor(truth, false),
                                    {{13, 512}}, cfg);
  EXPECT_TRUE(ContainsSameShape(cands, truth));
}

TEST(EnumerateConvConfigs, DegenerateObservationsThrow) {
  LayerObservation o;
  o.size_ifm = 100;
  o.size_ofm = 10;
  o.size_fltr = 0;
  EXPECT_THROW(EnumerateConvConfigs(o, {{10, 1}}, SolverConfig{}),
               sc::Error);
}

TEST(EnumerateStandalonePoolConfigs, FindsSqueezeNetPool) {
  // maxpool 3/2 on 109x109x96 -> 54x54x96.
  LayerObservation o;
  o.role = SegmentRole::kPool;
  o.size_ifm = 109LL * 109 * 96;
  o.size_ofm = 54LL * 54 * 96;
  o.size_fltr = 0;
  SolverConfig cfg;
  auto cands = EnumerateStandalonePoolConfigs(o, {{109, 96}}, cfg);
  const bool found = std::any_of(
      cands.begin(), cands.end(), [](const LayerGeometry& g) {
        return g.f_pool == 3 && g.s_pool == 2 && g.p_pool == 0;
      });
  EXPECT_TRUE(found);
  for (const LayerGeometry& g : cands) {
    EXPECT_EQ(g.d_ofm, 96);
    EXPECT_EQ(g.w_ofm, 54);
  }
}

TEST(EnumerateEltwiseConfigs, PassThrough) {
  LayerObservation o;
  o.role = SegmentRole::kEltwise;
  o.size_ifm = 2 * (12LL * 12 * 8);
  o.size_ofm = 12LL * 12 * 8;
  ObservedInput in;
  in.elems = 12LL * 12 * 8;
  o.inputs = {in, in};
  auto cands = EnumerateEltwiseConfigs(o, {{12, 8}});
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].w_ofm, 12);
  EXPECT_EQ(cands[0].d_ofm, 8);
}

// Property: for random consistent layer geometries built under the solver's
// priors, the enumeration over the true (W, D) input always contains the
// ground truth.
class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, GroundTruthAlwaysEnumerated) {
  sc::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  SolverConfig cfg;

  for (int trial = 0; trial < 30; ++trial) {
    LayerGeometry g;
    g.w_ifm = rng.UniformInt(8, 64);
    g.d_ifm = rng.UniformInt(1, 32);
    g.f_conv = rng.UniformInt(1, std::max(1, g.w_ifm / 2));
    g.s_conv = rng.UniformInt(1, g.f_conv);
    // Stay inside the solver's half-filter padding prior.
    g.p_conv = rng.UniformInt(0, (g.f_conv - 1) / 2);
    if (g.w_ifm + 2 * g.p_conv < g.f_conv) continue;
    g.d_ofm = rng.UniformInt(1, 64);
    const int w_conv = g.ConvStageWidth();
    if (rng.Chance(0.5) && w_conv >= 2) {
      for (int fp = 2; fp <= std::min(cfg.max_pool_window, w_conv); ++fp) {
        for (int sp = 1; sp <= fp; ++sp) {
          if (nn::PoolDividesExactly(w_conv, fp, sp, 0)) {
            g.pool = PoolKind::kMax;
            g.f_pool = fp;
            g.s_pool = sp;
            g.p_pool = 0;
            break;
          }
        }
        if (g.has_pool()) break;
      }
    }
    g.w_ofm = g.has_pool()
                  ? nn::PoolOutWidth(w_conv, g.f_pool, g.s_pool, 0)
                  : w_conv;
    if (!g.IsConsistent()) continue;

    auto cands = EnumerateConvConfigs(ObservationFor(g, false),
                                      {{g.w_ifm, g.d_ifm}}, cfg);
    EXPECT_TRUE(ContainsSameShape(cands, g)) << "missing truth: " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGeometries, SolverPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace sc::attack
