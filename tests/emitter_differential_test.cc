// Differential suite for the bulk columnar emission path (DESIGN.md §15).
//
// The producer-side overhaul replaced per-event Trace::Append with stage
// blocks landed via AppendColumns. These tests pin the old behaviour three
// ways:
//   - LegacyEmitter (tests/legacy_emitter.h, the verbatim pre-bulk emitter)
//     and the current Emitter are driven through identical random burst
//     schedules and must produce byte-identical traces and clocks;
//   - full-network traces for the three paper victims, both dataflows,
//     pruning on and off, must match FNV-1a hashes captured from the
//     pre-refactor emitter (any cycle, address, size or op drift fails);
//   - a synthesis-cache replay of a run must be byte-identical to the fresh
//     synthesis it memoized, including when the fresh run used the parallel
//     per-stage path.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/backend_common.h"
#include "accel/config.h"
#include "accel/synthesis_cache.h"
#include "legacy_emitter.h"
#include "models/zoo.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace sc {
namespace {

void ExpectTracesEqual(const trace::Trace& a, const trace::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].cycle, b[i].cycle) << "event " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "event " << i;
    ASSERT_EQ(a[i].bytes, b[i].bytes) << "event " << i;
    ASSERT_EQ(a[i].op, b[i].op) << "event " << i;
  }
}

// FNV-1a over every event's (cycle, addr, bytes, op), each mixed as a
// little-endian u64 — the digest the pinned table below was captured with.
std::uint64_t TraceHash(const trace::Trace& t) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    const trace::MemEvent& e = t[i];
    mix(e.cycle);
    mix(e.addr);
    mix(e.bytes);
    mix(static_cast<std::uint64_t>(e.op));
  }
  return h;
}

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

// --- LegacyEmitter vs Emitter on synthetic burst schedules ---------------

struct BurstOp {
  enum Kind { kRead, kWrite, kTile, kStageEnd } kind;
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;
  long long macs = 0;
  long long simd = 0;
};

std::vector<BurstOp> RandomSchedule(Rng& rng) {
  std::vector<BurstOp> ops;
  const int stages = rng.UniformInt(1, 4);
  for (int s = 0; s < stages; ++s) {
    const int tiles = rng.UniformInt(1, 6);
    for (int t = 0; t < tiles; ++t) {
      const int bursts = rng.UniformInt(0, 8);
      for (int b = 0; b < bursts; ++b) {
        BurstOp op;
        op.kind = rng.Chance(0.6) ? BurstOp::kRead : BurstOp::kWrite;
        op.addr = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 20));
        // Zero-byte bursts are legal emitter input (suppressed, no event).
        op.bytes = static_cast<std::uint64_t>(rng.UniformInt(0, 4096));
        ops.push_back(op);
      }
      BurstOp tile;
      tile.kind = BurstOp::kTile;
      tile.macs = rng.UniformInt(0, 100000);
      tile.simd = rng.UniformInt(0, 5000);
      ops.push_back(tile);
    }
    ops.push_back(BurstOp{BurstOp::kStageEnd});
  }
  return ops;
}

accel::AcceleratorConfig RandomEmitterConfig(Rng& rng) {
  accel::AcceleratorConfig cfg;
  cfg.macs_per_cycle = 1 << rng.UniformInt(0, 8);
  cfg.simd_lanes = 1 << rng.UniformInt(0, 5);
  cfg.bytes_per_cycle = 1 << rng.UniformInt(0, 6);
  cfg.collect_metrics = false;
  return cfg;
}

TEST(EmitterDifferential, SyntheticSchedulesMatchLegacy) {
  for (int seed = 0; seed < 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(7000 + seed));
    const accel::AcceleratorConfig cfg = RandomEmitterConfig(rng);
    const std::vector<BurstOp> ops = RandomSchedule(rng);

    trace::Trace legacy_tr;
    accel::LegacyEmitter legacy(&legacy_tr, cfg);
    trace::Trace bulk_tr;
    accel::Emitter bulk(&bulk_tr, cfg);
    accel::StageBlock block;

    legacy.BeginStage();
    bulk.BeginStage(&block);
    for (const BurstOp& op : ops) {
      switch (op.kind) {
        case BurstOp::kRead:
          legacy.Read(op.addr, op.bytes);
          bulk.Read(op.addr, op.bytes);
          break;
        case BurstOp::kWrite:
          legacy.Write(op.addr, op.bytes);
          bulk.Write(op.addr, op.bytes);
          break;
        case BurstOp::kTile:
          legacy.FinishTile(op.macs, op.simd);
          bulk.FinishTile(op.macs, op.simd);
          break;
        case BurstOp::kStageEnd:
          ASSERT_EQ(legacy.stage_read(), bulk.stage_read());
          ASSERT_EQ(legacy.stage_written(), bulk.stage_written());
          bulk.EndStage();
          legacy.BeginStage();
          bulk.BeginStage(&block);
          break;
      }
      ASSERT_EQ(legacy.cycle(), bulk.cycle());
    }
    bulk.EndStage();
    ExpectTracesEqual(legacy_tr, bulk_tr);
  }
}

// A stage recorded into a block and replayed later must land the same
// events the legacy emitter produces when re-driven at that clock.
TEST(EmitterDifferential, ReplayedBlockIsShiftInvariant) {
  for (int seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(9000 + seed));
    const accel::AcceleratorConfig cfg = RandomEmitterConfig(rng);
    // One stage only: strip stage boundaries so the whole schedule lands in
    // a single replayable block.
    std::vector<BurstOp> ops = RandomSchedule(rng);
    std::erase_if(ops, [](const BurstOp& op) {
      return op.kind == BurstOp::kStageEnd;
    });

    const auto drive = [&ops](accel::Emitter& e) {
      for (const BurstOp& op : ops) {
        switch (op.kind) {
          case BurstOp::kRead:
            e.Read(op.addr, op.bytes);
            break;
          case BurstOp::kWrite:
            e.Write(op.addr, op.bytes);
            break;
          case BurstOp::kTile:
            e.FinishTile(op.macs, op.simd);
            break;
          case BurstOp::kStageEnd:
            break;
        }
      }
      e.EndStage();
    };

    // Record the schedule once from clock 0 (no sink needed).
    accel::Emitter recorder(nullptr, cfg);
    accel::StageBlock recorded;
    recorder.BeginStage(&recorded);
    drive(recorder);

    // Re-drive fresh at an advanced clock vs replaying the recorded block
    // there.
    trace::Trace fresh_tr;
    accel::Emitter fresh(&fresh_tr, cfg);
    accel::StageBlock fresh_block;
    fresh.Read(64, 1024);  // prologue advances the clock
    fresh.FinishTile(1000, 0);
    const std::size_t prologue = fresh_tr.size();
    fresh.BeginStage(&fresh_block);
    drive(fresh);

    trace::Trace replay_tr;
    accel::Emitter replayer(&replay_tr, cfg);
    replayer.Read(64, 1024);
    replayer.FinishTile(1000, 0);
    replayer.Replay(recorded, /*add_metrics=*/false);

    ASSERT_EQ(fresh.cycle(), replayer.cycle());
    ASSERT_EQ(fresh_tr.size(), replay_tr.size());
    for (std::size_t i = prologue; i < fresh_tr.size(); ++i) {
      ASSERT_EQ(fresh_tr[i].cycle, replay_tr[i].cycle) << "event " << i;
      ASSERT_EQ(fresh_tr[i].addr, replay_tr[i].addr) << "event " << i;
      ASSERT_EQ(fresh_tr[i].bytes, replay_tr[i].bytes) << "event " << i;
      ASSERT_EQ(fresh_tr[i].op, replay_tr[i].op) << "event " << i;
    }
  }
}

// --- Pinned whole-network hashes -----------------------------------------

struct PinnedTrace {
  const char* net;
  int dataflow;  // 0 = weight-stationary, 1 = output-stationary
  int pruning;
  std::uint64_t hash;
  std::size_t events;
};

// Captured from the pre-refactor per-event emitter (seed commit) with
// networks seeded 1 and input RandomInput(shape, 11). The bulk/columnar
// path must reproduce these exactly, at any SC_THREADS setting.
constexpr PinnedTrace kPinned[] = {
    {"lenet", 0, 0, 0x5610e51c2d03c0d8ull, 659},
    {"lenet", 0, 1, 0x8cee840fee4bcc28ull, 160},
    {"lenet", 1, 0, 0x694f1067b9ae6e45ull, 659},
    {"lenet", 1, 1, 0xbe4c2395e23ee79eull, 160},
    {"convnet", 0, 0, 0x4d37aaebdb547acfull, 264},
    {"convnet", 0, 1, 0xb0d4ecaaae20611bull, 264},
    {"convnet", 1, 0, 0x25777ba675fa501bull, 264},
    {"convnet", 1, 1, 0x3b3bf7bd04284ebfull, 264},
    {"alexnet", 0, 0, 0x23636d4b652bb451ull, 119962},
    {"alexnet", 0, 1, 0x8650a3f20467d95aull, 43548},
    {"alexnet", 1, 0, 0x865fdb987dbcb241ull, 18425},
    {"alexnet", 1, 1, 0x639bf8e4eb94a12full, 10235},
};

nn::Network MakeVictim(const std::string& name) {
  if (name == "lenet") return models::MakeLeNet(1);
  if (name == "convnet") return models::MakeConvNet(1);
  return models::MakeAlexNet(1);
}

TEST(EmitterDifferential, PinnedNetworkTraceHashes) {
  for (const PinnedTrace& p : kPinned) {
    SCOPED_TRACE(std::string(p.net) + " dataflow=" +
                 std::to_string(p.dataflow) + " pruning=" +
                 std::to_string(p.pruning));
    const nn::Network net = MakeVictim(p.net);
    accel::AcceleratorConfig cfg;
    cfg.dataflow = p.dataflow == 0 ? accel::Dataflow::kWeightStationary
                                   : accel::Dataflow::kOutputStationary;
    cfg.zero_pruning = p.pruning != 0;
    const accel::Accelerator accel{cfg};
    trace::Trace tr;
    accel.Run(net, RandomInput(net.input_shape(), 11), &tr);
    EXPECT_EQ(tr.size(), p.events);
    EXPECT_EQ(TraceHash(tr), p.hash);
  }
}

// --- Cache replay vs fresh synthesis on the paper victims ----------------

TEST(EmitterDifferential, CacheReplayMatchesFreshSynthesis) {
  for (const PinnedTrace& p : kPinned) {
    SCOPED_TRACE(std::string(p.net) + " dataflow=" +
                 std::to_string(p.dataflow) + " pruning=" +
                 std::to_string(p.pruning));
    const nn::Network net = MakeVictim(p.net);
    accel::AcceleratorConfig cfg;
    cfg.dataflow = p.dataflow == 0 ? accel::Dataflow::kWeightStationary
                                   : accel::Dataflow::kOutputStationary;
    cfg.zero_pruning = p.pruning != 0;
    const accel::Accelerator accel{cfg};
    const nn::Tensor input = RandomInput(net.input_shape(), 11);

    trace::Trace fresh;
    const accel::RunResult fresh_run = accel.Run(net, input, &fresh);

    accel::SynthesisCache cache;
    trace::Trace miss;
    const accel::RunResult miss_run =
        accel.Run(net, input, &miss, nullptr, &cache);
    EXPECT_EQ(cache.run_hits(), 0u);
    trace::Trace hit;
    const accel::RunResult hit_run =
        accel.Run(net, input, &hit, nullptr, &cache);
    EXPECT_EQ(cache.run_hits(), 1u);

    ExpectTracesEqual(fresh, miss);
    ExpectTracesEqual(fresh, hit);
    for (const accel::RunResult* run : {&miss_run, &hit_run}) {
      ASSERT_EQ(run->stages.size(), fresh_run.stages.size());
      EXPECT_EQ(run->total_cycles, fresh_run.total_cycles);
      for (std::size_t s = 0; s < fresh_run.stages.size(); ++s) {
        EXPECT_EQ(run->stages[s].bytes_read, fresh_run.stages[s].bytes_read);
        EXPECT_EQ(run->stages[s].bytes_written,
                  fresh_run.stages[s].bytes_written);
        EXPECT_EQ(run->stages[s].start_cycle, fresh_run.stages[s].start_cycle);
        EXPECT_EQ(run->stages[s].end_cycle, fresh_run.stages[s].end_cycle);
        EXPECT_EQ(run->stages[s].macs, fresh_run.stages[s].macs);
        EXPECT_EQ(run->stages[s].ofm_nonzeros,
                  fresh_run.stages[s].ofm_nonzeros);
      }
      ASSERT_EQ(run->output.numel(), fresh_run.output.numel());
      for (std::size_t i = 0; i < fresh_run.output.numel(); ++i)
        EXPECT_EQ(run->output[i], fresh_run.output[i]) << "output elem " << i;
    }
  }
}

}  // namespace
}  // namespace sc
