#include "defense/obfuscation.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "defense/defense.h"
#include "models/zoo.h"
#include "support/rng.h"
#include "trace/stats.h"

namespace sc::defense {
namespace {

trace::Trace VictimTrace(std::uint64_t seed) {
  nn::Network net = models::MakeLeNet(seed);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor x(net.input_shape());
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &tr);
  return tr;
}

TEST(ObfuscateTrace, ReportsOverheads) {
  const trace::Trace victim = VictimTrace(1);
  ObfuscationConfig cfg;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.traffic_overhead, 1.0);
  EXPECT_GT(r.event_overhead, 1.0);
  EXPECT_GT(r.trace.size(), victim.size());
}

TEST(ObfuscateTrace, EmptyTrace) {
  const ObfuscationResult r = ObfuscateTrace(trace::Trace{}, {});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.traffic_overhead, 1.0);
}

TEST(ObfuscateTrace, DeterministicForSeed) {
  const trace::Trace victim = VictimTrace(2);
  ObfuscationConfig cfg;
  cfg.seed = 9;
  const ObfuscationResult a = ObfuscateTrace(victim, cfg);
  const ObfuscationResult b = ObfuscateTrace(victim, cfg);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i], b.trace[i]);
}

TEST(ObfuscateTrace, DefeatsStructureAttack) {
  const trace::Trace victim = VictimTrace(3);

  attack::StructureAttackConfig acfg;
  acfg.analysis.known_input_elems = 28 * 28;
  acfg.search.known_input_width = 28;
  acfg.search.known_input_depth = 1;
  acfg.search.known_output_classes = 10;

  // Attack succeeds on the raw trace.
  const auto clear = attack::RunStructureAttack(victim, acfg);
  ASSERT_GE(clear.num_structures(), 1u);

  // Behind the obfuscator the analysis either throws (unintelligible
  // regions) or yields nothing resembling the victim: no candidate set
  // containing the true 4-layer chain.
  const ObfuscationResult obf = ObfuscateTrace(victim, ObfuscationConfig{});
  bool truth_survives = false;
  try {
    const auto attacked = attack::RunStructureAttack(obf.trace, acfg);
    for (const auto& cs : attacked.search.structures) {
      if (cs.layers.size() == 4 && cs.layers[0].geom.f_conv == 5 &&
          cs.layers[0].geom.d_ofm == 20) {
        truth_survives = true;
      }
    }
  } catch (const sc::Error&) {
    // Analysis rejecting the trace outright is also a win for the defense.
  }
  EXPECT_FALSE(truth_survives);
}

TEST(ObfuscateTrace, NoPermutationStillAddsNoise) {
  const trace::Trace victim = VictimTrace(4);
  ObfuscationConfig cfg;
  cfg.permute_blocks = false;
  cfg.dummy_per_access = 1.0;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.trace.size(), victim.size());
}

// Deployment model (§5): the obfuscating controller sits between the bus
// and the probe via AcceleratorConfig::trace_fault_hook. It must change
// only the adversary's observation — the victim's outputs, stage stats and
// cycle counts are bit-identical with and without the hook.
TEST(ObfuscationTransform, HookChangesTraceButNotVictimOutputs) {
  nn::Network net = models::MakeLeNet(5);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(5);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);

  accel::Accelerator plain{accel::AcceleratorConfig{}};
  trace::Trace plain_trace;
  const accel::RunResult plain_run = plain.Run(net, x, &plain_trace);

  const ObfuscationTransform hook{ObfuscationConfig{}};
  accel::AcceleratorConfig cfg;
  cfg.trace_fault_hook = &hook;
  accel::Accelerator defended{cfg};
  trace::Trace defended_trace;
  const accel::RunResult defended_run = defended.Run(net, x, &defended_trace);

  // Victim side: arithmetic and timing untouched.
  ASSERT_EQ(defended_run.output.numel(), plain_run.output.numel());
  for (std::size_t i = 0; i < plain_run.output.numel(); ++i)
    ASSERT_EQ(defended_run.output[i], plain_run.output[i]) << "element " << i;
  EXPECT_EQ(defended_run.total_cycles, plain_run.total_cycles);
  ASSERT_EQ(defended_run.stages.size(), plain_run.stages.size());
  for (std::size_t s = 0; s < plain_run.stages.size(); ++s) {
    EXPECT_EQ(defended_run.stages[s].ofm_nonzeros,
              plain_run.stages[s].ofm_nonzeros);
  }

  // Adversary side: the observation is genuinely different (more traffic,
  // and not an event-for-event copy of the bus).
  EXPECT_GT(defended_trace.size(), plain_trace.size());
  EXPECT_GT(defended_trace.bytes_read() + defended_trace.bytes_written(),
            plain_trace.bytes_read() + plain_trace.bytes_written());
}

// The adapter is a faithful wrapper: Apply() must produce exactly the
// trace ObfuscateTrace() produces for the same config.
TEST(ObfuscationTransform, ApplyMatchesObfuscateTrace) {
  const trace::Trace victim = VictimTrace(6);
  ObfuscationConfig cfg;
  cfg.seed = 11;
  const ObfuscationTransform hook{cfg};
  const trace::Trace via_hook = hook.Apply(victim);
  const trace::Trace direct = ObfuscateTrace(victim, cfg).trace;
  ASSERT_EQ(via_hook.size(), direct.size());
  for (std::size_t i = 0; i < via_hook.size(); ++i)
    EXPECT_EQ(via_hook[i], direct[i]);
}

TEST(ObfuscateTrace, ValidatesConfig) {
  trace::Trace t;
  t.Append(0, 0, 64, trace::MemOp::kRead);
  ObfuscationConfig cfg;
  cfg.block_bytes = 16;  // below the supported minimum
  EXPECT_THROW(ObfuscateTrace(t, cfg), sc::Error);
}

// ---------------------------------------------------------------------------
// Common Defense interface (defense/defense.h): every shipped strategy must
// be reproducible per acquisition, re-randomize across acquisitions when it
// is randomized at all, and be invisible to the victim's arithmetic.

bool TracesEqual(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

TEST(DefenseSuite, EveryStrategyIsDeterministicPerAcquisition) {
  const trace::Trace victim = VictimTrace(21);
  for (DefenseKind kind : StandardDefenseKinds()) {
    if (kind == DefenseKind::kNone) continue;
    const auto a = MakeDefense(kind, Strength::kMedium, 7);
    const auto b = MakeDefense(kind, Strength::kMedium, 7);
    ASSERT_EQ(a->name(), b->name());
    const DefenseTransform* ta = a->trace_transform();
    const DefenseTransform* tb = b->trace_transform();
    ASSERT_EQ(ta == nullptr, tb == nullptr) << a->name();
    if (ta == nullptr) continue;  // rle_padding: no bus-level transform
    EXPECT_TRUE(TracesEqual(ta->Apply(victim), tb->Apply(victim)))
        << a->name() << ": Apply() not a pure function of (config, trace)";
    EXPECT_TRUE(TracesEqual(ta->ApplyNth(victim, 3), tb->ApplyNth(victim, 3)))
        << a->name() << ": acquisition stream 3 not reproducible";
  }
}

TEST(DefenseSuite, RandomizedStrategiesRerandomizePerAcquisition) {
  const trace::Trace victim = VictimTrace(22);
  // Randomized defenses must give acquisition k its own dummy placement —
  // a consensus attacker averaging K traces may not see the same noise K
  // times (the single-RNG reseeding bug this guards against made every
  // ApplyNth identical).
  for (DefenseKind kind : {DefenseKind::kObfuscation,
                           DefenseKind::kDummyTensor, DefenseKind::kStack}) {
    const auto d = MakeDefense(kind, Strength::kMedium, 7);
    const DefenseTransform* t = d->trace_transform();
    ASSERT_NE(t, nullptr);
    EXPECT_FALSE(TracesEqual(t->ApplyNth(victim, 0), t->ApplyNth(victim, 1)))
        << d->name() << ": acquisitions 0 and 1 saw identical noise";
  }
  // The shaper is deterministic by design: every acquisition is the same
  // constant-rate stream.
  const auto shaping = MakeDefense(DefenseKind::kShaping, Strength::kMedium);
  const DefenseTransform* t = shaping->trace_transform();
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(TracesEqual(t->ApplyNth(victim, 0), t->ApplyNth(victim, 1)));
}

TEST(DefenseSuite, NoStrategyChangesVictimOutputs) {
  nn::Network net = models::MakeLeNet(23);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(23);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);

  accel::Accelerator plain{accel::AcceleratorConfig{}};
  const accel::RunResult base = plain.Run(net, x, nullptr);

  for (DefenseKind kind : StandardDefenseKinds()) {
    for (Strength s : {Strength::kLow, Strength::kHigh}) {
      const auto d = MakeDefense(kind, s, 7);
      accel::AcceleratorConfig cfg;
      d->ConfigureAccelerator(cfg);
      cfg.defense_hook = d->trace_transform();
      accel::Accelerator defended{cfg};
      trace::Trace tr;
      const accel::RunResult run = defended.Run(net, x, &tr);
      ASSERT_EQ(run.output.numel(), base.output.numel()) << d->name();
      for (std::size_t i = 0; i < base.output.numel(); ++i)
        ASSERT_EQ(run.output[i], base.output[i])
            << d->name() << "/" << ToString(s) << " element " << i;
      ASSERT_EQ(run.stages.size(), base.stages.size()) << d->name();
      for (std::size_t st = 0; st < base.stages.size(); ++st)
        EXPECT_EQ(run.stages[st].ofm_nonzeros, base.stages[st].ofm_nonzeros)
            << d->name() << " stage " << st;
    }
  }
}

TEST(DefenseSuite, OracleTransformsArePureAndMaskSingleElementFlips) {
  // Algorithm 2 distinguishes a weight's sign by flipping one output element
  // between zero and non-zero; a count-channel defense must map those two
  // worlds to the same observation.
  for (DefenseKind kind : {DefenseKind::kRlePadding, DefenseKind::kShaping,
                           DefenseKind::kStack}) {
    const auto d = MakeDefense(kind, Strength::kMedium, 7);
    const OracleTransform* o = d->oracle_transform();
    ASSERT_NE(o, nullptr) << d->name();
    const std::size_t elems = 144;
    for (std::size_t c : {std::size_t{0}, std::size_t{1}, std::size_t{77}})
      EXPECT_EQ(o->Apply(c, elems), o->Apply(c, elems)) << d->name();
    EXPECT_EQ(o->Apply(0, elems), o->Apply(1, elems))
        << d->name() << ": a single-element flip is still observable";
    EXPECT_GE(o->Apply(0, elems), std::size_t{1})
        << d->name() << ": padding may only inflate counts";
  }
  // Defenses that leave the count channel open advertise it as nullptr.
  EXPECT_EQ(MakeDefense(DefenseKind::kObfuscation, Strength::kMedium)
                ->oracle_transform(),
            nullptr);
  EXPECT_EQ(MakeDefense(DefenseKind::kDummyTensor, Strength::kMedium)
                ->oracle_transform(),
            nullptr);
}

TEST(DefenseSuite, FactoryNamesAreStableScorecardKeys) {
  // ablation_defense and the nightly CI smoke grep these out of the CSV.
  EXPECT_EQ(MakeDefense(DefenseKind::kObfuscation, Strength::kLow)->name(),
            "obfuscation");
  EXPECT_EQ(MakeDefense(DefenseKind::kShaping, Strength::kLow)->name(),
            "shaping");
  EXPECT_EQ(MakeDefense(DefenseKind::kDummyTensor, Strength::kLow)->name(),
            "dummy_tensor");
  EXPECT_EQ(MakeDefense(DefenseKind::kRlePadding, Strength::kLow)->name(),
            "rle_padding");
  EXPECT_EQ(MakeDefense(DefenseKind::kStack, Strength::kLow)->name(),
            "stack");
  EXPECT_EQ(StandardDefenseKinds().front(), DefenseKind::kNone);
}

}  // namespace
}  // namespace sc::defense
