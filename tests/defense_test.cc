#include "defense/obfuscation.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "models/zoo.h"
#include "support/rng.h"
#include "trace/stats.h"

namespace sc::defense {
namespace {

trace::Trace VictimTrace(std::uint64_t seed) {
  nn::Network net = models::MakeLeNet(seed);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor x(net.input_shape());
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &tr);
  return tr;
}

TEST(ObfuscateTrace, ReportsOverheads) {
  const trace::Trace victim = VictimTrace(1);
  ObfuscationConfig cfg;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.traffic_overhead, 1.0);
  EXPECT_GT(r.event_overhead, 1.0);
  EXPECT_GT(r.trace.size(), victim.size());
}

TEST(ObfuscateTrace, EmptyTrace) {
  const ObfuscationResult r = ObfuscateTrace(trace::Trace{}, {});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.traffic_overhead, 1.0);
}

TEST(ObfuscateTrace, DeterministicForSeed) {
  const trace::Trace victim = VictimTrace(2);
  ObfuscationConfig cfg;
  cfg.seed = 9;
  const ObfuscationResult a = ObfuscateTrace(victim, cfg);
  const ObfuscationResult b = ObfuscateTrace(victim, cfg);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i], b.trace[i]);
}

TEST(ObfuscateTrace, DefeatsStructureAttack) {
  const trace::Trace victim = VictimTrace(3);

  attack::StructureAttackConfig acfg;
  acfg.analysis.known_input_elems = 28 * 28;
  acfg.search.known_input_width = 28;
  acfg.search.known_input_depth = 1;
  acfg.search.known_output_classes = 10;

  // Attack succeeds on the raw trace.
  const auto clear = attack::RunStructureAttack(victim, acfg);
  ASSERT_GE(clear.num_structures(), 1u);

  // Behind the obfuscator the analysis either throws (unintelligible
  // regions) or yields nothing resembling the victim: no candidate set
  // containing the true 4-layer chain.
  const ObfuscationResult obf = ObfuscateTrace(victim, ObfuscationConfig{});
  bool truth_survives = false;
  try {
    const auto attacked = attack::RunStructureAttack(obf.trace, acfg);
    for (const auto& cs : attacked.search.structures) {
      if (cs.layers.size() == 4 && cs.layers[0].geom.f_conv == 5 &&
          cs.layers[0].geom.d_ofm == 20) {
        truth_survives = true;
      }
    }
  } catch (const sc::Error&) {
    // Analysis rejecting the trace outright is also a win for the defense.
  }
  EXPECT_FALSE(truth_survives);
}

TEST(ObfuscateTrace, NoPermutationStillAddsNoise) {
  const trace::Trace victim = VictimTrace(4);
  ObfuscationConfig cfg;
  cfg.permute_blocks = false;
  cfg.dummy_per_access = 1.0;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.trace.size(), victim.size());
}

TEST(ObfuscateTrace, ValidatesConfig) {
  trace::Trace t;
  t.Append(0, 0, 64, trace::MemOp::kRead);
  ObfuscationConfig cfg;
  cfg.block_bytes = 16;  // below the supported minimum
  EXPECT_THROW(ObfuscateTrace(t, cfg), sc::Error);
}

}  // namespace
}  // namespace sc::defense
