#include "defense/obfuscation.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "models/zoo.h"
#include "support/rng.h"
#include "trace/stats.h"

namespace sc::defense {
namespace {

trace::Trace VictimTrace(std::uint64_t seed) {
  nn::Network net = models::MakeLeNet(seed);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor x(net.input_shape());
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &tr);
  return tr;
}

TEST(ObfuscateTrace, ReportsOverheads) {
  const trace::Trace victim = VictimTrace(1);
  ObfuscationConfig cfg;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.traffic_overhead, 1.0);
  EXPECT_GT(r.event_overhead, 1.0);
  EXPECT_GT(r.trace.size(), victim.size());
}

TEST(ObfuscateTrace, EmptyTrace) {
  const ObfuscationResult r = ObfuscateTrace(trace::Trace{}, {});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_EQ(r.traffic_overhead, 1.0);
}

TEST(ObfuscateTrace, DeterministicForSeed) {
  const trace::Trace victim = VictimTrace(2);
  ObfuscationConfig cfg;
  cfg.seed = 9;
  const ObfuscationResult a = ObfuscateTrace(victim, cfg);
  const ObfuscationResult b = ObfuscateTrace(victim, cfg);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i)
    EXPECT_EQ(a.trace[i], b.trace[i]);
}

TEST(ObfuscateTrace, DefeatsStructureAttack) {
  const trace::Trace victim = VictimTrace(3);

  attack::StructureAttackConfig acfg;
  acfg.analysis.known_input_elems = 28 * 28;
  acfg.search.known_input_width = 28;
  acfg.search.known_input_depth = 1;
  acfg.search.known_output_classes = 10;

  // Attack succeeds on the raw trace.
  const auto clear = attack::RunStructureAttack(victim, acfg);
  ASSERT_GE(clear.num_structures(), 1u);

  // Behind the obfuscator the analysis either throws (unintelligible
  // regions) or yields nothing resembling the victim: no candidate set
  // containing the true 4-layer chain.
  const ObfuscationResult obf = ObfuscateTrace(victim, ObfuscationConfig{});
  bool truth_survives = false;
  try {
    const auto attacked = attack::RunStructureAttack(obf.trace, acfg);
    for (const auto& cs : attacked.search.structures) {
      if (cs.layers.size() == 4 && cs.layers[0].geom.f_conv == 5 &&
          cs.layers[0].geom.d_ofm == 20) {
        truth_survives = true;
      }
    }
  } catch (const sc::Error&) {
    // Analysis rejecting the trace outright is also a win for the defense.
  }
  EXPECT_FALSE(truth_survives);
}

TEST(ObfuscateTrace, NoPermutationStillAddsNoise) {
  const trace::Trace victim = VictimTrace(4);
  ObfuscationConfig cfg;
  cfg.permute_blocks = false;
  cfg.dummy_per_access = 1.0;
  const ObfuscationResult r = ObfuscateTrace(victim, cfg);
  EXPECT_GT(r.trace.size(), victim.size());
}

// Deployment model (§5): the obfuscating controller sits between the bus
// and the probe via AcceleratorConfig::trace_fault_hook. It must change
// only the adversary's observation — the victim's outputs, stage stats and
// cycle counts are bit-identical with and without the hook.
TEST(ObfuscationTransform, HookChangesTraceButNotVictimOutputs) {
  nn::Network net = models::MakeLeNet(5);
  nn::Tensor x(net.input_shape());
  sc::Rng rng(5);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);

  accel::Accelerator plain{accel::AcceleratorConfig{}};
  trace::Trace plain_trace;
  const accel::RunResult plain_run = plain.Run(net, x, &plain_trace);

  const ObfuscationTransform hook{ObfuscationConfig{}};
  accel::AcceleratorConfig cfg;
  cfg.trace_fault_hook = &hook;
  accel::Accelerator defended{cfg};
  trace::Trace defended_trace;
  const accel::RunResult defended_run = defended.Run(net, x, &defended_trace);

  // Victim side: arithmetic and timing untouched.
  ASSERT_EQ(defended_run.output.numel(), plain_run.output.numel());
  for (std::size_t i = 0; i < plain_run.output.numel(); ++i)
    ASSERT_EQ(defended_run.output[i], plain_run.output[i]) << "element " << i;
  EXPECT_EQ(defended_run.total_cycles, plain_run.total_cycles);
  ASSERT_EQ(defended_run.stages.size(), plain_run.stages.size());
  for (std::size_t s = 0; s < plain_run.stages.size(); ++s) {
    EXPECT_EQ(defended_run.stages[s].ofm_nonzeros,
              plain_run.stages[s].ofm_nonzeros);
  }

  // Adversary side: the observation is genuinely different (more traffic,
  // and not an event-for-event copy of the bus).
  EXPECT_GT(defended_trace.size(), plain_trace.size());
  EXPECT_GT(defended_trace.bytes_read() + defended_trace.bytes_written(),
            plain_trace.bytes_read() + plain_trace.bytes_written());
}

// The adapter is a faithful wrapper: Apply() must produce exactly the
// trace ObfuscateTrace() produces for the same config.
TEST(ObfuscationTransform, ApplyMatchesObfuscateTrace) {
  const trace::Trace victim = VictimTrace(6);
  ObfuscationConfig cfg;
  cfg.seed = 11;
  const ObfuscationTransform hook{cfg};
  const trace::Trace via_hook = hook.Apply(victim);
  const trace::Trace direct = ObfuscateTrace(victim, cfg).trace;
  ASSERT_EQ(via_hook.size(), direct.size());
  for (std::size_t i = 0; i < via_hook.size(); ++i)
    EXPECT_EQ(via_hook[i], direct[i]);
}

TEST(ObfuscateTrace, ValidatesConfig) {
  trace::Trace t;
  t.Append(0, 0, 64, trace::MemOp::kRead);
  ObfuscationConfig cfg;
  cfg.block_bytes = 16;  // below the supported minimum
  EXPECT_THROW(ObfuscateTrace(t, cfg), sc::Error);
}

}  // namespace
}  // namespace sc::defense
