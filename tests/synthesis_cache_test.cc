// Property tests for the per-stage synthesis cache (DESIGN.md §15): for
// ~100 seeded random victims, a cached accelerator run must be
// indistinguishable from a fresh one — byte-identical trace, identical
// stats, identical output — across run-record replays (exact input repeat)
// and stage-block replays (different input, same observable stage
// behaviour), under both dataflows with pruning on and off. Also pins the
// cache's contract edges: one network per cache, clean behaviour at a tiny
// byte budget, and ReLU-threshold overrides changing the run key but not
// the binding.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/config.h"
#include "accel/synthesis_cache.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "nn/tensor.h"
#include "support/check.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace sc {
namespace {

constexpr int kNumSeeds = 100;

constexpr accel::Dataflow kDataflows[] = {
    accel::Dataflow::kWeightStationary,
    accel::Dataflow::kOutputStationary,
};

// Same family of random linear victims as schedule_property_test.cc.
nn::Network RandomNet(Rng& rng) {
  int w = 2 * rng.UniformInt(4, 7);
  int depth = rng.UniformInt(1, 3);
  nn::Network net(nn::Shape{depth, w, w});
  int prev = nn::kInputNode;
  const int convs = rng.UniformInt(1, 3);
  for (int l = 0; l < convs; ++l) {
    const int f = 1 + 2 * rng.UniformInt(0, 2);
    const int od = rng.UniformInt(2, 10);
    prev = net.Add(std::make_unique<nn::Conv2D>("conv" + std::to_string(l),
                                                depth, od, f, 1, (f - 1) / 2),
                   {prev});
    depth = od;
    if (rng.Chance(0.7))
      prev = net.Add(std::make_unique<nn::Relu>("relu" + std::to_string(l)),
                     {prev});
    if (w >= 8 && rng.Chance(0.5)) {
      prev = net.Add(nn::MakeMaxPool("pool" + std::to_string(l), 2, 2, 0),
                     {prev});
      w /= 2;
    }
  }
  if (rng.Chance(0.5)) {
    prev = net.Add(std::make_unique<nn::FullyConnected>(
                       "fc", depth * w * w, rng.UniformInt(4, 10)),
                   {prev});
  }
  (void)prev;
  Rng init(rng.Fork());
  nn::InitNetwork(net, init);
  return net;
}

nn::Tensor RandomInput(const nn::Shape& s, Rng& rng) {
  nn::Tensor t(s);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

void ExpectTracesEqual(const trace::Trace& a, const trace::Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].cycle, b[i].cycle) << "event " << i;
    ASSERT_EQ(a[i].addr, b[i].addr) << "event " << i;
    ASSERT_EQ(a[i].bytes, b[i].bytes) << "event " << i;
    ASSERT_EQ(a[i].op, b[i].op) << "event " << i;
  }
}

void ExpectRunsEqual(const accel::RunResult& a, const accel::RunResult& b) {
  ASSERT_EQ(a.stages.size(), b.stages.size());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  for (std::size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].start_cycle, b.stages[s].start_cycle);
    EXPECT_EQ(a.stages[s].end_cycle, b.stages[s].end_cycle);
    EXPECT_EQ(a.stages[s].bytes_read, b.stages[s].bytes_read);
    EXPECT_EQ(a.stages[s].bytes_written, b.stages[s].bytes_written);
    EXPECT_EQ(a.stages[s].macs, b.stages[s].macs);
    EXPECT_EQ(a.stages[s].ofm_elems, b.stages[s].ofm_elems);
    EXPECT_EQ(a.stages[s].ofm_nonzeros, b.stages[s].ofm_nonzeros);
    EXPECT_EQ(a.stages[s].ofm_channel_nonzeros,
              b.stages[s].ofm_channel_nonzeros);
  }
  ASSERT_EQ(a.output.numel(), b.output.numel());
  for (std::size_t i = 0; i < a.output.numel(); ++i)
    ASSERT_EQ(a.output[i], b.output[i]) << "output elem " << i;
}

// The central property: on any victim, interleaving cached runs over two
// distinct inputs reproduces fresh synthesis exactly — the second A run is
// a run-record hit, the B run exercises stage-block reuse where digests
// allow it, and none of that may change a single byte.
TEST(SynthesisCacheProperty, MemoizedReplayMatchesFreshSynthesis) {
  for (int seed = 0; seed < kNumSeeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(5000 + seed));
    const nn::Network net = RandomNet(rng);
    const nn::Tensor input_a = RandomInput(net.input_shape(), rng);
    const nn::Tensor input_b = RandomInput(net.input_shape(), rng);
    const bool pruning = seed % 2 == 1;
    const accel::Dataflow d = kDataflows[(seed / 2) % 2];
    SCOPED_TRACE(std::string(accel::ToString(d)) +
                 (pruning ? " pruned" : " dense"));

    accel::AcceleratorConfig cfg;
    cfg.dataflow = d;
    cfg.zero_pruning = pruning;
    const accel::Accelerator accel{cfg};

    trace::Trace fresh_a, fresh_b;
    const accel::RunResult fresh_run_a = accel.Run(net, input_a, &fresh_a);
    const accel::RunResult fresh_run_b = accel.Run(net, input_b, &fresh_b);

    accel::SynthesisCache cache;
    trace::Trace tr;
    const accel::RunResult miss_a =
        accel.Run(net, input_a, &tr, nullptr, &cache);
    ExpectTracesEqual(fresh_a, tr);
    ExpectRunsEqual(fresh_run_a, miss_a);

    tr.Clear();
    const accel::RunResult run_b = accel.Run(net, input_b, &tr, nullptr,
                                             &cache);
    ExpectTracesEqual(fresh_b, tr);
    ExpectRunsEqual(fresh_run_b, run_b);

    tr.Clear();
    const accel::RunResult hit_a =
        accel.Run(net, input_a, &tr, nullptr, &cache);
    ExpectTracesEqual(fresh_a, tr);
    ExpectRunsEqual(fresh_run_a, hit_a);
    EXPECT_GE(cache.run_hits(), 1u);
  }
}

// A starved cache (budget below any block) must degrade to fresh synthesis
// without changing output — every store is rejected or flushed, never
// corrupted.
TEST(SynthesisCacheProperty, TinyBudgetDegradesGracefully) {
  for (int seed = 0; seed < 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(6000 + seed));
    const nn::Network net = RandomNet(rng);
    const nn::Tensor input = RandomInput(net.input_shape(), rng);
    accel::AcceleratorConfig cfg;
    cfg.zero_pruning = seed % 2 == 1;
    const accel::Accelerator accel{cfg};

    trace::Trace fresh;
    const accel::RunResult fresh_run = accel.Run(net, input, &fresh);

    accel::SynthesisCache cache(/*budget_bytes=*/64);
    for (int rep = 0; rep < 3; ++rep) {
      trace::Trace tr;
      const accel::RunResult run =
          accel.Run(net, input, &tr, nullptr, &cache);
      ExpectTracesEqual(fresh, tr);
      ExpectRunsEqual(fresh_run, run);
    }
    EXPECT_EQ(cache.run_hits(), 0u);
    EXPECT_LE(cache.approx_bytes(), std::size_t{64});
  }
}

// The ReLU-override knob changes data, so it must miss the run cache and
// produce the overridden trace, while blocks for the base threshold stay
// valid (the emission fingerprint excludes the override).
TEST(SynthesisCacheProperty, ReluOverrideKeysRunsSeparately) {
  const nn::Network net = models::MakeLeNet(1);
  Rng rng(42);
  const nn::Tensor input = RandomInput(net.input_shape(), rng);
  accel::AcceleratorConfig cfg;
  cfg.zero_pruning = true;
  accel::AcceleratorConfig cfg_hi = cfg;
  cfg_hi.relu_threshold_override = 0.5f;

  trace::Trace fresh_base, fresh_hi;
  accel::Accelerator{cfg}.Run(net, input, &fresh_base);
  accel::Accelerator{cfg_hi}.Run(net, input, &fresh_hi);

  accel::SynthesisCache cache;
  trace::Trace tr;
  accel::Accelerator{cfg}.Run(net, input, &tr, nullptr, &cache);
  ExpectTracesEqual(fresh_base, tr);
  tr.Clear();
  accel::Accelerator{cfg_hi}.Run(net, input, &tr, nullptr, &cache);
  ExpectTracesEqual(fresh_hi, tr);
  tr.Clear();
  accel::Accelerator{cfg}.Run(net, input, &tr, nullptr, &cache);
  ExpectTracesEqual(fresh_base, tr);
  EXPECT_GE(cache.run_hits(), 1u);
}

// Keys embed no network identity, so a cache must refuse a second victim.
TEST(SynthesisCacheProperty, SecondNetworkIsRejected) {
  const nn::Network a = models::MakeLeNet(1);
  const nn::Network b = models::MakeConvNet(1);
  Rng rng(43);
  const nn::Tensor input_a = RandomInput(a.input_shape(), rng);
  const nn::Tensor input_b = RandomInput(b.input_shape(), rng);
  const accel::Accelerator accel{accel::AcceleratorConfig{}};
  accel::SynthesisCache cache;
  trace::Trace tr;
  accel.Run(a, input_a, &tr, nullptr, &cache);
  tr.Clear();
  EXPECT_THROW(accel.Run(b, input_b, &tr, nullptr, &cache), Error);
}

}  // namespace
}  // namespace sc
