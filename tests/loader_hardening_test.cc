// Hostile-input hardening for the two on-disk loaders (DESIGN.md §12):
// Trace::ReadCsv and nn::LoadNetwork must reject overflow-sized fields and
// element counts with a diagnostic sc::Error *before* any allocation is
// attempted — a malicious trace file or network blob must not be able to
// provoke a multi-gigabyte allocation or integer wraparound.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "nn/conv2d.h"
#include "nn/network.h"
#include "nn/serialize.h"
#include "support/check.h"
#include "trace/trace.h"

namespace sc {
namespace {

// --- Trace CSV -----------------------------------------------------------

trace::Trace ParseCsv(const std::string& text) {
  std::istringstream is(text);
  return trace::Trace::ReadCsv(is);
}

TEST(TraceCsvHardening, OversizedRowRejectedBeforeParsing) {
  const std::string row(300, '1');
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n" + row + ",0,4,R\n"), Error);
}

TEST(TraceCsvHardening, NegativeFieldsRejected) {
  // istream extraction into an unsigned field would silently accept "-1"
  // as 2^64 - 1; the loader must reject the sign outright.
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n-1,0,4,R\n"), Error);
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n0,-8,4,R\n"), Error);
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n0,0,-4,R\n"), Error);
}

TEST(TraceCsvHardening, AddressRangeOverflowRejected) {
  // addr + bytes wraps past 2^64: accepting it would corrupt every
  // downstream interval computation.
  EXPECT_THROW(
      ParseCsv("cycle,addr,bytes,op\n0,18446744073709551615,4,R\n"), Error);
  EXPECT_THROW(
      ParseCsv("cycle,addr,bytes,op\n0,18446744073709551612,8,W\n"), Error);
  // The exact boundary (addr + bytes == 2^64 - 1) still fits and must load.
  const trace::Trace t =
      ParseCsv("cycle,addr,bytes,op\n0,18446744073709551611,4,R\n");
  EXPECT_EQ(t.size(), 1u);
}

TEST(TraceCsvHardening, BurstSizeBoundsEnforced) {
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n0,0,0,R\n"), Error);
  EXPECT_THROW(ParseCsv("cycle,addr,bytes,op\n0,0,4294967296,R\n"), Error);
}

TEST(TraceCsvHardening, LegitimateRoundTripUnaffected) {
  trace::Trace t;
  trace::MemEvent e;
  e.cycle = 10;
  e.addr = 0x1000;
  e.bytes = 64;
  e.op = trace::MemOp::kRead;
  t.Append(e);
  e.cycle = 20;
  e.op = trace::MemOp::kWrite;
  t.Append(e);

  std::ostringstream os;
  t.WriteCsv(os);
  const trace::Trace back = ParseCsv(os.str());
  std::ostringstream os2;
  back.WriteCsv(os2);
  EXPECT_EQ(os.str(), os2.str());
}

// --- Network deserialization ---------------------------------------------

void PutU32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void PutI32(std::string& s, std::int32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof v);
}

// Serialized-stream prefix: magic, version, input shape, node count, then
// one node ("c", conv tag) up to the five conv dimension fields the test
// controls. Rejection must happen while reading those fields — nothing
// after them is provided.
std::string ConvHeader(std::int32_t in_d, std::int32_t out_d, std::int32_t f,
                       std::int32_t s, std::int32_t p) {
  std::string blob = "SCNN";
  PutU32(blob, 1);  // version
  PutU32(blob, 3);  // input shape rank
  PutU32(blob, 1);
  PutU32(blob, 8);
  PutU32(blob, 8);
  PutU32(blob, 1);  // num_nodes
  PutU32(blob, 1);  // name length
  blob += 'c';
  blob += static_cast<char>(1);  // kTagConv
  PutI32(blob, in_d);
  PutI32(blob, out_d);
  PutI32(blob, f);
  PutI32(blob, s);
  PutI32(blob, p);
  return blob;
}

nn::Network LoadBlob(const std::string& blob) {
  std::istringstream is(blob);
  return nn::LoadNetwork(is);
}

TEST(NetworkLoadHardening, HugeLayerDimensionRejected) {
  EXPECT_THROW(LoadBlob(ConvHeader(1, 1 << 30, 3, 1, 0)), Error);
  EXPECT_THROW(LoadBlob(ConvHeader(1 << 30, 1, 3, 1, 0)), Error);
  EXPECT_THROW(LoadBlob(ConvHeader(1, 1, 1 << 30, 1, 0)), Error);
}

TEST(NetworkLoadHardening, NonPositiveDimensionRejected) {
  EXPECT_THROW(LoadBlob(ConvHeader(0, 4, 3, 1, 0)), Error);
  EXPECT_THROW(LoadBlob(ConvHeader(-5, 4, 3, 1, 0)), Error);
  EXPECT_THROW(LoadBlob(ConvHeader(1, 4, 3, 1, -1)), Error);
}

TEST(NetworkLoadHardening, WeightTensorElementOverflowRejected) {
  // Each dimension passes the per-field cap, but the weight tensor's
  // element product (2^24 * 2^24) must be rejected overflow-safely.
  EXPECT_THROW(LoadBlob(ConvHeader(1 << 24, 1 << 24, 1, 1, 0)), Error);
}

TEST(NetworkLoadHardening, HostileInputShapeRejected) {
  std::string blob = "SCNN";
  PutU32(blob, 1);
  PutU32(blob, 1);  // rank 1
  PutU32(blob, 0);  // zero dimension
  EXPECT_THROW(LoadBlob(blob), Error);

  std::string big = "SCNN";
  PutU32(big, 1);
  PutU32(big, 4);  // rank 4, every dim at the cap: numel would be 2^96
  for (int i = 0; i < 4; ++i) PutU32(big, 1u << 24);
  EXPECT_THROW(LoadBlob(big), Error);
}

TEST(NetworkLoadHardening, LegitimateRoundTripUnaffected) {
  nn::Network net(nn::Shape{1, 8, 8});
  auto conv = std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 0);
  conv->weights()[0] = 0.5f;
  conv->bias()[1] = -0.25f;
  net.Add(std::move(conv), {nn::kInputNode});

  std::stringstream ss;
  nn::SaveNetwork(net, ss);
  const nn::Network back = nn::LoadNetwork(ss);
  ASSERT_EQ(back.num_nodes(), 1);
  const auto* c = dynamic_cast<const nn::Conv2D*>(&back.layer(0));
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->out_depth(), 2);
  EXPECT_EQ(c->filter(), 3);
  EXPECT_EQ(c->weights()[0], 0.5f);
  EXPECT_EQ(c->bias()[1], -0.25f);
}

}  // namespace
}  // namespace sc
