#include "nn/train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "nn/train/loss.h"

namespace sc::nn::train {
namespace {

TEST(Softmax, NormalizesAndIsStable) {
  Tensor logits(Shape{3, 1, 1});
  logits[0] = 1000.0f;  // stability: would overflow a naive exp
  logits[1] = 1000.0f;
  logits[2] = 0.0f;
  auto p = Softmax(logits);
  EXPECT_NEAR(p[0], 0.5f, 1e-5f);
  EXPECT_NEAR(p[1], 0.5f, 1e-5f);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0f, 1e-5f);
}

TEST(SoftmaxCrossEntropy, LossAndGradient) {
  Tensor logits(Shape{2, 1, 1});
  logits[0] = 0.0f;
  logits[1] = 0.0f;
  auto r = SoftmaxCrossEntropy(logits, 1);
  EXPECT_NEAR(r.loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(r.grad_logits[0], 0.5f, 1e-5f);
  EXPECT_NEAR(r.grad_logits[1], -0.5f, 1e-5f);
  EXPECT_THROW(SoftmaxCrossEntropy(logits, 2), sc::Error);
}

TEST(TopK, Membership) {
  Tensor logits(Shape{6, 1, 1});
  for (int i = 0; i < 6; ++i) logits[static_cast<std::size_t>(i)] =
      static_cast<float>(i);
  EXPECT_EQ(ArgMax(logits), 5);
  EXPECT_TRUE(InTopK(logits, 5, 1));
  EXPECT_FALSE(InTopK(logits, 0, 5));
  EXPECT_TRUE(InTopK(logits, 1, 5));
}

// Numerical gradient check through a small but complete network with every
// layer kind (conv, relu, pools, concat, eltwise, fc).
TEST(Backprop, MatchesNumericalGradient) {
  Network net(Shape{2, 6, 6});
  int c1 = net.Add(std::make_unique<Conv2D>("c1", 2, 3, 3, 1, 1),
                   {kInputNode});
  int r1 = net.Add(std::make_unique<Relu>("r1"), {c1});
  int c2 = net.Add(std::make_unique<Conv2D>("c2", 2, 3, 3, 1, 1),
                   {kInputNode});
  int cat = net.Add(std::make_unique<Concat>("cat", 2), {r1, c2});
  int add = net.Add(std::make_unique<EltwiseAdd>("add", 2), {cat, cat});
  int p1 = net.Add(MakeMaxPool("p1", 2, 2), {add});
  int p2 = net.Add(MakeAvgPool("p2", 3, 3), {p1});
  net.Add(std::make_unique<FullyConnected>("fc", 6, 4), {p2});

  Rng rng(3);
  InitNetwork(net, rng);
  // Non-zero biases so ReLU boundaries are generic.
  for (ParamRef p : net.Params())
    if (p.value->shape().rank() == 1)
      for (std::size_t i = 0; i < p.value->numel(); ++i)
        (*p.value)[i] = rng.GaussianF(0.1f);

  Tensor x(Shape{2, 6, 6});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  const int label = 2;

  // Analytic gradients.
  for (ParamRef p : net.Params()) p.grad->Zero();
  ForwardBackward(net, x, label);

  // Compare against central differences on a sample of parameters.
  const float eps = 1e-3f;
  int checked = 0;
  for (ParamRef p : net.Params()) {
    for (std::size_t i = 0; i < p.value->numel();
         i += std::max<std::size_t>(1, p.value->numel() / 7)) {
      const float orig = (*p.value)[i];
      (*p.value)[i] = orig + eps;
      const float lp = SoftmaxCrossEntropy(net.ForwardFinal(x), label).loss;
      (*p.value)[i] = orig - eps;
      const float lm = SoftmaxCrossEntropy(net.ForwardFinal(x), label).loss;
      (*p.value)[i] = orig;
      const float numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR((*p.grad)[i], numeric, 2e-2f)
          << "param element " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(Sgd, MomentumUpdate) {
  Tensor w(Shape{1}, 1.0f);
  Tensor g(Shape{1}, 1.0f);
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.5f, .weight_decay = 0.0f});
  opt.Step({{&w, &g}});
  EXPECT_FLOAT_EQ(w.at(0), 0.9f);   // v = -0.1
  EXPECT_FLOAT_EQ(g.at(0), 0.0f);   // gradients cleared
  g.at(0) = 1.0f;
  opt.Step({{&w, &g}});
  EXPECT_FLOAT_EQ(w.at(0), 0.9f - 0.15f);  // v = 0.5*(-0.1) - 0.1
}

TEST(SyntheticDataset, DeterministicAndBalanced) {
  DatasetConfig cfg;
  cfg.width = 16;
  cfg.num_classes = 4;
  SyntheticDataset ds(cfg);
  const Sample a = ds.MakeSample(5, false);
  const Sample b = ds.MakeSample(5, false);
  EXPECT_EQ(a.label, 5 % 4);
  EXPECT_EQ(Tensor::MaxAbsDiff(a.image, b.image), 0.0f);
  const Sample c = ds.MakeSample(5, true);
  EXPECT_GT(Tensor::MaxAbsDiff(a.image, c.image), 0.0f);
  auto train = ds.MakeTrainSet(8);
  int counts[4] = {0, 0, 0, 0};
  for (const Sample& s : train) counts[s.label]++;
  for (int k : counts) EXPECT_EQ(k, 2);
}

TEST(Trainer, LearnsSyntheticTask) {
  DatasetConfig dcfg;
  dcfg.width = 12;
  dcfg.num_classes = 3;
  dcfg.noise = 0.05f;
  SyntheticDataset ds(dcfg);
  auto train_set = ds.MakeTrainSet(60);
  auto test_set = ds.MakeTestSet(30);

  Network net(Shape{3, 12, 12});
  net.Append(std::make_unique<Conv2D>("c1", 3, 8, 3, 1, 1));
  net.Append(std::make_unique<Relu>("r1"));
  net.Append(MakeMaxPool("p1", 2, 2));
  net.Append(std::make_unique<FullyConnected>("fc", 8 * 6 * 6, 3));
  Rng rng(11);
  InitNetwork(net, rng);

  const EvalResult before = Evaluate(net, test_set);
  TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.batch_size = 10;
  tcfg.sgd.learning_rate = 0.02f;
  const float final_loss = Train(net, train_set, tcfg);
  const EvalResult after = Evaluate(net, test_set);

  EXPECT_LT(final_loss, before.mean_loss);
  EXPECT_GT(after.top1, 0.5f);  // way above the 1/3 chance level
  EXPECT_GT(after.top1, before.top1);
}

}  // namespace
}  // namespace sc::nn::train
