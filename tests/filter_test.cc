#include "trace/filter.h"

#include <gtest/gtest.h>

#include <sstream>

#include "attack/structure/report.h"
#include "support/check.h"

namespace sc::trace {
namespace {

Trace SampleTrace() {
  Trace t;
  t.Append(0, 0x1000, 64, MemOp::kRead);
  t.Append(5, 0x2000, 128, MemOp::kWrite);
  t.Append(9, 0x2040, 64, MemOp::kRead);
  t.Append(12, 0x3000, 32, MemOp::kWrite);
  return t;
}

TEST(Filter, ByOp) {
  const Trace t = SampleTrace();
  EXPECT_EQ(FilterByOp(t, MemOp::kRead).size(), 2u);
  EXPECT_EQ(FilterByOp(t, MemOp::kWrite).size(), 2u);
}

TEST(Filter, ByAddressRangeOverlapsSemantics) {
  const Trace t = SampleTrace();
  // Range covering only the tail of the 0x2000 write.
  const Trace hit = FilterByAddressRange(t, 0x2070, 0x2080);
  ASSERT_EQ(hit.size(), 2u);  // the 128B write and the 0x2040 read overlap
  EXPECT_TRUE(FilterByAddressRange(t, 0x5000, 0x6000).empty());
  EXPECT_THROW(FilterByAddressRange(t, 10, 5), sc::Error);
}

TEST(Filter, ByCycleWindow) {
  const Trace t = SampleTrace();
  const Trace mid = FilterByCycleWindow(t, 5, 9);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].cycle, 5u);
  EXPECT_THROW(FilterByCycleWindow(t, 9, 5), sc::Error);
}

TEST(Filter, Concatenate) {
  Trace head;
  head.Append(0, 0, 64, MemOp::kRead);
  Trace tail;
  tail.Append(10, 64, 64, MemOp::kWrite);
  EXPECT_EQ(Concatenate(head, tail).size(), 2u);
  // Time-travel rejected.
  Trace early;
  early.Append(0, 0, 8, MemOp::kRead);
  Trace late;
  late.Append(5, 0, 8, MemOp::kRead);
  EXPECT_THROW(Concatenate(late, early), sc::Error);
}

TEST(Filter, BytesWithinClipsBursts) {
  const Trace t = SampleTrace();
  // The 128B write spans [0x2000, 0x2080); clip to [0x2040, 0x2060):
  // 32 bytes of the write + 32 bytes of the 0x2040 read.
  EXPECT_EQ(BytesWithin(t, 0x2040, 0x2060), 64u);
  EXPECT_EQ(BytesWithin(t, 0, UINT64_MAX), 64u + 128 + 64 + 32);
}

}  // namespace
}  // namespace sc::trace

namespace sc::attack {
namespace {

SearchResult TwoStructureResult() {
  SearchResult r;
  nn::LayerGeometry a{8, 1, 4, 4, 2, 2, 0, nn::PoolKind::kNone, 0, 0, 0};
  nn::LayerGeometry b{8, 1, 4, 4, 4, 2, 1, nn::PoolKind::kMax, 2, 1, 0};
  CandidateStructure s1;
  s1.layers.push_back({SegmentRole::kConvOrFc, a});
  CandidateStructure s2;
  s2.layers.push_back({SegmentRole::kConvOrFc, b});
  r.structures = {s1, s2};
  r.per_layer_candidates = {{a, b}};
  return r;
}

TEST(Report, UsedConfigsDedupes) {
  SearchResult r = TwoStructureResult();
  r.structures.push_back(r.structures.front());  // duplicate structure
  EXPECT_EQ(UsedConfigsAt(r, 0).size(), 2u);
}

TEST(Report, PrintConfigTableCountsRows) {
  const SearchResult r = TwoStructureResult();
  std::ostringstream os;
  EXPECT_EQ(PrintConfigTable(os, r), 2u);
  EXPECT_NE(os.str().find("CONV1"), std::string::npos);
  EXPECT_NE(os.str().find("N/A"), std::string::npos);
}

TEST(Report, CsvHasOneRowPerStructureLayer) {
  const SearchResult r = TwoStructureResult();
  std::ostringstream os;
  WriteStructuresCsv(os, r);
  std::size_t lines = 0;
  for (char c : os.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1u + 2u);  // header + 2 structures x 1 layer
}

}  // namespace
}  // namespace sc::attack
