// Differential tests: with noise disabled, the robust ("self-healing")
// attack drivers must be indistinguishable from the plain attacks at the
// finest granularity we can observe —
//   - weight side: the exact byte-level oracle query sequence (every
//     crafted input and channel, in order), captured by a recording
//     decorator, plus the recovered ratios;
//   - structure side: the solver/search work counters introduced by the
//     observability layer, plus the surviving structures.
// This pins the PR-2 robustness layer's "free when noise-free" contract:
// voting with 1 vote, 0 retries, 0 re-brackets, and a slack ladder
// starting at 0 may not change what the adversary does, only package it.
#include <gtest/gtest.h>

#include <cstdint>
#include <ios>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/robust.h"
#include "attack/weights/attack.h"
#include "attack/weights/oracle.h"
#include "attack/weights/robust.h"
#include "models/zoo.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "trace/trace.h"

namespace sc::attack {
namespace {

// --- query-sequence recorder ------------------------------------------------

// Wraps an oracle and serializes every query — kind, channel, and each
// pixel with its exact float bits — into an append-only log. Clone/Fork
// return nullptr on purpose: both the plain and the robust driver then
// take their serial fallback on this very instance, so the two logs are
// directly comparable (no interleaving across workers).
class RecordingOracle : public ZeroCountOracle {
 public:
  explicit RecordingOracle(ZeroCountOracle& inner) : inner_(inner) {}

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>& pixels,
                              int channel) override {
    ++queries_;
    Log('C', pixels, channel);
    return inner_.ChannelNonZeros(pixels, channel);
  }

  std::size_t TotalNonZeros(const std::vector<SparsePixel>& pixels) override {
    ++queries_;
    Log('T', pixels, -1);
    return inner_.TotalNonZeros(pixels);
  }

  int num_channels() const override { return inner_.num_channels(); }

  bool SetActivationThreshold(float threshold) override {
    return inner_.SetActivationThreshold(threshold);
  }

  const std::vector<std::string>& log() const { return log_; }

 private:
  void Log(char kind, const std::vector<SparsePixel>& pixels, int channel) {
    std::ostringstream os;
    os << kind << ' ' << channel;
    for (const SparsePixel& p : pixels) {
      // hexfloat is bit-exact for finite floats, so two logs match iff the
      // crafted inputs are byte-identical.
      os << " (" << p.c << ',' << p.y << ',' << p.x << ','
         << std::hexfloat << p.value << std::defaultfloat << ')';
    }
    log_.push_back(os.str());
  }

  ZeroCountOracle& inner_;
  std::vector<std::string> log_;
};

struct Victim {
  SparseConvOracle::StageSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
};

Victim MakeVictim(std::uint64_t seed, int in_depth, int in_width, int oc,
                  int f, nn::PoolKind pool, int pool_window,
                  int pool_stride) {
  Victim v;
  v.spec.in_depth = in_depth;
  v.spec.in_width = in_width;
  v.spec.filter = f;
  v.spec.stride = 1;
  v.spec.pool = pool;
  v.spec.pool_window = pool_window;
  v.spec.pool_stride = pool_stride;
  v.weights = nn::Tensor(nn::Shape{oc, in_depth, f, f});
  v.bias = nn::Tensor(nn::Shape{oc});
  Rng rng(seed);
  for (std::size_t i = 0; i < v.weights.numel(); ++i)
    v.weights[i] = rng.GaussianF(0.6f);
  for (int k = 0; k < oc; ++k) v.bias.at(k) = rng.UniformF(0.1f, 0.5f);
  return v;
}

// Neutralized robustness: every healing mechanism configured to do nothing.
RobustWeightConfig NeutralRobustConfig() {
  RobustWeightConfig cfg;
  cfg.voting.votes = 1;
  cfg.voting.max_retries = 0;
  cfg.attack.max_rebrackets = 0;
  return cfg;
}

void ExpectIdenticalFilters(const std::vector<RecoveredFilter>& a,
                            const std::vector<RecoveredFilter>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].channel, b[k].channel);
    EXPECT_EQ(a[k].bias_positive, b[k].bias_positive);
    EXPECT_EQ(a[k].is_zero, b[k].is_zero);
    EXPECT_EQ(a[k].failed, b[k].failed);
    EXPECT_EQ(a[k].queries, b[k].queries);
    ASSERT_EQ(a[k].ratio.numel(), b[k].ratio.numel());
    for (std::size_t i = 0; i < a[k].ratio.numel(); ++i)
      EXPECT_EQ(a[k].ratio[i], b[k].ratio[i]) << "filter " << k << " pos "
                                              << i;
  }
}

void RunWeightDifferential(const Victim& v) {
  SparseConvOracle plain_inner(v.spec, v.weights, v.bias);
  RecordingOracle plain_rec(plain_inner);
  const std::vector<RecoveredFilter> plain =
      RecoverAllFilters(plain_rec, v.spec, WeightAttackConfig{});

  SparseConvOracle robust_inner(v.spec, v.weights, v.bias);
  RecordingOracle robust_rec(robust_inner);
  const RobustWeightResult robust =
      RecoverAllFiltersRobust(robust_rec, v.spec, NeutralRobustConfig());

  // Byte-identical query sequences: same count, same content, same order.
  ASSERT_EQ(robust_rec.log().size(), plain_rec.log().size());
  for (std::size_t i = 0; i < plain_rec.log().size(); ++i)
    ASSERT_EQ(robust_rec.log()[i], plain_rec.log()[i]) << "query " << i;

  ExpectIdenticalFilters(robust.filters, plain);
  EXPECT_EQ(robust.total_retries, 0u);
  EXPECT_EQ(robust.total_rebrackets, 0u);
  EXPECT_EQ(robust.total_samples, robust.total_queries);
  // Confidence is the non-failed fraction; with identical `failed` vectors
  // it must equal the value computed from the plain attack's result.
  ASSERT_EQ(robust.confidence.size(), plain.size());
  for (std::size_t k = 0; k < plain.size(); ++k) {
    std::size_t ok = 0;
    for (const bool f : plain[k].failed)
      if (!f) ++ok;
    EXPECT_EQ(robust.confidence[k],
              static_cast<double>(ok) /
                  static_cast<double>(plain[k].failed.size()));
  }
}

TEST(DifferentialWeights, RobustEqualsPlainNoPool) {
  RunWeightDifferential(
      MakeVictim(7, 2, 10, 3, 3, nn::PoolKind::kNone, 0, 0));
}

TEST(DifferentialWeights, RobustEqualsPlainMaxPool) {
  RunWeightDifferential(
      MakeVictim(8, 1, 12, 2, 3, nn::PoolKind::kMax, 2, 2));
}

// The thread pool must not change the comparison either: with Clone/Fork
// unavailable both drivers serialize, so the logs are thread-count
// independent by construction — verified at SC_THREADS=4.
TEST(DifferentialWeights, RobustEqualsPlainWithThreadPool) {
  const int prev = support::ThreadPool::GlobalThreads();
  support::ThreadPool::SetGlobalThreads(4);
  RunWeightDifferential(
      MakeVictim(9, 1, 10, 2, 3, nn::PoolKind::kNone, 0, 0));
  support::ThreadPool::SetGlobalThreads(prev);
}

// --- structure side ---------------------------------------------------------

// Names of the work counters that measure what the solver/search actually
// did. The robust driver adds its own attack.structure.robust.* counters,
// but on a single clean trace with slack 0 it must do exactly the plain
// attack's solver/search work — these counters must match one-for-one.
const char* kStructureWorkCounters[] = {
    "attack.structure.solver.candidates_emitted",
    "attack.structure.solver.dedup_hits",
    "attack.structure.solver.pruned.coverage",
    "attack.structure.solver.pruned.eq3_filter_quotient",
    "attack.structure.solver.pruned.eq2_ofm_square",
    "attack.structure.solver.pruned.conv_division",
    "attack.structure.solver.pruned.coverage_tail",
    "attack.structure.solver.pruned.canonical_padding",
    "attack.structure.search.timing_rejections",
    "attack.structure.search.group_rejections",
    "attack.structure.search.structures_found",
};

std::vector<std::uint64_t> StructureWorkSnapshot() {
  std::vector<std::uint64_t> out;
  for (const char* name : kStructureWorkCounters)
    out.push_back(obs::Registry::Get().GetCounter(name).value());
  return out;
}

void ExpectIdenticalStructures(const SearchResult& a, const SearchResult& b) {
  ASSERT_EQ(a.structures.size(), b.structures.size());
  for (std::size_t s = 0; s < a.structures.size(); ++s) {
    const CandidateStructure& ca = a.structures[s];
    const CandidateStructure& cb = b.structures[s];
    ASSERT_EQ(ca.layers.size(), cb.layers.size());
    EXPECT_EQ(ca.timing_spread, cb.timing_spread);
    for (std::size_t l = 0; l < ca.layers.size(); ++l) {
      EXPECT_EQ(ca.layers[l].role, cb.layers[l].role);
      EXPECT_EQ(ca.layers[l].geom, cb.layers[l].geom);
    }
  }
}

TEST(DifferentialStructure, RobustOnCleanTraceEqualsPlain) {
  obs::SetEnabled(true);
  obs::Registry::Get().ResetAll();

  nn::Network net = models::MakeLeNet(3);
  nn::Tensor input(net.input_shape());
  Rng rng(5);
  for (std::size_t i = 0; i < input.numel(); ++i)
    input[i] = rng.GaussianF(1.0f);
  accel::Accelerator accelerator{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accelerator.Run(net, input, &tr);

  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;

  const StructureAttackResult plain = RunStructureAttack(tr, cfg);
  const std::vector<std::uint64_t> plain_work = StructureWorkSnapshot();

  obs::Registry::Get().ResetAll();
  RobustStructureConfig rcfg;
  rcfg.attack = cfg;
  const RobustStructureResult robust = RunRobustStructureAttack({tr}, rcfg);
  const std::vector<std::uint64_t> robust_work = StructureWorkSnapshot();

  EXPECT_GT(plain.search.structures.size(), 0u);
  EXPECT_EQ(robust.slack_used, 0);
  EXPECT_EQ(robust.acquisitions, 1);
  EXPECT_EQ(robust.usable, 1);
  for (const LayerConsensus& lc : robust.consensus)
    EXPECT_EQ(lc.confidence(), 1.0);

  ExpectIdenticalStructures(robust.search, plain.search);

  // The work-counter fingerprint: every candidate enumerated, pruned,
  // deduplicated, or timing-rejected matches the plain attack exactly.
  ASSERT_GT(plain_work[0], 0u);  // candidates_emitted actually moved
  for (std::size_t i = 0; i < plain_work.size(); ++i)
    EXPECT_EQ(robust_work[i], plain_work[i])
        << "counter " << kStructureWorkCounters[i];

  obs::Registry::Get().ResetAll();
  obs::SetEnabled(false);
}

}  // namespace
}  // namespace sc::attack
