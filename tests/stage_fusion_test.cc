// Exhaustive coverage of the accelerator's stage-fusion rules (paper §3.1:
// conv + activation + pooling merge into one layer on the accelerator).
#include "accel/stage.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include <algorithm>

#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace sc::accel {
namespace {

using nn::kInputNode;
using nn::Network;
using nn::Shape;

TEST(StageFusion, ConvAlone) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 0));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].kind, StageKind::kConv);
  EXPECT_EQ(stages[0].relu_node, -1);
  EXPECT_EQ(stages[0].pool_node, -1);
  EXPECT_EQ(stages[0].output_node, 0);
}

TEST(StageFusion, ConvPoolWithoutRelu) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 0));
  net.Append(nn::MakeMaxPool("p", 2, 2));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].relu_node, -1);
  EXPECT_EQ(stages[0].pool_node, 1);
  EXPECT_EQ(stages[0].output_node, 1);
}

TEST(StageFusion, ConvAvgPoolThenRelu) {
  // Pre-activation average pooling: conv -> pool -> relu in one stage.
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 0));
  net.Append(nn::MakeAvgPool("p", 2, 2));
  net.Append(std::make_unique<nn::Relu>("r"));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].pool_node, 1);
  EXPECT_EQ(stages[0].post_relu_node, 2);
  EXPECT_EQ(stages[0].output_node, 2);
}

TEST(StageFusion, ConvReluPoolRelu) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 0));
  net.Append(std::make_unique<nn::Relu>("r1"));
  net.Append(nn::MakeMaxPool("p", 2, 2));
  net.Append(std::make_unique<nn::Relu>("r2"));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].relu_node, 1);
  EXPECT_EQ(stages[0].pool_node, 2);
  EXPECT_EQ(stages[0].post_relu_node, 3);
}

TEST(StageFusion, FcFusesOnlyRelu) {
  Network net(Shape{1, 4, 4});
  net.Append(std::make_unique<nn::FullyConnected>("fc", 16, 8));
  net.Append(std::make_unique<nn::Relu>("r"));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].kind, StageKind::kFc);
  EXPECT_EQ(stages[0].relu_node, 1);
}

TEST(StageFusion, PoolThenReluFuses) {
  Network net(Shape{2, 8, 8});
  net.Append(nn::MakeMaxPool("p", 2, 2));
  net.Append(std::make_unique<nn::Relu>("r"));
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].kind, StageKind::kPool);
  EXPECT_EQ(stages[0].relu_node, 1);
}

TEST(StageFusion, EltwiseFusesRelu) {
  Network net(Shape{2, 4, 4});
  int a = net.Add(std::make_unique<nn::Conv2D>("a", 2, 2, 1, 1, 0),
                  {kInputNode});
  int b = net.Add(std::make_unique<nn::Conv2D>("b", 2, 2, 1, 1, 0),
                  {kInputNode});
  int add = net.Add(std::make_unique<nn::EltwiseAdd>("add", 2), {a, b});
  net.Add(std::make_unique<nn::Relu>("r"), {add});
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[2].kind, StageKind::kEltwise);
  EXPECT_EQ(stages[2].relu_node, 3);
  EXPECT_EQ(stages[2].output_node, 3);
}

TEST(StageFusion, ReluSharedByTwoConsumersDoesNotFuse) {
  // conv's relu feeds two convs: the relu itself is the sole consumer of
  // conv so it fuses; the two downstream convs are separate stages.
  Network net(Shape{1, 8, 8});
  int c = net.Add(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 1),
                  {kInputNode});
  int r = net.Add(std::make_unique<nn::Relu>("r"), {c});
  net.Add(std::make_unique<nn::Conv2D>("d1", 2, 2, 1, 1, 0), {r});
  net.Add(std::make_unique<nn::Conv2D>("d2", 2, 2, 1, 1, 0), {r});
  const auto stages = BuildStages(net);
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].relu_node, r);
  EXPECT_EQ(stages[0].pool_node, -1);  // pool cannot fuse past a branch
}

TEST(StageFusion, PoolAfterMultiConsumerReluStaysStandalone) {
  Network net(Shape{1, 8, 8});
  int c = net.Add(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 1),
                  {kInputNode});
  int r = net.Add(std::make_unique<nn::Relu>("r"), {c});
  int p = net.Add(nn::MakeMaxPool("p", 2, 2), {r});
  net.Add(std::make_unique<nn::Conv2D>("d", 2, 2, 1, 1, 0), {r});
  net.Add(std::make_unique<nn::Conv2D>("e", 2, 2, 1, 1, 0), {p});
  const auto stages = BuildStages(net);
  // conv+relu | pool | d | e.
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[1].kind, StageKind::kPool);
}

TEST(StageFusion, EveryNodeBelongsToExactlyOneStage) {
  nn::Network net(Shape{2, 12, 12});
  int c0 = net.Add(std::make_unique<nn::Conv2D>("c0", 2, 4, 3, 1, 1),
                   {kInputNode});
  int r0 = net.Add(std::make_unique<nn::Relu>("r0"), {c0});
  int a = net.Add(std::make_unique<nn::Conv2D>("a", 4, 2, 1, 1, 0), {r0});
  int ra = net.Add(std::make_unique<nn::Relu>("ra"), {a});
  int b = net.Add(std::make_unique<nn::Conv2D>("b", 4, 2, 3, 1, 1), {r0});
  int rb = net.Add(std::make_unique<nn::Relu>("rb"), {b});
  int cat = net.Add(std::make_unique<nn::Concat>("cat", 2), {ra, rb});
  net.Add(nn::MakeMaxPool("p", 2, 2), {cat});

  const auto stages = BuildStages(net);
  std::vector<int> owner(static_cast<std::size_t>(net.num_nodes()), -1);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    // A standalone pool stage lists the same node as main and pool.
    std::vector<int> nodes{stages[s].main_node, stages[s].relu_node,
                           stages[s].pool_node, stages[s].post_relu_node};
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (int node : nodes) {
      if (node == -1) continue;
      EXPECT_EQ(owner[static_cast<std::size_t>(node)], -1)
          << "node " << node << " in two stages";
      owner[static_cast<std::size_t>(node)] = static_cast<int>(s);
    }
  }
  for (int i = 0; i < net.num_nodes(); ++i) {
    if (net.layer(i).kind() == nn::LayerKind::kConcat) continue;
    EXPECT_NE(owner[static_cast<std::size_t>(i)], -1) << "orphan node " << i;
  }
}

}  // namespace
}  // namespace sc::accel
