#include "models/zoo.h"

#include <gtest/gtest.h>

#include "accel/stage.h"
#include "nn/conv2d.h"
#include "support/rng.h"

namespace sc::models {
namespace {

TEST(Zoo, LeNetShapes) {
  nn::Network net = MakeLeNet();
  EXPECT_EQ(net.input_shape(), nn::Shape({1, 28, 28}));
  EXPECT_EQ(net.final_shape(), nn::Shape({10, 1, 1}));
  EXPECT_EQ(accel::BuildStages(net).size(), 4u);
}

TEST(Zoo, ConvNetShapes) {
  nn::Network net = MakeConvNet();
  EXPECT_EQ(net.input_shape(), nn::Shape({3, 32, 32}));
  EXPECT_EQ(net.final_shape(), nn::Shape({10, 1, 1}));
  EXPECT_EQ(accel::BuildStages(net).size(), 4u);
}

TEST(Zoo, AlexNetShapes) {
  nn::Network net = MakeAlexNet();
  EXPECT_EQ(net.input_shape(), nn::Shape({3, 227, 227}));
  EXPECT_EQ(net.final_shape(), nn::Shape({1000, 1, 1}));
  // 5 conv + 3 fc stages.
  const auto stages = accel::BuildStages(net);
  EXPECT_EQ(stages.size(), 8u);
  // conv1 feature map chain: 55 -> 27 -> 13 -> 13 -> 13 -> 6.
  EXPECT_EQ(net.output_shape(stages[0].output_node),
            nn::Shape({96, 27, 27}));
  EXPECT_EQ(net.output_shape(stages[4].output_node),
            nn::Shape({256, 6, 6}));
}

TEST(Zoo, SqueezeNetShapes) {
  nn::Network net = MakeSqueezeNet();
  EXPECT_EQ(net.input_shape(), nn::Shape({3, 224, 224}));
  EXPECT_EQ(net.final_shape(), nn::Shape({1000, 1, 1}));
  // 2 conv + 8 fire modules x 3 convs = 26 weighted stages. conv1's pool
  // fuses into its stage; the pools after fire4 and fire8 follow a concat
  // and stay standalone; 4 bypass eltwise stages.
  const auto stages = accel::BuildStages(net);
  std::size_t convs = 0, pools = 0, elts = 0, fcs = 0;
  for (const auto& s : stages) {
    switch (s.kind) {
      case accel::StageKind::kConv:
        ++convs;
        break;
      case accel::StageKind::kPool:
        ++pools;
        break;
      case accel::StageKind::kEltwise:
        ++elts;
        break;
      case accel::StageKind::kFc:
        ++fcs;
        break;
    }
  }
  EXPECT_EQ(convs, 26u);
  EXPECT_EQ(pools, 2u);
  EXPECT_EQ(elts, 4u);
  EXPECT_EQ(fcs, 0u);
}

TEST(Zoo, SqueezeNetWithoutBypass) {
  SqueezeNetOptions opts;
  opts.bypass_fires.clear();
  nn::Network net = MakeSqueezeNet(opts);
  const auto stages = accel::BuildStages(net);
  for (const auto& s : stages)
    EXPECT_NE(s.kind, accel::StageKind::kEltwise);
}

TEST(Zoo, DeterministicSeeding) {
  nn::Network a = MakeLeNet(42);
  nn::Network b = MakeLeNet(42);
  nn::Network c = MakeLeNet(43);
  auto& wa = dynamic_cast<nn::Conv2D&>(a.layer(0)).weights();
  auto& wb = dynamic_cast<nn::Conv2D&>(b.layer(0)).weights();
  auto& wc = dynamic_cast<nn::Conv2D&>(c.layer(0)).weights();
  EXPECT_EQ(nn::Tensor::MaxAbsDiff(wa, wb), 0.0f);
  EXPECT_GT(nn::Tensor::MaxAbsDiff(wa, wc), 0.0f);
}

TEST(CompressedConv1, ShapeAndZeroFraction) {
  const CompressedConv1 c = MakeCompressedConv1Weights(0.16f, 7);
  EXPECT_EQ(c.weights.shape(), nn::Shape({96, 3, 11, 11}));
  const auto zeros = c.weights.CountZeros();
  const auto total = c.weights.numel();
  const double frac = static_cast<double>(zeros) /
                      static_cast<double>(total);
  EXPECT_NEAR(frac, 0.16, 0.02);
  for (int k = 0; k < 96; ++k) {
    EXPECT_GE(std::abs(c.bias.at(k)), 0.05f);
    EXPECT_LE(std::abs(c.bias.at(k)), 0.5f);
  }
}

TEST(ConvStageVictim, BuildsAllVariants) {
  ConvStageVictimSpec spec;
  spec.in_depth = 1;
  spec.in_width = 8;
  spec.out_depth = 2;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{2, 1, 3, 3}, 0.1f);
  nn::Tensor b(nn::Shape{2}, 0.1f);

  nn::Network plain = MakeConvStageVictim(spec, w, b);
  EXPECT_EQ(plain.final_shape(), nn::Shape({2, 6, 6}));

  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 2;
  spec.pool_stride = 2;
  nn::Network pooled = MakeConvStageVictim(spec, w, b);
  EXPECT_EQ(pooled.final_shape(), nn::Shape({2, 3, 3}));

  spec.pool = nn::PoolKind::kAvg;
  spec.relu_before_pool = false;
  nn::Network avg = MakeConvStageVictim(spec, w, b);
  EXPECT_EQ(avg.final_shape(), nn::Shape({2, 3, 3}));

  // Wrong weight shape must be rejected.
  EXPECT_THROW(MakeConvStageVictim(spec, nn::Tensor(nn::Shape{2, 1, 2, 2}),
                                   b),
               sc::Error);
}

}  // namespace
}  // namespace sc::models
