// Full-scale integration: the structure attack against the real AlexNet
// victim on the simulated accelerator (the paper's primary case study).
// Slower than a unit test (~3 s) but the single most load-bearing check in
// the suite.
#include <algorithm>

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/report.h"
#include "models/zoo.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

const StructureAttackResult& AlexNetAttack() {
  static const StructureAttackResult result = [] {
    nn::Network net = models::MakeAlexNet(1);
    accel::Accelerator accel{accel::AcceleratorConfig{}};
    trace::Trace tr;
    nn::Tensor x(net.input_shape());
    sc::Rng rng(42);
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
    accel.Run(net, x, &tr);

    StructureAttackConfig cfg;
    cfg.analysis.known_input_elems = 3LL * 227 * 227;
    cfg.search.known_input_width = 227;
    cfg.search.known_input_depth = 3;
    cfg.search.known_output_classes = 1000;
    cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
    cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
    return RunStructureAttack(tr, cfg);
  }();
  return result;
}

TEST(AlexNetE2E, EightLayersSegmented) {
  const auto& r = AlexNetAttack();
  ASSERT_EQ(r.analysis.observations.size(), 8u);
  for (const auto& o : r.analysis.observations)
    EXPECT_EQ(o.role, SegmentRole::kConvOrFc);
}

TEST(AlexNetE2E, SizesMatchPaperEquations) {
  const auto& o = AlexNetAttack().analysis.observations;
  EXPECT_EQ(o[0].size_ifm, 227LL * 227 * 3);
  EXPECT_EQ(o[0].size_ofm, 27LL * 27 * 96);
  EXPECT_EQ(o[0].size_fltr, 11LL * 11 * 3 * 96);
  EXPECT_EQ(o[4].size_ofm, 6LL * 6 * 256);
  EXPECT_EQ(o[5].size_fltr, 9216LL * 4096);
  EXPECT_EQ(o[7].size_ofm, 1000);
}

TEST(AlexNetE2E, CandidateSetIsSmallAndContainsTruth) {
  const auto& r = AlexNetAttack();
  EXPECT_GE(r.num_structures(), 8u);
  EXPECT_LE(r.num_structures(), 200u);

  const std::vector<nn::LayerGeometry> truth = {
      {227, 3, 27, 96, 11, 4, 0, nn::PoolKind::kMax, 3, 2, 0},
      {27, 96, 13, 256, 5, 1, 2, nn::PoolKind::kMax, 3, 2, 0},
      {13, 256, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 6, 256, 3, 1, 1, nn::PoolKind::kMax, 3, 2, 0},
      {6, 256, 1, 4096, 6, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 4096, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 1000, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
  };
  bool found = false;
  for (const auto& cs : r.search.structures) {
    bool all = true;
    for (std::size_t k = 0; k < truth.size() && all; ++k)
      all = cs.layers[k].geom == truth[k];
    found = found || all;
  }
  EXPECT_TRUE(found) << "the real AlexNet must be among the candidates";
}

TEST(AlexNetE2E, PaperTableFourSignatureRowsRecovered) {
  // The self-consistent signature alternates from the paper's Table 4.
  const auto& r = AlexNetAttack();
  const auto conv2 = UsedConfigsAt(r.search, 1);
  const bool conv2_alt = std::any_of(
      conv2.begin(), conv2.end(), [](const nn::LayerGeometry& g) {
        return g.f_conv == 10 && g.w_ofm == 26 && g.d_ofm == 64;
      });
  EXPECT_TRUE(conv2_alt) << "CONV2_2 (10x10 filter -> 26x26x64) missing";

  const auto conv3 = UsedConfigsAt(r.search, 2);
  const bool conv3_alt = std::any_of(
      conv3.begin(), conv3.end(), [](const nn::LayerGeometry& g) {
        return g.f_conv == 6 && g.s_conv == 2 && g.w_ifm == 26;
      });
  EXPECT_TRUE(conv3_alt) << "CONV3_2 (6x6/2 on the 26x64 path) missing";
}

TEST(AlexNetE2E, FcLayersAlwaysUnique) {
  // Paper: "FC layers ... always have a unique configuration".
  const auto& r = AlexNetAttack();
  for (std::size_t seg : {5u, 6u, 7u}) {
    const auto configs = UsedConfigsAt(r.search, seg);
    ASSERT_EQ(configs.size(), 1u) << "segment " << seg;
    EXPECT_TRUE(configs[0].IsFullyConnected());
  }
}

}  // namespace
}  // namespace sc::attack
