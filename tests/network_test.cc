#include "nn/network.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "support/check.h"

namespace sc::nn {
namespace {

TEST(Conv2D, KnownValues) {
  // 1 input channel 3x3, one 2x2 filter of ones, bias 0.5.
  Conv2D conv("c", 1, 1, 2, 1, 0);
  conv.weights().Fill(1.0f);
  conv.bias().Fill(0.5f);
  Tensor x(Shape{1, 3, 3});
  float v = 1.0f;
  for (std::size_t i = 0; i < 9; ++i) x[i] = v++;
  Tensor y = conv.Forward({&x});
  ASSERT_EQ(y.shape(), Shape({1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 1 + 2 + 4 + 5 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 5 + 6 + 8 + 9 + 0.5f);
}

TEST(Conv2D, PaddingAndStride) {
  Conv2D conv("c", 1, 1, 3, 2, 1);
  conv.weights().Fill(1.0f);
  conv.bias().Zero();
  Tensor x(Shape{1, 4, 4}, 1.0f);
  Tensor y = conv.Forward({&x});
  // (4 + 2 - 3) / 2 + 1 = 2
  ASSERT_EQ(y.shape(), Shape({1, 2, 2}));
  // Top-left window covers rows/cols {-1,0,1}: 4 valid ones.
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 4.0f);
  // Window at (1,1): rows/cols {1,2,3}: fully valid -> 9.
  EXPECT_FLOAT_EQ(y.at(0, 1, 1), 9.0f);
}

TEST(Conv2D, MultiChannelAccumulation) {
  Conv2D conv("c", 2, 1, 1, 1, 0);
  conv.weights().at(0, 0, 0, 0) = 2.0f;
  conv.weights().at(0, 1, 0, 0) = 3.0f;
  conv.bias().Zero();
  Tensor x(Shape{2, 1, 1});
  x.at(0, 0, 0) = 5.0f;
  x.at(1, 0, 0) = 7.0f;
  Tensor y = conv.Forward({&x});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 2 * 5 + 3 * 7);
}

TEST(Pooling, MaxAndAvg) {
  Tensor x(Shape{1, 4, 4});
  float v = 1.0f;
  for (std::size_t i = 0; i < 16; ++i) x[i] = v++;
  auto maxp = MakeMaxPool("m", 2, 2);
  Tensor ym = maxp->Forward({&x});
  ASSERT_EQ(ym.shape(), Shape({1, 2, 2}));
  EXPECT_FLOAT_EQ(ym.at(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(ym.at(0, 1, 1), 16.0f);

  auto avgp = MakeAvgPool("a", 2, 2);
  Tensor ya = avgp->Forward({&x});
  EXPECT_FLOAT_EQ(ya.at(0, 0, 0), (1 + 2 + 5 + 6) / 4.0f);
}

TEST(Pooling, CeilModePartialWindows) {
  // Width 5, window 2, stride 2 -> ceil((5-2)/2)+1 = 3 outputs; the last
  // window is clipped to one column.
  Tensor x(Shape{1, 5, 5}, 1.0f);
  auto maxp = MakeMaxPool("m", 2, 2);
  Tensor y = maxp->Forward({&x});
  ASSERT_EQ(y.shape(), Shape({1, 3, 3}));
  EXPECT_FLOAT_EQ(y.at(0, 2, 2), 1.0f);
  // Average divides by the full window area even when clipped (Caffe).
  auto avgp = MakeAvgPool("a", 2, 2);
  Tensor ya = avgp->Forward({&x});
  EXPECT_FLOAT_EQ(ya.at(0, 2, 2), 0.25f);
  EXPECT_FLOAT_EQ(ya.at(0, 0, 0), 1.0f);
}

TEST(Relu, ThresholdSemantics) {
  Relu relu("r", 1.0f);
  Tensor x(Shape{4});
  x.at(0) = -1.0f;
  x.at(1) = 0.5f;
  x.at(2) = 1.0f;  // exactly the threshold: pruned
  x.at(3) = 1.5f;
  Tensor y = relu.Forward({&x});
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(1), 0.0f);
  EXPECT_EQ(y.at(2), 0.0f);
  EXPECT_EQ(y.at(3), 1.5f);
  EXPECT_THROW(Relu("bad", -0.5f), sc::Error);
}

TEST(FullyConnected, FlattensRank3Input) {
  FullyConnected fc("f", 4, 2);
  fc.weights().Fill(1.0f);
  fc.bias().at(1) = 10.0f;
  Tensor x(Shape{1, 2, 2});
  x[0] = 1;
  x[1] = 2;
  x[2] = 3;
  x[3] = 4;
  Tensor y = fc.Forward({&x});
  ASSERT_EQ(y.shape(), Shape({2, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(y.at(1, 0, 0), 20.0f);
}

TEST(Concat, DepthConcatenation) {
  Concat cat("cat", 2);
  Tensor a(Shape{1, 2, 2}, 1.0f);
  Tensor b(Shape{2, 2, 2}, 2.0f);
  Tensor y = cat.Forward({&a, &b});
  ASSERT_EQ(y.shape(), Shape({3, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1, 1, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.at(2, 0, 1), 2.0f);
}

TEST(Concat, RejectsSpatialMismatch) {
  Concat cat("cat", 2);
  EXPECT_THROW(cat.OutputShape({Shape{1, 2, 2}, Shape{1, 3, 3}}), sc::Error);
}

TEST(EltwiseAdd, AddsInputs) {
  EltwiseAdd add("add", 2);
  Tensor a(Shape{2, 1, 1}, 1.5f);
  Tensor b(Shape{2, 1, 1}, 2.0f);
  Tensor y = add.Forward({&a, &b});
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 3.5f);
  Tensor c(Shape{1, 1, 1});
  EXPECT_THROW(add.OutputShape({a.shape(), c.shape()}), sc::Error);
}

TEST(Network, SequentialBuildAndShapes) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<Conv2D>("c1", 1, 4, 3, 1, 1));
  net.Append(std::make_unique<Relu>("r1"));
  net.Append(MakeMaxPool("p1", 2, 2));
  net.Append(std::make_unique<FullyConnected>("fc", 4 * 4 * 4, 10));
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_EQ(net.final_shape(), Shape({10, 1, 1}));
  EXPECT_EQ(net.OutputNodes(), std::vector<int>{3});
}

TEST(Network, RejectsIncompatibleLayers) {
  Network net(Shape{3, 8, 8});
  EXPECT_THROW(net.Append(std::make_unique<Conv2D>("c", 4, 8, 3, 1, 0)),
               sc::Error);  // depth mismatch
  net.Append(std::make_unique<Conv2D>("c", 3, 8, 3, 1, 0));
  EXPECT_THROW(net.Add(std::make_unique<Relu>("r"), {5}), sc::Error);
  EXPECT_THROW(net.Add(std::make_unique<Concat>("cat", 2), {0}), sc::Error);
}

TEST(Network, BranchAndMergeForward) {
  // input -> conv a, conv b; concat(a, b); eltwise(concat, concat).
  Network net(Shape{1, 4, 4});
  int a = net.Add(std::make_unique<Conv2D>("a", 1, 2, 1, 1, 0),
                  {kInputNode});
  int b = net.Add(std::make_unique<Conv2D>("b", 1, 3, 1, 1, 0),
                  {kInputNode});
  int cat = net.Add(std::make_unique<Concat>("cat", 2), {a, b});
  net.Add(std::make_unique<EltwiseAdd>("add", 2), {cat, cat});
  EXPECT_EQ(net.output_shape(cat), Shape({5, 4, 4}));
  EXPECT_EQ(net.ConsumersOf(cat).size(), 1u);

  dynamic_cast<Conv2D&>(net.layer(a)).weights().Fill(1.0f);
  dynamic_cast<Conv2D&>(net.layer(b)).weights().Fill(2.0f);
  Tensor x(Shape{1, 4, 4}, 1.0f);
  Tensor y = net.ForwardFinal(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 2.0f);  // 1*1 doubled by eltwise
  EXPECT_FLOAT_EQ(y.at(4, 3, 3), 4.0f);  // conv b doubled
}

TEST(Network, ForwardValidatesInputShape) {
  Network net(Shape{1, 4, 4});
  net.Append(std::make_unique<Relu>("r"));
  EXPECT_THROW(net.ForwardFinal(Tensor(Shape{1, 5, 5})), sc::Error);
}

TEST(Network, ParamsEnumeration) {
  Network net(Shape{1, 6, 6});
  net.Append(std::make_unique<Conv2D>("c", 1, 2, 3, 1, 0));
  net.Append(std::make_unique<Relu>("r"));
  net.Append(std::make_unique<FullyConnected>("f", 2 * 4 * 4, 5));
  EXPECT_EQ(net.Params().size(), 4u);  // 2 weights + 2 biases
  EXPECT_EQ(net.NumParams(), 2u * 9 + 2 + (2 * 16 * 5) + 5);
}

}  // namespace
}  // namespace sc::nn
