// Recovery-under-noise regressions (DESIGN.md §8): the K-acquisition
// consensus structure attack and the voting/re-bracketing weight attack
// must still recover the victim at the documented reference noise levels.
// The full-scale AlexNet/SqueezeNet variants live in robust_e2e_test.cc
// (slow label); this file keeps tier-1-sized victims.
#include "attack/structure/robust.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "accel/accelerator.h"
#include "attack/weights/robust.h"
#include "models/zoo.h"
#include "sim/noise.h"
#include "sim/noisy_oracle.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

std::uint64_t NoiseSeed() {
  const char* env = std::getenv("SC_NOISE_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

trace::Trace TraceOf(const nn::Network& net, std::uint64_t seed) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accel.Run(net, RandomInput(net.input_shape(), seed), &tr);
  return tr;
}

std::vector<trace::Trace> NoisyAcquisitions(const trace::Trace& clean, int k,
                                            std::uint64_t seed) {
  const sim::TraceNoiseModel noise(sim::ReferenceTraceNoise(seed));
  std::vector<trace::Trace> out;
  for (int i = 0; i < k; ++i)
    out.push_back(noise.ApplyNth(clean, static_cast<std::uint64_t>(i)));
  return out;
}

bool SameStructures(const SearchResult& a, const SearchResult& b) {
  if (a.structures.size() != b.structures.size()) return false;
  for (std::size_t s = 0; s < a.structures.size(); ++s) {
    const auto& la = a.structures[s].layers;
    const auto& lb = b.structures[s].layers;
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i)
      if (!(la[i].geom == lb[i].geom)) return false;
  }
  return true;
}

StructureAttackConfig LeNetConfig() {
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;
  return cfg;
}

TEST(RobustStructure, SingleCleanTraceMatchesExactAttack) {
  nn::Network net = models::MakeLeNet(3);
  const trace::Trace clean = TraceOf(net, 1);

  RobustStructureConfig rcfg;
  rcfg.attack = LeNetConfig();
  const RobustStructureResult robust = RunRobustStructureAttack({clean}, rcfg);
  const StructureAttackResult exact = RunStructureAttack(clean, rcfg.attack);

  EXPECT_EQ(robust.slack_used, 0);
  EXPECT_EQ(robust.acquisitions, 1);
  EXPECT_EQ(robust.usable, 1);
  EXPECT_TRUE(SameStructures(robust.search, exact.search));
  for (const LayerConsensus& lc : robust.consensus)
    EXPECT_DOUBLE_EQ(lc.confidence(), 1.0);
}

TEST(RobustStructure, LeNetConsensusUnderReferenceNoise) {
  nn::Network net = models::MakeLeNet(3);
  const trace::Trace clean = TraceOf(net, 1);

  RobustStructureConfig rcfg;
  rcfg.attack = LeNetConfig();
  const RobustStructureResult robust = RunRobustStructureAttack(
      NoisyAcquisitions(clean, 5, NoiseSeed()), rcfg);
  const StructureAttackResult exact = RunStructureAttack(clean, rcfg.attack);

  // The reference noise level is *defined* as a level consensus fully
  // heals: the candidate set must match the noise-free attack exactly
  // (paper Table 3 counts are asserted at full scale in the slow suite).
  EXPECT_TRUE(SameStructures(robust.search, exact.search))
      << "consensus at slack " << robust.slack_used << " produced "
      << robust.num_structures() << " structures vs "
      << exact.num_structures() << " clean";
  EXPECT_GE(robust.usable, 3);
  ASSERT_EQ(robust.consensus.size(), 4u);
  for (const LayerConsensus& lc : robust.consensus) {
    EXPECT_GT(lc.confidence(), 0.0);
    EXPECT_LE(lc.confidence(), 1.0);
  }
}

TEST(RobustStructure, ConvNetConsensusUnderReferenceNoise) {
  nn::Network net = models::MakeConvNet(4);
  const trace::Trace clean = TraceOf(net, 2);

  RobustStructureConfig rcfg;
  rcfg.attack.analysis.known_input_elems = 3 * 32 * 32;
  rcfg.attack.search.known_input_width = 32;
  rcfg.attack.search.known_input_depth = 3;
  rcfg.attack.search.known_output_classes = 10;
  const RobustStructureResult robust = RunRobustStructureAttack(
      NoisyAcquisitions(clean, 5, NoiseSeed()), rcfg);
  const StructureAttackResult exact = RunStructureAttack(clean, rcfg.attack);
  EXPECT_TRUE(SameStructures(robust.search, exact.search));
}

TEST(RobustStructure, AcceleratorFaultHookFeedsRobustAttack) {
  nn::Network net = models::MakeLeNet(3);
  const nn::Tensor input = RandomInput(net.input_shape(), 1);

  trace::Trace clean;
  accel::Accelerator{accel::AcceleratorConfig{}}.Run(net, input, &clean);

  // Five acquisitions where the probe model sits inside the accelerator
  // config, so Run() itself emits the corrupted view. Apply() always draws
  // from the model's own seed, so each acquisition gets its own model (the
  // hook is non-owning and must outlive the run).
  std::vector<trace::Trace> acq;
  for (std::uint64_t k = 0; k < 5; ++k) {
    const sim::TraceNoiseModel noise(
        sim::ReferenceTraceNoise(NoiseSeed() + 1000 * k));
    accel::AcceleratorConfig acfg;
    acfg.trace_fault_hook = &noise;
    accel::Accelerator accel{acfg};
    trace::Trace tr;
    accel.Run(net, input, &tr);
    bool differs = tr.size() != clean.size();
    for (std::size_t i = 0; !differs && i < tr.size(); ++i)
      differs = !(tr[i].addr == clean[i].addr && tr[i].cycle == clean[i].cycle);
    EXPECT_TRUE(differs) << "hook left acquisition " << k << " untouched";
    acq.push_back(std::move(tr));
  }

  RobustStructureConfig rcfg;
  rcfg.attack = LeNetConfig();
  const RobustStructureResult robust = RunRobustStructureAttack(acq, rcfg);
  const StructureAttackResult exact = RunStructureAttack(clean, rcfg.attack);
  EXPECT_TRUE(SameStructures(robust.search, exact.search));
}

TEST(RobustStructure, OutvotesOneHeavilyCorruptedAcquisition) {
  nn::Network net = models::MakeLeNet(3);
  const trace::Trace clean = TraceOf(net, 1);

  // Four clean acquisitions and one with two orders of magnitude more
  // event loss than the reference level.
  sim::TraceNoiseConfig heavy;
  heavy.seed = NoiseSeed();
  heavy.drop_prob = 0.01;
  std::vector<trace::Trace> acq(4, clean);
  acq.push_back(sim::TraceNoiseModel(heavy).Apply(clean));

  RobustStructureConfig rcfg;
  rcfg.attack = LeNetConfig();
  const RobustStructureResult robust = RunRobustStructureAttack(acq, rcfg);
  const StructureAttackResult exact = RunStructureAttack(clean, rcfg.attack);
  EXPECT_EQ(robust.slack_used, 0);
  EXPECT_TRUE(SameStructures(robust.search, exact.search));
}

// ---------------------------------------------------------------------------
// Weight attack under oracle noise.

struct Victim {
  SparseConvOracle::StageSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
};

Victim MakeVictim(std::uint64_t seed, int in_depth, int in_width, int oc,
                  int f) {
  Victim v;
  v.spec.in_depth = in_depth;
  v.spec.in_width = in_width;
  v.spec.filter = f;
  v.spec.stride = 1;
  v.spec.pad = 0;
  v.weights = nn::Tensor(nn::Shape{oc, in_depth, f, f});
  v.bias = nn::Tensor(nn::Shape{oc});
  Rng rng(seed);
  for (std::size_t i = 0; i < v.weights.numel(); ++i)
    v.weights[i] = rng.GaussianF(0.6f);
  for (int k = 0; k < oc; ++k) v.bias.at(k) = rng.UniformF(0.1f, 0.5f);
  return v;
}

constexpr float kPaperBound = 1.0f / 1024.0f;  // paper: error < 2^-10

float MaxRatioError(const Victim& v, const RecoveredFilter& rec,
                    int channel) {
  float max_err = 0.0f;
  const int f = v.spec.filter;
  for (int c = 0; c < v.spec.in_depth; ++c)
    for (int i = 0; i < f; ++i)
      for (int j = 0; j < f; ++j) {
        const auto id = static_cast<std::size_t>((c * f + i) * f + j);
        if (rec.failed[id]) continue;
        const float truth =
            v.weights.at(channel, c, i, j) / v.bias.at(channel);
        max_err =
            std::max(max_err, std::fabs(rec.ratio.at(c, i, j) - truth));
      }
  return max_err;
}

TEST(RobustWeights, MatchesPlainAttackOnExactOracle) {
  const Victim v = MakeVictim(21, 2, 10, 3, 3);
  SparseConvOracle exact(v.spec, v.weights, v.bias);
  const std::vector<RecoveredFilter> plain =
      RecoverAllFilters(exact, v.spec, WeightAttackConfig{});

  // votes=1 + rebrackets=0 issues exactly the plain attack's queries.
  SparseConvOracle exact2(v.spec, v.weights, v.bias);
  RobustWeightConfig rcfg;
  rcfg.voting.votes = 1;
  rcfg.attack.max_rebrackets = 0;
  const RobustWeightResult robust =
      RecoverAllFiltersRobust(exact2, v.spec, rcfg);

  ASSERT_EQ(robust.filters.size(), plain.size());
  for (std::size_t k = 0; k < plain.size(); ++k) {
    EXPECT_EQ(robust.filters[k].queries, plain[k].queries);
    EXPECT_EQ(robust.filters[k].failed, plain[k].failed);
    for (std::size_t i = 0; i < plain[k].ratio.numel(); ++i)
      EXPECT_EQ(robust.filters[k].ratio[i], plain[k].ratio[i]);
    EXPECT_DOUBLE_EQ(robust.confidence[k], 1.0);
  }
  EXPECT_EQ(robust.total_rebrackets, 0u);
  EXPECT_EQ(robust.total_samples, robust.total_queries);
}

TEST(RobustWeights, HealsReferenceOracleNoise) {
  const Victim v = MakeVictim(22, 2, 10, 4, 3);
  SparseConvOracle exact(v.spec, v.weights, v.bias);
  sim::NoisyOracle noisy(exact, sim::ReferenceOracleNoise(NoiseSeed()));

  const RobustWeightResult robust =
      RecoverAllFiltersRobust(noisy, v.spec, ReferenceRobustWeightConfig());

  ASSERT_EQ(robust.filters.size(), 4u);
  for (int k = 0; k < 4; ++k) {
    const auto ku = static_cast<std::size_t>(k);
    EXPECT_DOUBLE_EQ(robust.confidence[ku], 1.0)
        << "filter " << k << " had unrecoverable positions";
    EXPECT_LT(MaxRatioError(v, robust.filters[ku], k), kPaperBound)
        << "filter " << k;
  }
  // Budget accounting: voting costs extra acquisitions, and they are
  // reported (3 votes per logical query, plus retried failures).
  EXPECT_GE(robust.total_samples, 3 * robust.total_queries);
  EXPECT_GT(robust.total_retries, 0u);
}

TEST(RobustWeights, PlainAttackBreaksWhereRobustHolds) {
  // Sanity check that the reference noise is not trivially harmless: the
  // un-hardened attack, pointed at a noticeably noisier oracle, must lose
  // at least one weight that the robust driver recovers.
  const Victim v = MakeVictim(23, 2, 10, 1, 3);
  sim::OracleNoiseConfig loud = sim::ReferenceOracleNoise(NoiseSeed());
  loud.count_noise_prob = 0.1;
  loud.failure_prob = 0.0;  // the plain attack has no retry path

  SparseConvOracle exact(v.spec, v.weights, v.bias);
  sim::NoisyOracle noisy(exact, loud);
  WeightAttack plain(noisy, v.spec, WeightAttackConfig{});
  const RecoveredFilter rec = plain.RecoverFilter(0);
  bool any_failed = false;
  for (const bool f : rec.failed) any_failed |= f;
  EXPECT_TRUE(any_failed || MaxRatioError(v, rec, 0) >= kPaperBound)
      << "plain attack survived 10% count noise; raise the test's noise";

  SparseConvOracle exact2(v.spec, v.weights, v.bias);
  sim::NoisyOracle noisy2(exact2, loud);
  RobustWeightConfig rcfg = ReferenceRobustWeightConfig();
  rcfg.voting.votes = 5;  // 10% perturbation rate needs a wider vote
  const RobustWeightResult robust =
      RecoverAllFiltersRobust(noisy2, v.spec, rcfg);
  EXPECT_DOUBLE_EQ(robust.confidence[0], 1.0);
  EXPECT_LT(MaxRatioError(v, robust.filters[0], 0), kPaperBound);
}

TEST(RobustWeights, ForkKeyedStreamsAreThreadCountInvariant) {
  // The per-filter noise stream is a function of the filter index alone;
  // running the robust sweep twice (scheduling may differ) must give
  // bit-identical ratios.
  const Victim v = MakeVictim(24, 1, 9, 4, 3);
  auto run = [&] {
    SparseConvOracle exact(v.spec, v.weights, v.bias);
    sim::NoisyOracle noisy(exact, sim::ReferenceOracleNoise(NoiseSeed()));
    return RecoverAllFiltersRobust(noisy, v.spec,
                                   ReferenceRobustWeightConfig());
  };
  const RobustWeightResult a = run();
  const RobustWeightResult b = run();
  ASSERT_EQ(a.filters.size(), b.filters.size());
  for (std::size_t k = 0; k < a.filters.size(); ++k) {
    for (std::size_t i = 0; i < a.filters[k].ratio.numel(); ++i)
      EXPECT_EQ(a.filters[k].ratio[i], b.filters[k].ratio[i]);
    EXPECT_EQ(a.filters[k].queries, b.filters[k].queries);
  }
  EXPECT_EQ(a.total_samples, b.total_samples);
}

}  // namespace
}  // namespace sc::attack
