#include "accel/address_map.h"

#include <gtest/gtest.h>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "support/check.h"

namespace sc::accel {
namespace {

using nn::kInputNode;
using nn::Network;
using nn::Shape;

TEST(AddressMap, BiasesAreNotStoredOffChip) {
  Network net(Shape{3, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 3, 4, 3, 1, 0));
  AddressMap map(net, 4, 4096, 4096);
  // Region = weights only (paper Eq. 3), no bias words.
  EXPECT_EQ(map.weights(0).bytes, 4ull * 3 * 4 * 3 * 3);
}

TEST(AddressMap, ParameterFreeLayersHaveNoWeightRegion) {
  Network net(Shape{3, 8, 8});
  net.Append(std::make_unique<nn::Relu>("r"));
  AddressMap map(net, 4, 4096, 4096);
  EXPECT_FALSE(map.weights(0).valid());
  EXPECT_TRUE(map.ofm(0).valid());
}

TEST(AddressMap, GuardGapsSeparateEveryRegion) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c1", 1, 2, 3, 1, 1));
  net.Append(std::make_unique<nn::Relu>("r1"));
  net.Append(std::make_unique<nn::FullyConnected>("fc", 2 * 8 * 8, 4));
  const std::uint64_t guard = 512;
  AddressMap map(net, 4, 64, guard);
  std::vector<Region> regions{map.input()};
  for (int i = 0; i < net.num_nodes(); ++i) {
    if (map.weights(i).valid()) regions.push_back(map.weights(i));
    regions.push_back(map.ofm(i));
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  for (std::size_t i = 1; i < regions.size(); ++i)
    EXPECT_GE(regions[i].base, regions[i - 1].end() + guard);
}

TEST(AddressMap, NestedConcatAliasing) {
  // concat(concat(a, b), c): all three leaves alias into the outer region.
  Network net(Shape{1, 4, 4});
  int a = net.Add(std::make_unique<nn::Conv2D>("a", 1, 2, 1, 1, 0),
                  {kInputNode});
  int b = net.Add(std::make_unique<nn::Conv2D>("b", 1, 3, 1, 1, 0),
                  {kInputNode});
  int inner = net.Add(std::make_unique<nn::Concat>("inner", 2), {a, b});
  int c = net.Add(std::make_unique<nn::Conv2D>("c", 1, 4, 1, 1, 0),
                  {kInputNode});
  int outer = net.Add(std::make_unique<nn::Concat>("outer", 2), {inner, c});
  net.Add(std::make_unique<nn::Relu>("sink"), {outer});

  AddressMap map(net, 4, 4096, 4096);
  const Region out = map.ofm(outer);
  EXPECT_EQ(map.ofm(inner).base, out.base);
  EXPECT_EQ(map.ofm(a).base, out.base);
  EXPECT_EQ(map.ofm(b).base, out.base + map.ofm(a).bytes);
  EXPECT_EQ(map.ofm(c).base, out.base + map.ofm(inner).bytes);
  EXPECT_EQ(out.bytes,
            map.ofm(a).bytes + map.ofm(b).bytes + map.ofm(c).bytes);
}

TEST(AddressMap, PruningSlackEnlargesFmapRegions) {
  Network net(Shape{1, 8, 8});
  net.Append(std::make_unique<nn::Conv2D>("c", 1, 2, 3, 1, 1));
  AddressMap dense(net, 4, 4096, 4096, 0, 0);
  AddressMap pruned(net, 4, 4096, 4096, /*extra_per_elem=*/6, 0);
  EXPECT_EQ(dense.ofm(0).bytes, 2ull * 8 * 8 * 4);
  EXPECT_EQ(pruned.ofm(0).bytes, 2ull * 8 * 8 * (4 + 6));
}

TEST(AddressMap, FeedingTwoConcatsIsRejected) {
  Network net(Shape{1, 4, 4});
  int a = net.Add(std::make_unique<nn::Conv2D>("a", 1, 2, 1, 1, 0),
                  {kInputNode});
  int b = net.Add(std::make_unique<nn::Conv2D>("b", 1, 2, 1, 1, 0),
                  {kInputNode});
  net.Add(std::make_unique<nn::Concat>("c1", 2), {a, b});
  net.Add(std::make_unique<nn::Concat>("c2", 2), {a, b});
  EXPECT_THROW(AddressMap(net, 4, 4096, 4096), sc::Error);
}

TEST(AddressMap, ElementBytesScaleEveryRegion) {
  Network net(Shape{2, 6, 6});
  net.Append(std::make_unique<nn::Conv2D>("c", 2, 3, 3, 1, 0));
  AddressMap two(net, 2, 64, 64);
  AddressMap four(net, 4, 64, 64);
  EXPECT_EQ(two.input().bytes * 2, four.input().bytes);
  EXPECT_EQ(two.weights(0).bytes * 2, four.weights(0).bytes);
  EXPECT_EQ(two.ofm(0).bytes * 2, four.ofm(0).bytes);
}

}  // namespace
}  // namespace sc::accel
