// Determinism regression: the parallel execution layer must be a pure
// simulator-speed concern. Running the structure attack, the weight attack
// and the layer forward passes with 1 thread and with 4 threads must
// produce identical reports, recovered ratios and output tensors
// (SC_THREADS controls the same knob at process start; tests switch the
// pool at runtime via ThreadPool::SetGlobalThreads).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/report.h"
#include "attack/weights/attack.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace sc {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override {
    support::ThreadPool::SetGlobalThreads(
        support::ThreadPool::DefaultThreads());
  }
};

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

TEST_F(ParallelDeterminismTest, StructureAttackReportIsThreadCountInvariant) {
  nn::Network net = models::MakeLeNet(3);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accel.Run(net, RandomInput(net.input_shape(), 1), &tr);

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 28 * 28;
  cfg.search.known_input_width = 28;
  cfg.search.known_input_depth = 1;
  cfg.search.known_output_classes = 10;

  auto report_with_threads = [&](int threads) {
    support::ThreadPool::SetGlobalThreads(threads);
    const attack::StructureAttackResult r =
        attack::RunStructureAttack(tr, cfg);
    std::ostringstream os;
    attack::WriteStructuresCsv(os, r.search);
    os << "\n";
    attack::PrintConfigTable(os, r.search);
    os << "structures: " << r.num_structures() << "\n";
    return os.str();
  };

  const std::string serial = report_with_threads(1);
  const std::string parallel = report_with_threads(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("structures:"), std::string::npos);
}

TEST_F(ParallelDeterminismTest, WeightAttackRatiosAreThreadCountInvariant) {
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 2;
  spec.in_width = 15;
  spec.filter = 3;
  spec.stride = 1;
  const int oc = 6;
  nn::Tensor w(nn::Shape{oc, spec.in_depth, spec.filter, spec.filter});
  nn::Tensor b(nn::Shape{oc});
  Rng rng(23);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  for (int k = 0; k < oc; ++k) b.at(k) = -rng.UniformF(0.1f, 0.4f);
  attack::SparseConvOracle oracle(spec, w, b);

  auto recover_with_threads = [&](int threads) {
    support::ThreadPool::SetGlobalThreads(threads);
    return attack::RecoverAllFilters(oracle, spec,
                                     attack::WeightAttackConfig{});
  };

  const std::vector<attack::RecoveredFilter> serial = recover_with_threads(1);
  const std::vector<attack::RecoveredFilter> parallel =
      recover_with_threads(4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t k = 0; k < serial.size(); ++k) {
    const attack::RecoveredFilter& s = serial[k];
    const attack::RecoveredFilter& p = parallel[k];
    EXPECT_EQ(s.channel, p.channel);
    EXPECT_EQ(s.bias_positive, p.bias_positive);
    EXPECT_EQ(s.is_zero, p.is_zero) << "filter " << k;
    EXPECT_EQ(s.failed, p.failed) << "filter " << k;
    EXPECT_EQ(s.queries, p.queries) << "filter " << k;
    ASSERT_EQ(s.ratio.numel(), p.ratio.numel());
    // Bit-identical, not merely close: the parallel sweep must issue the
    // exact same oracle query sequence per filter.
    EXPECT_EQ(std::memcmp(s.ratio.data(), p.ratio.data(),
                          s.ratio.numel() * sizeof(float)),
              0)
        << "filter " << k;
  }
}

TEST_F(ParallelDeterminismTest, ConvForwardIsThreadCountInvariant) {
  // Big enough to clear the serial-fallback threshold.
  nn::Conv2D conv("c", 4, 32, 5, 1, 2);
  Rng rng(9);
  nn::Tensor& w = conv.weights();
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.3f);
  const nn::Tensor x = RandomInput(nn::Shape{4, 31, 31}, 17);

  support::ThreadPool::SetGlobalThreads(1);
  const nn::Tensor y1 = conv.Forward({&x});
  support::ThreadPool::SetGlobalThreads(4);
  const nn::Tensor y4 = conv.Forward({&x});

  ASSERT_EQ(y1.numel(), y4.numel());
  EXPECT_EQ(
      std::memcmp(y1.data(), y4.data(), y1.numel() * sizeof(float)), 0);
}

}  // namespace
}  // namespace sc
