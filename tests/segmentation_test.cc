#include "attack/structure/segmentation.h"

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

using trace::MemOp;
using trace::Trace;

TEST(SegmentTrace, EmptyTraceNoSegments) {
  EXPECT_TRUE(SegmentTrace(Trace{}).empty());
}

TEST(SegmentTrace, SingleLayerIsOneSegment) {
  Trace t;
  t.Append(0, 0x0, 64, MemOp::kRead);    // input
  t.Append(1, 0x1000, 64, MemOp::kRead); // weights
  t.Append(2, 0x2000, 64, MemOp::kWrite);
  auto segs = SegmentTrace(t);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].num_events(), 3u);
}

TEST(SegmentTrace, RawDependencySplitsLayers) {
  Trace t;
  // Layer 0: read input, write OFM A.
  t.Append(0, 0x0, 64, MemOp::kRead);
  t.Append(1, 0x2000, 64, MemOp::kWrite);
  // Layer 1: read A (RAW!), write B.
  t.Append(2, 0x2000, 64, MemOp::kRead);
  t.Append(3, 0x4000, 64, MemOp::kWrite);
  // Layer 2: read B, write C.
  t.Append(4, 0x4000, 64, MemOp::kRead);
  t.Append(5, 0x6000, 64, MemOp::kWrite);
  auto segs = SegmentTrace(t);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].end_event, 2u);
  EXPECT_EQ(segs[1].end_event, 4u);
  EXPECT_EQ(segs[1].start_cycle, 2u);
  EXPECT_EQ(segs[1].end_cycle, 4u);
}

TEST(SegmentTrace, RereadsWithinALayerDoNotSplit) {
  Trace t;
  t.Append(0, 0x0, 64, MemOp::kRead);
  t.Append(1, 0x2000, 64, MemOp::kWrite);
  // Layer 1 reads A twice (tiling halo) and its weights repeatedly.
  t.Append(2, 0x2000, 64, MemOp::kRead);
  t.Append(3, 0x1000, 64, MemOp::kRead);
  t.Append(4, 0x2000, 64, MemOp::kRead);
  t.Append(5, 0x1000, 64, MemOp::kRead);
  t.Append(6, 0x4000, 64, MemOp::kWrite);
  auto segs = SegmentTrace(t);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[1].num_events(), 5u);
}

TEST(SegmentTrace, OperandPrefetchPulledIntoNewSegment) {
  Trace t;
  // Layer 0: input -> A.
  t.Append(0, 0x0, 64, MemOp::kRead);
  t.Append(1, 0x2000, 64, MemOp::kWrite);
  // Layer 1: A -> B.
  t.Append(2, 0x2000, 64, MemOp::kRead);
  t.Append(3, 0x4000, 64, MemOp::kWrite);
  // Layer 2 (eltwise): prefetches old operand A *before* touching B.
  t.Append(4, 0x2000, 64, MemOp::kRead);  // old data: no boundary yet
  t.Append(5, 0x4000, 64, MemOp::kRead);  // triggers the boundary
  t.Append(6, 0x6000, 64, MemOp::kWrite);
  auto segs = SegmentTrace(t);
  ASSERT_EQ(segs.size(), 3u);
  // The prefetch at index 4 must belong to layer 2.
  EXPECT_EQ(segs[2].first_event, 4u);
}

TEST(SegmentTrace, BypassReadOfOldLayerDoesNotSplit) {
  Trace t;
  t.Append(0, 0x0, 64, MemOp::kRead);
  t.Append(1, 0x2000, 64, MemOp::kWrite);  // A
  t.Append(2, 0x2000, 64, MemOp::kRead);
  t.Append(3, 0x4000, 64, MemOp::kWrite);  // B
  // Layer 2 reads B (boundary) and then ALSO old A (bypass) mid-segment.
  t.Append(4, 0x4000, 64, MemOp::kRead);
  t.Append(5, 0x2000, 64, MemOp::kRead);
  t.Append(6, 0x6000, 64, MemOp::kWrite);
  auto segs = SegmentTrace(t);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[2].num_events(), 3u);
}

// Property over the real simulator: the number of detected segments equals
// the number of accelerator stages for random sequential CNNs.
class SegmentationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentationPropertyTest, SegmentsMatchStages) {
  sc::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int depth = rng.UniformInt(1, 3);
  const int width = 8 + 4 * rng.UniformInt(0, 3);
  nn::Network net(nn::Shape{depth, width, width});
  int layers = rng.UniformInt(2, 4);
  int d = depth;
  int w = width;
  for (int l = 0; l < layers; ++l) {
    const int f = std::min(3, w / 2);
    if (f < 1 || w < 4) break;
    const int od = rng.UniformInt(2, 6);
    net.Append(std::make_unique<nn::Conv2D>("c" + std::to_string(l), d, od,
                                            f, 1, f / 2));
    net.Append(std::make_unique<nn::Relu>("r" + std::to_string(l)));
    w = nn::ConvOutWidth(w, f, 1, f / 2);
    if (rng.Chance(0.5) && w >= 4) {
      net.Append(nn::MakeMaxPool("p" + std::to_string(l), 2, 2));
      w = nn::PoolOutWidth(w, 2, 2, 0);
    }
    d = od;
  }
  net.Append(std::make_unique<nn::FullyConnected>(
      "fc", static_cast<int>(net.final_shape().numel()), 5));
  nn::InitNetwork(net, rng);

  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor x(net.input_shape());
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &tr);

  const auto stages = accel::BuildStages(net);
  const auto segs = SegmentTrace(tr);
  EXPECT_EQ(segs.size(), stages.size());
}

INSTANTIATE_TEST_SUITE_P(RandomCnns, SegmentationPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace sc::attack
