// The paper's end goal (§2): "construct a duplicated CNN model" from the
// side channels alone. This integration test runs the whole pipeline —
// structure from the trace, absolute weights from the pruning counter plus
// the threshold knob — and verifies the rebuilt clone computes the same
// function as the victim.
#include <gtest/gtest.h>

#include <sstream>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/serialize.h"
#include "support/rng.h"

namespace sc {
namespace {

TEST(ModelCloning, ConvStageClonedExactly) {
  // --- victim: conv(3x3) + ReLU, secret weights & biases ---------------
  models::ConvStageVictimSpec spec;
  spec.in_depth = 2;
  spec.in_width = 12;
  spec.out_depth = 4;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{4, 2, 3, 3});
  nn::Tensor b(nn::Shape{4});
  Rng rng(31);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  w.at(1, 0, 2, 2) = 0.0f;  // a pruned weight must survive cloning too
  for (int k = 0; k < 4; ++k)
    b.at(k) = (k % 2 ? -1.0f : 1.0f) * rng.UniformF(0.1f, 0.4f);
  nn::Network victim = models::MakeConvStageVictim(spec, w, b);

  // --- step 1: structure from the memory trace -------------------------
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor probe(victim.input_shape());
  for (std::size_t i = 0; i < probe.numel(); ++i)
    probe[i] = rng.GaussianF(1.0f);
  accel.Run(victim, probe, &tr);

  attack::StructureAttackConfig scfg;
  scfg.analysis.known_input_elems = 2 * 12 * 12;
  scfg.search.known_input_width = 12;
  scfg.search.known_input_depth = 2;
  scfg.search.known_output_classes = 0;  // not a classifier head
  scfg.search.timing_tolerance = 0.0;    // single layer: nothing to compare
  const auto structure = attack::RunStructureAttack(tr, scfg);
  ASSERT_GE(structure.num_structures(), 1u);

  // Pick the candidate matching the observed geometry (in a real attack,
  // every candidate would be cloned and validated; here the set is small
  // and contains the truth).
  const nn::LayerGeometry* geom = nullptr;
  for (const auto& cs : structure.search.structures) {
    const auto& g = cs.layers[0].geom;
    if (g.f_conv == 3 && g.s_conv == 1 && g.p_conv == 0 && !g.has_pool())
      geom = &cs.layers[0].geom;
  }
  ASSERT_NE(geom, nullptr);
  EXPECT_EQ(geom->d_ofm, 4);
  EXPECT_EQ(geom->d_ifm, 2);

  // --- step 2: absolute weights through the pruning counter ------------
  accel::AcceleratorConfig ocfg;  // threshold knob available
  attack::AcceleratorOracle oracle(victim, victim.num_nodes() - 1, ocfg);

  attack::SparseConvOracle::StageSpec geo;  // from the structure attack
  geo.in_depth = geom->d_ifm;
  geo.in_width = geom->w_ifm;
  geo.filter = geom->f_conv;
  geo.stride = geom->s_conv;
  geo.pad = geom->p_conv;

  attack::WeightAttack wattack(oracle, geo, attack::WeightAttackConfig{});
  auto clone_conv =
      std::make_unique<nn::Conv2D>("clone_conv", geom->d_ifm, geom->d_ofm,
                                   geom->f_conv, geom->s_conv, geom->p_conv);
  for (int k = 0; k < geom->d_ofm; ++k) {
    const attack::RecoveredFilter ratios = wattack.RecoverFilter(k);
    const auto abs = wattack.RecoverAbsolute(k, ratios);
    ASSERT_TRUE(abs.has_value()) << "filter " << k;
    clone_conv->bias().at(k) = abs->bias;
    for (int c = 0; c < geom->d_ifm; ++c)
      for (int i = 0; i < geom->f_conv; ++i)
        for (int j = 0; j < geom->f_conv; ++j)
          clone_conv->weights().at(k, c, i, j) = abs->weights.at(c, i, j);
  }

  // --- step 3: assemble, serialize, and validate the clone -------------
  nn::Network clone(victim.input_shape());
  clone.Append(std::move(clone_conv));
  clone.Append(std::make_unique<nn::Relu>("clone_relu"));

  std::stringstream ss;
  nn::SaveNetwork(clone, ss);
  nn::Network shipped = nn::LoadNetwork(ss);

  float worst = 0.0f;
  for (int trial = 0; trial < 8; ++trial) {
    nn::Tensor x(victim.input_shape());
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
    worst = std::max(worst,
                     nn::Tensor::MaxAbsDiff(victim.ForwardFinal(x),
                                            shipped.ForwardFinal(x)));
  }
  EXPECT_LT(worst, 5e-3f) << "clone diverges from the victim";
}

}  // namespace
}  // namespace sc
