// Campaign supervisor unit tests (DESIGN.md §12): cancel/deadline token
// semantics, the error taxonomy, atomic checkpoint persistence and
// rejection of bad checkpoint files, graceful degradation of a campaign
// under deadlines / cancellation / transient-failure budgets, and the
// stuck-unit watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "campaign/watchdog.h"
#include "support/cancel.h"
#include "support/check.h"

namespace sc::campaign {
namespace {

namespace fs = std::filesystem;
namespace json = support::json;

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// A quick single-acquisition LeNet campaign: clean trace, one recovered
// filter, noise-free oracle. Finishes in well under a second per phase.
CampaignConfig QuickCampaign() {
  CampaignConfig cfg;
  cfg.victim = "lenet";
  cfg.seed = 1;
  cfg.acquisitions = 1;
  cfg.structure.attack.analysis.known_input_elems = 28 * 28;
  cfg.structure.attack.search.known_input_width = 28;
  cfg.structure.attack.search.known_input_depth = 1;
  cfg.structure.attack.search.known_output_classes = 10;
  cfg.max_weight_filters = 1;
  return cfg;
}

// --- CancelToken / Deadline ---------------------------------------------

TEST(CancelToken, NullTokenNeverStops) {
  support::CancelToken token;
  EXPECT_FALSE(token.can_stop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.reason(), support::StopReason::kNone);
  EXPECT_NO_THROW(token.ThrowIfStopped("anything"));
}

TEST(CancelToken, RequestCancelStopsEveryTokenCopy) {
  support::CancelSource source;
  support::CancelToken a = source.token();
  support::CancelToken b = a;  // copies share the stop state
  EXPECT_TRUE(a.can_stop());
  EXPECT_FALSE(a.stop_requested());

  source.RequestCancel();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_EQ(a.reason(), support::StopReason::kCancelled);
  EXPECT_THROW(a.ThrowIfStopped("unit"), CancelledError);
}

TEST(CancelToken, ExpiredDeadlineThrowsDeadlineError) {
  support::CancelSource source;
  source.SetTimeout(std::chrono::milliseconds(-1));
  support::CancelToken token = source.token();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.reason(), support::StopReason::kDeadline);
  EXPECT_THROW(token.ThrowIfStopped("unit"), DeadlineExceededError);
  // DeadlineExceededError is a CancelledError: generic cancel handling
  // catches both.
  EXPECT_THROW(token.ThrowIfStopped("unit"), CancelledError);
}

TEST(CancelToken, FutureDeadlineDoesNotStopYet) {
  support::CancelSource source;
  source.SetTimeout(std::chrono::hours(1));
  EXPECT_FALSE(source.token().stop_requested());
  source.ClearDeadline();
  EXPECT_FALSE(source.token().stop_requested());
  // An explicit cancel still wins over a cleared deadline.
  source.RequestCancel();
  EXPECT_EQ(source.token().reason(), support::StopReason::kCancelled);
}

TEST(ErrorTaxonomy, ClassifiesTransientCancelledFatal) {
  EXPECT_EQ(Classify(TransientError("t")), ErrorClass::kTransient);
  EXPECT_EQ(Classify(CancelledError("c")), ErrorClass::kCancelled);
  EXPECT_EQ(Classify(DeadlineExceededError("d")), ErrorClass::kCancelled);
  EXPECT_EQ(Classify(Error("e")), ErrorClass::kFatal);
  EXPECT_EQ(Classify(std::runtime_error("r")), ErrorClass::kFatal);
}

// --- Checkpoint ----------------------------------------------------------

TEST(Checkpoint, RoundTripsUnitsThroughSerialize) {
  Checkpoint cp("fp-1");
  json::Value payload = json::Value::Object();
  payload.object["analyzable"] = json::Value::Bool(true);
  payload.object["count"] = json::Value::Number(42);
  cp.Record("acquire:0", payload);
  EXPECT_TRUE(cp.Has("acquire:0"));
  EXPECT_FALSE(cp.Has("acquire:1"));

  const Checkpoint back = Checkpoint::Parse(cp.Serialize(), "fp-1");
  EXPECT_EQ(back.fingerprint(), "fp-1");
  EXPECT_EQ(back.size(), 1u);
  EXPECT_TRUE(back.Has("acquire:0"));
  EXPECT_TRUE(back.Payload("acquire:0").At("analyzable").boolean);
  EXPECT_EQ(back.Payload("acquire:0").Num("count"), 42.0);
  // Canonical form: re-serializing the parsed checkpoint is byte-identical.
  EXPECT_EQ(back.Serialize(), cp.Serialize());
}

TEST(Checkpoint, SaveFileIsAtomicAndLeavesNoTmp) {
  const std::string path = TempPath("ckpt_atomic.json");
  fs::remove(path);
  Checkpoint cp("fp-atomic");
  cp.Record("structure", json::Value::Object());
  cp.SaveFile(path);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  const Checkpoint back = Checkpoint::LoadFile(path, "fp-atomic");
  EXPECT_TRUE(back.Has("structure"));
  fs::remove(path);
}

TEST(Checkpoint, RejectsCorruptForeignAndMismatchedFiles) {
  EXPECT_THROW(Checkpoint::Parse("not json{", ""), Error);
  EXPECT_THROW(Checkpoint::Parse("{\"schema\":\"other-v9\"}", ""), Error);
  EXPECT_THROW(Checkpoint::Parse("[1,2,3]", ""), Error);
  EXPECT_THROW(Checkpoint::Parse("{}", ""), Error);

  Checkpoint cp("fp-a");
  const std::string text = cp.Serialize();
  EXPECT_NO_THROW(Checkpoint::Parse(text, "fp-a"));
  EXPECT_NO_THROW(Checkpoint::Parse(text, ""));  // no expectation = accept
  EXPECT_THROW(Checkpoint::Parse(text, "fp-b"), Error);

  // Truncated file (torn write without the atomic rename) must be rejected.
  EXPECT_THROW(Checkpoint::Parse(text.substr(0, text.size() / 2), "fp-a"),
               Error);
}

TEST(Checkpoint, PayloadThrowsForUnknownUnit) {
  Checkpoint cp("fp");
  EXPECT_THROW(cp.Payload("weights:3"), Error);
}

// --- Watchdog ------------------------------------------------------------

TEST(WatchdogTest, FlagsLongRunningUnitOnce) {
  std::atomic<int> flags{0};
  std::string flagged;
  std::mutex mu;
  Watchdog dog(0.05, [&](const std::string& unit, double elapsed) {
    const std::lock_guard<std::mutex> lock(mu);
    ++flags;
    flagged = unit;
    EXPECT_GE(elapsed, 0.05);
  });
  {
    const Watchdog::Scope scope(dog, "weights:7");
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  EXPECT_EQ(flags.load(), 1);  // reported once, not per poll
  {
    const std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(flagged, "weights:7");
  }
  EXPECT_EQ(dog.stuck_reports(), 1u);
}

TEST(WatchdogTest, FastUnitsAreNeverFlagged) {
  std::atomic<int> flags{0};
  Watchdog dog(0.5, [&](const std::string&, double) { ++flags; });
  for (int i = 0; i < 5; ++i) {
    const Watchdog::Scope scope(dog, "acquire:" + std::to_string(i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(flags.load(), 0);
}

TEST(WatchdogTest, DisabledWatchdogStartsNoThread) {
  std::atomic<int> flags{0};
  Watchdog dog(0.0, [&](const std::string&, double) { ++flags; });
  const Watchdog::Scope scope(dog, "unit");
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(flags.load(), 0);
}

// --- Campaign degradation ------------------------------------------------

TEST(Campaign, FingerprintCoversResultAffectingConfig) {
  const CampaignConfig base = QuickCampaign();
  const std::string fp = CampaignFingerprint(base);
  EXPECT_EQ(fp, CampaignFingerprint(base));  // deterministic

  CampaignConfig other = base;
  other.seed = 2;
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.victim = "convnet";
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.acquisitions = 2;
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.trace_noise.drop_prob = 0.01;
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.structure.slack_ladder = {0, 8};
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.weights.voting.votes = 5;
  EXPECT_NE(CampaignFingerprint(other), fp);
  other = base;
  other.weights.attack.search_radius *= 2.0f;
  EXPECT_NE(CampaignFingerprint(other), fp);

  // Operational knobs must NOT change the fingerprint: a resumed run may
  // use different paths, parallelism or deadlines.
  other = base;
  other.checkpoint_path = "/elsewhere/ckpt.json";
  other.output_dir = "/elsewhere/out";
  other.max_transient_failures = 99;
  other.stuck_after_s = 1.0;
  EXPECT_EQ(CampaignFingerprint(other), fp);
}

TEST(Campaign, ExpiredDeadlineReturnsAllSkippedWithoutThrowing) {
  CampaignConfig cfg = QuickCampaign();
  support::CancelSource source;
  source.SetTimeout(std::chrono::milliseconds(-1));
  cfg.cancel = source.token();

  const CampaignResult result = RunCampaign(cfg);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.stop_reason, support::StopReason::kDeadline);
  EXPECT_EQ(result.done, 0);
  ASSERT_EQ(result.units.size(), 3u);  // acquire:0, structure, weights:0
  for (const UnitResult& u : result.units) {
    EXPECT_EQ(u.status, UnitStatus::kSkipped) << u.id;
    EXPECT_FALSE(u.error.empty()) << u.id;
  }
  EXPECT_FALSE(result.structure_done);
}

TEST(Campaign, CancelMidCampaignKeepsCompletedUnits) {
  CampaignConfig cfg = QuickCampaign();
  const std::string ckpt = TempPath("ckpt_cancel_mid.json");
  fs::remove(ckpt);
  cfg.checkpoint_path = ckpt;

  support::CancelSource source;
  cfg.cancel = source.token();
  // Simulated kill: request cancellation as soon as the first unit lands
  // in the checkpoint.
  cfg.on_unit_finished = [&](const std::string&) { source.RequestCancel(); };

  const CampaignResult partial = RunCampaign(cfg);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.stop_reason, support::StopReason::kCancelled);
  EXPECT_GE(partial.done, 1);
  EXPECT_LT(partial.done, 3);
  EXPECT_EQ(partial.done + partial.skipped + partial.cancelled +
                partial.failed_transient + partial.failed_fatal,
            3);

  // Resume with a fresh token: completed units come from the checkpoint.
  CampaignConfig resume = QuickCampaign();
  resume.checkpoint_path = ckpt;
  const CampaignResult full = RunCampaign(resume);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.from_checkpoint, partial.done);
  EXPECT_TRUE(full.structure_done);
  ASSERT_EQ(full.filter_done.size(), 1u);
  EXPECT_TRUE(full.filter_done[0]);
  fs::remove(ckpt);
}

TEST(Campaign, TransientBudgetSkipsRemainingUnits) {
  CampaignConfig cfg = QuickCampaign();
  cfg.max_weight_filters = 4;
  // Every oracle query fails: each weight unit exhausts the voting retry
  // budget and surfaces as a transient unit failure.
  cfg.oracle_noise.failure_prob = 1.0;
  cfg.weights.voting.max_retries = 1;
  cfg.max_transient_failures = 2;

  const CampaignResult result = RunCampaign(cfg);
  EXPECT_FALSE(result.complete);
  // acquire + structure succeed; then transient failures up to the budget,
  // and at least one weight unit is skipped because the budget is gone.
  EXPECT_GE(result.done, 2);
  EXPECT_EQ(result.failed_transient, 2);
  EXPECT_GE(result.skipped, 1);
  EXPECT_EQ(result.failed_fatal, 0);
  for (const UnitResult& u : result.units) {
    if (u.status == UnitStatus::kSkipped) {
      EXPECT_NE(u.error.find("transient"), std::string::npos) << u.id;
    }
  }
}

TEST(Campaign, CorruptCheckpointFileIsRejected) {
  CampaignConfig cfg = QuickCampaign();
  const std::string ckpt = TempPath("ckpt_corrupt.json");
  {
    std::ofstream f(ckpt);
    f << "{\"schema\":\"sc-campaign-v1\",\"fingerprint\":\"someone-else\","
         "\"units\":{}}";
  }
  cfg.checkpoint_path = ckpt;
  EXPECT_THROW(RunCampaign(cfg), Error);  // fingerprint mismatch
  {
    std::ofstream f(ckpt);
    f << "garbage not json";
  }
  EXPECT_THROW(RunCampaign(cfg), Error);  // unparseable
  fs::remove(ckpt);
}

TEST(Campaign, WatchdogFlagsStuckUnitsInResult) {
  CampaignConfig cfg = QuickCampaign();
  // Inflate the voting factor so the weight unit performs tens of
  // thousands of oracle queries — deterministically slower than the 5 ms
  // stuck threshold (the watchdog polls at threshold/4).
  cfg.weights.voting.votes = 101;
  cfg.stuck_after_s = 0.005;
  const CampaignResult result = RunCampaign(cfg);
  EXPECT_TRUE(result.complete);
  ASSERT_GE(result.stuck_units.size(), 1u);
  EXPECT_EQ(result.stuck_units.front().rfind("weights:", 0), 0u);
}

TEST(Campaign, MakeVictimCampaignRejectsUnknownVictim) {
  EXPECT_THROW(MakeVictimCampaign("resnet"), Error);
  const CampaignConfig lenet = MakeVictimCampaign("lenet", 7);
  EXPECT_EQ(lenet.structure.attack.search.known_input_width, 28);
  EXPECT_TRUE(lenet.recover_weights);
  const CampaignConfig alex = MakeVictimCampaign("alexnet");
  EXPECT_FALSE(alex.recover_weights);  // nightly-scale sweep, opt-in only
}

}  // namespace
}  // namespace sc::campaign
