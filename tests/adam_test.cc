#include "nn/train/adam.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/train/loss.h"
#include "nn/train/trainer.h"

namespace sc::nn::train {
namespace {

TEST(Adam, FirstStepMatchesHandComputation) {
  // After one step with gradient g, m_hat = g, v_hat = g^2, so the update
  // is -lr * g / (|g| + eps) ~= -lr * sign(g).
  Tensor w(Shape{2});
  w.at(0) = 1.0f;
  w.at(1) = -2.0f;
  Tensor g(Shape{2});
  g.at(0) = 0.5f;
  g.at(1) = -3.0f;
  AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  Adam opt(cfg);
  opt.Step({{&w, &g}});
  EXPECT_NEAR(w.at(0), 1.0f - 0.1f, 1e-5f);
  EXPECT_NEAR(w.at(1), -2.0f + 0.1f, 1e-5f);
  // Gradients cleared.
  EXPECT_EQ(g.at(0), 0.0f);
  EXPECT_EQ(g.at(1), 0.0f);
}

TEST(Adam, ZeroGradientLeavesParamsAlone) {
  Tensor w(Shape{3}, 1.5f);
  Tensor g(Shape{3});
  Adam opt(AdamConfig{});
  opt.Step({{&w, &g}});
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(w.at(i), 1.5f);
}

TEST(Adam, MinimizesQuadratic) {
  // f(w) = 0.5 * sum w^2; gradient = w. Adam must converge to 0.
  Tensor w(Shape{4});
  for (int i = 0; i < 4; ++i) w.at(i) = static_cast<float>(i + 1);
  Tensor g(Shape{4});
  AdamConfig cfg;
  cfg.learning_rate = 0.05f;
  Adam opt(cfg);
  for (int step = 0; step < 400; ++step) {
    for (std::size_t i = 0; i < w.numel(); ++i) g[i] = w[i];
    opt.Step({{&w, &g}});
  }
  for (int i = 0; i < 4; ++i) EXPECT_LT(std::fabs(w.at(i)), 1e-2f);
}

TEST(Adam, WeightDecayShrinksParameters) {
  Tensor w(Shape{1}, 4.0f);
  Tensor g(Shape{1});
  AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.weight_decay = 1.0f;
  Adam opt(cfg);
  for (int step = 0; step < 100; ++step) {
    g.at(0) = 0.0f;  // decay only
    opt.Step({{&w, &g}});
  }
  EXPECT_LT(std::fabs(w.at(0)), 0.5f);
}

TEST(Adam, RejectsMismatchedShapes) {
  Tensor w(Shape{2});
  Tensor g(Shape{3});
  Adam opt(AdamConfig{});
  EXPECT_THROW(opt.Step({{&w, &g}}), sc::Error);
}

TEST(TrainerWithAdam, OutTrainsSgdOnNarrowDeepNet) {
  // A deliberately narrow, deep, normalization-free net: plain SGD
  // collapses to the prior, Adam learns. This guards the Fig. 5 ranking
  // machinery against regressions.
  auto build = [] {
    Network net(Shape{2, 16, 16});
    int cur = net.Add(std::make_unique<Conv2D>("c0", 2, 3, 3, 1, 1),
                      {kInputNode});
    cur = net.Add(std::make_unique<Relu>("r0"), {cur});
    for (int l = 1; l <= 4; ++l) {
      cur = net.Add(std::make_unique<Conv2D>("c" + std::to_string(l), 3, 3,
                                             3, 1, 1),
                    {cur});
      cur = net.Add(std::make_unique<Relu>("rr" + std::to_string(l)), {cur});
    }
    net.Add(std::make_unique<FullyConnected>("fc", 3 * 16 * 16, 4), {cur});
    return net;
  };

  DatasetConfig dcfg;
  dcfg.depth = 2;
  dcfg.width = 16;
  dcfg.num_classes = 4;
  dcfg.noise = 0.05f;
  SyntheticDataset ds(dcfg);
  const auto train_set = ds.MakeTrainSet(80);
  const auto test_set = ds.MakeTestSet(40);

  Network adam_net = build();
  Rng r1(3);
  InitNetwork(adam_net, r1);
  TrainConfig adam_cfg;
  adam_cfg.epochs = 6;
  adam_cfg.optimizer = Optimizer::kAdam;
  adam_cfg.adam.learning_rate = 2e-3f;
  Train(adam_net, train_set, adam_cfg);
  const float adam_top1 = Evaluate(adam_net, test_set).top1;

  EXPECT_GT(adam_top1, 0.5f) << "Adam should clear chance (0.25) easily";
}

}  // namespace
}  // namespace sc::nn::train
