#include "nn/tensor.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace sc::nn {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{3, 4, 5};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s[0], 3);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 5);
  EXPECT_EQ(s.numel(), 60u);
  EXPECT_EQ(s.ToString(), "{3x4x5}");
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, RejectsBadExtents) {
  EXPECT_THROW(Shape({0}), sc::Error);
  EXPECT_THROW(Shape({2, -1}), sc::Error);
  EXPECT_THROW(Shape(std::vector<int>{}), sc::Error);
  EXPECT_THROW(Shape({1, 1, 1, 1, 1}), sc::Error);
}

TEST(Tensor, FillAndIndexing) {
  Tensor t(Shape{2, 3, 4}, 1.5f);
  EXPECT_EQ(t.numel(), 24u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 1.5f);
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[23], 7.0f);  // last element in row-major layout
  t.Zero();
  EXPECT_EQ(t.at(1, 2, 3), 0.0f);
}

TEST(Tensor, RankCheckedAccess) {
  Tensor t3(Shape{2, 2, 2});
  EXPECT_THROW(t3.at(0, 0), sc::Error);       // rank mismatch
  EXPECT_THROW(t3.at(0, 0, 2), sc::Error);    // out of range
  EXPECT_THROW(t3.at(-1, 0, 0), sc::Error);   // negative
  Tensor t4(Shape{1, 1, 1, 1});
  EXPECT_NO_THROW(t4.at(0, 0, 0, 0));
  Tensor t1(Shape{5});
  EXPECT_NO_THROW(t1.at(4));
  EXPECT_THROW(t1.at(5), sc::Error);
}

TEST(Tensor, RowMajorLayout4D) {
  Tensor t(Shape{2, 2, 2, 2});
  float v = 0.0f;
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b)
      for (int c = 0; c < 2; ++c)
        for (int d = 0; d < 2; ++d) t.at(a, b, c, d) = v++;
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(t[i], static_cast<float>(i));
}

TEST(Tensor, CountZeros) {
  Tensor t(Shape{4});
  t.at(1) = 2.0f;
  t.at(3) = -1.0f;
  EXPECT_EQ(t.CountZeros(), 2u);
  EXPECT_EQ(t.CountNonZeros(), 2u);
}

TEST(Tensor, AddAndScale) {
  Tensor a(Shape{3}, 1.0f);
  Tensor b(Shape{3}, 2.0f);
  a.Add(b, 0.5f);
  EXPECT_EQ(a.at(0), 2.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a.at(2), 4.0f);
  Tensor c(Shape{4});
  EXPECT_THROW(a.Add(c), sc::Error);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a(Shape{2}, 1.0f);
  Tensor b(Shape{2}, 1.0f);
  b.at(1) = 3.5f;
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 2.5f);
  Tensor c(Shape{3});
  EXPECT_THROW(Tensor::MaxAbsDiff(a, c), sc::Error);
}

}  // namespace
}  // namespace sc::nn
