// Unit tests for the shared parallel-execution subsystem: chunk coverage,
// edge-case ranges, exception propagation out of workers, nested-call
// safety and runtime thread-count control.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::support {
namespace {

class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ThreadPool::SetGlobalThreads(ThreadPool::DefaultThreads());
  }
};

TEST_F(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool::SetGlobalThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool::SetGlobalThreads(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 7, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST_F(ThreadPoolTest, GrainLargerThanRangeRunsOneInlineChunk) {
  ThreadPool::SetGlobalThreads(4);
  std::atomic<int> calls{0};
  std::int64_t seen_lo = -1, seen_hi = -1;
  ParallelFor(3, 10, 100, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    seen_lo = lo;
    seen_hi = hi;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_lo, 3);
  EXPECT_EQ(seen_hi, 10);
}

TEST_F(ThreadPoolTest, NonUnitGrainChunksAreContiguousAndClamped) {
  ThreadPool::SetGlobalThreads(2);
  std::atomic<std::int64_t> total{0};
  ParallelFor(0, 10, 4, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LE(hi - lo, 4);  // last chunk clamps to the range end
    std::int64_t s = 0;
    for (std::int64_t i = lo; i < hi; ++i) s += i;
    total += s;
  });
  EXPECT_EQ(total.load(), 45);
}

TEST_F(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool::SetGlobalThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 100, 1,
                  [&](std::int64_t lo, std::int64_t) {
                    if (lo == 42) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // SC_CHECK failures inside chunks surface as sc::Error, like serial code.
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [&](std::int64_t lo, std::int64_t) {
                             SC_CHECK_MSG(lo != 17, "invariant");
                           }),
               sc::Error);
}

TEST_F(ThreadPoolTest, FirstFailingChunkWinsDeterministically) {
  // Several chunks throw; the reported exception must always be the one
  // from the lowest index, independent of worker scheduling. Chunks are
  // claimed from a monotonic counter, so the lowest-index failure always
  // runs — later failures must not race it out.
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    for (int round = 0; round < 25; ++round) {
      try {
        ParallelFor(0, 100, 1, [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i)
            if (i == 11 || i == 37 || i == 73)
              throw std::runtime_error("chunk " + std::to_string(i));
        });
        FAIL() << "ParallelFor did not throw";
      } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "chunk 11");
      }
    }
  }
}

TEST_F(ThreadPoolTest, PoolStaysUsableAfterException) {
  ThreadPool::SetGlobalThreads(4);
  EXPECT_THROW(ParallelFor(0, 8, 1,
                           [](std::int64_t, std::int64_t) {
                             throw std::runtime_error("first");
                           }),
               std::runtime_error);
  std::atomic<int> sum{0};
  ParallelFor(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 28);
}

TEST_F(ThreadPoolTest, NestedCallsRunInlineAndComplete) {
  ThreadPool::SetGlobalThreads(4);
  constexpr int kOuter = 8;
  constexpr int kInner = 50;
  std::vector<std::atomic<int>> rows(kOuter);
  EXPECT_FALSE(InParallelRegion());
  ParallelFor(0, kOuter, 1, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_TRUE(InParallelRegion());
    for (std::int64_t r = lo; r < hi; ++r) {
      // The nested loop must not deadlock on pool capacity: it detects the
      // enclosing region and runs inline.
      ParallelFor(0, kInner, 1, [&](std::int64_t ilo, std::int64_t ihi) {
        rows[static_cast<std::size_t>(r)].fetch_add(
            static_cast<int>(ihi - ilo));
      });
    }
  });
  EXPECT_FALSE(InParallelRegion());
  for (int r = 0; r < kOuter; ++r)
    EXPECT_EQ(rows[static_cast<std::size_t>(r)], kInner);
}

TEST_F(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
  std::vector<int> order;  // no synchronization: must be single-threaded
  ParallelFor(0, 20, 3, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST_F(ThreadPoolTest, SetGlobalThreadsResizes) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
  EXPECT_THROW(ThreadPool::SetGlobalThreads(0), sc::Error);
}

TEST_F(ThreadPoolTest, ExplicitPoolOverridesGlobal) {
  ThreadPool::SetGlobalThreads(1);
  ThreadPool local(4);
  EXPECT_EQ(local.threads(), 4);
  std::atomic<std::int64_t> sum{0};
  ParallelFor(
      0, 100, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) sum += i;
      },
      &local);
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace sc::support
