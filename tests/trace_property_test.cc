// Property-based tests for Trace CSV serialization.
//
// Round-trip invariant: for any valid trace — including adversarial shapes
// like repeated cycles, huge addresses, and maximum burst sizes —
// WriteCsv followed by ReadCsv reproduces the trace exactly (MemEvent has
// operator==, so equality is field-exact). Complemented by directed tests
// of every ReadCsv rejection path, checking that diagnostics carry the
// 1-based line number of the offending row.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "support/check.h"
#include "support/rng.h"
#include "trace/mem_event.h"

namespace sc::trace {
namespace {

constexpr int kCases = 100;

// One randomized valid trace. Sizes, address ranges, and cycle gaps are all
// drawn adversarially: empty traces, single events, bursts of 1 byte and of
// UINT32_MAX bytes, addresses near 2^64, and long runs of equal cycles.
Trace RandomTrace(std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  const int n = rng.UniformInt(0, 200);
  std::uint64_t cycle = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  for (int i = 0; i < n; ++i) {
    MemEvent e;
    // ~25% of events share the previous cycle (bursts issued back-to-back).
    if (!rng.Chance(0.25))
      cycle += static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 16));
    e.cycle = cycle;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        e.bytes = 1;
        break;
      case 1:
        e.bytes = std::numeric_limits<std::uint32_t>::max();
        break;
      default:
        e.bytes = static_cast<std::uint32_t>(rng.UniformInt(1, 1 << 20));
    }
    e.addr = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 30));
    if (rng.Chance(0.05))  // highest event still inside the address space
      e.addr = std::numeric_limits<std::uint64_t>::max() - e.bytes - e.addr;
    e.op = rng.Chance(0.5) ? MemOp::kRead : MemOp::kWrite;
    t.Append(e);
  }
  return t;
}

TEST(TraceProperty, CsvRoundTripIsExact) {
  for (int c = 0; c < kCases; ++c) {
    const Trace original = RandomTrace(static_cast<std::uint64_t>(c) + 1);
    std::stringstream buf;
    original.WriteCsv(buf);
    const Trace restored = Trace::ReadCsv(buf);
    ASSERT_EQ(restored.size(), original.size()) << "seed " << c + 1;
    for (std::size_t i = 0; i < original.size(); ++i)
      ASSERT_EQ(restored[i], original[i])
          << "seed " << c + 1 << " event " << i;
    ASSERT_EQ(restored.bytes_read(), original.bytes_read());
    ASSERT_EQ(restored.bytes_written(), original.bytes_written());
  }
}

// Serializing twice yields the same bytes (WriteCsv is a pure function of
// the events), and re-serializing the round-tripped trace matches too.
TEST(TraceProperty, CsvSerializationIsStable) {
  for (int c = 0; c < kCases; ++c) {
    const Trace original = RandomTrace(static_cast<std::uint64_t>(c) + 1);
    std::stringstream a, b;
    original.WriteCsv(a);
    original.WriteCsv(b);
    EXPECT_EQ(a.str(), b.str());
    std::stringstream again;
    Trace::ReadCsv(a).WriteCsv(again);
    EXPECT_EQ(again.str(), b.str());
  }
}

// Blank lines between rows are tolerated but do not shift line numbering.
TEST(TraceProperty, BlankLinesAreSkipped) {
  std::stringstream buf("cycle,addr,bytes,op\n1,0,4,R\n\n\n2,8,4,W\n");
  const Trace t = Trace::ReadCsv(buf);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].cycle, 2u);
  EXPECT_EQ(t[1].op, MemOp::kWrite);
}

// --- rejection paths --------------------------------------------------------

// Runs ReadCsv on `text`, asserting it throws and that the diagnostic
// contains `fragment` (typically "row N" to pin the reported line number).
void ExpectRejects(const std::string& text, const std::string& fragment) {
  std::stringstream buf(text);
  try {
    Trace::ReadCsv(buf);
    FAIL() << "expected rejection of: " << text;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST(TraceProperty, RejectsEmptyStream) {
  ExpectRejects("", "empty CSV stream");
}

TEST(TraceProperty, RejectsBadHeader) {
  ExpectRejects("cycle,addr,bytes\n", "bad CSV header");
  ExpectRejects("1,0,4,R\n", "bad CSV header");
}

TEST(TraceProperty, RejectsMalformedRowWithLineNumber) {
  // Header is line 1, so the first data row is line 2.
  ExpectRejects("cycle,addr,bytes,op\nNaN,0,4,R\n", "malformed CSV row 2");
  ExpectRejects("cycle,addr,bytes,op\n1,0,4,R\n5;6;7;W\n",
                "malformed CSV row 3");
  ExpectRejects("cycle,addr,bytes,op\n1,0,4\n", "malformed CSV row 2");
  // '-' anywhere in a row is rejected before extraction: istream would
  // otherwise accept "-1" into an unsigned field as 2^64 - 1.
  ExpectRejects("cycle,addr,bytes,op\nnot-a-number,0,4,R\n",
                "negative field on row 2");
  ExpectRejects("cycle,addr,bytes,op\n1,-8,4,R\n", "negative field on row 2");
}

TEST(TraceProperty, RejectsZeroByteBurstWithLineNumber) {
  ExpectRejects("cycle,addr,bytes,op\n1,0,4,R\n2,0,0,W\n",
                "zero-byte burst on row 3");
}

TEST(TraceProperty, RejectsOversizedBurstWithLineNumber) {
  ExpectRejects("cycle,addr,bytes,op\n1,0,4294967296,R\n",
                "bad burst size on row 2");
}

TEST(TraceProperty, RejectsBadOpWithLineNumber) {
  ExpectRejects("cycle,addr,bytes,op\n1,0,4,X\n", "bad op 'X' on row 2");
  ExpectRejects("cycle,addr,bytes,op\n1,0,4,R\n2,0,4,read\n",
                "bad op 'read' on row 3");
}

TEST(TraceProperty, RejectsTrailingDataWithLineNumber) {
  ExpectRejects("cycle,addr,bytes,op\n1,0,4,R extra\n",
                "trailing data 'extra' on row 2");
}

TEST(TraceProperty, RejectsNonMonotoneCycleWithLineNumber) {
  ExpectRejects("cycle,addr,bytes,op\n5,0,4,R\n4,0,4,W\n",
                "non-monotone cycle on row 3");
}

// Truncation property: cutting a serialized trace mid-row must either
// reject with the right row number or (when the cut lands exactly on a row
// boundary) yield a strict prefix of the original events.
TEST(TraceProperty, TruncationRejectsOrYieldsPrefix) {
  for (int c = 0; c < kCases; ++c) {
    Trace original = RandomTrace(static_cast<std::uint64_t>(c) + 500);
    if (original.empty()) continue;
    std::stringstream buf;
    original.WriteCsv(buf);
    const std::string text = buf.str();
    Rng rng(static_cast<std::uint64_t>(c) + 9000);
    const std::size_t cut = static_cast<std::size_t>(
        rng.UniformInt(22, static_cast<int>(text.size() - 1)));
    std::stringstream cut_buf(text.substr(0, cut));
    try {
      const Trace t = Trace::ReadCsv(cut_buf);
      ASSERT_LE(t.size(), original.size());
      for (std::size_t i = 0; i < t.size(); ++i) ASSERT_EQ(t[i], original[i]);
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("row"), std::string::npos)
          << "truncation diagnostic lacks a row number: " << e.what();
    }
  }
}

}  // namespace
}  // namespace sc::trace
