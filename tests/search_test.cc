#include "attack/structure/search.h"

#include <gtest/gtest.h>

namespace sc::attack {
namespace {

using nn::LayerGeometry;
using nn::PoolKind;

// Builds the observation a given true layer chain would produce, including
// paper-style MAC-proportional timing.
std::vector<LayerObservation> ObserveChain(
    const std::vector<LayerGeometry>& chain) {
  std::vector<LayerObservation> obs(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const LayerGeometry& g = chain[i];
    LayerObservation& o = obs[i];
    o.segment = static_cast<int>(i);
    o.role = SegmentRole::kConvOrFc;
    o.size_ifm = g.SizeIfm();
    o.size_ofm = g.SizeOfm();
    o.size_fltr = g.SizeFilter();
    o.cycles = static_cast<std::uint64_t>(g.ConvMacCount() / 16 + 1);
    ObservedInput in;
    in.elems = o.size_ifm;
    in.writer_segments = i == 0 ? std::vector<int>{-1}
                                : std::vector<int>{static_cast<int>(i - 1)};
    o.inputs.push_back(in);
    o.reads_network_input = (i == 0);
  }
  return obs;
}

std::vector<LayerGeometry> LeNetChain() {
  return {
      {28, 1, 12, 20, 5, 1, 0, PoolKind::kMax, 2, 2, 0},
      {12, 20, 4, 50, 5, 1, 0, PoolKind::kMax, 2, 2, 0},
      {4, 50, 1, 500, 4, 1, 0, PoolKind::kNone, 0, 0, 0},   // fc
      {1, 500, 1, 10, 1, 1, 0, PoolKind::kNone, 0, 0, 0},   // fc
  };
}

bool StructureMatches(const CandidateStructure& cs,
                      const std::vector<LayerGeometry>& chain) {
  if (cs.layers.size() != chain.size()) return false;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    LayerGeometry t = chain[i];
    if (t.has_pool()) t.pool = PoolKind::kMax;
    if (!(cs.layers[i].geom == t)) return false;
  }
  return true;
}

TEST(SearchStructures, LeNetChainContainsTruth) {
  const auto chain = LeNetChain();
  SearchConfig cfg;
  cfg.known_input_width = 28;
  cfg.known_input_depth = 1;
  cfg.known_output_classes = 10;
  const SearchResult r = SearchStructures(ObserveChain(chain), cfg);
  ASSERT_FALSE(r.structures.empty());
  EXPECT_LT(r.structures.size(), 64u);  // a *small* candidate set
  const bool found = std::any_of(
      r.structures.begin(), r.structures.end(),
      [&](const CandidateStructure& cs) {
        return StructureMatches(cs, chain);
      });
  EXPECT_TRUE(found);
}

TEST(SearchStructures, TimingFilterShrinksCandidateSet) {
  const auto chain = LeNetChain();
  SearchConfig tight;
  tight.known_input_width = 28;
  tight.known_input_depth = 1;
  tight.known_output_classes = 10;
  tight.timing_tolerance = 1.5;
  SearchConfig off = tight;
  off.timing_tolerance = 0.0;  // disabled
  const auto obs = ObserveChain(chain);
  const auto with_filter = SearchStructures(obs, tight);
  const auto without = SearchStructures(obs, off);
  EXPECT_LE(with_filter.structures.size(), without.structures.size());
  EXPECT_FALSE(with_filter.structures.empty());
}

TEST(SearchStructures, ChainingRejectsDimensionMismatch) {
  // Construct observations whose only factorizations cannot chain: layer 0
  // outputs 4x4x4, layer 1 claims an input of 8x8x1 worth of elements (the
  // sizes agree: 64 elements) — chaining must use layer 0's (4,4) output,
  // and candidates for layer 1 must be consistent with that.
  std::vector<LayerGeometry> chain = {
      {8, 1, 4, 4, 2, 2, 0, PoolKind::kNone, 0, 0, 0},
      {4, 4, 2, 8, 2, 2, 0, PoolKind::kNone, 0, 0, 0},
  };
  SearchConfig cfg;
  cfg.known_input_width = 8;
  cfg.known_input_depth = 1;
  cfg.timing_tolerance = 0.0;
  const SearchResult r = SearchStructures(ObserveChain(chain), cfg);
  for (const CandidateStructure& cs : r.structures) {
    EXPECT_EQ(cs.layers[1].geom.w_ifm, cs.layers[0].geom.w_ofm);
    EXPECT_EQ(cs.layers[1].geom.d_ifm, cs.layers[0].geom.d_ofm);
  }
}

TEST(SearchStructures, IdenticalGroupsFilter) {
  // Two structurally-identical conv layers; force the assumption and check
  // that mixed-parameter structures are gone.
  std::vector<LayerGeometry> chain = {
      {16, 2, 8, 4, 2, 2, 0, PoolKind::kNone, 0, 0, 0},
      {8, 4, 4, 8, 2, 2, 0, PoolKind::kNone, 0, 0, 0},
  };
  SearchConfig cfg;
  cfg.known_input_width = 16;
  cfg.known_input_depth = 2;
  cfg.timing_tolerance = 0.0;
  const auto obs = ObserveChain(chain);
  const auto unconstrained = SearchStructures(obs, cfg);
  cfg.identical_groups = {{0, 1}};
  const auto constrained = SearchStructures(obs, cfg);
  EXPECT_LE(constrained.structures.size(), unconstrained.structures.size());
  for (const CandidateStructure& cs : constrained.structures) {
    EXPECT_EQ(cs.layers[0].geom.f_conv, cs.layers[1].geom.f_conv);
    EXPECT_EQ(cs.layers[0].geom.s_conv, cs.layers[1].geom.s_conv);
  }
}

TEST(SearchStructures, EmptyObservations) {
  const SearchResult r = SearchStructures({}, SearchConfig{});
  EXPECT_TRUE(r.structures.empty());
}

TEST(SearchStructures, UnknownRoleYieldsNoStructures) {
  LayerObservation o;
  o.segment = 0;
  o.role = SegmentRole::kUnknown;
  o.size_ifm = 4;
  o.size_ofm = 4;
  ObservedInput in;
  in.elems = 4;
  in.writer_segments = {-1};
  o.inputs.push_back(in);
  o.reads_network_input = true;
  const SearchResult r = SearchStructures({o}, SearchConfig{});
  EXPECT_TRUE(r.structures.empty());
}

TEST(DetectFireModuleGroups, FindsRepeatedMotifs) {
  // Two fire-like motifs: squeeze feeding two conv consumers each.
  std::vector<LayerObservation> obs(6);
  auto conv = [&](int seg, std::vector<int> writers) {
    obs[static_cast<std::size_t>(seg)].segment = seg;
    obs[static_cast<std::size_t>(seg)].role = SegmentRole::kConvOrFc;
    ObservedInput in;
    in.writer_segments = std::move(writers);
    in.elems = 1;
    obs[static_cast<std::size_t>(seg)].inputs.push_back(in);
  };
  conv(0, {-1});
  conv(1, {0});
  conv(2, {0});
  conv(3, {1, 2});
  conv(4, {3});
  conv(5, {3});
  const auto groups = DetectFireModuleGroups(obs);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 3}));  // squeezes
  EXPECT_EQ(groups[1], (std::vector<int>{1, 4}));  // first expands
  EXPECT_EQ(groups[2], (std::vector<int>{2, 5}));  // second expands
}

TEST(DetectFireModuleGroups, NoMotifsInSequentialNet) {
  const auto obs = ObserveChain(LeNetChain());
  EXPECT_TRUE(DetectFireModuleGroups(obs).empty());
}

}  // namespace
}  // namespace sc::attack
