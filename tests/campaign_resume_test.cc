// Kill/resume determinism for the campaign supervisor (DESIGN.md §12).
//
// The acceptance property: a campaign killed after k completed units and
// resumed from its checkpoint produces artifacts byte-identical to an
// uninterrupted run — structure-candidate CSV and recovered-filter ratio
// CSV — for LeNet and ConvNet, under reference trace/oracle noise, at
// SC_THREADS in {1, 4}. Unit RNG streams are forked per acquisition /
// per filter from the campaign seed, so resume determinism is by
// construction; these tests pin it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "accel/dataflow.h"
#include "campaign/campaign.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::campaign {
namespace {

namespace fs = std::filesystem;

std::uint64_t NoiseSeed() {
  const char* env = std::getenv("SC_NOISE_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

// Reference-noise campaign, lightened for tier-1 latency: 3 noisy
// acquisitions, but only the first 2 filters of the weight sweep. The
// victim's dataflow backend defaults to the process-wide one (SC_DATAFLOW)
// unless pinned by the caller.
CampaignConfig TestCampaign(
    const std::string& victim,
    std::optional<accel::Dataflow> dataflow = std::nullopt) {
  CampaignConfig cfg = MakeVictimCampaign(victim, NoiseSeed());
  if (dataflow) cfg.dataflow = *dataflow;
  cfg.max_weight_filters = 2;
  return cfg;
}

struct Artifacts {
  std::string structure_csv;
  std::string filter_csv;
};

Artifacts ArtifactsOf(const CampaignResult& r) {
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.structure_done);
  return Artifacts{r.structure_csv, r.filter_csv};
}

class CampaignResumeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    support::ThreadPool::SetGlobalThreads(
        support::ThreadPool::DefaultThreads());
  }
};

// Runs the full kill-after-k / resume / compare cycle for one victim at
// one thread count; returns the uninterrupted run's artifacts so callers
// can also compare across thread counts.
Artifacts KillResumeRoundTrip(
    const std::string& victim, int threads, int kill_after_units,
    std::optional<accel::Dataflow> dataflow = std::nullopt) {
  support::ThreadPool::SetGlobalThreads(threads);
  std::string tag = victim + "_t" + std::to_string(threads);
  if (dataflow) tag += std::string("_") + accel::ToString(*dataflow);

  // Uninterrupted reference run.
  CampaignConfig uninterrupted = TestCampaign(victim, dataflow);
  uninterrupted.checkpoint_path = TempPath("resume_ref_" + tag + ".json");
  fs::remove(uninterrupted.checkpoint_path);
  const CampaignResult ref = RunCampaign(uninterrupted);
  const Artifacts want = ArtifactsOf(ref);

  // Killed run: cancel once `kill_after_units` units have been persisted.
  CampaignConfig killed = TestCampaign(victim, dataflow);
  killed.checkpoint_path = TempPath("resume_kill_" + tag + ".json");
  fs::remove(killed.checkpoint_path);
  support::CancelSource source;
  killed.cancel = source.token();
  std::atomic<int> finished{0};
  killed.on_unit_finished = [&](const std::string&) {
    if (finished.fetch_add(1) + 1 >= kill_after_units) source.RequestCancel();
  };
  const CampaignResult partial = RunCampaign(killed);
  EXPECT_FALSE(partial.complete);
  EXPECT_GE(partial.done, kill_after_units);
  // No lost work: every done unit survived into the checkpoint file.
  EXPECT_TRUE(fs::exists(killed.checkpoint_path));

  // Resume and compare byte-for-byte.
  CampaignConfig resume = TestCampaign(victim, dataflow);
  resume.checkpoint_path = killed.checkpoint_path;
  const CampaignResult resumed = RunCampaign(resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.from_checkpoint, partial.done)
      << "resume re-ran already-completed units";
  const Artifacts got = ArtifactsOf(resumed);
  EXPECT_EQ(got.structure_csv, want.structure_csv)
      << victim << " structure CSV diverged after kill/resume";
  EXPECT_EQ(got.filter_csv, want.filter_csv)
      << victim << " filter-ratio CSV diverged after kill/resume";

  fs::remove(uninterrupted.checkpoint_path);
  fs::remove(killed.checkpoint_path);
  fs::remove_all(uninterrupted.checkpoint_path + ".traces");
  fs::remove_all(killed.checkpoint_path + ".traces");
  return want;
}

TEST_F(CampaignResumeTest, LeNetKillResumeIsByteIdenticalAcrossThreads) {
  const Artifacts t1 = KillResumeRoundTrip("lenet", 1, 2);
  const Artifacts t4 = KillResumeRoundTrip("lenet", 4, 2);
  // The same campaign must also be thread-count invariant (the repo-wide
  // determinism contract: CSVs never depend on SC_THREADS).
  EXPECT_EQ(t1.structure_csv, t4.structure_csv);
  EXPECT_EQ(t1.filter_csv, t4.filter_csv);
  EXPECT_FALSE(t1.filter_csv.empty());
}

TEST_F(CampaignResumeTest, ConvNetKillResumeIsByteIdenticalAcrossThreads) {
  const Artifacts t1 = KillResumeRoundTrip("convnet", 1, 2);
  const Artifacts t4 = KillResumeRoundTrip("convnet", 4, 2);
  EXPECT_EQ(t1.structure_csv, t4.structure_csv);
  EXPECT_EQ(t1.filter_csv, t4.filter_csv);
}

TEST_F(CampaignResumeTest, KillResumeIsByteIdenticalPerBackend) {
  // The checkpoint/resume contract holds whichever dataflow backend the
  // victim's accelerator runs (the fingerprint pins it; the unit payloads
  // must replay identically under either schedule).
  KillResumeRoundTrip("lenet", 4, 2, accel::Dataflow::kWeightStationary);
  KillResumeRoundTrip("lenet", 4, 2, accel::Dataflow::kOutputStationary);
}

TEST_F(CampaignResumeTest, ResumeRejectsCheckpointFromOtherBackend) {
  // Traces from different dataflow backends are not interchangeable: the
  // fingerprint carries the dataflow, so resuming a weight-stationary
  // checkpoint under an output-stationary config must fail loudly instead
  // of silently mixing schedules.
  support::ThreadPool::SetGlobalThreads(4);
  CampaignConfig killed =
      TestCampaign("lenet", accel::Dataflow::kWeightStationary);
  killed.checkpoint_path = TempPath("resume_cross_backend.json");
  fs::remove(killed.checkpoint_path);
  support::CancelSource source;
  killed.cancel = source.token();
  std::atomic<int> finished{0};
  killed.on_unit_finished = [&](const std::string&) {
    if (finished.fetch_add(1) + 1 >= 1) source.RequestCancel();
  };
  const CampaignResult partial = RunCampaign(killed);
  EXPECT_FALSE(partial.complete);
  ASSERT_TRUE(fs::exists(killed.checkpoint_path));

  CampaignConfig resume =
      TestCampaign("lenet", accel::Dataflow::kOutputStationary);
  resume.checkpoint_path = killed.checkpoint_path;
  EXPECT_THROW(RunCampaign(resume), sc::Error);
  fs::remove(killed.checkpoint_path);
}

TEST_F(CampaignResumeTest, ResumeAfterWeightPhaseKill) {
  // Kill late (after the structure unit): only weight units remain.
  support::ThreadPool::SetGlobalThreads(4);
  CampaignConfig ref_cfg = TestCampaign("lenet");
  const CampaignResult ref = RunCampaign(ref_cfg);
  const Artifacts want = ArtifactsOf(ref);

  CampaignConfig killed = TestCampaign("lenet");
  killed.checkpoint_path = TempPath("resume_late_kill.json");
  fs::remove(killed.checkpoint_path);
  support::CancelSource source;
  killed.cancel = source.token();
  std::atomic<int> finished{0};
  // 3 acquisitions + structure = 4 units; cancel during the weight wave.
  killed.on_unit_finished = [&](const std::string&) {
    if (finished.fetch_add(1) + 1 >= 5) source.RequestCancel();
  };
  const CampaignResult partial = RunCampaign(killed);
  EXPECT_TRUE(partial.structure_done);

  CampaignConfig resume = TestCampaign("lenet");
  resume.checkpoint_path = killed.checkpoint_path;
  const CampaignResult resumed = RunCampaign(resume);
  const Artifacts got = ArtifactsOf(resumed);
  EXPECT_EQ(got.structure_csv, want.structure_csv);
  EXPECT_EQ(got.filter_csv, want.filter_csv);
  fs::remove(killed.checkpoint_path);
}

// --- persisted acquisitions (trace store, DESIGN.md §14) -----------------

// A campaign with a checkpoint also owns <checkpoint>.traces/: the corpus
// manifest plus one .sct per acquisition (and the clean capture). A rerun
// whose checkpoint is deleted but whose traces survive must rehydrate the
// acquisitions from the store — no victim re-simulation — and still
// produce byte-identical artifacts, at any thread count.
TEST_F(CampaignResumeTest, TraceStoreRehydratesAcrossThreadCounts) {
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Counter& rehydrated =
      obs::Registry::Get().GetCounter("campaign.traces.rehydrated");
  obs::Counter& persisted =
      obs::Registry::Get().GetCounter("campaign.traces.persisted");

  for (const int threads : {1, 4}) {
    support::ThreadPool::SetGlobalThreads(threads);
    const std::string tag = "store_t" + std::to_string(threads);

    CampaignConfig first = TestCampaign("lenet");
    first.checkpoint_path = TempPath("rehydrate_" + tag + ".json");
    fs::remove(first.checkpoint_path);
    fs::remove_all(first.checkpoint_path + ".traces");
    const std::uint64_t persisted_before = persisted.value();
    const Artifacts want = ArtifactsOf(RunCampaign(first));
    EXPECT_GT(persisted.value(), persisted_before);

    const fs::path store_dir = first.checkpoint_path + ".traces";
    EXPECT_TRUE(fs::exists(store_dir / "corpus.json"));
    EXPECT_TRUE(fs::exists(store_dir / "clean.sct"));
    for (int k = 0; k < 3; ++k)
      EXPECT_TRUE(
          fs::exists(store_dir / ("acquire_" + std::to_string(k) + ".sct")))
          << "acquisition " << k << " not persisted at " << threads
          << " threads";

    // Forget the checkpoint, keep the traces: the rerun redoes the
    // analysis but feeds it the stored acquisition bytes.
    fs::remove(first.checkpoint_path);
    CampaignConfig rerun = TestCampaign("lenet");
    rerun.checkpoint_path = first.checkpoint_path;
    const std::uint64_t rehydrated_before = rehydrated.value();
    const Artifacts got = ArtifactsOf(RunCampaign(rerun));
    EXPECT_GT(rehydrated.value(), rehydrated_before)
        << "rerun regenerated instead of rehydrating";
    EXPECT_EQ(got.structure_csv, want.structure_csv)
        << "rehydrated artifacts diverged at " << threads << " threads";
    EXPECT_EQ(got.filter_csv, want.filter_csv);

    fs::remove(first.checkpoint_path);
    fs::remove_all(store_dir);
  }
  obs::SetEnabled(was_enabled);
}

TEST_F(CampaignResumeTest, CorruptPersistedTraceRegenerates) {
  // A flipped byte in a stored acquisition is a cache miss, not a failure:
  // the rerun regenerates that acquisition and the artifacts still match.
  support::ThreadPool::SetGlobalThreads(4);
  CampaignConfig first = TestCampaign("lenet");
  first.checkpoint_path = TempPath("store_corrupt.json");
  fs::remove(first.checkpoint_path);
  fs::remove_all(first.checkpoint_path + ".traces");
  const Artifacts want = ArtifactsOf(RunCampaign(first));

  const fs::path victim_sct =
      fs::path(first.checkpoint_path + ".traces") / "acquire_1.sct";
  ASSERT_TRUE(fs::exists(victim_sct));
  std::string bytes;
  {
    std::ifstream in(victim_sct, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
  {
    std::ofstream out(victim_sct, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::remove(first.checkpoint_path);
  CampaignConfig rerun = TestCampaign("lenet");
  rerun.checkpoint_path = first.checkpoint_path;
  const Artifacts got = ArtifactsOf(RunCampaign(rerun));
  EXPECT_EQ(got.structure_csv, want.structure_csv);
  EXPECT_EQ(got.filter_csv, want.filter_csv);

  fs::remove(first.checkpoint_path);
  fs::remove_all(first.checkpoint_path + ".traces");
}

TEST_F(CampaignResumeTest, PersistTracesOffMatchesOn) {
  // persist_traces=false restores the storeless behavior: no .traces
  // directory, same artifacts (the store may never perturb results).
  support::ThreadPool::SetGlobalThreads(4);
  CampaignConfig stored = TestCampaign("lenet");
  stored.checkpoint_path = TempPath("store_on.json");
  fs::remove(stored.checkpoint_path);
  fs::remove_all(stored.checkpoint_path + ".traces");
  const Artifacts want = ArtifactsOf(RunCampaign(stored));

  CampaignConfig storeless = TestCampaign("lenet");
  storeless.checkpoint_path = TempPath("store_off.json");
  storeless.persist_traces = false;
  fs::remove(storeless.checkpoint_path);
  const Artifacts got = ArtifactsOf(RunCampaign(storeless));
  EXPECT_FALSE(fs::exists(storeless.checkpoint_path + ".traces"));
  EXPECT_EQ(got.structure_csv, want.structure_csv);
  EXPECT_EQ(got.filter_csv, want.filter_csv);

  fs::remove(stored.checkpoint_path);
  fs::remove_all(stored.checkpoint_path + ".traces");
  fs::remove(storeless.checkpoint_path);
}

}  // namespace
}  // namespace sc::campaign
