// Property tests over both dataflow backends' tile schedules.
//
// For ~100 seeded random victims (shapes, fusion patterns, buffer
// datasheets), each backend's emitted trace must satisfy the invariants the
// attack pipeline relies on:
//   - dense write coverage: a stage's OFM region is written exactly once
//     per byte — no gap, no overlap, nothing outside the region (the tile
//     schedule partitions the output tensor);
//   - weights are read-only on the bus;
//   - RAW edges are well-formed: every read of an intermediate feature map
//     touches only bytes some earlier event wrote (the paper's §3.1
//     boundary signal exists by construction, never by accident);
//   - RAW edges are ordered such that segmentation recovers exactly one
//     segment per fused stage;
//   - §4 invariance: under zero pruning, per-channel non-zero counts, the
//     compressed OFM stream bytes, and the oracle's channel_elems() are
//     identical across dataflows — the zero-count channel does not depend
//     on the schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/stage.h"
#include "attack/structure/segmentation.h"
#include "attack/weights/oracle.h"
#include "models/zoo.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/network.h"
#include "nn/pooling.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace sc {
namespace {

constexpr int kNumSeeds = 100;

constexpr accel::Dataflow kDataflows[] = {
    accel::Dataflow::kWeightStationary,
    accel::Dataflow::kOutputStationary,
};

// A random linear victim: 1-3 conv stages (optional ReLU / 2x2 max pool),
// optionally capped by a fully connected classifier. Width is preserved by
// same-padding so feasibility only depends on the (randomised) buffers.
nn::Network RandomNet(Rng& rng) {
  int w = 2 * rng.UniformInt(4, 7);  // even widths so pooling halves cleanly
  int depth = rng.UniformInt(1, 3);
  nn::Network net(nn::Shape{depth, w, w});
  int prev = nn::kInputNode;
  const int convs = rng.UniformInt(1, 3);
  for (int l = 0; l < convs; ++l) {
    const int f = 1 + 2 * rng.UniformInt(0, 2);  // 1, 3 or 5
    const int od = rng.UniformInt(2, 10);
    prev = net.Add(std::make_unique<nn::Conv2D>("conv" + std::to_string(l),
                                                depth, od, f, 1, (f - 1) / 2),
                   {prev});
    depth = od;
    if (rng.Chance(0.7))
      prev = net.Add(std::make_unique<nn::Relu>("relu" + std::to_string(l)),
                     {prev});
    if (w >= 8 && rng.Chance(0.5)) {
      prev = net.Add(nn::MakeMaxPool("pool" + std::to_string(l), 2, 2, 0),
                     {prev});
      w /= 2;
    }
  }
  if (rng.Chance(0.5)) {
    prev = net.Add(std::make_unique<nn::FullyConnected>(
                       "fc", depth * w * w, rng.UniformInt(4, 10)),
                   {prev});
  }
  (void)prev;
  Rng init(rng.Fork());
  nn::InitNetwork(net, init);
  return net;
}

// Random datasheet: buffer capacities span 4 KiB .. 128 KiB so the tilers
// hit everything from whole-IFM residency down to single-row tiles.
accel::AcceleratorConfig RandomConfig(Rng& rng, accel::Dataflow d) {
  accel::AcceleratorConfig cfg;
  cfg.dataflow = d;
  const std::uint64_t sizes[] = {4 * 1024, 8 * 1024, 32 * 1024, 128 * 1024};
  cfg.ifm_buffer_bytes = sizes[rng.UniformInt(0, 3)];
  cfg.weight_buffer_bytes = sizes[rng.UniformInt(0, 3)];
  cfg.ofm_buffer_bytes = sizes[rng.UniformInt(0, 3)];
  return cfg;
}

nn::Tensor RandomInput(const nn::Shape& s, Rng& rng) {
  nn::Tensor t(s);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

// Merged interval set over the address space (write tracking for the RAW
// check): key = interval start, value = exclusive end.
class IntervalSet {
 public:
  void Add(std::uint64_t lo, std::uint64_t hi) {
    auto it = set_.upper_bound(lo);
    if (it != set_.begin() && std::prev(it)->second >= lo) --it;
    while (it != set_.end() && it->first <= hi) {
      lo = std::min(lo, it->first);
      hi = std::max(hi, it->second);
      it = set_.erase(it);
    }
    set_.emplace(lo, hi);
  }
  bool Covers(std::uint64_t lo, std::uint64_t hi) const {
    auto it = set_.upper_bound(lo);
    if (it == set_.begin()) return false;
    --it;
    return it->first <= lo && it->second >= hi;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> set_;
};

bool Within(const trace::MemEvent& e, const accel::Region& r) {
  return e.addr >= r.base && e.end() <= r.end();
}

// Dense-mode invariants for one backend's trace of one victim.
void CheckDenseSchedule(const nn::Network& net,
                        const accel::AcceleratorConfig& cfg,
                        const accel::Accelerator& accel,
                        const accel::RunResult& run, const trace::Trace& tr) {
  const accel::AddressMap map = accel.BuildMap(net);
  const std::vector<accel::Stage> stages = accel::BuildStages(net);
  ASSERT_EQ(run.stages.size(), stages.size());

  // Weight regions are read-only; collect them once.
  std::vector<accel::Region> weight_regions;
  for (int n = 0; n < net.num_nodes(); ++n)
    if (map.weights(n).valid()) weight_regions.push_back(map.weights(n));

  IntervalSet written;
  std::vector<std::vector<trace::MemEvent>> ofm_writes(stages.size());
  for (std::size_t i = 0; i < tr.size(); ++i) {
    const trace::MemEvent& e = tr[i];
    ASSERT_GT(e.bytes, 0u);
    if (e.op == trace::MemOp::kWrite) {
      for (const accel::Region& w : weight_regions)
        ASSERT_FALSE(Within(e, w)) << "write into read-only weight region";
      written.Add(e.addr, e.end());
      for (std::size_t s = 0; s < stages.size(); ++s)
        if (Within(e, map.ofm(stages[s].output_node)))
          ofm_writes[s].push_back(e);
    } else if (!Within(e, map.input())) {
      bool weights = false;
      for (const accel::Region& w : weight_regions)
        if (Within(e, w)) weights = true;
      if (!weights) {
        ASSERT_TRUE(written.Covers(e.addr, e.end()))
            << "RAW violation: read of never-written feature-map bytes at "
            << e.addr;
      }
    }
  }

  // Each stage's OFM is tiled exactly: sorted write bursts abut perfectly
  // from region base to the dense extent.
  for (std::size_t s = 0; s < stages.size(); ++s) {
    const accel::Region& r = map.ofm(stages[s].output_node);
    std::vector<trace::MemEvent>& ws = ofm_writes[s];
    std::sort(ws.begin(), ws.end(),
              [](const trace::MemEvent& a, const trace::MemEvent& b) {
                return a.addr < b.addr;
              });
    ASSERT_FALSE(ws.empty());
    const std::uint64_t dense_end =
        r.base + run.stages[s].ofm_elems *
                     static_cast<std::uint64_t>(cfg.element_bytes);
    std::uint64_t next = r.base;
    for (const trace::MemEvent& e : ws) {
      ASSERT_EQ(e.addr, next) << "gap or overlap in stage " << s
                              << " OFM coverage";
      next = e.end();
    }
    ASSERT_EQ(next, dense_end) << "stage " << s << " OFM not fully written";
  }

  // RAW boundaries segment the trace back into exactly one segment per
  // fused stage.
  ASSERT_EQ(attack::SegmentTrace(tr).size(), stages.size());
}

TEST(ScheduleProperty, DenseTileScheduleInvariants) {
  for (int seed = 0; seed < kNumSeeds; seed += 2) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(1000 + seed));
    const nn::Network net = RandomNet(rng);
    const nn::Tensor input = RandomInput(net.input_shape(), rng);
    const std::uint64_t cfg_fork = rng.Fork();
    for (const accel::Dataflow d : kDataflows) {
      SCOPED_TRACE(accel::ToString(d));
      Rng cfg_rng(cfg_fork);  // same datasheet for both backends
      const accel::AcceleratorConfig cfg = RandomConfig(cfg_rng, d);
      const accel::Accelerator accel{cfg};
      trace::Trace tr;
      const accel::RunResult run = accel.Run(net, input, &tr);
      CheckDenseSchedule(net, cfg, accel, run, tr);
    }
  }
}

// §4 invariance: with zero pruning on, everything the write-back stream
// reveals is identical across dataflows — per-channel counts, compressed
// OFM bytes, and the oracle's channel_elems() denominator.
TEST(ScheduleProperty, ZeroCountChannelIsDataflowInvariant) {
  for (int seed = 1; seed < kNumSeeds; seed += 2) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(static_cast<std::uint64_t>(1000 + seed));
    const nn::Network net = RandomNet(rng);
    const nn::Tensor input = RandomInput(net.input_shape(), rng);
    const std::uint64_t cfg_fork = rng.Fork();

    struct PerBackend {
      accel::RunResult run;
      std::vector<std::uint64_t> ofm_write_bytes;
      std::size_t channel_elems = 0;
    };
    std::vector<PerBackend> results;
    for (const accel::Dataflow d : kDataflows) {
      Rng cfg_rng(cfg_fork);
      accel::AcceleratorConfig cfg = RandomConfig(cfg_rng, d);
      cfg.zero_pruning = true;
      const accel::Accelerator accel{cfg};
      trace::Trace tr;
      PerBackend pb;
      pb.run = accel.Run(net, input, &tr);

      const accel::AddressMap map = accel.BuildMap(net);
      const std::vector<accel::Stage> stages = accel::BuildStages(net);
      pb.ofm_write_bytes.assign(stages.size(), 0);
      for (std::size_t i = 0; i < tr.size(); ++i) {
        if (tr[i].op != trace::MemOp::kWrite) continue;
        for (std::size_t s = 0; s < stages.size(); ++s)
          if (Within(tr[i], map.ofm(stages[s].output_node)))
            pb.ofm_write_bytes[s] += tr[i].bytes;
      }

      // Oracle over the first conv stage, when the victim has one.
      for (const accel::Stage& st : stages)
        if (st.kind == accel::StageKind::kConv) {
          attack::AcceleratorOracle oracle(net, st.output_node, cfg);
          pb.channel_elems = oracle.channel_elems();
          break;
        }
      results.push_back(std::move(pb));
    }

    const PerBackend& ws = results[0];
    const PerBackend& os = results[1];
    ASSERT_EQ(ws.run.output.numel(), os.run.output.numel());
    EXPECT_EQ(0, std::memcmp(ws.run.output.data(), os.run.output.data(),
                             ws.run.output.numel() * sizeof(float)));
    ASSERT_EQ(ws.run.stages.size(), os.run.stages.size());
    for (std::size_t s = 0; s < ws.run.stages.size(); ++s) {
      EXPECT_EQ(ws.run.stages[s].ofm_nonzeros, os.run.stages[s].ofm_nonzeros);
      EXPECT_EQ(ws.run.stages[s].ofm_channel_nonzeros,
                os.run.stages[s].ofm_channel_nonzeros);
    }
    EXPECT_EQ(ws.ofm_write_bytes, os.ofm_write_bytes)
        << "compressed OFM stream bytes differ across dataflows";
    EXPECT_EQ(ws.channel_elems, os.channel_elems);
  }
}

}  // namespace
}  // namespace sc
