#include "nn/geometry.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace sc::nn {
namespace {

TEST(ConvOutWidth, MatchesCaffeFloor) {
  EXPECT_EQ(ConvOutWidth(227, 11, 4, 0), 55);  // AlexNet conv1
  EXPECT_EQ(ConvOutWidth(27, 5, 1, 2), 27);    // AlexNet conv2
  EXPECT_EQ(ConvOutWidth(13, 3, 1, 1), 13);    // AlexNet conv3-5
  EXPECT_EQ(ConvOutWidth(224, 7, 2, 0), 109);  // SqueezeNet conv1
  EXPECT_EQ(ConvOutWidth(28, 5, 1, 0), 24);    // LeNet conv1
  EXPECT_EQ(ConvOutWidth(5, 5, 1, 0), 1);      // degenerate full-width
}

TEST(PoolOutWidth, MatchesCaffeCeil) {
  EXPECT_EQ(PoolOutWidth(55, 3, 2, 0), 27);
  EXPECT_EQ(PoolOutWidth(27, 3, 2, 0), 13);
  EXPECT_EQ(PoolOutWidth(13, 3, 2, 0), 6);
  EXPECT_EQ(PoolOutWidth(109, 3, 2, 0), 54);   // SqueezeNet pool1
  EXPECT_EQ(PoolOutWidth(8, 3, 2, 0), 4);      // ceil(2.5)+1
  EXPECT_EQ(PoolOutWidth(32, 3, 2, 0), 16);
}

TEST(Geometry, RejectsBadArguments) {
  EXPECT_THROW(ConvOutWidth(0, 1, 1, 0), sc::Error);
  EXPECT_THROW(ConvOutWidth(5, 7, 1, 0), sc::Error);  // window > input
  EXPECT_THROW(PoolOutWidth(5, 3, 0, 0), sc::Error);
  EXPECT_THROW(ConvOutWidth(5, 3, 1, -1), sc::Error);
}

TEST(Geometry, ExactDivision) {
  EXPECT_TRUE(ConvDividesExactly(227, 11, 4, 0));   // 216 % 4 == 0
  EXPECT_FALSE(ConvDividesExactly(227, 11, 4, 1));  // 218 % 4 != 0
  EXPECT_TRUE(PoolDividesExactly(55, 3, 2, 0));
  EXPECT_FALSE(PoolDividesExactly(8, 3, 2, 0));
}

// Every row of the paper's Table 4 must be a consistent geometry under our
// conventions (per-side padding, floor conv, ceil pool). This pins down the
// interpretation of the paper's equations. CONV1_1 is listed in the paper
// with P_conv = 1; under floor division P=0 and P=1 give the same widths
// and both are consistent.
struct Table4Row {
  const char* name;
  LayerGeometry g;
};

class TableFourTest : public ::testing::TestWithParam<Table4Row> {};

TEST_P(TableFourTest, RowIsConsistent) {
  const LayerGeometry& g = GetParam().g;
  EXPECT_TRUE(g.IsConsistent()) << GetParam().name << ": " << g;
}

const Table4Row kRows[] = {
    {"CONV1_1", {227, 3, 27, 96, 11, 4, 1, PoolKind::kMax, 3, 2, 0}},
    {"CONV1_1_p0", {227, 3, 27, 96, 11, 4, 0, PoolKind::kMax, 3, 2, 0}},
    {"CONV1_2", {227, 3, 27, 96, 11, 4, 2, PoolKind::kMax, 4, 2, 0}},
    {"CONV2_1", {27, 96, 13, 256, 5, 1, 2, PoolKind::kMax, 3, 2, 0}},
    {"CONV2_2", {27, 96, 26, 64, 10, 1, 4, PoolKind::kNone, 0, 0, 0}},
    {"CONV3_1", {13, 256, 13, 384, 3, 1, 1, PoolKind::kNone, 0, 0, 0}},
    {"CONV3_2", {26, 64, 13, 384, 6, 2, 2, PoolKind::kNone, 0, 0, 0}},
    {"CONV4", {13, 384, 13, 384, 3, 1, 1, PoolKind::kNone, 0, 0, 0}},
    {"CONV5_1", {13, 384, 6, 256, 3, 1, 1, PoolKind::kMax, 3, 2, 0}},
    {"CONV5_2", {13, 384, 12, 64, 6, 1, 2, PoolKind::kNone, 0, 0, 0}},
    {"CONV5_3", {13, 384, 3, 1024, 3, 2, 0, PoolKind::kMax, 2, 2, 0}},
    {"CONV5_4", {13, 384, 3, 1024, 3, 2, 0, PoolKind::kMax, 4, 1, 0}},
    {"CONV5_5", {13, 384, 3, 1024, 3, 2, 1, PoolKind::kMax, 3, 2, 0}},
    {"CONV5_6", {13, 384, 4, 576, 2, 1, 0, PoolKind::kMax, 3, 3, 0}},
};

INSTANTIATE_TEST_SUITE_P(
    PaperTableFour, TableFourTest, ::testing::ValuesIn(kRows),
    [](const ::testing::TestParamInfo<Table4Row>& row_info) {
      return std::string(row_info.param.name);
    });

TEST(LayerGeometry, SizesMatchPaperEquations) {
  LayerGeometry g{227, 3, 27, 96, 11, 4, 0, PoolKind::kMax, 3, 2, 0};
  EXPECT_EQ(g.SizeIfm(), 227LL * 227 * 3);          // Eq. (1)
  EXPECT_EQ(g.SizeOfm(), 27LL * 27 * 96);           // Eq. (2)
  EXPECT_EQ(g.SizeFilter(), 11LL * 11 * 3 * 96);    // Eq. (3)
  EXPECT_EQ(g.MacCount(), 27LL * 27 * 96 * 11 * 11 * 3);
  EXPECT_EQ(g.ConvStageWidth(), 55);
  EXPECT_EQ(g.ConvMacCount(), 55LL * 55 * 96 * 11 * 11 * 3);
}

TEST(LayerGeometry, FullyConnectedDetection) {
  LayerGeometry fc{6, 256, 1, 4096, 6, 1, 0, PoolKind::kNone, 0, 0, 0};
  EXPECT_TRUE(fc.IsFullyConnected());
  EXPECT_TRUE(fc.IsConsistent());  // exempt from F <= W/2
  LayerGeometry conv{13, 384, 13, 384, 3, 1, 1, PoolKind::kNone, 0, 0, 0};
  EXPECT_FALSE(conv.IsFullyConnected());
}

TEST(LayerGeometry, InconsistentGeometriesRejected) {
  // Wrong output width.
  LayerGeometry g{227, 3, 28, 96, 11, 4, 0, PoolKind::kMax, 3, 2, 0};
  EXPECT_FALSE(g.IsConsistent());
  // Filter larger than half the input (Eq. 5) and not FC.
  LayerGeometry big{20, 3, 7, 8, 14, 1, 0, PoolKind::kNone, 0, 0, 0};
  EXPECT_FALSE(big.IsConsistent());
  // Stride above filter (Eq. 5).
  LayerGeometry stride{32, 3, 10, 8, 3, 4, 0, PoolKind::kNone, 0, 0, 0};
  EXPECT_FALSE(stride.IsConsistent());
  // Padding >= filter (Eq. 7).
  LayerGeometry padded{32, 3, 34, 8, 3, 1, 3, PoolKind::kNone, 0, 0, 0};
  EXPECT_FALSE(padded.IsConsistent());
  // Pool stride above pool window (Eq. 6).
  LayerGeometry pool{32, 3, 10, 8, 3, 1, 0, PoolKind::kMax, 2, 3, 0};
  EXPECT_FALSE(pool.IsConsistent());
  // Pool padding >= pool window (Eq. 8).
  LayerGeometry ppad{32, 3, 16, 8, 3, 1, 0, PoolKind::kMax, 2, 2, 2};
  EXPECT_FALSE(ppad.IsConsistent());
}

}  // namespace
}  // namespace sc::nn
