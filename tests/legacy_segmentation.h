// Test-only reference copy of the pre-streaming trace segmentation.
//
// This is the event-at-a-time implementation that shipped before the
// columnar TraceBuffer rewrite, kept verbatim (modulo naming) as the
// differential-testing oracle: the streaming SegmentTrace /
// SegmentTraceWithRegions in src/attack/structure/segmentation.cc must
// produce identical segment lists on every trace. Do not "improve" this
// file — its value is that it does not share code with the production
// scan.
#ifndef SC_TESTS_LEGACY_SEGMENTATION_H_
#define SC_TESTS_LEGACY_SEGMENTATION_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "attack/structure/segmentation.h"
#include "support/check.h"
#include "trace/interval.h"
#include "trace/trace.h"

namespace sc::attack::legacy {

// Shared implementation: RAW-boundary rule, optionally augmented with the
// weight-region-switch rule when `regions` is non-null.
inline std::vector<Segment> SegmentImpl(
    const trace::Trace& trace,
    const std::vector<trace::AddrInterval>* regions) {
  std::vector<Segment> segments;
  if (trace.empty()) return segments;

  // Precompute per-region "ever written" when region info is available.
  std::vector<bool> region_written;
  auto region_of = [&](std::uint64_t addr) -> std::size_t {
    auto it = std::upper_bound(
        regions->begin(), regions->end(), addr,
        [](std::uint64_t v, const trace::AddrInterval& r) {
          return v < r.hi;
        });
    SC_CHECK_MSG(it != regions->end() && it->Contains(addr),
                 "event outside every region");
    return static_cast<std::size_t>(it - regions->begin());
  };
  if (regions != nullptr) {
    region_written.assign(regions->size(), false);
    for (const trace::MemEvent& e : trace)
      if (e.op == trace::MemOp::kWrite)
        region_written[region_of(e.addr)] = true;
  }

  trace::IntervalSet written_ever;
  trace::IntervalSet written_since_boundary;
  bool wrote_since_boundary = false;
  std::vector<bool> weight_region_read;   // per region, this segment
  std::vector<bool> region_written_here;  // per region, this segment
  if (regions != nullptr) {
    weight_region_read.assign(regions->size(), false);
    region_written_here.assign(regions->size(), false);
  }
  std::vector<std::size_t> boundaries{0};
  // raw_read[i]: event i is a read of data written in an *earlier* segment.
  // (A read of data written in the current segment triggers a boundary
  // instead, so it never carries this flag.)
  std::vector<bool> raw_read(trace.size(), false);

  auto start_segment = [&](std::size_t i) {
    // Pull the run of operand prefetches (reads of older layers' outputs)
    // issued just before the triggering event into the new segment; the
    // previous segment must keep at least one event.
    std::size_t j = i;
    while (j > boundaries.back() + 1 && raw_read[j - 1]) --j;
    boundaries.push_back(j);
    written_since_boundary = trace::IntervalSet();
    wrote_since_boundary = false;
    if (regions != nullptr) {
      std::fill(weight_region_read.begin(), weight_region_read.end(), false);
      std::fill(region_written_here.begin(), region_written_here.end(),
                false);
    }
  };

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const trace::MemEvent e = trace[i];
    const trace::AddrInterval iv{e.addr, e.end()};
    if (e.op == trace::MemOp::kWrite) {
      // Write-region rule: one layer writes one output tensor, so a write
      // landing in a second region means a new layer began (needed for
      // weight-free layers — a pooling branch inside an inception module
      // triggers neither the RAW nor the weight-region rule).
      if (regions != nullptr) {
        const std::size_t r = region_of(e.addr);
        if (wrote_since_boundary && !region_written_here[r])
          start_segment(i);
        region_written_here[r] = true;
      }
      written_ever.Insert(iv);
      written_since_boundary.Insert(iv);
      wrote_since_boundary = true;
      continue;
    }
    if (written_since_boundary.OverlapsInterval(iv)) {
      start_segment(i);  // RAW rule (paper §3.1)
    } else if (regions != nullptr &&
               !region_written[region_of(e.addr)]) {
      // Weight-region rule: a read-only region new to this segment after
      // write-back began means a sibling layer started (fire modules).
      const std::size_t r = region_of(e.addr);
      if (!weight_region_read[r] && wrote_since_boundary) {
        start_segment(i);
      }
      weight_region_read[r] = true;
    } else if (written_ever.OverlapsInterval(iv)) {
      raw_read[i] = true;
    }
  }

  boundaries.push_back(trace.size());
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    Segment s;
    s.first_event = boundaries[b];
    s.end_event = boundaries[b + 1];
    SC_CHECK(s.first_event < s.end_event);
    s.start_cycle = trace[s.first_event].cycle;
    // A layer's time extends to the start of the next layer (its write-back
    // tail belongs to it); the final layer ends at the last event.
    s.end_cycle = s.end_event < trace.size() ? trace[s.end_event].cycle
                                             : trace[trace.size() - 1].cycle;
    segments.push_back(s);
  }
  return segments;
}

inline std::vector<Segment> SegmentTrace(const trace::Trace& trace) {
  return SegmentImpl(trace, nullptr);
}

inline std::vector<Segment> SegmentTraceWithRegions(
    const trace::Trace& trace,
    const std::vector<trace::AddrInterval>& regions) {
  return SegmentImpl(trace, &regions);
}

}  // namespace sc::attack::legacy

#endif  // SC_TESTS_LEGACY_SEGMENTATION_H_
