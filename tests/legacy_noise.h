// The pre-streaming TraceNoiseModel::ApplySeeded, kept verbatim (modulo
// being a free function) as the bit-for-bit reference for the chunked
// streaming rewrite in sim/noise.cc: it materializes AoS MemEvent vectors
// per pass and walks the input through the event facade, which was the
// noise model's shape before pooled column workspaces. noise_test.cc
// requires the streaming implementation to reproduce these outputs — RNG
// draw for RNG draw — on every config. Do not "improve" this file; its
// value is that it does not change.
#ifndef SC_TESTS_LEGACY_NOISE_H_
#define SC_TESTS_LEGACY_NOISE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/noise.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace sc::sim {

inline trace::Trace LegacyNoiseApplySeeded(const TraceNoiseConfig& cfg_,
                                           const trace::Trace& in,
                                           std::uint64_t seed) {
  if (!cfg_.enabled() || in.empty()) return in;
  Rng rng(seed);

  std::vector<trace::MemEvent> out;
  out.reserve(in.size());
  for (const trace::MemEvent& e : in) {
    if (cfg_.drop_prob > 0.0 && rng.Chance(cfg_.drop_prob)) continue;

    // Fragmentation at the probe's sampling boundary.
    std::vector<trace::MemEvent> parts{e};
    if (e.bytes > 1 && cfg_.split_prob > 0.0 && rng.Chance(cfg_.split_prob)) {
      const std::uint32_t cap = std::min<std::uint32_t>(e.bytes - 1, 1u << 30);
      const auto cut = static_cast<std::uint32_t>(
          rng.UniformInt(1, static_cast<int>(cap)));
      trace::MemEvent head = e;
      head.bytes = cut;
      trace::MemEvent tail = e;
      tail.addr = e.addr + cut;
      tail.bytes = e.bytes - cut;
      parts = {head, tail};
    }

    for (const trace::MemEvent& part : parts) {
      out.push_back(part);
      // Double-sampled transaction: same address range reported again.
      if (cfg_.spurious_prob > 0.0 && rng.Chance(cfg_.spurious_prob))
        out.push_back(part);
    }
  }

  // Coalescing: a burst absorbs a directly following contiguous burst of
  // the same direction (one merge per pair, single left-to-right pass).
  if (cfg_.merge_prob > 0.0) {
    std::vector<trace::MemEvent> merged;
    merged.reserve(out.size());
    for (const trace::MemEvent& e : out) {
      if (!merged.empty() && merged.back().op == e.op &&
          merged.back().end() == e.addr && rng.Chance(cfg_.merge_prob)) {
        merged.back().bytes += e.bytes;
        continue;
      }
      merged.push_back(e);
    }
    out = std::move(merged);
  }

  // Timestamp jitter. The probe observes the serial bus, so transaction
  // ORDER is ground truth — only the timestamp counter wobbles. Jittered
  // timestamps that would run backwards are clamped to the preceding
  // event's cycle, exactly what a monotonizing capture pass does.
  if (cfg_.jitter_prob > 0.0) {
    const auto span = static_cast<int>(cfg_.max_jitter_cycles);
    std::uint64_t prev = 0;
    for (trace::MemEvent& e : out) {
      if (rng.Chance(cfg_.jitter_prob)) {
        const int delta = rng.UniformInt(-span, span);
        if (delta < 0) {
          const auto back = static_cast<std::uint64_t>(-delta);
          e.cycle = e.cycle < back ? 0 : e.cycle - back;
        } else {
          e.cycle += static_cast<std::uint64_t>(delta);
        }
      }
      e.cycle = std::max(e.cycle, prev);
      prev = e.cycle;
    }
  }

  trace::Trace result;
  for (const trace::MemEvent& e : out) result.Append(e);
  return result;
}

inline trace::Trace LegacyNoiseApply(const TraceNoiseConfig& cfg,
                                     const trace::Trace& in) {
  return LegacyNoiseApplySeeded(cfg, in, cfg.seed);
}

inline trace::Trace LegacyNoiseApplyNth(const TraceNoiseConfig& cfg,
                                        const trace::Trace& in,
                                        std::uint64_t k) {
  return LegacyNoiseApplySeeded(cfg, in, MixSeed(cfg.seed, k));
}

}  // namespace sc::sim

#endif  // SC_TESTS_LEGACY_NOISE_H_
