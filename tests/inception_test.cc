// Beyond-paper generality: GoogLeNet-style inception modules have 4-way
// branches including a *weight-free* pooling branch, which triggers neither
// the RAW rule (its input was written segments ago) nor the weight-region
// rule (it reads no weights). The write-region rule must isolate it.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/pipeline.h"
#include "models/zoo.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

trace::Trace TraceOf(const nn::Network& net, std::uint64_t seed) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  nn::Tensor x(net.input_shape());
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &tr);
  return tr;
}

TEST(InceptionAttack, SegmentsEveryBranchIncludingThePoolBranch) {
  nn::Network net = models::MakeInceptionNet(3);
  const auto stages = accel::BuildStages(net);
  // stem, 2 x (5 convs + 1 standalone pool + poolproj is one of the 5?...)
  // Count precisely: stem; inc1: 1x1, 3x3r, 3x3, 5x5r, 5x5, pool, poolproj
  // = 7; pool1; inc2: 7; classifier(+gpool fused) = 1. Total 17.
  ASSERT_EQ(stages.size(), 17u);

  AnalysisConfig cfg;
  cfg.known_input_elems = 3 * 64 * 64;
  const TraceAnalysis a = AnalyzeTrace(TraceOf(net, 1), cfg);
  ASSERT_EQ(a.observations.size(), stages.size())
      << "every stage must be its own segment";

  // The two inception pool branches are weight-free with OFM == IFM size
  // (3x3/1 pad 1 pooling preserves extent); they must be classified as
  // pools or at minimum isolated with zero filter bytes.
  int weight_free = 0;
  for (const auto& o : a.observations)
    if (o.size_fltr == 0) ++weight_free;
  // inc1 pool, pool1, inc2 pool (the gpool fused into the classifier).
  EXPECT_EQ(weight_free, 3);
}

TEST(InceptionAttack, ConcatOfFourBranchesRecovered) {
  nn::Network net = models::MakeInceptionNet(4);
  AnalysisConfig cfg;
  cfg.known_input_elems = 3 * 64 * 64;
  const TraceAnalysis a = AnalyzeTrace(TraceOf(net, 2), cfg);

  // pool1 (the 2x2/2 pool between the modules) reads the first module's
  // concatenated output: one input region with four writer segments.
  bool found_four_way = false;
  for (const auto& o : a.observations) {
    if (o.inputs.size() == 1 && o.inputs[0].writer_segments.size() == 4)
      found_four_way = true;
  }
  EXPECT_TRUE(found_four_way);
}

TEST(InceptionAttack, StructureSearchContainsTruthTopology) {
  nn::Network net = models::MakeInceptionNet(5);
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3 * 64 * 64;
  cfg.search.known_input_width = 64;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 10;
  // Small layers are memory-bound; topology is what this test checks.
  cfg.search.timing_tolerance = 0.0;
  const StructureAttackResult r = RunStructureAttack(TraceOf(net, 3), cfg);
  ASSERT_GE(r.num_structures(), 1u);

  // Every candidate must reproduce the stem geometry and the classifier.
  for (const auto& cs : r.search.structures) {
    EXPECT_EQ(cs.layers.front().geom.d_ifm, 3);
    EXPECT_EQ(cs.layers.back().geom.d_ofm, 10);
    EXPECT_EQ(cs.layers.back().geom.w_ofm, 1);
  }
  // At least one candidate gets the branch filter sizes right: a 3x3 and a
  // 5x5 expand inside the first module (segments 3 and 5).
  bool truth_like = false;
  for (const auto& cs : r.search.structures) {
    bool has3 = false, has5 = false;
    for (const auto& layer : cs.layers) {
      if (layer.geom.f_conv == 3 && layer.geom.d_ofm == 12) has3 = true;
      if (layer.geom.f_conv == 5 && layer.geom.d_ofm == 6) has5 = true;
    }
    truth_like = truth_like || (has3 && has5);
  }
  EXPECT_TRUE(truth_like);
}

}  // namespace
}  // namespace sc::attack
