// Fault-injection layer: trace noise model, noisy oracle decorator, and the
// voting oracle that heals it (DESIGN.md §8).
#include "sim/noise.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "attack/weights/robust.h"
#include "legacy_noise.h"
#include "sim/noisy_oracle.h"
#include "support/check.h"
#include "support/rng.h"
#include "trace/stats.h"

namespace sc {
namespace {

using attack::SparsePixel;
using attack::TransientOracleError;
using attack::VotingOracle;
using attack::VotingOracleConfig;
using attack::ZeroCountOracle;

// Seed under CI control: the fault-injection job runs the suite at two
// fixed seeds (SC_NOISE_SEED) to cover distinct fault patterns.
std::uint64_t NoiseSeed() {
  const char* env = std::getenv("SC_NOISE_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

trace::Trace SyntheticTrace(int events, std::uint64_t seed) {
  Rng rng(seed);
  trace::Trace t;
  std::uint64_t cycle = 0;
  for (int i = 0; i < events; ++i) {
    cycle += static_cast<std::uint64_t>(rng.UniformInt(1, 8));
    const auto addr = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 20));
    const auto bytes = static_cast<std::uint32_t>(64 * rng.UniformInt(1, 4));
    t.Append(cycle, addr, bytes, rng.Chance(0.7) ? trace::MemOp::kRead
                                                 : trace::MemOp::kWrite);
  }
  return t;
}

bool SameTrace(const trace::Trace& a, const trace::Trace& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!(a[i] == b[i])) return false;
  return true;
}

TEST(TraceNoise, DisabledConfigIsIdentity) {
  const trace::Trace t = SyntheticTrace(200, 7);
  const sim::TraceNoiseModel model{sim::TraceNoiseConfig{}};
  EXPECT_FALSE(model.config().enabled());
  EXPECT_TRUE(SameTrace(model.Apply(t), t));
}

TEST(TraceNoise, DeterministicPerSeedAndAcquisition) {
  const trace::Trace t = SyntheticTrace(500, 11);
  const sim::TraceNoiseModel model(sim::ReferenceTraceNoise(NoiseSeed()));

  EXPECT_TRUE(SameTrace(model.Apply(t), model.Apply(t)));
  EXPECT_TRUE(SameTrace(model.ApplyNth(t, 3), model.ApplyNth(t, 3)));
  // Distinct acquisitions of the same execution see distinct fault patterns.
  EXPECT_FALSE(SameTrace(model.ApplyNth(t, 0), model.ApplyNth(t, 1)));
  // Distinct base seeds decorrelate whole replays.
  const sim::TraceNoiseModel other(
      sim::ReferenceTraceNoise(NoiseSeed() + 1000));
  EXPECT_FALSE(SameTrace(model.Apply(t), other.Apply(t)));
}

TEST(TraceNoise, SplitMergeSpuriousPreserveByteCoverage) {
  // Without drops, fragmentation / coalescing / double-sampling change the
  // event stream but never the unique byte footprint the region analysis
  // measures.
  const trace::Trace t = SyntheticTrace(800, 13);
  sim::TraceNoiseConfig cfg;
  cfg.seed = NoiseSeed();
  cfg.split_prob = 0.3;
  cfg.merge_prob = 0.3;
  cfg.spurious_prob = 0.1;
  const trace::Trace noisy = sim::TraceNoiseModel(cfg).Apply(t);

  const trace::TraceStats clean_stats = trace::ComputeStats(t);
  const trace::TraceStats noisy_stats = trace::ComputeStats(noisy);
  EXPECT_EQ(noisy_stats.unique_bytes_read, clean_stats.unique_bytes_read);
  EXPECT_EQ(noisy_stats.unique_bytes_written,
            clean_stats.unique_bytes_written);
  EXPECT_NE(noisy.size(), t.size());
}

TEST(TraceNoise, DropsLoseEventsJitterKeepsBusOrder) {
  const trace::Trace t = SyntheticTrace(2000, 17);
  sim::TraceNoiseConfig cfg;
  cfg.seed = NoiseSeed();
  cfg.drop_prob = 0.05;
  const trace::Trace dropped = sim::TraceNoiseModel(cfg).Apply(t);
  EXPECT_LT(dropped.size(), t.size());

  sim::TraceNoiseConfig jcfg;
  jcfg.seed = NoiseSeed();
  jcfg.jitter_prob = 0.5;
  jcfg.max_jitter_cycles = 3;
  const trace::Trace jittered = sim::TraceNoiseModel(jcfg).Apply(t);
  // Jitter never loses, invents or re-orders transactions (the probe sees
  // the serial bus); it only wobbles timestamps, within the clamp keeping
  // cycles non-decreasing.
  ASSERT_EQ(jittered.size(), t.size());
  bool any_moved = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(jittered[i].addr, t[i].addr);
    EXPECT_EQ(jittered[i].bytes, t[i].bytes);
    EXPECT_EQ(jittered[i].op, t[i].op);
    EXPECT_LE(jittered[i].cycle > t[i].cycle ? jittered[i].cycle - t[i].cycle
                                             : t[i].cycle - jittered[i].cycle,
              3u + 3u);  // own jitter plus clamp carry-over
    any_moved = any_moved || jittered[i].cycle != t[i].cycle;
  }
  EXPECT_TRUE(any_moved);
}

TEST(TraceNoise, RejectsInvalidConfig) {
  sim::TraceNoiseConfig bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(sim::TraceNoiseModel{bad}, Error);
  sim::TraceNoiseConfig jbad;
  jbad.jitter_prob = 0.1;
  jbad.max_jitter_cycles = 0;
  EXPECT_THROW(sim::TraceNoiseModel{jbad}, Error);
}

// Scripted oracle for decorator tests: returns a fixed sequence of counts.
class ScriptedOracle : public ZeroCountOracle {
 public:
  ScriptedOracle(std::vector<std::size_t> script, int throw_first = 0,
                 bool cloneable = false)
      : script_(std::move(script)),
        throw_first_(throw_first),
        cloneable_(cloneable) {}

  std::size_t ChannelNonZeros(const std::vector<SparsePixel>&, int) override {
    return Next();
  }
  std::size_t TotalNonZeros(const std::vector<SparsePixel>&) override {
    return Next();
  }
  int num_channels() const override { return 1; }
  std::unique_ptr<ZeroCountOracle> Clone() const override {
    if (!cloneable_) return nullptr;
    return std::make_unique<ScriptedOracle>(script_, throw_first_, true);
  }

  int calls = 0;

 private:
  std::size_t Next() {
    ++queries_;
    const int call = calls++;
    if (call < throw_first_)
      throw TransientOracleError("scripted transient failure");
    return script_[static_cast<std::size_t>(call - throw_first_) %
                   script_.size()];
  }

  std::vector<std::size_t> script_;
  int throw_first_;
  bool cloneable_;
};

TEST(NoisyOracle, DeterministicPerSeed) {
  sim::OracleNoiseConfig cfg;
  cfg.seed = NoiseSeed();
  cfg.count_noise_prob = 0.5;
  cfg.max_count_delta = 2;

  auto run = [&] {
    ScriptedOracle inner({10});
    sim::NoisyOracle noisy(inner, cfg);
    std::vector<std::size_t> seq;
    for (int i = 0; i < 64; ++i) seq.push_back(noisy.TotalNonZeros({}));
    return seq;
  };
  const auto a = run();
  EXPECT_EQ(a, run());
  // Roughly half the counts perturbed, never by more than max_count_delta.
  int perturbed = 0;
  for (const std::size_t c : a) {
    EXPECT_GE(c, 10u - 2u);
    EXPECT_LE(c, 10u + 2u);
    if (c != 10u) ++perturbed;
  }
  EXPECT_GT(perturbed, 0);
}

TEST(NoisyOracle, ClampsPerturbedCountsAtZero) {
  sim::OracleNoiseConfig cfg;
  cfg.seed = NoiseSeed();
  cfg.count_noise_prob = 1.0;
  cfg.max_count_delta = 3;
  ScriptedOracle inner({0});
  sim::NoisyOracle noisy(inner, cfg);
  for (int i = 0; i < 32; ++i) EXPECT_LE(noisy.TotalNonZeros({}), 3u);
  EXPECT_EQ(noisy.perturbed_counts(), 32u);
}

TEST(NoisyOracle, InjectsTransientFailures) {
  sim::OracleNoiseConfig cfg;
  cfg.seed = NoiseSeed();
  cfg.failure_prob = 1.0;
  ScriptedOracle inner({10});
  sim::NoisyOracle noisy(inner, cfg);
  EXPECT_THROW(noisy.TotalNonZeros({}), TransientOracleError);
  EXPECT_EQ(noisy.injected_failures(), 1u);
  // The victim still executed; only the measurement was lost, so a retry
  // costs a full extra acquisition.
  EXPECT_EQ(inner.calls, 1);
}

TEST(NoisyOracle, ForkIsKeyedByStreamNotCallOrder) {
  const sim::OracleNoiseConfig cfg = sim::ReferenceOracleNoise(NoiseSeed());
  ScriptedOracle inner({10}, 0, /*cloneable=*/true);
  sim::NoisyOracle noisy(inner, cfg);

  auto sequence = [](ZeroCountOracle& o) {
    std::vector<std::size_t> seq;
    for (int i = 0; i < 64; ++i) {
      try {
        seq.push_back(o.TotalNonZeros({}));
      } catch (const TransientOracleError&) {
        seq.push_back(static_cast<std::size_t>(-1));
      }
    }
    return seq;
  };

  // Same stream id -> same noise, regardless of fork order.
  const auto a = sequence(*noisy.Fork(7));
  const auto b = sequence(*noisy.Fork(3));
  const auto c = sequence(*noisy.Fork(7));
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);

  // A non-cloneable victim cannot be forked; callers must fall back.
  ScriptedOracle sealed({10});
  sim::NoisyOracle sealed_noisy(sealed, cfg);
  EXPECT_EQ(sealed_noisy.Fork(0), nullptr);
  EXPECT_EQ(sealed_noisy.Clone(), nullptr);
}

TEST(VotingOracle, MedianHealsMinorityPerturbations) {
  // One in three samples is perturbed; a 3-vote median never is.
  ScriptedOracle inner({7, 7, 9});
  VotingOracleConfig cfg;
  cfg.votes = 3;
  VotingOracle voter(inner, cfg);
  for (int q = 0; q < 10; ++q) EXPECT_EQ(voter.TotalNonZeros({}), 7u);
  EXPECT_EQ(voter.queries(), 10u);
  EXPECT_EQ(voter.samples(), 30u);
  EXPECT_EQ(voter.retries(), 0u);
}

TEST(VotingOracle, RetriesTransientFailuresWithinBudget) {
  ScriptedOracle inner({5}, /*throw_first=*/2);
  VotingOracleConfig cfg;
  cfg.votes = 1;
  cfg.max_retries = 8;
  VotingOracle voter(inner, cfg);
  EXPECT_EQ(voter.TotalNonZeros({}), 5u);
  EXPECT_EQ(voter.retries(), 2u);
  EXPECT_EQ(voter.samples(), 3u);
}

TEST(VotingOracle, AbortsWhenRetryBudgetExhausted) {
  ScriptedOracle inner({5}, /*throw_first=*/1000);
  VotingOracleConfig cfg;
  cfg.votes = 1;
  cfg.max_retries = 4;
  VotingOracle voter(inner, cfg);
  EXPECT_THROW(voter.TotalNonZeros({}), Error);
}

TEST(VotingOracle, RejectsEvenVoteCounts) {
  ScriptedOracle inner({5});
  VotingOracleConfig cfg;
  cfg.votes = 2;
  EXPECT_THROW((VotingOracle{inner, cfg}), Error);
}

// --- Streaming rewrite vs the historical AoS implementation --------------
//
// The chunked streaming ApplySeededTo must reproduce the legacy event-
// vector implementation (tests/legacy_noise.h) RNG draw for RNG draw: same
// events, same order, same timestamps, on every fault-type combination.

std::vector<sim::TraceNoiseConfig> DifferentialConfigs(std::uint64_t seed) {
  std::vector<sim::TraceNoiseConfig> cfgs;
  cfgs.push_back(sim::ReferenceTraceNoise(seed));
  const auto one = [&](auto set) {
    sim::TraceNoiseConfig c;
    c.seed = seed;
    set(c);
    cfgs.push_back(c);
  };
  one([](sim::TraceNoiseConfig& c) { c.drop_prob = 0.3; });
  one([](sim::TraceNoiseConfig& c) {
    c.jitter_prob = 0.5;
    c.max_jitter_cycles = 5;
  });
  one([](sim::TraceNoiseConfig& c) { c.split_prob = 0.5; });
  one([](sim::TraceNoiseConfig& c) { c.merge_prob = 0.5; });
  one([](sim::TraceNoiseConfig& c) { c.spurious_prob = 0.3; });
  // Aggressive everything: maximizes pass interactions.
  sim::TraceNoiseConfig hard;
  hard.seed = seed;
  hard.drop_prob = 0.1;
  hard.jitter_prob = 0.4;
  hard.max_jitter_cycles = 9;
  hard.split_prob = 0.4;
  hard.merge_prob = 0.4;
  hard.spurious_prob = 0.2;
  cfgs.push_back(hard);
  return cfgs;
}

TEST(TraceNoiseDifferential, StreamingMatchesLegacyBitForBit) {
  // 20000 events spans multiple TraceBuffer chunks, so the streaming pass
  // crosses chunk-view boundaries mid-trace.
  for (const int events : {1, 50, 800, 20000}) {
    const trace::Trace t =
        SyntheticTrace(events, 17 + static_cast<std::uint64_t>(events));
    for (const sim::TraceNoiseConfig& cfg :
         DifferentialConfigs(NoiseSeed())) {
      const sim::TraceNoiseModel model(cfg);
      SCOPED_TRACE("events=" + std::to_string(events) +
                   " drop=" + std::to_string(cfg.drop_prob) +
                   " jitter=" + std::to_string(cfg.jitter_prob) +
                   " split=" + std::to_string(cfg.split_prob) +
                   " merge=" + std::to_string(cfg.merge_prob) +
                   " spurious=" + std::to_string(cfg.spurious_prob));
      EXPECT_TRUE(SameTrace(model.Apply(t), sim::LegacyNoiseApply(cfg, t)));
      for (const std::uint64_t k : {0ull, 1ull, 7ull, 1000ull})
        EXPECT_TRUE(SameTrace(model.ApplyNth(t, k),
                              sim::LegacyNoiseApplyNth(cfg, t, k)))
            << "k=" << k;
    }
  }
}

TEST(TraceNoiseDifferential, PooledVariantsMatchReturningOverloads) {
  const trace::Trace t = SyntheticTrace(3000, 23);
  const sim::TraceNoiseModel model(sim::ReferenceTraceNoise(NoiseSeed()));
  trace::Trace out;  // reused across draws: chunk pooling must not leak state
  for (std::uint64_t k = 0; k < 16; ++k) {
    model.ApplyNthTo(t, k, &out);
    EXPECT_TRUE(SameTrace(out, model.ApplyNth(t, k))) << "k=" << k;
  }
  model.ApplyTo(t, &out);
  EXPECT_TRUE(SameTrace(out, model.Apply(t)));
}

TEST(TraceNoiseDifferential, PooledDisabledConfigIsIdentity) {
  const trace::Trace t = SyntheticTrace(100, 29);
  const sim::TraceNoiseModel model{sim::TraceNoiseConfig{}};
  trace::Trace out;
  out.Append(1, 2, 3, trace::MemOp::kRead);  // stale content must be cleared
  model.ApplyNthTo(t, 5, &out);
  EXPECT_TRUE(SameTrace(out, t));
}

}  // namespace
}  // namespace sc
