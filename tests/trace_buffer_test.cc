// TraceBuffer (columnar trace storage) round-trip and differential tests.
//
// Three layers of evidence that the SoA rewrite changed performance only:
//   1. AoS<->SoA round-trip: any event sequence pushed through TraceBuffer
//      comes back field-exact via Get(), operator[], iterators, and chunk
//      views — across chunk boundaries, Truncate, Clear-and-refill, and
//      copies.
//   2. CSV equivalence on the 100-case adversarial corpus shared with
//      trace_property_test: serialized bytes and reparsed events match the
//      reference AoS vector exactly.
//   3. Differential segmentation: the streaming column scans must agree
//      with a verbatim copy of the event-at-a-time implementation
//      (tests/legacy_segmentation.h) on synthetic corpus traces and on
//      real LeNet / ConvNet / AlexNet accelerator traces, with and
//      without region identities.
#include "trace/trace_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "accel/accelerator.h"
#include "legacy_segmentation.h"
#include "models/zoo.h"
#include "nn/tensor.h"
#include "support/rng.h"
#include "trace/interval.h"
#include "trace/mem_event.h"
#include "trace/trace.h"

namespace sc::trace {
namespace {

constexpr int kCases = 100;

// Same adversarial generator as trace_property_test's corpus, but returning
// the plain AoS vector so the tests can compare against storage that never
// went through a TraceBuffer.
std::vector<MemEvent> RandomEvents(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<MemEvent> events;
  const int n = rng.UniformInt(0, 200);
  std::uint64_t cycle = static_cast<std::uint64_t>(rng.UniformInt(0, 1000));
  for (int i = 0; i < n; ++i) {
    MemEvent e;
    if (!rng.Chance(0.25))
      cycle += static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 16));
    e.cycle = cycle;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        e.bytes = 1;
        break;
      case 1:
        e.bytes = std::numeric_limits<std::uint32_t>::max();
        break;
      default:
        e.bytes = static_cast<std::uint32_t>(rng.UniformInt(1, 1 << 20));
    }
    e.addr = static_cast<std::uint64_t>(rng.UniformInt(0, 1 << 30));
    if (rng.Chance(0.05))  // highest event still inside the address space
      e.addr = std::numeric_limits<std::uint64_t>::max() - e.bytes - e.addr;
    e.op = rng.Chance(0.5) ? MemOp::kRead : MemOp::kWrite;
    events.push_back(e);
  }
  return events;
}

void ExpectBufferMatches(const TraceBuffer& buf,
                         const std::vector<MemEvent>& ref) {
  ASSERT_EQ(buf.size(), ref.size());
  std::uint64_t want_read = 0, want_written = 0;
  for (const MemEvent& e : ref) {
    if (e.op == MemOp::kRead)
      want_read += e.bytes;
    else
      want_written += e.bytes;
  }
  EXPECT_EQ(buf.bytes_read(), want_read);
  EXPECT_EQ(buf.bytes_written(), want_written);
  EXPECT_EQ(buf.last_cycle(), ref.empty() ? 0u : ref.back().cycle);
  // Random access.
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(buf.Get(i), ref[i]) << "event " << i;
  // Column streaming.
  std::size_t idx = 0;
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const TraceBuffer::ChunkView v = buf.chunk(ci);
    for (std::size_t k = 0; k < v.count; ++k, ++idx) {
      ASSERT_EQ(v.cycles[k], ref[idx].cycle) << "event " << idx;
      ASSERT_EQ(v.addrs[k], ref[idx].addr) << "event " << idx;
      ASSERT_EQ(v.bytes[k], ref[idx].bytes) << "event " << idx;
      ASSERT_EQ(static_cast<MemOp>(v.ops[k]), ref[idx].op)
          << "event " << idx;
    }
  }
  EXPECT_EQ(idx, ref.size());
}

TEST(TraceBuffer, RoundTripsCorpus) {
  for (int c = 0; c < kCases; ++c) {
    const std::vector<MemEvent> ref =
        RandomEvents(static_cast<std::uint64_t>(c) + 1);
    TraceBuffer buf;
    for (const MemEvent& e : ref) buf.Append(e);
    ExpectBufferMatches(buf, ref);
  }
}

// Deterministic filler spanning several chunks (no per-case randomness so
// chunk-edge indices are exact).
std::vector<MemEvent> SequentialEvents(std::size_t n) {
  std::vector<MemEvent> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    MemEvent e;
    e.cycle = i / 3;  // runs of equal cycles
    e.addr = 0x1000 + 64 * i;
    e.bytes = static_cast<std::uint32_t>(1 + (i % 64));
    e.op = (i % 2 == 0) ? MemOp::kRead : MemOp::kWrite;
    events.push_back(e);
  }
  return events;
}

TEST(TraceBuffer, CrossesChunkBoundaries) {
  // One short of a boundary, exactly on it, one past it, and a few chunks.
  for (const std::size_t n :
       {TraceBuffer::kChunkEvents - 1, TraceBuffer::kChunkEvents,
        TraceBuffer::kChunkEvents + 1, 3 * TraceBuffer::kChunkEvents + 7}) {
    const std::vector<MemEvent> ref = SequentialEvents(n);
    TraceBuffer buf;
    for (const MemEvent& e : ref) buf.Append(e);
    ASSERT_EQ(buf.size(), n);
    ASSERT_EQ(buf.num_chunks(),
              (n + TraceBuffer::kChunkEvents - 1) / TraceBuffer::kChunkEvents);
    // Spot-check around every chunk edge plus both ends.
    for (std::size_t i :
         {std::size_t{0}, std::min(n - 1, TraceBuffer::kChunkEvents - 1),
          std::min(n - 1, TraceBuffer::kChunkEvents), n - 1})
      ASSERT_EQ(buf.Get(i), ref[i]) << "event " << i;
    ASSERT_EQ(buf.last_cycle(), ref.back().cycle);
  }
}

TEST(TraceBuffer, TruncateRecomputesTotals) {
  const std::vector<MemEvent> ref =
      SequentialEvents(TraceBuffer::kChunkEvents + 100);
  TraceBuffer buf;
  for (const MemEvent& e : ref) buf.Append(e);
  for (const std::size_t n : {TraceBuffer::kChunkEvents + 100,
                              TraceBuffer::kChunkEvents + 1,
                              TraceBuffer::kChunkEvents, std::size_t{17},
                              std::size_t{1}, std::size_t{0}}) {
    buf.Truncate(n);
    ExpectBufferMatches(
        buf, std::vector<MemEvent>(ref.begin(),
                                   ref.begin() + static_cast<long>(n)));
  }
}

TEST(TraceBuffer, TruncateReopensAppendAtTheCut) {
  TraceBuffer buf;
  buf.Append(10, 0x0, 4, MemOp::kRead);
  buf.Append(20, 0x40, 4, MemOp::kWrite);
  buf.Truncate(1);
  // The cycle floor is the surviving last event, not the dropped one.
  buf.Append(10, 0x80, 8, MemOp::kWrite);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.bytes_read(), 4u);
  EXPECT_EQ(buf.bytes_written(), 8u);
  EXPECT_EQ(buf.last_cycle(), 10u);
}

TEST(TraceBuffer, ClearRetainsStorageAndRefills) {
  const std::vector<MemEvent> a = SequentialEvents(2 * TraceBuffer::kChunkEvents);
  const std::vector<MemEvent> b =
      RandomEvents(7);  // different shape, lower cycles than a's tail
  TraceBuffer buf;
  for (const MemEvent& e : a) buf.Append(e);
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.bytes_read(), 0u);
  EXPECT_EQ(buf.bytes_written(), 0u);
  EXPECT_EQ(buf.last_cycle(), 0u);
  // Refill: cycle validation restarts from scratch and contents are exact.
  for (const MemEvent& e : b) buf.Append(e);
  ExpectBufferMatches(buf, b);
}

TEST(TraceBuffer, CopyAndAssignAreDeep) {
  const std::vector<MemEvent> ref =
      RandomEvents(42);
  TraceBuffer buf;
  for (const MemEvent& e : ref) buf.Append(e);

  TraceBuffer copied(buf);
  ExpectBufferMatches(copied, ref);

  TraceBuffer assigned;
  assigned.Append(1, 0x0, 4, MemOp::kRead);  // pre-existing state is dropped
  assigned = buf;
  ExpectBufferMatches(assigned, ref);

  // Mutating the copy leaves the original untouched.
  if (!ref.empty()) {
    copied.Truncate(ref.size() - 1);
    ExpectBufferMatches(buf, ref);
  }
}

TEST(TraceBuffer, RejectsBadAppends) {
  TraceBuffer buf;
  buf.Append(5, 0x0, 4, MemOp::kRead);
  EXPECT_THROW(buf.Append(4, 0x0, 4, MemOp::kRead), Error);
  EXPECT_THROW(buf.Append(6, 0x0, 0, MemOp::kWrite), Error);
  // Failed appends leave the buffer usable.
  buf.Append(5, 0x40, 4, MemOp::kWrite);
  EXPECT_EQ(buf.size(), 2u);
}

// --- Trace facade over the buffer -------------------------------------------

TEST(TraceFacade, IteratorAndIndexMatchCorpus) {
  for (int c = 0; c < kCases; ++c) {
    const std::vector<MemEvent> ref =
        RandomEvents(static_cast<std::uint64_t>(c) + 1);
    Trace t;
    for (const MemEvent& e : ref) t.Append(e);
    ASSERT_EQ(t.size(), ref.size());
    std::size_t i = 0;
    for (const MemEvent& e : t) {  // proxy iterator, by-value reference
      ASSERT_EQ(e, ref[i]) << "event " << i;
      ASSERT_EQ(t[i], ref[i]) << "event " << i;
      ++i;
    }
    EXPECT_EQ(i, ref.size());
    EXPECT_EQ(static_cast<std::size_t>(t.end() - t.begin()), ref.size());
  }
}

// CSV equivalence against the corpus: the facade serializes the columns to
// the same bytes an AoS writer would produce, and reparsing restores every
// field (trace_property_test covers rejection paths; this pins equality
// against the reference vector rather than against another Trace).
TEST(TraceFacade, CsvMatchesReferenceEvents) {
  for (int c = 0; c < kCases; ++c) {
    const std::vector<MemEvent> ref =
        RandomEvents(static_cast<std::uint64_t>(c) + 1);
    Trace t;
    for (const MemEvent& e : ref) t.Append(e);

    std::ostringstream want;
    want << "cycle,addr,bytes,op\n";
    for (const MemEvent& e : ref)
      want << e.cycle << ',' << e.addr << ',' << e.bytes << ','
           << (e.op == MemOp::kRead ? 'R' : 'W') << '\n';

    std::stringstream got;
    t.WriteCsv(got);
    ASSERT_EQ(got.str(), want.str()) << "seed " << c + 1;

    const Trace back = Trace::ReadCsv(got);
    ASSERT_EQ(back.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(back[i], ref[i]) << "seed " << c + 1 << " event " << i;
  }
}

TEST(TraceFacade, AppendAllConcatenates) {
  Trace a, b;
  a.Append(1, 0x0, 4, MemOp::kRead);
  a.Append(2, 0x40, 8, MemOp::kWrite);
  b.Append(2, 0x80, 16, MemOp::kRead);
  b.Append(9, 0xc0, 32, MemOp::kWrite);
  a.AppendAll(b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[2].addr, 0x80u);
  EXPECT_EQ(a.bytes_read(), 20u);
  EXPECT_EQ(a.bytes_written(), 40u);
  EXPECT_EQ(a.last_cycle(), 9u);
}

// --- differential: streaming vs legacy segmentation -------------------------

namespace diff {

using attack::Segment;

void ExpectSameSegments(const std::vector<Segment>& got,
                        const std::vector<Segment>& want,
                        const char* tag) {
  ASSERT_EQ(got.size(), want.size()) << tag;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].first_event, want[i].first_event) << tag << " seg " << i;
    EXPECT_EQ(got[i].end_event, want[i].end_event) << tag << " seg " << i;
    EXPECT_EQ(got[i].start_cycle, want[i].start_cycle) << tag << " seg " << i;
    EXPECT_EQ(got[i].end_cycle, want[i].end_cycle) << tag << " seg " << i;
  }
}

// Region identities the way AnalyzeTrace derives them (gap-split spans of
// the touched address set).
std::vector<AddrInterval> SpansOf(const Trace& t, std::uint64_t gap = 1024) {
  IntervalSet all;
  for (const MemEvent& e : t) all.Insert(e.addr, e.end());
  return all.SplitRegions(gap);
}

void ExpectStreamingMatchesLegacy(const Trace& t, const char* tag) {
  ExpectSameSegments(attack::SegmentTrace(t), attack::legacy::SegmentTrace(t),
                     tag);
  if (!t.empty()) {
    const std::vector<AddrInterval> spans = SpansOf(t);
    ExpectSameSegments(attack::SegmentTraceWithRegions(t, spans),
                       attack::legacy::SegmentTraceWithRegions(t, spans),
                       tag);
  }
}

// Random traces shaped like layered compute: per-layer weight reads, reads
// of the previous layer's output region, and an output write-back, so the
// RAW / write-region / weight-region rules all fire.
Trace LayeredRandomTrace(std::uint64_t seed) {
  Rng rng(seed);
  Trace t;
  std::uint64_t cycle = 0;
  const int layers = rng.UniformInt(1, 6);
  std::uint64_t prev_out = 0x10000;  // "input" region
  for (int l = 0; l < layers; ++l) {
    const std::uint64_t weights =
        0x100000 + static_cast<std::uint64_t>(l) * 0x10000;
    const std::uint64_t out =
        0x800000 + static_cast<std::uint64_t>(l) * 0x10000;
    const int ops = rng.UniformInt(3, 40);
    for (int i = 0; i < ops; ++i) {
      cycle += static_cast<std::uint64_t>(rng.UniformInt(0, 3));
      const int kind = rng.UniformInt(0, 5);
      if (kind == 0) {
        t.Append(cycle, out + 64u * static_cast<std::uint64_t>(
                                        rng.UniformInt(0, 63)),
                 64, MemOp::kWrite);
      } else if (kind <= 2) {
        t.Append(cycle, weights + 64u * static_cast<std::uint64_t>(
                                            rng.UniformInt(0, 63)),
                 64, MemOp::kRead);
      } else {
        t.Append(cycle, prev_out + 64u * static_cast<std::uint64_t>(
                                             rng.UniformInt(0, 63)),
                 64, MemOp::kRead);
      }
    }
    // Write-back tail so the next layer's reads are RAW.
    for (int i = 0; i < 4; ++i) {
      ++cycle;
      t.Append(cycle, out + 64u * static_cast<std::uint64_t>(i), 64,
               MemOp::kWrite);
    }
    prev_out = out;
  }
  return t;
}

TEST(SegmentationDifferential, SyntheticLayeredCorpus) {
  for (int c = 0; c < kCases; ++c) {
    const Trace t = LayeredRandomTrace(static_cast<std::uint64_t>(c) + 1);
    ExpectStreamingMatchesLegacy(t, "synthetic");
    if (HasFailure()) return;  // one seed's dump is enough
  }
  ExpectStreamingMatchesLegacy(Trace{}, "empty");
}

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

Trace CaptureTrace(const nn::Network& net) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  Trace t;
  accel.Run(net, RandomInput(net.input_shape(), 99), &t);
  return t;
}

TEST(SegmentationDifferential, LeNetTrace) {
  ExpectStreamingMatchesLegacy(CaptureTrace(models::MakeLeNet()), "lenet");
}

TEST(SegmentationDifferential, ConvNetTrace) {
  ExpectStreamingMatchesLegacy(CaptureTrace(models::MakeConvNet()),
                               "convnet");
}

TEST(SegmentationDifferential, AlexNetTrace) {
  ExpectStreamingMatchesLegacy(CaptureTrace(models::MakeAlexNet()),
                               "alexnet");
}

}  // namespace diff
}  // namespace
}  // namespace sc::trace
