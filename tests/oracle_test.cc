// Zero-count oracles: the side-channel decode must match ground truth, and
// the fast sparse oracle must agree query-for-query with the trace-decoded
// accelerator oracle.
#include "attack/weights/oracle.h"

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

using models::ConvStageVictimSpec;

struct VictimBundle {
  ConvStageVictimSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
};

VictimBundle MakeVictim(std::uint64_t seed, nn::PoolKind pool,
                        bool relu_before_pool, float bias_sign) {
  VictimBundle v;
  v.spec.in_depth = 2;
  v.spec.in_width = 12;
  v.spec.out_depth = 4;
  v.spec.filter = 3;
  v.spec.stride = 1;
  v.spec.pad = 0;
  v.spec.pool = pool;
  v.spec.pool_window = pool == nn::PoolKind::kNone ? 0 : 2;
  v.spec.pool_stride = pool == nn::PoolKind::kNone ? 0 : 2;
  v.spec.relu_before_pool = relu_before_pool;
  v.weights = nn::Tensor(nn::Shape{4, 2, 3, 3});
  v.bias = nn::Tensor(nn::Shape{4});
  sc::Rng rng(seed);
  for (std::size_t i = 0; i < v.weights.numel(); ++i)
    v.weights[i] = rng.GaussianF(0.8f);
  for (int k = 0; k < 4; ++k)
    v.bias.at(k) = bias_sign * rng.UniformF(0.1f, 0.4f);
  return v;
}

SparseConvOracle::StageSpec ToStageSpec(const VictimBundle& v) {
  SparseConvOracle::StageSpec s;
  s.in_depth = v.spec.in_depth;
  s.in_width = v.spec.in_width;
  s.filter = v.spec.filter;
  s.stride = v.spec.stride;
  s.pad = v.spec.pad;
  s.pool = v.spec.pool;
  s.pool_window = v.spec.pool_window;
  s.pool_stride = v.spec.pool_stride;
  s.relu_before_pool = v.spec.relu_before_pool;
  return s;
}

class OracleAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OracleAgreementTest, SparseMatchesAcceleratorTraceDecode) {
  const auto [seed, mode] = GetParam();
  nn::PoolKind pool = nn::PoolKind::kNone;
  bool relu_first = true;
  if (mode == 1) pool = nn::PoolKind::kMax;
  if (mode == 2) {
    pool = nn::PoolKind::kAvg;
    relu_first = false;
  }
  // Negative bias for pooled modes (threshold-0 leak regime).
  const float bias_sign = (mode == 0) ? 1.0f : -1.0f;
  const VictimBundle v = MakeVictim(static_cast<std::uint64_t>(seed), pool,
                                    relu_first, bias_sign);

  nn::Network net = models::MakeConvStageVictim(v.spec, v.weights, v.bias);
  AcceleratorOracle hw(net, net.num_nodes() - 1, accel::AcceleratorConfig{});
  SparseConvOracle fast(ToStageSpec(v), v.weights, v.bias);
  ASSERT_EQ(hw.num_channels(), fast.num_channels());

  sc::Rng rng(static_cast<std::uint64_t>(seed) + 99);
  for (int q = 0; q < 12; ++q) {
    std::vector<SparsePixel> pixels;
    const int n = rng.UniformInt(0, 2);
    for (int k = 0; k < n; ++k) {
      pixels.push_back({rng.UniformInt(0, 1), rng.UniformInt(0, 11),
                        rng.UniformInt(0, 11), rng.GaussianF(2.0f)});
    }
    ASSERT_EQ(hw.TotalNonZeros(pixels), fast.TotalNonZeros(pixels))
        << "query " << q;
    for (int c = 0; c < hw.num_channels(); ++c) {
      ASSERT_EQ(hw.ChannelNonZeros(pixels, c),
                fast.ChannelNonZeros(pixels, c))
          << "query " << q << " channel " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, OracleAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2)));

TEST(AcceleratorOracle, CountsMatchStageGroundTruth) {
  const VictimBundle v =
      MakeVictim(5, nn::PoolKind::kNone, true, 1.0f);
  nn::Network net = models::MakeConvStageVictim(v.spec, v.weights, v.bias);
  AcceleratorOracle oracle(net, net.num_nodes() - 1,
                           accel::AcceleratorConfig{});

  // Densified ground truth via the reference engine.
  nn::Tensor x(net.input_shape());
  x.at(1, 3, 4) = 0.7f;
  const nn::Tensor y = net.ForwardFinal(x);
  EXPECT_EQ(oracle.TotalNonZeros({{1, 3, 4, 0.7f}}), y.CountNonZeros());
  EXPECT_EQ(oracle.queries(), 1u);
}

TEST(AcceleratorOracle, ThresholdKnob) {
  const VictimBundle v = MakeVictim(6, nn::PoolKind::kNone, true, 1.0f);
  nn::Network net = models::MakeConvStageVictim(v.spec, v.weights, v.bias);
  AcceleratorOracle oracle(net, net.num_nodes() - 1,
                           accel::AcceleratorConfig{});
  const std::size_t base = oracle.TotalNonZeros({});
  EXPECT_GT(base, 0u);  // positive biases
  EXPECT_TRUE(oracle.SetActivationThreshold(10.0f));
  EXPECT_EQ(oracle.TotalNonZeros({}), 0u);
}

TEST(AcceleratorOracle, RejectsFusedInteriorNode) {
  const VictimBundle v = MakeVictim(7, nn::PoolKind::kMax, true, -1.0f);
  nn::Network net = models::MakeConvStageVictim(v.spec, v.weights, v.bias);
  // Node 0 is the conv, fused into a stage whose output is the pool node.
  EXPECT_THROW(
      AcceleratorOracle(net, 0, accel::AcceleratorConfig{}), sc::Error);
}

TEST(SparseConvOracle, ValidatesConfiguration) {
  SparseConvOracle::StageSpec s;
  s.in_depth = 1;
  s.in_width = 8;
  s.filter = 3;
  // Wrong weight shape.
  EXPECT_THROW(SparseConvOracle(s, nn::Tensor(nn::Shape{1, 1, 2, 2}),
                                nn::Tensor(nn::Shape{1})),
               sc::Error);
  // Max pooling before activation is not modelled.
  s.pool = nn::PoolKind::kMax;
  s.pool_window = 2;
  s.pool_stride = 2;
  s.relu_before_pool = false;
  EXPECT_THROW(SparseConvOracle(s, nn::Tensor(nn::Shape{1, 1, 3, 3}),
                                nn::Tensor(nn::Shape{1})),
               sc::Error);
}

}  // namespace
}  // namespace sc::attack
