// Full-scale robustness regressions (DESIGN.md §8): the paper's primary
// case study (AlexNet) must survive the documented reference noise levels.
//
//   - Structure: K independently corrupted acquisitions of one AlexNet run
//     are voted into a consensus whose candidate search reproduces the
//     noise-free Table-3/Table-4 result exactly — on both dataflow
//     backends (the consensus machinery must not care which schedule
//     produced the acquisitions).
//   - Weights: all 96 CONV1 filters are recovered through a noisy count
//     oracle (voting + re-bracketing) with every ratio inside the paper's
//     2^-10 error bound — including the positive-bias filters that need
//     the threshold-knob bias search first (see bench/fig7_weight_recovery).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "attack/structure/report.h"
#include "attack/structure/robust.h"
#include "attack/weights/robust.h"
#include "models/zoo.h"
#include "sim/noise.h"
#include "sim/noisy_oracle.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace sc::attack {
namespace {

std::uint64_t NoiseSeed() {
  const char* env = std::getenv("SC_NOISE_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

StructureAttackConfig AlexNetConfig(const accel::Accelerator& accel) {
  StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 227 * 227;
  cfg.search.known_input_width = 227;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  cfg.search.macs_per_cycle = accel.config().macs_per_cycle;
  cfg.search.bytes_per_cycle = accel.config().bytes_per_cycle;
  cfg.search.schedule = accel.schedule_model();
  return cfg;
}

struct AlexNetRuns {
  StructureAttackResult exact;
  RobustStructureResult robust;
};

const AlexNetRuns& AlexNetUnderNoise(accel::Dataflow dataflow) {
  static std::map<accel::Dataflow, AlexNetRuns> cache;
  auto it = cache.find(dataflow);
  if (it != cache.end()) return it->second;

  nn::Network net = models::MakeAlexNet(1);
  accel::AcceleratorConfig acfg;
  acfg.dataflow = dataflow;
  accel::Accelerator accel{acfg};
  trace::Trace clean;
  nn::Tensor x(net.input_shape());
  sc::Rng rng(42);
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = rng.GaussianF(1.0f);
  accel.Run(net, x, &clean);

  const sim::TraceNoiseModel noise(sim::ReferenceTraceNoise(NoiseSeed()));
  std::vector<trace::Trace> acq;
  for (std::uint64_t k = 0; k < 5; ++k) acq.push_back(noise.ApplyNth(clean, k));

  AlexNetRuns r;
  RobustStructureConfig rcfg;
  rcfg.attack = AlexNetConfig(accel);
  r.exact = RunStructureAttack(clean, rcfg.attack);
  r.robust = RunRobustStructureAttack(acq, rcfg);
  return cache.emplace(dataflow, std::move(r)).first->second;
}

class RobustAlexNetE2E : public ::testing::TestWithParam<accel::Dataflow> {};

INSTANTIATE_TEST_SUITE_P(
    Dataflows, RobustAlexNetE2E,
    ::testing::Values(accel::Dataflow::kWeightStationary,
                      accel::Dataflow::kOutputStationary),
    [](const ::testing::TestParamInfo<accel::Dataflow>& p) {
      return std::string(accel::ToString(p.param));
    });

bool SameStructures(const SearchResult& a, const SearchResult& b) {
  if (a.structures.size() != b.structures.size()) return false;
  for (std::size_t s = 0; s < a.structures.size(); ++s) {
    const auto& la = a.structures[s].layers;
    const auto& lb = b.structures[s].layers;
    if (la.size() != lb.size()) return false;
    for (std::size_t i = 0; i < la.size(); ++i)
      if (!(la[i].geom == lb[i].geom)) return false;
  }
  return true;
}

TEST_P(RobustAlexNetE2E, ConsensusSegmentsEightConvFcLayers) {
  const RobustStructureResult& r = AlexNetUnderNoise(GetParam()).robust;
  EXPECT_EQ(r.acquisitions, 5);
  EXPECT_GE(r.usable, 3);
  ASSERT_EQ(r.consensus.size(), 8u);
  for (const LayerConsensus& lc : r.consensus) {
    EXPECT_EQ(lc.observation.role, SegmentRole::kConvOrFc);
    EXPECT_GT(lc.confidence(), 0.0);
  }
}

TEST_P(RobustAlexNetE2E, ConsensusHealsSizesExactly) {
  // Coverage-maximum healing recovers the exact region sizes, so the exact
  // Eq. (1)-(8) matching needs no slack at the reference noise level.
  const RobustStructureResult& r = AlexNetUnderNoise(GetParam()).robust;
  EXPECT_EQ(r.slack_used, 0);
  const auto& o = r.observations();
  EXPECT_EQ(o[0].size_ifm, 227LL * 227 * 3);
  EXPECT_EQ(o[0].size_ofm, 27LL * 27 * 96);
  EXPECT_EQ(o[0].size_fltr, 11LL * 11 * 3 * 96);
  EXPECT_EQ(o[5].size_fltr, 9216LL * 4096);
}

TEST_P(RobustAlexNetE2E, CandidateSetMatchesNoiselessAttack) {
  // Paper Table 3: the candidate set the noisy consensus admits is the same
  // one the clean trace admits (whose counts/contents the noise-free e2e
  // suite pins down).
  const AlexNetRuns& runs = AlexNetUnderNoise(GetParam());
  EXPECT_TRUE(SameStructures(runs.robust.search, runs.exact.search))
      << "consensus at slack " << runs.robust.slack_used << " produced "
      << runs.robust.num_structures() << " structures vs "
      << runs.exact.search.structures.size() << " clean";
  EXPECT_GE(runs.robust.num_structures(), 8u);
  EXPECT_LE(runs.robust.num_structures(), 200u);

  const std::vector<nn::LayerGeometry> truth = {
      {227, 3, 27, 96, 11, 4, 0, nn::PoolKind::kMax, 3, 2, 0},
      {27, 96, 13, 256, 5, 1, 2, nn::PoolKind::kMax, 3, 2, 0},
      {13, 256, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 6, 256, 3, 1, 1, nn::PoolKind::kMax, 3, 2, 0},
      {6, 256, 1, 4096, 6, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 4096, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 1000, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
  };
  bool found = false;
  for (const auto& cs : runs.robust.search.structures) {
    bool all = true;
    for (std::size_t k = 0; k < truth.size() && all; ++k)
      all = cs.layers[k].geom == truth[k];
    found = found || all;
  }
  EXPECT_TRUE(found) << "the real AlexNet must survive the noisy consensus";
}

// ---------------------------------------------------------------------------
// CONV1 weight recovery under reference oracle noise (paper Fig. 7 scale).

TEST(RobustConv1E2E, AllRatiosWithinPaperBoundUnderOracleNoise) {
  const models::CompressedConv1 secret = models::MakeCompressedConv1Weights();

  SparseConvOracle::StageSpec spec;
  spec.in_depth = 3;
  spec.in_width = 227;
  spec.filter = 11;
  spec.stride = 4;
  spec.pad = 0;
  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 3;
  spec.pool_stride = 2;
  spec.relu_before_pool = true;
  spec.has_threshold_knob = true;

  SparseConvOracle oracle(spec, secret.weights, secret.bias);
  sim::NoisyOracle noisy(oracle, sim::ReferenceOracleNoise(NoiseSeed()));

  RobustWeightConfig rcfg = ReferenceRobustWeightConfig();
  // At ~35k bisections a run hits a triple mis-vote often enough that the
  // tier-1 budget of 2 restarts leaves a handful of failed positions; the
  // restart budget has to grow with log(#positions).
  rcfg.attack.max_rebrackets = 4;

  struct Outcome {
    RecoveredFilter rec;
    double eff_bias_scale = 1.0;
    bool recovered = false;
  };
  std::vector<Outcome> outcomes(96);

  auto recover_one = [&](ZeroCountOracle& orc, int k) {
    Outcome out;
    VotingOracle voter(orc, rcfg.voting);
    const float b = secret.bias.at(k);
    if (b > 0.0f) {
      // The threshold bisection has no re-bracket backstop, so a single
      // surviving mis-vote would skew b_hat for the whole filter: vote
      // wider there.
      VotingOracleConfig wide = rcfg.voting;
      wide.votes = 7;
      VotingOracle bias_voter(orc, wide);
      WeightAttack bias_attack(bias_voter, spec, rcfg.attack);
      const auto b_hat = bias_attack.FindBiasViaThreshold(k);
      if (!b_hat) return out;
      const float t_used = *b_hat * 1.5f + 0.05f;
      voter.SetActivationThreshold(t_used);
      SparseConvOracle::StageSpec elevated = spec;
      elevated.relu_threshold = t_used;
      WeightAttack attack(voter, elevated, rcfg.attack);
      out.rec = attack.RecoverFilter(k);
      voter.SetActivationThreshold(0.0f);
      out.eff_bias_scale = (static_cast<double>(*b_hat) - t_used) /
                           static_cast<double>(*b_hat);
    } else {
      WeightAttack attack(voter, spec, rcfg.attack);
      out.rec = attack.RecoverFilter(k);
    }
    out.recovered = true;
    return out;
  };

  // Per-filter noise stream keyed by the filter index (Fork), so the sweep
  // is deterministic for any SC_THREADS.
  support::ParallelFor(0, 96, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) {
      const std::unique_ptr<ZeroCountOracle> fork =
          noisy.Fork(static_cast<std::uint64_t>(k));
      ASSERT_NE(fork, nullptr);
      outcomes[static_cast<std::size_t>(k)] =
          recover_one(*fork, static_cast<int>(k));
    }
  });

  constexpr float kPaperBound = 1.0f / 1024.0f;
  float max_err = 0.0f;
  std::size_t failed_positions = 0;
  std::uint64_t rebrackets = 0;
  for (int k = 0; k < 96; ++k) {
    const Outcome& out = outcomes[static_cast<std::size_t>(k)];
    ASSERT_TRUE(out.recovered) << "bias search lost filter " << k;
    rebrackets += out.rec.rebrackets;
    const float b = secret.bias.at(k);
    for (int c = 0; c < 3; ++c) {
      for (int i = 0; i < 11; ++i) {
        for (int j = 0; j < 11; ++j) {
          const auto id = static_cast<std::size_t>((c * 11 + i) * 11 + j);
          if (out.rec.failed[id]) {
            ++failed_positions;
            continue;
          }
          const float truth = secret.weights.at(k, c, i, j) / b;
          const float recovered = static_cast<float>(
              out.rec.ratio.at(c, i, j) * out.eff_bias_scale);
          max_err = std::max(max_err, std::fabs(recovered - truth));
        }
      }
    }
  }
  EXPECT_EQ(failed_positions, 0u);
  EXPECT_LT(max_err, kPaperBound)
      << "paper bound 2^-10 violated under reference oracle noise";
  // The healing machinery must actually have fired at this scale.
  EXPECT_GT(rebrackets, 0u);
}

}  // namespace
}  // namespace sc::attack
