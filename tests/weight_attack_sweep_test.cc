// Parameterized property sweep for the weight attack: random victims over
// a grid of geometries, strides, pooling variants and bias signs. Every
// recoverable position must land inside the paper's error bound; failures
// must be *flagged*, never silently wrong.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "attack/weights/attack.h"
#include "support/rng.h"

namespace sc::attack {
namespace {

struct SweepCase {
  int filter;
  int stride;
  int in_depth;
  nn::PoolKind pool;
  int pool_window;
  int pool_stride;
  bool relu_before_pool;
  float bias_sign;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string s = "f" + std::to_string(c.filter) + "s" +
                  std::to_string(c.stride) + "d" +
                  std::to_string(c.in_depth);
  if (c.pool == nn::PoolKind::kMax)
    s += "_max" + std::to_string(c.pool_window) + std::to_string(c.pool_stride);
  if (c.pool == nn::PoolKind::kAvg)
    s += "_avg" + std::to_string(c.pool_window) + std::to_string(c.pool_stride);
  s += c.bias_sign > 0 ? "_bpos" : "_bneg";
  if (!c.relu_before_pool) s += "_preact";
  return s;
}

class WeightAttackSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WeightAttackSweep, RecoversWithinPaperBound) {
  const SweepCase& c = GetParam();
  SparseConvOracle::StageSpec spec;
  spec.in_depth = c.in_depth;
  spec.in_width = 4 * c.filter + 3;  // comfortably > 2F (Eq. 5)
  spec.filter = c.filter;
  spec.stride = c.stride;
  spec.pool = c.pool;
  spec.pool_window = c.pool_window;
  spec.pool_stride = c.pool_stride;
  spec.relu_before_pool = c.relu_before_pool;

  const int oc = 2;
  nn::Tensor w(nn::Shape{oc, c.in_depth, c.filter, c.filter});
  nn::Tensor b(nn::Shape{oc});
  sc::Rng rng(static_cast<std::uint64_t>(c.filter * 131 + c.stride * 17 +
                                         c.pool_window * 7 +
                                         (c.bias_sign > 0)));
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.6f);
  for (int k = 0; k < oc; ++k)
    b.at(k) = c.bias_sign * rng.UniformF(0.1f, 0.4f);

  SparseConvOracle oracle(spec, w, b);
  WeightAttack attack(oracle, spec, WeightAttackConfig{});

  for (int k = 0; k < oc; ++k) {
    const RecoveredFilter rec = attack.RecoverFilter(k);
    int recovered = 0;
    float max_err = 0.0f;
    for (int cc = 0; cc < c.in_depth; ++cc) {
      for (int i = 0; i < c.filter; ++i) {
        for (int j = 0; j < c.filter; ++j) {
          const auto id = static_cast<std::size_t>(
              (cc * c.filter + i) * c.filter + j);
          if (rec.failed[id]) continue;
          ++recovered;
          const float truth = w.at(k, cc, i, j) / b.at(k);
          max_err = std::max(max_err,
                             std::fabs(rec.ratio.at(cc, i, j) - truth));
        }
      }
    }
    const bool blind_regime =
        c.pool != nn::PoolKind::kNone &&
        (c.pool == nn::PoolKind::kMax || c.relu_before_pool) &&
        c.bias_sign > 0;
    if (blind_regime) {
      // Every position must be flagged failed at threshold 0.
      EXPECT_EQ(recovered, 0) << "filter " << k;
    } else {
      EXPECT_LT(max_err, 1.0f / 1024.0f) << "filter " << k;
      // The attack must recover the overwhelming majority of positions.
      EXPECT_GE(recovered, c.in_depth * c.filter * c.filter * 3 / 4)
          << "filter " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    NoPool, WeightAttackSweep,
    ::testing::Values(
        SweepCase{1, 1, 1, nn::PoolKind::kNone, 0, 0, true, +1.0f},
        SweepCase{1, 1, 3, nn::PoolKind::kNone, 0, 0, true, -1.0f},
        SweepCase{2, 1, 1, nn::PoolKind::kNone, 0, 0, true, +1.0f},
        SweepCase{3, 1, 2, nn::PoolKind::kNone, 0, 0, true, +1.0f},
        SweepCase{3, 2, 1, nn::PoolKind::kNone, 0, 0, true, -1.0f},
        SweepCase{3, 3, 1, nn::PoolKind::kNone, 0, 0, true, +1.0f},
        SweepCase{5, 2, 1, nn::PoolKind::kNone, 0, 0, true, +1.0f},
        SweepCase{5, 4, 2, nn::PoolKind::kNone, 0, 0, true, -1.0f}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    MaxPool, WeightAttackSweep,
    ::testing::Values(
        SweepCase{3, 1, 1, nn::PoolKind::kMax, 2, 2, true, -1.0f},
        SweepCase{3, 1, 2, nn::PoolKind::kMax, 3, 2, true, -1.0f},
        SweepCase{3, 2, 1, nn::PoolKind::kMax, 2, 2, true, -1.0f},
        SweepCase{4, 2, 1, nn::PoolKind::kMax, 3, 3, true, -1.0f},
        SweepCase{5, 1, 1, nn::PoolKind::kMax, 2, 2, true, -1.0f},
        // Positive bias under max pooling: the blind regime.
        SweepCase{3, 1, 1, nn::PoolKind::kMax, 2, 2, true, +1.0f},
        SweepCase{4, 2, 1, nn::PoolKind::kMax, 3, 2, true, +1.0f}),
    CaseName);

INSTANTIATE_TEST_SUITE_P(
    AvgPool, WeightAttackSweep,
    ::testing::Values(
        // Pre-activation accumulation (Eq. 11 regime): works for either
        // bias sign, non-overlapping windows.
        SweepCase{3, 1, 1, nn::PoolKind::kAvg, 2, 2, false, +1.0f},
        SweepCase{3, 1, 2, nn::PoolKind::kAvg, 2, 2, false, -1.0f},
        SweepCase{4, 2, 1, nn::PoolKind::kAvg, 3, 3, false, +1.0f},
        // Post-activation average pooling counts like max pooling.
        SweepCase{3, 1, 1, nn::PoolKind::kAvg, 2, 2, true, -1.0f},
        SweepCase{3, 1, 1, nn::PoolKind::kAvg, 2, 2, true, +1.0f}),
    CaseName);

TEST(WeightAttackEdge, SinglePixelInput) {
  // 1x1 conv on a wider map with stride > 1.
  SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 7;
  spec.filter = 1;
  spec.stride = 2;
  nn::Tensor w(nn::Shape{1, 1, 1, 1});
  w.at(0, 0, 0, 0) = -0.8f;
  nn::Tensor b(nn::Shape{1});
  b.at(0) = 0.25f;
  SparseConvOracle oracle(spec, w, b);
  WeightAttack attack(oracle, spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  EXPECT_NEAR(rec.ratio.at(0, 0, 0), -0.8f / 0.25f, 1e-3f);
}

TEST(WeightAttackEdge, AllZeroFilter) {
  SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 9;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{1, 1, 3, 3});  // all zero
  nn::Tensor b(nn::Shape{1});
  b.at(0) = 0.2f;
  SparseConvOracle oracle(spec, w, b);
  WeightAttack attack(oracle, spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_TRUE(rec.zero_at(0, i, j, 3)) << i << ',' << j;
}

TEST(WeightAttackEdge, OverlappingPreActivationAvgPoolRejected) {
  SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 12;
  spec.filter = 3;
  spec.pool = nn::PoolKind::kAvg;
  spec.pool_window = 3;
  spec.pool_stride = 2;  // overlapping
  spec.relu_before_pool = false;
  nn::Tensor w(nn::Shape{1, 1, 3, 3}, 0.1f);
  nn::Tensor b(nn::Shape{1}, 0.1f);
  SparseConvOracle oracle(spec, w, b);
  EXPECT_THROW(WeightAttack(oracle, spec, WeightAttackConfig{}), sc::Error);
}

TEST(WeightAttackEdge, QueryCountsAreReasonable) {
  // ~dozens of bisection queries per weight, not thousands.
  SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 11;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{1, 1, 3, 3});
  sc::Rng rng(5);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  nn::Tensor b(nn::Shape{1});
  b.at(0) = 0.3f;
  SparseConvOracle oracle(spec, w, b);
  WeightAttack attack(oracle, spec, WeightAttackConfig{});
  const RecoveredFilter rec = attack.RecoverFilter(0);
  EXPECT_LT(rec.queries, 9u * 120u);
  EXPECT_GT(rec.queries, 9u * 10u);
}

}  // namespace
}  // namespace sc::attack
