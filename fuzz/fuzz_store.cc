// libFuzzer harness for the sct-v1 store decoder (DESIGN.md §14).
//
// Contract under fuzzing: arbitrary bytes either decode into a valid trace
// or raise sc::Error — never any other exception, crash, overflow, or
// oversized allocation (ASan/UBSan run alongside; decode scratch is
// bounded by the fixed chunk grid). When a decode succeeds, re-encoding
// the trace with the decoded metadata must reproduce the input exactly:
// sct-v1 has one canonical encoding per (trace, metadata) pair, so any
// accepted file IS that canonical encoding.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "store/reader.h"
#include "store/writer.h"
#include "support/check.h"
#include "trace/trace.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  try {
    sc::store::StoreReader reader =
        sc::store::StoreReader::FromString(bytes);
    const sc::support::json::Value meta = reader.header().meta;
    const sc::trace::Trace t = reader.ReadAll();

    sc::store::StoreWriter writer;
    writer.set_meta(meta);
    if (writer.Encode(t) != bytes) std::abort();  // encoding not canonical
  } catch (const sc::Error&) {
    // Structured rejection is the expected outcome for hostile input.
  }
  return 0;
}
