// libFuzzer harness for campaign::Checkpoint::Parse (DESIGN.md §12).
//
// A resume loads this file from disk before any attack state exists, so
// the parser is a trust boundary: arbitrary bytes must either yield a
// valid checkpoint or raise sc::Error — no crash, no unbounded recursion
// (the JSON parser caps depth), no other exception type. A successful
// parse must re-serialize canonically: Parse(Serialize(cp)) == cp's bytes.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "campaign/checkpoint.h"
#include "support/check.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    // Empty expected fingerprint: accept any, to fuzz past that gate.
    const sc::campaign::Checkpoint cp =
        sc::campaign::Checkpoint::Parse(text, "");
    const std::string canon = cp.Serialize();
    const sc::campaign::Checkpoint cp2 =
        sc::campaign::Checkpoint::Parse(canon, cp.fingerprint());
    if (cp2.Serialize() != canon) std::abort();  // canonical form unstable
  } catch (const sc::Error&) {
    // Structured rejection is the expected outcome for hostile input.
  }
  return 0;
}
