// libFuzzer harness for Trace::ReadCsv (DESIGN.md §12).
//
// Contract under fuzzing: arbitrary bytes either parse into a valid trace
// or raise sc::Error with a row diagnostic — never any other exception,
// crash, overflow, or oversized allocation (ASan/UBSan run alongside).
// When a parse succeeds, WriteCsv -> ReadCsv must be an exact fixpoint:
// the serialized form re-parses to the same bytes.
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "support/check.h"
#include "trace/trace.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  std::istringstream is(text);
  try {
    const sc::trace::Trace t = sc::trace::Trace::ReadCsv(is);

    std::ostringstream first;
    t.WriteCsv(first);
    std::istringstream again(first.str());
    const sc::trace::Trace t2 = sc::trace::Trace::ReadCsv(again);
    std::ostringstream second;
    t2.WriteCsv(second);
    if (first.str() != second.str()) std::abort();  // round trip not exact
  } catch (const sc::Error&) {
    // Structured rejection is the expected outcome for hostile input.
  }
  return 0;
}
