// Figure 3 reproduction: the memory access pattern of the accelerator
// running AlexNet, with the layer boundaries the RAW rule recovers.
//
// The paper plots address vs. time for its FPGA prototype; we emit the same
// series (downsampled) as CSV to build/fig3_trace.csv and print the
// detected boundary table, which is the figure's payload: one boundary per
// network layer, located at the first RAW-dependent read.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "attack/structure/region_analysis.h"
#include "bench_util.h"
#include "models/zoo.h"
#include "trace/stats.h"

int main() {
  using namespace sc;
  bench::Banner("Figure 3: AlexNet memory access pattern & RAW boundaries");

  bench::Timer timer;
  nn::Network net = models::MakeAlexNet(1);
  trace::Trace tr = bench::CaptureTrace(net, 42);
  std::cout << "trace: " << trace::ComputeStats(tr) << "\n";

  // Address-vs-time series, downsampled for plotting.
  const std::size_t stride = std::max<std::size_t>(1, tr.size() / 20000);
  std::ofstream csv("fig3_trace.csv");
  csv << "cycle,addr,op\n";
  for (std::size_t i = 0; i < tr.size(); i += stride)
    csv << tr[i].cycle << ',' << tr[i].addr << ','
        << trace::ToString(tr[i].op) << '\n';
  std::cout << "series written to fig3_trace.csv (" << tr.size() / stride
            << " points)\n";

  attack::AnalysisConfig cfg;
  cfg.known_input_elems = 3LL * 227 * 227;
  const attack::TraceAnalysis a = attack::AnalyzeTrace(tr, cfg);

  std::cout << "\nlayer boundaries (paper: 8 for AlexNet = 5 conv + 3 fc)\n";
  std::cout << std::left << std::setw(6) << "layer" << std::setw(12)
            << "start_cyc" << std::setw(12) << "cycles" << std::setw(12)
            << "SIZE_IFM" << std::setw(12) << "SIZE_OFM" << std::setw(12)
            << "SIZE_FLTR" << "role\n";
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const auto& o = a.observations[i];
    std::cout << std::left << std::setw(6) << i << std::setw(12)
              << a.segments[i].start_cycle << std::setw(12) << o.cycles
              << std::setw(12) << o.size_ifm << std::setw(12) << o.size_ofm
              << std::setw(12) << o.size_fltr << ToString(o.role) << "\n";
  }
  std::cout << "\ndetected " << a.observations.size()
            << " layers (paper's AlexNet: 8)\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return a.observations.size() == 8 ? 0 : 1;
}
