// Figure 7 reproduction: weight/bias ratios of all 96 CONV1 filters of a
// compressed AlexNet-like first layer, recovered through the zero-pruning
// side channel. Paper: zero weights detected; max ratio error < 2^-10.
//
// CONV1 is fused conv(11x11/4) + ReLU + maxpool(3/2). Filters with a
// negative bias leak at the standard threshold; filters with a positive
// bias are blind at threshold 0 (every pooled window holds relu(b) > 0), so
// the attack uses the accelerator's tunable threshold (Minerva-style knob,
// paper §4.1 last paragraph): it first locates the bias by pruning the
// baseline away, then recovers ratios in effective-bias units.
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "attack/weights/attack.h"
#include "bench_util.h"
#include "models/zoo.h"
#include "support/thread_pool.h"

int main() {
  using namespace sc;
  bench::Banner("Figure 7: CONV1 weight/bias recovery via zero pruning");

  const models::CompressedConv1 secret = models::MakeCompressedConv1Weights();

  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 3;
  spec.in_width = 227;
  spec.filter = 11;
  spec.stride = 4;
  spec.pad = 0;
  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 3;
  spec.pool_stride = 2;
  spec.relu_before_pool = true;
  spec.has_threshold_knob = true;

  attack::SparseConvOracle oracle(spec, secret.weights, secret.bias);
  attack::WeightAttackConfig cfg;

  // Victim and oracle setup is not part of the adversary's measured
  // effort; the timer covers the recovery sweep only.
  bench::Timer timer;

  float max_err = 0.0f;
  std::size_t zero_hits = 0, zero_misses = 0, false_zeros = 0;
  std::size_t failed_positions = 0;
  std::size_t knob_filters = 0;
  std::uint64_t total_queries = 0;

  std::ofstream csv("fig7_ratios.csv");
  csv << "filter,channel,i,j,true_ratio,recovered_ratio\n";

  // Per-filter recovery runs are independent given a cloned oracle per
  // worker, so the 96 sweeps spread across the thread pool; aggregation
  // below stays in filter order, keeping the CSV byte-identical to the
  // serial run.
  struct FilterOutcome {
    attack::RecoveredFilter rec;
    double eff_bias_scale = 1.0;  // recovered ratios are w / (b*scale-ish)
    bool recovered = false;       // false: bias search failed, filter skipped
    bool knob_used = false;
  };
  std::vector<FilterOutcome> outcomes(96);

  auto recover_one = [&](attack::ZeroCountOracle& orc, int k) {
    FilterOutcome out;
    const float b = secret.bias.at(k);
    attack::WeightAttack base_attack(orc, spec, cfg);
    if (b > 0.0f) {
      // Blind at threshold 0: find the bias via the knob, then re-run the
      // ratio attack just above it (effective bias b - T < 0).
      const auto b_hat = base_attack.FindBiasViaThreshold(k);
      if (!b_hat) return out;
      out.knob_used = true;
      const float t_used = *b_hat * 1.5f + 0.05f;
      orc.SetActivationThreshold(t_used);
      attack::SparseConvOracle::StageSpec elevated = spec;
      elevated.relu_threshold = t_used;
      attack::WeightAttack attack(orc, elevated, cfg);
      out.rec = attack.RecoverFilter(k);
      orc.SetActivationThreshold(0.0f);
      // ratios are w / (b - T): convert to w / b with the recovered b.
      out.eff_bias_scale = (static_cast<double>(*b_hat) - t_used) /
                           static_cast<double>(*b_hat);
    } else {
      out.rec = base_attack.RecoverFilter(k);
    }
    out.recovered = true;
    return out;
  };

  support::ParallelFor(0, 96, 1, [&](std::int64_t lo, std::int64_t hi) {
    const std::unique_ptr<attack::ZeroCountOracle> clone = oracle.Clone();
    for (std::int64_t k = lo; k < hi; ++k)
      outcomes[static_cast<std::size_t>(k)] =
          recover_one(*clone, static_cast<int>(k));
  });

  for (int k = 0; k < 96; ++k) {
    const float b = secret.bias.at(k);
    const FilterOutcome& out = outcomes[static_cast<std::size_t>(k)];
    if (!out.recovered) {
      failed_positions += 3 * 11 * 11;
      continue;
    }
    if (out.knob_used) ++knob_filters;
    const attack::RecoveredFilter& rec = out.rec;
    const double eff_bias_scale = out.eff_bias_scale;
    total_queries += rec.queries;

    for (int c = 0; c < 3; ++c) {
      for (int i = 0; i < 11; ++i) {
        for (int j = 0; j < 11; ++j) {
          const auto id = static_cast<std::size_t>((c * 11 + i) * 11 + j);
          if (rec.failed[id]) {
            ++failed_positions;
            continue;
          }
          const float truth = secret.weights.at(k, c, i, j) / b;
          const float recovered =
              static_cast<float>(rec.ratio.at(c, i, j) * eff_bias_scale);
          csv << k << ',' << c << ',' << i << ',' << j << ',' << truth
              << ',' << recovered << '\n';
          const bool truly_zero = secret.weights.at(k, c, i, j) == 0.0f;
          if (truly_zero) {
            rec.is_zero[id] ? ++zero_hits : ++zero_misses;
          } else if (rec.is_zero[id]) {
            ++false_zeros;
          }
          max_err = std::max(max_err, std::fabs(recovered - truth));
        }
      }
    }
  }

  const std::size_t total = 96 * 3 * 11 * 11;
  std::cout << "filters: 96 (11x11x3 each), positions: " << total << "\n";
  std::cout << "positive-bias filters recovered via threshold knob: "
            << knob_filters << "\n";
  std::cout << "failed positions: " << failed_positions << " ("
            << 100.0 * static_cast<double>(failed_positions) /
                   static_cast<double>(total)
            << "%)\n";
  std::cout << "zero weights detected: " << zero_hits << ", missed "
            << zero_misses << ", false zeros " << false_zeros << "\n";
  std::cout << "max |w/b error| over recovered positions: " << max_err
            << " (paper: < 2^-10 = " << 1.0 / 1024.0 << ")\n";
  std::cout << "oracle queries: " << total_queries << "\n";
  std::cout << "ratio table written to fig7_ratios.csv\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return max_err < 1.0f / 1024.0f ? 0 : 1;
}
