// Shared helpers for the table/figure reproduction binaries.
#ifndef SC_BENCH_BENCH_UTIL_H_
#define SC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <iostream>
#include <string>

#include "accel/accelerator.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "support/rng.h"
#include "trace/trace.h"

namespace sc::bench {

inline nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

// Runs the victim on the simulated accelerator and returns its bus trace.
inline trace::Trace CaptureTrace(const nn::Network& net, std::uint64_t seed,
                                 accel::RunResult* run_out = nullptr) {
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;
  accel::RunResult run = accel.Run(net, RandomInput(net.input_shape(), seed),
                                   &tr);
  if (run_out) *run_out = std::move(run);
  return tr;
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

// Dumps the process-wide metrics registry next to the bench's CSV output.
// No-op unless SC_METRICS collection is on, so default runs produce
// byte-identical artifacts and no extra files.
inline void ExportMetrics(const std::string& path = "metrics.json") {
  if (!obs::Enabled()) return;
  obs::Registry::Get().SaveJsonFile(path);
  std::cout << "metrics written to " << path << "\n";
}

}  // namespace sc::bench

#endif  // SC_BENCH_BENCH_UTIL_H_
