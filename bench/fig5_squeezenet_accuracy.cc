// Figure 5 reproduction: top-5 validation accuracy of the SqueezeNet
// structure candidates after a *short* (3-epoch) training run — the paper's
// point is that even brief training separates promising candidates from
// weak ones, so the search over candidates is cheap.
#include <iostream>

#include "bench_util.h"
#include "candidate_training.h"
#include "models/zoo.h"

int main() {
  using namespace sc;
  bench::Banner("Figure 5: 3-epoch accuracy of SqueezeNet candidates");
  bench::Timer timer;

  nn::Network victim = models::MakeSqueezeNet();
  trace::Trace tr = bench::CaptureTrace(victim, 31);

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 224 * 224;
  cfg.search.known_input_width = 224;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  cfg.assume_identical_modules = true;  // the paper's fire-module reduction
  const attack::StructureAttackResult r = attack::RunStructureAttack(tr, cfg);
  std::cout << "candidates (identical fire modules assumed): "
            << r.num_structures() << " (paper: 9)\n";
  if (r.num_structures() == 0) return 1;

  // Spatially-scaled proxy (DESIGN.md §2): candidates train at 1/4 the
  // spatial extent with Adam; the structural differences being ranked are
  // preserved.
  nn::train::DatasetConfig data;
  data.depth = 3;
  data.width = 56;
  data.num_classes = 10;
  data.noise = 0.30f;
  data.jitter = 0.12f;
  data.seed = 4;

  bench::RankingConfig rank_cfg;
  rank_cfg.channel_divisor = 12;
  rank_cfg.min_channels = 6;   // keep squeeze bottlenecks trainable
  rank_cfg.spatial_divisor = 4;
  rank_cfg.num_classes = 10;
  rank_cfg.train_samples = 240;
  rank_cfg.test_samples = 80;
  rank_cfg.epochs = 3;  // the paper's short-training setting

  // Truth detection: compare against the real SqueezeNet geometry is
  // involved (26 conv segments); rank all candidates and report the spread,
  // which is the figure's claim.
  const auto ranked = bench::RankCandidates(
      r, data, rank_cfg, /*truth_index=*/r.num_structures());

  std::cout << "\ntop-5 accuracy series (sorted by top-1):\n";
  for (std::size_t pos = 0; pos < ranked.size(); ++pos)
    std::cout << "  rank " << pos + 1 << ": candidate " << ranked[pos].index
              << " top-5 " << ranked[pos].top5 << " top-1 "
              << ranked[pos].top1 << "\n";

  const float spread = ranked.front().top1 - ranked.back().top1;
  std::cout << "\naccuracy spread after 3 epochs: " << spread
            << " (paper: clearly separated candidates; shape check: > 0)\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return spread >= 0.0f ? 0 : 1;
}
