// Shared machinery for the candidate-ranking figures (paper Figs. 4 and 5):
// instantiate each reverse-engineered structure at reduced channel width,
// train briefly on the synthetic dataset, and rank by validation accuracy.
//
// Substitution note (DESIGN.md §2): the paper trains candidates on
// ImageNet; we train channel-scaled candidates on a deterministic synthetic
// task. What the experiment demonstrates — candidates differ measurably in
// achievable accuracy so a short training run filters them — is preserved.
#ifndef SC_BENCH_CANDIDATE_TRAINING_H_
#define SC_BENCH_CANDIDATE_TRAINING_H_

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "attack/structure/pipeline.h"
#include "nn/init.h"
#include "nn/train/trainer.h"

namespace sc::bench {

struct RankingConfig {
  int channel_divisor = 16;
  int min_channels = 1;
  int spatial_divisor = 1;
  int num_classes = 10;
  int train_samples = 96;
  int test_samples = 48;
  int epochs = 2;
  // Adam: narrow, deep candidate proxies collapse under plain SGD.
  float learning_rate = 2e-3f;
  int batch_size = 8;
  std::uint64_t seed = 5;
};

struct RankedCandidate {
  std::size_t index = 0;
  float top1 = 0.0f;
  float top5 = 0.0f;
  float loss = 0.0f;
  bool is_truth = false;
};

inline std::vector<RankedCandidate> RankCandidates(
    const attack::StructureAttackResult& attack_result,
    const nn::train::DatasetConfig& data_cfg, const RankingConfig& cfg,
    std::size_t truth_index) {
  nn::train::SyntheticDataset dataset(data_cfg);
  const auto train_set = dataset.MakeTrainSet(cfg.train_samples);
  const auto test_set = dataset.MakeTestSet(cfg.test_samples);

  std::vector<RankedCandidate> ranked;
  const auto& structures = attack_result.search.structures;
  for (std::size_t i = 0; i < structures.size(); ++i) {
    attack::InstantiateOptions opts;
    opts.channel_divisor = cfg.channel_divisor;
    opts.min_channels = cfg.min_channels;
    opts.spatial_divisor = cfg.spatial_divisor;
    opts.num_classes = cfg.num_classes;
    nn::Network net = attack::InstantiateCandidate(
        attack_result.analysis.observations, structures[i], opts);
    Rng rng(cfg.seed);
    nn::InitNetwork(net, rng);

    nn::train::TrainConfig tcfg;
    tcfg.epochs = cfg.epochs;
    tcfg.batch_size = cfg.batch_size;
    tcfg.optimizer = nn::train::Optimizer::kAdam;
    tcfg.adam.learning_rate = cfg.learning_rate;
    nn::train::Train(net, train_set, tcfg);
    const nn::train::EvalResult eval =
        nn::train::Evaluate(net, test_set);

    RankedCandidate rc;
    rc.index = i;
    rc.top1 = eval.top1;
    rc.top5 = eval.top5;
    rc.loss = eval.mean_loss;
    rc.is_truth = (i == truth_index);
    ranked.push_back(rc);
    std::cout << "  candidate " << std::setw(3) << i << ": top-1 "
              << std::fixed << std::setprecision(3) << eval.top1
              << "  top-5 " << eval.top5 << (rc.is_truth ? "  <= truth" : "")
              << "\n";
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.top1 > b.top1;
            });
  return ranked;
}

// Index of the structure matching the true geometry chain, or the count if
// absent.
inline std::size_t FindTruthIndex(
    const attack::StructureAttackResult& r,
    const std::vector<nn::LayerGeometry>& truth) {
  for (std::size_t i = 0; i < r.search.structures.size(); ++i) {
    const auto& layers = r.search.structures[i].layers;
    if (layers.size() != truth.size()) continue;
    bool all = true;
    for (std::size_t k = 0; k < truth.size() && all; ++k) {
      nn::LayerGeometry t = truth[k];
      if (t.has_pool()) t.pool = nn::PoolKind::kMax;
      all = layers[k].geom == t;
    }
    if (all) return i;
  }
  return r.search.structures.size();
}

}  // namespace sc::bench

#endif  // SC_BENCH_CANDIDATE_TRAINING_H_
