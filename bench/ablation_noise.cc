// Noise ablation: how much measurement fault injection the self-healing
// attacks absorb (DESIGN.md §8). Sweeps a multiplier over the documented
// reference noise levels (sim::ReferenceTraceNoise / ReferenceOracleNoise)
// and reports, per level,
//   - structure: whether the K-acquisition consensus still reproduces the
//     clean candidate set, the slack rung used and the mean per-layer
//     confidence;
//   - weights: failed positions, max |w/b| ratio error and the acquisition
//     overhead (samples per logical query) of the voting attack.
// Results land in ablation_noise.csv; the nightly CI job runs this as a
// smoke check.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <vector>

#include "attack/structure/robust.h"
#include "attack/weights/robust.h"
#include "bench_util.h"
#include "models/zoo.h"
#include "sim/noise.h"
#include "sim/noisy_oracle.h"

int main() {
  using namespace sc;
  bench::Banner("Noise ablation: recovery vs fault-injection level");
  bench::Timer timer;

  constexpr std::uint64_t kSeed = 1;
  constexpr int kAcquisitions = 5;
  const std::vector<double> levels = {0.0, 0.5, 1.0, 2.0, 4.0};

  // Structure victim: LeNet (small enough for a smoke sweep).
  nn::Network net = models::MakeLeNet(3);
  const trace::Trace clean = bench::CaptureTrace(net, 7);
  attack::RobustStructureConfig scfg;
  scfg.attack.analysis.known_input_elems = 28 * 28;
  scfg.attack.search.known_input_width = 28;
  scfg.attack.search.known_input_depth = 1;
  scfg.attack.search.known_output_classes = 10;
  const attack::StructureAttackResult exact =
      attack::RunStructureAttack(clean, scfg.attack);

  // Weight victim: small dense conv stage with positive biases.
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 2;
  spec.in_width = 12;
  spec.filter = 3;
  spec.stride = 1;
  spec.pad = 0;
  nn::Tensor weights(nn::Shape{4, 2, 3, 3});
  nn::Tensor bias(nn::Shape{4});
  {
    Rng rng(11);
    for (std::size_t i = 0; i < weights.numel(); ++i)
      weights[i] = rng.GaussianF(0.6f);
    for (int k = 0; k < 4; ++k) bias.at(k) = rng.UniformF(0.1f, 0.5f);
  }
  // The exact oracle is level-independent; only the noise wrapper changes
  // per rung, so construct the victim once outside the sweep.
  attack::SparseConvOracle oracle(spec, weights, bias);

  std::ofstream csv("ablation_noise.csv");
  csv << "noise_multiplier,structures_match_clean,slack_used,"
         "mean_layer_confidence,failed_positions,max_ratio_error,"
         "samples_per_query\n";

  for (const double mul : levels) {
    // --- structure attack over K noisy acquisitions ---
    sim::TraceNoiseConfig tn = sim::ReferenceTraceNoise(kSeed);
    tn.drop_prob *= mul;
    tn.jitter_prob = std::min(1.0, tn.jitter_prob * mul);
    tn.split_prob = std::min(1.0, tn.split_prob * mul);
    tn.merge_prob = std::min(1.0, tn.merge_prob * mul);
    tn.spurious_prob = std::min(1.0, tn.spurious_prob * mul);
    const sim::TraceNoiseModel noise(tn);
    std::vector<trace::Trace> acq;
    for (int k = 0; k < kAcquisitions; ++k)
      acq.push_back(noise.ApplyNth(clean, static_cast<std::uint64_t>(k)));
    const attack::RobustStructureResult rs =
        attack::RunRobustStructureAttack(acq, scfg);

    bool match = rs.search.structures.size() == exact.search.structures.size();
    for (std::size_t s = 0; match && s < rs.search.structures.size(); ++s) {
      const auto& la = rs.search.structures[s].layers;
      const auto& lb = exact.search.structures[s].layers;
      match = la.size() == lb.size();
      for (std::size_t i = 0; match && i < la.size(); ++i)
        match = la[i].geom == lb[i].geom;
    }
    double mean_conf = 0.0;
    for (const attack::LayerConsensus& lc : rs.consensus)
      mean_conf += lc.confidence();
    if (!rs.consensus.empty())
      mean_conf /= static_cast<double>(rs.consensus.size());

    // --- weight attack through a noisy oracle ---
    sim::OracleNoiseConfig on = sim::ReferenceOracleNoise(kSeed);
    on.count_noise_prob = std::min(1.0, on.count_noise_prob * mul);
    on.failure_prob = std::min(1.0, on.failure_prob * mul);
    sim::NoisyOracle noisy(oracle, on);
    attack::RobustWeightConfig wcfg = attack::ReferenceRobustWeightConfig();
    if (mul > 1.0) wcfg.voting.votes = 5;  // wider vote for the loud rungs

    std::size_t failed = 0;
    float max_err = 0.0f;
    double samples_per_query = 1.0;
    try {
      const attack::RobustWeightResult rw =
          attack::RecoverAllFiltersRobust(noisy, spec, wcfg);
      for (int k = 0; k < 4; ++k) {
        const auto& rec = rw.filters[static_cast<std::size_t>(k)];
        for (int c = 0; c < 2; ++c)
          for (int i = 0; i < 3; ++i)
            for (int j = 0; j < 3; ++j) {
              const auto id = static_cast<std::size_t>((c * 3 + i) * 3 + j);
              if (rec.failed[id]) {
                ++failed;
                continue;
              }
              const float truth = weights.at(k, c, i, j) / bias.at(k);
              max_err = std::max(
                  max_err, std::fabs(rec.ratio.at(c, i, j) - truth));
            }
      }
      if (rw.total_queries > 0)
        samples_per_query = static_cast<double>(rw.total_samples) /
                            static_cast<double>(rw.total_queries);
    } catch (const Error&) {
      failed = 4 * 2 * 3 * 3;  // retry budget exhausted: total loss
      max_err = std::numeric_limits<float>::infinity();
    }

    csv << mul << ',' << (match ? 1 : 0) << ',' << rs.slack_used << ','
        << mean_conf << ',' << failed << ',' << max_err << ','
        << samples_per_query << '\n';
    std::cout << "x" << mul << ": structures " << (match ? "match" : "DIVERGE")
              << " (slack " << rs.slack_used << ", conf " << mean_conf
              << "), weights failed=" << failed << " max_err=" << max_err
              << " samples/query=" << samples_per_query << "\n";
  }

  std::cout << "written to ablation_noise.csv\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return 0;
}
