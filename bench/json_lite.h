// Minimal JSON reader for the bench tooling (no external deps).
//
// Supports exactly what BENCH_*.json files contain: objects, arrays,
// strings without exotic escapes, numbers, booleans, null. Errors throw
// sc::Error with a byte offset. Not a general-purpose parser — the CI
// perf gate reads files this repo itself wrote.
#ifndef SC_BENCH_JSON_LITE_H_
#define SC_BENCH_JSON_LITE_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "support/check.h"

namespace sc::bench::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const Value& At(const std::string& key) const {
    SC_CHECK_MSG(Has(key), "missing JSON key '" << key << "'");
    return object.at(key);
  }
  double Num(const std::string& key) const {
    const Value& v = At(key);
    SC_CHECK_MSG(v.kind == Kind::kNumber,
                 "JSON key '" << key << "' is not a number");
    return v.number;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value Parse() {
    Value v = ParseValue();
    SkipWs();
    SC_CHECK_MSG(i_ == s_.size(), "trailing JSON at offset " << i_);
    return v;
  }

 private:
  void SkipWs() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  char Peek() {
    SkipWs();
    SC_CHECK_MSG(i_ < s_.size(), "unexpected end of JSON");
    return s_[i_];
  }
  void Expect(char c) {
    SC_CHECK_MSG(Peek() == c, "expected '" << c << "' at offset " << i_
                                           << ", got '" << s_[i_] << "'");
    ++i_;
  }
  bool Consume(char c) {
    if (i_ < s_.size() && Peek() == c) {
      ++i_;
      return true;
    }
    return false;
  }
  bool ConsumeWord(const char* w) {
    const std::size_t len = std::string(w).size();
    if (s_.compare(i_, len, w) == 0) {
      i_ += len;
      return true;
    }
    return false;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      SC_CHECK_MSG(i_ < s_.size(), "unterminated JSON string");
      const char c = s_[i_++];
      if (c == '"') break;
      if (c == '\\') {
        SC_CHECK_MSG(i_ < s_.size(), "unterminated escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default:
            SC_CHECK_MSG(false, "unsupported escape '\\" << e << "'");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value ParseValue() {
    const char c = Peek();
    Value v;
    if (c == '{') {
      ++i_;
      v.kind = Value::Kind::kObject;
      if (!Consume('}')) {
        do {
          std::string key = ParseString();
          Expect(':');
          v.object.emplace(std::move(key), ParseValue());
        } while (Consume(','));
        Expect('}');
      }
    } else if (c == '[') {
      ++i_;
      v.kind = Value::Kind::kArray;
      if (!Consume(']')) {
        do {
          v.array.push_back(ParseValue());
        } while (Consume(','));
        Expect(']');
      }
    } else if (c == '"') {
      v.kind = Value::Kind::kString;
      v.str = ParseString();
    } else if (ConsumeWord("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
    } else if (ConsumeWord("false")) {
      v.kind = Value::Kind::kBool;
      v.boolean = false;
    } else if (ConsumeWord("null")) {
      v.kind = Value::Kind::kNull;
    } else {
      v.kind = Value::Kind::kNumber;
      char* end = nullptr;
      v.number = std::strtod(s_.c_str() + i_, &end);
      SC_CHECK_MSG(end != s_.c_str() + i_,
                   "bad JSON number at offset " << i_);
      i_ = static_cast<std::size_t>(end - s_.c_str());
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

inline Value Parse(const std::string& text) { return Parser(text).Parse(); }

}  // namespace sc::bench::json

#endif  // SC_BENCH_JSON_LITE_H_
