// Forwarding header: the bench JSON reader was promoted to
// src/support/json.h (the campaign checkpoint subsystem needs it too).
// Bench code keeps using sc::bench::json::{Value, Parser, Parse}.
#ifndef SC_BENCH_JSON_LITE_H_
#define SC_BENCH_JSON_LITE_H_

#include "support/json.h"

namespace sc::bench {
namespace json = ::sc::support::json;
}  // namespace sc::bench

#endif  // SC_BENCH_JSON_LITE_H_
