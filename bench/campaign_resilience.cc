// Campaign-resilience harness (DESIGN.md §12): proves the checkpoint/resume
// contract end to end, in two modes.
//
// Self-test (no arguments, CI-friendly): runs a LeNet campaign three ways —
// uninterrupted, killed after K completed units (cooperative cancel), and
// resumed from the killed run's checkpoint — then byte-compares the final
// artifacts. Exit 0 iff the resumed artifacts are identical to the
// uninterrupted run's and no completed unit was re-executed.
//
// Driver mode (`--run`): runs one campaign with SIGTERM/SIGINT wired to
// CancelSource::RequestCancel (a lock-free store, safe in a handler). The
// nightly resume-equivalence job SIGTERMs this process mid-campaign, checks
// for exit code 3 (graceful partial result), re-runs it to completion, and
// diffs the artifacts against an uninterrupted reference.
//
//   campaign_resilience --run --victim lenet --checkpoint ck.json
//       [--outdir DIR] [--seed N] [--filters N] [--deadline SECONDS]
//       [--dataflow weight_stationary|output_stationary]
//
// Exit codes: 0 complete, 1 self-test mismatch / usage error, 3 partial
// (cancelled, deadline, or budget-exhausted — checkpoint holds all done
// units).
#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "accel/dataflow.h"
#include "campaign/campaign.h"
#include "support/check.h"

namespace fs = std::filesystem;
using namespace sc;

namespace {

// The handler may only touch async-signal-safe state: one atomic store.
support::CancelSource g_cancel;

extern "C" void HandleStopSignal(int) { g_cancel.RequestCancel(); }

void PrintSummary(const campaign::CampaignResult& r) {
  std::cout << "units: " << r.units.size() << "  done: " << r.done
            << " (from checkpoint: " << r.from_checkpoint << ")"
            << "  transient: " << r.failed_transient
            << "  fatal: " << r.failed_fatal << "  cancelled: " << r.cancelled
            << "  skipped: " << r.skipped << "\n"
            << "complete: " << (r.complete ? "yes" : "no")
            << "  confidence: " << r.overall_confidence << "\n";
  for (const campaign::UnitResult& u : r.units)
    if (!u.error.empty())
      std::cout << "  [" << campaign::ToString(u.status) << "] " << u.id
                << ": " << u.error << "\n";
}

int RunDriver(int argc, char** argv) {
  // Parse every flag first, then build the config once: MakeVictimCampaign
  // derives the noise seeds from the campaign seed, so --seed and --victim
  // must both be known before it runs (in any flag order).
  std::string victim = "lenet";
  std::uint64_t seed = 1;
  int filters = 2;
  std::string checkpoint_path;
  std::string output_dir;
  double deadline_s = 0.0;
  accel::Dataflow dataflow = accel::DefaultDataflow();
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      SC_CHECK_MSG(i + 1 < argc, "missing value after " << a);
      return argv[++i];
    };
    if (a == "--victim") {
      victim = next();
    } else if (a == "--checkpoint") {
      checkpoint_path = next();
    } else if (a == "--outdir") {
      output_dir = next();
    } else if (a == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (a == "--filters") {
      filters = std::atoi(next().c_str());
    } else if (a == "--deadline") {
      deadline_s = std::atof(next().c_str());
    } else if (a == "--dataflow") {
      const std::string v = next();
      SC_CHECK_MSG(accel::ParseDataflow(v.c_str(), &dataflow),
                   "bad --dataflow '" << v << "'");
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return 1;
    }
  }
  SC_CHECK_MSG(!checkpoint_path.empty(), "--run requires --checkpoint PATH");

  campaign::CampaignConfig cfg = campaign::MakeVictimCampaign(victim, seed);
  cfg.dataflow = dataflow;
  cfg.max_weight_filters = filters;
  cfg.checkpoint_path = checkpoint_path;
  cfg.output_dir = output_dir;

  cfg.cancel = g_cancel.token();
  if (deadline_s > 0)
    g_cancel.SetTimeout(std::chrono::milliseconds(
        static_cast<long long>(deadline_s * 1000.0)));
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  const campaign::CampaignResult r = campaign::RunCampaign(cfg);
  PrintSummary(r);
  return r.complete ? 0 : 3;
}

int SelfTestOne(accel::Dataflow dataflow) {
  const fs::path dir = fs::temp_directory_path() / "sc_campaign_resilience";
  fs::create_directories(dir);
  constexpr int kKillAfter = 2;
  std::cout << "=== dataflow: " << accel::ToString(dataflow) << " ===\n";

  campaign::CampaignConfig base = campaign::MakeVictimCampaign("lenet", 1);
  base.dataflow = dataflow;
  base.max_weight_filters = 2;

  std::cout << "[1/3] uninterrupted reference run\n";
  const campaign::CampaignResult ref = campaign::RunCampaign(base);
  SC_CHECK_MSG(ref.complete, "reference campaign did not complete");

  std::cout << "[2/3] killed run (cancel after " << kKillAfter
            << " completed units)\n";
  campaign::CampaignConfig killed = base;
  killed.checkpoint_path = (dir / "kill.json").string();
  fs::remove(killed.checkpoint_path);
  support::CancelSource source;
  killed.cancel = source.token();
  std::atomic<int> finished{0};
  killed.on_unit_finished = [&](const std::string&) {
    if (finished.fetch_add(1) + 1 >= kKillAfter) source.RequestCancel();
  };
  const campaign::CampaignResult partial = campaign::RunCampaign(killed);
  PrintSummary(partial);
  SC_CHECK_MSG(!partial.complete, "kill did not interrupt the campaign");
  SC_CHECK_MSG(partial.done >= kKillAfter, "lost completed units");

  std::cout << "[3/3] resumed run\n";
  campaign::CampaignConfig resume = base;
  resume.checkpoint_path = killed.checkpoint_path;
  const campaign::CampaignResult resumed = campaign::RunCampaign(resume);
  PrintSummary(resumed);

  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    std::cout << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
    if (!ok) ++failures;
  };
  expect(resumed.complete, "resumed campaign completes");
  expect(resumed.from_checkpoint == partial.done,
         "no completed unit was re-executed");
  expect(resumed.structure_csv == ref.structure_csv,
         "structure CSV byte-identical to uninterrupted run");
  expect(resumed.filter_csv == ref.filter_csv,
         "filter-ratio CSV byte-identical to uninterrupted run");
  expect(!ref.filter_csv.empty(), "weight phase produced artifacts");

  fs::remove(killed.checkpoint_path);
  std::cout << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}

// The kill/resume byte-identity contract must hold per backend.
int SelfTest() {
  int failures = 0;
  failures += SelfTestOne(accel::Dataflow::kWeightStationary);
  failures += SelfTestOne(accel::Dataflow::kOutputStationary);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && std::string(argv[1]) == "--run") return RunDriver(argc, argv);
    return SelfTest();
  } catch (const std::exception& e) {
    std::cerr << "campaign_resilience: " << e.what() << "\n";
    return 1;
  }
}
