// Attack-vs-defense evaluation matrix (DESIGN.md §10).
//
// Runs every shipped defense at every strength against the structure
// attack, the robust (consensus) structure attack and the weight attack,
// writes the scorecard to defense_matrix.csv (+ metrics.json with
// SC_METRICS=1), prints a summary table, and verifies the headline
// defense claims in its exit code:
//
//   - undefended: the structure attack finds the true LeNet architecture
//     uniquely top-ranked, and the weight attack recovers every filter;
//   - fixed-size RLE padding: the weight attack recovers 0 filters;
//   - constant-rate shaping: the true structure is no longer uniquely
//     top-ranked on LeNet;
//   - every cell reports its traffic / event / latency overhead.
//
// Flags: --lenet-only (skip ConvNet; the nightly CI smoke), --alexnet
// (add the Table-3-scale victim; minutes).
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "defense/eval.h"

int main(int argc, char** argv) {
  using namespace sc;
  bench::Banner("Defense matrix: attacks vs defenses");

  defense::EvalConfig cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--lenet-only") == 0) cfg.convnet = false;
    if (std::strcmp(argv[i], "--alexnet") == 0) cfg.alexnet = true;
  }

  bench::Timer timer;
  const defense::EvalMatrix matrix = defense::RunDefenseMatrix(cfg);

  std::ofstream csv("defense_matrix.csv");
  defense::WriteMatrixCsv(csv, matrix);

  std::cout << std::left << std::setw(11) << "victim" << std::setw(18)
            << "attack" << std::setw(13) << "defense" << std::setw(8)
            << "strength" << std::setw(14) << "outcome" << std::setw(11)
            << "candidates" << std::setw(6) << "rank" << std::setw(5)
            << "top" << std::setw(10) << "filters" << std::setw(9)
            << "traffic" << "latency\n";
  for (const defense::EvalCell& c : matrix.cells) {
    std::ostringstream filters;
    if (c.attack == "weight")
      filters << c.filters_recovered << "/" << c.filters_total;
    else
      filters << "-";
    std::cout << std::left << std::setw(11) << c.victim << std::setw(18)
              << c.attack << std::setw(13) << ToString(c.kind)
              << std::setw(8) << c.strength << std::setw(14) << c.outcome
              << std::setw(11) << c.candidates << std::setw(6)
              << c.truth_rank << std::setw(5)
              << (c.truth_unique_top ? "yes" : "no") << std::setw(10)
              << filters.str() << std::setw(9) << std::fixed
              << std::setprecision(2) << c.traffic_overhead
              << c.latency_overhead << "\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\nmatrix written to defense_matrix.csv ("
            << matrix.cells.size() << " cells, " << std::fixed
            << std::setprecision(1) << timer.Seconds() << " s)\n";

  // Headline claims — the acceptance criteria of the defense suite.
  bool ok = true;
  auto claim = [&](bool cond, const std::string& what) {
    std::cout << (cond ? "  [ok] " : "  [FAIL] ") << what << "\n";
    ok = ok && cond;
  };
  bool none_unique_top = false, shaping_unique_top = false;
  bool shaping_seen = false;
  int none_filters = -1, none_total = 0, rle_filters = -1, rle_total = 0;
  bool overheads_present = true;
  for (const defense::EvalCell& c : matrix.cells) {
    if (c.victim == "lenet" && c.attack == "structure") {
      if (c.kind == defense::DefenseKind::kNone)
        none_unique_top = c.truth_unique_top;
      if (c.kind == defense::DefenseKind::kShaping) {
        shaping_seen = true;
        shaping_unique_top = shaping_unique_top || c.truth_unique_top;
      }
    }
    if (c.attack == "weight") {
      if (c.kind == defense::DefenseKind::kNone) {
        none_filters = c.filters_recovered;
        none_total = c.filters_total;
      }
      if (c.kind == defense::DefenseKind::kRlePadding) {
        rle_filters = c.filters_recovered;
        rle_total = c.filters_total;
      }
    }
    overheads_present = overheads_present && c.traffic_overhead > 0.0 &&
                        c.event_overhead > 0.0 && c.latency_overhead > 0.0;
  }
  std::cout << "\n";
  claim(none_unique_top,
        "undefended: true LeNet structure uniquely top-ranked");
  claim(none_total > 0 && none_filters == none_total,
        "undefended: weight attack recovers every filter");
  claim(shaping_seen && !shaping_unique_top,
        "shaping: true structure no longer uniquely top-ranked");
  claim(rle_filters == 0 && rle_total > 0,
        "rle_padding: weight attack recovers 0 filters");
  claim(overheads_present, "every cell reports overheads");

  bench::ExportMetrics();
  return ok ? 0 : 1;
}
