// Figure 4 reproduction: validation accuracy of every structure candidate
// the attack recovers for AlexNet. The adversary trains each candidate
// briefly and keeps the best — the figure's payload is that accuracies
// spread widely and the true structure ranks near the top.
#include <iostream>

#include "bench_util.h"
#include "candidate_training.h"
#include "models/zoo.h"

int main() {
  using namespace sc;
  bench::Banner("Figure 4: accuracy ranking of AlexNet candidates");
  bench::Timer timer;

  nn::Network victim = models::MakeAlexNet(1);
  trace::Trace tr = bench::CaptureTrace(victim, 21);

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 227 * 227;
  cfg.search.known_input_width = 227;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  const attack::StructureAttackResult r = attack::RunStructureAttack(tr, cfg);
  std::cout << "candidates: " << r.num_structures() << " (paper: 24)\n";
  if (r.num_structures() == 0) return 1;

  const std::vector<nn::LayerGeometry> truth = {
      {227, 3, 27, 96, 11, 4, 0, nn::PoolKind::kMax, 3, 2, 0},
      {27, 96, 13, 256, 5, 1, 2, nn::PoolKind::kMax, 3, 2, 0},
      {13, 256, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 13, 384, 3, 1, 1, nn::PoolKind::kNone, 0, 0, 0},
      {13, 384, 6, 256, 3, 1, 1, nn::PoolKind::kMax, 3, 2, 0},
      {6, 256, 1, 4096, 6, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 4096, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
      {1, 4096, 1, 1000, 1, 1, 0, nn::PoolKind::kNone, 0, 0, 0},
  };
  const std::size_t truth_index = bench::FindTruthIndex(r, truth);
  std::cout << "true structure is candidate #"
            << (truth_index < r.num_structures()
                    ? std::to_string(truth_index)
                    : std::string("<missing!>"))
            << "\n\ntraining " << r.num_structures()
            << " channel-scaled candidates (substitution: synthetic task, "
               "see DESIGN.md)\n";

  // Spatially-scaled proxy (DESIGN.md §2): 1/4 spatial extent, Adam.
  nn::train::DatasetConfig data;
  data.depth = 3;
  data.width = 56;
  data.num_classes = 10;
  data.noise = 0.30f;
  data.jitter = 0.12f;
  data.seed = 3;

  bench::RankingConfig rank_cfg;
  rank_cfg.channel_divisor = 12;
  rank_cfg.min_channels = 4;
  rank_cfg.spatial_divisor = 4;
  rank_cfg.train_samples = 240;
  rank_cfg.test_samples = 80;
  rank_cfg.epochs = 2;

  const auto ranked = bench::RankCandidates(r, data, rank_cfg, truth_index);

  std::cout << "\nranking (top-1), paper-style series:\n";
  std::size_t truth_rank = ranked.size();
  for (std::size_t pos = 0; pos < ranked.size(); ++pos) {
    std::cout << "  rank " << pos + 1 << ": candidate " << ranked[pos].index
              << " top-1 " << ranked[pos].top1
              << (ranked[pos].is_truth ? "  <= true structure" : "") << "\n";
    if (ranked[pos].is_truth) truth_rank = pos + 1;
  }
  const float best = ranked.front().top1;
  const float worst = ranked.back().top1;
  std::cout << "\nbest-vs-worst top-1 gap: " << best - worst
            << " (paper: 12.3% absolute; shape check: gap > 0)\n";
  std::cout << "true structure rank: " << truth_rank << "/" << ranked.size()
            << " (paper: 4/24)\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return (best > worst && truth_rank <= ranked.size()) ? 0 : 1;
}
