// Table 4 reproduction: the possible per-layer configurations for AlexNet's
// convolutional layers, as recovered from the simulated accelerator trace.
#include <fstream>
#include <iostream>

#include "attack/structure/pipeline.h"
#include "attack/structure/report.h"
#include "bench_util.h"
#include "models/zoo.h"

int main() {
  using namespace sc;
  bench::Banner("Table 4: possible AlexNet layer configurations");

  nn::Network net = models::MakeAlexNet(1);
  trace::Trace tr = bench::CaptureTrace(net, 11);

  // Time the attack itself, not victim construction / trace capture.
  bench::Timer timer;

  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 227 * 227;
  cfg.search.known_input_width = 227;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  const attack::StructureAttackResult r = attack::RunStructureAttack(tr, cfg);

  // Per-layer candidates appearing in at least one surviving structure
  // (the paper's table lists exactly those).
  const std::size_t total_rows =
      attack::PrintConfigTable(std::cout, r.search);
  {
    std::ofstream csv("table4_structures.csv");
    attack::WriteStructuresCsv(csv, r.search);
    std::cout << "full candidate set written to table4_structures.csv\n";
  }
  std::cout << "\nconv candidate rows: " << total_rows
            << " (paper Table 4: 13)\n";
  std::cout << "full structures: " << r.num_structures()
            << " (paper: 24)\n";
  std::cout << "elapsed: " << timer.Seconds() << " s\n";
  sc::bench::ExportMetrics();
  return r.num_structures() > 0 ? 0 : 1;
}
