// Continuous-benchmarking runner: named perf scenarios over the trace
// pipeline and the attacks, with a schema'd JSON report and a regression
// gate for CI.
//
// Usage:
//   bench_runner [--quick] [--reps N] [--only a,b,...] [--list]
//                [--out FILE] [--compare BASELINE] [--threshold F]
//
// Each scenario hoists all victim/input setup out of the timed region and
// times only the operation under study; sub-millisecond operations run a
// fixed inner-iteration batch per rep so a rep is long enough to measure.
// The report (default BENCH_6.json) carries min/median/stddev seconds per
// scenario plus build metadata:
//
//   {"schema": "sc-bench-v1", "bench_id": 6,
//    "build": {"compiler": "...", "build_type": "...", "threads": N},
//    "scenarios": {"fig3_trace_gen": {"reps": 10, "min_s": ...,
//                  "median_s": ..., "stddev_s": ...}, ...}}
//
// With --compare, the run exits non-zero if any scenario's median regresses
// more than --threshold (default 0.15 = 15%) over the baseline file's
// median — the contract of the perf-regression CI job (see ci.yml; the
// `perf-waiver` PR label skips the gate for intentional regressions).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "accel/synthesis_cache.h"
#include "attack/structure/pipeline.h"
#include "attack/structure/segmentation.h"
#include "attack/weights/attack.h"
#include "attack/weights/oracle.h"
#include "bench_util.h"
#include "campaign/campaign.h"
#include "defense/eval.h"
#include "models/zoo.h"
#include "sim/noise.h"
#include "store/reader.h"
#include "store/writer.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace {

using namespace sc;

struct ScenarioStats {
  int reps = 0;
  double min_s = 0.0;
  double median_s = 0.0;
  double stddev_s = 0.0;
};

struct Scenario {
  const char* name;
  const char* what;
  int inner;  // operations per timed rep (amortizes sub-ms operations)
  // Returns the operation to time; everything captured during this call is
  // setup and stays outside the measured region.
  std::function<std::function<void()>()> make;
};

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ScenarioStats Measure(const Scenario& sc, int reps) {
  const std::function<void()> op = sc.make();  // setup, untimed
  op();                                        // warm-up, untimed
  std::vector<double> t;
  t.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    for (int k = 0; k < sc.inner; ++k) op();
    t.push_back((Now() - t0) / sc.inner);
  }
  std::sort(t.begin(), t.end());
  ScenarioStats s;
  s.reps = reps;
  s.min_s = t.front();
  s.median_s = t[t.size() / 2];
  double mean = 0.0;
  for (double v : t) mean += v;
  mean /= static_cast<double>(t.size());
  double var = 0.0;
  for (double v : t) var += (v - mean) * (v - mean);
  s.stddev_s = t.size() > 1
                   ? std::sqrt(var / static_cast<double>(t.size() - 1))
                   : 0.0;
  return s;
}

// The AlexNet victim trace shared by the analysis-side scenarios; captured
// once per backend (setup) no matter how many scenarios run.
const trace::Trace& AlexNetTrace(
    accel::Dataflow d = accel::Dataflow::kWeightStationary) {
  static std::map<accel::Dataflow, trace::Trace> traces;
  auto it = traces.find(d);
  if (it != traces.end()) return it->second;
  nn::Network net = models::MakeAlexNet(1);
  accel::AcceleratorConfig cfg;
  cfg.dataflow = d;
  accel::Accelerator accel{cfg};
  trace::Trace tr;
  accel.Run(net, bench::RandomInput(net.input_shape(), 11), &tr);
  return traces.emplace(d, std::move(tr)).first->second;
}

attack::StructureAttackConfig AlexNetAttackConfig(
    accel::Dataflow d = accel::Dataflow::kWeightStationary) {
  attack::StructureAttackConfig cfg;
  cfg.analysis.known_input_elems = 3LL * 227 * 227;
  cfg.search.known_input_width = 227;
  cfg.search.known_input_depth = 3;
  cfg.search.known_output_classes = 1000;
  accel::AcceleratorConfig acfg;
  acfg.dataflow = d;
  cfg.search.macs_per_cycle = acfg.macs_per_cycle;
  cfg.search.bytes_per_cycle = acfg.bytes_per_cycle;
  cfg.search.schedule = accel::Accelerator{acfg}.schedule_model();
  return cfg;
}

std::vector<Scenario> AllScenarios() {
  return {
      {"fig3_trace_gen",
       "AlexNet inference on the simulated accelerator, full bus trace "
       "emitted into a pooled buffer (warm synthesis cache: reps replay "
       "the memoized address stream)",
       1,
       [] {
         auto net = std::make_shared<nn::Network>(models::MakeAlexNet(1));
         auto input = std::make_shared<nn::Tensor>(
             bench::RandomInput(net->input_shape(), 11));
         auto accel = std::make_shared<accel::Accelerator>(
             accel::AcceleratorConfig{});
         auto map =
             std::make_shared<accel::AddressMap>(accel->BuildMap(*net));
         auto cache = std::make_shared<accel::SynthesisCache>();
         auto tr = std::make_shared<trace::Trace>();
         return std::function<void()>([=] {
           tr->Clear();
           accel->Run(*net, *input, tr.get(), map.get(), cache.get());
         });
       }},
      {"raw_segmentation",
       "RAW-dependency segmentation (paper 3.1) of the AlexNet trace", 20,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         return std::function<void()>([&tr] {
           const auto segs = attack::SegmentTrace(tr);
           if (segs.empty()) std::abort();
         });
       }},
      {"trace_analysis",
       "full region discovery + segmentation + per-segment observation on "
       "the AlexNet trace",
       5,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         attack::AnalysisConfig cfg;
         cfg.known_input_elems = 3LL * 227 * 227;
         return std::function<void()>([&tr, cfg] {
           const auto a = attack::AnalyzeTrace(tr, cfg);
           if (a.segments.empty()) std::abort();
         });
       }},
      {"structure_search",
       "end-to-end structure attack on the AlexNet trace (Table 4 "
       "workload)",
       1,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         const attack::StructureAttackConfig cfg = AlexNetAttackConfig();
         return std::function<void()>([&tr, cfg] {
           const auto r = attack::RunStructureAttack(tr, cfg);
           if (r.num_structures() == 0) std::abort();
         });
       }},
      {"fig3_trace_gen_os",
       "AlexNet inference with the output-stationary backend, full bus "
       "trace emitted (per-backend perf baseline, warm synthesis cache)",
       1,
       [] {
         auto net = std::make_shared<nn::Network>(models::MakeAlexNet(1));
         auto input = std::make_shared<nn::Tensor>(
             bench::RandomInput(net->input_shape(), 11));
         accel::AcceleratorConfig acfg;
         acfg.dataflow = accel::Dataflow::kOutputStationary;
         auto accel = std::make_shared<accel::Accelerator>(acfg);
         auto map =
             std::make_shared<accel::AddressMap>(accel->BuildMap(*net));
         auto cache = std::make_shared<accel::SynthesisCache>();
         auto tr = std::make_shared<trace::Trace>();
         return std::function<void()>([=] {
           tr->Clear();
           accel->Run(*net, *input, tr.get(), map.get(), cache.get());
         });
       }},
      {"structure_search_os",
       "end-to-end structure attack on the output-stationary AlexNet "
       "trace (schedule-model search path)",
       1,
       [] {
         const trace::Trace& tr =
             AlexNetTrace(accel::Dataflow::kOutputStationary);
         const attack::StructureAttackConfig cfg =
             AlexNetAttackConfig(accel::Dataflow::kOutputStationary);
         return std::function<void()>([&tr, cfg] {
           const auto r = attack::RunStructureAttack(tr, cfg);
           if (r.num_structures() == 0) std::abort();
         });
       }},
      {"noisy_acquisition",
       "one noisy AlexNet acquisition: memoized trace synthesis plus a "
       "streaming reference-noise pass into a pooled output trace",
       1,
       [] {
         auto net = std::make_shared<nn::Network>(models::MakeAlexNet(1));
         auto input = std::make_shared<nn::Tensor>(
             bench::RandomInput(net->input_shape(), 11));
         auto accel = std::make_shared<accel::Accelerator>(
             accel::AcceleratorConfig{});
         auto map =
             std::make_shared<accel::AddressMap>(accel->BuildMap(*net));
         auto cache = std::make_shared<accel::SynthesisCache>();
         auto noise = std::make_shared<sim::TraceNoiseModel>(
             sim::ReferenceTraceNoise(7));
         auto tr = std::make_shared<trace::Trace>();
         auto noisy = std::make_shared<trace::Trace>();
         return std::function<void()>([=] {
           tr->Clear();
           accel->Run(*net, *input, tr.get(), map.get(), cache.get());
           noise->ApplyNthTo(*tr, 3, noisy.get());
           if (noisy->empty()) std::abort();
         });
       }},
      {"weight_oracle_replay",
       "repeated identical crafted-input query against the accelerator "
       "zero-count oracle (the calibration access pattern the synthesis "
       "cache replays)",
       100,
       [] {
         auto net = std::make_shared<nn::Network>(models::MakeLeNet(1));
         auto oracle = std::make_shared<attack::AcceleratorOracle>(
             *net, net->num_nodes() - 1, accel::AcceleratorConfig{});
         const std::vector<attack::SparsePixel> pixels{{0, 4, 4, 0.7f}};
         // net captured explicitly: the oracle holds a reference to it.
         return std::function<void()>([net, oracle, pixels] {
           (void)oracle->ChannelNonZeros(pixels, 2);
         });
       }},
      {"weight_sweep",
       "zero-pruning weight attack over all filters of a 16-filter conv "
       "stage (functional oracle)",
       1,
       [] {
         auto spec = std::make_shared<attack::SparseConvOracle::StageSpec>();
         spec->in_depth = 2;
         spec->in_width = 24;
         spec->filter = 5;
         spec->stride = 1;
         const int oc = 16;
         nn::Tensor w(nn::Shape{oc, spec->in_depth, spec->filter,
                                spec->filter});
         nn::Tensor b(nn::Shape{oc});
         Rng rng(11);
         for (std::size_t i = 0; i < w.numel(); ++i)
           w[i] = rng.GaussianF(0.5f);
         for (int k = 0; k < oc; ++k) b.at(k) = -rng.UniformF(0.1f, 0.4f);
         auto oracle = std::make_shared<attack::SparseConvOracle>(
             *spec, std::move(w), std::move(b));
         return std::function<void()>([=] {
           const auto rec = attack::RecoverAllFilters(
               *oracle, *spec, attack::WeightAttackConfig{});
           if (rec.size() != 16) std::abort();
         });
       }},
      {"campaign_resume",
       "resume a fully-checkpointed LeNet campaign: checkpoint load, "
       "per-unit payload decode, artifact re-assembly (no attack compute)",
       10,
       [] {
         // Fresh run once (setup) so the timed region exercises only the
         // resume path: every unit short-circuits through the checkpoint.
         auto cfg = std::make_shared<campaign::CampaignConfig>();
         cfg->victim = "lenet";
         cfg->seed = 11;
         cfg->acquisitions = 1;
         cfg->structure.attack.analysis.known_input_elems = 28 * 28;
         cfg->structure.attack.search.known_input_width = 28;
         cfg->structure.attack.search.known_input_depth = 1;
         cfg->structure.attack.search.known_output_classes = 10;
         cfg->max_weight_filters = 1;
         cfg->checkpoint_path =
             (std::filesystem::temp_directory_path() /
              "sc_bench_campaign_resume.json")
                 .string();
         std::filesystem::remove(cfg->checkpoint_path);
         const auto fresh = campaign::RunCampaign(*cfg);
         if (!fresh.complete) std::abort();
         return std::function<void()>([=] {
           const auto r = campaign::RunCampaign(*cfg);
           if (!r.complete || r.from_checkpoint != static_cast<int>(r.units.size()))
             std::abort();
         });
       }},
      {"trace_store_write",
       "encode + atomically write the AlexNet trace as an sct-v1 store "
       "file",
       5,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         auto path = std::make_shared<std::string>(
             (std::filesystem::temp_directory_path() /
              "sc_bench_trace_store_write.sct")
                 .string());
         return std::function<void()>([&tr, path] {
           store::WriteTraceFile(*path, tr);
         });
       }},
      {"trace_store_read",
       "decode the AlexNet sct-v1 store file back into a Trace (column "
       "bulk appends)",
       5,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         auto path = std::make_shared<std::string>(
             (std::filesystem::temp_directory_path() /
              "sc_bench_trace_store_read.sct")
                 .string());
         store::WriteTraceFile(*path, tr);
         const std::size_t want = tr.size();
         return std::function<void()>([path, want] {
           const trace::Trace t = store::ReadTraceFile(*path);
           if (t.size() != want) std::abort();
         });
       }},
      {"trace_csv_write",
       "write the AlexNet trace as CSV (the store write's text baseline)",
       1,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         auto path = std::make_shared<std::string>(
             (std::filesystem::temp_directory_path() /
              "sc_bench_trace_csv_write.csv")
                 .string());
         return std::function<void()>([&tr, path] {
           tr.SaveCsvFile(*path);
         });
       }},
      {"trace_csv_read",
       "parse the AlexNet CSV trace back into a Trace (the store read's "
       "text baseline)",
       1,
       [] {
         const trace::Trace& tr = AlexNetTrace();
         auto path = std::make_shared<std::string>(
             (std::filesystem::temp_directory_path() /
              "sc_bench_trace_csv_read.csv")
                 .string());
         tr.SaveCsvFile(*path);
         const std::size_t want = tr.size();
         return std::function<void()>([path, want] {
           const trace::Trace t = trace::Trace::LoadCsvFile(*path);
           if (t.size() != want) std::abort();
         });
       }},
      {"defense_matrix_cell",
       "one defense-matrix column: LeNet vs constant-rate shaping at "
       "medium strength, all three attacks",
       1,
       [] {
         auto cfg = std::make_shared<defense::EvalConfig>();
         cfg->kinds = {defense::DefenseKind::kShaping};
         cfg->strengths = {defense::Strength::kMedium};
         cfg->convnet = false;
         return std::function<void()>([=] {
           const auto m = defense::RunDefenseMatrix(*cfg);
           if (m.cells.empty()) std::abort();
         });
       }},
  };
}

#ifndef SC_BUILD_TYPE
#define SC_BUILD_TYPE "unknown"
#endif

void WriteReport(std::ostream& os,
                 const std::vector<std::pair<std::string, ScenarioStats>>&
                     results) {
  os.precision(12);
  os << "{\n";
  os << "  \"schema\": \"sc-bench-v1\",\n";
  os << "  \"bench_id\": 6,\n";
  os << "  \"build\": {\n";
  os << "    \"compiler\": \"" << __VERSION__ << "\",\n";
  os << "    \"build_type\": \"" << SC_BUILD_TYPE << "\",\n";
  os << "    \"threads\": " << support::ThreadPool::DefaultThreads()
     << "\n";
  os << "  },\n";
  os << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& [name, s] = results[i];
    os << "    \"" << name << "\": {\"reps\": " << s.reps
       << ", \"min_s\": " << s.min_s << ", \"median_s\": " << s.median_s
       << ", \"stddev_s\": " << s.stddev_s << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

// Returns the number of scenarios whose median regressed past the
// threshold, printing one verdict line per comparable scenario.
int Compare(const std::vector<std::pair<std::string, ScenarioStats>>& results,
            const std::string& baseline_path, double threshold) {
  std::ifstream f(baseline_path);
  SC_CHECK_MSG(f.is_open(), "cannot open baseline " << baseline_path);
  std::stringstream ss;
  ss << f.rdbuf();
  const support::json::Value base = support::json::Parse(ss.str());
  SC_CHECK_MSG(base.Has("scenarios"), "baseline has no scenarios object");
  const support::json::Value& scenarios = base.At("scenarios");

  int regressions = 0;
  std::cout << "\n--- regression gate (threshold "
            << static_cast<int>(threshold * 100) << "%) ---\n";
  for (const auto& [name, s] : results) {
    if (!scenarios.Has(name)) {
      std::cout << "  [new]  " << name << " (no baseline entry)\n";
      continue;
    }
    const double base_median = scenarios.At(name).Num("median_s");
    const double ratio = base_median > 0.0 ? s.median_s / base_median : 0.0;
    const bool regressed = s.median_s > base_median * (1.0 + threshold);
    std::cout << (regressed ? "  [FAIL] " : "  [ok]   ") << name << ": "
              << s.median_s << " s vs baseline " << base_median << " s ("
              << (ratio >= 1.0 ? "+" : "") << (ratio - 1.0) * 100.0
              << "%)\n";
    if (regressed) ++regressions;
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 10;
  std::string out_path = "BENCH_6.json";
  std::string baseline_path;
  std::string only;
  double threshold = 0.15;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](const char* flag) -> std::string {
      SC_CHECK_MSG(i + 1 < argc, flag << " needs an argument");
      return argv[++i];
    };
    if (a == "--quick") {
      reps = 5;
    } else if (a == "--reps") {
      reps = std::stoi(next("--reps"));
    } else if (a == "--out") {
      out_path = next("--out");
    } else if (a == "--compare") {
      baseline_path = next("--compare");
    } else if (a == "--threshold") {
      threshold = std::stod(next("--threshold"));
    } else if (a == "--only") {
      only = next("--only");
    } else if (a == "--list") {
      list_only = true;
    } else {
      std::cerr << "unknown flag: " << a << "\n";
      return 2;
    }
  }
  SC_CHECK_MSG(reps >= 1, "need at least one rep");

  const std::vector<Scenario> scenarios = AllScenarios();
  if (list_only) {
    for (const Scenario& sc : scenarios)
      std::cout << sc.name << ": " << sc.what << "\n";
    return 0;
  }

  auto selected = [&](const char* name) {
    if (only.empty()) return true;
    std::stringstream ss(only);
    std::string tok;
    while (std::getline(ss, tok, ','))
      if (tok == name) return true;
    return false;
  };

  sc::bench::Banner("bench_runner: trace-pipeline perf scenarios");
  std::vector<std::pair<std::string, ScenarioStats>> results;
  for (const Scenario& sc : scenarios) {
    if (!selected(sc.name)) continue;
    std::cout << sc.name << " (" << reps << " reps x " << sc.inner
              << ")... " << std::flush;
    const ScenarioStats s = Measure(sc, reps);
    std::cout << "median " << s.median_s << " s, min " << s.min_s
              << " s, stddev " << s.stddev_s << " s\n";
    results.emplace_back(sc.name, s);
  }
  SC_CHECK_MSG(!results.empty(), "no scenario selected");

  {
    std::ofstream f(out_path);
    SC_CHECK_MSG(f.is_open(), "cannot open " << out_path << " for writing");
    WriteReport(f, results);
  }
  std::cout << "report written to " << out_path << "\n";

  if (!baseline_path.empty()) {
    const int regressions = Compare(results, baseline_path, threshold);
    if (regressions > 0) {
      std::cout << regressions
                << " scenario(s) regressed past the threshold\n";
      return 1;
    }
    std::cout << "no perf regressions\n";
  }
  return 0;
}
