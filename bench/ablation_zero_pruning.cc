// Ablation for the §4 premise: dynamic zero pruning reduces off-chip write
// traffic once feature maps are sparse enough, and that saving is exactly
// what leaks the non-zero counts.
//
// RLE storage costs (element + index) bytes per survivor plus per-tile
// headers, so the break-even zero fraction here is ~1/3. Random-weight
// victims sit near that line (ReLU zeros get eaten by max pooling); trained
// nets are much sparser, and Minerva-style threshold pruning (the knob the
// paper's §4.1 bias-recovery extension uses) pushes sparsity further. We
// sweep the threshold to show both regimes.
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "models/zoo.h"
#include "trace/stats.h"

int main() {
  using namespace sc;
  bench::Banner("Ablation: zero-pruning write-traffic reduction");

  struct Entry {
    const char* name;
    nn::Network net;
  };
  std::vector<Entry> entries;
  entries.push_back({"LeNet", models::MakeLeNet(1)});
  entries.push_back({"ConvNet", models::MakeConvNet(1)});
  entries.push_back({"AlexNet", models::MakeAlexNet(1)});

  std::cout << std::left << std::setw(10) << "network" << std::setw(12)
            << "threshold" << std::setw(16) << "dense W bytes"
            << std::setw(16) << "pruned W bytes" << std::setw(12)
            << "reduction" << std::setw(12) << "zero frac" << "\n";

  bool any_reduction = false;
  for (Entry& e : entries) {
    const nn::Tensor input = bench::RandomInput(e.net.input_shape(), 3);
    for (float threshold : {0.0f, 0.5f, 1.0f}) {
      accel::AcceleratorConfig dense_cfg;
      dense_cfg.relu_threshold_override = threshold;
      accel::Accelerator dense{dense_cfg};
      trace::Trace dense_tr;
      accel::RunResult dense_run = dense.Run(e.net, input, &dense_tr);

      accel::AcceleratorConfig pruned_cfg = dense_cfg;
      pruned_cfg.zero_pruning = true;
      accel::Accelerator pruned{pruned_cfg};
      trace::Trace pruned_tr;
      pruned.Run(e.net, input, &pruned_tr);

      const auto dense_w = trace::ComputeStats(dense_tr).bytes_written;
      const auto pruned_w = trace::ComputeStats(pruned_tr).bytes_written;
      std::size_t zeros = 0, elems = 0;
      for (const auto& s : dense_run.stages) {
        zeros += s.ofm_elems - s.ofm_nonzeros;
        elems += s.ofm_elems;
      }
      const double reduction =
          1.0 - static_cast<double>(pruned_w) / static_cast<double>(dense_w);
      any_reduction = any_reduction || reduction > 0.0;
      std::cout << std::left << std::setw(10) << e.name << std::setw(12)
                << threshold << std::setw(16) << dense_w << std::setw(16)
                << pruned_w << std::setw(12) << std::fixed
                << std::setprecision(3) << reduction << std::setw(12)
                << static_cast<double>(zeros) / static_cast<double>(elems)
                << "\n";
    }
  }
  std::cout << "\n(threshold 0 = plain ReLU on random weights: near the RLE "
               "break-even of ~1/3 zeros; raising the Minerva-style "
               "threshold emulates trained-net sparsity, where pruning "
               "pays — and the count leak exists in every row.)\n";
  sc::bench::ExportMetrics();
  return any_reduction ? 0 : 1;
}
