// Table 3 reproduction: number of possible structures the attack recovers
// for LeNet, ConvNet, AlexNet and SqueezeNet.
//
// Paper: LeNet 9, ConvNet 6, AlexNet 24, SqueezeNet 9 (the SqueezeNet
// number assumes all fire modules share one structure, which we apply via
// the detected fire-module groups).
#include <iomanip>
#include <iostream>

#include "attack/structure/pipeline.h"
#include "bench_util.h"
#include "models/zoo.h"

namespace {

struct Row {
  const char* name;
  int paper_layers;
  int paper_structures;
  sc::nn::Network net;
  int input_w;
  int input_d;
  long long classes;
  bool identical_modules;
};

}  // namespace

int main() {
  using namespace sc;
  bench::Banner("Table 3: possible structures per network");

  std::vector<Row> rows;
  rows.push_back({"LeNet", 4, 9, models::MakeLeNet(1), 28, 1, 10, false});
  rows.push_back(
      {"ConvNet", 4, 6, models::MakeConvNet(1), 32, 3, 10, false});
  rows.push_back(
      {"AlexNet", 8, 24, models::MakeAlexNet(1), 227, 3, 1000, false});
  rows.push_back({"SqueezeNet", 18, 9, models::MakeSqueezeNet(), 224, 3,
                  1000, true});

  std::cout << std::left << std::setw(12) << "network" << std::setw(8)
            << "layers" << std::setw(10) << "segments" << std::setw(13)
            << "principled" << std::setw(13) << "paper-prior" << std::setw(8)
            << "paper" << std::setw(11) << "truth-in?" << "time\n";

  bool all_found = true;
  for (Row& row : rows) {
    bench::Timer timer;
    trace::Trace tr = bench::CaptureTrace(row.net, 7);

    attack::StructureAttackConfig cfg;
    cfg.analysis.known_input_elems =
        static_cast<long long>(row.input_w) * row.input_w * row.input_d;
    cfg.search.known_input_width = row.input_w;
    cfg.search.known_input_depth = row.input_d;
    cfg.search.known_output_classes = row.classes;
    cfg.assume_identical_modules = row.identical_modules;
    // Accelerator datasheet (public): enables the bandwidth-aware filter.
    cfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
    cfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;

    // Principled run: every trace-consistent structure.
    const attack::StructureAttackResult r =
        attack::RunStructureAttack(tr, cfg);
    // Paper-prior run: additionally require exact conv division, which the
    // paper's enumeration implicitly assumed (consistent with its Table 4
    // but not with SqueezeNet's conv1, whose walk has remainder 1).
    attack::StructureAttackConfig paper_cfg = cfg;
    paper_cfg.search.solver.exact_conv_division = true;
    const attack::StructureAttackResult rp =
        attack::RunStructureAttack(tr, paper_cfg);

    const bool truth = !r.search.structures.empty();
    std::cout << std::left << std::setw(12) << row.name << std::setw(8)
              << row.paper_layers << std::setw(10)
              << r.analysis.observations.size() << std::setw(13)
              << r.num_structures() << std::setw(13) << rp.num_structures()
              << std::setw(8) << row.paper_structures << std::setw(11)
              << (truth ? "yes" : "NO") << std::fixed
              << std::setprecision(1) << timer.Seconds() << " s\n";
    all_found = all_found && truth;
  }

  std::cout << "\nNotes: 'segments' counts trace segments (SqueezeNet's "
               "standalone pools and bypass element-wise layers appear as "
               "their own segments; the paper counts 18 weighted layers).\n"
               "'principled' = all structures consistent with the trace; "
               "'paper-prior' additionally assumes exact conv division "
               "(zero for SqueezeNet because its conv1 violates it).\n";
  sc::bench::ExportMetrics();
  return all_found ? 0 : 1;
}
