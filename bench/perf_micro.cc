// Microbenchmarks (google-benchmark) for the attack-side costs: trace
// analysis throughput, per-layer constraint solving, structure search and
// oracle queries. These quantify the adversary's offline effort.
//
// Benchmarks taking a `threads` argument run the same workload serially
// (threads:1) and on the thread pool (threads:4 and the machine default);
// the ratio of their reported times is the parallel speedup.
#include <benchmark/benchmark.h>

#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "bench_util.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "support/thread_pool.h"

namespace {

using namespace sc;

const trace::Trace& LeNetTrace() {
  static const trace::Trace tr = [] {
    nn::Network net = models::MakeLeNet(1);
    return bench::CaptureTrace(net, 5);
  }();
  return tr;
}

void BM_TraceSegmentation(benchmark::State& state) {
  const trace::Trace& tr = LeNetTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SegmentTrace(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.size()));
}
BENCHMARK(BM_TraceSegmentation);

void BM_TraceAnalysis(benchmark::State& state) {
  const trace::Trace& tr = LeNetTrace();
  attack::AnalysisConfig cfg;
  cfg.known_input_elems = 28 * 28;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::AnalyzeTrace(tr, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.size()));
}
BENCHMARK(BM_TraceAnalysis);

void BM_SolveConv1(benchmark::State& state) {
  attack::LayerObservation o;
  o.role = attack::SegmentRole::kConvOrFc;
  o.size_ifm = 227LL * 227 * 3;
  o.size_ofm = 27LL * 27 * 96;
  o.size_fltr = 11LL * 11 * 3 * 96;
  attack::SolverConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::EnumerateConvConfigs(o, {{227, 3}}, cfg));
  }
}
BENCHMARK(BM_SolveConv1);

void BM_StructureSearchLeNet(benchmark::State& state) {
  attack::AnalysisConfig acfg;
  acfg.known_input_elems = 28 * 28;
  const attack::TraceAnalysis a = attack::AnalyzeTrace(LeNetTrace(), acfg);
  attack::SearchConfig cfg;
  cfg.known_input_width = 28;
  cfg.known_input_depth = 1;
  cfg.known_output_classes = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SearchStructures(a.observations, cfg));
  }
}
BENCHMARK(BM_StructureSearchLeNet);

void BM_SparseOracleQuery(benchmark::State& state) {
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 3;
  spec.in_width = 227;
  spec.filter = 11;
  spec.stride = 4;
  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 3;
  spec.pool_stride = 2;
  const models::CompressedConv1 secret =
      models::MakeCompressedConv1Weights();
  attack::SparseConvOracle oracle(spec, secret.weights, secret.bias);
  float x = 0.0f;
  for (auto _ : state) {
    x += 0.001f;
    benchmark::DoNotOptimize(
        oracle.ChannelNonZeros({{0, 5, 5, 1.0f + x}}, 3));
  }
}
BENCHMARK(BM_SparseOracleQuery);

void BM_AcceleratorLeNetInference(benchmark::State& state) {
  nn::Network net = models::MakeLeNet(1);
  const nn::Tensor input = bench::RandomInput(net.input_shape(), 9);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.Run(net, input, nullptr));
  }
}
BENCHMARK(BM_AcceleratorLeNetInference);

void BM_WeightRecoveryOneFilter(benchmark::State& state) {
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 16;
  spec.filter = 3;
  spec.stride = 1;
  nn::Tensor w(nn::Shape{1, 1, 3, 3});
  nn::Tensor b(nn::Shape{1});
  Rng rng(4);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  b.at(0) = 0.25f;
  attack::SparseConvOracle oracle(spec, w, b);
  attack::WeightAttack attack(oracle, spec, attack::WeightAttackConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.RecoverFilter(0));
  }
}
BENCHMARK(BM_WeightRecoveryOneFilter);

// --- serial vs parallel (the `threads` argument sets the pool size) ---------

void SetPoolThreads(benchmark::State& state) {
  support::ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void RestoreDefaultThreads() {
  support::ThreadPool::SetGlobalThreads(support::ThreadPool::DefaultThreads());
}

// AlexNet CONV1 forward pass (3x227x227 -> 96x55x55, 11x11/4): the hot
// inference loop parallelized over output channels.
void BM_AlexNetConv1Forward(benchmark::State& state) {
  SetPoolThreads(state);
  nn::Conv2D conv("conv1", 3, 96, 11, 4, 0);
  {
    Rng rng(7);
    nn::Tensor& w = conv.weights();
    for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.1f);
  }
  const nn::Tensor x = bench::RandomInput(nn::Shape{3, 227, 227}, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward({&x}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          96LL * 55 * 55 * 3 * 11 * 11);  // MACs
  RestoreDefaultThreads();
}
BENCHMARK(BM_AlexNetConv1Forward)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(support::ThreadPool::DefaultThreads())
    ->UseRealTime();

// Weight-attack sweep over every filter of a small conv stage, one cloned
// oracle per worker (Algorithm 2 fan-out).
void BM_WeightAttackSweep(benchmark::State& state) {
  SetPoolThreads(state);
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 2;
  spec.in_width = 24;
  spec.filter = 5;
  spec.stride = 1;
  const int oc = 16;
  nn::Tensor w(nn::Shape{oc, spec.in_depth, spec.filter, spec.filter});
  nn::Tensor b(nn::Shape{oc});
  Rng rng(11);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  for (int k = 0; k < oc; ++k) b.at(k) = -rng.UniformF(0.1f, 0.4f);
  attack::SparseConvOracle oracle(spec, w, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::RecoverAllFilters(oracle, spec, attack::WeightAttackConfig{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * oc);
  RestoreDefaultThreads();
}
BENCHMARK(BM_WeightAttackSweep)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(support::ThreadPool::DefaultThreads())
    ->UseRealTime();

// Structure search with the root fan-out parallelized (LeNet trace, input
// dimensions unknown so the root factorization spawns many branches).
void BM_StructureSearchParallel(benchmark::State& state) {
  SetPoolThreads(state);
  attack::AnalysisConfig acfg;
  acfg.known_input_elems = 28 * 28;
  const attack::TraceAnalysis a = attack::AnalyzeTrace(LeNetTrace(), acfg);
  attack::SearchConfig cfg;
  cfg.known_input_width = 28;
  cfg.known_input_depth = 1;
  cfg.known_output_classes = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SearchStructures(a.observations, cfg));
  }
  RestoreDefaultThreads();
}
BENCHMARK(BM_StructureSearchParallel)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->Arg(support::ThreadPool::DefaultThreads())
    ->UseRealTime();

// Metrics-toggle overhead probe: the same accelerator inference with the
// obs registry force-disabled vs force-enabled. The acceptance bar for the
// observability layer is < 2% delta between the two (disabled recording is
// one relaxed atomic load per site).
void BM_MetricsToggle(benchmark::State& state) {
  const bool enable = state.range(0) != 0;
  const bool prev = obs::Enabled();
  obs::SetEnabled(enable);
  nn::Network net = models::MakeLeNet(7);
  const nn::Tensor input = bench::RandomInput(net.input_shape(), 7);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  trace::Trace tr;  // pooled: Clear() keeps the chunk storage between runs
  for (auto _ : state) {
    tr.Clear();
    benchmark::DoNotOptimize(accel.Run(net, input, &tr));
  }
  obs::SetEnabled(prev);
}
BENCHMARK(BM_MetricsToggle)->ArgName("metrics")->Arg(0)->Arg(1);

}  // namespace

// BENCHMARK_MAIN, plus a metrics.json dump when SC_METRICS is on (the
// benchmark loops themselves feed the accel.*/attack.* counters).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sc::bench::ExportMetrics();
  return 0;
}
