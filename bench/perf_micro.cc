// Microbenchmarks (google-benchmark) for the attack-side costs: trace
// analysis throughput, per-layer constraint solving, structure search and
// oracle queries. These quantify the adversary's offline effort.
#include <benchmark/benchmark.h>

#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "bench_util.h"
#include "models/zoo.h"

namespace {

using namespace sc;

const trace::Trace& LeNetTrace() {
  static const trace::Trace tr = [] {
    nn::Network net = models::MakeLeNet(1);
    return bench::CaptureTrace(net, 5);
  }();
  return tr;
}

void BM_TraceSegmentation(benchmark::State& state) {
  const trace::Trace& tr = LeNetTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SegmentTrace(tr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.size()));
}
BENCHMARK(BM_TraceSegmentation);

void BM_TraceAnalysis(benchmark::State& state) {
  const trace::Trace& tr = LeNetTrace();
  attack::AnalysisConfig cfg;
  cfg.known_input_elems = 28 * 28;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::AnalyzeTrace(tr, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tr.size()));
}
BENCHMARK(BM_TraceAnalysis);

void BM_SolveConv1(benchmark::State& state) {
  attack::LayerObservation o;
  o.role = attack::SegmentRole::kConvOrFc;
  o.size_ifm = 227LL * 227 * 3;
  o.size_ofm = 27LL * 27 * 96;
  o.size_fltr = 11LL * 11 * 3 * 96;
  attack::SolverConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        attack::EnumerateConvConfigs(o, {{227, 3}}, cfg));
  }
}
BENCHMARK(BM_SolveConv1);

void BM_StructureSearchLeNet(benchmark::State& state) {
  attack::AnalysisConfig acfg;
  acfg.known_input_elems = 28 * 28;
  const attack::TraceAnalysis a = attack::AnalyzeTrace(LeNetTrace(), acfg);
  attack::SearchConfig cfg;
  cfg.known_input_width = 28;
  cfg.known_input_depth = 1;
  cfg.known_output_classes = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::SearchStructures(a.observations, cfg));
  }
}
BENCHMARK(BM_StructureSearchLeNet);

void BM_SparseOracleQuery(benchmark::State& state) {
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 3;
  spec.in_width = 227;
  spec.filter = 11;
  spec.stride = 4;
  spec.pool = nn::PoolKind::kMax;
  spec.pool_window = 3;
  spec.pool_stride = 2;
  const models::CompressedConv1 secret =
      models::MakeCompressedConv1Weights();
  attack::SparseConvOracle oracle(spec, secret.weights, secret.bias);
  float x = 0.0f;
  for (auto _ : state) {
    x += 0.001f;
    benchmark::DoNotOptimize(
        oracle.ChannelNonZeros({{0, 5, 5, 1.0f + x}}, 3));
  }
}
BENCHMARK(BM_SparseOracleQuery);

void BM_AcceleratorLeNetInference(benchmark::State& state) {
  nn::Network net = models::MakeLeNet(1);
  const nn::Tensor input = bench::RandomInput(net.input_shape(), 9);
  accel::Accelerator accel{accel::AcceleratorConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(accel.Run(net, input, nullptr));
  }
}
BENCHMARK(BM_AcceleratorLeNetInference);

void BM_WeightRecoveryOneFilter(benchmark::State& state) {
  attack::SparseConvOracle::StageSpec spec;
  spec.in_depth = 1;
  spec.in_width = 16;
  spec.filter = 3;
  spec.stride = 1;
  nn::Tensor w(nn::Shape{1, 1, 3, 3});
  nn::Tensor b(nn::Shape{1});
  Rng rng(4);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  b.at(0) = 0.25f;
  attack::SparseConvOracle oracle(spec, w, b);
  attack::WeightAttack attack(oracle, spec, attack::WeightAttackConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.RecoverFilter(0));
  }
}
BENCHMARK(BM_WeightRecoveryOneFilter);

}  // namespace

BENCHMARK_MAIN();
