// Ablation for the paper's §5/§6 mitigation discussion: (a) ORAM-style
// address obfuscation stops the structure attack at a measurable traffic
// cost; (b) constant-shape compressed write-back closes the §4 count leak
// at the cost of the write-side bandwidth saving only.
//
// Thin wrapper over the defense evaluation harness (defense/eval.h): the
// sweep itself lives there; this binary restricts the matrix to the two
// strategies the original ablation studied and checks the same claims.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "defense/eval.h"

int main() {
  using namespace sc;
  bench::Banner("Ablation: address obfuscation vs the structure attack");

  defense::EvalConfig cfg;
  cfg.kinds = {defense::DefenseKind::kNone, defense::DefenseKind::kObfuscation,
               defense::DefenseKind::kRlePadding};
  cfg.lenet = false;  // the original ablation's victim was ConvNet
  cfg.convnet = true;
  const defense::EvalMatrix matrix = defense::RunDefenseMatrix(cfg);

  std::cout << std::left << std::setw(13) << "defense" << std::setw(10)
            << "strength" << std::setw(16) << "traffic ovhd" << std::setw(16)
            << "candidates" << "attack outcome\n";
  bool clear_works = false, obfuscation_works = false;
  int none_filters = -1, none_total = 0, rle_filters = -1, rle_total = 0;
  for (const defense::EvalCell& c : matrix.cells) {
    if (c.attack == "structure") {
      const bool truth_found = c.truth_rank > 0;
      std::cout << std::left << std::setw(13) << ToString(c.kind)
                << std::setw(10) << c.strength << std::setw(16) << std::fixed
                << std::setprecision(2) << c.traffic_overhead << std::setw(16)
                << c.candidates
                << (truth_found ? "structure found (check fidelity)"
                                : "defeated (truth not recovered)")
                << "\n";
      std::cout.unsetf(std::ios::fixed);
      if (c.kind == defense::DefenseKind::kNone && truth_found)
        clear_works = true;
      if (c.kind == defense::DefenseKind::kObfuscation && !truth_found)
        obfuscation_works = true;
    }
    if (c.attack == "weight") {
      if (c.kind == defense::DefenseKind::kNone) {
        none_filters = c.filters_recovered;
        none_total = c.filters_total;
      }
      if (c.kind == defense::DefenseKind::kRlePadding) {
        rle_filters = c.filters_recovered;
        rle_total = c.filters_total;
      }
    }
  }
  std::cout << "\n(The paper names ORAM as the countermeasure and its "
               "bandwidth cost as the obstacle; both sides are visible "
               "here.)\n";

  std::cout << "\nweight attack vs constant-shape compressed write-back:\n"
            << "  undefended: " << none_filters << "/" << none_total
            << " filters recovered (attack succeeds)\n"
            << "  defended  : " << rle_filters << "/" << rle_total
            << " filters recovered (counts constant: nothing recovered)\n";

  const bool ok = clear_works && obfuscation_works &&
                  none_total > 0 && none_filters == none_total &&
                  rle_total > 0 && rle_filters == 0;
  sc::bench::ExportMetrics();
  return ok ? 0 : 1;
}
