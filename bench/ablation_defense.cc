// Ablation for the paper's §5/§6 mitigation discussion: (a) ORAM-style
// address obfuscation stops the structure attack at a measurable traffic
// cost; (b) constant-shape compressed write-back closes the §4 count leak
// at the cost of the write-side bandwidth saving only.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "attack/structure/pipeline.h"
#include "attack/weights/attack.h"
#include "bench_util.h"
#include "defense/obfuscation.h"
#include "models/zoo.h"
#include "support/rng.h"

int main() {
  using namespace sc;
  bench::Banner("Ablation: address obfuscation vs the structure attack");

  nn::Network net = models::MakeConvNet(1);
  trace::Trace victim = bench::CaptureTrace(net, 17);

  attack::StructureAttackConfig acfg;
  acfg.analysis.known_input_elems = 3LL * 32 * 32;
  acfg.search.known_input_width = 32;
  acfg.search.known_input_depth = 3;
  acfg.search.known_output_classes = 10;
  // Accelerator datasheet (public): enables the bandwidth-aware filter.
  acfg.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  acfg.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;

  const auto clear = attack::RunStructureAttack(victim, acfg);
  std::cout << "clear trace: " << clear.num_structures()
            << " candidate structures (attack works)\n\n";

  std::cout << std::left << std::setw(10) << "dummies" << std::setw(10)
            << "permute" << std::setw(16) << "traffic ovhd" << std::setw(16)
            << "candidates" << "attack outcome\n";

  struct Setting {
    double dummies;
    bool permute;
  };
  const Setting settings[] = {{0.0, true}, {1.0, false}, {2.0, true},
                              {4.0, true}};
  bool defense_works = false;
  for (const Setting& s : settings) {
    defense::ObfuscationConfig ocfg;
    ocfg.dummy_per_access = s.dummies;
    ocfg.permute_blocks = s.permute;
    const defense::ObfuscationResult obf =
        defense::ObfuscateTrace(victim, ocfg);

    std::size_t candidates = 0;
    std::string outcome;
    try {
      const auto attacked = attack::RunStructureAttack(obf.trace, acfg);
      candidates = attacked.num_structures();
      outcome = candidates == 0 ? "defeated (no feasible structure)"
                                : "structures found (check fidelity)";
    } catch (const sc::Error& err) {
      outcome = "defeated (analysis rejects trace)";
    }
    if (candidates == 0) defense_works = true;
    std::cout << std::left << std::setw(10) << s.dummies << std::setw(10)
              << (s.permute ? "yes" : "no") << std::setw(16) << std::fixed
              << std::setprecision(2) << obf.traffic_overhead
              << std::setw(16) << candidates << outcome << "\n";
  }
  std::cout << "\n(The paper names ORAM as the countermeasure and its "
               "bandwidth cost as the obstacle; both sides are visible "
               "here.)\n";

  // --- part 2: constant-shape write-back vs the weight attack ----------
  std::cout << "\nweight attack vs constant-shape compressed write-back:\n";
  models::ConvStageVictimSpec spec;
  spec.in_depth = 1;
  spec.in_width = 10;
  spec.out_depth = 2;
  spec.filter = 3;
  nn::Tensor w(nn::Shape{2, 1, 3, 3});
  nn::Tensor b(nn::Shape{2});
  Rng rng(23);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.GaussianF(0.5f);
  b.at(0) = 0.3f;
  b.at(1) = 0.2f;
  nn::Network weight_victim = models::MakeConvStageVictim(spec, w, b);

  attack::SparseConvOracle::StageSpec geo;
  geo.in_depth = 1;
  geo.in_width = 10;
  geo.filter = 3;

  for (bool constant_shape : {false, true}) {
    accel::AcceleratorConfig wcfg;
    wcfg.prune_constant_shape = constant_shape;
    attack::AcceleratorOracle oracle(weight_victim,
                                     weight_victim.num_nodes() - 1, wcfg);
    attack::WeightAttack attack(oracle, geo, attack::WeightAttackConfig{});
    const attack::RecoveredFilter rec = attack.RecoverFilter(0);
    float max_err = 0.0f;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        max_err = std::max(max_err, std::fabs(rec.ratio.at(0, i, j) -
                                              w.at(0, 0, i, j) / b.at(0)));
    std::cout << "  " << (constant_shape ? "defended " : "undefended")
              << ": max w/b error " << max_err
              << (constant_shape ? "  (counts constant: nothing recovered)"
                                 : "  (attack succeeds)")
              << "\n";
    if (!constant_shape && max_err > 1e-3f) defense_works = false;
    if (constant_shape && max_err < 1e-3f) defense_works = false;
  }

  sc::bench::ExportMetrics();
  return (clear.num_structures() > 0 && defense_works) ? 0 : 1;
}
