#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace sc::obs {
namespace {

bool EnvEnabled() {
  const char* v = std::getenv("SC_METRICS");
  if (v == nullptr) return false;
  const std::string s(v);
  return s == "1" || s == "true" || s == "on" || s == "ON" || s == "TRUE";
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal JSON string escaping for metric names (which are ASCII dotted
// identifiers in practice, but exporters must not assume that).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

// Dynamic initializer applying the SC_METRICS env seed before main(). Any
// recording that races this from another TU's static init just sees the
// constant-initialized false — a safe no-op.
namespace {
[[maybe_unused]] const bool g_env_seed_applied = [] {
  internal::g_enabled.store(EnvEnabled(), std::memory_order_relaxed);
  return true;
}();
}  // namespace

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::Record(std::uint64_t v) {
  if (!Enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  const int b = v == 0 ? 0 : 64 - std::countl_zero(v);
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram& h) : h_(&h) {
  if (Enabled()) start_ns_ = NowNs();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ == 0 || !Enabled()) return;
  const std::uint64_t end = NowNs();
  h_->Record(end > start_ns_ ? end - start_ns_ : 0);
}

// std::map keeps Snapshot()/exports in name order without a sort; values
// are unique_ptr so metric addresses survive rehash-free forever.
struct Registry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& Registry::Get() {
  static Registry* r = new Registry();  // never destroyed, see header
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::GetCounter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  SC_CHECK_MSG(!im.gauges.count(name) && !im.histograms.count(name),
               "metric '" + name + "' already registered with another kind");
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  SC_CHECK_MSG(!im.counters.count(name) && !im.histograms.count(name),
               "metric '" + name + "' already registered with another kind");
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  SC_CHECK_MSG(!im.counters.count(name) && !im.gauges.count(name),
               "metric '" + name + "' already registered with another kind");
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Scope Registry::scope(std::string prefix) {
  return Scope(*this, std::move(prefix));
}

std::vector<MetricSample> Registry::Snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<MetricSample> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, c] : im.counters) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : im.gauges) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.gauge_value = g->value();
    s.gauge_peak = g->peak();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->count() == 0 ? 0 : h->min();
    s.max = h->max();
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::ResetAll() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->Reset();
  for (auto& [name, g] : im.gauges) g->Reset();
  for (auto& [name, h] : im.histograms) h->Reset();
}

void Registry::WriteJson(std::ostream& os) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : im.counters) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : im.gauges) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": {\"value\": " << g->value() << ", \"peak\": " << g->peak()
       << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : im.histograms) {
    const std::uint64_t n = h->count();
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": {\"count\": " << n << ", \"sum\": " << h->sum()
       << ", \"min\": " << (n == 0 ? 0 : h->min())
       << ", \"max\": " << h->max() << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

void Registry::WriteCsv(std::ostream& os) const {
  os << "kind,name,field,value\n";
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "counter," << s.name << ",value," << s.value << "\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "gauge," << s.name << ",value," << s.gauge_value << "\n";
        os << "gauge," << s.name << ",peak," << s.gauge_peak << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        os << "histogram," << s.name << ",count," << s.count << "\n";
        os << "histogram," << s.name << ",sum," << s.sum << "\n";
        os << "histogram," << s.name << ",min," << s.min << "\n";
        os << "histogram," << s.name << ",max," << s.max << "\n";
        break;
    }
  }
}

void Registry::SaveJsonFile(const std::string& path) const {
  std::ofstream f(path);
  SC_CHECK_MSG(f.good(), "cannot open metrics JSON file: " + path);
  WriteJson(f);
  SC_CHECK_MSG(f.good(), "failed writing metrics JSON file: " + path);
}

void Registry::SaveCsvFile(const std::string& path) const {
  std::ofstream f(path);
  SC_CHECK_MSG(f.good(), "cannot open metrics CSV file: " + path);
  WriteCsv(f);
  SC_CHECK_MSG(f.good(), "failed writing metrics CSV file: " + path);
}

}  // namespace sc::obs
