// Observability layer: process-wide metrics with near-zero disabled cost.
//
// The attacks are driven by quantities the paper reports as the science
// itself — off-chip access counts, RAW events, solver candidates pruned per
// constraint, Algorithm-2 oracle queries — and every subsystem records them
// here instead of re-deriving them in benches. Three metric kinds:
//
//   - Counter:   monotonically increasing uint64 (events, bytes, queries);
//   - Gauge:     last-set int64 plus the observed peak (queue depth);
//   - Histogram: log2-bucketed uint64 distribution with count/sum/min/max
//                (per-stage cycles, worker wait times). ScopedTimer records
//                wall time in nanoseconds into a Histogram via RAII.
//
// All metrics live in the process-wide Registry, addressed by dot-separated
// names ("accel.dram.read_bytes"); Scope prefixes a subsystem's names.
// Collection is gated on a single global flag seeded from the SC_METRICS
// environment variable (unset/0 = off). When disabled every record
// operation is one relaxed atomic load and a predictable branch — measured
// < 2% overhead on the perf_micro hot paths — and timers never read the
// clock. Recording never changes control flow, so simulator traces, attack
// results and CSV artifacts are byte-identical whether metrics are on, off,
// or absent.
//
// Thread safety: metric updates are lock-free atomics, safe from any
// ThreadPool worker. Registration (name lookup) takes a mutex; call sites
// on hot paths should cache the returned reference (function-local static).
// Registered metrics are never deallocated, so cached references stay valid
// for the process lifetime; ResetAll() zeroes values but keeps identities.
#ifndef SC_OBS_METRICS_H_
#define SC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sc::obs {

namespace internal {
// Constant-initialized so any pre-main recording reads a plain false; the
// SC_METRICS env seed is applied by a dynamic initializer in metrics.cc.
extern std::atomic<bool> g_enabled;
}  // namespace internal

// Global collection switch. Seeded once from SC_METRICS ("1"/"true"/"on"
// enable); SetEnabled overrides at runtime (tests, benches). Inline and
// guard-free: the disabled fast path must stay one relaxed load, not a
// function call (the bisection loop hits this hundreds of times per
// recovered weight).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

class Counter {
 public:
  // Adds n when collection is enabled; no-op otherwise.
  void Add(std::uint64_t n = 1) {
    if (!Enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(std::int64_t v) {
    if (!Enabled()) return;
    v_.store(v, std::memory_order_relaxed);
    UpdatePeak(v);
  }

  // Relative adjustment (e.g. queue depth up/down); returns nothing to keep
  // the disabled path branch-only.
  void Add(std::int64_t delta) {
    if (!Enabled()) return;
    const std::int64_t now =
        v_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdatePeak(now);
  }

  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset() {
    v_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdatePeak(std::int64_t v) {
    std::int64_t cur = peak_.load(std::memory_order_relaxed);
    while (v > cur &&
           !peak_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> peak_{0};
};

class Histogram {
 public:
  // Bucket b holds values v with 2^(b-1) <= v < 2^b (bucket 0: v == 0), so
  // 65 buckets cover the full uint64 range.
  static constexpr int kBuckets = 65;

  void Record(std::uint64_t v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // min()/max() are UINT64_MAX / 0 while count() == 0.
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }
  void Reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// RAII wall-clock timer recording elapsed nanoseconds into a Histogram.
// Reads the clock only when collection is enabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::uint64_t start_ns_ = 0;  // 0 = disarmed (collection was off)
};

class Scope;

// One immutable snapshot row, used by exporters and tests.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  // Counter: value. Gauge: value/peak. Histogram: count/sum/min/max/mean.
  std::uint64_t value = 0;
  std::int64_t gauge_value = 0;
  std::int64_t gauge_peak = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
};

class Registry {
 public:
  // The process-wide registry (never destroyed: metrics must outlive any
  // static user).
  static Registry& Get();

  // Returns the metric registered under `name`, creating it on first use.
  // Registering the same name as two different kinds throws sc::Error.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Convenience prefixing helper: Registry::Get().scope("accel") hands out
  // metrics named "accel.<suffix>".
  Scope scope(std::string prefix);

  // All registered metrics in name order (deterministic export).
  std::vector<MetricSample> Snapshot() const;

  // Zeroes every registered metric, preserving identities (cached
  // references at call sites stay valid).
  void ResetAll();

  // JSON export: {"counters": {...}, "gauges": {...}, "histograms": {...}}
  // with keys in name order. Parsed back by tests/the schema validator.
  void WriteJson(std::ostream& os) const;
  // CSV export: header "kind,name,field,value", one row per scalar field.
  void WriteCsv(std::ostream& os) const;
  void SaveJsonFile(const std::string& path) const;
  void SaveCsvFile(const std::string& path) const;

 private:
  Registry() = default;

  struct Impl;
  Impl& impl() const;
};

// Name-prefixing view over the registry ("pool" scope names metrics
// "pool.tasks", "pool.queue_depth", ...).
class Scope {
 public:
  Scope(Registry& registry, std::string prefix)
      : registry_(registry), prefix_(std::move(prefix)) {}

  Counter& GetCounter(const std::string& name) {
    return registry_.GetCounter(prefix_ + "." + name);
  }
  Gauge& GetGauge(const std::string& name) {
    return registry_.GetGauge(prefix_ + "." + name);
  }
  Histogram& GetHistogram(const std::string& name) {
    return registry_.GetHistogram(prefix_ + "." + name);
  }
  const std::string& prefix() const { return prefix_; }

 private:
  Registry& registry_;
  std::string prefix_;
};

}  // namespace sc::obs

#endif  // SC_OBS_METRICS_H_
