// Dataflow backends (DESIGN.md §13). A Backend walks one tiled schedule
// over the staged network: it decides the tile loop order, which operand
// each tile re-fetches from DRAM, and the per-tile cycle model. Everything
// else — the address map, the trace buffer, the zero-pruning write engine,
// the defense/fault hooks — is shared machinery (backend_common.h), which
// is what keeps the §4 zero-count channel identical across backends.
//
// Accelerator::Run selects the backend from AcceleratorConfig::dataflow;
// adding a dataflow means adding one class here plus a GetBackend case.
#ifndef SC_ACCEL_BACKEND_H_
#define SC_ACCEL_BACKEND_H_

#include "accel/backend_common.h"
#include "accel/dataflow.h"

namespace sc::accel {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual Dataflow dataflow() const = 0;

  // The tiling/multiplicity summary this backend exposes to the structure
  // attack's candidate filter (attack/structure/schedule.h). Buffer sizes
  // come from the config the accelerator was built with.
  virtual ScheduleModel schedule_model(const AcceleratorConfig& cfg) const = 0;

  // Per-stage simulation hooks. Each emits the stage's DRAM events through
  // ctx.emit and accumulates MAC counts into stats; functional outputs are
  // precomputed (ctx.node_outputs).
  virtual void SimulateConv(const StageContext& ctx, const Stage& stage,
                            StageStats* stats) const = 0;
  virtual void SimulateFc(const StageContext& ctx, const Stage& stage,
                          StageStats* stats) const = 0;
  virtual void SimulateStream(const StageContext& ctx, const Stage& stage,
                              StageStats* stats) const = 0;
};

// Stateless singleton per dataflow.
const Backend& GetBackend(Dataflow d);

}  // namespace sc::accel

#endif  // SC_ACCEL_BACKEND_H_
