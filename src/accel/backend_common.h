// Machinery shared by every dataflow backend (DESIGN.md §13): the trace
// Emitter (cycle clock + DRAM burst events + DRAM metrics), the functional
// forward pass, feature-map/weight read helpers, and the zero-pruning
// OfmWriter. The §4 side channel lives entirely in OfmWriter — both
// backends write compressed bursts through the same engine, which is what
// makes the per-channel zero-count leak dataflow-invariant by construction
// (asserted by tests/schedule_property_test.cc).
//
// Internal to src/accel; the public surface is accelerator.h + backend.h.
#ifndef SC_ACCEL_BACKEND_COMMON_H_
#define SC_ACCEL_BACKEND_COMMON_H_

#include <cstdint>
#include <vector>

#include "accel/address_map.h"
#include "accel/config.h"
#include "accel/stage.h"
#include "nn/network.h"
#include "nn/tensor.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "trace/trace.h"

namespace sc::accel {

struct StageStats;

// Metrics (DESIGN.md §9). All recording is additionally gated on
// AcceleratorConfig::collect_metrics so probe-heavy callers (the weight
// attack's oracle) can opt out of the accel.* counters per instance.
struct AccelMetrics {
  obs::Counter& runs = obs::Registry::Get().GetCounter("accel.runs");
  obs::Counter& read_events =
      obs::Registry::Get().GetCounter("accel.dram.read_events");
  obs::Counter& read_bytes =
      obs::Registry::Get().GetCounter("accel.dram.read_bytes");
  obs::Counter& write_events =
      obs::Registry::Get().GetCounter("accel.dram.write_events");
  obs::Counter& write_bytes =
      obs::Registry::Get().GetCounter("accel.dram.write_bytes");
  obs::Counter& raw_reads =
      obs::Registry::Get().GetCounter("accel.raw_reads");
  obs::Histogram& stage_cycles =
      obs::Registry::Get().GetHistogram("accel.stage.cycles");
};

AccelMetrics& Metrics();

// Per-backend metric scope ("accel.backend.<dataflow>.*"): runs and stage
// cycles attributed to one dataflow, additive to the aggregate accel.*
// names above (which existing dashboards and tests depend on).
struct BackendMetrics {
  obs::Counter& runs;
  obs::Histogram& stage_cycles;
};

BackendMetrics& MetricsFor(Dataflow d);

// Integer ceiling division for cycle math.
inline std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Per-region bookkeeping of zero-pruned (compressed) contents. Each output
// channel owns a fixed-capacity slot inside the region (how RLE designs
// keep channels addressable); stream_bytes[c] is the compressed size of
// channel c's stream after write-back.
struct PrunedInfo {
  bool pruned = false;
  std::uint64_t slot_bytes = 0;  // per-channel slot capacity (0: one slot)
  std::vector<std::uint64_t> stream_bytes;
};

// One stage's DRAM event stream as recorded columns, with cycles relative
// to the stage start. The emitter's cycle math is pure deltas (FinishTile
// advances by max(compute, mem) regardless of the absolute clock), so a
// block is shift-invariant: replaying it at any later stage start via
// AppendColumns(cycle_offset) reproduces the exact events a fresh
// simulation would emit there. That property is what both the bulk flush
// and the memoization cache (accel/synthesis_cache.h) rest on.
struct StageBlock {
  std::vector<std::uint64_t> cycles;  // relative to stage start
  std::vector<std::uint64_t> addrs;
  std::vector<std::uint32_t> bytes;
  std::vector<std::uint8_t> ops;  // trace::MemOp values
  std::uint64_t cycle_delta = 0;  // stage end cycle - stage start cycle
  std::uint64_t stage_read = 0;   // total bytes read
  std::uint64_t stage_written = 0;
  std::uint64_t read_events = 0;
  std::uint64_t write_events = 0;
  std::uint64_t raw_reads = 0;  // RAW-dependency reads (obs counter)
  long long macs = 0;
  PrunedInfo info;  // region_info[output node] after the stage ran

  void Clear() {
    cycles.clear();
    addrs.clear();
    bytes.clear();
    ops.clear();
    cycle_delta = 0;
    stage_read = 0;
    stage_written = 0;
    read_events = 0;
    write_events = 0;
    raw_reads = 0;
    macs = 0;
    info = PrunedInfo{};
  }

  std::size_t ApproxBytes() const {
    return cycles.capacity() * sizeof(std::uint64_t) +
           addrs.capacity() * sizeof(std::uint64_t) +
           bytes.capacity() * sizeof(std::uint32_t) + ops.capacity() +
           info.stream_bytes.capacity() * sizeof(std::uint64_t) +
           sizeof(StageBlock);
  }
};

// Collects trace events and per-stage byte counters; owns the cycle clock.
//
// Emission is bulk-columnar: during a stage, events accumulate in the
// caller-provided StageBlock (stage-relative cycles), and EndStage() lands
// the whole stage in the sink trace with one AppendColumns call — no
// per-event appends on the hot path. The same block doubles as the
// memoization unit: Replay() re-lands a recorded block at the current
// cycle and advances the clock by its delta, byte-identical to re-running
// the stage (see StageBlock above for why).
class Emitter {
 public:
  Emitter(trace::Trace* t, const AcceleratorConfig& cfg)
      : trace_(t), cfg_(cfg) {}

  void Read(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_read_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().read_events.Add();
      Metrics().read_bytes.Add(bytes);
    }
    if (block_) Push(addr, bytes, trace::MemOp::kRead);
  }

  void Write(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_written_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().write_events.Add();
      Metrics().write_bytes.Add(bytes);
    }
    if (block_) Push(addr, bytes, trace::MemOp::kWrite);
  }

  // Counts n RAW-dependency reads (reads of an earlier stage's OFM, the
  // events the structure attack segments on). Recorded into the block so a
  // replayed stage restores the same accel.raw_reads total.
  void RawReads(std::uint64_t n) {
    if (n == 0) return;
    if (block_) block_->raw_reads += n;
    if (cfg_.collect_metrics) Metrics().raw_reads.Add(n);
  }

  // Ends the current tile: advances the clock by the larger of the tile's
  // compute time and its memory time, then starts a fresh tile.
  void FinishTile(long long tile_macs, long long tile_simd_ops) {
    const std::uint64_t compute =
        CeilDiv(static_cast<std::uint64_t>(tile_macs),
                static_cast<std::uint64_t>(cfg_.macs_per_cycle)) +
        CeilDiv(static_cast<std::uint64_t>(tile_simd_ops),
                static_cast<std::uint64_t>(cfg_.simd_lanes));
    const std::uint64_t mem =
        CeilDiv(tile_bytes_, static_cast<std::uint64_t>(cfg_.bytes_per_cycle));
    cycle_ += std::max<std::uint64_t>(1, std::max(compute, mem));
    tile_bytes_ = 0;
  }

  // Starts a stage recording into `block` (cleared first; may be null for a
  // pure-timing run with no sink trace and no cache, in which case only the
  // clock and byte counters advance).
  void BeginStage(StageBlock* block) {
    block_ = block;
    if (block_) block_->Clear();
    stage_start_ = cycle_;
    stage_read_ = 0;
    stage_written_ = 0;
    tile_bytes_ = 0;
  }

  // Ends the stage: finalizes the block's aggregate fields and lands its
  // events in the sink trace as one bulk column append rebased to the
  // stage's start cycle.
  void EndStage() {
    if (!block_) return;
    block_->cycle_delta = cycle_ - stage_start_;
    block_->stage_read = stage_read_;
    block_->stage_written = stage_written_;
    if (trace_)
      trace_->AppendColumns(block_->cycles.data(), block_->addrs.data(),
                            block_->bytes.data(), block_->ops.data(),
                            block_->cycles.size(), stage_start_);
    block_ = nullptr;
  }

  // Replays a recorded stage block at the current cycle: bulk-appends its
  // events with the clock as the cycle offset and advances the clock by the
  // block's delta. `add_metrics` is false when the events were already
  // counted (parallel workers count during recording).
  void Replay(const StageBlock& b, bool add_metrics) {
    if (trace_)
      trace_->AppendColumns(b.cycles.data(), b.addrs.data(), b.bytes.data(),
                            b.ops.data(), b.cycles.size(), cycle_);
    stage_start_ = cycle_;
    cycle_ += b.cycle_delta;
    stage_read_ = b.stage_read;
    stage_written_ = b.stage_written;
    tile_bytes_ = 0;
    block_ = nullptr;
    if (add_metrics && cfg_.collect_metrics) {
      AccelMetrics& m = Metrics();
      if (b.read_events > 0) {
        m.read_events.Add(b.read_events);
        m.read_bytes.Add(b.stage_read);
      }
      if (b.write_events > 0) {
        m.write_events.Add(b.write_events);
        m.write_bytes.Add(b.stage_written);
      }
      if (b.raw_reads > 0) m.raw_reads.Add(b.raw_reads);
    }
  }

  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t stage_read() const { return stage_read_; }
  std::uint64_t stage_written() const { return stage_written_; }

 private:
  static std::uint32_t Narrow(std::uint64_t bytes) {
    SC_CHECK_MSG(bytes <= UINT32_MAX, "burst too large");
    return static_cast<std::uint32_t>(bytes);
  }

  void Push(std::uint64_t addr, std::uint64_t bytes, trace::MemOp op) {
    block_->cycles.push_back(cycle_ - stage_start_);
    block_->addrs.push_back(addr);
    block_->bytes.push_back(Narrow(bytes));
    block_->ops.push_back(static_cast<std::uint8_t>(op));
    if (op == trace::MemOp::kRead)
      ++block_->read_events;
    else
      ++block_->write_events;
  }

  trace::Trace* trace_;
  const AcceleratorConfig& cfg_;
  StageBlock* block_ = nullptr;
  std::uint64_t cycle_ = 0;
  std::uint64_t stage_start_ = 0;
  std::uint64_t stage_read_ = 0;
  std::uint64_t stage_written_ = 0;
  std::uint64_t tile_bytes_ = 0;
};

// Functional forward pass that honours the accelerator's ReLU-threshold
// override knob. Produces one tensor per node, identical to
// Network::Forward when no override is set.
std::vector<nn::Tensor> ForwardWithOverride(const nn::Network& net,
                                            const nn::Tensor& input,
                                            const AcceleratorConfig& cfg);

// Counts non-zero elements of out[channel, rows y0..y1).
std::size_t CountNonZerosRows(const nn::Tensor& t, int c, int y0, int y1);

// Context shared by the per-stage simulation hooks.
struct StageContext {
  const nn::Network& net;
  const AddressMap& map;
  const AcceleratorConfig& cfg;
  const std::vector<nn::Tensor>& node_outputs;
  const nn::Tensor& input;
  Emitter& emit;
  std::vector<PrunedInfo>& region_info;  // indexed by node id; input is dense
};

const nn::Tensor& TensorOf(const StageContext& ctx, int node);
Region RegionOf(const StageContext& ctx, int node);
bool IsPruned(const StageContext& ctx, int node);

// Reads the compressed stream(s) of a pruned node; a concat fans out to its
// component streams (each sits at its own aliased sub-region base).
void EmitCompressedStreamReads(const StageContext& ctx, int node);

// Emits IFM reads for rows [y0, y1) of every channel of `node`'s region.
// For a pruned producer the whole compressed stream is fetched instead
// (channel-stream model; row addressing is meaningless in a compressed
// stream). Returns true if it emitted the compressed fallback.
bool EmitFmapRowReads(const StageContext& ctx, int node, int y0, int y1);

// Write-back engine for one stage's OFM: dense in-place rows, or
// zero-pruned compressed bursts appended to fixed per-channel stream slots.
// A compressed burst's size is header + nnz * (element + index), so each
// burst leaks its tile's non-zero count — the §4 side channel — and its
// slot address identifies the output channel. Shared by every backend:
// per-channel cursors keep each channel's bursts row-ordered no matter
// which loop order delivered them, so the leaked per-channel counts (and
// the compressed stream sizes readers fetch) do not depend on the
// dataflow.
class OfmWriter {
 public:
  OfmWriter(const StageContext& ctx, const nn::Tensor& out,
            const Region& region, PrunedInfo* info);

  void WriteRows(int c0, int c1, int y0, int y1);

 private:
  const StageContext& ctx_;
  const nn::Tensor& out_;
  Region region_;
  PrunedInfo* info_;
  std::uint64_t slot_bytes_ = 0;
  std::vector<std::uint64_t> cursors_;
};

// Builds the shared conv tile arithmetic for one conv stage.
ConvTiler MakeConvTiler(const StageContext& ctx, const Stage& stage);

// Dataflow-neutral stage engines. FC layers keep the whole output vector
// resident whichever operand is "stationary", and pool/eltwise stages have
// no weights to re-fetch, so both backends share these.
void SimulateFcStageCommon(const StageContext& ctx, const Stage& stage,
                           StageStats* stats);
void SimulateStreamStageCommon(const StageContext& ctx, const Stage& stage,
                               StageStats* stats);

}  // namespace sc::accel

#endif  // SC_ACCEL_BACKEND_COMMON_H_
