// Weight-stationary backend: the paper's schedule. Output-channel blocks
// are the outer tile loop; each oc block loads its filter bank once and the
// IFM rows stream past it, so the IFM halo is re-read once per oc block.
// Trace output is byte-identical to the pre-backend-split accelerator
// (tests/golden_artifact_test.cc pins this).
#include "accel/accelerator.h"
#include "accel/backend.h"

#include <algorithm>

namespace sc::accel {

namespace {

class WeightStationaryBackend final : public Backend {
 public:
  Dataflow dataflow() const override { return Dataflow::kWeightStationary; }

  ScheduleModel schedule_model(const AcceleratorConfig& cfg) const override {
    ScheduleModel m;
    m.dataflow = Dataflow::kWeightStationary;
    m.oc_blocks_outer = true;
    m.drain_ops_per_elem = 0;
    m.simd_lanes = cfg.simd_lanes;
    m.ifm_buffer_bytes = cfg.ifm_buffer_bytes;
    m.weight_buffer_bytes = cfg.weight_buffer_bytes;
    m.ofm_buffer_bytes = cfg.ofm_buffer_bytes;
    m.element_bytes = cfg.element_bytes;
    return m;
  }

  void SimulateConv(const StageContext& ctx, const Stage& stage,
                    StageStats* stats) const override {
    const ConvTiler t = MakeConvTiler(ctx, stage);
    const int producer = stage.input_nodes[0];
    const Tensor& out = TensorOf(ctx, stage.output_node);
    const Region wreg = ctx.map.weights(stage.main_node);
    const Region ofm_reg = ctx.map.ofm(stage.output_node);
    SC_CHECK(wreg.valid());

    const std::uint64_t weights_per_oc = t.WeightsPerOc();
    const int oc_block = t.OcBlock();
    const int row_block = t.RowBlock();

    const std::uint64_t ifm_total = TensorOf(ctx, producer).numel() * t.eb;
    const bool cache_whole_ifm =
        !IsPruned(ctx, producer) && ifm_total <= ctx.cfg.ifm_buffer_bytes;

    // Whole-IFM prefetch (also places the boundary-defining RAW read first).
    if (cache_whole_ifm) {
      EmitFmapRowReads(ctx, producer, 0, t.ih);
      ctx.emit.FinishTile(0, 0);
    }

    OfmWriter writer(
        ctx, out, ofm_reg,
        &ctx.region_info[static_cast<std::size_t>(stage.output_node)]);
    bool compressed_fetched = false;

    for (int oc0 = 0; oc0 < t.od; oc0 += oc_block) {
      const int noc = std::min(oc_block, t.od - oc0);
      bool first_row_block = true;
      for (int ry0 = 0; ry0 < t.oh; ry0 += row_block) {
        const int ry1 = std::min(t.oh, ry0 + row_block);
        // IFM fetch (unless cached). A pruned producer is fetched as one
        // compressed stream per oc block.
        if (!cache_whole_ifm) {
          if (IsPruned(ctx, producer)) {
            if (first_row_block || !compressed_fetched) {
              EmitFmapRowReads(ctx, producer, 0, t.ih);
              compressed_fetched = true;
            }
          } else {
            const auto [i0, i1] = t.IfmRowSpan(ry0, ry1);
            EmitFmapRowReads(ctx, producer, i0, i1);
          }
        }
        if (first_row_block) {
          // Weights once per oc block (biases live on chip).
          ctx.emit.Read(wreg.base + static_cast<std::uint64_t>(oc0) *
                                        weights_per_oc,
                        static_cast<std::uint64_t>(noc) * weights_per_oc);
          first_row_block = false;
        }

        const auto [p0, p1] = t.ConvRowSpan(ry0, ry1);
        const long long tile_macs = static_cast<long long>(p1 - p0) * t.cw *
                                    noc * t.f * t.f * t.ic;
        const long long tile_simd =
            t.pooled ? static_cast<long long>(ry1 - ry0) * t.ow * noc *
                           t.f_pool * t.f_pool
                     : static_cast<long long>(p1 - p0) * t.cw * noc;
        stats->macs += tile_macs;

        writer.WriteRows(oc0, oc0 + noc, ry0, ry1);
        ctx.emit.FinishTile(tile_macs, tile_simd);
      }
    }
  }

  void SimulateFc(const StageContext& ctx, const Stage& stage,
                  StageStats* stats) const override {
    SimulateFcStageCommon(ctx, stage, stats);
  }

  void SimulateStream(const StageContext& ctx, const Stage& stage,
                      StageStats* stats) const override {
    SimulateStreamStageCommon(ctx, stage, stats);
  }

 private:
  using Tensor = nn::Tensor;
};

}  // namespace

const Backend& GetWeightStationaryBackend() {
  static const WeightStationaryBackend b;
  return b;
}

}  // namespace sc::accel
