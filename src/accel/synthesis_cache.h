// Memoization of accelerator trace synthesis (DESIGN.md §15).
//
// For a fixed network, address map and emission-relevant config, a stage's
// DRAM event stream is a deterministic function of (a) the static shapes
// and tiling and (b) with zero pruning, the per-row non-zero counts of its
// output and the compressed stream sizes of its producers. Cycles inside a
// stage are pure deltas (see StageBlock), so the whole stage can be
// captured once as a relative-cycle column block and replayed at any later
// clock with one bulk append. This cache holds
//   - stage blocks keyed by {stage index, output-data digest, producer
//     digest}, reused across runs whose inputs differ but drive a stage
//     through identical observable behaviour (always true without pruning,
//     and true with pruning whenever the nnz pattern repeats), and
//   - whole-run records keyed by a digest of (input tensor, config), which
//     skip the functional forward pass entirely on an exact repeat — the
//     shape of the weight oracle's repeated queries and of K-acquisition
//     noisy campaigns.
//
// The cache is bound to one network + emission fingerprint at first use;
// changing emission-relevant config fields on the owning accelerator
// clears it, and a different network is an error. Non-emission knobs
// (collect_metrics, hooks, capture path, relu_threshold_override) do not
// invalidate stage blocks; the ReLU override changes data, so it is part
// of the *run* key and flows into the stage keys via the data digests.
//
// Not thread-safe: one cache per accelerator user (parallel sweeps clone
// their oracle and get a cache per clone). The accelerator's *internal*
// per-stage parallelism never touches the cache from workers.
#ifndef SC_ACCEL_SYNTHESIS_CACHE_H_
#define SC_ACCEL_SYNTHESIS_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "accel/accelerator.h"
#include "accel/backend_common.h"
#include "accel/config.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace sc::accel {

class SynthesisCache {
 public:
  // Soft byte budget over stored blocks/records; exceeding it clears the
  // cache (simple and predictable — the workloads that benefit loop over a
  // handful of distinct victims, far below the cap).
  static constexpr std::size_t kDefaultBudgetBytes = std::size_t{128} << 20;

  explicit SynthesisCache(std::size_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}

  struct StageKey {
    std::uint64_t stage_index = 0;
    std::uint64_t data_digest = 0;
    std::uint64_t producer_digest = 0;
    bool operator==(const StageKey&) const = default;
  };

  struct RunRecord {
    std::vector<StageKey> stage_keys;
    std::vector<StageStats> stages;
    nn::Tensor output;
    std::uint64_t total_cycles = 0;
  };

  // Binds to (net, emission fingerprint of cfg). First call binds; a
  // changed fingerprint clears and rebinds; a different network throws
  // (keys embed no network identity, so reuse would alias).
  void Bind(const nn::Network& net, const AcceleratorConfig& cfg);

  // Digest of everything that selects a run's exact trace and output:
  // emission fingerprint, ReLU override, input shape and raw contents.
  std::uint64_t RunKey(const nn::Tensor& input,
                       const AcceleratorConfig& cfg) const;

  // Digest of the observable output data a stage's emission depends on
  // under zero pruning: per-(channel, row) non-zero counts for rank-3
  // outputs, the whole-tensor count otherwise (the FC single-stream case).
  static std::uint64_t DataDigest(const nn::Tensor& out);

  // Digest of the producer-side state a stage's reads depend on under zero
  // pruning: pruned flag, slot size and compressed stream sizes of every
  // input node, with concat fanned out to its components (mirrors
  // EmitCompressedStreamReads).
  static std::uint64_t ProducerDigest(const nn::Network& net,
                                      const std::vector<PrunedInfo>& info,
                                      const std::vector<int>& input_nodes);

  const StageBlock* FindStage(const StageKey& key) const;
  void StoreStage(const StageKey& key, StageBlock&& block);

  const RunRecord* FindRun(std::uint64_t key) const;
  void StoreRun(std::uint64_t key, RunRecord&& rec);

  void Clear();

  // Introspection (tests, tuning).
  std::uint64_t stage_hits() const { return stage_hits_; }
  std::uint64_t stage_misses() const { return stage_misses_; }
  std::uint64_t run_hits() const { return run_hits_; }
  std::uint64_t run_misses() const { return run_misses_; }
  std::size_t approx_bytes() const { return used_bytes_; }

 private:
  struct StageKeyHash {
    std::size_t operator()(const StageKey& k) const;
  };

  std::size_t budget_bytes_;
  std::size_t used_bytes_ = 0;
  const nn::Network* net_ = nullptr;
  std::uint64_t cfg_fingerprint_ = 0;
  std::unordered_map<StageKey, StageBlock, StageKeyHash> stages_;
  std::unordered_map<std::uint64_t, RunRecord> runs_;
  mutable std::uint64_t stage_hits_ = 0;
  mutable std::uint64_t stage_misses_ = 0;
  mutable std::uint64_t run_hits_ = 0;
  mutable std::uint64_t run_misses_ = 0;
};

}  // namespace sc::accel

#endif  // SC_ACCEL_SYNTHESIS_CACHE_H_
