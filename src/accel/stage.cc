#include "accel/stage.h"

#include "support/check.h"

namespace sc::accel {

const char* ToString(StageKind k) {
  switch (k) {
    case StageKind::kConv:
      return "conv";
    case StageKind::kFc:
      return "fc";
    case StageKind::kPool:
      return "pool";
    case StageKind::kEltwise:
      return "eltwise";
  }
  return "?";
}

namespace {

// Returns the sole consumer of `node` if it has exactly one, else -1.
int SoleConsumer(const nn::Network& net, int node) {
  const std::vector<int> consumers = net.ConsumersOf(node);
  return consumers.size() == 1 ? consumers[0] : -1;
}

bool IsKind(const nn::Network& net, int node, nn::LayerKind k) {
  return node >= 0 && net.layer(node).kind() == k;
}

}  // namespace

std::vector<Stage> BuildStages(const nn::Network& net) {
  std::vector<bool> assigned(static_cast<std::size_t>(net.num_nodes()), false);
  std::vector<Stage> stages;

  auto mark = [&](int node) {
    SC_CHECK(!assigned[static_cast<std::size_t>(node)]);
    assigned[static_cast<std::size_t>(node)] = true;
  };

  for (int i = 0; i < net.num_nodes(); ++i) {
    if (assigned[static_cast<std::size_t>(i)]) continue;
    const nn::LayerKind kind = net.layer(i).kind();

    if (kind == nn::LayerKind::kConcat) {
      // Pure aliasing: producers write straight into the concat region.
      mark(i);
      continue;
    }
    SC_CHECK_MSG(kind != nn::LayerKind::kRelu,
                 "standalone ReLU node '"
                     << net.layer(i).name()
                     << "' cannot be scheduled; attach it after a conv/fc/"
                        "pool/eltwise node so it fuses");

    Stage s;
    s.main_node = i;
    s.input_nodes = net.inputs_of(i);
    mark(i);
    int cur = i;

    switch (kind) {
      case nn::LayerKind::kConv:
        s.kind = StageKind::kConv;
        break;
      case nn::LayerKind::kFullyConnected:
        s.kind = StageKind::kFc;
        break;
      case nn::LayerKind::kMaxPool:
      case nn::LayerKind::kAvgPool:
        s.kind = StageKind::kPool;
        s.pool_node = i;
        break;
      case nn::LayerKind::kEltwiseAdd:
        s.kind = StageKind::kEltwise;
        break;
      default:
        SC_CHECK_MSG(false, "unreachable");
    }

    // Greedy fusion along sole-consumer chains.
    if (s.kind == StageKind::kConv) {
      int next = SoleConsumer(net, cur);
      if (IsKind(net, next, nn::LayerKind::kRelu)) {
        s.relu_node = next;
        mark(next);
        cur = next;
        next = SoleConsumer(net, cur);
      }
      if (IsKind(net, next, nn::LayerKind::kMaxPool) ||
          IsKind(net, next, nn::LayerKind::kAvgPool)) {
        s.pool_node = next;
        mark(next);
        cur = next;
        next = SoleConsumer(net, cur);
      }
      if (s.pool_node != -1 && IsKind(net, next, nn::LayerKind::kRelu)) {
        s.post_relu_node = next;
        mark(next);
        cur = next;
      }
    } else if (s.kind == StageKind::kFc || s.kind == StageKind::kEltwise ||
               s.kind == StageKind::kPool) {
      const int next = SoleConsumer(net, cur);
      if (IsKind(net, next, nn::LayerKind::kRelu)) {
        s.relu_node = next;
        mark(next);
        cur = next;
      }
    }

    s.output_node = cur;
    stages.push_back(std::move(s));
  }
  return stages;
}

}  // namespace sc::accel
