// Cycle-approximate CNN inference accelerator simulator.
//
// Substitutes for the paper's FPGA prototype (DESIGN.md §2). The simulator
//   - executes the *real* inference arithmetic for every stage (the output
//     tensor is bit-identical to the reference nn::Network::Forward),
//   - walks a tiled schedule (output-channel blocks x output-row blocks
//     constrained by the three on-chip buffers) whose loop order and
//     re-fetch pattern are chosen by the selected dataflow backend
//     (accel/backend.h; AcceleratorConfig::dataflow) and emits one
//     burst-level MemEvent per DMA transfer,
//   - advances a cycle counter per tile as max(compute, memory) time,
//   - optionally compresses OFM write-back with dynamic zero pruning, in
//     which case write volumes leak the per-tile non-zero counts (paper §4)
//     identically under every dataflow (shared write-back engine).
//
// The memory trace therefore has exactly the properties the paper's attacks
// exploit: RAW dependencies between layers, contiguous per-tensor regions,
// read-only weights, and compute-bound per-layer timing.
#ifndef SC_ACCEL_ACCELERATOR_H_
#define SC_ACCEL_ACCELERATOR_H_

#include <cstdint>
#include <vector>

#include "accel/address_map.h"
#include "accel/config.h"
#include "accel/stage.h"
#include "nn/network.h"
#include "trace/trace.h"

namespace sc::accel {

class SynthesisCache;

struct StageStats {
  int stage_index = -1;
  StageKind kind = StageKind::kConv;
  int main_node = -1;
  int output_node = -1;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  long long macs = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  // Zero-pruning observables for the stage's OFM (valid whether or not
  // pruning is enabled; with pruning these equal what the ordered write
  // bursts reveal — asserted by tests).
  std::size_t ofm_elems = 0;
  std::size_t ofm_nonzeros = 0;
  std::vector<std::size_t> ofm_channel_nonzeros;
};

struct RunResult {
  nn::Tensor output;                    // final node's output tensor
  std::vector<StageStats> stages;
  std::uint64_t total_cycles = 0;
};

class Accelerator {
 public:
  explicit Accelerator(AcceleratorConfig cfg) : cfg_(cfg) {}

  const AcceleratorConfig& config() const { return cfg_; }
  AcceleratorConfig& config() { return cfg_; }

  // Runs inference. If `out_trace` is non-null, appends the full memory
  // trace. The address map is deterministic for a given network and config;
  // by default it is rebuilt per call, but a caller replaying the same
  // network many times (e.g. the zero-count oracle) can pass a map it built
  // once with BuildMap(). The map must match the current config.
  //
  // `cache` (accel/synthesis_cache.h) memoizes trace synthesis across
  // calls: repeated stages replay their recorded column blocks, and an
  // exact (input, config) repeat skips the forward pass entirely. The
  // trace, stats and output are byte-identical with and without a cache;
  // pass one when the same victim is run many times (oracles, noisy
  // acquisition campaigns, benchmarks). The cache must be used with one
  // network only and is not thread-safe across concurrent Run calls.
  RunResult Run(const nn::Network& net, const nn::Tensor& input,
                trace::Trace* out_trace,
                const AddressMap* prebuilt_map = nullptr,
                SynthesisCache* cache = nullptr) const;

  // The DRAM layout the accelerator uses for this network.
  AddressMap BuildMap(const nn::Network& net) const;

  // The tiling summary of the selected backend, in the form the structure
  // attack's candidate filter consumes (SearchConfig::schedule).
  ScheduleModel schedule_model() const;

 private:
  AcceleratorConfig cfg_;
};

}  // namespace sc::accel

#endif  // SC_ACCEL_ACCELERATOR_H_
