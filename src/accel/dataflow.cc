#include "accel/dataflow.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "support/check.h"

namespace sc::accel {

const char* ToString(Dataflow d) {
  switch (d) {
    case Dataflow::kWeightStationary: return "weight_stationary";
    case Dataflow::kOutputStationary: return "output_stationary";
  }
  return "?";
}

bool ParseDataflow(const char* s, Dataflow* out) {
  if (s == nullptr) return false;
  const std::string v(s);
  if (v == "weight_stationary" || v == "ws") {
    *out = Dataflow::kWeightStationary;
    return true;
  }
  if (v == "output_stationary" || v == "os") {
    *out = Dataflow::kOutputStationary;
    return true;
  }
  return false;
}

Dataflow DefaultDataflow() {
  static const Dataflow d = [] {
    const char* env = std::getenv("SC_DATAFLOW");
    if (env == nullptr || *env == '\0') return Dataflow::kWeightStationary;
    Dataflow parsed = Dataflow::kWeightStationary;
    SC_CHECK_MSG(ParseDataflow(env, &parsed),
                 "SC_DATAFLOW='" << env
                                 << "' (expected weight_stationary|ws|"
                                    "output_stationary|os)");
    return parsed;
  }();
  return d;
}

int ConvTiler::OcBlock() const {
  return std::max<int>(
      1, static_cast<int>(std::min<std::uint64_t>(
             static_cast<std::uint64_t>(od),
             weight_buffer_bytes /
                 std::max<std::uint64_t>(1, WeightsPerOc()))));
}

std::pair<int, int> ConvTiler::ConvRowSpan(int ry0, int ry1) const {
  int p0 = ry0, p1 = ry1;
  if (pooled) {
    p0 = std::max(0, ry0 * s_pool - p_pool);
    p1 = std::min(cw, (ry1 - 1) * s_pool - p_pool + f_pool);
  }
  return {p0, std::max(p1, p0 + 1)};
}

std::pair<int, int> ConvTiler::IfmRowSpan(int ry0, int ry1) const {
  const auto [p0, p1] = ConvRowSpan(ry0, ry1);
  const int i0 = std::max(0, p0 * s - p);
  const int i1 = std::min(ih, (p1 - 1) * s - p + f);
  return {i0, std::max(i1, i0 + 1)};
}

bool ConvTiler::TileFits(int rows) const {
  const auto [i0, i1] = IfmRowSpan(0, rows);
  const std::uint64_t ifm_bytes = static_cast<std::uint64_t>(i1 - i0) *
                                  static_cast<std::uint64_t>(in_w) *
                                  static_cast<std::uint64_t>(ic) * eb;
  const std::uint64_t ofm_bytes = static_cast<std::uint64_t>(rows) *
                                  static_cast<std::uint64_t>(ow) *
                                  static_cast<std::uint64_t>(OcBlock()) * eb;
  return ifm_bytes <= ifm_buffer_bytes && ofm_bytes <= ofm_buffer_bytes;
}

bool ConvTiler::StreamingOk() const {
  const std::uint64_t streaming_ifm_bytes = static_cast<std::uint64_t>(f) *
                                            static_cast<std::uint64_t>(in_w) *
                                            static_cast<std::uint64_t>(ic) *
                                            eb;
  const std::uint64_t streaming_ofm_bytes =
      static_cast<std::uint64_t>(ow) * static_cast<std::uint64_t>(OcBlock()) *
      eb;
  return streaming_ifm_bytes <= ifm_buffer_bytes &&
         streaming_ofm_bytes <= ofm_buffer_bytes;
}

int ConvTiler::RowBlock() const {
  int row_block = 1;
  while (row_block < oh && TileFits(row_block + 1)) ++row_block;
  return row_block;
}

}  // namespace sc::accel
