#include "accel/backend_common.h"

#include <algorithm>
#include <utility>

#include "accel/accelerator.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace sc::accel {

using nn::Tensor;

AccelMetrics& Metrics() {
  static AccelMetrics m;
  return m;
}

BackendMetrics& MetricsFor(Dataflow d) {
  static BackendMetrics ws{
      obs::Registry::Get().GetCounter("accel.backend.weight_stationary.runs"),
      obs::Registry::Get().GetHistogram(
          "accel.backend.weight_stationary.stage.cycles")};
  static BackendMetrics os{
      obs::Registry::Get().GetCounter("accel.backend.output_stationary.runs"),
      obs::Registry::Get().GetHistogram(
          "accel.backend.output_stationary.stage.cycles")};
  return d == Dataflow::kOutputStationary ? os : ws;
}

namespace {

void ApplyRelu(Tensor& t, float threshold) {
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (t[i] <= threshold) t[i] = 0.0f;
}

}  // namespace

std::vector<Tensor> ForwardWithOverride(const nn::Network& net,
                                        const Tensor& input,
                                        const AcceleratorConfig& cfg) {
  std::vector<Tensor> outs;
  outs.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    std::vector<const Tensor*> ins;
    for (int src : net.inputs_of(i))
      ins.push_back(src == nn::kInputNode
                        ? &input
                        : &outs[static_cast<std::size_t>(src)]);
    if (net.layer(i).kind() == nn::LayerKind::kRelu &&
        cfg.relu_threshold_override >= 0.0f) {
      Tensor y = *ins[0];
      ApplyRelu(y, cfg.relu_threshold_override);
      outs.push_back(std::move(y));
    } else {
      outs.push_back(net.layer(i).Forward(ins));
    }
  }
  return outs;
}

std::size_t CountNonZerosRows(const Tensor& t, int c, int y0, int y1) {
  const auto w = static_cast<std::size_t>(t.shape()[2]);
  const auto h = static_cast<std::size_t>(t.shape()[1]);
  const float* p =
      t.data() + (static_cast<std::size_t>(c) * h +
                  static_cast<std::size_t>(y0)) * w;
  const std::size_t n = static_cast<std::size_t>(y1 - y0) * w;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) nnz += (p[i] != 0.0f) ? 1u : 0u;
  return nnz;
}

const Tensor& TensorOf(const StageContext& ctx, int node) {
  return node == nn::kInputNode
             ? ctx.input
             : ctx.node_outputs[static_cast<std::size_t>(node)];
}

Region RegionOf(const StageContext& ctx, int node) {
  return node == nn::kInputNode ? ctx.map.input() : ctx.map.ofm(node);
}

bool IsPruned(const StageContext& ctx, int node) {
  if (node == nn::kInputNode) return false;  // host writes the input densely
  if (ctx.net.layer(node).kind() == nn::LayerKind::kConcat) {
    // A concat region is pruned iff its components are (they are written by
    // the producing stages, which share one pruning setting).
    for (int src : ctx.net.inputs_of(node))
      if (IsPruned(ctx, src)) return true;
    return false;
  }
  return ctx.region_info[static_cast<std::size_t>(node)].pruned;
}

void EmitCompressedStreamReads(const StageContext& ctx, int node) {
  if (ctx.net.layer(node).kind() == nn::LayerKind::kConcat) {
    for (int src : ctx.net.inputs_of(node))
      EmitCompressedStreamReads(ctx, src);
    return;
  }
  const Region region = RegionOf(ctx, node);
  const auto& info = ctx.region_info[static_cast<std::size_t>(node)];
  std::uint64_t raw = 0;
  for (std::size_t c = 0; c < info.stream_bytes.size(); ++c) {
    ctx.emit.Read(region.base + static_cast<std::uint64_t>(c) *
                                    info.slot_bytes,
                  info.stream_bytes[c]);
    if (info.stream_bytes[c] > 0) ++raw;
  }
  ctx.emit.RawReads(raw);
}

bool EmitFmapRowReads(const StageContext& ctx, int node, int y0, int y1) {
  const Region region = RegionOf(ctx, node);
  if (IsPruned(ctx, node)) {
    EmitCompressedStreamReads(ctx, node);
    return true;
  }
  const nn::Shape shape = TensorOf(ctx, node).shape();
  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  const auto h = static_cast<std::uint64_t>(shape[1]);
  const auto w = static_cast<std::uint64_t>(shape[2]);
  for (int c = 0; c < shape[0]; ++c) {
    const std::uint64_t addr =
        region.base +
        (static_cast<std::uint64_t>(c) * h + static_cast<std::uint64_t>(y0)) *
            w * eb;
    ctx.emit.Read(addr, static_cast<std::uint64_t>(y1 - y0) * w * eb);
  }
  // Reads of an earlier stage's OFM are the RAW-dependency events the
  // structure attack segments on (paper §3); input reads are not RAW.
  if (node != nn::kInputNode)
    ctx.emit.RawReads(static_cast<std::uint64_t>(shape[0]));
  return false;
}

OfmWriter::OfmWriter(const StageContext& ctx, const Tensor& out,
                     const Region& region, PrunedInfo* info)
    : ctx_(ctx), out_(out), region_(region), info_(info) {
  if (!ctx.cfg.zero_pruning) return;
  const auto d = static_cast<std::uint64_t>(out.shape()[0]);
  const auto h = static_cast<std::uint64_t>(out.shape()[1]);
  const auto w = static_cast<std::uint64_t>(out.shape()[2]);
  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  // Worst-case slot: every element survives pruning and every row is its
  // own tile (one header each).
  slot_bytes_ =
      h * w * (eb + static_cast<std::uint64_t>(ctx.cfg.prune_index_bytes)) +
      h * static_cast<std::uint64_t>(ctx.cfg.prune_header_bytes);
  SC_CHECK_MSG(d * slot_bytes_ <= region.bytes,
               "pruned region capacity too small");
  cursors_.resize(static_cast<std::size_t>(d));
  for (std::uint64_t c = 0; c < d; ++c)
    cursors_[static_cast<std::size_t>(c)] = region.base + c * slot_bytes_;
  info_->pruned = true;
  info_->slot_bytes = slot_bytes_;
  info_->stream_bytes.assign(static_cast<std::size_t>(d), 0);
}

void OfmWriter::WriteRows(int c0, int c1, int y0, int y1) {
  const auto eb = static_cast<std::uint64_t>(ctx_.cfg.element_bytes);
  const auto h = static_cast<std::uint64_t>(out_.shape()[1]);
  const auto w = static_cast<std::uint64_t>(out_.shape()[2]);
  if (!ctx_.cfg.zero_pruning) {
    for (int c = c0; c < c1; ++c) {
      const std::uint64_t addr =
          region_.base + (static_cast<std::uint64_t>(c) * h +
                          static_cast<std::uint64_t>(y0)) *
                             w * eb;
      ctx_.emit.Write(addr, static_cast<std::uint64_t>(y1 - y0) * w * eb);
    }
    return;
  }
  for (int c = c0; c < c1; ++c) {
    const std::size_t nnz = CountNonZerosRows(out_, c, y0, y1);
    const std::uint64_t per_elem =
        eb + static_cast<std::uint64_t>(ctx_.cfg.prune_index_bytes);
    const std::uint64_t header =
        static_cast<std::uint64_t>(ctx_.cfg.prune_header_bytes);
    const std::uint64_t payload =
        static_cast<std::uint64_t>(nnz) * per_elem;
    // Constant-shape mitigation: the burst is always worst-case sized,
    // so its length reveals nothing; the stream in DRAM stays compressed
    // for the reader.
    const std::uint64_t bytes =
        header + (ctx_.cfg.prune_constant_shape
                      ? static_cast<std::uint64_t>(y1 - y0) * w * per_elem
                      : payload);
    auto& cursor = cursors_[static_cast<std::size_t>(c)];
    SC_CHECK_MSG(cursor + bytes <= region_.base +
                                       static_cast<std::uint64_t>(c + 1) *
                                           slot_bytes_,
                 "compressed stream overflowed its slot");
    ctx_.emit.Write(cursor, bytes);
    cursor += bytes;
    auto& stream = info_->stream_bytes[static_cast<std::size_t>(c)];
    stream += header + payload;  // reads fetch the true compressed size
  }
}

ConvTiler MakeConvTiler(const StageContext& ctx, const Stage& stage) {
  const auto& conv =
      dynamic_cast<const nn::Conv2D&>(ctx.net.layer(stage.main_node));
  SC_CHECK(stage.input_nodes.size() == 1);
  const int producer = stage.input_nodes[0];
  const nn::Shape in_shape = TensorOf(ctx, producer).shape();
  const Tensor& out = TensorOf(ctx, stage.output_node);

  ConvTiler t;
  t.ic = in_shape[0];
  t.ih = in_shape[1];
  t.in_w = in_shape[2];
  t.od = out.shape()[0];
  t.oh = out.shape()[1];
  t.ow = out.shape()[2];
  t.cw = ctx.net.output_shape(stage.main_node)[1];  // pre-pool width
  t.f = conv.filter();
  t.s = conv.stride();
  t.p = conv.pad();
  t.pooled = stage.pool_node != -1;
  if (t.pooled) {
    const auto& pool =
        dynamic_cast<const nn::Pooling&>(ctx.net.layer(stage.pool_node));
    t.f_pool = pool.window();
    t.s_pool = pool.stride();
    t.p_pool = pool.pad();
  }
  t.eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  t.ifm_buffer_bytes = ctx.cfg.ifm_buffer_bytes;
  t.weight_buffer_bytes = ctx.cfg.weight_buffer_bytes;
  t.ofm_buffer_bytes = ctx.cfg.ofm_buffer_bytes;

  SC_CHECK_MSG(t.WeightsPerOc() <= ctx.cfg.weight_buffer_bytes,
               "conv stage '" << ctx.net.layer(stage.main_node).name()
                              << "': one filter does not fit the weight "
                                 "buffer");
  // Feasibility: either one pooled output row's working set fits, or the
  // stage can stream conv rows into an on-chip pooling accumulator (the
  // fused-global-pool case, e.g. SqueezeNet's conv10 + 13x13 average
  // pool), which only needs one conv row's input halo at a time.
  SC_CHECK_MSG(t.TileFits(1) || t.StreamingOk(),
               "conv stage '" << ctx.net.layer(stage.main_node).name()
                              << "' cannot fit a single output row on chip");
  return t;
}

// --- fully-connected stage ---------------------------------------------------

void SimulateFcStageCommon(const StageContext& ctx, const Stage& stage,
                           StageStats* stats) {
  const auto& fc = dynamic_cast<const nn::FullyConnected&>(
      ctx.net.layer(stage.main_node));
  SC_CHECK(stage.input_nodes.size() == 1);
  const int producer = stage.input_nodes[0];
  const Tensor& out = TensorOf(ctx, stage.output_node);

  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  const Region wreg = ctx.map.weights(stage.main_node);
  const Region ofm_reg = ctx.map.ofm(stage.output_node);

  // Whole input vector on chip (FC inputs are small relative to weights).
  const nn::Shape in_shape = TensorOf(ctx, producer).shape();
  EmitFmapRowReads(ctx, producer, 0, in_shape[1]);
  ctx.emit.FinishTile(0, 0);

  const std::uint64_t weights_per_oc =
      static_cast<std::uint64_t>(fc.in_features()) * eb;
  const int oc_block = std::max<int>(
      1, static_cast<int>(std::min<std::uint64_t>(
             static_cast<std::uint64_t>(fc.out_features()),
             ctx.cfg.weight_buffer_bytes / weights_per_oc)));

  for (int oc0 = 0; oc0 < fc.out_features(); oc0 += oc_block) {
    const int noc = std::min(oc_block, fc.out_features() - oc0);
    ctx.emit.Read(wreg.base + static_cast<std::uint64_t>(oc0) * weights_per_oc,
                  static_cast<std::uint64_t>(noc) * weights_per_oc);
    const long long tile_macs =
        static_cast<long long>(noc) * fc.in_features();
    stats->macs += tile_macs;
    ctx.emit.FinishTile(tile_macs, 0);
  }

  // Single write-back of the whole output vector (the FC OFM is one tile;
  // with pruning it is one compressed stream, so only the aggregate count
  // leaks for FC layers).
  PrunedInfo* info =
      &ctx.region_info[static_cast<std::size_t>(stage.output_node)];
  if (!ctx.cfg.zero_pruning) {
    ctx.emit.Write(ofm_reg.base, out.numel() * eb);
  } else {
    const std::uint64_t per_elem =
        eb + static_cast<std::uint64_t>(ctx.cfg.prune_index_bytes);
    const std::uint64_t header =
        static_cast<std::uint64_t>(ctx.cfg.prune_header_bytes);
    const std::size_t nnz = out.CountNonZeros();
    const std::uint64_t stream =
        header + static_cast<std::uint64_t>(nnz) * per_elem;
    const std::uint64_t burst =
        ctx.cfg.prune_constant_shape ? header + out.numel() * per_elem
                                     : stream;
    ctx.emit.Write(ofm_reg.base, burst);
    info->pruned = true;
    info->slot_bytes = 0;
    info->stream_bytes = {stream};
  }
  ctx.emit.FinishTile(0, static_cast<long long>(out.numel()));
}

// --- standalone pooling / element-wise stages --------------------------------

void SimulateStreamStageCommon(const StageContext& ctx, const Stage& stage,
                               StageStats* stats) {
  const Tensor& out = TensorOf(ctx, stage.output_node);
  const Region ofm_reg = ctx.map.ofm(stage.output_node);
  const int oh = out.shape()[1];
  const int od = out.shape()[0];

  int f = 1, s = 1, p = 0;
  if (stage.kind == StageKind::kPool) {
    const auto& pool =
        dynamic_cast<const nn::Pooling&>(ctx.net.layer(stage.main_node));
    f = pool.window();
    s = pool.stride();
    p = pool.pad();
  }

  // Row-streamed: read the input rows feeding each output row block (from
  // every producer for eltwise), compute, write back.
  const std::uint64_t ofm_row_bytes =
      static_cast<std::uint64_t>(out.shape()[2]) *
      static_cast<std::uint64_t>(od) *
      static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  int row_block = std::max<int>(
      1, static_cast<int>(ctx.cfg.ofm_buffer_bytes /
                          std::max<std::uint64_t>(1, ofm_row_bytes)));
  row_block = std::min(row_block, oh);

  OfmWriter writer(
      ctx, out, ofm_reg,
      &ctx.region_info[static_cast<std::size_t>(stage.output_node)]);
  std::vector<bool> compressed_fetched(stage.input_nodes.size(), false);

  for (int ry0 = 0; ry0 < oh; ry0 += row_block) {
    const int ry1 = std::min(oh, ry0 + row_block);
    for (std::size_t k = 0; k < stage.input_nodes.size(); ++k) {
      const int producer = stage.input_nodes[k];
      const nn::Shape in_shape = TensorOf(ctx, producer).shape();
      if (IsPruned(ctx, producer)) {
        if (!compressed_fetched[k]) {
          EmitFmapRowReads(ctx, producer, 0, in_shape[1]);
          compressed_fetched[k] = true;
        }
        continue;
      }
      int i0 = ry0, i1 = ry1;
      if (stage.kind == StageKind::kPool) {
        i0 = std::max(0, ry0 * s - p);
        i1 = std::min(in_shape[1], (ry1 - 1) * s - p + f);
        i1 = std::max(i1, i0 + 1);
      }
      EmitFmapRowReads(ctx, producer, i0, i1);
    }
    const long long tile_simd =
        static_cast<long long>(ry1 - ry0) * out.shape()[2] * od * f * f *
        static_cast<long long>(std::max<std::size_t>(
            1, stage.input_nodes.size()));
    writer.WriteRows(0, od, ry0, ry1);
    ctx.emit.FinishTile(0, tile_simd);
  }
  (void)stats;
}

}  // namespace sc::accel
