// Dataflow taxonomy for the accelerator backends (DESIGN.md §13).
//
// A dataflow names which operand stays resident in the PE array while the
// tiled schedule walks the layer: weight-stationary keeps one block of
// filters on chip and streams the input feature map past it (the paper's
// schedule, Figure 1); output-stationary keeps one block of output
// accumulators on chip and streams the weights past it. Both block the
// output tensor the same way (ConvTiler below); they differ in loop order
// and in which operand is re-fetched per block — exactly the properties a
// bus probe observes.
#ifndef SC_ACCEL_DATAFLOW_H_
#define SC_ACCEL_DATAFLOW_H_

#include <cstdint>
#include <utility>

namespace sc::accel {

enum class Dataflow {
  kWeightStationary,   // oc blocks outer; IFM rows re-read per oc block
  kOutputStationary,   // row blocks outer; weights re-read per row block
};

const char* ToString(Dataflow d);

// Accepts "weight_stationary"/"ws" and "output_stationary"/"os". Returns
// false (leaving *out untouched) for anything else.
bool ParseDataflow(const char* s, Dataflow* out);

// Process-wide default, seeded once from the SC_DATAFLOW environment
// variable (same knob pattern as SC_THREADS / SC_METRICS). Unset or empty
// means weight-stationary; an unparseable value throws sc::Error at first
// use. Byte-exact golden tests pin the dataflow explicitly instead of
// relying on this.
Dataflow DefaultDataflow();

// How a backend tiles one convolution stage, reported to the structure
// attack so the Eq. (1)-(8) candidate filter can predict a hypothesis'
// DRAM traffic under *this* schedule instead of assuming the
// weight-stationary split (attack/structure/schedule.h).
struct ScheduleModel {
  Dataflow dataflow = Dataflow::kWeightStationary;

  // Tile loop order: true = output-channel blocks outermost (each oc block
  // re-fetches the IFM rows it convolves); false = output-row blocks
  // outermost (each row block re-fetches every weight block).
  bool oc_blocks_outer = true;

  // Extra per-tile SIMD ops per output element (the output-stationary
  // accumulator drain); part of the backend's per-tile cycle model. Summed
  // over a layer's tiles each output element drains exactly once, so a
  // layer's drain ops are SizeOfm() * drain_ops_per_elem, retired at
  // simd_lanes ops per cycle.
  int drain_ops_per_elem = 0;
  int simd_lanes = 0;  // 0 = drain not modelled

  // Datasheet buffer capacities the tile extents derive from — public
  // microarchitecture, same provenance as SearchConfig::macs_per_cycle.
  std::uint64_t ifm_buffer_bytes = 0;
  std::uint64_t weight_buffer_bytes = 0;
  std::uint64_t ofm_buffer_bytes = 0;
  int element_bytes = 4;
};

// Shared conv tile arithmetic. Both backends size output-channel blocks by
// the weight buffer and output-row blocks by the IFM/OFM buffers; the
// attack-side traffic predictor mirrors the same selection, so it lives
// here rather than inside either backend.
struct ConvTiler {
  // Layer geometry.
  int ic = 0;       // input depth
  int ih = 0;       // input height
  int in_w = 0;     // input width
  int od = 0;       // output depth
  int oh = 0;       // final (post-pool) output height
  int ow = 0;       // final output width
  int cw = 0;       // pre-pool convolution output width
  int f = 1;        // conv filter / stride / pad
  int s = 1;
  int p = 0;
  bool pooled = false;
  int f_pool = 1;
  int s_pool = 1;
  int p_pool = 0;

  // Datasheet.
  std::uint64_t eb = 4;  // element bytes
  std::uint64_t ifm_buffer_bytes = 0;
  std::uint64_t weight_buffer_bytes = 0;
  std::uint64_t ofm_buffer_bytes = 0;

  // Bytes of one output channel's filter bank.
  std::uint64_t WeightsPerOc() const {
    return static_cast<std::uint64_t>(ic) * static_cast<std::uint64_t>(f) *
           static_cast<std::uint64_t>(f) * eb;
  }

  // Output channels handled per tile (>= 1, capped at od).
  int OcBlock() const;

  // Rows of the pre-pool conv output feeding final rows [ry0, ry1).
  std::pair<int, int> ConvRowSpan(int ry0, int ry1) const;
  // IFM rows feeding final rows [ry0, ry1).
  std::pair<int, int> IfmRowSpan(int ry0, int ry1) const;

  // True when a tile of `rows` final rows x OcBlock() channels fits the
  // IFM and OFM buffers.
  bool TileFits(int rows) const;
  // Fused-global-pool fallback: one conv row's halo streams through an
  // on-chip pooling accumulator.
  bool StreamingOk() const;
  // Largest feasible row block (>= 1 even when only streaming fits).
  int RowBlock() const;
};

}  // namespace sc::accel

#endif  // SC_ACCEL_DATAFLOW_H_
