#include "accel/address_map.h"

#include "nn/layer.h"
#include "support/check.h"

namespace sc::accel {

namespace {

// Returns the concat consumer of `node`, or -1. A node may feed at most one
// concat (it has a single physical copy of its output).
int ConcatConsumer(const nn::Network& net, int node) {
  int found = -1;
  for (int consumer : net.ConsumersOf(node)) {
    if (net.layer(consumer).kind() == nn::LayerKind::kConcat) {
      SC_CHECK_MSG(found == -1, "node " << node
                                        << " feeds more than one concat; "
                                           "aliased layout is ambiguous");
      found = consumer;
    }
  }
  return found;
}

}  // namespace

AddressMap::AddressMap(const nn::Network& net, int element_bytes,
                       std::uint64_t align, std::uint64_t guard,
                       std::uint64_t fmap_extra_per_elem,
                       std::uint64_t fmap_extra_const)
    : element_bytes_(element_bytes),
      align_(align),
      guard_(guard),
      weights_(static_cast<std::size_t>(net.num_nodes())),
      ofm_(static_cast<std::size_t>(net.num_nodes())) {
  SC_CHECK_MSG(element_bytes_ >= 1, "element_bytes must be >= 1");
  SC_CHECK_MSG(align_ >= 1, "alignment must be >= 1");

  const auto eb = static_cast<std::uint64_t>(element_bytes_);
  // Capacity of a feature-map region holding n elements.
  auto fmap_bytes = [&](std::uint64_t n) {
    return n * (eb + fmap_extra_per_elem) + fmap_extra_const;
  };
  // Capacity of node i's region. A concat region is exactly the sum of its
  // children's capacities (children alias into it back-to-back).
  auto node_capacity = [&](int i, auto&& self) -> std::uint64_t {
    if (net.layer(i).kind() == nn::LayerKind::kConcat) {
      std::uint64_t total = 0;
      for (int src : net.inputs_of(i)) {
        SC_CHECK_MSG(src != nn::kInputNode,
                     "concat over the network input is not supported");
        total += self(src, self);
      }
      return total;
    }
    return fmap_bytes(net.output_shape(i).numel());
  };

  // Input feature map first (what a host-side DMA would set up).
  input_ = Region{Allocate(net.input_shape().numel() * eb),
                  net.input_shape().numel() * eb};

  // Weights: one region per parameterized layer, in layer order. Bias
  // vectors are *not* stored off-chip: they are tiny and ship with the
  // layer's configuration, so the filter region size matches the paper's
  // Eq. (3) exactly (F^2 * D_IFM * D_OFM).
  for (int i = 0; i < net.num_nodes(); ++i) {
    // Params() is non-const by design (it exposes gradient slots); the map
    // only needs sizes, so a const_cast here is contained and safe.
    auto& layer = const_cast<nn::Layer&>(net.layer(i));
    std::uint64_t param_elems = 0;
    for (const nn::ParamRef& p : layer.Params())
      if (p.value->shape().rank() >= 2) param_elems += p.value->numel();
    if (param_elems > 0) {
      weights_[static_cast<std::size_t>(i)] =
          Region{Allocate(param_elems * eb), param_elems * eb};
    }
  }

  // Feature maps: concat nodes get one region; their producers alias into
  // it. Two passes: allocate non-aliased regions first, then resolve.
  for (int i = 0; i < net.num_nodes(); ++i) {
    if (ConcatConsumer(net, i) != -1) continue;  // aliased, resolved below
    const std::uint64_t bytes = node_capacity(i, node_capacity);
    ofm_[static_cast<std::size_t>(i)] = Region{Allocate(bytes), bytes};
  }
  // Resolve aliases. Nested concats resolve because we iterate until fixed
  // point (a producer's concat may itself alias into an outer concat).
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = 0; i < net.num_nodes(); ++i) {
      auto& region = ofm_[static_cast<std::size_t>(i)];
      if (region.valid()) continue;
      const int concat = ConcatConsumer(net, i);
      SC_CHECK(concat != -1);
      const Region& parent = ofm_[static_cast<std::size_t>(concat)];
      if (!parent.valid()) continue;  // outer concat not yet resolved
      // Offset = sum of sizes of concat inputs that precede this node.
      std::uint64_t offset = 0;
      for (int src : net.inputs_of(concat)) {
        if (src == i) break;
        offset += node_capacity(src, node_capacity);
      }
      const std::uint64_t bytes = node_capacity(i, node_capacity);
      SC_CHECK(offset + bytes <= parent.bytes);
      region = Region{parent.base + offset, bytes};
      progress = true;
    }
  }
  for (int i = 0; i < net.num_nodes(); ++i)
    SC_CHECK_MSG(ofm_[static_cast<std::size_t>(i)].valid(),
                 "unresolved feature-map region for node " << i);
}

std::uint64_t AddressMap::Allocate(std::uint64_t bytes) {
  SC_CHECK(bytes > 0);
  // Round the cursor up to alignment, reserve, then add the guard gap so
  // adjacent tensors are never contiguous in the address space.
  const std::uint64_t base = (next_free_ + align_ - 1) / align_ * align_;
  next_free_ = base + bytes + guard_;
  return base;
}

const Region& AddressMap::weights(int node) const {
  SC_CHECK(node >= 0 && static_cast<std::size_t>(node) < weights_.size());
  return weights_[static_cast<std::size_t>(node)];
}

const Region& AddressMap::ofm(int node) const {
  SC_CHECK(node >= 0 && static_cast<std::size_t>(node) < ofm_.size());
  return ofm_[static_cast<std::size_t>(node)];
}

}  // namespace sc::accel
