// Output-stationary backend. Output-row blocks are the outer tile loop:
// each row block pins its output accumulators on chip, fetches its IFM
// halo once, and streams every filter bank past it — so weights are
// re-read once per row block (the mirror image of the weight-stationary
// IFM re-reads). Finished accumulators drain through the SIMD datapath,
// adding one op per output element to the per-tile cycle model.
//
// Block selection (ConvTiler) and OFM write-back (OfmWriter) are shared
// with the weight-stationary backend, so per-tile write bursts — the §4
// zero-count channel — are identical across dataflows by construction.
#include "accel/accelerator.h"
#include "accel/backend.h"

#include <algorithm>

namespace sc::accel {

namespace {

class OutputStationaryBackend final : public Backend {
 public:
  Dataflow dataflow() const override { return Dataflow::kOutputStationary; }

  ScheduleModel schedule_model(const AcceleratorConfig& cfg) const override {
    ScheduleModel m;
    m.dataflow = Dataflow::kOutputStationary;
    m.oc_blocks_outer = false;
    m.drain_ops_per_elem = 1;
    m.simd_lanes = cfg.simd_lanes;
    m.ifm_buffer_bytes = cfg.ifm_buffer_bytes;
    m.weight_buffer_bytes = cfg.weight_buffer_bytes;
    m.ofm_buffer_bytes = cfg.ofm_buffer_bytes;
    m.element_bytes = cfg.element_bytes;
    return m;
  }

  void SimulateConv(const StageContext& ctx, const Stage& stage,
                    StageStats* stats) const override {
    const ConvTiler t = MakeConvTiler(ctx, stage);
    const int producer = stage.input_nodes[0];
    const nn::Tensor& out = TensorOf(ctx, stage.output_node);
    const Region wreg = ctx.map.weights(stage.main_node);
    const Region ofm_reg = ctx.map.ofm(stage.output_node);
    SC_CHECK(wreg.valid());

    const std::uint64_t weights_per_oc = t.WeightsPerOc();
    const int oc_block = t.OcBlock();
    const int row_block = t.RowBlock();

    const std::uint64_t ifm_total = TensorOf(ctx, producer).numel() * t.eb;
    const bool cache_whole_ifm =
        !IsPruned(ctx, producer) && ifm_total <= ctx.cfg.ifm_buffer_bytes;

    // Whole-IFM prefetch (also places the boundary-defining RAW read
    // first) — same policy as weight-stationary; the dataflows only differ
    // in what they re-fetch when the IFM does NOT fit.
    if (cache_whole_ifm) {
      EmitFmapRowReads(ctx, producer, 0, t.ih);
      ctx.emit.FinishTile(0, 0);
    }

    OfmWriter writer(
        ctx, out, ofm_reg,
        &ctx.region_info[static_cast<std::size_t>(stage.output_node)]);

    for (int ry0 = 0; ry0 < t.oh; ry0 += row_block) {
      const int ry1 = std::min(t.oh, ry0 + row_block);
      // IFM halo once per row block; it stays resident while every filter
      // bank streams past it. A pruned producer has no row addressing, so
      // its compressed stream is re-fetched once per row block.
      if (!cache_whole_ifm) {
        if (IsPruned(ctx, producer)) {
          EmitFmapRowReads(ctx, producer, 0, t.ih);
        } else {
          const auto [i0, i1] = t.IfmRowSpan(ry0, ry1);
          EmitFmapRowReads(ctx, producer, i0, i1);
        }
      }
      for (int oc0 = 0; oc0 < t.od; oc0 += oc_block) {
        const int noc = std::min(oc_block, t.od - oc0);
        // Weights stream through once per (row block, oc block): the
        // weight buffer holds only the bank in flight, so nothing persists
        // across row blocks. This re-read is the output-stationary cost a
        // bus probe sees (and the attack's traffic model predicts).
        ctx.emit.Read(wreg.base + static_cast<std::uint64_t>(oc0) *
                                      weights_per_oc,
                      static_cast<std::uint64_t>(noc) * weights_per_oc);

        const auto [p0, p1] = t.ConvRowSpan(ry0, ry1);
        const long long tile_macs = static_cast<long long>(p1 - p0) * t.cw *
                                    noc * t.f * t.f * t.ic;
        // Pool/activation SIMD work as in weight-stationary, plus the
        // accumulator drain: one SIMD op per finished output element.
        const long long drain =
            static_cast<long long>(ry1 - ry0) * t.ow * noc;
        const long long tile_simd =
            (t.pooled ? static_cast<long long>(ry1 - ry0) * t.ow * noc *
                            t.f_pool * t.f_pool
                      : static_cast<long long>(p1 - p0) * t.cw * noc) +
            drain;
        stats->macs += tile_macs;

        writer.WriteRows(oc0, oc0 + noc, ry0, ry1);
        ctx.emit.FinishTile(tile_macs, tile_simd);
      }
    }
  }

  void SimulateFc(const StageContext& ctx, const Stage& stage,
                  StageStats* stats) const override {
    // FC: the whole output vector is accumulator-resident under either
    // dataflow, so the schedules coincide.
    SimulateFcStageCommon(ctx, stage, stats);
  }

  void SimulateStream(const StageContext& ctx, const Stage& stage,
                      StageStats* stats) const override {
    // No weights to re-fetch; pool/eltwise streaming is dataflow-neutral.
    SimulateStreamStageCommon(ctx, stage, stats);
  }
};

}  // namespace

const Backend& GetOutputStationaryBackend() {
  static const OutputStationaryBackend b;
  return b;
}

}  // namespace sc::accel
