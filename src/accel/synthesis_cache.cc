#include "accel/synthesis_cache.h"

#include <cstring>
#include <utility>

#include "support/check.h"

namespace sc::accel {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// FNV-1a over 64-bit words (digests here hash megabytes of tensor data per
// run key, so mix a word per step rather than a byte).
inline std::uint64_t MixWord(std::uint64_t h, std::uint64_t w) {
  h ^= w;
  return h * kFnvPrime;
}

std::uint64_t MixBytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = MixWord(h, w);
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  if (n > 0) {
    std::memcpy(&tail, p, n);
    h = MixWord(h, tail ^ (std::uint64_t{n} << 56));
  }
  return h;
}

// Digest of the config fields that determine *which events* a stage emits.
// collect_metrics, the bus hooks, the capture path and the ReLU override
// change metrics, post-processing or data — never the emission schedule —
// so they are deliberately absent (the override is in the run key instead).
std::uint64_t EmissionFingerprint(const AcceleratorConfig& cfg) {
  std::uint64_t h = kFnvOffset;
  h = MixWord(h, static_cast<std::uint64_t>(cfg.dataflow));
  h = MixWord(h, static_cast<std::uint64_t>(cfg.macs_per_cycle));
  h = MixWord(h, static_cast<std::uint64_t>(cfg.simd_lanes));
  h = MixWord(h, cfg.ifm_buffer_bytes);
  h = MixWord(h, cfg.weight_buffer_bytes);
  h = MixWord(h, cfg.ofm_buffer_bytes);
  h = MixWord(h, static_cast<std::uint64_t>(cfg.element_bytes));
  h = MixWord(h, static_cast<std::uint64_t>(cfg.bytes_per_cycle));
  h = MixWord(h, cfg.region_align);
  h = MixWord(h, cfg.region_guard);
  h = MixWord(h, cfg.zero_pruning ? 1 : 0);
  h = MixWord(h, static_cast<std::uint64_t>(cfg.prune_index_bytes));
  h = MixWord(h, static_cast<std::uint64_t>(cfg.prune_header_bytes));
  h = MixWord(h, cfg.prune_constant_shape ? 1 : 0);
  return h;
}

std::size_t RunRecordBytes(const SynthesisCache::RunRecord& rec) {
  std::size_t b = sizeof(rec) +
                  rec.stage_keys.capacity() * sizeof(SynthesisCache::StageKey) +
                  rec.output.numel() * sizeof(float);
  for (const StageStats& s : rec.stages)
    b += sizeof(s) + s.ofm_channel_nonzeros.capacity() * sizeof(std::size_t);
  return b;
}

}  // namespace

std::size_t SynthesisCache::StageKeyHash::operator()(const StageKey& k) const {
  std::uint64_t h = kFnvOffset;
  h = MixWord(h, k.stage_index);
  h = MixWord(h, k.data_digest);
  h = MixWord(h, k.producer_digest);
  return static_cast<std::size_t>(h);
}

void SynthesisCache::Bind(const nn::Network& net,
                          const AcceleratorConfig& cfg) {
  SC_CHECK_MSG(net_ == nullptr || net_ == &net,
               "a SynthesisCache serves one victim network; create a new "
               "cache (or Clone the oracle) for a different victim");
  const std::uint64_t fp = EmissionFingerprint(cfg);
  if (net_ != nullptr && fp != cfg_fingerprint_) Clear();
  net_ = &net;
  cfg_fingerprint_ = fp;
}

std::uint64_t SynthesisCache::RunKey(const nn::Tensor& input,
                                     const AcceleratorConfig& cfg) const {
  std::uint64_t h = MixWord(kFnvOffset, cfg_fingerprint_);
  std::uint32_t relu_bits;
  std::memcpy(&relu_bits, &cfg.relu_threshold_override, sizeof(relu_bits));
  h = MixWord(h, relu_bits);
  const nn::Shape& s = input.shape();
  h = MixWord(h, static_cast<std::uint64_t>(s.rank()));
  for (int d = 0; d < s.rank(); ++d)
    h = MixWord(h, static_cast<std::uint64_t>(s[d]));
  return MixBytes(h, input.data(), input.numel() * sizeof(float));
}

std::uint64_t SynthesisCache::DataDigest(const nn::Tensor& out) {
  std::uint64_t h = kFnvOffset;
  if (out.shape().rank() == 3) {
    const int d = out.shape()[0];
    const int rows = out.shape()[1];
    for (int c = 0; c < d; ++c)
      for (int y = 0; y < rows; ++y)
        h = MixWord(h, CountNonZerosRows(out, c, y, y + 1));
    return h;
  }
  return MixWord(h, out.CountNonZeros());
}

std::uint64_t SynthesisCache::ProducerDigest(
    const nn::Network& net, const std::vector<PrunedInfo>& info,
    const std::vector<int>& input_nodes) {
  std::uint64_t h = kFnvOffset;
  // Iterative expansion of concat producers, mirroring the recursion in
  // IsPruned/EmitCompressedStreamReads.
  std::vector<int> work(input_nodes.rbegin(), input_nodes.rend());
  while (!work.empty()) {
    const int node = work.back();
    work.pop_back();
    if (node == nn::kInputNode) {
      h = MixWord(h, 0x1du);  // dense host input marker
      continue;
    }
    if (net.layer(node).kind() == nn::LayerKind::kConcat) {
      const auto& srcs = net.inputs_of(node);
      work.insert(work.end(), srcs.rbegin(), srcs.rend());
      continue;
    }
    const PrunedInfo& pi = info[static_cast<std::size_t>(node)];
    h = MixWord(h, pi.pruned ? 1 : 0);
    h = MixWord(h, pi.slot_bytes);
    h = MixWord(h, pi.stream_bytes.size());
    for (std::uint64_t b : pi.stream_bytes) h = MixWord(h, b);
  }
  return h;
}

const StageBlock* SynthesisCache::FindStage(const StageKey& key) const {
  const auto it = stages_.find(key);
  if (it == stages_.end()) {
    ++stage_misses_;
    return nullptr;
  }
  ++stage_hits_;
  return &it->second;
}

void SynthesisCache::StoreStage(const StageKey& key, StageBlock&& block) {
  const std::size_t bytes = block.ApproxBytes();
  if (bytes > budget_bytes_) return;  // pathological single stage: skip
  if (used_bytes_ + bytes > budget_bytes_) Clear();
  used_bytes_ += bytes;
  stages_.insert_or_assign(key, std::move(block));
}

const SynthesisCache::RunRecord* SynthesisCache::FindRun(
    std::uint64_t key) const {
  const auto it = runs_.find(key);
  if (it == runs_.end()) {
    ++run_misses_;
    return nullptr;
  }
  // A budget flush may have dropped stage blocks this record points at;
  // treat that as a miss so the caller re-synthesizes.
  for (const StageKey& sk : it->second.stage_keys) {
    if (stages_.find(sk) == stages_.end()) {
      ++run_misses_;
      return nullptr;
    }
  }
  ++run_hits_;
  return &it->second;
}

void SynthesisCache::StoreRun(std::uint64_t key, RunRecord&& rec) {
  for (const StageKey& sk : rec.stage_keys) {
    if (stages_.find(sk) == stages_.end()) return;  // flushed mid-run
  }
  const std::size_t bytes = RunRecordBytes(rec);
  if (bytes > budget_bytes_) return;
  // Clearing here would drop the stage blocks the record needs, so a
  // record that does not fit is simply not stored.
  if (used_bytes_ + bytes > budget_bytes_) return;
  used_bytes_ += bytes;
  runs_.insert_or_assign(key, std::move(rec));
}

void SynthesisCache::Clear() {
  stages_.clear();
  runs_.clear();
  used_bytes_ = 0;
}

}  // namespace sc::accel
