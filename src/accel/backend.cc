#include "accel/backend.h"

namespace sc::accel {

// Defined in backend_ws.cc / backend_os.cc.
const Backend& GetWeightStationaryBackend();
const Backend& GetOutputStationaryBackend();

const Backend& GetBackend(Dataflow d) {
  switch (d) {
    case Dataflow::kWeightStationary: return GetWeightStationaryBackend();
    case Dataflow::kOutputStationary: return GetOutputStationaryBackend();
  }
  return GetWeightStationaryBackend();
}

}  // namespace sc::accel
