// Accelerator configuration (Figure 1 of the paper: PE array + on-chip
// buffers + DRAM behind a narrow bus).
#ifndef SC_ACCEL_CONFIG_H_
#define SC_ACCEL_CONFIG_H_

#include <cstdint>
#include <string>

#include "accel/dataflow.h"

namespace sc::trace {
class TraceTransform;
}

namespace sc::accel {

struct AcceleratorConfig {
  // --- dataflow ---
  // Which backend walks the tiled schedule (accel/backend.h):
  // weight-stationary (the paper's schedule) or output-stationary. Seeded
  // from the process-wide SC_DATAFLOW knob so whole suites re-run against
  // the other backend unchanged; byte-exact golden tests pin this field
  // explicitly instead.
  Dataflow dataflow = DefaultDataflow();

  // --- datapath ---
  int macs_per_cycle = 64;        // PE-array throughput
  int simd_lanes = 16;            // pool/eltwise/activation throughput

  // --- on-chip buffers (bytes) ---
  std::uint64_t ifm_buffer_bytes = 128 * 1024;
  std::uint64_t weight_buffer_bytes = 128 * 1024;
  std::uint64_t ofm_buffer_bytes = 64 * 1024;

  // --- off-chip interface ---
  int element_bytes = 4;          // bytes per feature-map / weight element
  int bytes_per_cycle = 16;       // DRAM bandwidth
  std::uint64_t region_align = 4096;  // allocator alignment for tensors
  std::uint64_t region_guard = 4096;  // guard gap between tensors

  // --- dynamic zero pruning (paper §4) ---
  // When enabled, OFM write-back is run-length compressed: only non-zero
  // elements are stored, plus a small per-element index and a per-tile
  // header. Write volume then leaks the number of zeros.
  bool zero_pruning = false;
  int prune_index_bytes = 2;      // per stored non-zero element
  int prune_header_bytes = 4;     // per written tile

  // Mitigation for the §4 count leak: pad every compressed write burst to
  // its worst-case size so write volumes carry no information. Data stays
  // compressed in DRAM (reads keep the bandwidth saving), so the write-
  // side leak closes at the cost of the write-side saving only. Effective
  // only with zero_pruning enabled.
  bool prune_constant_shape = false;

  // --- bus defense ---
  // When non-null, Run() passes the events it captured through this
  // transform before any fault injection, modelling a defense controller
  // sitting between the accelerator and the bus (defense/defense.h): the
  // probe observes the defended traffic. The victim's arithmetic, stage
  // stats and cycle counts are unaffected. Not owned; must outlive runs.
  const trace::TraceTransform* defense_hook = nullptr;

  // --- measurement fault injection ---
  // When non-null, Run() passes the events it captured (post-defense_hook)
  // through this transform before handing the trace to the caller,
  // modelling an imperfect probe between the bus and the adversary
  // (sim/noise.h). The accelerator's arithmetic, stage stats and cycle
  // counts are unaffected; only the adversary's view is corrupted. Not
  // owned; must outlive runs.
  const trace::TraceTransform* trace_fault_hook = nullptr;

  // --- capture to store ---
  // When non-empty, Run() also persists the trace it returns (after all
  // hooks, i.e. exactly the adversary's view) to this path in the sct-v1
  // binary format (store/writer.h), with the run's dataflow recorded in
  // the header metadata. Write is atomic (write-then-rename); failures
  // throw, so a capture run never silently drops its artifact.
  std::string capture_store_path;

  // --- observability ---
  // Per-run opt-out for the obs registry (DESIGN.md §9). Recording happens
  // only when this is true AND the global SC_METRICS switch is on, so
  // oracle-driven sweeps that would drown the accel.* counters (millions of
  // probe runs in the weight attack) can exclude themselves.
  bool collect_metrics = true;

  // --- activation ---
  // Tunable ReLU threshold applied by fused activation stages *in place of*
  // each Relu layer's own threshold when >= 0 (Minerva-style knob). A
  // negative value means "use the network's thresholds unchanged".
  float relu_threshold_override = -1.0f;
};

}  // namespace sc::accel

#endif  // SC_ACCEL_CONFIG_H_
