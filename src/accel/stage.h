// Fusion of network nodes into accelerator execution stages.
//
// Real CNN accelerators merge convolution, activation and pooling into one
// pass so intermediate results never leave the chip (paper §3.1: "These
// three operations are often merged and performed together as a single
// layer"). A Stage is that merged unit: it reads its input feature maps and
// weights from DRAM, computes, and writes exactly one output feature map
// back. Concat nodes dissolve entirely (their producers write into aliased
// sub-regions, see AddressMap).
#ifndef SC_ACCEL_STAGE_H_
#define SC_ACCEL_STAGE_H_

#include <vector>

#include "nn/network.h"

namespace sc::accel {

enum class StageKind {
  kConv,      // Conv2D (+ fused ReLU / pooling / ReLU)
  kFc,        // FullyConnected (+ fused ReLU)
  kPool,      // standalone pooling (input produced by another stage)
  kEltwise,   // element-wise addition (bypass path, + fused ReLU)
};

const char* ToString(StageKind k);

struct Stage {
  StageKind kind = StageKind::kConv;
  int main_node = -1;              // the Conv2D / FC / Pooling / EltwiseAdd
  int relu_node = -1;              // fused ReLU before pooling (-1 if none)
  int pool_node = -1;              // fused Pooling (-1 if none)
  int post_relu_node = -1;         // fused ReLU after pooling (-1 if none)
  int output_node = -1;            // last node of the stage (defines OFM)
  std::vector<int> input_nodes;    // producers feeding main_node; entries are
                                   // node ids or nn::kInputNode. A Concat
                                   // producer is replaced by the concat node
                                   // itself (its region holds the data).
};

// Partitions the network into stages. Every non-concat node belongs to
// exactly one stage; throws sc::Error if the graph contains a pattern the
// accelerator cannot schedule (e.g. a ReLU consumed by two stages).
std::vector<Stage> BuildStages(const nn::Network& net);

}  // namespace sc::accel

#endif  // SC_ACCEL_STAGE_H_
