#include "accel/accelerator.h"

#include <optional>
#include <utility>

#include "accel/backend.h"
#include "accel/backend_common.h"
#include "accel/synthesis_cache.h"
#include "store/writer.h"
#include "support/check.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace sc::accel {

using nn::Tensor;

namespace {

// Bulk copy of events [from, size) of `t` into a fresh trace, for the
// observation hooks and capture path (they transform only the events the
// current run appended).
trace::Trace CopyTail(const trace::Trace& t, std::size_t from) {
  trace::Trace out;
  const trace::TraceBuffer& buf = t.buffer();
  for (std::size_t ci = from >> trace::TraceBuffer::kChunkShift;
       ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    const std::size_t lo = ci << trace::TraceBuffer::kChunkShift;
    const std::size_t skip = from > lo ? from - lo : 0;
    if (skip >= v.count) continue;
    out.AppendColumns(v.cycles + skip, v.addrs + skip, v.bytes + skip,
                      v.ops + skip, v.count - skip);
  }
  return out;
}

void RecordStageCycleMetrics(const AcceleratorConfig& cfg,
                             std::uint64_t delta) {
  if (!cfg.collect_metrics) return;
  Metrics().stage_cycles.Record(delta);
  MetricsFor(cfg.dataflow).stage_cycles.Record(delta);
}

}  // namespace

AddressMap Accelerator::BuildMap(const nn::Network& net) const {
  // With zero pruning the compressed stream can exceed the dense size when
  // nothing prunes (index bytes per element plus one header per channel-row
  // tile, and there is at least one element per tile), so reserve
  // worst-case capacity per element.
  const std::uint64_t extra_per_elem =
      cfg_.zero_pruning ? static_cast<std::uint64_t>(cfg_.prune_index_bytes) +
                              static_cast<std::uint64_t>(cfg_.prune_header_bytes)
                        : 0;
  return AddressMap(net, cfg_.element_bytes, cfg_.region_align,
                    cfg_.region_guard, extra_per_elem, 0);
}

RunResult Accelerator::Run(const nn::Network& net, const nn::Tensor& input,
                           trace::Trace* out_trace,
                           const AddressMap* prebuilt_map,
                           SynthesisCache* cache) const {
  SC_CHECK_MSG(net.num_nodes() > 0, "cannot run an empty network");
  const Backend& backend = GetBackend(cfg_.dataflow);
  const std::size_t trace_prefix = out_trace ? out_trace->size() : 0;

  if (cfg_.collect_metrics) {
    Metrics().runs.Add();
    MetricsFor(cfg_.dataflow).runs.Add();
  }

  // Post-synthesis pipeline, shared by the fresh and replayed paths.
  // Observation hooks transform only the events this run appended, leaving
  // any earlier capture the caller accumulated untouched. The defense
  // controller sits on the bus, so it runs first; the probe's fault model
  // corrupts the defended traffic it observes. Capture-to-store persists
  // exactly what the adversary sees (post-hook events of this run).
  const auto finish = [&](RunResult&& result) {
    const trace::TraceTransform* hooks[] = {cfg_.defense_hook,
                                            cfg_.trace_fault_hook};
    for (const trace::TraceTransform* hook : hooks) {
      if (out_trace == nullptr || hook == nullptr) continue;
      const trace::Trace transformed =
          hook->Apply(CopyTail(*out_trace, trace_prefix));
      out_trace->Truncate(trace_prefix);
      out_trace->AppendAll(transformed);
    }
    if (!cfg_.capture_store_path.empty() && out_trace != nullptr) {
      support::json::Value meta = support::json::Value::Object();
      meta.object["dataflow"] =
          support::json::Value::String(ToString(cfg_.dataflow));
      meta.object["source"] = support::json::Value::String("accel.run");
      store::WriteTraceFile(cfg_.capture_store_path,
                            CopyTail(*out_trace, trace_prefix),
                            std::move(meta));
    }
    return std::move(result);
  };

  std::uint64_t run_key = 0;
  if (cache != nullptr) {
    cache->Bind(net, cfg_);
    run_key = cache->RunKey(input, cfg_);
    if (const SynthesisCache::RunRecord* rec = cache->FindRun(run_key)) {
      // Whole-run replay: no forward pass, no per-stage simulation — just
      // bulk appends of the recorded blocks plus the stored stats/output.
      Emitter emit(out_trace, cfg_);
      for (const SynthesisCache::StageKey& sk : rec->stage_keys) {
        const StageBlock* b = cache->FindStage(sk);
        SC_CHECK(b != nullptr);  // FindRun verified the blocks exist
        emit.Replay(*b, /*add_metrics=*/true);
        RecordStageCycleMetrics(cfg_, b->cycle_delta);
      }
      RunResult result;
      result.stages = rec->stages;
      result.total_cycles = rec->total_cycles;
      result.output = rec->output;
      return finish(std::move(result));
    }
  }

  std::optional<AddressMap> owned_map;
  if (prebuilt_map == nullptr) owned_map.emplace(BuildMap(net));
  const AddressMap& map = prebuilt_map ? *prebuilt_map : *owned_map;
  const std::vector<Stage> stages = BuildStages(net);
  const std::vector<Tensor> node_outputs =
      ForwardWithOverride(net, input, cfg_);

  Emitter emit(out_trace, cfg_);
  std::vector<PrunedInfo> region_info(
      static_cast<std::size_t>(net.num_nodes()));
  StageContext ctx{net, map, cfg_, node_outputs, input, emit, region_info};

  RunResult result;
  result.stages.resize(stages.size());
  for (std::size_t si = 0; si < stages.size(); ++si) {
    StageStats& stats = result.stages[si];
    stats.stage_index = static_cast<int>(si);
    stats.kind = stages[si].kind;
    stats.main_node = stages[si].main_node;
    stats.output_node = stages[si].output_node;
  }

  const auto simulate = [&backend](const StageContext& sctx,
                                   const Stage& stage, StageStats* stats) {
    switch (stage.kind) {
      case StageKind::kConv:
        backend.SimulateConv(sctx, stage, stats);
        break;
      case StageKind::kFc:
        backend.SimulateFc(sctx, stage, stats);
        break;
      case StageKind::kPool:
      case StageKind::kEltwise:
        backend.SimulateStream(sctx, stage, stats);
        break;
    }
  };

  const bool want_events = out_trace != nullptr || cache != nullptr;
  // Without zero pruning, region_info is never written, so stages share no
  // emission state and their blocks can be synthesized concurrently (cycle
  // math inside a block is shift-invariant); the in-order Replay stitch
  // below then reproduces the serial trace byte for byte. With pruning,
  // reads of a pruned producer depend on the producer stage's compressed
  // stream sizes, so synthesis stays serial.
  const bool parallel = want_events && !cfg_.zero_pruning &&
                        stages.size() > 1 &&
                        support::ThreadPool::GlobalThreads() > 1;

  SynthesisCache::RunRecord rec;
  if (cache != nullptr) rec.stage_keys.reserve(stages.size());

  if (parallel) {
    std::vector<StageBlock> blocks(stages.size());
    support::ParallelFor(
        0, static_cast<std::int64_t>(stages.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto si = static_cast<std::size_t>(i);
            Emitter worker(nullptr, cfg_);
            StageContext wctx{net,   map,    cfg_, node_outputs,
                              input, worker, region_info};
            worker.BeginStage(&blocks[si]);
            simulate(wctx, stages[si], &result.stages[si]);
            worker.EndStage();
            blocks[si].macs = result.stages[si].macs;
          }
        });
    for (std::size_t si = 0; si < stages.size(); ++si) {
      StageStats& stats = result.stages[si];
      stats.start_cycle = emit.cycle();
      // Workers already counted DRAM metrics while recording.
      emit.Replay(blocks[si], /*add_metrics=*/false);
      stats.end_cycle = emit.cycle();
      stats.bytes_read = blocks[si].stage_read;
      stats.bytes_written = blocks[si].stage_written;
      RecordStageCycleMetrics(cfg_, stats.end_cycle - stats.start_cycle);
      if (cache != nullptr) {
        const SynthesisCache::StageKey key{si, 0, 0};
        rec.stage_keys.push_back(key);
        cache->StoreStage(key, std::move(blocks[si]));
      }
    }
  } else {
    StageBlock scratch;  // pooled across stages; moved out only on store
    for (std::size_t si = 0; si < stages.size(); ++si) {
      const Stage& stage = stages[si];
      StageStats& stats = result.stages[si];

      SynthesisCache::StageKey key{si, 0, 0};
      const StageBlock* hit = nullptr;
      if (cache != nullptr) {
        if (cfg_.zero_pruning) {
          key.data_digest =
              SynthesisCache::DataDigest(TensorOf(ctx, stage.output_node));
          key.producer_digest = SynthesisCache::ProducerDigest(
              net, region_info, stage.input_nodes);
        }
        hit = cache->FindStage(key);
        rec.stage_keys.push_back(key);
      }

      stats.start_cycle = emit.cycle();
      if (hit != nullptr) {
        emit.Replay(*hit, /*add_metrics=*/true);
        stats.bytes_read = hit->stage_read;
        stats.bytes_written = hit->stage_written;
        stats.macs = hit->macs;
        region_info[static_cast<std::size_t>(stage.output_node)] = hit->info;
      } else {
        emit.BeginStage(want_events ? &scratch : nullptr);
        simulate(ctx, stage, &stats);
        emit.EndStage();
        stats.bytes_read = emit.stage_read();
        stats.bytes_written = emit.stage_written();
        if (cache != nullptr) {
          scratch.macs = stats.macs;
          scratch.info =
              region_info[static_cast<std::size_t>(stage.output_node)];
          cache->StoreStage(key, std::move(scratch));
          scratch = StageBlock{};
        }
      }
      stats.end_cycle = emit.cycle();
      RecordStageCycleMetrics(cfg_, stats.end_cycle - stats.start_cycle);
    }
  }

  for (std::size_t si = 0; si < stages.size(); ++si) {
    StageStats& stats = result.stages[si];
    const Tensor& out = TensorOf(ctx, stages[si].output_node);
    stats.ofm_elems = out.numel();
    stats.ofm_nonzeros = out.CountNonZeros();
    if (out.shape().rank() == 3) {
      stats.ofm_channel_nonzeros.resize(
          static_cast<std::size_t>(out.shape()[0]));
      for (int c = 0; c < out.shape()[0]; ++c)
        stats.ofm_channel_nonzeros[static_cast<std::size_t>(c)] =
            CountNonZerosRows(out, c, 0, out.shape()[1]);
    }
  }

  result.total_cycles = emit.cycle();
  result.output = node_outputs.back();

  if (cache != nullptr) {
    rec.stages = result.stages;
    rec.output = result.output;
    rec.total_cycles = result.total_cycles;
    cache->StoreRun(run_key, std::move(rec));
  }
  return finish(std::move(result));
}

ScheduleModel Accelerator::schedule_model() const {
  return GetBackend(cfg_.dataflow).schedule_model(cfg_);
}

}  // namespace sc::accel
