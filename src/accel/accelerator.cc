#include "accel/accelerator.h"

#include <optional>

#include "accel/backend.h"
#include "accel/backend_common.h"
#include "store/writer.h"
#include "support/check.h"
#include "support/json.h"

namespace sc::accel {

using nn::Tensor;

AddressMap Accelerator::BuildMap(const nn::Network& net) const {
  // With zero pruning the compressed stream can exceed the dense size when
  // nothing prunes (index bytes per element plus one header per channel-row
  // tile, and there is at least one element per tile), so reserve
  // worst-case capacity per element.
  const std::uint64_t extra_per_elem =
      cfg_.zero_pruning ? static_cast<std::uint64_t>(cfg_.prune_index_bytes) +
                              static_cast<std::uint64_t>(cfg_.prune_header_bytes)
                        : 0;
  return AddressMap(net, cfg_.element_bytes, cfg_.region_align,
                    cfg_.region_guard, extra_per_elem, 0);
}

RunResult Accelerator::Run(const nn::Network& net, const nn::Tensor& input,
                           trace::Trace* out_trace,
                           const AddressMap* prebuilt_map) const {
  SC_CHECK_MSG(net.num_nodes() > 0, "cannot run an empty network");
  const Backend& backend = GetBackend(cfg_.dataflow);
  const std::size_t trace_prefix = out_trace ? out_trace->size() : 0;
  std::optional<AddressMap> owned_map;
  if (prebuilt_map == nullptr) owned_map.emplace(BuildMap(net));
  const AddressMap& map = prebuilt_map ? *prebuilt_map : *owned_map;
  const std::vector<Stage> stages = BuildStages(net);
  const std::vector<Tensor> node_outputs =
      ForwardWithOverride(net, input, cfg_);

  Emitter emit(out_trace, cfg_);
  std::vector<PrunedInfo> region_info(
      static_cast<std::size_t>(net.num_nodes()));
  StageContext ctx{net, map, cfg_, node_outputs, input, emit, region_info};

  if (cfg_.collect_metrics) {
    Metrics().runs.Add();
    MetricsFor(cfg_.dataflow).runs.Add();
  }

  RunResult result;
  result.stages.reserve(stages.size());

  for (std::size_t si = 0; si < stages.size(); ++si) {
    const Stage& stage = stages[si];
    StageStats stats;
    stats.stage_index = static_cast<int>(si);
    stats.kind = stage.kind;
    stats.main_node = stage.main_node;
    stats.output_node = stage.output_node;
    stats.start_cycle = emit.cycle();
    emit.BeginStage();

    switch (stage.kind) {
      case StageKind::kConv:
        backend.SimulateConv(ctx, stage, &stats);
        break;
      case StageKind::kFc:
        backend.SimulateFc(ctx, stage, &stats);
        break;
      case StageKind::kPool:
      case StageKind::kEltwise:
        backend.SimulateStream(ctx, stage, &stats);
        break;
    }

    stats.end_cycle = emit.cycle();
    stats.bytes_read = emit.stage_read();
    stats.bytes_written = emit.stage_written();
    if (cfg_.collect_metrics) {
      Metrics().stage_cycles.Record(stats.end_cycle - stats.start_cycle);
      MetricsFor(cfg_.dataflow)
          .stage_cycles.Record(stats.end_cycle - stats.start_cycle);
    }

    const Tensor& out = TensorOf(ctx, stage.output_node);
    stats.ofm_elems = out.numel();
    stats.ofm_nonzeros = out.CountNonZeros();
    if (out.shape().rank() == 3) {
      stats.ofm_channel_nonzeros.resize(
          static_cast<std::size_t>(out.shape()[0]));
      for (int c = 0; c < out.shape()[0]; ++c)
        stats.ofm_channel_nonzeros[static_cast<std::size_t>(c)] =
            CountNonZerosRows(out, c, 0, out.shape()[1]);
    }
    result.stages.push_back(std::move(stats));
  }

  result.total_cycles = emit.cycle();
  result.output = node_outputs.back();

  // Observation hooks: transform only the events this run appended, leaving
  // any earlier capture the caller accumulated untouched. The defense
  // controller sits on the bus, so it runs first; the probe's fault model
  // corrupts the defended traffic it observes.
  const trace::TraceTransform* hooks[] = {cfg_.defense_hook,
                                          cfg_.trace_fault_hook};
  for (const trace::TraceTransform* hook : hooks) {
    if (out_trace == nullptr || hook == nullptr) continue;
    trace::Trace run_part;
    for (std::size_t i = trace_prefix; i < out_trace->size(); ++i)
      run_part.Append((*out_trace)[i]);
    const trace::Trace transformed = hook->Apply(run_part);
    out_trace->Truncate(trace_prefix);
    out_trace->AppendAll(transformed);
  }

  // Capture-to-store: persist exactly what the adversary sees (post-hook
  // events of this run) as an sct-v1 file.
  if (!cfg_.capture_store_path.empty() && out_trace != nullptr) {
    trace::Trace run_part;
    for (std::size_t i = trace_prefix; i < out_trace->size(); ++i)
      run_part.Append((*out_trace)[i]);
    support::json::Value meta = support::json::Value::Object();
    meta.object["dataflow"] =
        support::json::Value::String(ToString(cfg_.dataflow));
    meta.object["source"] = support::json::Value::String("accel.run");
    store::WriteTraceFile(cfg_.capture_store_path, run_part, std::move(meta));
  }
  return result;
}

ScheduleModel Accelerator::schedule_model() const {
  return GetBackend(cfg_.dataflow).schedule_model(cfg_);
}

}  // namespace sc::accel
