#include "accel/accelerator.h"

#include <algorithm>
#include <optional>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace sc::accel {

namespace {

using nn::Tensor;

// Metrics (DESIGN.md §9). All recording is additionally gated on
// AcceleratorConfig::collect_metrics so probe-heavy callers (the weight
// attack's oracle) can opt out of the accel.* counters per instance.
struct AccelMetrics {
  obs::Counter& runs = obs::Registry::Get().GetCounter("accel.runs");
  obs::Counter& read_events =
      obs::Registry::Get().GetCounter("accel.dram.read_events");
  obs::Counter& read_bytes =
      obs::Registry::Get().GetCounter("accel.dram.read_bytes");
  obs::Counter& write_events =
      obs::Registry::Get().GetCounter("accel.dram.write_events");
  obs::Counter& write_bytes =
      obs::Registry::Get().GetCounter("accel.dram.write_bytes");
  obs::Counter& raw_reads =
      obs::Registry::Get().GetCounter("accel.raw_reads");
  obs::Histogram& stage_cycles =
      obs::Registry::Get().GetHistogram("accel.stage.cycles");
};

AccelMetrics& Metrics() {
  static AccelMetrics m;
  return m;
}

// Integer ceiling division for cycle math.
std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

// Collects trace events and per-stage byte counters; owns the cycle clock.
class Emitter {
 public:
  Emitter(trace::Trace* t, const AcceleratorConfig& cfg)
      : trace_(t), cfg_(cfg) {}

  void Read(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_read_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().read_events.Add();
      Metrics().read_bytes.Add(bytes);
    }
    if (trace_)
      trace_->Append(cycle_, addr, Narrow(bytes), trace::MemOp::kRead);
  }

  void Write(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    stage_written_ += bytes;
    tile_bytes_ += bytes;
    if (cfg_.collect_metrics) {
      Metrics().write_events.Add();
      Metrics().write_bytes.Add(bytes);
    }
    if (trace_)
      trace_->Append(cycle_, addr, Narrow(bytes), trace::MemOp::kWrite);
  }

  // Ends the current tile: advances the clock by the larger of the tile's
  // compute time and its memory time, then starts a fresh tile.
  void FinishTile(long long tile_macs, long long tile_simd_ops) {
    const std::uint64_t compute =
        CeilDiv(static_cast<std::uint64_t>(tile_macs),
                static_cast<std::uint64_t>(cfg_.macs_per_cycle)) +
        CeilDiv(static_cast<std::uint64_t>(tile_simd_ops),
                static_cast<std::uint64_t>(cfg_.simd_lanes));
    const std::uint64_t mem =
        CeilDiv(tile_bytes_, static_cast<std::uint64_t>(cfg_.bytes_per_cycle));
    cycle_ += std::max<std::uint64_t>(1, std::max(compute, mem));
    tile_bytes_ = 0;
  }

  void BeginStage() {
    stage_read_ = 0;
    stage_written_ = 0;
    tile_bytes_ = 0;
  }

  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t stage_read() const { return stage_read_; }
  std::uint64_t stage_written() const { return stage_written_; }

 private:
  static std::uint32_t Narrow(std::uint64_t bytes) {
    SC_CHECK_MSG(bytes <= UINT32_MAX, "burst too large");
    return static_cast<std::uint32_t>(bytes);
  }

  trace::Trace* trace_;
  const AcceleratorConfig& cfg_;
  std::uint64_t cycle_ = 0;
  std::uint64_t stage_read_ = 0;
  std::uint64_t stage_written_ = 0;
  std::uint64_t tile_bytes_ = 0;
};

// Per-region bookkeeping of zero-pruned (compressed) contents. Each output
// channel owns a fixed-capacity slot inside the region (how RLE designs
// keep channels addressable); stream_bytes[c] is the compressed size of
// channel c's stream after write-back.
struct PrunedInfo {
  bool pruned = false;
  std::uint64_t slot_bytes = 0;  // per-channel slot capacity (0: one slot)
  std::vector<std::uint64_t> stream_bytes;
};

void ApplyRelu(Tensor& t, float threshold) {
  for (std::size_t i = 0; i < t.numel(); ++i)
    if (t[i] <= threshold) t[i] = 0.0f;
}

// Functional forward pass that honours the accelerator's ReLU-threshold
// override knob. Produces one tensor per node, identical to
// Network::Forward when no override is set.
std::vector<Tensor> ForwardWithOverride(const nn::Network& net,
                                        const Tensor& input,
                                        const AcceleratorConfig& cfg) {
  std::vector<Tensor> outs;
  outs.reserve(static_cast<std::size_t>(net.num_nodes()));
  for (int i = 0; i < net.num_nodes(); ++i) {
    std::vector<const Tensor*> ins;
    for (int src : net.inputs_of(i))
      ins.push_back(src == nn::kInputNode
                        ? &input
                        : &outs[static_cast<std::size_t>(src)]);
    if (net.layer(i).kind() == nn::LayerKind::kRelu &&
        cfg.relu_threshold_override >= 0.0f) {
      Tensor y = *ins[0];
      ApplyRelu(y, cfg.relu_threshold_override);
      outs.push_back(std::move(y));
    } else {
      outs.push_back(net.layer(i).Forward(ins));
    }
  }
  return outs;
}

// Counts non-zero elements of out[channel, rows y0..y1).
std::size_t CountNonZerosRows(const Tensor& t, int c, int y0, int y1) {
  const auto w = static_cast<std::size_t>(t.shape()[2]);
  const auto h = static_cast<std::size_t>(t.shape()[1]);
  const float* p =
      t.data() + (static_cast<std::size_t>(c) * h +
                  static_cast<std::size_t>(y0)) * w;
  const std::size_t n = static_cast<std::size_t>(y1 - y0) * w;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) nnz += (p[i] != 0.0f) ? 1u : 0u;
  return nnz;
}

// Context shared by the per-stage simulation helpers.
struct StageContext {
  const nn::Network& net;
  const AddressMap& map;
  const AcceleratorConfig& cfg;
  const std::vector<Tensor>& node_outputs;
  const Tensor& input;
  Emitter& emit;
  std::vector<PrunedInfo>& region_info;  // indexed by node id; input is dense
};

const Tensor& TensorOf(const StageContext& ctx, int node) {
  return node == nn::kInputNode
             ? ctx.input
             : ctx.node_outputs[static_cast<std::size_t>(node)];
}

Region RegionOf(const StageContext& ctx, int node) {
  return node == nn::kInputNode ? ctx.map.input() : ctx.map.ofm(node);
}

bool IsPruned(const StageContext& ctx, int node) {
  if (node == nn::kInputNode) return false;  // host writes the input densely
  if (ctx.net.layer(node).kind() == nn::LayerKind::kConcat) {
    // A concat region is pruned iff its components are (they are written by
    // the producing stages, which share one pruning setting).
    for (int src : ctx.net.inputs_of(node))
      if (IsPruned(ctx, src)) return true;
    return false;
  }
  return ctx.region_info[static_cast<std::size_t>(node)].pruned;
}

// Reads the compressed stream(s) of a pruned node; a concat fans out to its
// component streams (each sits at its own aliased sub-region base).
void EmitCompressedStreamReads(const StageContext& ctx, int node) {
  if (ctx.net.layer(node).kind() == nn::LayerKind::kConcat) {
    for (int src : ctx.net.inputs_of(node))
      EmitCompressedStreamReads(ctx, src);
    return;
  }
  const Region region = RegionOf(ctx, node);
  const auto& info = ctx.region_info[static_cast<std::size_t>(node)];
  for (std::size_t c = 0; c < info.stream_bytes.size(); ++c) {
    ctx.emit.Read(region.base + static_cast<std::uint64_t>(c) *
                                    info.slot_bytes,
                  info.stream_bytes[c]);
    if (ctx.cfg.collect_metrics && info.stream_bytes[c] > 0)
      Metrics().raw_reads.Add();
  }
}

// Emits IFM reads for rows [y0, y1) of every channel of `node`'s region.
// For a pruned producer the whole compressed stream is fetched instead
// (channel-stream model; row addressing is meaningless in a compressed
// stream). Returns true if it emitted the compressed fallback.
bool EmitFmapRowReads(const StageContext& ctx, int node, int y0, int y1) {
  const Region region = RegionOf(ctx, node);
  if (IsPruned(ctx, node)) {
    EmitCompressedStreamReads(ctx, node);
    return true;
  }
  const nn::Shape shape = TensorOf(ctx, node).shape();
  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  const auto h = static_cast<std::uint64_t>(shape[1]);
  const auto w = static_cast<std::uint64_t>(shape[2]);
  for (int c = 0; c < shape[0]; ++c) {
    const std::uint64_t addr =
        region.base +
        (static_cast<std::uint64_t>(c) * h + static_cast<std::uint64_t>(y0)) *
            w * eb;
    ctx.emit.Read(addr, static_cast<std::uint64_t>(y1 - y0) * w * eb);
  }
  // Reads of an earlier stage's OFM are the RAW-dependency events the
  // structure attack segments on (paper §3); input reads are not RAW.
  if (ctx.cfg.collect_metrics && node != nn::kInputNode)
    Metrics().raw_reads.Add(static_cast<std::uint64_t>(shape[0]));
  return false;
}

// Write-back engine for one stage's OFM: dense in-place rows, or
// zero-pruned compressed bursts appended to fixed per-channel stream slots.
// A compressed burst's size is header + nnz * (element + index), so each
// burst leaks its tile's non-zero count — the §4 side channel — and its
// slot address identifies the output channel.
class OfmWriter {
 public:
  OfmWriter(const StageContext& ctx, const Tensor& out, const Region& region,
            PrunedInfo* info)
      : ctx_(ctx), out_(out), region_(region), info_(info) {
    if (!ctx.cfg.zero_pruning) return;
    const auto d = static_cast<std::uint64_t>(out.shape()[0]);
    const auto h = static_cast<std::uint64_t>(out.shape()[1]);
    const auto w = static_cast<std::uint64_t>(out.shape()[2]);
    const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
    // Worst-case slot: every element survives pruning and every row is its
    // own tile (one header each).
    slot_bytes_ =
        h * w * (eb + static_cast<std::uint64_t>(ctx.cfg.prune_index_bytes)) +
        h * static_cast<std::uint64_t>(ctx.cfg.prune_header_bytes);
    SC_CHECK_MSG(d * slot_bytes_ <= region.bytes,
                 "pruned region capacity too small");
    cursors_.resize(static_cast<std::size_t>(d));
    for (std::uint64_t c = 0; c < d; ++c)
      cursors_[static_cast<std::size_t>(c)] = region.base + c * slot_bytes_;
    info_->pruned = true;
    info_->slot_bytes = slot_bytes_;
    info_->stream_bytes.assign(static_cast<std::size_t>(d), 0);
  }

  void WriteRows(int c0, int c1, int y0, int y1) {
    const auto eb = static_cast<std::uint64_t>(ctx_.cfg.element_bytes);
    const auto h = static_cast<std::uint64_t>(out_.shape()[1]);
    const auto w = static_cast<std::uint64_t>(out_.shape()[2]);
    if (!ctx_.cfg.zero_pruning) {
      for (int c = c0; c < c1; ++c) {
        const std::uint64_t addr =
            region_.base + (static_cast<std::uint64_t>(c) * h +
                            static_cast<std::uint64_t>(y0)) *
                               w * eb;
        ctx_.emit.Write(addr, static_cast<std::uint64_t>(y1 - y0) * w * eb);
      }
      return;
    }
    for (int c = c0; c < c1; ++c) {
      const std::size_t nnz = CountNonZerosRows(out_, c, y0, y1);
      const std::uint64_t per_elem =
          eb + static_cast<std::uint64_t>(ctx_.cfg.prune_index_bytes);
      const std::uint64_t header =
          static_cast<std::uint64_t>(ctx_.cfg.prune_header_bytes);
      const std::uint64_t payload =
          static_cast<std::uint64_t>(nnz) * per_elem;
      // Constant-shape mitigation: the burst is always worst-case sized,
      // so its length reveals nothing; the stream in DRAM stays compressed
      // for the reader.
      const std::uint64_t bytes =
          header + (ctx_.cfg.prune_constant_shape
                        ? static_cast<std::uint64_t>(y1 - y0) * w * per_elem
                        : payload);
      auto& cursor = cursors_[static_cast<std::size_t>(c)];
      SC_CHECK_MSG(cursor + bytes <= region_.base +
                                         static_cast<std::uint64_t>(c + 1) *
                                             slot_bytes_,
                   "compressed stream overflowed its slot");
      ctx_.emit.Write(cursor, bytes);
      cursor += bytes;
      auto& stream = info_->stream_bytes[static_cast<std::size_t>(c)];
      stream += header + payload;  // reads fetch the true compressed size
    }
  }

 private:
  const StageContext& ctx_;
  const Tensor& out_;
  Region region_;
  PrunedInfo* info_;
  std::uint64_t slot_bytes_ = 0;
  std::vector<std::uint64_t> cursors_;
};

// --- convolution stage -----------------------------------------------------

void SimulateConvStage(const StageContext& ctx, const Stage& stage,
                       StageStats* stats) {
  const auto& conv =
      dynamic_cast<const nn::Conv2D&>(ctx.net.layer(stage.main_node));
  SC_CHECK(stage.input_nodes.size() == 1);
  const int producer = stage.input_nodes[0];
  const nn::Shape in_shape = TensorOf(ctx, producer).shape();
  const Tensor& out = TensorOf(ctx, stage.output_node);

  const int ic = in_shape[0];
  const int ih = in_shape[1];
  const int od = out.shape()[0];
  const int oh = out.shape()[1];
  const int ow = out.shape()[2];
  const int cw = ctx.net.output_shape(stage.main_node)[1];  // pre-pool width

  int f_pool = 1, s_pool = 1, p_pool = 0;
  const bool pooled = stage.pool_node != -1;
  if (pooled) {
    const auto& pool =
        dynamic_cast<const nn::Pooling&>(ctx.net.layer(stage.pool_node));
    f_pool = pool.window();
    s_pool = pool.stride();
    p_pool = pool.pad();
  }

  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  const Region wreg = ctx.map.weights(stage.main_node);
  const Region ofm_reg = ctx.map.ofm(stage.output_node);
  SC_CHECK(wreg.valid());

  // --- tile selection ---
  const std::uint64_t weights_per_oc = static_cast<std::uint64_t>(ic) *
                                       static_cast<std::uint64_t>(conv.filter()) *
                                       static_cast<std::uint64_t>(conv.filter()) *
                                       eb;
  const int oc_block = std::max<int>(
      1, static_cast<int>(std::min<std::uint64_t>(
             static_cast<std::uint64_t>(od),
             ctx.cfg.weight_buffer_bytes / std::max<std::uint64_t>(
                                               1, weights_per_oc))));

  // Rows of the *final* (post-pool) output handled per tile.
  auto conv_row_span = [&](int ry0, int ry1) {
    int p0 = ry0, p1 = ry1;
    if (pooled) {
      p0 = std::max(0, ry0 * s_pool - p_pool);
      p1 = std::min(cw, (ry1 - 1) * s_pool - p_pool + f_pool);
    }
    return std::pair<int, int>(p0, std::max(p1, p0 + 1));
  };
  auto ifm_row_span = [&](int ry0, int ry1) {
    const auto [p0, p1] = conv_row_span(ry0, ry1);
    const int i0 = std::max(0, p0 * conv.stride() - conv.pad());
    const int i1 = std::min(
        ih, (p1 - 1) * conv.stride() - conv.pad() + conv.filter());
    return std::pair<int, int>(i0, std::max(i1, i0 + 1));
  };
  auto tile_fits = [&](int rows) {
    const auto [i0, i1] = ifm_row_span(0, rows);
    const std::uint64_t ifm_bytes = static_cast<std::uint64_t>(i1 - i0) *
                                    static_cast<std::uint64_t>(in_shape[2]) *
                                    static_cast<std::uint64_t>(ic) * eb;
    const std::uint64_t ofm_bytes = static_cast<std::uint64_t>(rows) *
                                    static_cast<std::uint64_t>(ow) *
                                    static_cast<std::uint64_t>(oc_block) * eb;
    return ifm_bytes <= ctx.cfg.ifm_buffer_bytes &&
           ofm_bytes <= ctx.cfg.ofm_buffer_bytes;
  };
  SC_CHECK_MSG(weights_per_oc <= ctx.cfg.weight_buffer_bytes,
               "conv stage '" << ctx.net.layer(stage.main_node).name()
                              << "': one filter does not fit the weight "
                                 "buffer");
  // Feasibility: either one pooled output row's working set fits, or the
  // stage can stream conv rows into an on-chip pooling accumulator (the
  // fused-global-pool case, e.g. SqueezeNet's conv10 + 13x13 average
  // pool), which only needs one conv row's input halo at a time.
  const std::uint64_t streaming_ifm_bytes =
      static_cast<std::uint64_t>(conv.filter()) *
      static_cast<std::uint64_t>(in_shape[2]) *
      static_cast<std::uint64_t>(ic) * eb;
  const std::uint64_t streaming_ofm_bytes =
      static_cast<std::uint64_t>(ow) * static_cast<std::uint64_t>(oc_block) *
      eb;
  const bool streaming_ok =
      streaming_ifm_bytes <= ctx.cfg.ifm_buffer_bytes &&
      streaming_ofm_bytes <= ctx.cfg.ofm_buffer_bytes;
  SC_CHECK_MSG(tile_fits(1) || streaming_ok,
               "conv stage '" << ctx.net.layer(stage.main_node).name()
                              << "' cannot fit a single output row on chip");
  int row_block = 1;
  while (row_block < oh && tile_fits(row_block + 1)) ++row_block;

  const std::uint64_t ifm_total = TensorOf(ctx, producer).numel() * eb;
  const bool cache_whole_ifm =
      !IsPruned(ctx, producer) && ifm_total <= ctx.cfg.ifm_buffer_bytes;

  // Whole-IFM prefetch (also places the boundary-defining RAW read first).
  if (cache_whole_ifm) {
    EmitFmapRowReads(ctx, producer, 0, ih);
    ctx.emit.FinishTile(0, 0);
  }

  OfmWriter writer(
      ctx, out, ofm_reg,
      &ctx.region_info[static_cast<std::size_t>(stage.output_node)]);
  bool compressed_fetched = false;

  for (int oc0 = 0; oc0 < od; oc0 += oc_block) {
    const int noc = std::min(oc_block, od - oc0);
    bool first_row_block = true;
    for (int ry0 = 0; ry0 < oh; ry0 += row_block) {
      const int ry1 = std::min(oh, ry0 + row_block);
      // IFM fetch (unless cached). A pruned producer is fetched as one
      // compressed stream per oc block.
      if (!cache_whole_ifm) {
        if (IsPruned(ctx, producer)) {
          if (first_row_block || !compressed_fetched) {
            EmitFmapRowReads(ctx, producer, 0, ih);
            compressed_fetched = true;
          }
        } else {
          const auto [i0, i1] = ifm_row_span(ry0, ry1);
          EmitFmapRowReads(ctx, producer, i0, i1);
        }
      }
      if (first_row_block) {
        // Weights once per oc block (biases live on chip).
        ctx.emit.Read(wreg.base + static_cast<std::uint64_t>(oc0) *
                                      weights_per_oc,
                      static_cast<std::uint64_t>(noc) * weights_per_oc);
        first_row_block = false;
      }

      const auto [p0, p1] = conv_row_span(ry0, ry1);
      const long long tile_macs = static_cast<long long>(p1 - p0) * cw * noc *
                                  conv.filter() * conv.filter() * ic;
      const long long tile_simd =
          pooled ? static_cast<long long>(ry1 - ry0) * ow * noc * f_pool *
                       f_pool
                 : static_cast<long long>(p1 - p0) * cw * noc;
      stats->macs += tile_macs;

      writer.WriteRows(oc0, oc0 + noc, ry0, ry1);
      ctx.emit.FinishTile(tile_macs, tile_simd);
    }
  }
}

// --- fully-connected stage ---------------------------------------------------

void SimulateFcStage(const StageContext& ctx, const Stage& stage,
                     StageStats* stats) {
  const auto& fc = dynamic_cast<const nn::FullyConnected&>(
      ctx.net.layer(stage.main_node));
  SC_CHECK(stage.input_nodes.size() == 1);
  const int producer = stage.input_nodes[0];
  const Tensor& out = TensorOf(ctx, stage.output_node);

  const auto eb = static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  const Region wreg = ctx.map.weights(stage.main_node);
  const Region ofm_reg = ctx.map.ofm(stage.output_node);

  // Whole input vector on chip (FC inputs are small relative to weights).
  const nn::Shape in_shape = TensorOf(ctx, producer).shape();
  EmitFmapRowReads(ctx, producer, 0, in_shape[1]);
  ctx.emit.FinishTile(0, 0);

  const std::uint64_t weights_per_oc =
      static_cast<std::uint64_t>(fc.in_features()) * eb;
  const int oc_block = std::max<int>(
      1, static_cast<int>(std::min<std::uint64_t>(
             static_cast<std::uint64_t>(fc.out_features()),
             ctx.cfg.weight_buffer_bytes / weights_per_oc)));

  for (int oc0 = 0; oc0 < fc.out_features(); oc0 += oc_block) {
    const int noc = std::min(oc_block, fc.out_features() - oc0);
    ctx.emit.Read(wreg.base + static_cast<std::uint64_t>(oc0) * weights_per_oc,
                  static_cast<std::uint64_t>(noc) * weights_per_oc);
    const long long tile_macs =
        static_cast<long long>(noc) * fc.in_features();
    stats->macs += tile_macs;
    ctx.emit.FinishTile(tile_macs, 0);
  }

  // Single write-back of the whole output vector (the FC OFM is one tile;
  // with pruning it is one compressed stream, so only the aggregate count
  // leaks for FC layers).
  PrunedInfo* info =
      &ctx.region_info[static_cast<std::size_t>(stage.output_node)];
  if (!ctx.cfg.zero_pruning) {
    ctx.emit.Write(ofm_reg.base, out.numel() * eb);
  } else {
    const std::uint64_t per_elem =
        eb + static_cast<std::uint64_t>(ctx.cfg.prune_index_bytes);
    const std::uint64_t header =
        static_cast<std::uint64_t>(ctx.cfg.prune_header_bytes);
    const std::size_t nnz = out.CountNonZeros();
    const std::uint64_t stream =
        header + static_cast<std::uint64_t>(nnz) * per_elem;
    const std::uint64_t burst =
        ctx.cfg.prune_constant_shape ? header + out.numel() * per_elem
                                     : stream;
    ctx.emit.Write(ofm_reg.base, burst);
    info->pruned = true;
    info->slot_bytes = 0;
    info->stream_bytes = {stream};
  }
  ctx.emit.FinishTile(0, static_cast<long long>(out.numel()));
}

// --- standalone pooling / element-wise stages --------------------------------

void SimulateStreamStage(const StageContext& ctx, const Stage& stage,
                         StageStats* stats) {
  const Tensor& out = TensorOf(ctx, stage.output_node);
  const Region ofm_reg = ctx.map.ofm(stage.output_node);
  const int oh = out.shape()[1];
  const int od = out.shape()[0];

  int f = 1, s = 1, p = 0;
  if (stage.kind == StageKind::kPool) {
    const auto& pool =
        dynamic_cast<const nn::Pooling&>(ctx.net.layer(stage.main_node));
    f = pool.window();
    s = pool.stride();
    p = pool.pad();
  }

  // Row-streamed: read the input rows feeding each output row block (from
  // every producer for eltwise), compute, write back.
  const std::uint64_t ofm_row_bytes =
      static_cast<std::uint64_t>(out.shape()[2]) *
      static_cast<std::uint64_t>(od) *
      static_cast<std::uint64_t>(ctx.cfg.element_bytes);
  int row_block = std::max<int>(
      1, static_cast<int>(ctx.cfg.ofm_buffer_bytes /
                          std::max<std::uint64_t>(1, ofm_row_bytes)));
  row_block = std::min(row_block, oh);

  OfmWriter writer(
      ctx, out, ofm_reg,
      &ctx.region_info[static_cast<std::size_t>(stage.output_node)]);
  std::vector<bool> compressed_fetched(stage.input_nodes.size(), false);

  for (int ry0 = 0; ry0 < oh; ry0 += row_block) {
    const int ry1 = std::min(oh, ry0 + row_block);
    for (std::size_t k = 0; k < stage.input_nodes.size(); ++k) {
      const int producer = stage.input_nodes[k];
      const nn::Shape in_shape = TensorOf(ctx, producer).shape();
      if (IsPruned(ctx, producer)) {
        if (!compressed_fetched[k]) {
          EmitFmapRowReads(ctx, producer, 0, in_shape[1]);
          compressed_fetched[k] = true;
        }
        continue;
      }
      int i0 = ry0, i1 = ry1;
      if (stage.kind == StageKind::kPool) {
        i0 = std::max(0, ry0 * s - p);
        i1 = std::min(in_shape[1], (ry1 - 1) * s - p + f);
        i1 = std::max(i1, i0 + 1);
      }
      EmitFmapRowReads(ctx, producer, i0, i1);
    }
    const long long tile_simd =
        static_cast<long long>(ry1 - ry0) * out.shape()[2] * od * f * f *
        static_cast<long long>(std::max<std::size_t>(
            1, stage.input_nodes.size()));
    writer.WriteRows(0, od, ry0, ry1);
    ctx.emit.FinishTile(0, tile_simd);
  }
  (void)stats;
}

}  // namespace

AddressMap Accelerator::BuildMap(const nn::Network& net) const {
  // With zero pruning the compressed stream can exceed the dense size when
  // nothing prunes (index bytes per element plus one header per channel-row
  // tile, and there is at least one element per tile), so reserve
  // worst-case capacity per element.
  const std::uint64_t extra_per_elem =
      cfg_.zero_pruning ? static_cast<std::uint64_t>(cfg_.prune_index_bytes) +
                              static_cast<std::uint64_t>(cfg_.prune_header_bytes)
                        : 0;
  return AddressMap(net, cfg_.element_bytes, cfg_.region_align,
                    cfg_.region_guard, extra_per_elem, 0);
}

RunResult Accelerator::Run(const nn::Network& net, const nn::Tensor& input,
                           trace::Trace* out_trace,
                           const AddressMap* prebuilt_map) const {
  SC_CHECK_MSG(net.num_nodes() > 0, "cannot run an empty network");
  const std::size_t trace_prefix = out_trace ? out_trace->size() : 0;
  std::optional<AddressMap> owned_map;
  if (prebuilt_map == nullptr) owned_map.emplace(BuildMap(net));
  const AddressMap& map = prebuilt_map ? *prebuilt_map : *owned_map;
  const std::vector<Stage> stages = BuildStages(net);
  const std::vector<Tensor> node_outputs =
      ForwardWithOverride(net, input, cfg_);

  Emitter emit(out_trace, cfg_);
  std::vector<PrunedInfo> region_info(
      static_cast<std::size_t>(net.num_nodes()));
  StageContext ctx{net, map, cfg_, node_outputs, input, emit, region_info};

  if (cfg_.collect_metrics) Metrics().runs.Add();

  RunResult result;
  result.stages.reserve(stages.size());

  for (std::size_t si = 0; si < stages.size(); ++si) {
    const Stage& stage = stages[si];
    StageStats stats;
    stats.stage_index = static_cast<int>(si);
    stats.kind = stage.kind;
    stats.main_node = stage.main_node;
    stats.output_node = stage.output_node;
    stats.start_cycle = emit.cycle();
    emit.BeginStage();

    switch (stage.kind) {
      case StageKind::kConv:
        SimulateConvStage(ctx, stage, &stats);
        break;
      case StageKind::kFc:
        SimulateFcStage(ctx, stage, &stats);
        break;
      case StageKind::kPool:
      case StageKind::kEltwise:
        SimulateStreamStage(ctx, stage, &stats);
        break;
    }

    stats.end_cycle = emit.cycle();
    stats.bytes_read = emit.stage_read();
    stats.bytes_written = emit.stage_written();
    if (cfg_.collect_metrics)
      Metrics().stage_cycles.Record(stats.end_cycle - stats.start_cycle);

    const Tensor& out = TensorOf(ctx, stage.output_node);
    stats.ofm_elems = out.numel();
    stats.ofm_nonzeros = out.CountNonZeros();
    if (out.shape().rank() == 3) {
      stats.ofm_channel_nonzeros.resize(
          static_cast<std::size_t>(out.shape()[0]));
      for (int c = 0; c < out.shape()[0]; ++c)
        stats.ofm_channel_nonzeros[static_cast<std::size_t>(c)] =
            CountNonZerosRows(out, c, 0, out.shape()[1]);
    }
    result.stages.push_back(std::move(stats));
  }

  result.total_cycles = emit.cycle();
  result.output = node_outputs.back();

  // Observation hooks: transform only the events this run appended, leaving
  // any earlier capture the caller accumulated untouched. The defense
  // controller sits on the bus, so it runs first; the probe's fault model
  // corrupts the defended traffic it observes.
  const trace::TraceTransform* hooks[] = {cfg_.defense_hook,
                                          cfg_.trace_fault_hook};
  for (const trace::TraceTransform* hook : hooks) {
    if (out_trace == nullptr || hook == nullptr) continue;
    trace::Trace run_part;
    for (std::size_t i = trace_prefix; i < out_trace->size(); ++i)
      run_part.Append((*out_trace)[i]);
    const trace::Trace transformed = hook->Apply(run_part);
    out_trace->Truncate(trace_prefix);
    out_trace->AppendAll(transformed);
  }
  return result;
}

}  // namespace sc::accel
