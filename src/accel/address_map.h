// DRAM layout for a network's tensors.
//
// Every weight tensor and every stage output feature map gets its own
// contiguous region, aligned and separated by a guard gap (what a real
// allocator's page alignment produces). Feature maps that feed a Concat
// node are aliased into the concat node's region at the proper channel
// offset, so concatenation costs no data movement — exactly the behaviour
// the paper relies on when it treats the fire-module output as one OFM.
#ifndef SC_ACCEL_ADDRESS_MAP_H_
#define SC_ACCEL_ADDRESS_MAP_H_

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace sc::accel {

struct Region {
  std::uint64_t base = 0;
  std::uint64_t bytes = 0;

  std::uint64_t end() const { return base + bytes; }
  bool valid() const { return bytes > 0; }
};

class AddressMap {
 public:
  // Builds the map for `net`. element_bytes is the off-chip storage size of
  // one tensor element; align/guard control region placement.
  //
  // fmap_extra_per_elem / fmap_extra_const add worst-case slack to every
  // feature-map region. Zero for dense layouts; with dynamic zero pruning a
  // run-length-compressed stream can exceed the dense size (index bytes +
  // per-tile headers when nothing prunes), so the accelerator reserves
  // capacity for the incompressible case.
  AddressMap(const nn::Network& net, int element_bytes, std::uint64_t align,
             std::uint64_t guard, std::uint64_t fmap_extra_per_elem = 0,
             std::uint64_t fmap_extra_const = 0);

  int element_bytes() const { return element_bytes_; }

  // Region holding the network input feature map.
  const Region& input() const { return input_; }

  // Region for node's weights; !valid() for parameter-free layers.
  const Region& weights(int node) const;

  // Region for node's output feature map. For a node that feeds a Concat,
  // this is the aliased sub-range of the concat node's region.
  const Region& ofm(int node) const;

  // Total extent of the mapped address space.
  std::uint64_t total_bytes() const { return next_free_; }

 private:
  std::uint64_t Allocate(std::uint64_t bytes);

  int element_bytes_;
  std::uint64_t align_;
  std::uint64_t guard_;
  std::uint64_t next_free_ = 0;
  Region input_;
  std::vector<Region> weights_;
  std::vector<Region> ofm_;
};

}  // namespace sc::accel

#endif  // SC_ACCEL_ADDRESS_MAP_H_
