// 2-D convolution layer (square filters, square feature maps).
#ifndef SC_NN_CONV2D_H_
#define SC_NN_CONV2D_H_

#include "nn/geometry.h"
#include "nn/layer.h"

namespace sc::nn {

// Convolution with per-side zero padding, floor output arithmetic (see
// geometry.h) and a per-output-channel bias. Weights are {oc, ic, f, f}.
class Conv2D : public Layer {
 public:
  Conv2D(std::string name, int in_depth, int out_depth, int filter,
         int stride, int pad);

  LayerKind kind() const override { return LayerKind::kConv; }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;
  std::vector<ParamRef> Params() override;

  int in_depth() const { return in_depth_; }
  int out_depth() const { return out_depth_; }
  int filter() const { return filter_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_depth_;
  int out_depth_;
  int filter_;
  int stride_;
  int pad_;
  Tensor weights_;       // {oc, ic, f, f}
  Tensor bias_;          // {oc}
  Tensor grad_weights_;  // same shapes as the parameters
  Tensor grad_bias_;
};

}  // namespace sc::nn

#endif  // SC_NN_CONV2D_H_
