#include "nn/network.h"

#include <algorithm>

namespace sc::nn {

Network::Network(Shape input_shape) : input_shape_(input_shape) {
  SC_CHECK_MSG(input_shape.rank() == 3, "network input must be rank-3");
}

const Network::Node& Network::NodeAt(int id) const {
  SC_CHECK_MSG(id >= 0 && id < num_nodes(), "bad node id " << id);
  return nodes_[static_cast<std::size_t>(id)];
}

Network::Node& Network::NodeAt(int id) {
  SC_CHECK_MSG(id >= 0 && id < num_nodes(), "bad node id " << id);
  return nodes_[static_cast<std::size_t>(id)];
}

int Network::Add(std::unique_ptr<Layer> layer, std::vector<int> inputs) {
  SC_CHECK(layer != nullptr);
  SC_CHECK_MSG(static_cast<int>(inputs.size()) == layer->num_inputs(),
               "layer '" << layer->name() << "' expects "
                         << layer->num_inputs() << " inputs, got "
                         << inputs.size());
  std::vector<Shape> in_shapes;
  in_shapes.reserve(inputs.size());
  for (int src : inputs) {
    SC_CHECK_MSG(src == kInputNode || (src >= 0 && src < num_nodes()),
                 "node '" << layer->name() << "' consumes unknown producer "
                          << src);
    in_shapes.push_back(src == kInputNode ? input_shape_
                                          : output_shape(src));
  }
  Shape out = layer->OutputShape(in_shapes);
  nodes_.push_back(Node{std::move(layer), std::move(inputs), out});
  return num_nodes() - 1;
}

int Network::Append(std::unique_ptr<Layer> layer) {
  const int prev = nodes_.empty() ? kInputNode : num_nodes() - 1;
  return Add(std::move(layer), {prev});
}

const Shape& Network::final_shape() const {
  SC_CHECK_MSG(!nodes_.empty(), "empty network");
  return nodes_.back().out_shape;
}

std::vector<int> Network::OutputNodes() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const Node& n : nodes_)
    for (int src : n.inputs)
      if (src != kInputNode) consumed[static_cast<std::size_t>(src)] = true;
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i)
    if (!consumed[static_cast<std::size_t>(i)]) out.push_back(i);
  return out;
}

std::vector<int> Network::ConsumersOf(int node) const {
  std::vector<int> out;
  for (int i = 0; i < num_nodes(); ++i) {
    const auto& ins = nodes_[static_cast<std::size_t>(i)].inputs;
    if (std::find(ins.begin(), ins.end(), node) != ins.end()) out.push_back(i);
  }
  return out;
}

std::vector<ParamRef> Network::Params() {
  std::vector<ParamRef> all;
  for (Node& n : nodes_)
    for (ParamRef p : n.layer->Params()) all.push_back(p);
  return all;
}

std::size_t Network::NumParams() {
  std::size_t n = 0;
  for (ParamRef p : Params()) n += p.value->numel();
  return n;
}

std::vector<Tensor> Network::Forward(const Tensor& input) const {
  SC_CHECK_MSG(input.shape() == input_shape_,
               "input shape " << input.shape() << " != network input "
                              << input_shape_);
  std::vector<Tensor> outs;
  outs.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    std::vector<const Tensor*> ins;
    ins.reserve(n.inputs.size());
    for (int src : n.inputs)
      ins.push_back(src == kInputNode
                        ? &input
                        : &outs[static_cast<std::size_t>(src)]);
    outs.push_back(n.layer->Forward(ins));
    SC_CHECK_MSG(outs.back().shape() == n.out_shape,
                 "layer '" << n.layer->name()
                           << "' produced unexpected shape");
  }
  return outs;
}

Tensor Network::ForwardFinal(const Tensor& input) const {
  std::vector<Tensor> outs = Forward(input);
  SC_CHECK_MSG(!outs.empty(), "empty network");
  return std::move(outs.back());
}

}  // namespace sc::nn
