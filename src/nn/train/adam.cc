#include "nn/train/adam.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace sc::nn::train {

void Adam::Step(const std::vector<ParamRef>& params) {
  ++t_;
  const double bc1 =
      1.0 - std::pow(static_cast<double>(cfg_.beta1), static_cast<double>(t_));
  const double bc2 =
      1.0 - std::pow(static_cast<double>(cfg_.beta2), static_cast<double>(t_));

  for (const ParamRef& p : params) {
    SC_CHECK(p.value != nullptr && p.grad != nullptr);
    SC_CHECK_MSG(p.value->shape() == p.grad->shape(),
                 "param/grad shape mismatch");
    auto it = std::find(keys_.begin(), keys_.end(), p.value);
    std::size_t idx;
    if (it == keys_.end()) {
      keys_.push_back(p.value);
      m_.emplace_back(p.value->shape());
      v_.emplace_back(p.value->shape());
      idx = keys_.size() - 1;
    } else {
      idx = static_cast<std::size_t>(it - keys_.begin());
    }
    Tensor& m = m_[idx];
    Tensor& v = v_[idx];

    for (std::size_t i = 0; i < p.value->numel(); ++i) {
      const float g = (*p.grad)[i] + cfg_.weight_decay * (*p.value)[i];
      m[i] = cfg_.beta1 * m[i] + (1.0f - cfg_.beta1) * g;
      v[i] = cfg_.beta2 * v[i] + (1.0f - cfg_.beta2) * g * g;
      const double m_hat = static_cast<double>(m[i]) / bc1;
      const double v_hat = static_cast<double>(v[i]) / bc2;
      (*p.value)[i] -= static_cast<float>(
          cfg_.learning_rate * m_hat /
          (std::sqrt(v_hat) + static_cast<double>(cfg_.epsilon)));
    }
    p.grad->Zero();
  }
}

}  // namespace sc::nn::train
