// Stochastic gradient descent with momentum and weight decay.
#ifndef SC_NN_TRAIN_SGD_H_
#define SC_NN_TRAIN_SGD_H_

#include <vector>

#include "nn/layer.h"

namespace sc::nn::train {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

// Classic momentum SGD: v = mu*v - lr*(g + wd*w); w += v.
// Velocity buffers are keyed by parameter identity and created lazily, so
// one optimizer instance serves a fixed parameter set for its lifetime.
class Sgd {
 public:
  explicit Sgd(SgdConfig cfg) : cfg_(cfg) {}

  // Applies one update using the gradients currently accumulated in
  // `params` and then zeroes the gradients.
  void Step(const std::vector<ParamRef>& params);

  const SgdConfig& config() const { return cfg_; }
  void set_learning_rate(float lr) { cfg_.learning_rate = lr; }

 private:
  SgdConfig cfg_;
  std::vector<Tensor> velocity_;
  std::vector<const Tensor*> keys_;
};

}  // namespace sc::nn::train

#endif  // SC_NN_TRAIN_SGD_H_
