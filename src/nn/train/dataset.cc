#include "nn/train/dataset.h"

#include <algorithm>
#include <cmath>

namespace sc::nn::train {

SyntheticDataset::SyntheticDataset(DatasetConfig cfg) : cfg_(cfg) {
  SC_CHECK_MSG(cfg.depth >= 1 && cfg.width >= 8 && cfg.num_classes >= 2 &&
                   cfg.blobs_per_class >= 1,
               "bad dataset config");
  Rng rng(cfg_.seed);
  class_blobs_.resize(static_cast<std::size_t>(cfg_.num_classes));
  for (auto& blobs : class_blobs_) {
    blobs.resize(static_cast<std::size_t>(cfg_.blobs_per_class));
    for (Blob& b : blobs) {
      b.cx = rng.UniformF(0.15f, 0.85f);
      b.cy = rng.UniformF(0.15f, 0.85f);
      b.radius = rng.UniformF(0.05f, 0.18f);
      b.amplitude.resize(static_cast<std::size_t>(cfg_.depth));
      for (float& a : b.amplitude) a = rng.UniformF(-1.0f, 1.0f);
    }
  }
}

Sample SyntheticDataset::MakeSample(int index, bool test_split) const {
  SC_CHECK(index >= 0);
  // Per-sample RNG derived from (seed, split, index) so any sample can be
  // regenerated independently.
  const std::uint64_t salt =
      test_split ? std::uint64_t{0x9E3779B97F4A7C15} : std::uint64_t{0};
  Rng rng(cfg_.seed * std::uint64_t{0x100000001B3} +
          static_cast<std::uint64_t>(index) + salt);

  Sample s;
  s.label = index % cfg_.num_classes;  // balanced classes
  s.image = Tensor(Shape{cfg_.depth, cfg_.width, cfg_.width});

  const auto& blobs = class_blobs_[static_cast<std::size_t>(s.label)];
  const float w = static_cast<float>(cfg_.width);

  for (const Blob& b : blobs) {
    const float cx = (b.cx + rng.GaussianF(cfg_.jitter)) * w;
    const float cy = (b.cy + rng.GaussianF(cfg_.jitter)) * w;
    const float r = b.radius * w;
    const float inv2r2 = 1.0f / (2.0f * r * r);
    // Rasterize the blob over a clipped bounding box (3 sigma).
    const int y0 = std::max(0, static_cast<int>(cy - 3 * r));
    const int y1 = std::min(cfg_.width - 1, static_cast<int>(cy + 3 * r));
    const int x0 = std::max(0, static_cast<int>(cx - 3 * r));
    const int x1 = std::min(cfg_.width - 1, static_cast<int>(cx + 3 * r));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        const float g = std::exp(-(dx * dx + dy * dy) * inv2r2);
        for (int c = 0; c < cfg_.depth; ++c)
          s.image.at(c, y, x) +=
              b.amplitude[static_cast<std::size_t>(c)] * g;
      }
    }
  }

  if (cfg_.noise > 0.0f) {
    for (std::size_t i = 0; i < s.image.numel(); ++i)
      s.image[i] += rng.GaussianF(cfg_.noise);
  }
  return s;
}

std::vector<Sample> SyntheticDataset::MakeTrainSet(int n) const {
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(MakeSample(i, /*test=*/false));
  return out;
}

std::vector<Sample> SyntheticDataset::MakeTestSet(int n) const {
  std::vector<Sample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(MakeSample(i, /*test=*/true));
  return out;
}

}  // namespace sc::nn::train
