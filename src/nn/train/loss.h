// Softmax cross-entropy loss for classification heads.
#ifndef SC_NN_TRAIN_LOSS_H_
#define SC_NN_TRAIN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace sc::nn::train {

// Numerically-stable softmax over a {c,1,1} (or {c}) logits tensor.
std::vector<float> Softmax(const Tensor& logits);

struct LossResult {
  float loss = 0.0f;
  Tensor grad_logits;  // dL/dlogits, same shape as the logits tensor
};

// Cross-entropy of softmax(logits) against an integer label.
LossResult SoftmaxCrossEntropy(const Tensor& logits, int label);

// Index of the max logit.
int ArgMax(const Tensor& logits);

// True when `label` is among the k largest logits.
bool InTopK(const Tensor& logits, int label, int k);

}  // namespace sc::nn::train

#endif  // SC_NN_TRAIN_LOSS_H_
