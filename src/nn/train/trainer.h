// End-to-end training and evaluation of a Network on a labelled dataset.
//
// Drives the candidate-structure ranking experiments (paper Figs. 4, 5):
// every reverse-engineered candidate is trained briefly and scored, and the
// adversary keeps the best-scoring structure.
#ifndef SC_NN_TRAIN_TRAINER_H_
#define SC_NN_TRAIN_TRAINER_H_

#include <vector>

#include "nn/network.h"
#include "nn/train/adam.h"
#include "nn/train/dataset.h"
#include "nn/train/sgd.h"
#include "support/rng.h"

namespace sc::nn::train {

// Full reverse-mode sweep over the network for one sample: runs Forward,
// applies softmax cross-entropy against `label`, back-propagates through the
// DAG (accumulating parameter gradients in the layers), and returns the
// loss. Multi-consumer nodes receive the sum of their consumers' gradients.
float ForwardBackward(Network& net, const Tensor& input, int label);

enum class Optimizer { kSgd, kAdam };

struct TrainConfig {
  int epochs = 3;
  int batch_size = 16;
  Optimizer optimizer = Optimizer::kSgd;
  SgdConfig sgd;
  AdamConfig adam;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
};

struct EvalResult {
  float top1 = 0.0f;
  float top5 = 0.0f;
  float mean_loss = 0.0f;
};

// Trains in-place with minibatch SGD (gradients averaged over the batch).
// Returns the mean training loss of the final epoch.
float Train(Network& net, const std::vector<Sample>& train_set,
            const TrainConfig& cfg);

EvalResult Evaluate(const Network& net, const std::vector<Sample>& test_set);

}  // namespace sc::nn::train

#endif  // SC_NN_TRAIN_TRAINER_H_
