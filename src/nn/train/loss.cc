#include "nn/train/loss.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace sc::nn::train {

std::vector<float> Softmax(const Tensor& logits) {
  SC_CHECK_MSG(logits.numel() > 0, "empty logits");
  float mx = logits[0];
  for (std::size_t i = 1; i < logits.numel(); ++i)
    mx = std::max(mx, logits[i]);
  std::vector<float> p(logits.numel());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    sum += p[i];
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : p) v *= inv;
  return p;
}

LossResult SoftmaxCrossEntropy(const Tensor& logits, int label) {
  SC_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) < logits.numel(),
               "label " << label << " out of range for " << logits.numel()
                        << " classes");
  std::vector<float> p = Softmax(logits);
  LossResult r;
  const float pl = std::max(p[static_cast<std::size_t>(label)], 1e-12f);
  r.loss = -std::log(pl);
  r.grad_logits = Tensor(logits.shape());
  for (std::size_t i = 0; i < logits.numel(); ++i) r.grad_logits[i] = p[i];
  r.grad_logits[static_cast<std::size_t>(label)] -= 1.0f;
  return r;
}

int ArgMax(const Tensor& logits) {
  SC_CHECK(logits.numel() > 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i < logits.numel(); ++i)
    if (logits[i] > logits[best]) best = i;
  return static_cast<int>(best);
}

bool InTopK(const Tensor& logits, int label, int k) {
  SC_CHECK(k >= 1);
  SC_CHECK(label >= 0 && static_cast<std::size_t>(label) < logits.numel());
  const float lv = logits[static_cast<std::size_t>(label)];
  int strictly_greater = 0;
  for (std::size_t i = 0; i < logits.numel(); ++i)
    if (logits[i] > lv) ++strictly_greater;
  return strictly_greater < k;
}

}  // namespace sc::nn::train
