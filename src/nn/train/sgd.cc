#include "nn/train/sgd.h"

#include <algorithm>

#include "support/check.h"

namespace sc::nn::train {

void Sgd::Step(const std::vector<ParamRef>& params) {
  for (const ParamRef& p : params) {
    SC_CHECK(p.value != nullptr && p.grad != nullptr);
    SC_CHECK_MSG(p.value->shape() == p.grad->shape(),
                 "param/grad shape mismatch");

    // Find or create the velocity buffer for this parameter.
    auto it = std::find(keys_.begin(), keys_.end(), p.value);
    std::size_t idx;
    if (it == keys_.end()) {
      keys_.push_back(p.value);
      velocity_.emplace_back(p.value->shape());
      idx = keys_.size() - 1;
    } else {
      idx = static_cast<std::size_t>(it - keys_.begin());
    }
    Tensor& v = velocity_[idx];

    for (std::size_t i = 0; i < p.value->numel(); ++i) {
      const float g = (*p.grad)[i] + cfg_.weight_decay * (*p.value)[i];
      v[i] = cfg_.momentum * v[i] - cfg_.learning_rate * g;
      (*p.value)[i] += v[i];
    }
    p.grad->Zero();
  }
}

}  // namespace sc::nn::train
