// Adam optimizer (Kingma & Ba, 2015).
//
// Deep narrow networks (the channel-scaled SqueezeNet candidates of the
// Fig. 5 experiment) collapse to constant outputs under plain SGD without
// normalization layers; Adam's per-parameter step sizes avoid that, so the
// candidate-ranking trainer uses it.
#ifndef SC_NN_TRAIN_ADAM_H_
#define SC_NN_TRAIN_ADAM_H_

#include <vector>

#include "nn/layer.h"

namespace sc::nn::train {

struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  explicit Adam(AdamConfig cfg) : cfg_(cfg) {}

  // Applies one update from the gradients accumulated in `params`, then
  // zeroes the gradients. Moment buffers are keyed by parameter identity.
  void Step(const std::vector<ParamRef>& params);

  const AdamConfig& config() const { return cfg_; }

 private:
  AdamConfig cfg_;
  std::vector<const Tensor*> keys_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  long long t_ = 0;
};

}  // namespace sc::nn::train

#endif  // SC_NN_TRAIN_ADAM_H_
