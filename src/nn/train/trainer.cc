#include "nn/train/trainer.h"

#include <algorithm>
#include <iostream>
#include <numeric>

#include "nn/train/loss.h"

namespace sc::nn::train {

float ForwardBackward(Network& net, const Tensor& input, int label) {
  const std::vector<Tensor> outs = net.Forward(input);
  SC_CHECK_MSG(!outs.empty(), "cannot train an empty network");
  const int last = net.num_nodes() - 1;

  LossResult loss = SoftmaxCrossEntropy(outs[static_cast<std::size_t>(last)],
                                        label);

  // dL/d(node output), accumulated over all consumers of each node.
  std::vector<Tensor> node_grads(outs.size());
  node_grads[static_cast<std::size_t>(last)] = std::move(loss.grad_logits);

  for (int id = last; id >= 0; --id) {
    Tensor& g_out = node_grads[static_cast<std::size_t>(id)];
    if (g_out.empty()) continue;  // node does not feed the loss

    const std::vector<int>& producers = net.inputs_of(id);
    std::vector<const Tensor*> ins;
    ins.reserve(producers.size());
    for (int src : producers)
      ins.push_back(src == kInputNode ? &input
                                      : &outs[static_cast<std::size_t>(src)]);

    std::vector<Tensor> in_grads = net.layer(id).Backward(
        ins, outs[static_cast<std::size_t>(id)], g_out);
    SC_CHECK(in_grads.size() == producers.size());

    for (std::size_t k = 0; k < producers.size(); ++k) {
      const int src = producers[k];
      if (src == kInputNode) continue;  // input gradient is discarded
      Tensor& acc = node_grads[static_cast<std::size_t>(src)];
      if (acc.empty()) {
        acc = std::move(in_grads[k]);
      } else {
        acc.Add(in_grads[k]);
      }
    }
    g_out = Tensor();  // free memory as we walk backwards
  }
  return loss.loss;
}

float Train(Network& net, const std::vector<Sample>& train_set,
            const TrainConfig& cfg) {
  SC_CHECK_MSG(!train_set.empty(), "empty training set");
  SC_CHECK(cfg.epochs >= 1 && cfg.batch_size >= 1);

  Sgd sgd(cfg.sgd);
  Adam adam(cfg.adam);
  std::vector<ParamRef> params = net.Params();
  Rng rng(cfg.shuffle_seed);

  std::vector<std::size_t> order(train_set.size());
  std::iota(order.begin(), order.end(), 0u);

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    std::size_t processed = 0;
    while (processed < order.size()) {
      const std::size_t batch =
          std::min<std::size_t>(static_cast<std::size_t>(cfg.batch_size),
                                order.size() - processed);
      for (std::size_t b = 0; b < batch; ++b) {
        const Sample& s = train_set[order[processed + b]];
        epoch_loss += ForwardBackward(net, s.image, s.label);
      }
      // Average the accumulated gradients over the batch, then step.
      const float inv = 1.0f / static_cast<float>(batch);
      for (const ParamRef& p : params) p.grad->Scale(inv);
      if (cfg.optimizer == Optimizer::kAdam) {
        adam.Step(params);
      } else {
        sgd.Step(params);
      }
      processed += batch;
    }
    last_epoch_loss =
        static_cast<float>(epoch_loss / static_cast<double>(order.size()));
    if (cfg.verbose) {
      std::cerr << "  epoch " << (epoch + 1) << "/" << cfg.epochs
                << " mean loss " << last_epoch_loss << "\n";
    }
  }
  return last_epoch_loss;
}

EvalResult Evaluate(const Network& net, const std::vector<Sample>& test_set) {
  SC_CHECK_MSG(!test_set.empty(), "empty test set");
  EvalResult r;
  double loss = 0.0;
  int top1 = 0, top5 = 0;
  for (const Sample& s : test_set) {
    const Tensor logits = net.ForwardFinal(s.image);
    loss += SoftmaxCrossEntropy(logits, s.label).loss;
    if (ArgMax(logits) == s.label) ++top1;
    if (InTopK(logits, s.label, 5)) ++top5;
  }
  const float n = static_cast<float>(test_set.size());
  r.top1 = static_cast<float>(top1) / n;
  r.top5 = static_cast<float>(top5) / n;
  r.mean_loss = static_cast<float>(loss / static_cast<double>(test_set.size()));
  return r;
}

}  // namespace sc::nn::train
