// Deterministic synthetic image-classification dataset.
//
// Substitute for ImageNet in the candidate-ranking experiments (paper
// Figs. 4 and 5) — see DESIGN.md §2. Each class is defined by a fixed
// constellation of Gaussian blobs (position, radius, per-channel amplitude);
// samples jitter the constellation and add noise, so the task is learnable
// by convolution + pooling but not linearly trivial.
#ifndef SC_NN_TRAIN_DATASET_H_
#define SC_NN_TRAIN_DATASET_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "support/rng.h"

namespace sc::nn::train {

struct Sample {
  Tensor image;  // {d, h, w}
  int label = 0;
};

struct DatasetConfig {
  int depth = 3;
  int width = 32;        // square images, height == width
  int num_classes = 10;
  int blobs_per_class = 4;
  float jitter = 0.08f;  // positional jitter as a fraction of width
  float noise = 0.15f;   // additive Gaussian pixel noise stddev
  std::uint64_t seed = 1;
};

class SyntheticDataset {
 public:
  explicit SyntheticDataset(DatasetConfig cfg);

  // Deterministic: sample i is a pure function of (config, split, i).
  Sample MakeSample(int index, bool test_split) const;

  std::vector<Sample> MakeTrainSet(int n) const;
  std::vector<Sample> MakeTestSet(int n) const;

  const DatasetConfig& config() const { return cfg_; }

 private:
  struct Blob {
    float cx, cy, radius;
    std::vector<float> amplitude;  // one per channel
  };

  DatasetConfig cfg_;
  std::vector<std::vector<Blob>> class_blobs_;  // [class][blob]
};

}  // namespace sc::nn::train

#endif  // SC_NN_TRAIN_DATASET_H_
