// Dense float32 tensor with up to 4 dimensions.
//
// Conventions used throughout the project:
//   - activations (feature maps) are rank-3 {depth, height, width};
//   - convolution weights are rank-4 {out_ch, in_ch, kh, kw};
//   - fully-connected weights are rank-2 {out, in};
//   - biases are rank-1 {out}.
// Row-major layout, innermost dimension last.
#ifndef SC_NN_TENSOR_H_
#define SC_NN_TENSOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "support/check.h"

namespace sc::nn {

// Shape of a tensor: 1 to 4 extents, each >= 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int> dims) : Shape(std::vector<int>(dims)) {}
  explicit Shape(const std::vector<int>& dims);

  int rank() const { return rank_; }
  int operator[](int i) const {
    SC_CHECK(i >= 0 && i < rank_);
    return dims_[static_cast<std::size_t>(i)];
  }
  std::size_t numel() const;

  bool operator==(const Shape& o) const;
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string ToString() const;

 private:
  std::array<int, 4> dims_{1, 1, 1, 1};
  int rank_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Shape& s);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) {
    SC_CHECK(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    SC_CHECK(i < data_.size());
    return data_[i];
  }

  // Rank-checked multi-dimensional accessors.
  float& at(int a);
  float at(int a) const;
  float& at(int a, int b);
  float at(int a, int b) const;
  float& at(int a, int b, int c);
  float at(int a, int b, int c) const;
  float& at(int a, int b, int c, int d);
  float at(int a, int b, int c, int d) const;

  void Fill(float v);
  void Zero() { Fill(0.0f); }

  // Number of exactly-zero elements (used by zero-pruning analyses).
  std::size_t CountZeros() const;
  std::size_t CountNonZeros() const { return numel() - CountZeros(); }

  // Elementwise helpers used by the trainer.
  void Add(const Tensor& other, float scale = 1.0f);  // this += scale*other
  void Scale(float s);

  // Maximum |a - b| over all elements; shapes must match.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);

 private:
  std::size_t Index1(int a) const;
  std::size_t Index2(int a, int b) const;
  std::size_t Index3(int a, int b, int c) const;
  std::size_t Index4(int a, int b, int c, int d) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace sc::nn

#endif  // SC_NN_TENSOR_H_
