// Max and average pooling layers.
//
// Both use ceil output arithmetic (geometry.h): a window that only partially
// overlaps the input still produces an output. Max pooling ignores padding /
// out-of-range positions; average pooling always divides by the full window
// area f*f (Caffe's pad-inclusive convention, which is also what the paper's
// Eq. (11) assumes).
#ifndef SC_NN_POOLING_H_
#define SC_NN_POOLING_H_

#include "nn/geometry.h"
#include "nn/layer.h"

namespace sc::nn {

class Pooling : public Layer {
 public:
  Pooling(std::string name, PoolKind pool, int window, int stride, int pad);

  LayerKind kind() const override {
    return pool_ == PoolKind::kMax ? LayerKind::kMaxPool : LayerKind::kAvgPool;
  }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;

  PoolKind pool_kind() const { return pool_; }
  int window() const { return window_; }
  int stride() const { return stride_; }
  int pad() const { return pad_; }

 private:
  PoolKind pool_;
  int window_;
  int stride_;
  int pad_;
};

// Convenience factories.
std::unique_ptr<Pooling> MakeMaxPool(std::string name, int window, int stride,
                                     int pad = 0);
std::unique_ptr<Pooling> MakeAvgPool(std::string name, int window, int stride,
                                     int pad = 0);

}  // namespace sc::nn

#endif  // SC_NN_POOLING_H_
