// Fully-connected layer.
//
// Accepts any rank-3 input {d, h, w} and treats it as a flat vector of
// d*h*w features (the accelerator-level view: an FC layer is a convolution
// whose filter covers the whole input). Output is {out, 1, 1} so FC layers
// compose with the rest of the rank-3 pipeline.
#ifndef SC_NN_DENSE_H_
#define SC_NN_DENSE_H_

#include "nn/layer.h"

namespace sc::nn {

class FullyConnected : public Layer {
 public:
  FullyConnected(std::string name, int in_features, int out_features);

  LayerKind kind() const override { return LayerKind::kFullyConnected; }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;
  std::vector<ParamRef> Params() override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  Tensor& weights() { return weights_; }
  const Tensor& weights() const { return weights_; }
  Tensor& bias() { return bias_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  Tensor weights_;  // {out, in}
  Tensor bias_;     // {out}
  Tensor grad_weights_;
  Tensor grad_bias_;
};

}  // namespace sc::nn

#endif  // SC_NN_DENSE_H_
