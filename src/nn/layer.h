// Polymorphic layer interface.
//
// Layers are pure functions of their inputs plus owned parameters. Training
// support lives in the same interface (Backward accumulates into per-layer
// gradient tensors) so the candidate-ranking experiments (paper Figs. 4, 5)
// can train any network the builders produce.
#ifndef SC_NN_LAYER_H_
#define SC_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace sc::nn {

enum class LayerKind {
  kConv,
  kMaxPool,
  kAvgPool,
  kRelu,
  kFullyConnected,
  kConcat,
  kEltwiseAdd,
};

const char* ToString(LayerKind k);

// A parameter tensor paired with its gradient accumulator.
struct ParamRef {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  explicit Layer(std::string name) : name_(std::move(name)) {}
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  const std::string& name() const { return name_; }
  virtual LayerKind kind() const = 0;

  // Number of input tensors this layer consumes (1 for most; >= 2 for
  // concat / eltwise).
  virtual int num_inputs() const { return 1; }

  // Shape inference; throws sc::Error on inconsistent input shapes.
  virtual Shape OutputShape(const std::vector<Shape>& in) const = 0;

  virtual Tensor Forward(const std::vector<const Tensor*>& in) const = 0;

  // Reverse-mode gradient: given the forward inputs, the forward output and
  // dL/d(output), returns dL/d(input_i) for each input and *accumulates*
  // parameter gradients into the tensors exposed by Params().
  virtual std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                                       const Tensor& out,
                                       const Tensor& grad_out) = 0;

  // Learnable parameters with their gradient accumulators; empty for
  // parameter-free layers.
  virtual std::vector<ParamRef> Params() { return {}; }

 private:
  std::string name_;
};

}  // namespace sc::nn

#endif  // SC_NN_LAYER_H_
