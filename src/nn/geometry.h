// Layer-geometry arithmetic shared by the inference engine, the accelerator
// simulator, and the structure-attack constraint solver.
//
// Conventions (validated element-by-element against the paper's Table 4,
// see DESIGN.md §5):
//   - padding values are per-side (P pixels added on each of the 4 edges);
//   - convolution output width uses floor division (Caffe convolution);
//   - pooling output width uses ceil division (Caffe pooling), i.e. a
//     partial window at the right/bottom edge still produces an output.
#ifndef SC_NN_GEOMETRY_H_
#define SC_NN_GEOMETRY_H_

#include <iosfwd>

namespace sc::nn {

// Output width of a convolution: floor((w + 2p - f) / s) + 1.
// Requires f >= 1, s >= 1, and a non-empty padded window (w + 2p >= f).
int ConvOutWidth(int w, int f, int s, int p);

// Output width of a pooling stage: ceil((w + 2p - f) / s) + 1.
int PoolOutWidth(int w, int f, int s, int p);

// True when the padded convolution walk covers the input exactly, i.e.
// (w + 2p - f) is divisible by s (no pixels dropped by the floor).
bool ConvDividesExactly(int w, int f, int s, int p);
bool PoolDividesExactly(int w, int f, int s, int p);

// Pooling flavour for fused conv+pool stages.
enum class PoolKind { kNone, kMax, kAvg };

const char* ToString(PoolKind k);
std::ostream& operator<<(std::ostream& os, PoolKind k);

// The 11 structural parameters of one CONV (+ optional fused pool) layer
// from the paper's Table 2. An FC layer is the degenerate case
// f_conv == w_ifm, s_conv == 1, p_conv == 0, no pooling, w_ofm == 1.
struct LayerGeometry {
  int w_ifm = 0;   // input feature-map width (== height; square maps)
  int d_ifm = 0;   // input depth (channels)
  int w_ofm = 0;   // output width after the optional pooling stage
  int d_ofm = 0;   // output depth
  int f_conv = 0;  // convolution filter width
  int s_conv = 1;  // convolution stride
  int p_conv = 0;  // convolution padding (per side)
  PoolKind pool = PoolKind::kNone;
  int f_pool = 0;  // pooling window (0 when pool == kNone)
  int s_pool = 0;
  int p_pool = 0;

  bool has_pool() const { return pool != PoolKind::kNone; }

  // Width between the convolution and the pooling stage.
  int ConvStageWidth() const;

  // Element counts observable from the memory trace (Eq. 1-3).
  long long SizeIfm() const;
  long long SizeOfm() const;
  long long SizeFilter() const;

  // Paper's MAC-count model: W_OFM^2 * D_OFM * F_conv^2 * D_IFM.
  long long MacCount() const;

  // MACs the hardware actually executes: the convolution runs at the
  // pre-pooling width (pooling discards values after they are computed),
  // so W_conv^2 * D_OFM * F_conv^2 * D_IFM. This is the count execution
  // time is proportional to, and what the timing filter uses.
  long long ConvMacCount() const;

  // True when this is the FC special case.
  bool IsFullyConnected() const;

  // Validates internal consistency (w_ofm matches the conv/pool arithmetic,
  // Eq. 5-8 inequality constraints). Returns false instead of throwing so
  // the solver can use it as a filter.
  bool IsConsistent() const;

  friend auto operator<=>(const LayerGeometry&,
                          const LayerGeometry&) = default;
};

std::ostream& operator<<(std::ostream& os, const LayerGeometry& g);

}  // namespace sc::nn

#endif  // SC_NN_GEOMETRY_H_
