#include "nn/conv2d.h"

#include <algorithm>
#include <cstdint>

#include "support/thread_pool.h"

namespace sc::nn {

namespace {

// Below this many MACs the pool's wake-up latency dominates any win, so
// small test tensors stay on the serial path.
constexpr std::int64_t kMinParallelMacs = 1 << 16;

// Adds the full KY x F tap block of one input channel to one stride-1
// output row. `x0` is the input row aligned with the block's first kernel
// row and `w0` the matching weight row. Taps apply in ascending (ky, kx)
// order per lane, so the per-pixel operation sequence matches a scalar
// triple loop bit-for-bit, while the compile-time extents fully unroll the
// block: each accumulator element is loaded and stored once per input
// channel. Edge lanes see the same ascending order over their clamped kx
// subset. Fixed per-row bases keep every interior load affine in ox, which
// the vectorizer needs (a single ky*w+kx indexed base defeats it).
// always_inline so the body is recompiled with the ISA of each caller clone.
template <int F, int KY>
__attribute__((always_inline)) inline void AccumulateRowBlock(
    float* __restrict acc, const float* __restrict x0,
    const float* __restrict w0, int w, int out_w, int pad) {
  const float* rows[static_cast<std::size_t>(KY)];
  float taps[static_cast<std::size_t>(KY)][static_cast<std::size_t>(F)];
  for (int ky = 0; ky < KY; ++ky) {
    rows[ky] = x0 + static_cast<std::ptrdiff_t>(ky) * w;
    for (int kx = 0; kx < F; ++kx)
      taps[ky][kx] = w0[static_cast<std::ptrdiff_t>(ky) * F + kx];
  }
  const int int_lo = std::min(pad, out_w);
  const int int_hi = std::max(int_lo, std::min(out_w, w + pad - F + 1));
  auto edge_lanes = [&](int e_lo, int e_hi) {
    for (int ox = e_lo; ox < e_hi; ++ox) {
      const int kx_lo = std::max(0, pad - ox);
      const int kx_hi = std::min(F, w + pad - ox);
      float a = acc[ox];
      for (int ky = 0; ky < KY; ++ky)
        for (int kx = kx_lo; kx < kx_hi; ++kx)
          a += rows[ky][ox - pad + kx] * taps[ky][kx];
      acc[ox] = a;
    }
  };
  edge_lanes(0, int_lo);
  for (int ox = int_lo; ox < int_hi; ++ox) {
    float a = acc[ox];
    for (int ky = 0; ky < KY; ++ky)
      for (int kx = 0; kx < F; ++kx)
        a += rows[ky][ox - pad + kx] * taps[ky][kx];
    acc[ox] = a;
  }
  edge_lanes(int_hi, out_w);
}

#define SC_KY_CASE(F, KY)                                     \
  case KY:                                                    \
    AccumulateRowBlock<F, KY>(acc, x0, w0, w, out_w, pad);    \
    return true;

// Dispatches one (input-channel, output-row) tap block to its unrolled
// kernel for common filter widths; returns false when no specialization
// exists (caller falls back to the generic per-tap loops).
__attribute__((always_inline)) inline bool RowBlockDispatch(
    int filter, int nky, float* __restrict acc, const float* __restrict x0,
    const float* __restrict w0, int w, int out_w, int pad) {
  switch (filter) {
    case 1:
      switch (nky) { SC_KY_CASE(1, 1) default: return false; }
    case 3:
      switch (nky) {
        SC_KY_CASE(3, 1) SC_KY_CASE(3, 2) SC_KY_CASE(3, 3) default:
          return false;
      }
    case 5:
      switch (nky) {
        SC_KY_CASE(5, 1) SC_KY_CASE(5, 2) SC_KY_CASE(5, 3) SC_KY_CASE(5, 4)
        SC_KY_CASE(5, 5) default:
          return false;
      }
    case 7:
      switch (nky) {
        SC_KY_CASE(7, 1) SC_KY_CASE(7, 2) SC_KY_CASE(7, 3) SC_KY_CASE(7, 4)
        SC_KY_CASE(7, 5) SC_KY_CASE(7, 6) SC_KY_CASE(7, 7) default:
          return false;
      }
    default:
      return false;
  }
}

#undef SC_KY_CASE

// One output channel of the forward convolution; `wd` points at this
// channel's {in_depth, filter, filter} weight block. Row-accumulator form:
// each output row accumulates in place, with the innermost loops running
// over contiguous output lanes so they vectorize. Every output pixel still
// sees its contributions in bias-then-(ic,ky,kx) ascending order — the same
// per-pixel operation sequence as a scalar triple loop — so results are
// bit-identical regardless of lane width. target_clones dispatches to an
// AVX2 build at runtime without baking -march into the whole tree (AVX2
// alone has no FMA, so per-lane rounding matches the default clone).
//
// ThreadSanitizer builds must not multiversion: target_clones emits an
// ifunc whose resolver runs during relocation, before the tsan runtime
// initializes, and the instrumented resolver segfaults on its shadow
// access. The default clone is bit-identical, so TSan coverage is intact.
#if defined(__SANITIZE_THREAD__)
#define SC_CONV_CLONES
#else
#define SC_CONV_CLONES __attribute__((target_clones("default", "avx2")))
#endif
SC_CONV_CLONES void ForwardOneChannel(
    const float* __restrict xd, const float* __restrict wd, float b,
    float* __restrict y_plane, int h, int w, int out_w, int in_depth,
    int filter, int stride, int pad) {
  for (int oy = 0; oy < out_w; ++oy) {
    const int iy0 = oy * stride - pad;
    const int ky_lo = iy0 < 0 ? -iy0 : 0;
    const int ky_hi = std::min(filter, h - iy0);
    float* __restrict acc =
        y_plane +
        static_cast<std::size_t>(oy) * static_cast<std::size_t>(out_w);
    for (int ox = 0; ox < out_w; ++ox) acc[ox] = b;
    if (ky_lo >= ky_hi) continue;
    const int nky = ky_hi - ky_lo;
    for (int ic = 0; ic < in_depth; ++ic) {
      const float* x_chan = xd + static_cast<std::size_t>(ic) *
                                     static_cast<std::size_t>(h) *
                                     static_cast<std::size_t>(w);
      const float* w_chan = wd + static_cast<std::size_t>(ic) *
                                     static_cast<std::size_t>(filter) *
                                     static_cast<std::size_t>(filter);
      if (stride == 1) {
        const float* x0 = x_chan + static_cast<std::size_t>(iy0 + ky_lo) *
                                       static_cast<std::size_t>(w);
        const float* w0 = w_chan + static_cast<std::size_t>(ky_lo) *
                                       static_cast<std::size_t>(filter);
        if (RowBlockDispatch(filter, nky, acc, x0, w0, w, out_w, pad))
          continue;
      }
      // Generic fallback (uncommon filter widths and strided convolutions):
      // one pass per tap over the lanes whose input column stays in [0, w).
      for (int ky = ky_lo; ky < ky_hi; ++ky) {
        const float* __restrict x_row =
            x_chan + static_cast<std::size_t>(iy0 + ky) *
                         static_cast<std::size_t>(w);
        const float* w_row = w_chan + static_cast<std::size_t>(ky) *
                                          static_cast<std::size_t>(filter);
        for (int kx = 0; kx < filter; ++kx) {
          const int shift = kx - pad;
          int lo = 0;
          if (shift < 0) lo = (-shift + stride - 1) / stride;
          const int max_ix = w - 1 - shift;
          const int hi =
              max_ix < 0 ? 0 : std::min(out_w, max_ix / stride + 1);
          if (lo >= hi) continue;
          const float wv = w_row[kx];
          if (stride == 1) {
            const float* __restrict xp = x_row + (lo + shift);
            for (int ox = lo; ox < hi; ++ox) acc[ox] += xp[ox - lo] * wv;
          } else {
            for (int ox = lo; ox < hi; ++ox)
              acc[ox] += x_row[ox * stride + shift] * wv;
          }
        }
      }
    }
  }
}

}  // namespace

const char* ToString(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kRelu:
      return "relu";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kEltwiseAdd:
      return "eltwise_add";
  }
  return "?";
}

Conv2D::Conv2D(std::string name, int in_depth, int out_depth, int filter,
               int stride, int pad)
    : Layer(std::move(name)),
      in_depth_(in_depth),
      out_depth_(out_depth),
      filter_(filter),
      stride_(stride),
      pad_(pad),
      weights_(Shape{out_depth, in_depth, filter, filter}),
      bias_(Shape{out_depth}),
      grad_weights_(Shape{out_depth, in_depth, filter, filter}),
      grad_bias_(Shape{out_depth}) {
  SC_CHECK_MSG(in_depth >= 1 && out_depth >= 1 && filter >= 1 && stride >= 1 &&
                   pad >= 0 && pad < filter,
               "bad Conv2D config");
}

Shape Conv2D::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(in.size() == 1, "Conv2D expects one input");
  const Shape& s = in[0];
  SC_CHECK_MSG(s.rank() == 3, "Conv2D input must be rank-3 {d,h,w}");
  SC_CHECK_MSG(s[0] == in_depth_, "Conv2D depth mismatch: input " << s[0]
                                      << " vs configured " << in_depth_);
  SC_CHECK_MSG(s[1] == s[2], "Conv2D requires square feature maps");
  const int out_w = ConvOutWidth(s[1], filter_, stride_, pad_);
  return Shape{out_depth_, out_w, out_w};
}

Tensor Conv2D::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  const Tensor& x = *in[0];
  Tensor y(OutputShape({x.shape()}));
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int out_w = y.shape()[1];
  const float* xd = x.data();
  const float* wd = weights_.data();
  float* yd = y.data();

  // Output channels write disjoint planes, so they parallelize without
  // changing a single arithmetic operation or its order.
  auto channels = [&](std::int64_t oc_lo, std::int64_t oc_hi) {
    const std::size_t filt_area =
        static_cast<std::size_t>(filter_) * static_cast<std::size_t>(filter_);
    for (std::int64_t oc = oc_lo; oc < oc_hi; ++oc) {
      ForwardOneChannel(xd,
                        wd + static_cast<std::size_t>(oc) *
                                 static_cast<std::size_t>(in_depth_) *
                                 filt_area,
                        bias_.at(static_cast<int>(oc)),
                        yd + static_cast<std::size_t>(oc) *
                                 static_cast<std::size_t>(out_w) *
                                 static_cast<std::size_t>(out_w),
                        h, w, out_w, in_depth_, filter_, stride_, pad_);
    }
  };

  const std::int64_t macs = static_cast<std::int64_t>(out_depth_) * out_w *
                            out_w * in_depth_ * filter_ * filter_;
  if (macs < kMinParallelMacs) {
    channels(0, out_depth_);
  } else {
    support::ParallelFor(0, out_depth_, 1, channels);
  }
  return y;
}

std::vector<Tensor> Conv2D::Backward(const std::vector<const Tensor*>& in,
                                     const Tensor& out,
                                     const Tensor& grad_out) {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  SC_CHECK(grad_out.shape() == out.shape());
  const Tensor& x = *in[0];
  Tensor grad_in(x.shape());
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int out_w = out.shape()[1];

  const float* xd = x.data();
  const float* wd = weights_.data();
  float* gxd = grad_in.data();
  float* gwd = grad_weights_.data();
  const float* god = grad_out.data();

  const auto chan_stride =
      static_cast<std::size_t>(h) * static_cast<std::size_t>(w);
  const auto filt_area =
      static_cast<std::size_t>(filter_) * static_cast<std::size_t>(filter_);

  for (int oc = 0; oc < out_depth_; ++oc) {
    for (int oy = 0; oy < out_w; ++oy) {
      const int iy0 = oy * stride_ - pad_;
      const int ky_lo = iy0 < 0 ? -iy0 : 0;
      const int ky_hi = std::min(filter_, h - iy0);
      for (int ox = 0; ox < out_w; ++ox) {
        const float g = *god++;
        if (g == 0.0f) continue;
        grad_bias_.at(oc) += g;
        const int ix0 = ox * stride_ - pad_;
        const int kx_lo = ix0 < 0 ? -ix0 : 0;
        const int kx_hi = std::min(filter_, w - ix0);
        for (int ic = 0; ic < in_depth_; ++ic) {
          const std::size_t x_base = static_cast<std::size_t>(ic) * chan_stride;
          const std::size_t w_base =
              (static_cast<std::size_t>(oc) *
                   static_cast<std::size_t>(in_depth_) +
               static_cast<std::size_t>(ic)) *
              filt_area;
          for (int ky = ky_lo; ky < ky_hi; ++ky) {
            const std::size_t row =
                x_base + static_cast<std::size_t>(iy0 + ky) *
                             static_cast<std::size_t>(w) +
                static_cast<std::size_t>(ix0);
            const std::size_t wrow =
                w_base + static_cast<std::size_t>(ky) *
                             static_cast<std::size_t>(filter_);
            for (int kx = kx_lo; kx < kx_hi; ++kx) {
              gwd[wrow + static_cast<std::size_t>(kx)] +=
                  g * xd[row + static_cast<std::size_t>(kx)];
              gxd[row + static_cast<std::size_t>(kx)] +=
                  g * wd[wrow + static_cast<std::size_t>(kx)];
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

std::vector<ParamRef> Conv2D::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

}  // namespace sc::nn
