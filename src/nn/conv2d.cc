#include "nn/conv2d.h"

#include <algorithm>
#include <cstdint>

#include "support/thread_pool.h"

namespace sc::nn {

namespace {

// Below this many MACs the pool's wake-up latency dominates any win, so
// small test tensors stay on the serial path.
constexpr std::int64_t kMinParallelMacs = 1 << 16;

}  // namespace

const char* ToString(LayerKind k) {
  switch (k) {
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kMaxPool:
      return "maxpool";
    case LayerKind::kAvgPool:
      return "avgpool";
    case LayerKind::kRelu:
      return "relu";
    case LayerKind::kFullyConnected:
      return "fc";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kEltwiseAdd:
      return "eltwise_add";
  }
  return "?";
}

Conv2D::Conv2D(std::string name, int in_depth, int out_depth, int filter,
               int stride, int pad)
    : Layer(std::move(name)),
      in_depth_(in_depth),
      out_depth_(out_depth),
      filter_(filter),
      stride_(stride),
      pad_(pad),
      weights_(Shape{out_depth, in_depth, filter, filter}),
      bias_(Shape{out_depth}),
      grad_weights_(Shape{out_depth, in_depth, filter, filter}),
      grad_bias_(Shape{out_depth}) {
  SC_CHECK_MSG(in_depth >= 1 && out_depth >= 1 && filter >= 1 && stride >= 1 &&
                   pad >= 0 && pad < filter,
               "bad Conv2D config");
}

Shape Conv2D::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(in.size() == 1, "Conv2D expects one input");
  const Shape& s = in[0];
  SC_CHECK_MSG(s.rank() == 3, "Conv2D input must be rank-3 {d,h,w}");
  SC_CHECK_MSG(s[0] == in_depth_, "Conv2D depth mismatch: input " << s[0]
                                      << " vs configured " << in_depth_);
  SC_CHECK_MSG(s[1] == s[2], "Conv2D requires square feature maps");
  const int out_w = ConvOutWidth(s[1], filter_, stride_, pad_);
  return Shape{out_depth_, out_w, out_w};
}

Tensor Conv2D::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  const Tensor& x = *in[0];
  Tensor y(OutputShape({x.shape()}));
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int out_w = y.shape()[1];
  const float* xd = x.data();
  const float* wd = weights_.data();
  float* yd = y.data();

  // Pointer-arithmetic hot loop: per output row, clamp the filter window to
  // the valid input range once, then run contiguous inner loops. Output
  // channels write disjoint planes, so they parallelize without changing a
  // single arithmetic operation or its order.
  auto channels = [&](std::int64_t oc_lo, std::int64_t oc_hi) {
    for (std::int64_t oc = oc_lo; oc < oc_hi; ++oc) {
      const float b = bias_.at(static_cast<int>(oc));
      float* y_plane = yd + static_cast<std::size_t>(oc) *
                                static_cast<std::size_t>(out_w) *
                                static_cast<std::size_t>(out_w);
      for (int oy = 0; oy < out_w; ++oy) {
        const int iy0 = oy * stride_ - pad_;
        const int ky_lo = iy0 < 0 ? -iy0 : 0;
        const int ky_hi = std::min(filter_, h - iy0);
        for (int ox = 0; ox < out_w; ++ox) {
          const int ix0 = ox * stride_ - pad_;
          const int kx_lo = ix0 < 0 ? -ix0 : 0;
          const int kx_hi = std::min(filter_, w - ix0);
          float acc = b;
          for (int ic = 0; ic < in_depth_; ++ic) {
            const float* x_chan =
                xd + static_cast<std::size_t>(ic) *
                         static_cast<std::size_t>(h) *
                         static_cast<std::size_t>(w);
            const float* w_chan =
                wd + (static_cast<std::size_t>(oc) *
                          static_cast<std::size_t>(in_depth_) +
                      static_cast<std::size_t>(ic)) *
                         static_cast<std::size_t>(filter_) *
                         static_cast<std::size_t>(filter_);
            for (int ky = ky_lo; ky < ky_hi; ++ky) {
              const float* x_row =
                  x_chan + static_cast<std::size_t>(iy0 + ky) *
                               static_cast<std::size_t>(w) +
                  static_cast<std::size_t>(ix0);
              const float* w_row =
                  w_chan + static_cast<std::size_t>(ky) *
                               static_cast<std::size_t>(filter_);
              for (int kx = kx_lo; kx < kx_hi; ++kx)
                acc += x_row[kx] * w_row[kx];
            }
          }
          *y_plane++ = acc;
        }
      }
    }
  };

  const std::int64_t macs = static_cast<std::int64_t>(out_depth_) * out_w *
                            out_w * in_depth_ * filter_ * filter_;
  if (macs < kMinParallelMacs) {
    channels(0, out_depth_);
  } else {
    support::ParallelFor(0, out_depth_, 1, channels);
  }
  return y;
}

std::vector<Tensor> Conv2D::Backward(const std::vector<const Tensor*>& in,
                                     const Tensor& out,
                                     const Tensor& grad_out) {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  SC_CHECK(grad_out.shape() == out.shape());
  const Tensor& x = *in[0];
  Tensor grad_in(x.shape());
  const int h = x.shape()[1];
  const int w = x.shape()[2];
  const int out_w = out.shape()[1];

  const float* xd = x.data();
  const float* wd = weights_.data();
  float* gxd = grad_in.data();
  float* gwd = grad_weights_.data();
  const float* god = grad_out.data();

  const auto chan_stride =
      static_cast<std::size_t>(h) * static_cast<std::size_t>(w);
  const auto filt_area =
      static_cast<std::size_t>(filter_) * static_cast<std::size_t>(filter_);

  for (int oc = 0; oc < out_depth_; ++oc) {
    for (int oy = 0; oy < out_w; ++oy) {
      const int iy0 = oy * stride_ - pad_;
      const int ky_lo = iy0 < 0 ? -iy0 : 0;
      const int ky_hi = std::min(filter_, h - iy0);
      for (int ox = 0; ox < out_w; ++ox) {
        const float g = *god++;
        if (g == 0.0f) continue;
        grad_bias_.at(oc) += g;
        const int ix0 = ox * stride_ - pad_;
        const int kx_lo = ix0 < 0 ? -ix0 : 0;
        const int kx_hi = std::min(filter_, w - ix0);
        for (int ic = 0; ic < in_depth_; ++ic) {
          const std::size_t x_base = static_cast<std::size_t>(ic) * chan_stride;
          const std::size_t w_base =
              (static_cast<std::size_t>(oc) *
                   static_cast<std::size_t>(in_depth_) +
               static_cast<std::size_t>(ic)) *
              filt_area;
          for (int ky = ky_lo; ky < ky_hi; ++ky) {
            const std::size_t row =
                x_base + static_cast<std::size_t>(iy0 + ky) *
                             static_cast<std::size_t>(w) +
                static_cast<std::size_t>(ix0);
            const std::size_t wrow =
                w_base + static_cast<std::size_t>(ky) *
                             static_cast<std::size_t>(filter_);
            for (int kx = kx_lo; kx < kx_hi; ++kx) {
              gwd[wrow + static_cast<std::size_t>(kx)] +=
                  g * xd[row + static_cast<std::size_t>(kx)];
              gxd[row + static_cast<std::size_t>(kx)] +=
                  g * wd[wrow + static_cast<std::size_t>(kx)];
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

std::vector<ParamRef> Conv2D::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

}  // namespace sc::nn
