#include "nn/geometry.h"

#include <ostream>

#include "support/check.h"

namespace sc::nn {

int ConvOutWidth(int w, int f, int s, int p) {
  SC_CHECK_MSG(w >= 1 && f >= 1 && s >= 1 && p >= 0,
               "bad conv geometry w=" << w << " f=" << f << " s=" << s
                                      << " p=" << p);
  SC_CHECK_MSG(w + 2 * p >= f, "filter larger than padded input");
  return (w + 2 * p - f) / s + 1;
}

int PoolOutWidth(int w, int f, int s, int p) {
  SC_CHECK_MSG(w >= 1 && f >= 1 && s >= 1 && p >= 0,
               "bad pool geometry w=" << w << " f=" << f << " s=" << s
                                      << " p=" << p);
  SC_CHECK_MSG(w + 2 * p >= f, "pool window larger than padded input");
  const int span = w + 2 * p - f;
  return (span + s - 1) / s + 1;  // ceil(span / s) + 1
}

bool ConvDividesExactly(int w, int f, int s, int p) {
  return (w + 2 * p - f) % s == 0;
}

bool PoolDividesExactly(int w, int f, int s, int p) {
  return (w + 2 * p - f) % s == 0;
}

const char* ToString(PoolKind k) {
  switch (k) {
    case PoolKind::kNone:
      return "none";
    case PoolKind::kMax:
      return "max";
    case PoolKind::kAvg:
      return "avg";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, PoolKind k) {
  return os << ToString(k);
}

int LayerGeometry::ConvStageWidth() const {
  return ConvOutWidth(w_ifm, f_conv, s_conv, p_conv);
}

long long LayerGeometry::SizeIfm() const {
  return static_cast<long long>(w_ifm) * w_ifm * d_ifm;
}

long long LayerGeometry::SizeOfm() const {
  return static_cast<long long>(w_ofm) * w_ofm * d_ofm;
}

long long LayerGeometry::SizeFilter() const {
  return static_cast<long long>(f_conv) * f_conv * d_ifm * d_ofm;
}

long long LayerGeometry::MacCount() const {
  return static_cast<long long>(w_ofm) * w_ofm * d_ofm * f_conv * f_conv *
         d_ifm;
}

long long LayerGeometry::ConvMacCount() const {
  const long long w = ConvStageWidth();
  return w * w * d_ofm * f_conv * f_conv * d_ifm;
}

bool LayerGeometry::IsFullyConnected() const {
  return f_conv == w_ifm && s_conv == 1 && p_conv == 0 && !has_pool() &&
         w_ofm == 1;
}

bool LayerGeometry::IsConsistent() const {
  if (w_ifm < 1 || d_ifm < 1 || w_ofm < 1 || d_ofm < 1 || f_conv < 1 ||
      s_conv < 1 || p_conv < 0) {
    return false;
  }
  if (w_ifm + 2 * p_conv < f_conv) return false;

  if (IsFullyConnected()) return true;

  // Eq. (5): S_conv <= F_conv <= W_IFM / 2; Eq. (7): P_conv < F_conv.
  if (s_conv > f_conv) return false;
  if (2 * f_conv > w_ifm) return false;
  if (p_conv >= f_conv) return false;

  const int w_conv = ConvOutWidth(w_ifm, f_conv, s_conv, p_conv);
  if (w_conv < 1) return false;

  if (!has_pool()) {
    return f_pool == 0 && s_pool == 0 && p_pool == 0 && w_ofm == w_conv;
  }

  // Eq. (6): S_pool <= F_pool <= W_conv; Eq. (8): P_pool < F_pool.
  if (f_pool < 1 || s_pool < 1 || p_pool < 0) return false;
  if (s_pool > f_pool) return false;
  if (f_pool > w_conv) return false;
  if (p_pool >= f_pool) return false;
  return w_ofm == PoolOutWidth(w_conv, f_pool, s_pool, p_pool);
}

std::ostream& operator<<(std::ostream& os, const LayerGeometry& g) {
  os << "ifm " << g.w_ifm << "x" << g.w_ifm << "x" << g.d_ifm << " -> ofm "
     << g.w_ofm << "x" << g.w_ofm << "x" << g.d_ofm << ", conv f=" << g.f_conv
     << " s=" << g.s_conv << " p=" << g.p_conv;
  if (g.has_pool()) {
    os << ", " << g.pool << "pool f=" << g.f_pool << " s=" << g.s_pool
       << " p=" << g.p_pool;
  }
  return os;
}

}  // namespace sc::nn
