// Weight initialization.
#ifndef SC_NN_INIT_H_
#define SC_NN_INIT_H_

#include "nn/network.h"
#include "support/rng.h"

namespace sc::nn {

// He (Kaiming) initialization for one conv/FC weight tensor: Gaussian with
// stddev sqrt(2 / fan_in). Biases are zero-initialized.
void HeInit(Tensor& weights, int fan_in, Rng& rng);

// Initializes every parameterized layer in the network: He init for
// weights, zero for biases. Deterministic given the Rng seed.
void InitNetwork(Network& net, Rng& rng);

}  // namespace sc::nn

#endif  // SC_NN_INIT_H_
