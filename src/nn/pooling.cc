#include "nn/pooling.h"

#include <limits>

namespace sc::nn {

Pooling::Pooling(std::string name, PoolKind pool, int window, int stride,
                 int pad)
    : Layer(std::move(name)),
      pool_(pool),
      window_(window),
      stride_(stride),
      pad_(pad) {
  SC_CHECK_MSG(pool != PoolKind::kNone, "Pooling layer needs a pool kind");
  SC_CHECK_MSG(window >= 1 && stride >= 1 && pad >= 0 && pad < window,
               "bad pooling config");
}

Shape Pooling::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(in.size() == 1, "Pooling expects one input");
  const Shape& s = in[0];
  SC_CHECK_MSG(s.rank() == 3 && s[1] == s[2],
               "Pooling input must be square rank-3");
  const int out_w = PoolOutWidth(s[1], window_, stride_, pad_);
  return Shape{s[0], out_w, out_w};
}

Tensor Pooling::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  const Tensor& x = *in[0];
  Tensor y(OutputShape({x.shape()}));
  const int d = x.shape()[0];
  const int w = x.shape()[1];
  const int out_w = y.shape()[1];
  const float area = static_cast<float>(window_) * static_cast<float>(window_);

  for (int c = 0; c < d; ++c) {
    for (int oy = 0; oy < out_w; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const int iy0 = oy * stride_ - pad_;
        const int ix0 = ox * stride_ - pad_;
        if (pool_ == PoolKind::kMax) {
          float m = -std::numeric_limits<float>::infinity();
          bool any = false;
          for (int ky = 0; ky < window_; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= w) continue;
            for (int kx = 0; kx < window_; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              m = std::max(m, x.at(c, iy, ix));
              any = true;
            }
          }
          // A window fully outside the input can only arise from excessive
          // padding, which the constructor forbids (pad < window).
          SC_CHECK(any);
          y.at(c, oy, ox) = m;
        } else {
          float sum = 0.0f;
          for (int ky = 0; ky < window_; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= w) continue;
            for (int kx = 0; kx < window_; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              sum += x.at(c, iy, ix);
            }
          }
          y.at(c, oy, ox) = sum / area;
        }
      }
    }
  }
  return y;
}

std::vector<Tensor> Pooling::Backward(const std::vector<const Tensor*>& in,
                                      const Tensor& out,
                                      const Tensor& grad_out) {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  SC_CHECK(grad_out.shape() == out.shape());
  const Tensor& x = *in[0];
  Tensor grad_in(x.shape());
  const int d = x.shape()[0];
  const int w = x.shape()[1];
  const int out_w = out.shape()[1];
  const float area = static_cast<float>(window_) * static_cast<float>(window_);

  for (int c = 0; c < d; ++c) {
    for (int oy = 0; oy < out_w; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        const float g = grad_out.at(c, oy, ox);
        if (g == 0.0f) continue;
        const int iy0 = oy * stride_ - pad_;
        const int ix0 = ox * stride_ - pad_;
        if (pool_ == PoolKind::kMax) {
          // Route the gradient to the (first) argmax position.
          const float m = out.at(c, oy, ox);
          bool routed = false;
          for (int ky = 0; ky < window_ && !routed; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= w) continue;
            for (int kx = 0; kx < window_ && !routed; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              if (x.at(c, iy, ix) == m) {
                grad_in.at(c, iy, ix) += g;
                routed = true;
              }
            }
          }
          SC_CHECK(routed);
        } else {
          for (int ky = 0; ky < window_; ++ky) {
            const int iy = iy0 + ky;
            if (iy < 0 || iy >= w) continue;
            for (int kx = 0; kx < window_; ++kx) {
              const int ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              grad_in.at(c, iy, ix) += g / area;
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

std::unique_ptr<Pooling> MakeMaxPool(std::string name, int window, int stride,
                                     int pad) {
  return std::make_unique<Pooling>(std::move(name), PoolKind::kMax, window,
                                   stride, pad);
}

std::unique_ptr<Pooling> MakeAvgPool(std::string name, int window, int stride,
                                     int pad) {
  return std::make_unique<Pooling>(std::move(name), PoolKind::kAvg, window,
                                   stride, pad);
}

}  // namespace sc::nn
