#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <istream>
#include <ostream>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "support/check.h"

namespace sc::nn {

namespace {

constexpr char kMagic[4] = {'S', 'C', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

void WriteU32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteF32(std::ostream& os, float v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void WriteI32(std::ostream& os, std::int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t ReadU32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SC_CHECK_MSG(static_cast<bool>(is), "truncated network stream");
  return v;
}

float ReadF32(std::istream& is) {
  float v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SC_CHECK_MSG(static_cast<bool>(is), "truncated network stream");
  return v;
}

std::int32_t ReadI32(std::istream& is) {
  std::int32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  SC_CHECK_MSG(static_cast<bool>(is), "truncated network stream");
  return v;
}

void WriteString(std::ostream& os, const std::string& s) {
  WriteU32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  const std::uint32_t n = ReadU32(is);
  SC_CHECK_MSG(n <= 4096, "implausible string length in network stream");
  std::string s(n, '\0');
  is.read(s.data(), n);
  SC_CHECK_MSG(static_cast<bool>(is), "truncated network stream");
  return s;
}

void WriteShape(std::ostream& os, const Shape& s) {
  WriteU32(os, static_cast<std::uint32_t>(s.rank()));
  for (int i = 0; i < s.rank(); ++i)
    WriteU32(os, static_cast<std::uint32_t>(s[i]));
}

// Hostile-size guards (DESIGN.md §12): every dimension field read from the
// stream is validated against generous caps — far above AlexNet scale
// (its largest tensor, FC6's 9216x4096 weights, is ~3.8e7 elements) but
// far below anything that could overflow an int or provoke a huge
// allocation — *before* any Tensor or Layer is constructed.
constexpr std::int64_t kMaxDim = 1 << 24;
constexpr std::int64_t kMaxElems = std::int64_t{1} << 28;  // 1 GiB of f32

std::int32_t CheckedDim(std::int32_t v, const char* what,
                        std::uint32_t node) {
  SC_CHECK_MSG(v >= 1 && v <= kMaxDim, "implausible " << what << " " << v
                                                      << " in node " << node);
  return v;
}

std::int32_t CheckedPad(std::int32_t v, const char* what,
                        std::uint32_t node) {
  SC_CHECK_MSG(v >= 0 && v <= kMaxDim, "implausible " << what << " " << v
                                                      << " in node " << node);
  return v;
}

// Overflow-safe capped product: every factor is already <= kMaxDim and the
// running product is checked after each multiply, so it stays below
// kMaxElems * kMaxDim and cannot wrap.
void CheckElems(std::initializer_list<std::int32_t> factors, const char* what,
                std::uint32_t node) {
  std::int64_t product = 1;
  for (const std::int32_t f : factors) {
    product *= static_cast<std::int64_t>(f);
    SC_CHECK_MSG(product <= kMaxElems,
                 "implausible " << what << " (>= " << product
                                << " elements) in node " << node);
  }
}

Shape ReadShape(std::istream& is) {
  const std::uint32_t rank = ReadU32(is);
  SC_CHECK_MSG(rank >= 1 && rank <= 4, "bad shape rank in network stream");
  std::vector<int> dims;
  std::int64_t numel = 1;
  for (std::uint32_t i = 0; i < rank; ++i) {
    const std::uint32_t d = ReadU32(is);
    SC_CHECK_MSG(d >= 1 && d <= kMaxDim,
                 "implausible shape dimension " << d << " in network stream");
    // Checked after every multiply, so the running product stays below
    // 2^28 * 2^24 and cannot overflow int64.
    numel *= static_cast<std::int64_t>(d);
    SC_CHECK_MSG(numel <= kMaxElems,
                 "implausible tensor size (" << numel
                                             << " elements) in network stream");
    dims.push_back(static_cast<int>(d));
  }
  return Shape(dims);
}

void WriteTensor(std::ostream& os, const Tensor& t) {
  WriteShape(os, t.shape());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void ReadTensorInto(std::istream& is, Tensor& t) {
  const Shape s = ReadShape(is);
  SC_CHECK_MSG(s == t.shape(), "parameter shape mismatch while loading");
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  SC_CHECK_MSG(static_cast<bool>(is), "truncated network stream");
}

// On-disk layer-kind tags (stable; independent of the enum's order).
enum Tag : std::uint8_t {
  kTagConv = 1,
  kTagMaxPool = 2,
  kTagAvgPool = 3,
  kTagRelu = 4,
  kTagFc = 5,
  kTagConcat = 6,
  kTagEltwise = 7,
};

}  // namespace

void SaveNetwork(const Network& net, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  WriteU32(os, kVersion);
  WriteShape(os, net.input_shape());
  WriteU32(os, static_cast<std::uint32_t>(net.num_nodes()));

  for (int i = 0; i < net.num_nodes(); ++i) {
    const Layer& layer = net.layer(i);
    WriteString(os, layer.name());

    if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
      os.put(kTagConv);
      WriteI32(os, conv->in_depth());
      WriteI32(os, conv->out_depth());
      WriteI32(os, conv->filter());
      WriteI32(os, conv->stride());
      WriteI32(os, conv->pad());
    } else if (const auto* pool = dynamic_cast<const Pooling*>(&layer)) {
      os.put(pool->pool_kind() == PoolKind::kMax ? kTagMaxPool : kTagAvgPool);
      WriteI32(os, pool->window());
      WriteI32(os, pool->stride());
      WriteI32(os, pool->pad());
    } else if (const auto* relu = dynamic_cast<const Relu*>(&layer)) {
      os.put(kTagRelu);
      WriteF32(os, relu->threshold());
    } else if (const auto* fc = dynamic_cast<const FullyConnected*>(&layer)) {
      os.put(kTagFc);
      WriteI32(os, fc->in_features());
      WriteI32(os, fc->out_features());
    } else if (dynamic_cast<const Concat*>(&layer) != nullptr) {
      os.put(kTagConcat);
      WriteI32(os, layer.num_inputs());
    } else if (dynamic_cast<const EltwiseAdd*>(&layer) != nullptr) {
      os.put(kTagEltwise);
      WriteI32(os, layer.num_inputs());
    } else {
      SC_CHECK_MSG(false, "unserializable layer kind");
    }

    const auto& inputs = net.inputs_of(i);
    WriteU32(os, static_cast<std::uint32_t>(inputs.size()));
    for (int src : inputs) WriteI32(os, src);

    // Parameters (values only; gradients are transient).
    auto params = const_cast<Layer&>(layer).Params();
    WriteU32(os, static_cast<std::uint32_t>(params.size()));
    for (const ParamRef& p : params) WriteTensor(os, *p.value);
  }
  SC_CHECK_MSG(static_cast<bool>(os), "write failure while saving network");
}

Network LoadNetwork(std::istream& is) {
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  SC_CHECK_MSG(static_cast<bool>(is) && std::equal(magic, magic + 4, kMagic),
               "not a serialized network (bad magic)");
  const std::uint32_t version = ReadU32(is);
  SC_CHECK_MSG(version == kVersion,
               "unsupported network version " << version);

  Network net(ReadShape(is));
  const std::uint32_t num_nodes = ReadU32(is);
  SC_CHECK_MSG(num_nodes <= 100000, "implausible node count");

  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    const std::string name = ReadString(is);
    const int tag = is.get();
    SC_CHECK_MSG(tag != EOF, "truncated network stream");

    std::unique_ptr<Layer> layer;
    switch (tag) {
      case kTagConv: {
        const int in_d = CheckedDim(ReadI32(is), "conv in_depth", i),
                  out_d = CheckedDim(ReadI32(is), "conv out_depth", i),
                  f = CheckedDim(ReadI32(is), "conv filter", i),
                  s = CheckedDim(ReadI32(is), "conv stride", i),
                  p = CheckedPad(ReadI32(is), "conv pad", i);
        CheckElems({in_d, out_d, f, f}, "conv weight tensor", i);
        layer = std::make_unique<Conv2D>(name, in_d, out_d, f, s, p);
        break;
      }
      case kTagMaxPool:
      case kTagAvgPool: {
        const int w = CheckedDim(ReadI32(is), "pool window", i),
                  s = CheckedDim(ReadI32(is), "pool stride", i),
                  p = CheckedPad(ReadI32(is), "pool pad", i);
        layer = std::make_unique<Pooling>(
            name, tag == kTagMaxPool ? PoolKind::kMax : PoolKind::kAvg, w, s,
            p);
        break;
      }
      case kTagRelu:
        layer = std::make_unique<Relu>(name, ReadF32(is));
        break;
      case kTagFc: {
        const int in_f = CheckedDim(ReadI32(is), "fc in_features", i),
                  out_f = CheckedDim(ReadI32(is), "fc out_features", i);
        CheckElems({in_f, out_f}, "fc weight tensor", i);
        layer = std::make_unique<FullyConnected>(name, in_f, out_f);
        break;
      }
      case kTagConcat:
        layer = std::make_unique<Concat>(
            name, CheckedDim(ReadI32(is), "concat fan-in", i));
        break;
      case kTagEltwise:
        layer = std::make_unique<EltwiseAdd>(
            name, CheckedDim(ReadI32(is), "eltwise fan-in", i));
        break;
      default:
        SC_CHECK_MSG(false, "unknown layer tag " << tag);
    }

    const std::uint32_t num_inputs = ReadU32(is);
    SC_CHECK_MSG(num_inputs <= 64, "implausible input count");
    std::vector<int> inputs;
    for (std::uint32_t k = 0; k < num_inputs; ++k)
      inputs.push_back(ReadI32(is));

    Layer* raw = layer.get();
    net.Add(std::move(layer), std::move(inputs));

    const std::uint32_t num_params = ReadU32(is);
    auto params = raw->Params();
    SC_CHECK_MSG(num_params == params.size(),
                 "parameter count mismatch while loading");
    for (const ParamRef& p : params) ReadTensorInto(is, *p.value);
  }
  return net;
}

void SaveNetworkFile(const Network& net, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for writing");
  SaveNetwork(net, f);
}

Network LoadNetworkFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for reading");
  return LoadNetwork(f);
}

}  // namespace sc::nn
