#include "nn/activation.h"

namespace sc::nn {

Shape Relu::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(in.size() == 1, "Relu expects one input");
  return in[0];
}

Tensor Relu::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  const Tensor& x = *in[0];
  Tensor y(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i)
    y[i] = x[i] > threshold_ ? x[i] : 0.0f;
  return y;
}

std::vector<Tensor> Relu::Backward(const std::vector<const Tensor*>& in,
                                   const Tensor& out,
                                   const Tensor& grad_out) {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  SC_CHECK(grad_out.shape() == out.shape());
  const Tensor& x = *in[0];
  Tensor grad_in(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i)
    grad_in[i] = x[i] > threshold_ ? grad_out[i] : 0.0f;
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

}  // namespace sc::nn
