#include "nn/dense.h"

#include <algorithm>
#include <cstdint>

#include "support/thread_pool.h"

namespace sc::nn {

namespace {

// Same serial-fallback threshold as Conv2D: below this many multiply-adds
// the pool wake-up costs more than it saves.
constexpr std::int64_t kMinParallelMacs = 1 << 16;

}  // namespace

FullyConnected::FullyConnected(std::string name, int in_features,
                               int out_features)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features),
      weights_(Shape{out_features, in_features}),
      bias_(Shape{out_features}),
      grad_weights_(Shape{out_features, in_features}),
      grad_bias_(Shape{out_features}) {
  SC_CHECK_MSG(in_features >= 1 && out_features >= 1, "bad FC config");
}

Shape FullyConnected::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(in.size() == 1, "FC expects one input");
  SC_CHECK_MSG(in[0].rank() == 3, "FC input must be rank-3");
  SC_CHECK_MSG(static_cast<int>(in[0].numel()) == in_features_,
               "FC feature count mismatch: input " << in[0] << " has "
                                                   << in[0].numel()
                                                   << ", expected "
                                                   << in_features_);
  return Shape{out_features_, 1, 1};
}

Tensor FullyConnected::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  const Tensor& x = *in[0];
  Tensor y(OutputShape({x.shape()}));
  auto rows = [&](std::int64_t o_lo, std::int64_t o_hi) {
    for (std::int64_t o = o_lo; o < o_hi; ++o) {
      float acc = bias_.at(static_cast<int>(o));
      const float* w_row =
          weights_.data() + static_cast<std::size_t>(o) *
                                static_cast<std::size_t>(in_features_);
      for (int i = 0; i < in_features_; ++i)
        acc += w_row[i] * x[static_cast<std::size_t>(i)];
      y.at(static_cast<int>(o), 0, 0) = acc;
    }
  };
  const std::int64_t macs =
      static_cast<std::int64_t>(out_features_) * in_features_;
  if (macs < kMinParallelMacs) {
    rows(0, out_features_);
  } else {
    // Chunk so each task covers ~kMinParallelMacs multiply-adds.
    const std::int64_t grain = std::max<std::int64_t>(
        1, kMinParallelMacs / std::max(1, in_features_));
    support::ParallelFor(0, out_features_, grain, rows);
  }
  return y;
}

std::vector<Tensor> FullyConnected::Backward(
    const std::vector<const Tensor*>& in, const Tensor& out,
    const Tensor& grad_out) {
  SC_CHECK(in.size() == 1 && in[0] != nullptr);
  SC_CHECK(grad_out.shape() == out.shape());
  const Tensor& x = *in[0];
  Tensor grad_in(x.shape());
  for (int o = 0; o < out_features_; ++o) {
    const float g = grad_out.at(o, 0, 0);
    if (g == 0.0f) continue;
    grad_bias_.at(o) += g;
    const std::size_t row =
        static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
    for (int i = 0; i < in_features_; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      grad_weights_[row + ii] += g * x[ii];
      grad_in[ii] += g * weights_[row + ii];
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_in));
  return grads;
}

std::vector<ParamRef> FullyConnected::Params() {
  return {{&weights_, &grad_weights_}, {&bias_, &grad_bias_}};
}

}  // namespace sc::nn
