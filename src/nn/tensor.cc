#include "nn/tensor.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace sc::nn {

Shape::Shape(const std::vector<int>& dims) {
  SC_CHECK_MSG(!dims.empty() && dims.size() <= 4,
               "shape rank must be 1..4, got " << dims.size());
  rank_ = static_cast<int>(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    SC_CHECK_MSG(dims[i] >= 1, "shape extent must be >= 1, got " << dims[i]);
    dims_[i] = dims[i];
  }
}

std::size_t Shape::numel() const {
  if (rank_ == 0) return 0;
  std::size_t n = 1;
  for (int i = 0; i < rank_; ++i)
    n *= static_cast<std::size_t>(dims_[static_cast<std::size_t>(i)]);
  return n;
}

bool Shape::operator==(const Shape& o) const {
  if (rank_ != o.rank_) return false;
  for (int i = 0; i < rank_; ++i)
    if ((*this)[i] != o[i]) return false;
  return true;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Shape& s) {
  os << '{';
  for (int i = 0; i < s.rank(); ++i) {
    if (i) os << 'x';
    os << s[i];
  }
  return os << '}';
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(shape), data_(shape.numel(), fill) {}

std::size_t Tensor::Index1(int a) const {
  SC_CHECK_MSG(shape_.rank() == 1, "rank-1 access on rank-" << shape_.rank());
  SC_CHECK(a >= 0 && a < shape_[0]);
  return static_cast<std::size_t>(a);
}

std::size_t Tensor::Index2(int a, int b) const {
  SC_CHECK_MSG(shape_.rank() == 2, "rank-2 access on rank-" << shape_.rank());
  SC_CHECK(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1]);
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
         static_cast<std::size_t>(b);
}

std::size_t Tensor::Index3(int a, int b, int c) const {
  SC_CHECK_MSG(shape_.rank() == 3, "rank-3 access on rank-" << shape_.rank());
  SC_CHECK(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
           c < shape_[2]);
  return (static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
          static_cast<std::size_t>(b)) *
             static_cast<std::size_t>(shape_[2]) +
         static_cast<std::size_t>(c);
}

std::size_t Tensor::Index4(int a, int b, int c, int d) const {
  SC_CHECK_MSG(shape_.rank() == 4, "rank-4 access on rank-" << shape_.rank());
  SC_CHECK(a >= 0 && a < shape_[0] && b >= 0 && b < shape_[1] && c >= 0 &&
           c < shape_[2] && d >= 0 && d < shape_[3]);
  return ((static_cast<std::size_t>(a) * static_cast<std::size_t>(shape_[1]) +
           static_cast<std::size_t>(b)) *
              static_cast<std::size_t>(shape_[2]) +
          static_cast<std::size_t>(c)) *
             static_cast<std::size_t>(shape_[3]) +
         static_cast<std::size_t>(d);
}

float& Tensor::at(int a) { return data_[Index1(a)]; }
float Tensor::at(int a) const { return data_[Index1(a)]; }
float& Tensor::at(int a, int b) { return data_[Index2(a, b)]; }
float Tensor::at(int a, int b) const { return data_[Index2(a, b)]; }
float& Tensor::at(int a, int b, int c) { return data_[Index3(a, b, c)]; }
float Tensor::at(int a, int b, int c) const { return data_[Index3(a, b, c)]; }
float& Tensor::at(int a, int b, int c, int d) {
  return data_[Index4(a, b, c, d)];
}
float Tensor::at(int a, int b, int c, int d) const {
  return data_[Index4(a, b, c, d)];
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

std::size_t Tensor::CountZeros() const {
  std::size_t n = 0;
  for (float x : data_)
    if (x == 0.0f) ++n;
  return n;
}

void Tensor::Add(const Tensor& other, float scale) {
  SC_CHECK_MSG(shape_ == other.shape_, "shape mismatch in Tensor::Add: "
                                           << shape_ << " vs "
                                           << other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += scale * other.data_[i];
}

void Tensor::Scale(float s) {
  for (float& x : data_) x *= s;
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  SC_CHECK_MSG(a.shape() == b.shape(), "shape mismatch in MaxAbsDiff");
  float m = 0.0f;
  for (std::size_t i = 0; i < a.numel(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

}  // namespace sc::nn
