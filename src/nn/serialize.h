// Network (de)serialization.
//
// A compact binary format holding both the structure (layer kinds and
// hyper-parameters, graph edges) and the learnable parameters. Used by the
// model-cloning workflow: the adversary reverse engineers a victim, saves
// the reconstruction, and ships it as a standalone model.
//
// Format (little-endian, host byte order):
//   magic "SCNN" | u32 version | input shape | u32 num_nodes
//   per node: u8 kind | name | kind-specific config | inputs | params
// Tensors are serialized as rank + extents + raw float data.
#ifndef SC_NN_SERIALIZE_H_
#define SC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "nn/network.h"

namespace sc::nn {

void SaveNetwork(const Network& net, std::ostream& os);
Network LoadNetwork(std::istream& is);

void SaveNetworkFile(const Network& net, const std::string& path);
Network LoadNetworkFile(const std::string& path);

}  // namespace sc::nn

#endif  // SC_NN_SERIALIZE_H_
