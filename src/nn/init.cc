#include "nn/init.h"

#include <cmath>

#include "nn/conv2d.h"
#include "nn/dense.h"

namespace sc::nn {

void HeInit(Tensor& weights, int fan_in, Rng& rng) {
  SC_CHECK(fan_in >= 1);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  for (std::size_t i = 0; i < weights.numel(); ++i)
    weights[i] = rng.GaussianF(stddev);
}

void InitNetwork(Network& net, Rng& rng) {
  for (int i = 0; i < net.num_nodes(); ++i) {
    Layer& l = net.layer(i);
    if (auto* conv = dynamic_cast<Conv2D*>(&l)) {
      const int fan_in = conv->in_depth() * conv->filter() * conv->filter();
      HeInit(conv->weights(), fan_in, rng);
      conv->bias().Zero();
    } else if (auto* fc = dynamic_cast<FullyConnected*>(&l)) {
      HeInit(fc->weights(), fc->in_features(), rng);
      fc->bias().Zero();
    }
  }
}

}  // namespace sc::nn
