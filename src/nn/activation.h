// ReLU activation with an optional tunable threshold.
//
// Standard ReLU is threshold == 0. Several accelerator designs the paper
// cites (Minerva, Cnvlutin) replace ReLU with a tunable threshold function
// that prunes small positive values too; the weight attack's full bias
// recovery (paper §4.1, last paragraph) exploits exactly that knob.
#ifndef SC_NN_ACTIVATION_H_
#define SC_NN_ACTIVATION_H_

#include "nn/layer.h"

namespace sc::nn {

// y = x if x > threshold else 0.
class Relu : public Layer {
 public:
  explicit Relu(std::string name, float threshold = 0.0f)
      : Layer(std::move(name)), threshold_(threshold) {
    SC_CHECK_MSG(threshold >= 0.0f, "ReLU threshold must be >= 0");
  }

  LayerKind kind() const override { return LayerKind::kRelu; }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;

  float threshold() const { return threshold_; }
  // The tunable-threshold knob exposed by Minerva-style accelerators.
  void set_threshold(float t) {
    SC_CHECK_MSG(t >= 0.0f, "ReLU threshold must be >= 0");
    threshold_ = t;
  }

 private:
  float threshold_;
};

}  // namespace sc::nn

#endif  // SC_NN_ACTIVATION_H_
