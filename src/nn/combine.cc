#include "nn/combine.h"

namespace sc::nn {

Concat::Concat(std::string name, int num_inputs)
    : Layer(std::move(name)), num_inputs_(num_inputs) {
  SC_CHECK_MSG(num_inputs >= 2, "Concat needs >= 2 inputs");
}

Shape Concat::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(static_cast<int>(in.size()) == num_inputs_,
               "Concat arity mismatch");
  int depth = 0;
  for (const Shape& s : in) {
    SC_CHECK_MSG(s.rank() == 3, "Concat inputs must be rank-3");
    SC_CHECK_MSG(s[1] == in[0][1] && s[2] == in[0][2],
                 "Concat spatial extents differ: " << s << " vs " << in[0]);
    depth += s[0];
  }
  return Shape{depth, in[0][1], in[0][2]};
}

Tensor Concat::Forward(const std::vector<const Tensor*>& in) const {
  std::vector<Shape> shapes;
  shapes.reserve(in.size());
  for (const Tensor* t : in) {
    SC_CHECK(t != nullptr);
    shapes.push_back(t->shape());
  }
  Tensor y(OutputShape(shapes));
  std::size_t offset = 0;
  for (const Tensor* t : in) {
    for (std::size_t i = 0; i < t->numel(); ++i) y[offset + i] = (*t)[i];
    offset += t->numel();
  }
  return y;
}

std::vector<Tensor> Concat::Backward(const std::vector<const Tensor*>& in,
                                     const Tensor& out,
                                     const Tensor& grad_out) {
  SC_CHECK(grad_out.shape() == out.shape());
  std::vector<Tensor> grads;
  std::size_t offset = 0;
  for (const Tensor* t : in) {
    Tensor g(t->shape());
    for (std::size_t i = 0; i < g.numel(); ++i) g[i] = grad_out[offset + i];
    offset += g.numel();
    grads.push_back(std::move(g));
  }
  return grads;
}

EltwiseAdd::EltwiseAdd(std::string name, int num_inputs)
    : Layer(std::move(name)), num_inputs_(num_inputs) {
  SC_CHECK_MSG(num_inputs >= 2, "EltwiseAdd needs >= 2 inputs");
}

Shape EltwiseAdd::OutputShape(const std::vector<Shape>& in) const {
  SC_CHECK_MSG(static_cast<int>(in.size()) == num_inputs_,
               "EltwiseAdd arity mismatch");
  for (const Shape& s : in)
    SC_CHECK_MSG(s == in[0], "EltwiseAdd shape mismatch: " << s << " vs "
                                                           << in[0]);
  return in[0];
}

Tensor EltwiseAdd::Forward(const std::vector<const Tensor*>& in) const {
  SC_CHECK(static_cast<int>(in.size()) == num_inputs_);
  for (const Tensor* t : in) SC_CHECK(t != nullptr);
  Tensor y(in[0]->shape());
  for (std::size_t i = 0; i < y.numel(); ++i) {
    float acc = 0.0f;
    for (const Tensor* t : in) acc += (*t)[i];
    y[i] = acc;
  }
  return y;
}

std::vector<Tensor> EltwiseAdd::Backward(const std::vector<const Tensor*>& in,
                                         const Tensor& out,
                                         const Tensor& grad_out) {
  SC_CHECK(grad_out.shape() == out.shape());
  std::vector<Tensor> grads;
  for (std::size_t k = 0; k < in.size(); ++k) grads.push_back(grad_out);
  return grads;
}

}  // namespace sc::nn
