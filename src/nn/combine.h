// Multi-input combination layers: depth concatenation and element-wise add.
//
// Concat implements the fire-module output of SqueezeNet (expand1x1 ++
// expand3x3 along the channel dimension). EltwiseAdd implements the bypass
// connections of ResNet/SqueezeNet-with-bypass; following the paper, it is
// realised as a separate layer that reads both operands (the Caffe /
// TensorFlow strategy), which is what makes bypass paths visible as extra
// RAW dependencies in the memory trace.
#ifndef SC_NN_COMBINE_H_
#define SC_NN_COMBINE_H_

#include "nn/layer.h"

namespace sc::nn {

// Concatenates N >= 2 inputs with equal spatial extents along depth.
class Concat : public Layer {
 public:
  Concat(std::string name, int num_inputs);

  LayerKind kind() const override { return LayerKind::kConcat; }
  int num_inputs() const override { return num_inputs_; }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;

 private:
  int num_inputs_;
};

// Element-wise sum of N >= 2 equal-shape inputs.
class EltwiseAdd : public Layer {
 public:
  EltwiseAdd(std::string name, int num_inputs);

  LayerKind kind() const override { return LayerKind::kEltwiseAdd; }
  int num_inputs() const override { return num_inputs_; }
  Shape OutputShape(const std::vector<Shape>& in) const override;
  Tensor Forward(const std::vector<const Tensor*>& in) const override;
  std::vector<Tensor> Backward(const std::vector<const Tensor*>& in,
                               const Tensor& out,
                               const Tensor& grad_out) override;

 private:
  int num_inputs_;
};

}  // namespace sc::nn

#endif  // SC_NN_COMBINE_H_
