// A CNN as a DAG of layers.
//
// Nodes are appended in topological order; each node names the node indices
// (or the network input) it consumes. This single representation is used by
// the reference inference engine, the trainer, and the accelerator
// simulator, so there is exactly one definition of every model.
#ifndef SC_NN_NETWORK_H_
#define SC_NN_NETWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "nn/tensor.h"

namespace sc::nn {

// Sentinel node id meaning "the network's input tensor".
inline constexpr int kInputNode = -1;

class Network {
 public:
  explicit Network(Shape input_shape);

  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  // Appends a node consuming the given producers (node indices or
  // kInputNode). Validates arity and shape compatibility immediately.
  // Returns the new node's id.
  int Add(std::unique_ptr<Layer> layer, std::vector<int> inputs);

  // Convenience for the common sequential case: consume the latest node
  // (or the network input if the network is empty).
  int Append(std::unique_ptr<Layer> layer);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Shape& input_shape() const { return input_shape_; }

  Layer& layer(int node) { return *NodeAt(node).layer; }
  const Layer& layer(int node) const { return *NodeAt(node).layer; }
  const std::vector<int>& inputs_of(int node) const {
    return NodeAt(node).inputs;
  }
  const Shape& output_shape(int node) const { return NodeAt(node).out_shape; }

  // Output shape of the final node.
  const Shape& final_shape() const;

  // Node ids that no other node consumes (the network outputs).
  std::vector<int> OutputNodes() const;

  // Node ids consuming the given node.
  std::vector<int> ConsumersOf(int node) const;

  // All learnable parameters across layers.
  std::vector<ParamRef> Params();

  // Total learnable parameter count.
  std::size_t NumParams();

  // Forward pass; returns one output tensor per node (index-aligned).
  std::vector<Tensor> Forward(const Tensor& input) const;

  // Forward pass returning only the final node's output.
  Tensor ForwardFinal(const Tensor& input) const;

 private:
  struct Node {
    std::unique_ptr<Layer> layer;
    std::vector<int> inputs;
    Shape out_shape;
  };

  const Node& NodeAt(int id) const;
  Node& NodeAt(int id);

  Shape input_shape_;
  std::vector<Node> nodes_;
};

}  // namespace sc::nn

#endif  // SC_NN_NETWORK_H_
