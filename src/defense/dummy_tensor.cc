#include "defense/dummy_tensor.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/rng.h"

namespace sc::defense {

DummyTensorTransform::DummyTensorTransform(DummyTensorConfig cfg)
    : cfg_(cfg) {
  SC_CHECK(cfg_.num_regions >= 1);
  SC_CHECK(cfg_.period >= 1);
  SC_CHECK(cfg_.read_delay >= 1);
  SC_CHECK(cfg_.chunk_bytes > 0);
  SC_CHECK(cfg_.region_bytes >= cfg_.chunk_bytes);
}

trace::Trace DummyTensorTransform::Apply(const trace::Trace& in) const {
  return ApplySeeded(in, cfg_.seed);
}

trace::Trace DummyTensorTransform::ApplyNth(const trace::Trace& in,
                                            std::uint64_t k) const {
  return ApplySeeded(in, MixSeed(cfg_.seed, k));
}

trace::Trace DummyTensorTransform::ApplySeeded(const trace::Trace& in,
                                               std::uint64_t seed) const {
  trace::Trace out;
  if (in.empty()) return out;
  static obs::Counter& injected =
      obs::Registry::Get().GetCounter("defense.dummy_tensor.pairs");

  // Place the fake tensors above everything the victim touches, each
  // separated by a guard gap so region clustering sees distinct tensors.
  std::uint64_t hi = 0;
  for (const trace::MemEvent& e : in) hi = std::max(hi, e.end());
  const std::uint64_t stride = cfg_.region_bytes + cfg_.region_guard;
  const std::uint64_t base =
      (hi + cfg_.region_guard + stride - 1) / stride * stride;

  sc::Rng rng(seed);
  std::vector<std::uint64_t> offset(static_cast<std::size_t>(cfg_.num_regions),
                                    0);
  struct PendingRead {
    std::size_t due;  // real-event index at which the paired read fires
    std::uint64_t addr;
    std::uint32_t bytes;
  };
  std::deque<PendingRead> pending;
  const double p = 1.0 / cfg_.period;

  for (std::size_t i = 0; i < in.size(); ++i) {
    const trace::MemEvent& e = in[i];
    // Fire paired reads that came due: each one reads back bytes a dummy
    // write stored `read_delay` transactions ago — a fabricated RAW edge
    // bracketing real traffic.
    while (!pending.empty() && pending.front().due <= i) {
      out.Append(e.cycle, pending.front().addr, pending.front().bytes,
                 trace::MemOp::kRead);
      pending.pop_front();
    }
    out.Append(e);
    if (rng.Chance(p)) {
      const auto r = static_cast<std::size_t>(
          rng.UniformInt(0, cfg_.num_regions - 1));
      const std::uint64_t chunk = std::min<std::uint64_t>(
          cfg_.chunk_bytes, cfg_.region_bytes - offset[r]);
      const std::uint64_t addr = base + r * stride + offset[r];
      offset[r] = (offset[r] + chunk) % cfg_.region_bytes;
      out.Append(e.cycle, addr, static_cast<std::uint32_t>(chunk),
                 trace::MemOp::kWrite);
      pending.push_back(
          {i + static_cast<std::size_t>(cfg_.read_delay), addr,
           static_cast<std::uint32_t>(chunk)});
      injected.Add();
    }
  }
  // Drain pairs whose read slot lies past the end of the trace.
  const std::uint64_t last = in[in.size() - 1].cycle;
  for (const PendingRead& pr : pending)
    out.Append(last, pr.addr, pr.bytes, trace::MemOp::kRead);
  return out;
}

DummyTensorDefense::DummyTensorDefense(Strength strength, std::uint64_t seed)
    : DummyTensorDefense([&] {
        DummyTensorConfig cfg;
        cfg.seed = seed;
        switch (strength) {
          case Strength::kLow:
            cfg.num_regions = 2;
            cfg.period = 64;
            break;
          case Strength::kMedium:
            cfg.num_regions = 4;
            cfg.period = 32;
            break;
          case Strength::kHigh:
            cfg.num_regions = 8;
            cfg.period = 16;
            break;
        }
        return cfg;
      }()) {}

std::string DummyTensorDefense::description() const {
  const DummyTensorConfig& cfg = transform_.config();
  std::ostringstream os;
  os << cfg.num_regions << " fake tensor regions, one write/read pair per "
     << cfg.period << " transactions";
  return os.str();
}

}  // namespace sc::defense
