// Composition of defenses into one deployed stack.
//
// No single strategy closes every channel: RLE padding is transparent on
// the address/timing trace, shaping leaves addresses readable, obfuscation
// leaves the zero-count channel open. A DefenseStack chains member
// defenses in order — trace transforms compose left to right (member 0
// sits closest to the victim, the last member is what the probe sees),
// oracle transforms likewise, and every member gets to configure the
// accelerator. The eval harness treats a stack like any other strategy,
// so the scorecard shows directly what the combination buys over its
// parts.
#ifndef SC_DEFENSE_STACK_H_
#define SC_DEFENSE_STACK_H_

#include <memory>
#include <string>
#include <vector>

#include "defense/defense.h"

namespace sc::defense {

class DefenseStack : public Defense {
 public:
  // Takes ownership; member order is victim -> probe.
  explicit DefenseStack(std::vector<std::unique_ptr<Defense>> members);

  std::string name() const override { return "stack"; }
  std::string description() const override;

  // Non-null iff any member transforms the trace / the counts.
  const DefenseTransform* trace_transform() const override;
  const OracleTransform* oracle_transform() const override;
  void ConfigureAccelerator(accel::AcceleratorConfig& cfg) const override;

  const std::vector<std::unique_ptr<Defense>>& members() const {
    return members_;
  }

 private:
  class ChainTransform;
  class ChainOracle;

  std::vector<std::unique_ptr<Defense>> members_;
  std::unique_ptr<DefenseTransform> trace_chain_;  // null if no member has one
  std::unique_ptr<OracleTransform> oracle_chain_;  // likewise
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_STACK_H_
