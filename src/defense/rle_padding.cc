#include "defense/rle_padding.h"

namespace sc::defense {

// Every observed unit decodes as completely dense: the padded burst for a
// tile of N elements is always sized for N stored elements.
class RlePaddingDefense::PadToWorstCase : public OracleTransform {
 public:
  std::size_t Apply(std::size_t true_count,
                    std::size_t unit_elems) const override {
    (void)true_count;
    return unit_elems;
  }
};

RlePaddingDefense::RlePaddingDefense()
    : oracle_(std::make_unique<PadToWorstCase>()) {}

void RlePaddingDefense::ConfigureAccelerator(
    accel::AcceleratorConfig& cfg) const {
  cfg.prune_constant_shape = true;
}

}  // namespace sc::defense
