// Constant-rate traffic shaping (the timing/traffic-volume channel).
//
// Related work (I Know What You See, arXiv:1803.05847; the dataflow-
// accelerator attacks of arXiv:2311.00579) extracts structure from *when*
// and *how much* the accelerator moves, even when addresses are hidden.
// This defense models a bus shaper that drains one fixed-size transaction
// every `beat_cycles`, from the first transfer until the queue is empty:
//
//   - every burst is chopped into fixed `burst_bytes` transactions (the
//     tail padded up to the full size), so burst lengths carry no
//     information beyond a coarse quantized volume;
//   - transactions leave on a rigid cadence; while the victim's queue is
//     empty the shaper emits keep-alive re-reads of the last read address,
//     so inter-event gaps carry no information at all.
//
// Per-layer execution time — the attack's Eq. (9) MAC-proportionality
// filter — then degenerates to "number of beats", i.e. quantized traffic
// volume, which the address stream already leaked. Addresses are NOT
// hidden (that is obfuscation's job): the keep-alive dummy repeats an
// address the current segment already read, so RAW segmentation still
// works and the structure attack keeps producing candidates — it just can
// no longer use timing to single out the true one.
//
// The same padding closes part of the §4 channel: a compressed OFM burst
// is observable only at `burst_bytes` granularity, so decoded non-zero
// counts are quantized to `count_quantum` elements (OracleTransform view).
#ifndef SC_DEFENSE_TRAFFIC_SHAPING_H_
#define SC_DEFENSE_TRAFFIC_SHAPING_H_

#include <cstdint>
#include <string>

#include "defense/defense.h"

namespace sc::defense {

struct TrafficShapingConfig {
  // Fixed transaction size every burst is chopped/padded to.
  std::uint32_t burst_bytes = 512;
  // Inter-transaction cadence. 0 = rate-match the DRAM interface
  // (burst_bytes / AcceleratorConfig{}.bytes_per_cycle).
  std::uint64_t beat_cycles = 0;
  // Zero-count quantization step in elements: one compressed element costs
  // element_bytes + prune_index_bytes on the bus, so a `burst_bytes`
  // transaction holds about burst_bytes / 6 of them. 0 = derive that way.
  std::size_t count_quantum = 0;

  std::uint64_t resolved_beat() const;
  std::size_t resolved_quantum() const;
};

// The bus-side shaper. Deterministic (no RNG): every acquisition of the
// same execution looks identical, so ApplyNth keeps the default Apply.
class ConstantRateShaper : public DefenseTransform {
 public:
  explicit ConstantRateShaper(TrafficShapingConfig cfg);

  trace::Trace Apply(const trace::Trace& in) const override;

  const TrafficShapingConfig& config() const { return cfg_; }

 private:
  TrafficShapingConfig cfg_;
};

class TrafficShapingDefense : public Defense {
 public:
  explicit TrafficShapingDefense(TrafficShapingConfig cfg);
  // Strength scales the padding granularity: 256 / 512 / 1024-byte
  // transactions (coarser = more padding, coarser count quantization).
  explicit TrafficShapingDefense(Strength strength);

  std::string name() const override { return "shaping"; }
  std::string description() const override;
  const DefenseTransform* trace_transform() const override {
    return &shaper_;
  }
  const OracleTransform* oracle_transform() const override;

  const TrafficShapingConfig& config() const { return shaper_.config(); }

 private:
  class QuantizeCounts;

  ConstantRateShaper shaper_;
  std::unique_ptr<OracleTransform> oracle_;
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_TRAFFIC_SHAPING_H_
