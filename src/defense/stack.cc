#include "defense/stack.h"

#include <sstream>

#include "support/check.h"
#include "support/rng.h"

namespace sc::defense {

class DefenseStack::ChainTransform : public DefenseTransform {
 public:
  explicit ChainTransform(const DefenseStack& stack) : stack_(stack) {}

  trace::Trace Apply(const trace::Trace& in) const override {
    trace::Trace cur = in;
    for (const auto& m : stack_.members_)
      if (const DefenseTransform* t = m->trace_transform())
        cur = t->Apply(cur);
    return cur;
  }

  trace::Trace ApplyNth(const trace::Trace& in,
                        std::uint64_t k) const override {
    // Decorrelate the members of one acquisition from each other as well
    // as across acquisitions: member j of acquisition k draws stream
    // MixSeed(k, j) — randomized members must not reuse one k and move in
    // lockstep.
    trace::Trace cur = in;
    std::uint64_t j = 0;
    for (const auto& m : stack_.members_) {
      if (const DefenseTransform* t = m->trace_transform())
        cur = t->ApplyNth(cur, MixSeed(k, j));
      ++j;
    }
    return cur;
  }

 private:
  const DefenseStack& stack_;
};

class DefenseStack::ChainOracle : public OracleTransform {
 public:
  explicit ChainOracle(const DefenseStack& stack) : stack_(stack) {}

  std::size_t Apply(std::size_t true_count,
                    std::size_t unit_elems) const override {
    std::size_t cur = true_count;
    for (const auto& m : stack_.members_)
      if (const OracleTransform* t = m->oracle_transform())
        cur = t->Apply(cur, unit_elems);
    return cur;
  }

 private:
  const DefenseStack& stack_;
};

DefenseStack::DefenseStack(std::vector<std::unique_ptr<Defense>> members)
    : members_(std::move(members)) {
  SC_CHECK(!members_.empty());
  for (const auto& m : members_) SC_CHECK(m != nullptr);
  bool any_trace = false, any_oracle = false;
  for (const auto& m : members_) {
    any_trace = any_trace || m->trace_transform() != nullptr;
    any_oracle = any_oracle || m->oracle_transform() != nullptr;
  }
  if (any_trace) trace_chain_ = std::make_unique<ChainTransform>(*this);
  if (any_oracle) oracle_chain_ = std::make_unique<ChainOracle>(*this);
}

std::string DefenseStack::description() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < members_.size(); ++i)
    os << (i > 0 ? " + " : "") << members_[i]->name();
  return os.str();
}

const DefenseTransform* DefenseStack::trace_transform() const {
  return trace_chain_.get();
}

const OracleTransform* DefenseStack::oracle_transform() const {
  return oracle_chain_.get();
}

void DefenseStack::ConfigureAccelerator(accel::AcceleratorConfig& cfg) const {
  for (const auto& m : members_) m->ConfigureAccelerator(cfg);
}

}  // namespace sc::defense
