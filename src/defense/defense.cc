#include "defense/defense.h"

#include "defense/dummy_tensor.h"
#include "defense/obfuscation.h"
#include "defense/rle_padding.h"
#include "defense/stack.h"
#include "defense/traffic_shaping.h"
#include "support/check.h"
#include "support/rng.h"

namespace sc::defense {

const char* ToString(Strength s) {
  switch (s) {
    case Strength::kLow:
      return "low";
    case Strength::kMedium:
      return "medium";
    case Strength::kHigh:
      return "high";
  }
  return "?";
}

const char* ToString(DefenseKind k) {
  switch (k) {
    case DefenseKind::kNone:
      return "none";
    case DefenseKind::kObfuscation:
      return "obfuscation";
    case DefenseKind::kShaping:
      return "shaping";
    case DefenseKind::kDummyTensor:
      return "dummy_tensor";
    case DefenseKind::kRlePadding:
      return "rle_padding";
    case DefenseKind::kStack:
      return "stack";
  }
  return "?";
}

std::unique_ptr<Defense> MakeDefense(DefenseKind kind, Strength strength,
                                     std::uint64_t seed) {
  switch (kind) {
    case DefenseKind::kNone:
      return std::make_unique<NullDefense>();
    case DefenseKind::kObfuscation:
      return std::make_unique<ObfuscationDefense>(strength, seed);
    case DefenseKind::kShaping:
      return std::make_unique<TrafficShapingDefense>(strength);
    case DefenseKind::kDummyTensor:
      return std::make_unique<DummyTensorDefense>(strength, seed);
    case DefenseKind::kRlePadding:
      return std::make_unique<RlePaddingDefense>();
    case DefenseKind::kStack: {
      // The deployed combination: hide addresses, flatten timing, close
      // the count channel. Members draw decorrelated seed streams so the
      // stack's dummies never move in lockstep with standalone runs.
      std::vector<std::unique_ptr<Defense>> members;
      members.push_back(std::make_unique<ObfuscationDefense>(
          strength, MixSeed(seed, 101)));
      members.push_back(std::make_unique<TrafficShapingDefense>(strength));
      members.push_back(std::make_unique<RlePaddingDefense>());
      return std::make_unique<DefenseStack>(std::move(members));
    }
  }
  SC_CHECK_MSG(false, "unknown defense kind");
  return nullptr;
}

std::vector<DefenseKind> StandardDefenseKinds() {
  return {DefenseKind::kNone,        DefenseKind::kObfuscation,
          DefenseKind::kShaping,     DefenseKind::kDummyTensor,
          DefenseKind::kRlePadding,  DefenseKind::kStack};
}

}  // namespace sc::defense
