// Attack-vs-defense evaluation harness (DESIGN.md §10).
//
// Runs the full cross product {structure attack, robust structure attack,
// weight attack} x {defense strategy, strength} x {victim} and scores
// every cell against ground truth the evaluator holds:
//
//   - structure cells: how many full structures survive, where the true
//     architecture ranks in the attack's preference order (timing spread
//     ascending), and whether it is uniquely top-ranked;
//   - weight cells: filters fully recovered and the max w/b ratio error —
//     undefended, the paper's Figure-7 headline (error < 2^-10);
//   - every cell: the defense's traffic / event / latency overhead on the
//     victim it defended, because a countermeasure is only as good as what
//     it costs.
//
// The structure attacker ADAPTS: if the standard (timing-filtered, exact
// size) attack yields nothing, it retries with the timing filter disabled,
// then with increasing solver size slack — an attacker facing a shaped or
// padded bus would do exactly that. A defense therefore only scores by
// making the surviving candidate set large or truth-free, not by tripping
// a brittle filter. Cells record which stage succeeded.
#ifndef SC_DEFENSE_EVAL_H_
#define SC_DEFENSE_EVAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "defense/defense.h"

namespace sc::defense {

struct EvalConfig {
  std::vector<DefenseKind> kinds = StandardDefenseKinds();
  std::vector<Strength> strengths = {Strength::kLow, Strength::kMedium,
                                     Strength::kHigh};
  bool lenet = true;
  bool convnet = true;
  bool alexnet = false;  // Table-3 scale; minutes, not seconds
  // Acquisitions handed to the robust (consensus) structure attack; the
  // defended bus re-randomizes each one (DefenseTransform::ApplyNth).
  int robust_acquisitions = 5;
  // Size-slack ladder of the adaptive structure attacker (elements), tried
  // after the exact stages come up empty.
  std::vector<long long> adaptive_slack = {16, 64, 256};
  std::size_t max_structures = 50000;
  std::uint64_t input_seed = 17;    // victim input driving the traces
  std::uint64_t defense_seed = 1;   // randomized defenses
  std::uint64_t secret_seed = 91;   // weight-attack victim secrets
};

struct EvalCell {
  std::string victim;   // lenet / convnet / alexnet / conv_stage
  std::string attack;   // structure / structure_robust / weight
  DefenseKind kind = DefenseKind::kNone;
  // "-" when the strategy has no strength axis (none, rle_padding).
  std::string strength;
  // ok / no_structures (attack came up empty at every adaptive stage) /
  // overflow (candidate set exploded past max_structures) / rejected
  // (analysis refused the trace).
  std::string outcome;

  // Structure cells.
  std::size_t candidates = 0;
  std::size_t truth_rank = 0;        // 1-based; 0 = truth absent
  bool truth_unique_top = false;
  bool timing_filter_ok = false;     // standard timing-filtered stage found it
  long long slack_used = 0;          // adaptive stage's size slack (elements)

  // Weight cells.
  int filters_recovered = 0;
  int filters_total = 0;
  double fraction_recovered = 0.0;
  double max_ratio_error = 0.0;

  // Defended victim run vs undefended run.
  double traffic_overhead = 1.0;   // bytes moved
  double event_overhead = 1.0;     // bus transactions
  double latency_overhead = 1.0;   // last bus cycle

  std::string defense_desc;
};

struct EvalMatrix {
  std::vector<EvalCell> cells;
};

EvalMatrix RunDefenseMatrix(const EvalConfig& cfg);

// One row per cell; commas inside free-text fields become ';'. Stable
// schema — ablation_defense and the nightly CI smoke parse it.
void WriteMatrixCsv(std::ostream& os, const EvalMatrix& m);

// metrics.json-style scorecard: {"defense_matrix": [ {cell}, ... ]}.
void WriteScorecardJson(std::ostream& os, const EvalMatrix& m);

}  // namespace sc::defense

#endif  // SC_DEFENSE_EVAL_H_
