#include "defense/traffic_shaping.h"

#include <sstream>
#include <vector>

#include "support/check.h"

namespace sc::defense {

std::uint64_t TrafficShapingConfig::resolved_beat() const {
  if (beat_cycles != 0) return beat_cycles;
  // Rate-match the DRAM interface so shaping adds padding, not stalls.
  const accel::AcceleratorConfig dram;
  return burst_bytes / static_cast<std::uint64_t>(dram.bytes_per_cycle);
}

std::size_t TrafficShapingConfig::resolved_quantum() const {
  if (count_quantum != 0) return count_quantum;
  const accel::AcceleratorConfig dram;
  const std::size_t per_elem = static_cast<std::size_t>(dram.element_bytes) +
                               static_cast<std::size_t>(dram.prune_index_bytes);
  const std::size_t q = burst_bytes / per_elem;
  return q == 0 ? 1 : q;
}

ConstantRateShaper::ConstantRateShaper(TrafficShapingConfig cfg) : cfg_(cfg) {
  SC_CHECK(cfg_.burst_bytes >= 64);
  SC_CHECK(cfg_.resolved_beat() > 0);
}

trace::Trace ConstantRateShaper::Apply(const trace::Trace& in) const {
  trace::Trace out;
  if (in.empty()) return out;
  const std::uint64_t beat = cfg_.resolved_beat();
  const std::uint32_t burst = cfg_.burst_bytes;

  // Chop every burst into fixed-size transactions keyed by the cycle the
  // victim made the data available.
  struct Chunk {
    std::uint64_t cycle;
    std::uint64_t addr;
    trace::MemOp op;
  };
  std::vector<Chunk> chunks;
  for (const trace::MemEvent& e : in) {
    const std::uint64_t n = (static_cast<std::uint64_t>(e.bytes) + burst - 1) /
                            burst;
    for (std::uint64_t c = 0; c < n; ++c)
      chunks.push_back({e.cycle, e.addr + c * burst, e.op});
  }

  // Drain one transaction per beat. Real chunks leave in order once their
  // original cycle has passed; idle beats carry a keep-alive re-read of the
  // last real read, so the cadence never pauses. Re-reading an address the
  // current segment already read is invisible to RAW segmentation; if a
  // later real write ever covers that address (disjoint tensor regions make
  // this all but impossible), the template is dropped rather than risking a
  // fake RAW edge, and the next pending chunk leaves early instead.
  std::size_t next = 0;
  bool have_read = false;
  std::uint64_t last_read_addr = 0;
  std::uint64_t t = chunks.front().cycle / beat;
  while (next < chunks.size()) {
    const std::uint64_t now = t * beat;
    if (chunks[next].cycle <= now || (!out.empty() && !have_read)) {
      const Chunk& c = chunks[next++];
      out.Append(now, c.addr, burst, c.op);
      if (c.op == trace::MemOp::kRead) {
        have_read = true;
        last_read_addr = c.addr;
      } else if (c.addr <= last_read_addr && last_read_addr < c.addr + burst) {
        have_read = false;
      }
      ++t;
    } else if (have_read) {
      out.Append(now, last_read_addr, burst, trace::MemOp::kRead);
      ++t;
    } else {
      // Nothing has left yet: the shaper clock starts with the traffic.
      t = (chunks[next].cycle + beat - 1) / beat;
    }
  }
  return out;
}

// Behind burst padding, a compressed OFM write is observable only as a
// whole number of `burst_bytes` transactions, so the decoded non-zero
// count collapses to the next multiple of the per-burst element capacity.
// In particular 0 and 1 non-zeros produce the same single padded burst —
// the Algorithm-2 single-element flip is invisible unless the true count
// sits exactly at a quantum boundary.
class TrafficShapingDefense::QuantizeCounts : public OracleTransform {
 public:
  explicit QuantizeCounts(std::size_t quantum) : quantum_(quantum) {}

  std::size_t Apply(std::size_t true_count,
                    std::size_t unit_elems) const override {
    (void)unit_elems;
    return (true_count / quantum_ + 1) * quantum_;
  }

 private:
  std::size_t quantum_;
};

TrafficShapingDefense::TrafficShapingDefense(TrafficShapingConfig cfg)
    : shaper_(cfg),
      oracle_(std::make_unique<QuantizeCounts>(cfg.resolved_quantum())) {}

TrafficShapingDefense::TrafficShapingDefense(Strength strength)
    : TrafficShapingDefense([&] {
        TrafficShapingConfig cfg;
        switch (strength) {
          case Strength::kLow:
            cfg.burst_bytes = 256;
            break;
          case Strength::kMedium:
            cfg.burst_bytes = 512;
            break;
          case Strength::kHigh:
            cfg.burst_bytes = 1024;
            break;
        }
        return cfg;
      }()) {}

const OracleTransform* TrafficShapingDefense::oracle_transform() const {
  return oracle_.get();
}

std::string TrafficShapingDefense::description() const {
  const TrafficShapingConfig& cfg = shaper_.config();
  std::ostringstream os;
  os << "constant-rate shaper (" << cfg.burst_bytes << " B every "
     << cfg.resolved_beat() << " cycles, counts quantized to "
     << cfg.resolved_quantum() << ")";
  return os.str();
}

}  // namespace sc::defense
