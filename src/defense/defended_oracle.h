// Zero-count oracle as seen through a deployed defense.
//
// The weight attack (attack/weights) consumes a ZeroCountOracle; a defense
// with an OracleTransform changes what that oracle's probe decodes. This
// decorator applies the transform to every count the inner oracle returns,
// so any attack driver — plain, voting, robust — can be evaluated against
// any defense without knowing defenses exist. For the one datapath defense
// (RLE padding) the same numbers can also be produced the long way, by
// running AcceleratorOracle over a prune_constant_shape victim; the test
// suite pins the two paths to each other.
#ifndef SC_DEFENSE_DEFENDED_ORACLE_H_
#define SC_DEFENSE_DEFENDED_ORACLE_H_

#include <cstdint>
#include <memory>

#include "attack/weights/oracle.h"
#include "defense/defense.h"

namespace sc::defense {

class DefendedOracle : public attack::ZeroCountOracle {
 public:
  // Non-owning: `inner` and `transform` must outlive this oracle. The
  // inner oracle must know its unit size (channel_elems() > 0) — a padding
  // transform is meaningless without the worst case to pad to.
  DefendedOracle(attack::ZeroCountOracle& inner,
                 const OracleTransform& transform);

  std::size_t ChannelNonZeros(const std::vector<attack::SparsePixel>& pixels,
                              int channel) override;
  std::size_t TotalNonZeros(
      const std::vector<attack::SparsePixel>& pixels) override;
  int num_channels() const override;
  std::size_t channel_elems() const override;
  bool SetActivationThreshold(float threshold) override;
  std::unique_ptr<attack::ZeroCountOracle> Clone() const override;
  std::unique_ptr<attack::ZeroCountOracle> Fork(
      std::uint64_t stream) const override;

 private:
  DefendedOracle(std::unique_ptr<attack::ZeroCountOracle> owned,
                 const OracleTransform& transform);

  std::unique_ptr<attack::ZeroCountOracle> owned_;
  attack::ZeroCountOracle& inner_;
  const OracleTransform& transform_;
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_DEFENDED_ORACLE_H_
