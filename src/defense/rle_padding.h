// Fixed-size RLE padding (the §4 zero-count channel).
//
// Algorithm 2 recovers weights by watching the *size* of compressed OFM
// write bursts: with dynamic zero pruning, one extra non-zero output grows
// the burst by element_bytes + prune_index_bytes, so a bisection over
// crafted inputs reads off each weight's magnitude. The countermeasure the
// paper hints at is to make the compression shape-static: keep storing the
// data compressed, but pad every write burst to the worst-case size of its
// tile. The write-side bandwidth saving is forfeited (reads keep theirs),
// and the observed burst size becomes a constant — the oracle decodes the
// same count for every input, so bisection never sees a flip and recovers
// nothing.
//
// This is the one strategy implemented in the victim's datapath rather
// than on the bus: ConfigureAccelerator flips the accelerator's
// prune_constant_shape knob, and the OracleTransform mirrors exactly what
// the padded datapath emits (every unit decodes as its full element
// count), keeping the two evaluation paths consistent by construction.
#ifndef SC_DEFENSE_RLE_PADDING_H_
#define SC_DEFENSE_RLE_PADDING_H_

#include <string>

#include "defense/defense.h"

namespace sc::defense {

// Strength-invariant: padding to the worst case is all or nothing (a
// partial pad would still leak a truncated count).
class RlePaddingDefense : public Defense {
 public:
  RlePaddingDefense();

  std::string name() const override { return "rle_padding"; }
  std::string description() const override {
    return "compressed OFM writes padded to worst-case tile size";
  }
  const OracleTransform* oracle_transform() const override {
    return oracle_.get();
  }
  void ConfigureAccelerator(accel::AcceleratorConfig& cfg) const override;

 private:
  class PadToWorstCase;

  std::unique_ptr<OracleTransform> oracle_;
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_RLE_PADDING_H_
