// The common countermeasure interface (paper §5; DESIGN.md §10).
//
// The paper sketches two countermeasure families — hiding *which* addresses
// are touched (ORAM-style obfuscation) and hiding *how much* is written
// (masking the zero-value compression) — and related work adds the timing /
// traffic-volume channel. A Defense bundles a strategy's view of every
// leak surface:
//
//   - trace_transform(): what the probe observes on the bus instead of the
//     raw traffic (address, size and timing channels; §3 structure attack);
//   - oracle_transform(): what the adversary decodes from compressed OFM
//     write bursts instead of the true non-zero counts (§4 weight attack);
//   - ConfigureAccelerator(): datapath knobs the defense flips on the
//     victim itself (e.g. constant-shape RLE write-back).
//
// Any subset may be active; the eval harness (defense/eval.h) scores every
// strategy against both attacks regardless, so a defense that closes one
// channel is visibly transparent on the other.
#ifndef SC_DEFENSE_DEFENSE_H_
#define SC_DEFENSE_DEFENSE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "accel/config.h"
#include "trace/trace.h"

namespace sc::defense {

// Probe-side transform with per-acquisition streams. A real defended bus
// re-randomizes its dummy traffic on every inference, so an adversary
// averaging K acquisitions must see K independent placements — ApplyNth
// mirrors sim::TraceNoiseModel::ApplyNth (determinism per (config, k, in)).
// Deterministic defenses (no randomness) keep the default ApplyNth ==
// Apply: every acquisition looks the same.
class DefenseTransform : public trace::TraceTransform {
 public:
  virtual trace::Trace ApplyNth(const trace::Trace& in,
                                std::uint64_t /*k*/) const {
    return Apply(in);
  }
};

// The defense's effect on the §4 zero-count channel: maps the true decoded
// non-zero count of one observed unit (an output channel, or the whole OFM
// for aggregate queries) to what the probe decodes behind the defense.
// `unit_elems` is the unit's element count — the worst case a padding
// defense inflates every burst to. Implementations must be pure (the same
// (count, unit_elems) always maps to the same value) so bisection-style
// attacks face a consistent, if uninformative, channel.
class OracleTransform {
 public:
  virtual ~OracleTransform() = default;
  virtual std::size_t Apply(std::size_t true_count,
                            std::size_t unit_elems) const = 0;
};

// Protection/overhead operating point of a strategy. Each concrete defense
// documents what its levels scale (dummy rate, shaping cadence, ...).
enum class Strength { kLow, kMedium, kHigh };

const char* ToString(Strength s);

// One countermeasure strategy. Implementations own their transforms; the
// returned pointers stay valid for the Defense's lifetime.
class Defense {
 public:
  virtual ~Defense() = default;

  // Stable identifier used in scorecards/CSVs ("obfuscation", "shaping").
  virtual std::string name() const = 0;
  // One-line config summary for reports.
  virtual std::string description() const = 0;

  // Bus-level view; nullptr = the address/size/timing trace is unchanged.
  virtual const DefenseTransform* trace_transform() const { return nullptr; }
  // Zero-count-channel view; nullptr = decoded counts are unchanged.
  virtual const OracleTransform* oracle_transform() const { return nullptr; }
  // Datapath knobs applied to the victim's accelerator (the only hook that
  // may change emitted traffic at the source rather than rewriting it).
  virtual void ConfigureAccelerator(accel::AcceleratorConfig& cfg) const {
    (void)cfg;
  }
};

// The undefended baseline: every matrix needs its control column.
class NullDefense : public Defense {
 public:
  std::string name() const override { return "none"; }
  std::string description() const override { return "undefended baseline"; }
};

// The strategies shipped with the suite, in scorecard order.
enum class DefenseKind {
  kNone,
  kObfuscation,    // ORAM-ish block permutation + dummy blocks (§5)
  kShaping,        // constant-rate traffic shaping (timing channel)
  kDummyTensor,    // fake IFM/OFM regions (RAW-segmentation channel)
  kRlePadding,     // constant-shape compressed write-back (§4 count channel)
  kStack,          // obfuscation + shaping + RLE padding chained
};

const char* ToString(DefenseKind k);

// Factory for a strategy at a given operating point. `seed` feeds the
// randomized defenses (ignored by deterministic ones).
std::unique_ptr<Defense> MakeDefense(DefenseKind kind, Strength strength,
                                     std::uint64_t seed = 1);

// All kinds evaluated by the defense matrix, kNone first.
std::vector<DefenseKind> StandardDefenseKinds();

}  // namespace sc::defense

#endif  // SC_DEFENSE_DEFENSE_H_
