// Dummy-tensor interleaving (the RAW-segmentation channel).
//
// Algorithm 1 of the paper rests on one structural invariant: a read of an
// address written since the last layer boundary means a new layer began.
// This defense attacks the invariant directly. A bus-side controller
// maintains a handful of fake tensor regions above the victim's footprint
// (each separated by more than the attack's region-gap threshold, so the
// adversary discovers them as real tensors) and sporadically emits a dummy
// write into one of them followed, a few transactions later, by a read of
// the same bytes. Every such pair is a fabricated OFM -> IFM dependency:
// segmentation shatters each true layer into several fake ones, the
// write-region rule fires on every first touch of a fake region, and the
// candidate search solves the wrong layer sequence. Unlike obfuscation it
// leaves the victim's own addresses, sizes and timing untouched — it adds
// lies instead of hiding truths.
//
// Randomized: placement and pacing are drawn per acquisition (ApplyNth)
// so consensus voting across K captures cannot subtract a fixed pattern.
#ifndef SC_DEFENSE_DUMMY_TENSOR_H_
#define SC_DEFENSE_DUMMY_TENSOR_H_

#include <cstdint>
#include <string>

#include "defense/defense.h"

namespace sc::defense {

struct DummyTensorConfig {
  // Fake tensor regions kept live above the victim's footprint.
  int num_regions = 4;
  // One dummy write is injected per `period` real transactions on average.
  int period = 32;
  // Size of each fake region; offsets advance within it and wrap, so a
  // region looks like a tensor that is rewritten layer after layer.
  std::uint64_t region_bytes = 32 * 1024;
  // Burst size of dummy accesses (one OFM tile write / IFM tile read).
  std::uint32_t chunk_bytes = 4096;
  // Real transactions between a dummy write and its paired read. Must be
  // >= 1 so the pair brackets real traffic and forces a boundary between
  // genuine events.
  int read_delay = 8;
  // Guard gap between fake regions and above the victim footprint. Must
  // exceed the attack's region-clustering gap (AnalysisConfig::region_gap)
  // or the fake tensors merge into real ones.
  std::uint64_t region_guard = 4096;
  std::uint64_t seed = 1;
};

class DummyTensorTransform : public DefenseTransform {
 public:
  explicit DummyTensorTransform(DummyTensorConfig cfg);

  trace::Trace Apply(const trace::Trace& in) const override;
  trace::Trace ApplyNth(const trace::Trace& in,
                        std::uint64_t k) const override;

  const DummyTensorConfig& config() const { return cfg_; }

 private:
  trace::Trace ApplySeeded(const trace::Trace& in, std::uint64_t seed) const;

  DummyTensorConfig cfg_;
};

// Strength scales how densely the lies are planted: 2/4/8 fake regions at
// one dummy pair per 64/32/16 real transactions.
class DummyTensorDefense : public Defense {
 public:
  explicit DummyTensorDefense(DummyTensorConfig cfg)
      : transform_(cfg) {}
  DummyTensorDefense(Strength strength, std::uint64_t seed);

  std::string name() const override { return "dummy_tensor"; }
  std::string description() const override;
  const DefenseTransform* trace_transform() const override {
    return &transform_;
  }

  const DummyTensorConfig& config() const { return transform_.config(); }

 private:
  DummyTensorTransform transform_;
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_DUMMY_TENSOR_H_
