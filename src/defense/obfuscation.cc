#include "defense/obfuscation.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "support/check.h"
#include "support/rng.h"
#include "trace/stats.h"

namespace sc::defense {

ObfuscationResult ObfuscateTrace(const trace::Trace& input,
                                 const ObfuscationConfig& cfg) {
  SC_CHECK(cfg.block_bytes >= 64);
  SC_CHECK(cfg.dummy_per_access >= 0.0);
  ObfuscationResult out;
  if (input.empty()) return out;

  // Footprint: the address space the controller manages.
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const trace::MemEvent& e : input) {
    lo = std::min(lo, e.addr);
    hi = std::max(hi, e.end());
  }
  const std::uint64_t first_block = lo / cfg.block_bytes;
  const std::uint64_t num_blocks =
      (hi + cfg.block_bytes - 1) / cfg.block_bytes - first_block;

  // Random block permutation.
  sc::Rng rng(cfg.seed);
  std::vector<std::uint64_t> perm(num_blocks);
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  if (cfg.permute_blocks)
    std::shuffle(perm.begin(), perm.end(), rng.engine());

  auto remap = [&](std::uint64_t block) {
    return (first_block + perm[block - first_block]) * cfg.block_bytes;
  };

  double dummy_budget = 0.0;
  for (const trace::MemEvent& e : input) {
    // Split the burst into block-granular accesses (the controller always
    // moves whole blocks).
    const std::uint64_t b0 = e.addr / cfg.block_bytes;
    const std::uint64_t b1 = (e.end() - 1) / cfg.block_bytes;
    for (std::uint64_t b = b0; b <= b1; ++b) {
      out.trace.Append(e.cycle, remap(b),
                       static_cast<std::uint32_t>(cfg.block_bytes), e.op);
      // Interleave dummy block accesses.
      dummy_budget += cfg.dummy_per_access;
      while (dummy_budget >= 1.0) {
        dummy_budget -= 1.0;
        const auto blk = static_cast<std::uint64_t>(
            rng.UniformInt(0, static_cast<int>(
                                  std::min<std::uint64_t>(num_blocks, INT32_MAX)
                                  - 1)));
        out.trace.Append(e.cycle, (first_block + blk) * cfg.block_bytes,
                         static_cast<std::uint32_t>(cfg.block_bytes),
                         rng.Chance(cfg.dummy_write_fraction)
                             ? trace::MemOp::kWrite
                             : trace::MemOp::kRead);
      }
    }
  }

  const trace::TraceStats before = trace::ComputeStats(input);
  const trace::TraceStats after = trace::ComputeStats(out.trace);
  out.traffic_overhead = static_cast<double>(after.total_bytes()) /
                         static_cast<double>(before.total_bytes());
  out.event_overhead = static_cast<double>(after.total_events()) /
                       static_cast<double>(before.total_events());
  return out;
}

trace::Trace ObfuscationTransform::ApplyNth(const trace::Trace& in,
                                            std::uint64_t k) const {
  // Acquisition k: same statistics, independent permutation + dummy stream.
  ObfuscationConfig nth = cfg_;
  nth.seed = MixSeed(cfg_.seed, k);
  return ObfuscateTrace(in, nth).trace;
}

ObfuscationDefense::ObfuscationDefense(Strength strength, std::uint64_t seed)
    : ObfuscationDefense([&] {
        ObfuscationConfig cfg;
        cfg.seed = seed;
        cfg.permute_blocks = true;
        switch (strength) {
          case Strength::kLow:
            cfg.dummy_per_access = 1.0;
            break;
          case Strength::kMedium:
            cfg.dummy_per_access = 2.0;
            break;
          case Strength::kHigh:
            cfg.dummy_per_access = 4.0;
            break;
        }
        return cfg;
      }()) {}

std::string ObfuscationDefense::description() const {
  std::ostringstream os;
  os << "block permutation (" << cfg_.block_bytes << " B blocks), "
     << cfg_.dummy_per_access << " dummies/access";
  return os.str();
}

}  // namespace sc::defense
