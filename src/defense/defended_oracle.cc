#include "defense/defended_oracle.h"

#include "support/check.h"

namespace sc::defense {

DefendedOracle::DefendedOracle(attack::ZeroCountOracle& inner,
                               const OracleTransform& transform)
    : inner_(inner), transform_(transform) {
  SC_CHECK_MSG(inner_.channel_elems() > 0,
               "defended oracle needs the inner oracle's unit size");
}

DefendedOracle::DefendedOracle(
    std::unique_ptr<attack::ZeroCountOracle> owned,
    const OracleTransform& transform)
    : owned_(std::move(owned)), inner_(*owned_), transform_(transform) {}

std::size_t DefendedOracle::ChannelNonZeros(
    const std::vector<attack::SparsePixel>& pixels, int channel) {
  ++queries_;
  return transform_.Apply(inner_.ChannelNonZeros(pixels, channel),
                          inner_.channel_elems());
}

std::size_t DefendedOracle::TotalNonZeros(
    const std::vector<attack::SparsePixel>& pixels) {
  // The aggregate view is the concatenation of the per-channel bursts, so
  // the defense applies per unit, num_channels times.
  ++queries_;
  const std::size_t elems = inner_.channel_elems();
  const std::size_t total = inner_.TotalNonZeros(pixels);
  const auto channels = static_cast<std::size_t>(inner_.num_channels());
  // Padding-style transforms are per-unit maps; model the aggregate as the
  // transform of the mean count scaled back up, which is exact for the
  // constant transforms shipped here (PadToWorstCase, quantization of a
  // uniform count) and monotone in general.
  if (channels == 0) return transform_.Apply(total, elems);
  const std::size_t per_unit = total / channels;
  const std::size_t rem = total % channels;
  return transform_.Apply(per_unit + 1, elems) * rem +
         transform_.Apply(per_unit, elems) * (channels - rem);
}

int DefendedOracle::num_channels() const { return inner_.num_channels(); }

std::size_t DefendedOracle::channel_elems() const {
  return inner_.channel_elems();
}

bool DefendedOracle::SetActivationThreshold(float threshold) {
  return inner_.SetActivationThreshold(threshold);
}

std::unique_ptr<attack::ZeroCountOracle> DefendedOracle::Clone() const {
  std::unique_ptr<attack::ZeroCountOracle> inner = inner_.Clone();
  if (inner == nullptr) return nullptr;
  return std::unique_ptr<attack::ZeroCountOracle>(
      new DefendedOracle(std::move(inner), transform_));
}

std::unique_ptr<attack::ZeroCountOracle> DefendedOracle::Fork(
    std::uint64_t stream) const {
  std::unique_ptr<attack::ZeroCountOracle> inner = inner_.Fork(stream);
  if (inner == nullptr) return nullptr;
  return std::unique_ptr<attack::ZeroCountOracle>(
      new DefendedOracle(std::move(inner), transform_));
}

}  // namespace sc::defense
