// Mitigations against memory-access-pattern leakage (paper §5 and §6).
//
// The paper points to ORAM as the principled countermeasure and notes its
// cost. This module provides a bus-level approximation of what an ORAM-ish
// controller presents to a probe — block-granular address permutation plus
// dummy traffic — and measures its overhead, so the ablation bench can show
// (a) the structure attack collapsing under obfuscation and (b) the
// bandwidth price paid. It is an obfuscation model, not a real ORAM: it
// hides *which* tensor is touched, not the total traffic volume.
#ifndef SC_DEFENSE_OBFUSCATION_H_
#define SC_DEFENSE_OBFUSCATION_H_

#include <cstdint>
#include <string>

#include "defense/defense.h"
#include "trace/trace.h"

namespace sc::defense {

struct ObfuscationConfig {
  // Granularity of the permuted blocks (ORAM bucket size).
  std::uint64_t block_bytes = 4096;
  // Random permutation of block addresses across the footprint.
  bool permute_blocks = true;
  // Dummy accesses injected per real access (ORAM-style redundancy).
  double dummy_per_access = 2.0;
  // Dummies are reads/writes with this write probability.
  double dummy_write_fraction = 0.3;
  std::uint64_t seed = 1;
};

struct ObfuscationResult {
  trace::Trace trace;
  double traffic_overhead = 1.0;  // obfuscated bytes / original bytes
  double event_overhead = 1.0;
};

// Transforms a victim trace into what the probe would observe behind the
// obfuscating controller. Burst events are split into blocks, block
// addresses are permuted over the footprint, and dummy block accesses are
// interleaved.
ObfuscationResult ObfuscateTrace(const trace::Trace& input,
                                 const ObfuscationConfig& cfg);

// DefenseTransform adapter so the obfuscating controller can sit directly
// in AcceleratorConfig::defense_hook: the victim's arithmetic and outputs
// are untouched (the hook only rewrites the adversary's captured trace),
// while the probe sees the obfuscated bus. Deployment model of §5: the
// controller lives between the accelerator and the probe, not inside the
// datapath.
//
// ApplyNth models a controller that redraws its permutation and dummy
// placement every inference: acquisition k runs the same statistics from
// the independent stream MixSeed(cfg.seed, k), so K-acquisition consensus
// attacks cannot vote the dummies away as a fixed pattern. Apply() (the
// k-independent view) is unchanged from the original single-seed behavior.
class ObfuscationTransform : public DefenseTransform {
 public:
  explicit ObfuscationTransform(ObfuscationConfig cfg) : cfg_(cfg) {}

  trace::Trace Apply(const trace::Trace& in) const override {
    return ObfuscateTrace(in, cfg_).trace;
  }

  trace::Trace ApplyNth(const trace::Trace& in,
                        std::uint64_t k) const override;

 private:
  ObfuscationConfig cfg_;
};

// ObfuscateTrace on the Defense interface. Strength scales the dummy rate
// (1x / 2x / 4x dummies per real access); the block permutation is always
// on — it is the part the paper's ORAM pointer actually requires.
class ObfuscationDefense : public Defense {
 public:
  explicit ObfuscationDefense(ObfuscationConfig cfg)
      : cfg_(cfg), transform_(cfg) {}
  ObfuscationDefense(Strength strength, std::uint64_t seed);

  std::string name() const override { return "obfuscation"; }
  std::string description() const override;
  const DefenseTransform* trace_transform() const override {
    return &transform_;
  }

  const ObfuscationConfig& config() const { return cfg_; }

 private:
  ObfuscationConfig cfg_;
  ObfuscationTransform transform_;
};

}  // namespace sc::defense

#endif  // SC_DEFENSE_OBFUSCATION_H_
