#include "defense/eval.h"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

#include "accel/accelerator.h"
#include "attack/structure/report.h"
#include "attack/structure/robust.h"
#include "attack/weights/attack.h"
#include "attack/weights/score.h"
#include "defense/defended_oracle.h"
#include "models/zoo.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/rng.h"

namespace sc::defense {

namespace {

std::string Sanitize(std::string s) {
  std::replace(s.begin(), s.end(), ',', ';');
  return s;
}

// One structure-attack victim with everything the evaluator knows about it.
struct VictimSpec {
  std::string name;
  nn::Network net;
  attack::AnalysisConfig analysis;
  attack::SearchConfig search;  // timing-filtered standard configuration
  std::vector<attack::LayerFingerprint> truth;
};

VictimSpec MakeVictim(const std::string& name, nn::Network net, int in_w,
                      int in_d, long long classes,
                      std::vector<attack::LayerFingerprint> truth,
                      std::size_t max_structures) {
  VictimSpec v{name, std::move(net), {}, {}, std::move(truth)};
  v.analysis.known_input_elems =
      static_cast<long long>(in_w) * in_w * in_d;
  v.search.known_input_width = in_w;
  v.search.known_input_depth = in_d;
  v.search.known_output_classes = classes;
  // Accelerator datasheet values (public microarchitecture), including the
  // deployed backend's tiling schedule so the byte term of the timing
  // filter is predicted per candidate rather than assumed weight-
  // stationary.
  v.search.macs_per_cycle = accel::AcceleratorConfig{}.macs_per_cycle;
  v.search.bytes_per_cycle = accel::AcceleratorConfig{}.bytes_per_cycle;
  v.search.schedule = accel::Accelerator{accel::AcceleratorConfig{}}
                          .schedule_model();
  v.search.max_structures = max_structures;
  return v;
}

nn::Tensor RandomInput(const nn::Shape& s, std::uint64_t seed) {
  nn::Tensor t(s);
  Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.GaussianF(1.0f);
  return t;
}

trace::Trace CaptureTrace(const nn::Network& net, const nn::Tensor& input,
                          const Defense* defense, bool zero_pruning) {
  accel::AcceleratorConfig cfg;
  cfg.zero_pruning = zero_pruning;
  cfg.collect_metrics = false;  // probe runs would drown the accel.* scope
  if (defense != nullptr) {
    defense->ConfigureAccelerator(cfg);
    cfg.defense_hook = defense->trace_transform();
  }
  accel::Accelerator accel{cfg};
  trace::Trace tr;
  accel.Run(net, input, &tr);
  return tr;
}

void FillOverheads(const trace::Trace& base, const trace::Trace& defended,
                   EvalCell& cell) {
  const auto bytes = [](const trace::Trace& t) {
    return t.bytes_read() + t.bytes_written();
  };
  if (base.empty()) return;
  cell.traffic_overhead =
      static_cast<double>(bytes(defended)) / static_cast<double>(bytes(base));
  cell.event_overhead = static_cast<double>(defended.size()) /
                        static_cast<double>(base.size());
  cell.latency_overhead =
      base.last_cycle() > 0
          ? static_cast<double>(defended.last_cycle()) /
                static_cast<double>(base.last_cycle())
          : 1.0;
}

bool IsExplosion(const sc::Error& err) {
  return std::strstr(err.what(), "structure explosion") != nullptr;
}

// The adaptive attacker: standard timing-filtered search, then timing off,
// then timing off with growing size slack. Fills the structure fields of
// `cell` from the first stage that yields candidates.
void RunAdaptiveStructureAttack(const std::vector<trace::Trace>& acquisitions,
                                const VictimSpec& victim,
                                const EvalConfig& cfg, EvalCell& cell) {
  struct Stage {
    bool timing = false;
    long long slack = 0;
  };
  std::vector<Stage> stages{{true, 0}, {false, 0}};
  for (long long s : cfg.adaptive_slack) stages.push_back({false, s});

  for (const Stage& stage : stages) {
    attack::RobustStructureConfig rcfg;
    rcfg.attack.analysis = victim.analysis;
    rcfg.attack.search = victim.search;
    if (!stage.timing) {
      rcfg.attack.search.timing_tolerance = 0.0;
      rcfg.attack.search.macs_per_cycle = 0;
      rcfg.attack.search.bytes_per_cycle = 0;
    }
    rcfg.attack.analysis.input_elems_slack = stage.slack;
    rcfg.slack_ladder = {stage.slack};
    try {
      const attack::RobustStructureResult res =
          attack::RunRobustStructureAttack(acquisitions, rcfg);
      if (res.num_structures() == 0) {
        cell.outcome = "no_structures";
        continue;
      }
      cell.outcome = "ok";
      cell.candidates = res.num_structures();
      cell.timing_filter_ok = stage.timing;
      cell.slack_used = stage.slack;
      const attack::TruthRanking ranking =
          attack::RankTruth(res.search, victim.truth);
      cell.truth_rank = ranking.rank;
      cell.truth_unique_top = ranking.unique_top;
      return;
    } catch (const sc::Error& err) {
      if (IsExplosion(err)) {
        // Too many candidates to enumerate: that IS the defense's win.
        cell.outcome = "overflow";
        cell.candidates = cfg.max_structures;
        return;
      }
      cell.outcome = "rejected";
    }
  }
}

// Secrets of the weight-attack victim: a first-conv-like stage with
// all-negative biases (counts leak at the natural threshold 0, no knob
// needed) and one exact-zero weight per even filter so zero detection is
// exercised.
struct WeightVictim {
  attack::SparseConvOracle::StageSpec spec;
  nn::Tensor weights;
  nn::Tensor bias;
};

WeightVictim MakeWeightVictim(std::uint64_t seed) {
  WeightVictim v;
  v.spec.in_depth = 1;
  v.spec.in_width = 10;
  v.spec.filter = 3;
  const int oc = 4;
  v.weights = nn::Tensor(nn::Shape{oc, 1, 3, 3});
  v.bias = nn::Tensor(nn::Shape{oc});
  Rng rng(seed);
  for (std::size_t i = 0; i < v.weights.numel(); ++i) {
    float w = rng.GaussianF(0.5f);
    if (std::abs(w) < 0.05f) w = w < 0 ? -0.05f : 0.05f;
    v.weights[i] = w;
  }
  for (int k = 0; k < oc; ++k) {
    v.bias.at(k) = -rng.UniformF(0.1f, 0.5f);
    if (k % 2 == 0) v.weights.at(k, 0, 1, 1) = 0.0f;
  }
  return v;
}

void RunWeightCell(const WeightVictim& victim, const Defense& defense,
                   EvalCell& cell) {
  attack::SparseConvOracle base(victim.spec, victim.weights, victim.bias);
  std::vector<attack::RecoveredFilter> filters;
  if (const OracleTransform* ot = defense.oracle_transform()) {
    DefendedOracle defended(base, *ot);
    filters = attack::RecoverAllFilters(defended, victim.spec,
                                        attack::WeightAttackConfig{});
  } else {
    filters = attack::RecoverAllFilters(base, victim.spec,
                                        attack::WeightAttackConfig{});
  }
  const attack::WeightScore score = attack::ScoreRecoveredFilters(
      filters, victim.weights, victim.bias);
  cell.outcome = "ok";
  cell.filters_recovered = score.filters_recovered;
  cell.filters_total = score.filters_total;
  cell.fraction_recovered = score.fraction_recovered();
  cell.max_ratio_error = score.max_ratio_error;
}

// Bus cost of the defense on the weight-attack victim: one accelerator
// probe run (zero pruning on — the channel under attack) defended vs not.
void WeightCellOverheads(const WeightVictim& victim, const Defense& defense,
                         std::uint64_t input_seed, EvalCell& cell) {
  models::ConvStageVictimSpec spec;
  spec.in_depth = victim.spec.in_depth;
  spec.in_width = victim.spec.in_width;
  spec.out_depth = victim.bias.shape()[0];
  spec.filter = victim.spec.filter;
  const nn::Network net =
      models::MakeConvStageVictim(spec, victim.weights, victim.bias);
  const nn::Tensor input = RandomInput(net.input_shape(), input_seed);
  const trace::Trace base =
      CaptureTrace(net, input, nullptr, /*zero_pruning=*/true);
  const trace::Trace defended =
      CaptureTrace(net, input, &defense, /*zero_pruning=*/true);
  FillOverheads(base, defended, cell);
}

bool HasStrengthAxis(DefenseKind kind) {
  return kind != DefenseKind::kNone && kind != DefenseKind::kRlePadding;
}

}  // namespace

EvalMatrix RunDefenseMatrix(const EvalConfig& cfg) {
  static obs::Counter& cells_run =
      obs::Registry::Get().GetCounter("defense.eval.cells");
  static obs::Counter& attacks_run =
      obs::Registry::Get().GetCounter("defense.eval.attacks");

  std::vector<VictimSpec> victims;
  if (cfg.lenet)
    victims.push_back(MakeVictim(
        "lenet", models::MakeLeNet(1), 28, 1, 10,
        {{5, 20}, {5, 50}, {4, 500}, {1, 10}}, cfg.max_structures));
  if (cfg.convnet)
    victims.push_back(MakeVictim(
        "convnet", models::MakeConvNet(1), 32, 3, 10,
        {{5, 32}, {5, 32}, {3, 64}, {4, 10}}, cfg.max_structures));
  if (cfg.alexnet)
    victims.push_back(MakeVictim(
        "alexnet", models::MakeAlexNet(1), 227, 3, 1000,
        {{11, 96}, {5, 256}, {3, 384}, {3, 384}, {3, 256}, {6, 4096},
         {1, 4096}, {1, 1000}},
        cfg.max_structures));

  // Undefended traces, captured once per victim.
  std::vector<trace::Trace> base_traces;
  std::vector<nn::Tensor> inputs;
  for (const VictimSpec& v : victims) {
    inputs.push_back(RandomInput(v.net.input_shape(), cfg.input_seed));
    base_traces.push_back(CaptureTrace(v.net, inputs.back(), nullptr,
                                       /*zero_pruning=*/false));
  }
  const WeightVictim weight_victim = MakeWeightVictim(cfg.secret_seed);

  EvalMatrix matrix;
  for (DefenseKind kind : cfg.kinds) {
    std::vector<Strength> strengths =
        HasStrengthAxis(kind) ? cfg.strengths
                              : std::vector<Strength>{Strength::kMedium};
    for (Strength strength : strengths) {
      const std::unique_ptr<Defense> defense =
          MakeDefense(kind, strength, cfg.defense_seed);
      const std::string strength_label =
          HasStrengthAxis(kind) ? ToString(strength) : "-";

      auto new_cell = [&](const std::string& victim,
                          const std::string& attack) {
        EvalCell cell;
        cell.victim = victim;
        cell.attack = attack;
        cell.kind = kind;
        cell.strength = strength_label;
        cell.defense_desc = Sanitize(defense->description());
        cells_run.Add();
        return cell;
      };

      for (std::size_t vi = 0; vi < victims.size(); ++vi) {
        const VictimSpec& victim = victims[vi];
        // Single-acquisition attack through the accelerator's defense
        // hook: the deployment path.
        const trace::Trace defended = CaptureTrace(
            victim.net, inputs[vi], defense.get(), /*zero_pruning=*/false);

        EvalCell plain = new_cell(victim.name, "structure");
        FillOverheads(base_traces[vi], defended, plain);
        RunAdaptiveStructureAttack({defended}, victim, cfg, plain);
        attacks_run.Add();
        matrix.cells.push_back(plain);

        // Consensus attack over K re-randomized acquisitions.
        std::vector<trace::Trace> acquisitions;
        const DefenseTransform* transform = defense->trace_transform();
        for (int k = 0; k < cfg.robust_acquisitions; ++k)
          acquisitions.push_back(
              transform != nullptr
                  ? transform->ApplyNth(base_traces[vi],
                                        static_cast<std::uint64_t>(k))
                  : base_traces[vi]);
        EvalCell robust = new_cell(victim.name, "structure_robust");
        FillOverheads(base_traces[vi], acquisitions.front(), robust);
        RunAdaptiveStructureAttack(acquisitions, victim, cfg, robust);
        attacks_run.Add();
        matrix.cells.push_back(robust);
      }

      EvalCell weight = new_cell("conv_stage", "weight");
      WeightCellOverheads(weight_victim, *defense, cfg.input_seed, weight);
      RunWeightCell(weight_victim, *defense, weight);
      attacks_run.Add();
      matrix.cells.push_back(weight);
    }
  }
  return matrix;
}

void WriteMatrixCsv(std::ostream& os, const EvalMatrix& m) {
  os << "victim,attack,defense,strength,outcome,candidates,truth_rank,"
        "truth_unique_top,timing_filter_ok,slack_used,filters_recovered,"
        "filters_total,fraction_recovered,max_ratio_error,"
        "traffic_overhead,event_overhead,latency_overhead,defense_desc\n";
  for (const EvalCell& c : m.cells) {
    os << c.victim << ',' << c.attack << ',' << ToString(c.kind) << ','
       << c.strength << ',' << c.outcome << ',' << c.candidates << ','
       << c.truth_rank << ',' << (c.truth_unique_top ? 1 : 0) << ','
       << (c.timing_filter_ok ? 1 : 0) << ',' << c.slack_used << ','
       << c.filters_recovered << ',' << c.filters_total << ','
       << c.fraction_recovered << ',' << c.max_ratio_error << ','
       << c.traffic_overhead << ',' << c.event_overhead << ','
       << c.latency_overhead << ',' << c.defense_desc << '\n';
  }
}

void WriteScorecardJson(std::ostream& os, const EvalMatrix& m) {
  os << "{\n  \"defense_matrix\": [\n";
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const EvalCell& c = m.cells[i];
    os << "    {\"victim\": \"" << c.victim << "\", \"attack\": \""
       << c.attack << "\", \"defense\": \"" << ToString(c.kind)
       << "\", \"strength\": \"" << c.strength << "\", \"outcome\": \""
       << c.outcome << "\", \"candidates\": " << c.candidates
       << ", \"truth_rank\": " << c.truth_rank << ", \"truth_unique_top\": "
       << (c.truth_unique_top ? "true" : "false")
       << ", \"timing_filter_ok\": "
       << (c.timing_filter_ok ? "true" : "false")
       << ", \"slack_used\": " << c.slack_used
       << ", \"filters_recovered\": " << c.filters_recovered
       << ", \"filters_total\": " << c.filters_total
       << ", \"fraction_recovered\": " << c.fraction_recovered
       << ", \"max_ratio_error\": " << c.max_ratio_error
       << ", \"traffic_overhead\": " << c.traffic_overhead
       << ", \"event_overhead\": " << c.event_overhead
       << ", \"latency_overhead\": " << c.latency_overhead
       << ", \"defense_desc\": \"" << c.defense_desc << "\"}"
       << (i + 1 < m.cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace sc::defense
