#include "trace/trace.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace sc::trace {

const char* ToString(MemOp op) {
  return op == MemOp::kRead ? "R" : "W";
}

std::ostream& operator<<(std::ostream& os, MemOp op) {
  return os << ToString(op);
}

std::ostream& operator<<(std::ostream& os, const MemEvent& e) {
  return os << "{cycle=" << e.cycle << " addr=0x" << std::hex << e.addr
            << std::dec << " bytes=" << e.bytes << " op=" << e.op << "}";
}

void Trace::AppendAll(const Trace& other) {
  const TraceBuffer& src = other.buf_;
  for (std::size_t ci = 0; ci < src.num_chunks(); ++ci) {
    const TraceBuffer::ChunkView v = src.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      buf_.Append(v.cycles[i], v.addrs[i], v.bytes[i],
                  static_cast<MemOp>(v.ops[i]));
    }
  }
}

void Trace::WriteCsv(std::ostream& os) const {
  os << "cycle,addr,bytes,op\n";
  for (std::size_t ci = 0; ci < buf_.num_chunks(); ++ci) {
    const TraceBuffer::ChunkView v = buf_.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      os << v.cycles[i] << ',' << v.addrs[i] << ',' << v.bytes[i] << ','
         << ToString(static_cast<MemOp>(v.ops[i])) << '\n';
    }
  }
}

Trace Trace::ReadCsv(std::istream& is) {
  Trace t;
  std::string line;
  SC_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty CSV stream");
  SC_CHECK_MSG(line == "cycle,addr,bytes,op",
               "bad CSV header: '" << line << "'");
  // Hostile-input bounds (DESIGN.md §12): every field of a legitimate row
  // is a short unsigned decimal plus a one-letter op, so the longest row
  // WriteCsv can emit is ~70 bytes. Anything bigger is rejected before any
  // parsing, and '-' is rejected outright — istream extraction into an
  // unsigned field would otherwise accept "-1" as 2^64 - 1.
  constexpr std::size_t kMaxRowChars = 256;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    SC_CHECK_MSG(line.size() <= kMaxRowChars,
                 "oversized CSV row " << lineno << " (" << line.size()
                                      << " chars)");
    SC_CHECK_MSG(line.find('-') == std::string::npos,
                 "negative field on row " << lineno << ": '" << line << "'");
    std::istringstream row(line);
    MemEvent e;
    char c1 = 0, c2 = 0, c3 = 0;
    std::uint64_t bytes64 = 0;
    std::string op;
    SC_CHECK_MSG(
        static_cast<bool>(row >> e.cycle >> c1 >> e.addr >> c2 >> bytes64 >>
                          c3 >> op) &&
            c1 == ',' && c2 == ',' && c3 == ',',
        "malformed CSV row " << lineno << ": '" << line << "'");
    SC_CHECK_MSG(bytes64 > 0,
                 "zero-byte burst on row " << lineno << ": '" << line << "'");
    SC_CHECK_MSG(bytes64 <= UINT32_MAX, "bad burst size on row " << lineno);
    SC_CHECK_MSG(e.addr <= UINT64_MAX - bytes64,
                 "address overflow on row " << lineno << ": addr " << e.addr
                                            << " + " << bytes64 << " bytes");
    e.bytes = static_cast<std::uint32_t>(bytes64);
    if (op == "R") {
      e.op = MemOp::kRead;
    } else if (op == "W") {
      e.op = MemOp::kWrite;
    } else {
      SC_CHECK_MSG(false, "bad op '" << op << "' on row " << lineno);
    }
    std::string rest;
    SC_CHECK_MSG(!static_cast<bool>(row >> rest),
                 "trailing data '" << rest << "' on row " << lineno);
    SC_CHECK_MSG(t.empty() || t.last_cycle() <= e.cycle,
                 "non-monotone cycle on row " << lineno << ": " << e.cycle
                                              << " after " << t.last_cycle());
    t.Append(e);
  }
  return t;
}

void Trace::SaveCsvFile(const std::string& path) const {
  std::ofstream f(path);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for writing");
  WriteCsv(f);
}

Trace Trace::LoadCsvFile(const std::string& path) {
  std::ifstream f(path);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for reading");
  return ReadCsv(f);
}

}  // namespace sc::trace
