#include "trace/trace.h"

#include <fstream>
#include <ostream>
#include <string_view>
#include <vector>

#include "support/check.h"

namespace sc::trace {

const char* ToString(MemOp op) {
  return op == MemOp::kRead ? "R" : "W";
}

std::ostream& operator<<(std::ostream& os, MemOp op) {
  return os << ToString(op);
}

std::ostream& operator<<(std::ostream& os, const MemEvent& e) {
  return os << "{cycle=" << e.cycle << " addr=0x" << std::hex << e.addr
            << std::dec << " bytes=" << e.bytes << " op=" << e.op << "}";
}

void Trace::AppendAll(const Trace& other) {
  const TraceBuffer& src = other.buf_;
  for (std::size_t ci = 0; ci < src.num_chunks(); ++ci) {
    const TraceBuffer::ChunkView v = src.chunk(ci);
    buf_.AppendColumns(v.cycles, v.addrs, v.bytes, v.ops, v.count);
  }
}

void Trace::WriteCsv(std::ostream& os) const {
  os << "cycle,addr,bytes,op\n";
  for (std::size_t ci = 0; ci < buf_.num_chunks(); ++ci) {
    const TraceBuffer::ChunkView v = buf_.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      os << v.cycles[i] << ',' << v.addrs[i] << ',' << v.bytes[i] << ','
         << ToString(static_cast<MemOp>(v.ops[i])) << '\n';
    }
  }
}

namespace {

// Whitespace set of classic-locale istream extraction: rows written on
// Windows keep their '\r' under getline and must still parse.
inline bool IsCsvSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}

}  // namespace

Trace Trace::ReadCsv(std::istream& is) {
  Trace t;
  std::string line;
  SC_CHECK_MSG(static_cast<bool>(std::getline(is, line)), "empty CSV stream");
  SC_CHECK_MSG(line == "cycle,addr,bytes,op",
               "bad CSV header: '" << line << "'");
  // Hostile-input bounds (DESIGN.md §12): every field of a legitimate row
  // is a short unsigned decimal plus a one-letter op, so the longest row
  // WriteCsv can emit is ~70 bytes. Anything bigger is rejected before any
  // parsing, and '-' is rejected outright — unsigned parsing would
  // otherwise have to reject "-1" field by field.
  constexpr std::size_t kMaxRowChars = 256;
  // Rows are parsed into staging columns and landed in the buffer one
  // AppendColumns batch at a time: the per-row istringstream and per-event
  // Append of the original loader were ~30x slower than the binary store.
  constexpr std::size_t kBatch = 4096;
  std::vector<std::uint64_t> cycles, addrs;
  std::vector<std::uint32_t> bursts;
  std::vector<std::uint8_t> ops;
  cycles.reserve(kBatch);
  addrs.reserve(kBatch);
  bursts.reserve(kBatch);
  ops.reserve(kBatch);
  const auto flush = [&] {
    t.AppendColumns(cycles.data(), addrs.data(), bursts.data(), ops.data(),
                    cycles.size());
    cycles.clear();
    addrs.clear();
    bursts.clear();
    ops.clear();
  };
  bool have_prev = false;
  std::uint64_t prev_cycle = 0;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    SC_CHECK_MSG(line.size() <= kMaxRowChars,
                 "oversized CSV row " << lineno << " (" << line.size()
                                      << " chars)");
    SC_CHECK_MSG(line.find('-') == std::string::npos,
                 "negative field on row " << lineno << ": '" << line << "'");
    const char* p = line.data();
    const char* const end = p + line.size();
    const auto skip_space = [&] {
      while (p < end && IsCsvSpace(*p)) ++p;
    };
    // Mirrors istream unsigned extraction: optional leading whitespace and
    // '+', at least one digit, all digits consumed, failure on overflow.
    const auto parse_u64 = [&](std::uint64_t* out) {
      skip_space();
      if (p < end && *p == '+') ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      std::uint64_t v = 0;
      bool overflow = false;
      while (p < end && *p >= '0' && *p <= '9') {
        const auto d = static_cast<std::uint64_t>(*p - '0');
        if (v > (UINT64_MAX - d) / 10)
          overflow = true;
        else
          v = v * 10 + d;
        ++p;
      }
      *out = v;
      return !overflow;
    };
    const auto parse_comma = [&] {
      skip_space();
      if (p >= end || *p != ',') return false;
      ++p;
      return true;
    };
    std::uint64_t cycle = 0, addr = 0, bytes64 = 0;
    const bool fields_ok = parse_u64(&cycle) && parse_comma() &&
                           parse_u64(&addr) && parse_comma() &&
                           parse_u64(&bytes64) && parse_comma();
    skip_space();
    const char* const op_begin = p;
    while (p < end && !IsCsvSpace(*p)) ++p;
    const std::string_view op(op_begin, static_cast<std::size_t>(p - op_begin));
    SC_CHECK_MSG(fields_ok && !op.empty(),
                 "malformed CSV row " << lineno << ": '" << line << "'");
    SC_CHECK_MSG(bytes64 > 0,
                 "zero-byte burst on row " << lineno << ": '" << line << "'");
    SC_CHECK_MSG(bytes64 <= UINT32_MAX, "bad burst size on row " << lineno);
    SC_CHECK_MSG(addr <= UINT64_MAX - bytes64,
                 "address overflow on row " << lineno << ": addr " << addr
                                            << " + " << bytes64 << " bytes");
    MemOp memop = MemOp::kRead;
    if (op == "R") {
      memop = MemOp::kRead;
    } else if (op == "W") {
      memop = MemOp::kWrite;
    } else {
      SC_CHECK_MSG(false, "bad op '" << op << "' on row " << lineno);
    }
    skip_space();
    if (p < end) {
      const char* const rest_begin = p;
      while (p < end && !IsCsvSpace(*p)) ++p;
      const std::string_view rest(rest_begin,
                                  static_cast<std::size_t>(p - rest_begin));
      SC_CHECK_MSG(false, "trailing data '" << rest << "' on row " << lineno);
    }
    SC_CHECK_MSG(!have_prev || prev_cycle <= cycle,
                 "non-monotone cycle on row " << lineno << ": " << cycle
                                              << " after " << prev_cycle);
    have_prev = true;
    prev_cycle = cycle;
    cycles.push_back(cycle);
    addrs.push_back(addr);
    bursts.push_back(static_cast<std::uint32_t>(bytes64));
    ops.push_back(static_cast<std::uint8_t>(memop));
    if (cycles.size() == kBatch) flush();
  }
  flush();
  return t;
}

void Trace::SaveCsvFile(const std::string& path) const {
  std::ofstream f(path);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for writing");
  WriteCsv(f);
}

Trace Trace::LoadCsvFile(const std::string& path) {
  std::ifstream f(path);
  SC_CHECK_MSG(f.is_open(), "cannot open " << path << " for reading");
  return ReadCsv(f);
}

}  // namespace sc::trace
