// Container for an observed memory-access trace.
//
// A Trace is an append-only, cycle-ordered sequence of MemEvents captured
// from the accelerator's memory bus. It is the sole input to the structure
// reverse-engineering attack (paper §3) and is also what defenses transform.
#ifndef SC_TRACE_TRACE_H_
#define SC_TRACE_TRACE_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/mem_event.h"

namespace sc::trace {

class Trace {
 public:
  Trace() = default;

  // Appends an event. Cycles must be non-decreasing (a bus observes
  // transactions in time order) and bursts must be non-empty.
  void Append(const MemEvent& e);
  void Append(std::uint64_t cycle, std::uint64_t addr, std::uint32_t bytes,
              MemOp op);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const MemEvent& operator[](std::size_t i) const { return events_[i]; }

  auto begin() const { return events_.begin(); }
  auto end() const { return events_.end(); }
  const std::vector<MemEvent>& events() const { return events_; }

  // Cycle of the last event (0 for an empty trace).
  std::uint64_t last_cycle() const;

  // Total bytes transferred, split by direction.
  std::uint64_t bytes_read() const;
  std::uint64_t bytes_written() const;

  // CSV serialization: header "cycle,addr,bytes,op" then one row per event
  // with op in {R, W}. ReadCsv validates ordering and burst sizes and throws
  // sc::Error on malformed input.
  void WriteCsv(std::ostream& os) const;
  static Trace ReadCsv(std::istream& is);

  void SaveCsvFile(const std::string& path) const;
  static Trace LoadCsvFile(const std::string& path);

 private:
  std::vector<MemEvent> events_;
};

// A trace-to-trace transform standing between the bus and the adversary:
// defenses reshape traffic, fault models (sim/noise.h) corrupt the
// measurement. Implementations must return a valid Trace (non-decreasing
// cycles, non-empty bursts) but are otherwise unconstrained.
class TraceTransform {
 public:
  virtual ~TraceTransform() = default;
  virtual Trace Apply(const Trace& in) const = 0;
};

}  // namespace sc::trace

#endif  // SC_TRACE_TRACE_H_
