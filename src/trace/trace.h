// Container for an observed memory-access trace.
//
// A Trace is an append-only, cycle-ordered sequence of MemEvents captured
// from the accelerator's memory bus. It is the sole input to the structure
// reverse-engineering attack (paper §3) and is also what defenses transform.
//
// Storage is columnar (see trace/trace_buffer.h); this class is a thin
// facade that keeps the event-oriented API (indexing, range-for, CSV) while
// analysis passes that want column streaming use buffer() directly.
#ifndef SC_TRACE_TRACE_H_
#define SC_TRACE_TRACE_H_

#include <cstddef>
#include <iosfwd>
#include <iterator>
#include <string>
#include <utility>

#include "trace/mem_event.h"
#include "trace/trace_buffer.h"

namespace sc::trace {

class Trace {
 public:
  // Random-access iterator materializing MemEvents from the columns.
  // Dereference returns by value; `const MemEvent& e : trace` still works
  // (the reference binds to the returned temporary for each iteration).
  class const_iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = MemEvent;
    using difference_type = std::ptrdiff_t;
    using pointer = void;
    using reference = MemEvent;

    const_iterator() = default;
    const_iterator(const TraceBuffer* buf, std::size_t i) : buf_(buf), i_(i) {}

    MemEvent operator*() const { return buf_->Get(i_); }
    MemEvent operator[](difference_type n) const {
      return buf_->Get(i_ + static_cast<std::size_t>(n));
    }

    const_iterator& operator++() { ++i_; return *this; }
    const_iterator operator++(int) { const_iterator t = *this; ++i_; return t; }
    const_iterator& operator--() { --i_; return *this; }
    const_iterator operator--(int) { const_iterator t = *this; --i_; return t; }
    const_iterator& operator+=(difference_type n) {
      i_ = static_cast<std::size_t>(static_cast<difference_type>(i_) + n);
      return *this;
    }
    const_iterator& operator-=(difference_type n) { return *this += -n; }
    friend const_iterator operator+(const_iterator it, difference_type n) {
      return it += n;
    }
    friend const_iterator operator+(difference_type n, const_iterator it) {
      return it += n;
    }
    friend const_iterator operator-(const_iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const const_iterator& a,
                                     const const_iterator& b) {
      return static_cast<difference_type>(a.i_) -
             static_cast<difference_type>(b.i_);
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.i_ == b.i_;
    }
    friend auto operator<=>(const const_iterator& a, const const_iterator& b) {
      return a.i_ <=> b.i_;
    }

   private:
    const TraceBuffer* buf_ = nullptr;
    std::size_t i_ = 0;
  };

  Trace() = default;

  // Adopts an already-populated buffer (the store decoder builds one via
  // bulk column appends and wraps it without copying).
  explicit Trace(TraceBuffer buf) : buf_(std::move(buf)) {}

  // Appends an event. Cycles must be non-decreasing (a bus observes
  // transactions in time order) and bursts must be non-empty.
  void Append(const MemEvent& e) { buf_.Append(e); }
  void Append(std::uint64_t cycle, std::uint64_t addr, std::uint32_t bytes,
              MemOp op) {
    buf_.Append(cycle, addr, bytes, op);
  }

  // Appends every event of `other` (cycles must continue non-decreasing).
  // Copies whole column runs per chunk rather than iterating events.
  void AppendAll(const Trace& other);

  // Bulk-appends `count` events given as parallel columns, adding
  // `cycle_offset` to every cycle while copying (see
  // TraceBuffer::AppendColumns). This is the producer-side flush path: the
  // emitter records stage-relative columns and lands them here in one call.
  void AppendColumns(const std::uint64_t* cycles, const std::uint64_t* addrs,
                     const std::uint32_t* bytes, const std::uint8_t* ops,
                     std::size_t count, std::uint64_t cycle_offset = 0) {
    buf_.AppendColumns(cycles, addrs, bytes, ops, count, cycle_offset);
  }

  // Drops all events; retains storage so the trace can be refilled without
  // reallocating (pooled emission in the accelerator).
  void Clear() { buf_.Clear(); }

  // Keeps only the first n events (n <= size()).
  void Truncate(std::size_t n) { buf_.Truncate(n); }

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  MemEvent operator[](std::size_t i) const { return buf_.Get(i); }

  const_iterator begin() const { return const_iterator(&buf_, 0); }
  const_iterator end() const { return const_iterator(&buf_, buf_.size()); }

  // Columnar storage, for streaming scans over chunk views.
  const TraceBuffer& buffer() const { return buf_; }

  // Cycle of the last event (0 for an empty trace).
  std::uint64_t last_cycle() const { return buf_.last_cycle(); }

  // Total bytes transferred, split by direction (O(1), tracked on append).
  std::uint64_t bytes_read() const { return buf_.bytes_read(); }
  std::uint64_t bytes_written() const { return buf_.bytes_written(); }

  // CSV serialization: header "cycle,addr,bytes,op" then one row per event
  // with op in {R, W}. ReadCsv validates ordering and burst sizes and throws
  // sc::Error on malformed input.
  void WriteCsv(std::ostream& os) const;
  static Trace ReadCsv(std::istream& is);

  void SaveCsvFile(const std::string& path) const;
  static Trace LoadCsvFile(const std::string& path);

 private:
  TraceBuffer buf_;
};

// A trace-to-trace transform standing between the bus and the adversary:
// defenses reshape traffic, fault models (sim/noise.h) corrupt the
// measurement. Implementations must return a valid Trace (non-decreasing
// cycles, non-empty bursts) but are otherwise unconstrained.
class TraceTransform {
 public:
  virtual ~TraceTransform() = default;
  virtual Trace Apply(const Trace& in) const = 0;
};

}  // namespace sc::trace

#endif  // SC_TRACE_TRACE_H_
