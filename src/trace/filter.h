// Trace slicing utilities: the raw bus capture is large, and both the
// attacks and their tests repeatedly need views restricted by direction,
// address range or cycle window.
#ifndef SC_TRACE_FILTER_H_
#define SC_TRACE_FILTER_H_

#include <cstdint>

#include "trace/interval.h"
#include "trace/trace.h"

namespace sc::trace {

// Events with the given direction.
Trace FilterByOp(const Trace& trace, MemOp op);

// Events whose burst overlaps [lo, hi).
Trace FilterByAddressRange(const Trace& trace, std::uint64_t lo,
                           std::uint64_t hi);
Trace FilterByAddressRange(const Trace& trace, const AddrInterval& range);

// Events with cycle in [first, last] (inclusive, as cycle stamps are).
Trace FilterByCycleWindow(const Trace& trace, std::uint64_t first,
                          std::uint64_t last);

// Concatenation of two traces; the first event of `tail` must not precede
// the last event of `head` in time.
Trace Concatenate(const Trace& head, const Trace& tail);

// Total bytes of `trace` moved within [lo, hi) — clipped per burst, so a
// burst straddling the boundary contributes only its inside part.
std::uint64_t BytesWithin(const Trace& trace, std::uint64_t lo,
                          std::uint64_t hi);

}  // namespace sc::trace

#endif  // SC_TRACE_FILTER_H_
