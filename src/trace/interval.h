// Address-interval arithmetic used by the trace-analysis side of the attack.
//
// The adversary reconstructs "regions" (contiguous tensors in DRAM) from the
// raw burst stream by unioning the byte intervals each burst touches and
// splitting the union at gaps larger than an allocator guard threshold.
#ifndef SC_TRACE_INTERVAL_H_
#define SC_TRACE_INTERVAL_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sc::trace {

// Half-open byte interval [lo, hi).
struct AddrInterval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  std::uint64_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool Contains(std::uint64_t addr) const { return addr >= lo && addr < hi; }
  bool Overlaps(const AddrInterval& o) const {
    return lo < o.hi && o.lo < hi;
  }

  friend auto operator<=>(const AddrInterval&, const AddrInterval&) = default;
};

std::ostream& operator<<(std::ostream& os, const AddrInterval& iv);

// Maintains a canonical (sorted, disjoint, maximally-merged) set of byte
// intervals. Insertions merge with neighbours; adjacency counts as overlap.
class IntervalSet {
 public:
  IntervalSet() = default;

  // Inserts [lo, hi); no-op for empty input. Throws on hi < lo.
  void Insert(std::uint64_t lo, std::uint64_t hi);
  void Insert(const AddrInterval& iv) { Insert(iv.lo, iv.hi); }

  bool Contains(std::uint64_t addr) const;
  bool OverlapsInterval(const AddrInterval& iv) const;

  // Total number of bytes covered.
  std::uint64_t CoveredBytes() const;

  bool empty() const { return parts_.empty(); }
  const std::vector<AddrInterval>& parts() const { return parts_; }

  // Lowest / highest covered address span, i.e. [min lo, max hi).
  AddrInterval Hull() const;

  // Splits the covered bytes into contiguous "regions": runs of intervals
  // whose inter-interval gaps are <= max_gap bytes. A gap wider than
  // max_gap is interpreted as an allocator guard between distinct tensors.
  std::vector<AddrInterval> SplitRegions(std::uint64_t max_gap) const;

 private:
  std::vector<AddrInterval> parts_;
};

}  // namespace sc::trace

#endif  // SC_TRACE_INTERVAL_H_
