#include "trace/filter.h"

#include <algorithm>

#include "support/check.h"

namespace sc::trace {

Trace FilterByOp(const Trace& trace, MemOp op) {
  Trace out;
  for (const MemEvent& e : trace)
    if (e.op == op) out.Append(e);
  return out;
}

Trace FilterByAddressRange(const Trace& trace, std::uint64_t lo,
                           std::uint64_t hi) {
  SC_CHECK_MSG(lo <= hi, "inverted address range");
  Trace out;
  for (const MemEvent& e : trace)
    if (e.addr < hi && e.end() > lo) out.Append(e);
  return out;
}

Trace FilterByAddressRange(const Trace& trace, const AddrInterval& range) {
  return FilterByAddressRange(trace, range.lo, range.hi);
}

Trace FilterByCycleWindow(const Trace& trace, std::uint64_t first,
                          std::uint64_t last) {
  SC_CHECK_MSG(first <= last, "inverted cycle window");
  Trace out;
  for (const MemEvent& e : trace)
    if (e.cycle >= first && e.cycle <= last) out.Append(e);
  return out;
}

Trace Concatenate(const Trace& head, const Trace& tail) {
  Trace out = head;
  for (const MemEvent& e : tail) out.Append(e);  // Append enforces ordering
  return out;
}

std::uint64_t BytesWithin(const Trace& trace, std::uint64_t lo,
                          std::uint64_t hi) {
  SC_CHECK_MSG(lo <= hi, "inverted address range");
  std::uint64_t total = 0;
  for (const MemEvent& e : trace) {
    const std::uint64_t a = std::max<std::uint64_t>(e.addr, lo);
    const std::uint64_t b = std::min<std::uint64_t>(e.end(), hi);
    if (a < b) total += b - a;
  }
  return total;
}

}  // namespace sc::trace
