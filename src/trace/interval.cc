#include "trace/interval.h"

#include <algorithm>
#include <ostream>

#include "support/check.h"

namespace sc::trace {

std::ostream& operator<<(std::ostream& os, const AddrInterval& iv) {
  return os << "[0x" << std::hex << iv.lo << ", 0x" << iv.hi << std::dec
            << ")";
}

void IntervalSet::Insert(std::uint64_t lo, std::uint64_t hi) {
  SC_CHECK_MSG(lo <= hi, "inverted interval");
  if (lo == hi) return;

  // Fast path for the dominant pattern (trace addresses mostly ascend):
  // the new interval lands at or after the last part, so it either merges
  // with it or appends — no search, no mid-vector shifting.
  if (!parts_.empty() && lo >= parts_.back().lo) {
    AddrInterval& b = parts_.back();
    if (lo > b.hi) {
      parts_.push_back(AddrInterval{lo, hi});
    } else if (hi > b.hi) {
      b.hi = hi;
    }
    return;
  }

  // Find the first part that ends at or after lo (merge candidate, treating
  // adjacency as overlap), and the first part starting strictly after hi.
  auto first = std::lower_bound(
      parts_.begin(), parts_.end(), lo,
      [](const AddrInterval& p, std::uint64_t v) { return p.hi < v; });
  auto last = first;
  while (last != parts_.end() && last->lo <= hi) {
    lo = std::min(lo, last->lo);
    hi = std::max(hi, last->hi);
    ++last;
  }
  auto it = parts_.erase(first, last);
  parts_.insert(it, AddrInterval{lo, hi});
}

bool IntervalSet::Contains(std::uint64_t addr) const {
  auto it = std::upper_bound(
      parts_.begin(), parts_.end(), addr,
      [](std::uint64_t v, const AddrInterval& p) { return v < p.hi; });
  return it != parts_.end() && it->Contains(addr);
}

bool IntervalSet::OverlapsInterval(const AddrInterval& iv) const {
  if (iv.empty()) return false;
  auto it = std::upper_bound(
      parts_.begin(), parts_.end(), iv.lo,
      [](std::uint64_t v, const AddrInterval& p) { return v < p.hi; });
  return it != parts_.end() && it->Overlaps(iv);
}

std::uint64_t IntervalSet::CoveredBytes() const {
  std::uint64_t n = 0;
  for (const AddrInterval& p : parts_) n += p.size();
  return n;
}

AddrInterval IntervalSet::Hull() const {
  SC_CHECK_MSG(!parts_.empty(), "hull of an empty interval set");
  return AddrInterval{parts_.front().lo, parts_.back().hi};
}

std::vector<AddrInterval> IntervalSet::SplitRegions(
    std::uint64_t max_gap) const {
  std::vector<AddrInterval> regions;
  for (const AddrInterval& p : parts_) {
    if (!regions.empty() && p.lo - regions.back().hi <= max_gap) {
      regions.back().hi = p.hi;
    } else {
      regions.push_back(p);
    }
  }
  return regions;
}

}  // namespace sc::trace
