#include "trace/stats.h"

#include <ostream>

namespace sc::trace {

TraceStats ComputeStats(const Trace& trace) {
  TraceStats s;
  IntervalSet reads;
  IntervalSet writes;
  bool first = true;
  for (const MemEvent& e : trace) {
    if (first) {
      s.first_cycle = e.cycle;
      first = false;
    }
    s.last_cycle = e.cycle;
    if (e.op == MemOp::kRead) {
      ++s.read_events;
      s.bytes_read += e.bytes;
      reads.Insert(e.addr, e.end());
    } else {
      ++s.write_events;
      s.bytes_written += e.bytes;
      writes.Insert(e.addr, e.end());
    }
  }
  s.unique_bytes_read = reads.CoveredBytes();
  s.unique_bytes_written = writes.CoveredBytes();
  return s;
}

std::ostream& operator<<(std::ostream& os, const TraceStats& s) {
  return os << "events=" << s.total_events() << " (R " << s.read_events
            << " / W " << s.write_events << "), bytes=" << s.total_bytes()
            << " (R " << s.bytes_read << " / W " << s.bytes_written
            << "), footprint R " << s.unique_bytes_read << " B / W "
            << s.unique_bytes_written << " B, cycles [" << s.first_cycle
            << ", " << s.last_cycle << "]";
}

}  // namespace sc::trace
