#include "trace/trace_buffer.h"

#include <algorithm>

namespace sc::trace {

void TraceBuffer::AddChunk() {
  // Chunks past size_ may survive a Clear(); only allocate when the pool is
  // exhausted.
  if (size_ == chunks_.size() * kChunkEvents)
    chunks_.push_back(std::make_unique<Chunk>());
}

void TraceBuffer::AppendColumns(const std::uint64_t* cycles,
                                const std::uint64_t* addrs,
                                const std::uint32_t* bytes,
                                const std::uint8_t* ops, std::size_t count,
                                std::uint64_t cycle_offset) {
  if (count == 0) return;
  // Validate the whole batch before touching storage, so a bad column
  // leaves the buffer unchanged.
  std::uint64_t prev = last_cycle();
  std::uint64_t r = 0, w = 0;
  for (std::size_t i = 0; i < count; ++i) {
    SC_CHECK_MSG(bytes[i] > 0, "empty burst");
    const std::uint64_t cyc = cycles[i] + cycle_offset;
    SC_CHECK_MSG(cyc >= cycle_offset, "cycle overflow in column batch");
    SC_CHECK_MSG(size_ + i == 0 || prev <= cyc,
                 "trace cycles must be non-decreasing: last=" << prev << " new="
                                                              << cyc);
    prev = cyc;
    SC_CHECK_MSG(ops[i] <= 1, "invalid mem op " << int{ops[i]});
    if (static_cast<MemOp>(ops[i]) == MemOp::kRead)
      r += bytes[i];
    else
      w += bytes[i];
  }
  std::size_t done = 0;
  while (done < count) {
    if (size_ == chunks_.size() * kChunkEvents) AddChunk();
    Chunk& c = *chunks_[size_ >> kChunkShift];
    const std::size_t at = size_ & kChunkMask;
    const std::size_t n = std::min(count - done, kChunkEvents - at);
    if (cycle_offset == 0) {
      std::copy_n(cycles + done, n, c.cycles + at);
    } else {
      for (std::size_t i = 0; i < n; ++i)
        c.cycles[at + i] = cycles[done + i] + cycle_offset;
    }
    std::copy_n(addrs + done, n, c.addrs + at);
    std::copy_n(bytes + done, n, c.bytes + at);
    std::copy_n(ops + done, n, c.ops + at);
    size_ += n;
    done += n;
  }
  last_cycle_ = prev;
  bytes_read_ += r;
  bytes_written_ += w;
}

void TraceBuffer::Clear() {
  size_ = 0;
  last_cycle_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
}

void TraceBuffer::Truncate(std::size_t n) {
  SC_CHECK(n <= size_);
  if (n == size_) return;
  size_ = n;
  if (n == 0) {
    last_cycle_ = 0;
    bytes_read_ = 0;
    bytes_written_ = 0;
    return;
  }
  // Recompute the running totals for the surviving prefix.
  std::uint64_t r = 0, w = 0;
  for (std::size_t ci = 0; ci < num_chunks(); ++ci) {
    const ChunkView v = chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      if (static_cast<MemOp>(v.ops[i]) == MemOp::kRead)
        r += v.bytes[i];
      else
        w += v.bytes[i];
    }
  }
  bytes_read_ = r;
  bytes_written_ = w;
  last_cycle_ = Get(n - 1).cycle;
}

void TraceBuffer::CopyFrom(const TraceBuffer& o) {
  for (std::size_t ci = 0; ci < o.num_chunks(); ++ci) {
    const ChunkView v = o.chunk(ci);
    AppendColumns(v.cycles, v.addrs, v.bytes, v.ops, v.count);
  }
}

}  // namespace sc::trace
