#include "trace/trace_buffer.h"

namespace sc::trace {

void TraceBuffer::AddChunk() {
  // Chunks past size_ may survive a Clear(); only allocate when the pool is
  // exhausted.
  if (size_ == chunks_.size() * kChunkEvents)
    chunks_.push_back(std::make_unique<Chunk>());
}

void TraceBuffer::Clear() {
  size_ = 0;
  last_cycle_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
}

void TraceBuffer::Truncate(std::size_t n) {
  SC_CHECK(n <= size_);
  if (n == size_) return;
  size_ = n;
  if (n == 0) {
    last_cycle_ = 0;
    bytes_read_ = 0;
    bytes_written_ = 0;
    return;
  }
  // Recompute the running totals for the surviving prefix.
  std::uint64_t r = 0, w = 0;
  for (std::size_t ci = 0; ci < num_chunks(); ++ci) {
    const ChunkView v = chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      if (static_cast<MemOp>(v.ops[i]) == MemOp::kRead)
        r += v.bytes[i];
      else
        w += v.bytes[i];
    }
  }
  bytes_read_ = r;
  bytes_written_ = w;
  last_cycle_ = Get(n - 1).cycle;
}

void TraceBuffer::CopyFrom(const TraceBuffer& o) {
  for (std::size_t ci = 0; ci < o.num_chunks(); ++ci) {
    const ChunkView v = o.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i)
      Append(v.cycles[i], v.addrs[i], v.bytes[i],
             static_cast<MemOp>(v.ops[i]));
  }
}

}  // namespace sc::trace
