// Aggregate statistics over a memory trace.
//
// Used by benches/examples for reporting and by the zero-pruning ablation
// (paper §4: pruning reduces off-chip write traffic).
#ifndef SC_TRACE_STATS_H_
#define SC_TRACE_STATS_H_

#include <cstdint>
#include <iosfwd>

#include "trace/interval.h"
#include "trace/trace.h"

namespace sc::trace {

struct TraceStats {
  std::uint64_t read_events = 0;
  std::uint64_t write_events = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t unique_bytes_read = 0;     // footprint of read addresses
  std::uint64_t unique_bytes_written = 0;  // footprint of written addresses
  std::uint64_t first_cycle = 0;
  std::uint64_t last_cycle = 0;

  std::uint64_t total_events() const { return read_events + write_events; }
  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
  std::uint64_t duration_cycles() const { return last_cycle - first_cycle; }
};

// Single pass over the trace; footprint is exact (interval union).
TraceStats ComputeStats(const Trace& trace);

std::ostream& operator<<(std::ostream& os, const TraceStats& s);

}  // namespace sc::trace

#endif  // SC_TRACE_STATS_H_
