// A single observed off-chip memory transaction.
//
// This is the adversary's unit of observation (threat model, paper §2): the
// address, the transfer size, the direction (read/write), and the cycle at
// which the transaction was issued. Data values are deliberately absent —
// off-chip data is encrypted in the threat model, so no component of the
// attack may depend on them.
#ifndef SC_TRACE_MEM_EVENT_H_
#define SC_TRACE_MEM_EVENT_H_

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace sc::trace {

// Direction of an off-chip transaction as seen on the memory bus.
enum class MemOp : std::uint8_t { kRead = 0, kWrite = 1 };

const char* ToString(MemOp op);
std::ostream& operator<<(std::ostream& os, MemOp op);

// One burst transaction: [addr, addr + bytes) transferred at `cycle`.
// Bursts model DRAM traffic realistically (row transfers, not single words)
// and keep traces for large CNNs tractable.
struct MemEvent {
  std::uint64_t cycle = 0;   // issue time in accelerator clock cycles
  std::uint64_t addr = 0;    // first byte address of the burst
  std::uint32_t bytes = 0;   // burst length in bytes (> 0 for valid events)
  MemOp op = MemOp::kRead;

  // Exclusive end address of the burst.
  std::uint64_t end() const { return addr + bytes; }

  friend auto operator<=>(const MemEvent&, const MemEvent&) = default;
};

std::ostream& operator<<(std::ostream& os, const MemEvent& e);

}  // namespace sc::trace

#endif  // SC_TRACE_MEM_EVENT_H_
