// Columnar (structure-of-arrays) storage for memory-trace events.
//
// The attack's cost is dominated by generating and re-scanning DRAM traces:
// every structure/weight/defense experiment replays the simulator and walks
// the full access sequence again. A TraceBuffer keeps the four MemEvent
// fields in separate columns inside fixed-capacity chunks, so
//   - Append never moves existing data (no per-event allocation, no
//     quadratic-ish growth copies),
//   - Clear() retains chunk storage for reuse across runs (pooled writers),
//   - analysis passes stream each column sequentially instead of striding
//     over 24-byte AoS records.
#ifndef SC_TRACE_TRACE_BUFFER_H_
#define SC_TRACE_TRACE_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/check.h"
#include "trace/mem_event.h"

namespace sc::trace {

class TraceBuffer {
 public:
  // 2^14 events per chunk: ~344 KiB of columns, comfortably L2-resident
  // while streaming, and only a handful of allocations for CNN-scale
  // traces (AlexNet is ~120k events).
  static constexpr std::size_t kChunkShift = 14;
  static constexpr std::size_t kChunkEvents = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkMask = kChunkEvents - 1;

  // Borrowed read-only view of one chunk's columns; `count` events valid.
  struct ChunkView {
    const std::uint64_t* cycles = nullptr;
    const std::uint64_t* addrs = nullptr;
    const std::uint32_t* bytes = nullptr;
    const std::uint8_t* ops = nullptr;  // MemOp values
    std::size_t count = 0;
  };

  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer& o) { CopyFrom(o); }
  TraceBuffer& operator=(const TraceBuffer& o) {
    if (this != &o) {
      Clear();
      CopyFrom(o);
    }
    return *this;
  }
  TraceBuffer(TraceBuffer&&) noexcept = default;
  TraceBuffer& operator=(TraceBuffer&&) noexcept = default;

  // Appends an event. Cycles must be non-decreasing (a bus observes
  // transactions in time order) and bursts must be non-empty.
  void Append(std::uint64_t cycle, std::uint64_t addr, std::uint32_t bytes,
              MemOp op) {
    SC_CHECK_MSG(bytes > 0, "empty burst");
    SC_CHECK_MSG(size_ == 0 || last_cycle_ <= cycle,
                 "trace cycles must be non-decreasing: last=" << last_cycle_
                                                              << " new="
                                                              << cycle);
    if (size_ == chunks_.size() * kChunkEvents) AddChunk();
    Chunk& c = *chunks_[size_ >> kChunkShift];
    const std::size_t i = size_ & kChunkMask;
    c.cycles[i] = cycle;
    c.addrs[i] = addr;
    c.bytes[i] = bytes;
    c.ops[i] = static_cast<std::uint8_t>(op);
    ++size_;
    last_cycle_ = cycle;
    if (op == MemOp::kRead)
      bytes_read_ += bytes;
    else
      bytes_written_ += bytes;
  }
  void Append(const MemEvent& e) { Append(e.cycle, e.addr, e.bytes, e.op); }

  // Bulk-appends `count` events given as parallel columns (the ChunkView
  // shape). Enforces the same invariants as Append — non-empty bursts,
  // non-decreasing cycles (including against the current tail), ops in
  // {kRead, kWrite} — then copies whole column runs instead of making
  // count per-event calls. This is the store decoder's rebuild path and
  // the emitter's stage-flush path. `cycle_offset` is added to every cycle
  // while copying, so a block recorded with stage-relative cycles can be
  // replayed at any (monotone) position in the stream without the caller
  // materializing a rebased cycle column.
  void AppendColumns(const std::uint64_t* cycles, const std::uint64_t* addrs,
                     const std::uint32_t* bytes, const std::uint8_t* ops,
                     std::size_t count, std::uint64_t cycle_offset = 0);

  MemEvent Get(std::size_t i) const {
    SC_CHECK(i < size_);
    const Chunk& c = *chunks_[i >> kChunkShift];
    const std::size_t k = i & kChunkMask;
    return MemEvent{c.cycles[k], c.addrs[k], c.bytes[k],
                    static_cast<MemOp>(c.ops[k])};
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Cycle of the last event (0 for an empty buffer).
  std::uint64_t last_cycle() const { return size_ == 0 ? 0 : last_cycle_; }

  // Total bytes transferred, split by direction (maintained on append).
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

  // Drops all events but keeps chunk storage, so a pooled writer refills
  // the same memory run after run.
  void Clear();

  // Keeps only the first n events (n <= size()).
  void Truncate(std::size_t n);

  std::size_t num_chunks() const {
    return (size_ + kChunkEvents - 1) >> kChunkShift;
  }
  ChunkView chunk(std::size_t ci) const {
    SC_CHECK(ci < num_chunks());
    const Chunk& c = *chunks_[ci];
    const std::size_t lo = ci << kChunkShift;
    return ChunkView{c.cycles, c.addrs, c.bytes, c.ops,
                     std::min(kChunkEvents, size_ - lo)};
  }

 private:
  struct Chunk {
    std::uint64_t cycles[kChunkEvents];
    std::uint64_t addrs[kChunkEvents];
    std::uint32_t bytes[kChunkEvents];
    std::uint8_t ops[kChunkEvents];
  };

  void AddChunk();
  void CopyFrom(const TraceBuffer& o);

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t size_ = 0;
  std::uint64_t last_cycle_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace sc::trace

#endif  // SC_TRACE_TRACE_BUFFER_H_
