#include "sim/noise.h"

#include <algorithm>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace sc::sim {

namespace {

void CheckProb(double p, const char* name) {
  SC_CHECK_MSG(p >= 0.0 && p <= 1.0, name << " must be in [0, 1]: " << p);
}

}  // namespace

TraceNoiseConfig ReferenceTraceNoise(std::uint64_t seed) {
  TraceNoiseConfig cfg;
  cfg.seed = seed;
  cfg.drop_prob = 1e-4;
  cfg.jitter_prob = 0.02;
  cfg.max_jitter_cycles = 3;
  cfg.split_prob = 0.02;
  cfg.merge_prob = 0.02;
  cfg.spurious_prob = 0.005;
  return cfg;
}

TraceNoiseModel::TraceNoiseModel(TraceNoiseConfig cfg) : cfg_(cfg) {
  CheckProb(cfg_.drop_prob, "drop_prob");
  CheckProb(cfg_.jitter_prob, "jitter_prob");
  CheckProb(cfg_.split_prob, "split_prob");
  CheckProb(cfg_.merge_prob, "merge_prob");
  CheckProb(cfg_.spurious_prob, "spurious_prob");
  SC_CHECK_MSG(cfg_.jitter_prob == 0.0 || cfg_.max_jitter_cycles > 0,
               "jitter_prob > 0 requires max_jitter_cycles > 0");
}

trace::Trace TraceNoiseModel::Apply(const trace::Trace& in) const {
  return ApplySeeded(in, cfg_.seed);
}

trace::Trace TraceNoiseModel::ApplyNth(const trace::Trace& in,
                                       std::uint64_t k) const {
  return ApplySeeded(in, MixSeed(cfg_.seed, k));
}

void TraceNoiseModel::ApplyTo(const trace::Trace& in,
                              trace::Trace* out) const {
  ApplySeededTo(in, cfg_.seed, out);
}

void TraceNoiseModel::ApplyNthTo(const trace::Trace& in, std::uint64_t k,
                                 trace::Trace* out) const {
  ApplySeededTo(in, MixSeed(cfg_.seed, k), out);
}

trace::Trace TraceNoiseModel::ApplySeeded(const trace::Trace& in,
                                          std::uint64_t seed) const {
  trace::Trace out;
  ApplySeededTo(in, seed, &out);
  return out;
}

namespace {

// Column workspace for the streaming passes, pooled per thread (defense
// matrices corrupt traces from several workers): clear() keeps vector
// capacity, so a K-acquisition loop allocates only on its first draw.
struct NoiseWorkspace {
  std::vector<std::uint64_t> cycles, addrs;
  std::vector<std::uint32_t> bytes;
  std::vector<std::uint8_t> ops;

  void Clear() {
    cycles.clear();
    addrs.clear();
    bytes.clear();
    ops.clear();
  }
  void Reserve(std::size_t n) {
    cycles.reserve(n);
    addrs.reserve(n);
    bytes.reserve(n);
    ops.reserve(n);
  }
  std::size_t size() const { return cycles.size(); }
  void Push(std::uint64_t cy, std::uint64_t a, std::uint32_t b,
            std::uint8_t op) {
    cycles.push_back(cy);
    addrs.push_back(a);
    bytes.push_back(b);
    ops.push_back(op);
  }
};

NoiseWorkspace& TlsWorkspace(int which) {
  thread_local NoiseWorkspace ws[2];
  return ws[static_cast<std::size_t>(which)];
}

}  // namespace

// Streaming equivalent of the historical AoS implementation (kept under
// tests/legacy_noise.h): same three passes, same RNG draw order — one
// stream of draws across drop/split/spurious, then merge, then jitter — so
// every output is bit-for-bit identical. The passes walk TraceBuffer chunk
// views and pooled column vectors instead of materializing MemEvent
// vectors, and the result lands in `out` as a single bulk column append.
void TraceNoiseModel::ApplySeededTo(const trace::Trace& in, std::uint64_t seed,
                                    trace::Trace* out) const {
  SC_CHECK_MSG(out != nullptr && out != &in,
               "noise output must be a distinct trace");
  out->Clear();
  if (!cfg_.enabled() || in.empty()) {
    out->AppendAll(in);
    return;
  }
  Rng rng(seed);

  // Pass 1 — drop, split, spurious duplication — input chunks to columns.
  NoiseWorkspace& a = TlsWorkspace(0);
  a.Clear();
  a.Reserve(in.size());
  const trace::TraceBuffer& buf = in.buffer();
  const auto emit_part = [&](std::uint64_t cy, std::uint64_t addr,
                             std::uint32_t b, std::uint8_t op) {
    a.Push(cy, addr, b, op);
    // Double-sampled transaction: same address range reported again.
    if (cfg_.spurious_prob > 0.0 && rng.Chance(cfg_.spurious_prob))
      a.Push(cy, addr, b, op);
  };
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      if (cfg_.drop_prob > 0.0 && rng.Chance(cfg_.drop_prob)) continue;
      const std::uint32_t b = v.bytes[i];
      // Fragmentation at the probe's sampling boundary.
      if (b > 1 && cfg_.split_prob > 0.0 && rng.Chance(cfg_.split_prob)) {
        const auto cut = static_cast<std::uint32_t>(rng.UniformInt(
            1, static_cast<int>(std::min<std::uint32_t>(b - 1, 1u << 30))));
        emit_part(v.cycles[i], v.addrs[i], cut, v.ops[i]);
        emit_part(v.cycles[i], v.addrs[i] + cut, b - cut, v.ops[i]);
      } else {
        emit_part(v.cycles[i], v.addrs[i], b, v.ops[i]);
      }
    }
  }

  // Pass 2 — coalescing: a burst absorbs a directly following contiguous
  // burst of the same direction (one merge per pair, single left-to-right
  // pass).
  NoiseWorkspace* src = &a;
  if (cfg_.merge_prob > 0.0) {
    NoiseWorkspace& m = TlsWorkspace(1);
    m.Clear();
    m.Reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!m.cycles.empty() && m.ops.back() == a.ops[i] &&
          m.addrs.back() + m.bytes.back() == a.addrs[i] &&
          rng.Chance(cfg_.merge_prob)) {
        m.bytes.back() += a.bytes[i];
        continue;
      }
      m.Push(a.cycles[i], a.addrs[i], a.bytes[i], a.ops[i]);
    }
    src = &m;
  }

  // Pass 3 — timestamp jitter, in place over the surviving column. The
  // probe observes the serial bus, so transaction ORDER is ground truth —
  // only the timestamp counter wobbles. Jittered timestamps that would run
  // backwards are clamped to the preceding event's cycle, exactly what a
  // monotonizing capture pass does.
  if (cfg_.jitter_prob > 0.0) {
    const auto span = static_cast<int>(cfg_.max_jitter_cycles);
    std::uint64_t prev = 0;
    for (std::uint64_t& cy : src->cycles) {
      if (rng.Chance(cfg_.jitter_prob)) {
        const int delta = rng.UniformInt(-span, span);
        if (delta < 0) {
          const auto back = static_cast<std::uint64_t>(-delta);
          cy = cy < back ? 0 : cy - back;
        } else {
          cy += static_cast<std::uint64_t>(delta);
        }
      }
      cy = std::max(cy, prev);
      prev = cy;
    }
  }

  out->AppendColumns(src->cycles.data(), src->addrs.data(), src->bytes.data(),
                     src->ops.data(), src->size());
}

}  // namespace sc::sim
