#include "sim/noise.h"

#include <algorithm>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace sc::sim {

namespace {

void CheckProb(double p, const char* name) {
  SC_CHECK_MSG(p >= 0.0 && p <= 1.0, name << " must be in [0, 1]: " << p);
}

}  // namespace

TraceNoiseConfig ReferenceTraceNoise(std::uint64_t seed) {
  TraceNoiseConfig cfg;
  cfg.seed = seed;
  cfg.drop_prob = 1e-4;
  cfg.jitter_prob = 0.02;
  cfg.max_jitter_cycles = 3;
  cfg.split_prob = 0.02;
  cfg.merge_prob = 0.02;
  cfg.spurious_prob = 0.005;
  return cfg;
}

TraceNoiseModel::TraceNoiseModel(TraceNoiseConfig cfg) : cfg_(cfg) {
  CheckProb(cfg_.drop_prob, "drop_prob");
  CheckProb(cfg_.jitter_prob, "jitter_prob");
  CheckProb(cfg_.split_prob, "split_prob");
  CheckProb(cfg_.merge_prob, "merge_prob");
  CheckProb(cfg_.spurious_prob, "spurious_prob");
  SC_CHECK_MSG(cfg_.jitter_prob == 0.0 || cfg_.max_jitter_cycles > 0,
               "jitter_prob > 0 requires max_jitter_cycles > 0");
}

trace::Trace TraceNoiseModel::Apply(const trace::Trace& in) const {
  return ApplySeeded(in, cfg_.seed);
}

trace::Trace TraceNoiseModel::ApplyNth(const trace::Trace& in,
                                       std::uint64_t k) const {
  return ApplySeeded(in, MixSeed(cfg_.seed, k));
}

trace::Trace TraceNoiseModel::ApplySeeded(const trace::Trace& in,
                                          std::uint64_t seed) const {
  if (!cfg_.enabled() || in.empty()) return in;
  Rng rng(seed);

  std::vector<trace::MemEvent> out;
  out.reserve(in.size());
  for (const trace::MemEvent& e : in) {
    if (cfg_.drop_prob > 0.0 && rng.Chance(cfg_.drop_prob)) continue;

    // Fragmentation at the probe's sampling boundary.
    std::vector<trace::MemEvent> parts{e};
    if (e.bytes > 1 && cfg_.split_prob > 0.0 && rng.Chance(cfg_.split_prob)) {
      const auto cut = static_cast<std::uint32_t>(
          rng.UniformInt(1, static_cast<int>(
                                std::min<std::uint32_t>(e.bytes - 1, 1u << 30))));
      trace::MemEvent head = e;
      head.bytes = cut;
      trace::MemEvent tail = e;
      tail.addr = e.addr + cut;
      tail.bytes = e.bytes - cut;
      parts = {head, tail};
    }

    for (const trace::MemEvent& part : parts) {
      out.push_back(part);
      // Double-sampled transaction: same address range reported again.
      if (cfg_.spurious_prob > 0.0 && rng.Chance(cfg_.spurious_prob))
        out.push_back(part);
    }
  }

  // Coalescing: a burst absorbs a directly following contiguous burst of
  // the same direction (one merge per pair, single left-to-right pass).
  if (cfg_.merge_prob > 0.0) {
    std::vector<trace::MemEvent> merged;
    merged.reserve(out.size());
    for (const trace::MemEvent& e : out) {
      if (!merged.empty() && merged.back().op == e.op &&
          merged.back().end() == e.addr && rng.Chance(cfg_.merge_prob)) {
        merged.back().bytes += e.bytes;
        continue;
      }
      merged.push_back(e);
    }
    out = std::move(merged);
  }

  // Timestamp jitter. The probe observes the serial bus, so transaction
  // ORDER is ground truth — only the timestamp counter wobbles. Jittered
  // timestamps that would run backwards are clamped to the preceding
  // event's cycle, exactly what a monotonizing capture pass does.
  if (cfg_.jitter_prob > 0.0) {
    const auto span = static_cast<int>(cfg_.max_jitter_cycles);
    std::uint64_t prev = 0;
    for (trace::MemEvent& e : out) {
      if (rng.Chance(cfg_.jitter_prob)) {
        const int delta = rng.UniformInt(-span, span);
        if (delta < 0) {
          const auto back = static_cast<std::uint64_t>(-delta);
          e.cycle = e.cycle < back ? 0 : e.cycle - back;
        } else {
          e.cycle += static_cast<std::uint64_t>(delta);
        }
      }
      e.cycle = std::max(e.cycle, prev);
      prev = e.cycle;
    }
  }

  trace::Trace result;
  for (const trace::MemEvent& e : out) result.Append(e);
  return result;
}

}  // namespace sc::sim
