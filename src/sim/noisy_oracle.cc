#include "sim/noisy_oracle.h"

#include <utility>

#include "obs/metrics.h"
#include "support/check.h"

namespace sc::sim {

namespace {

// Fault-injection metrics (DESIGN.md §9): what the simulated probe actually
// did to the adversary's measurements, aggregated across forked oracles.
struct NoiseMetrics {
  obs::Counter& faults =
      obs::Registry::Get().GetCounter("sim.noise.transient_faults");
  obs::Counter& perturbations =
      obs::Registry::Get().GetCounter("sim.noise.count_perturbations");
};

NoiseMetrics& Metrics() {
  static NoiseMetrics m;
  return m;
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t k) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (k + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Validate(const OracleNoiseConfig& cfg) {
  SC_CHECK_MSG(cfg.count_noise_prob >= 0.0 && cfg.count_noise_prob <= 1.0,
               "count_noise_prob out of range");
  SC_CHECK_MSG(cfg.failure_prob >= 0.0 && cfg.failure_prob <= 1.0,
               "failure_prob out of range");
  SC_CHECK_MSG(cfg.max_count_delta >= 1, "max_count_delta must be >= 1");
}

}  // namespace

OracleNoiseConfig ReferenceOracleNoise(std::uint64_t seed) {
  OracleNoiseConfig cfg;
  cfg.seed = seed;
  cfg.count_noise_prob = 0.02;
  cfg.max_count_delta = 2;
  cfg.failure_prob = 0.01;
  return cfg;
}

NoisyOracle::NoisyOracle(attack::ZeroCountOracle& inner, OracleNoiseConfig cfg)
    : inner_(inner), cfg_(cfg), rng_(cfg.seed) {
  Validate(cfg_);
}

NoisyOracle::NoisyOracle(std::unique_ptr<attack::ZeroCountOracle> owned,
                         OracleNoiseConfig cfg)
    : owned_(std::move(owned)), inner_(*owned_), cfg_(cfg), rng_(cfg.seed) {
  Validate(cfg_);
}

std::size_t NoisyOracle::Corrupt(std::size_t count) {
  if (cfg_.failure_prob > 0.0 && rng_.Chance(cfg_.failure_prob)) {
    ++injected_failures_;
    Metrics().faults.Add();
    throw attack::TransientOracleError("injected acquisition failure");
  }
  if (cfg_.count_noise_prob > 0.0 && rng_.Chance(cfg_.count_noise_prob)) {
    ++perturbed_counts_;
    Metrics().perturbations.Add();
    const int delta = rng_.UniformInt(1, cfg_.max_count_delta) *
                      (rng_.Chance(0.5) ? 1 : -1);
    if (delta < 0 && count < static_cast<std::size_t>(-delta)) return 0;
    return count + static_cast<std::size_t>(delta);
  }
  return count;
}

std::size_t NoisyOracle::ChannelNonZeros(
    const std::vector<attack::SparsePixel>& pixels, int channel) {
  ++queries_;
  return Corrupt(inner_.ChannelNonZeros(pixels, channel));
}

std::size_t NoisyOracle::TotalNonZeros(
    const std::vector<attack::SparsePixel>& pixels) {
  ++queries_;
  return Corrupt(inner_.TotalNonZeros(pixels));
}

int NoisyOracle::num_channels() const { return inner_.num_channels(); }

bool NoisyOracle::SetActivationThreshold(float threshold) {
  return inner_.SetActivationThreshold(threshold);
}

std::unique_ptr<attack::ZeroCountOracle> NoisyOracle::Clone() const {
  return Fork(clones_++);
}

std::unique_ptr<attack::ZeroCountOracle> NoisyOracle::Fork(
    std::uint64_t stream) const {
  std::unique_ptr<attack::ZeroCountOracle> inner_copy = inner_.Clone();
  if (!inner_copy) return nullptr;
  OracleNoiseConfig child = cfg_;
  child.seed = MixSeed(cfg_.seed, stream);
  return std::unique_ptr<attack::ZeroCountOracle>(
      new NoisyOracle(std::move(inner_copy), child));
}

}  // namespace sc::sim
