// Noisy decorator over the §4 zero-count side channel (DESIGN.md §8).
//
// A power/EM estimate of a write-burst length is not exact: the decoded
// non-zero count can be off by a few elements, and whole acquisitions fail
// outright. NoisyOracle injects both fault classes over any ZeroCountOracle,
// deterministically from a seed, raising TransientOracleError for failed
// acquisitions so robust drivers can retry.
#ifndef SC_SIM_NOISY_ORACLE_H_
#define SC_SIM_NOISY_ORACLE_H_

#include <cstdint>
#include <memory>

#include "attack/weights/oracle.h"
#include "support/rng.h"

namespace sc::sim {

struct OracleNoiseConfig {
  std::uint64_t seed = 1;
  // Probability that a returned count is perturbed by +/-U{1..max_count_delta}
  // (clamped at zero from below).
  double count_noise_prob = 0.0;
  int max_count_delta = 1;
  // Probability that a query fails entirely (TransientOracleError).
  double failure_prob = 0.0;

  bool enabled() const {
    return count_noise_prob > 0.0 || failure_prob > 0.0;
  }
};

// The documented reference oracle-noise level (README "Robustness").
OracleNoiseConfig ReferenceOracleNoise(std::uint64_t seed);

class NoisyOracle : public attack::ZeroCountOracle {
 public:
  // Non-owning wrap: `inner` must outlive this oracle.
  NoisyOracle(attack::ZeroCountOracle& inner, OracleNoiseConfig cfg);

  std::size_t ChannelNonZeros(const std::vector<attack::SparsePixel>& pixels,
                              int channel) override;
  std::size_t TotalNonZeros(
      const std::vector<attack::SparsePixel>& pixels) override;
  int num_channels() const override;
  std::size_t channel_elems() const override {
    return inner_.channel_elems();
  }
  bool SetActivationThreshold(float threshold) override;

  // Clones the inner oracle and forks the noise stream by an internal
  // counter; for order-independent parallel sweeps use Fork(stream).
  std::unique_ptr<attack::ZeroCountOracle> Clone() const override;
  std::unique_ptr<attack::ZeroCountOracle> Fork(
      std::uint64_t stream) const override;

  std::uint64_t injected_failures() const { return injected_failures_; }
  std::uint64_t perturbed_counts() const { return perturbed_counts_; }

 private:
  // Owning variant used by Clone()/Fork().
  NoisyOracle(std::unique_ptr<attack::ZeroCountOracle> owned,
              OracleNoiseConfig cfg);

  std::size_t Corrupt(std::size_t count);

  std::unique_ptr<attack::ZeroCountOracle> owned_;
  attack::ZeroCountOracle& inner_;
  OracleNoiseConfig cfg_;
  Rng rng_;
  std::uint64_t injected_failures_ = 0;
  std::uint64_t perturbed_counts_ = 0;
  mutable std::uint64_t clones_ = 0;
};

}  // namespace sc::sim

#endif  // SC_SIM_NOISY_ORACLE_H_
