// Measurement fault injection for side-channel acquisitions (robustness
// layer, DESIGN.md §8).
//
// A real probe between the DRAM bus and the adversary is not perfect: it
// drops transactions, timestamps them with jitter, fragments or coalesces
// bursts at its sampling boundary, and occasionally reports the same
// transaction twice. TraceNoiseModel applies exactly those corruptions to a
// clean simulator trace, deterministically from a single seed, so CI can
// replay any fault pattern bit-for-bit.
#ifndef SC_SIM_NOISE_H_
#define SC_SIM_NOISE_H_

#include <cstdint>

#include "trace/trace.h"

namespace sc::sim {

struct TraceNoiseConfig {
  std::uint64_t seed = 1;

  // Probability that an observed transaction is lost entirely.
  double drop_prob = 0.0;
  // Probability that an event's timestamp is perturbed by up to
  // +/- max_jitter_cycles. The probe observes the serial bus, so event
  // order is preserved; backwards-running timestamps are clamped to the
  // previous event's cycle (a monotonizing capture pass).
  double jitter_prob = 0.0;
  std::uint64_t max_jitter_cycles = 0;
  // Probability that a multi-byte burst is reported as two back-to-back
  // fragments (split point uniform inside the burst).
  double split_prob = 0.0;
  // Probability that a burst is coalesced with a directly following
  // contiguous same-direction burst.
  double merge_prob = 0.0;
  // Probability that a transaction is reported twice (probe double-sample);
  // the duplicate carries the same address range, so unique byte coverage
  // is unaffected but event counts and volumes are.
  double spurious_prob = 0.0;

  // True when every rate is zero: Apply() is then the identity.
  bool enabled() const {
    return drop_prob > 0.0 || jitter_prob > 0.0 || split_prob > 0.0 ||
           merge_prob > 0.0 || spurious_prob > 0.0;
  }
};

// The documented reference noise level (README "Robustness"): the level at
// which the tier-1/nightly regressions assert full recovery still succeeds.
TraceNoiseConfig ReferenceTraceNoise(std::uint64_t seed);

class TraceNoiseModel : public trace::TraceTransform {
 public:
  explicit TraceNoiseModel(TraceNoiseConfig cfg);

  const TraceNoiseConfig& config() const { return cfg_; }

  // One corrupted acquisition of `in`. Deterministic in (cfg.seed, in).
  trace::Trace Apply(const trace::Trace& in) const override;

  // The k-th of K independent acquisitions of the same execution: same
  // noise statistics, independent fault pattern. ApplyNth(t, 0) != Apply(t)
  // in general; determinism holds per (cfg.seed, k, in).
  trace::Trace ApplyNth(const trace::Trace& in, std::uint64_t k) const;

  // Pooled variants for acquisition loops: `out` is cleared (its chunk
  // storage survives) and refilled, so a campaign drawing K acquisitions
  // reuses one output trace with zero steady-state allocation. `out` must
  // not alias `in`. Bit-for-bit identical to the returning overloads.
  void ApplyTo(const trace::Trace& in, trace::Trace* out) const;
  void ApplyNthTo(const trace::Trace& in, std::uint64_t k,
                  trace::Trace* out) const;

 private:
  trace::Trace ApplySeeded(const trace::Trace& in, std::uint64_t seed) const;
  void ApplySeededTo(const trace::Trace& in, std::uint64_t seed,
                     trace::Trace* out) const;

  TraceNoiseConfig cfg_;
};

}  // namespace sc::sim

#endif  // SC_SIM_NOISE_H_
