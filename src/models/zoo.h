// Victim model builders: the four networks the paper evaluates (Table 3)
// plus helpers for the weight-attack case study.
//
// Weight values are deterministic pseudo-random (He init) — the structure
// attack depends only on geometry and timing, and the weight-attack case
// study generates its own weights (CompressedConv1Weights).
#ifndef SC_MODELS_ZOO_H_
#define SC_MODELS_ZOO_H_

#include <cstdint>
#include <vector>

#include "nn/geometry.h"
#include "nn/network.h"
#include "nn/tensor.h"

namespace sc::models {

// 4 weighted layers, 28x28x1 input, 10 classes (Caffe LeNet geometry).
nn::Network MakeLeNet(std::uint64_t seed = 1);

// 4 weighted layers, 32x32x3 input, 10 classes (CIFAR-10 quick geometry).
nn::Network MakeConvNet(std::uint64_t seed = 1);

// 8 weighted layers, 227x227x3 input, 1000 classes (AlexNet; LRN layers are
// omitted — they run on-chip and leave no off-chip trace).
nn::Network MakeAlexNet(std::uint64_t seed = 1);

struct SqueezeNetOptions {
  // Simple-bypass connections around these fire modules (2-indexed as in
  // the paper: fire2..fire9). Empty = vanilla SqueezeNet v1.0.
  std::vector<int> bypass_fires{3, 5, 7, 9};
  std::uint64_t seed = 1;
};

// 18 weighted layers (2 conv + 8 fire modules x 2), 224x224x3 input,
// 1000 classes; SqueezeNet v1.0 with optional simple bypass.
nn::Network MakeSqueezeNet(const SqueezeNetOptions& opts = {});

// Small GoogLeNet-style victim: a stem convolution, two inception modules
// (four parallel branches each: 1x1; 1x1->3x3; 1x1->5x5; 3x3/1 max pool ->
// 1x1; depth-concatenated), a 1x1 classifier conv and global average
// pooling. Exercises 4-way branching and the weight-free pool branch the
// paper's networks never produce. 64x64x3 input, 10 classes.
nn::Network MakeInceptionNet(std::uint64_t seed = 1);

// Weights mimicking the compressed AlexNet CONV1 of the paper's §4.2 case
// study: {96, 3, 11, 11} He-initialized, smallest `zero_fraction` of
// magnitudes pruned to exact zeros (Deep Compression prunes ~16% of CONV1).
struct CompressedConv1 {
  nn::Tensor weights;  // {96, 3, 11, 11}
  nn::Tensor bias;     // {96}; magnitudes in [0.05, 0.5], mixed signs
};
CompressedConv1 MakeCompressedConv1Weights(float zero_fraction = 0.16f,
                                           std::uint64_t seed = 7);

// Single fused-stage victim (conv [+ReLU] [+pool]) with the given secrets,
// for driving the weight attack against the accelerator simulator.
struct ConvStageVictimSpec {
  int in_depth = 3;
  int in_width = 32;
  int out_depth = 8;
  int filter = 3;
  int stride = 1;
  int pad = 0;
  bool relu = true;
  nn::PoolKind pool = nn::PoolKind::kNone;
  int pool_window = 0;
  int pool_stride = 0;
  bool relu_before_pool = true;  // false: conv -> pool -> relu
};
nn::Network MakeConvStageVictim(const ConvStageVictimSpec& spec,
                                const nn::Tensor& weights,
                                const nn::Tensor& bias);

}  // namespace sc::models

#endif  // SC_MODELS_ZOO_H_
