#include "models/zoo.h"

#include <algorithm>
#include <cmath>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"
#include "support/check.h"
#include "support/rng.h"

namespace sc::models {

namespace {

using nn::Network;

// conv + relu (+ max pool) block.
int ConvBlock(Network& net, int src, const std::string& name, int in_d,
              int out_d, int f, int s, int p, int pool_f = 0, int pool_s = 0) {
  int cur = net.Add(
      std::make_unique<nn::Conv2D>(name, in_d, out_d, f, s, p), {src});
  cur = net.Add(std::make_unique<nn::Relu>(name + "_relu"), {cur});
  if (pool_f > 0)
    cur = net.Add(nn::MakeMaxPool(name + "_pool", pool_f, pool_s), {cur});
  return cur;
}

int FcBlock(Network& net, int src, const std::string& name, int in_f,
            int out_f, bool relu) {
  int cur = net.Add(std::make_unique<nn::FullyConnected>(name, in_f, out_f),
                    {src});
  if (relu) cur = net.Add(std::make_unique<nn::Relu>(name + "_relu"), {cur});
  return cur;
}

}  // namespace

nn::Network MakeLeNet(std::uint64_t seed) {
  Network net(nn::Shape{1, 28, 28});
  int cur = ConvBlock(net, nn::kInputNode, "conv1", 1, 20, 5, 1, 0, 2, 2);
  cur = ConvBlock(net, cur, "conv2", 20, 50, 5, 1, 0, 2, 2);
  cur = FcBlock(net, cur, "ip1", 4 * 4 * 50, 500, /*relu=*/true);
  FcBlock(net, cur, "ip2", 500, 10, /*relu=*/false);
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

// CIFAR-scale ConvNet. The paper does not specify its ConvNet beyond "4
// layers"; this one follows the cifar10-quick lineage while satisfying the
// paper's Eq. (5) (F_conv <= W_IFM / 2) on every layer, which the attack's
// constraint system assumes of its victims.
nn::Network MakeConvNet(std::uint64_t seed) {
  Network net(nn::Shape{3, 32, 32});
  int cur = ConvBlock(net, nn::kInputNode, "conv1", 3, 32, 5, 1, 2, 2, 2);
  cur = ConvBlock(net, cur, "conv2", 32, 32, 5, 1, 2, 2, 2);
  cur = ConvBlock(net, cur, "conv3", 32, 64, 3, 1, 1, 2, 2);
  FcBlock(net, cur, "ip1", 4 * 4 * 64, 10, /*relu=*/false);
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

nn::Network MakeAlexNet(std::uint64_t seed) {
  Network net(nn::Shape{3, 227, 227});
  int cur = ConvBlock(net, nn::kInputNode, "conv1", 3, 96, 11, 4, 0, 3, 2);
  cur = ConvBlock(net, cur, "conv2", 96, 256, 5, 1, 2, 3, 2);
  cur = ConvBlock(net, cur, "conv3", 256, 384, 3, 1, 1);
  cur = ConvBlock(net, cur, "conv4", 384, 384, 3, 1, 1);
  cur = ConvBlock(net, cur, "conv5", 384, 256, 3, 1, 1, 3, 2);
  cur = FcBlock(net, cur, "fc6", 6 * 6 * 256, 4096, /*relu=*/true);
  cur = FcBlock(net, cur, "fc7", 4096, 4096, /*relu=*/true);
  FcBlock(net, cur, "fc8", 4096, 1000, /*relu=*/false);
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

nn::Network MakeSqueezeNet(const SqueezeNetOptions& opts) {
  Network net(nn::Shape{3, 224, 224});

  auto fire = [&](int src, const std::string& name, int in_d, int squeeze,
                  int expand) {
    int s = ConvBlock(net, src, name + "_squeeze1x1", in_d, squeeze, 1, 1, 0);
    int e1 =
        ConvBlock(net, s, name + "_expand1x1", squeeze, expand, 1, 1, 0);
    int e3 =
        ConvBlock(net, s, name + "_expand3x3", squeeze, expand, 3, 1, 1);
    return net.Add(std::make_unique<nn::Concat>(name + "_concat", 2),
                   {e1, e3});
  };
  auto bypass_wanted = [&](int fire_idx) {
    return std::find(opts.bypass_fires.begin(), opts.bypass_fires.end(),
                     fire_idx) != opts.bypass_fires.end();
  };

  int cur = ConvBlock(net, nn::kInputNode, "conv1", 3, 96, 7, 2, 0);
  cur = net.Add(nn::MakeMaxPool("pool1", 3, 2), {cur});

  struct FireSpec {
    int squeeze, expand;
    bool pool_after;
  };
  // SqueezeNet v1.0: fire2..fire9; pools after fire4 and fire8.
  const FireSpec specs[] = {{16, 64, false}, {16, 64, false},
                            {32, 128, true}, {32, 128, false},
                            {48, 192, false}, {48, 192, false},
                            {64, 256, true}, {64, 256, false}};
  int in_d = 96;
  for (int k = 0; k < 8; ++k) {
    const int fire_idx = k + 2;
    const int out = fire(cur, "fire" + std::to_string(fire_idx), in_d,
                         specs[k].squeeze, specs[k].expand);
    const int out_d = 2 * specs[k].expand;
    if (bypass_wanted(fire_idx)) {
      SC_CHECK_MSG(in_d == out_d, "simple bypass needs matching depths at "
                                      << "fire" << fire_idx);
      cur = net.Add(std::make_unique<nn::EltwiseAdd>(
                        "bypass" + std::to_string(fire_idx), 2),
                    {out, cur});
    } else {
      cur = out;
    }
    if (specs[k].pool_after) {
      cur = net.Add(
          nn::MakeMaxPool("pool" + std::to_string(fire_idx), 3, 2), {cur});
    }
    in_d = out_d;
  }

  cur = ConvBlock(net, cur, "conv10", 512, 1000, 1, 1, 0);
  // Global average pooling down to one score per class.
  const int final_w = net.output_shape(cur)[1];
  net.Add(nn::MakeAvgPool("gpool", final_w, 1), {cur});

  sc::Rng rng(opts.seed);
  nn::InitNetwork(net, rng);
  return net;
}

nn::Network MakeInceptionNet(std::uint64_t seed) {
  Network net(nn::Shape{3, 64, 64});

  auto inception = [&](int src, const std::string& name, int in_d, int b1,
                       int b2_reduce, int b2, int b3_reduce, int b3,
                       int b4) {
    const int br1 = ConvBlock(net, src, name + "_1x1", in_d, b1, 1, 1, 0);
    int br2 = ConvBlock(net, src, name + "_3x3r", in_d, b2_reduce, 1, 1, 0);
    br2 = ConvBlock(net, br2, name + "_3x3", b2_reduce, b2, 3, 1, 1);
    int br3 = ConvBlock(net, src, name + "_5x5r", in_d, b3_reduce, 1, 1, 0);
    br3 = ConvBlock(net, br3, name + "_5x5", b3_reduce, b3, 5, 1, 2);
    int br4 = net.Add(nn::MakeMaxPool(name + "_pool", 3, 1, 1), {src});
    br4 = ConvBlock(net, br4, name + "_poolproj", in_d, b4, 1, 1, 0);
    return net.Add(std::make_unique<nn::Concat>(name + "_concat", 4),
                   {br1, br2, br3, br4});
  };

  int cur = ConvBlock(net, nn::kInputNode, "stem", 3, 16, 3, 1, 1, 2, 2);
  cur = inception(cur, "inc1", 16, 8, 6, 12, 4, 6, 6);      // out 32 @32x32
  cur = net.Add(nn::MakeMaxPool("pool1", 2, 2), {cur});     // 16x16
  cur = inception(cur, "inc2", 32, 12, 8, 16, 4, 8, 12);    // out 48 @16x16
  cur = ConvBlock(net, cur, "classifier", 48, 10, 1, 1, 0);
  net.Add(nn::MakeAvgPool("gpool", 16, 1), {cur});
  sc::Rng rng(seed);
  nn::InitNetwork(net, rng);
  return net;
}

CompressedConv1 MakeCompressedConv1Weights(float zero_fraction,
                                           std::uint64_t seed) {
  SC_CHECK(zero_fraction >= 0.0f && zero_fraction < 1.0f);
  CompressedConv1 out;
  out.weights = nn::Tensor(nn::Shape{96, 3, 11, 11});
  out.bias = nn::Tensor(nn::Shape{96});
  sc::Rng rng(seed);
  nn::HeInit(out.weights, 3 * 11 * 11, rng);

  // Magnitude pruning: zero out the globally smallest fraction.
  std::vector<float> mags(out.weights.numel());
  for (std::size_t i = 0; i < mags.size(); ++i)
    mags[i] = std::fabs(out.weights[i]);
  std::vector<float> sorted = mags;
  std::sort(sorted.begin(), sorted.end());
  const float cutoff =
      sorted[static_cast<std::size_t>(zero_fraction *
                                      static_cast<float>(sorted.size()))];
  for (std::size_t i = 0; i < out.weights.numel(); ++i)
    if (mags[i] < cutoff) out.weights[i] = 0.0f;

  // Biases: mixed signs, bounded away from zero so ratios are defined.
  for (int k = 0; k < 96; ++k) {
    const float mag = rng.UniformF(0.05f, 0.5f);
    out.bias.at(k) = rng.Chance(0.5) ? mag : -mag;
  }
  return out;
}

nn::Network MakeConvStageVictim(const ConvStageVictimSpec& spec,
                                const nn::Tensor& weights,
                                const nn::Tensor& bias) {
  Network net(nn::Shape{spec.in_depth, spec.in_width, spec.in_width});
  auto conv = std::make_unique<nn::Conv2D>("victim_conv", spec.in_depth,
                                           spec.out_depth, spec.filter,
                                           spec.stride, spec.pad);
  SC_CHECK(conv->weights().shape() == weights.shape());
  SC_CHECK(conv->bias().shape() == bias.shape());
  conv->weights() = weights;
  conv->bias() = bias;
  int cur = net.Add(std::move(conv), {nn::kInputNode});

  auto add_relu = [&](int src) {
    return net.Add(std::make_unique<nn::Relu>("victim_relu"), {src});
  };
  auto add_pool = [&](int src) {
    auto layer = spec.pool == nn::PoolKind::kMax
                     ? nn::MakeMaxPool("victim_pool", spec.pool_window,
                                       spec.pool_stride)
                     : nn::MakeAvgPool("victim_pool", spec.pool_window,
                                       spec.pool_stride);
    return net.Add(std::move(layer), {src});
  };

  if (spec.pool == nn::PoolKind::kNone) {
    if (spec.relu) cur = add_relu(cur);
  } else if (spec.relu_before_pool) {
    if (spec.relu) cur = add_relu(cur);
    cur = add_pool(cur);
  } else {
    cur = add_pool(cur);
    if (spec.relu) cur = add_relu(cur);
  }
  return net;
}

}  // namespace sc::models
