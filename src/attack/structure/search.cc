#include "attack/structure/search.h"

#include <algorithm>
#include <map>
#include <utility>

#include "attack/structure/schedule.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::attack {

namespace {

// Search metrics (DESIGN.md §9).
struct SearchMetrics {
  obs::Counter& timing_rejections = obs::Registry::Get().GetCounter(
      "attack.structure.search.timing_rejections");
  obs::Counter& group_rejections = obs::Registry::Get().GetCounter(
      "attack.structure.search.group_rejections");
  obs::Counter& structures = obs::Registry::Get().GetCounter(
      "attack.structure.search.structures_found");
};

SearchMetrics& Metrics() {
  static SearchMetrics m;
  return m;
}

// Dimensions of one ObservedInput given the geometries already chosen for
// its writers. Returns false when the writers' shapes are incompatible
// (unequal widths feeding a concat) - a dead end for the search.
bool InputDims(const ObservedInput& in,
               const std::vector<LayerConfig>& chosen, int* w, int* d) {
  SC_CHECK(!in.writer_segments.empty());
  if (in.writer_segments.size() == 1 && in.writer_segments[0] == -1) {
    return false;  // network input; caller handles it with prior knowledge
  }
  int width = -1;
  int depth = 0;
  for (int t : in.writer_segments) {
    SC_CHECK_MSG(t >= 0 && static_cast<std::size_t>(t) < chosen.size(),
                 "forward dependency in observation graph");
    const nn::LayerGeometry& g = chosen[static_cast<std::size_t>(t)].geom;
    if (width == -1) width = g.w_ofm;
    if (g.w_ofm != width) return false;  // concat widths must agree
    depth += g.d_ofm;
  }
  *w = width;
  *d = depth;
  return true;
}

struct SearchState {
  const std::vector<LayerObservation>& obs;
  const SearchConfig& cfg;
  std::vector<LayerConfig> chosen;
  std::vector<CandidateStructure>* out;
  // Memoized per-(segment, w_ifm, d_ifm) candidate lists.
  std::map<std::tuple<int, int, int>, std::vector<nn::LayerGeometry>> memo;
  // Union of candidates seen per segment (Table 4-style reporting).
  std::vector<std::vector<nn::LayerGeometry>>* per_layer;
};

const std::vector<nn::LayerGeometry>& CandidatesFor(SearchState& st, int si,
                                                    int w_ifm, int d_ifm) {
  const auto key = std::make_tuple(si, w_ifm, d_ifm);
  auto it = st.memo.find(key);
  if (it != st.memo.end()) return it->second;

  const LayerObservation& o = st.obs[static_cast<std::size_t>(si)];
  const IfmDims dims{{w_ifm, d_ifm}};
  std::vector<nn::LayerGeometry> cands;
  switch (o.role) {
    case SegmentRole::kConvOrFc:
      cands = EnumerateConvConfigs(o, dims, st.cfg.solver);
      break;
    case SegmentRole::kPool:
      cands = EnumerateStandalonePoolConfigs(o, dims, st.cfg.solver);
      break;
    case SegmentRole::kEltwise:
      cands = EnumerateEltwiseConfigs(o, dims, st.cfg.solver);
      break;
    case SegmentRole::kUnknown:
      break;  // unclassifiable segment: dead end
  }
  auto& slot = st.memo[key];
  slot = std::move(cands);
  // Record for reporting.
  auto& seen = (*st.per_layer)[static_cast<std::size_t>(si)];
  for (const nn::LayerGeometry& g : slot)
    if (std::find(seen.begin(), seen.end(), g) == seen.end())
      seen.push_back(g);
  return slot;
}

// True when the structure satisfies the identical-modules assumption.
bool GroupsConsistent(const std::vector<LayerConfig>& layers,
                      const std::vector<std::vector<int>>& groups) {
  for (const auto& group : groups) {
    if (group.size() < 2) continue;
    const nn::LayerGeometry& ref =
        layers[static_cast<std::size_t>(group[0])].geom;
    for (std::size_t k = 1; k < group.size(); ++k) {
      const nn::LayerGeometry& g =
          layers[static_cast<std::size_t>(group[k])].geom;
      if (g.f_conv != ref.f_conv || g.s_conv != ref.s_conv ||
          g.p_conv != ref.p_conv || g.has_pool() != ref.has_pool() ||
          g.f_pool != ref.f_pool || g.s_pool != ref.s_pool ||
          g.p_pool != ref.p_pool)
        return false;
    }
  }
  return true;
}

// One surviving choice for a segment: a geometry plus the timing-ratio
// bracket accumulated so far.
struct Branch {
  SegmentRole role = SegmentRole::kUnknown;
  nn::LayerGeometry geom;
  double lo = 0.0;
  double hi = 0.0;
};

// Enumerates segment si's surviving (dims x candidate) choices in the order
// the serial depth-first search visits them.
std::vector<Branch> BranchesAt(SearchState& st, std::size_t si,
                               double min_ratio, double max_ratio) {
  const LayerObservation& o = st.obs[si];

  // Determine the input dimensions allowed by earlier choices.
  std::vector<std::pair<int, int>> dims;
  bool from_network_input = false;
  if (o.inputs.size() == 1) {
    int w = 0, d = 0;
    if (o.inputs[0].writer_segments == std::vector<int>{-1}) {
      from_network_input = true;
    } else if (InputDims(o.inputs[0], st.chosen, &w, &d)) {
      dims.emplace_back(w, d);
    }
  } else if (!o.inputs.empty()) {
    // Multi-operand layer (eltwise): all operands must agree.
    int w = 0, d = 0;
    bool ok = InputDims(o.inputs[0], st.chosen, &w, &d);
    for (std::size_t k = 1; ok && k < o.inputs.size(); ++k) {
      int w2 = 0, d2 = 0;
      ok = InputDims(o.inputs[k], st.chosen, &w2, &d2) && w2 == w && d2 == d;
    }
    if (ok) dims.emplace_back(w, d);
  }
  if (from_network_input) {
    if (st.cfg.known_input_width > 0 && st.cfg.known_input_depth > 0) {
      dims.emplace_back(st.cfg.known_input_width, st.cfg.known_input_depth);
    } else {
      dims = FactorizeFmapSizeSlack(o.size_ifm, st.cfg.solver.size_slack);
    }
  }

  const bool last = (si + 1 == st.obs.size());
  std::vector<Branch> branches;
  for (const auto& [w_ifm, d_ifm] : dims) {
    // Size consistency between the chosen dims and the observed reads is
    // enforced inside the per-role enumerators (the conv solver's coverage
    // constraint tolerates an unread tail; eltwise requires equality).
    for (const nn::LayerGeometry& g : CandidatesFor(st, static_cast<int>(si),
                                                    w_ifm, d_ifm)) {
      if (last && st.cfg.known_output_classes > 0) {
        if (g.d_ofm != st.cfg.known_output_classes || g.w_ofm != 1) continue;
      }
      double lo = min_ratio, hi = max_ratio;
      const bool bandwidth_model =
          st.cfg.macs_per_cycle > 0 && st.cfg.bytes_per_cycle > 0;
      if (st.cfg.timing_tolerance > 1.0 && o.role == SegmentRole::kConvOrFc &&
          (bandwidth_model || !g.IsFullyConnected()) && o.cycles > 0) {
        double work = static_cast<double>(g.ConvMacCount());
        if (bandwidth_model) {
          // Candidate byte traffic: predicted from the backend's schedule
          // when reported, else the observed count (legacy weight-
          // stationary assumption). With a schedule the compute term also
          // charges the schedule's drain ops; pool SIMD stays absorbed by
          // the tolerance, as before.
          double compute = work / st.cfg.macs_per_cycle;
          double bytes = static_cast<double>(o.bytes_accessed);
          if (st.cfg.schedule) {
            bytes = static_cast<double>(
                PredictLayerTraffic(g, *st.cfg.schedule));
            if (st.cfg.schedule->simd_lanes > 0)
              compute += static_cast<double>(
                             PredictLayerDrainOps(g, *st.cfg.schedule)) /
                         st.cfg.schedule->simd_lanes;
          }
          work = std::max(compute, bytes / st.cfg.bytes_per_cycle);
        }
        const double r = work / static_cast<double>(o.cycles);
        lo = (lo == 0) ? r : std::min(lo, r);
        hi = std::max(hi, r);
        if (lo > 0 && hi / lo > st.cfg.timing_tolerance) {
          Metrics().timing_rejections.Add();
          continue;
        }
      }
      branches.push_back(Branch{o.role, g, lo, hi});
    }
  }
  return branches;
}

void Recurse(SearchState& st, std::size_t si, double min_ratio,
             double max_ratio) {
  st.cfg.cancel.ThrowIfStopped("structure search");
  if (si == st.obs.size()) {
    if (!GroupsConsistent(st.chosen, st.cfg.identical_groups)) {
      Metrics().group_rejections.Add();
      return;
    }
    SC_CHECK_MSG(st.out->size() < st.cfg.max_structures,
                 "structure explosion: > " << st.cfg.max_structures
                                           << " candidates");
    CandidateStructure cs;
    cs.layers = st.chosen;
    cs.timing_spread = (min_ratio > 0) ? max_ratio / min_ratio : 1.0;
    st.out->push_back(std::move(cs));
    Metrics().structures.Add();
    return;
  }

  for (const Branch& b : BranchesAt(st, si, min_ratio, max_ratio)) {
    st.chosen[si] = LayerConfig{b.role, b.geom};
    Recurse(st, si + 1, b.lo, b.hi);
  }
  st.chosen[si] = LayerConfig{};
}

}  // namespace

SearchResult SearchStructures(const std::vector<LayerObservation>& obs,
                              const SearchConfig& cfg) {
  SearchResult result;
  result.per_layer_candidates.resize(obs.size());
  if (obs.empty()) return result;

  SearchState root{obs, cfg, std::vector<LayerConfig>(obs.size()),
                   &result.structures, {}, &result.per_layer_candidates};
  // The root segment's choices are enumerated once, up front (this also
  // records its per-layer candidates); each choice spans an independent
  // sub-search.
  const std::vector<Branch> branches = BranchesAt(root, 0, 0.0, 0.0);

  if (support::ThreadPool::GlobalThreads() <= 1 || branches.size() < 2) {
    for (const Branch& b : branches) {
      root.chosen[0] = LayerConfig{b.role, b.geom};
      Recurse(root, 1, b.lo, b.hi);
    }
    return result;
  }

  // Parallel fan-out over the root branches. Each worker explores its
  // sub-tree with private state (memo, chosen vector, outputs); partial
  // results are merged in branch order afterwards, so both the structure
  // list and the per-layer candidate lists come out in exactly the order
  // the serial depth-first search produces.
  struct BranchResult {
    std::vector<CandidateStructure> structures;
    std::vector<std::vector<nn::LayerGeometry>> per_layer;
  };
  std::vector<BranchResult> partial(branches.size());
  support::ParallelFor(
      0, static_cast<std::int64_t>(branches.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t bi = lo; bi < hi; ++bi) {
          const Branch& b = branches[static_cast<std::size_t>(bi)];
          BranchResult& pr = partial[static_cast<std::size_t>(bi)];
          pr.per_layer.resize(obs.size());
          SearchState st{obs, cfg, std::vector<LayerConfig>(obs.size()),
                         &pr.structures, {}, &pr.per_layer};
          st.chosen[0] = LayerConfig{b.role, b.geom};
          Recurse(st, 1, b.lo, b.hi);
        }
      });

  for (BranchResult& pr : partial) {
    for (CandidateStructure& cs : pr.structures) {
      SC_CHECK_MSG(result.structures.size() < cfg.max_structures,
                   "structure explosion: > " << cfg.max_structures
                                             << " candidates");
      result.structures.push_back(std::move(cs));
    }
    for (std::size_t si = 0; si < obs.size(); ++si) {
      auto& seen = result.per_layer_candidates[si];
      for (const nn::LayerGeometry& g : pr.per_layer[si])
        if (std::find(seen.begin(), seen.end(), g) == seen.end())
          seen.push_back(g);
    }
  }
  return result;
}

std::vector<std::vector<int>> DetectFireModuleGroups(
    const std::vector<LayerObservation>& obs) {
  // consumers[t] = conv segments whose input was written by segment t.
  std::map<int, std::vector<int>> consumers;
  for (const LayerObservation& o : obs) {
    if (o.role != SegmentRole::kConvOrFc) continue;
    for (const ObservedInput& in : o.inputs)
      for (int t : in.writer_segments)
        if (t >= 0) consumers[t].push_back(o.segment);
  }
  std::vector<int> squeezes, expand_a, expand_b;
  for (const LayerObservation& o : obs) {
    if (o.role != SegmentRole::kConvOrFc) continue;
    auto it = consumers.find(o.segment);
    if (it == consumers.end() || it->second.size() != 2) continue;
    squeezes.push_back(o.segment);
    expand_a.push_back(std::min(it->second[0], it->second[1]));
    expand_b.push_back(std::max(it->second[0], it->second[1]));
  }
  if (squeezes.size() < 2) return {};
  return {squeezes, expand_a, expand_b};
}

}  // namespace sc::attack
