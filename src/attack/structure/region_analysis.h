// Region discovery and role classification over a segmented trace
// (paper §3.1, Algorithm 1 step 2).
//
// Tensors live in contiguous DRAM regions separated by allocator guard
// gaps, so the union of all touched bytes splits into per-tensor regions.
// A region that is never written holds weights (they are read-only during
// inference) or the network input; a region written in segment i and read
// in segment j > i carries an OFM -> IFM dependency from layer i to layer
// j. Unique covered bytes give SIZE_IFM / SIZE_OFM / SIZE_FLTR.
#ifndef SC_ATTACK_STRUCTURE_REGION_ANALYSIS_H_
#define SC_ATTACK_STRUCTURE_REGION_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "attack/structure/observation.h"
#include "attack/structure/segmentation.h"
#include "trace/interval.h"
#include "trace/trace.h"

namespace sc::attack {

struct AnalysisConfig {
  // Element size of the accelerator's off-chip number format. The adversary
  // knows the data type (it is a property of the accelerator, not the
  // model).
  int element_bytes = 4;
  // Maximum gap (bytes) between accesses that still belong to one tensor;
  // anything larger is an allocator guard between tensors.
  std::uint64_t region_gap = 1024;
  // W_IFM^2 * D_IFM of the network input, known from the threat model (the
  // adversary feeds the input). Used to tell the input region apart from
  // first-layer weights. 0 = unknown (falls back to a size heuristic).
  long long known_input_elems = 0;
  // Inflation (elements) the input-region match tolerates above
  // known_input_elems. A padding defense that rounds bursts up to a fixed
  // transaction size grows every observed region by up to one transaction,
  // so the adaptive attacker raises this alongside SolverConfig::size_slack
  // (defense/eval.h). 0 = exact-size matching (default attack).
  long long input_elems_slack = 0;
};

// One discovered DRAM region with its global access summary.
struct RegionSummary {
  trace::AddrInterval span;
  bool ever_written = false;
  bool is_network_input = false;
  long long elems = 0;  // unique elements touched over the whole trace
};

struct TraceAnalysis {
  std::vector<Segment> segments;
  std::vector<RegionSummary> regions;
  std::vector<LayerObservation> observations;  // aligned with segments
};

TraceAnalysis AnalyzeTrace(const trace::Trace& trace,
                           const AnalysisConfig& cfg);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_REGION_ANALYSIS_H_
