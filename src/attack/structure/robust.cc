#include "attack/structure/robust.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::attack {

namespace {

// Consensus metrics (DESIGN.md §9).
struct RobustMetrics {
  obs::Counter& acquisitions = obs::Registry::Get().GetCounter(
      "attack.structure.robust.acquisitions");
  obs::Counter& analyzable = obs::Registry::Get().GetCounter(
      "attack.structure.robust.analyzable");
  obs::Counter& usable = obs::Registry::Get().GetCounter(
      "attack.structure.robust.usable");
  obs::Counter& agreeing = obs::Registry::Get().GetCounter(
      "attack.structure.robust.agreeing_votes");
  obs::Counter& escalations = obs::Registry::Get().GetCounter(
      "attack.structure.robust.slack_escalations");
};

RobustMetrics& Metrics() {
  static RobustMetrics m;
  return m;
}

// Lower median (deterministic for even vote counts). Consumes v.
template <typename T>
T MedianInPlace(std::vector<T>& v) {
  SC_CHECK(!v.empty());
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

// The discrete part of an observation — everything voted on as a unit.
// Sizes/cycles are healed per quantity instead; mixing them into the key
// would fragment the vote under even light noise.
struct ShapeKey {
  SegmentRole role = SegmentRole::kUnknown;
  bool reads_network_input = false;
  std::vector<std::vector<int>> writers;

  bool operator==(const ShapeKey&) const = default;
};

ShapeKey KeyOf(const LayerObservation& o) {
  ShapeKey k;
  k.role = o.role;
  k.reads_network_input = o.reads_network_input;
  for (const ObservedInput& in : o.inputs) k.writers.push_back(in.writer_segments);
  return k;
}

// Majority vote one segment's observation across the usable acquisitions.
LayerConsensus VoteSegment(
    const std::vector<const LayerObservation*>& votes, int segment) {
  // Modal shape key, first-seen tie-break.
  std::vector<std::pair<ShapeKey, int>> tally;
  for (const LayerObservation* o : votes) {
    const ShapeKey k = KeyOf(*o);
    auto it = std::find_if(tally.begin(), tally.end(),
                           [&](const auto& e) { return e.first == k; });
    if (it == tally.end())
      tally.emplace_back(k, 1);
    else
      ++it->second;
  }
  const auto modal = std::max_element(
      tally.begin(), tally.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<const LayerObservation*> matching;
  for (const LayerObservation* o : votes)
    if (KeyOf(*o) == modal->first) matching.push_back(o);

  LayerConsensus lc;
  lc.usable_votes = static_cast<int>(votes.size());
  LayerObservation& c = lc.observation;
  c.segment = segment;
  c.role = modal->first.role;
  c.reads_network_input = modal->first.reads_network_input;

  auto median_of = [&](auto select) {
    std::vector<decltype(select(*matching.front()))> vals;
    for (const LayerObservation* o : matching) vals.push_back(select(*o));
    return MedianInPlace(vals);
  };
  // Region sizes are unique-byte coverage: split/merge/spurious faults
  // provably preserve coverage and jitter cannot push an event across a
  // segment gap, so the only fault that moves a size is an event drop —
  // and drops strictly shrink it. The union-best estimator across
  // acquisitions is therefore the maximum, which recovers the exact size
  // unless some byte was dropped in *every* acquisition.
  auto max_of = [&](auto select) {
    auto best = select(*matching.front());
    for (const LayerObservation* o : matching)
      best = std::max(best, select(*o));
    return best;
  };
  c.size_ifm = max_of([](const LayerObservation& o) { return o.size_ifm; });
  c.size_ofm = max_of([](const LayerObservation& o) { return o.size_ofm; });
  c.size_fltr = max_of([](const LayerObservation& o) { return o.size_fltr; });
  c.cycles = median_of([](const LayerObservation& o) { return o.cycles; });
  c.bytes_accessed =
      median_of([](const LayerObservation& o) { return o.bytes_accessed; });
  for (std::size_t k = 0; k < modal->first.writers.size(); ++k) {
    ObservedInput in;
    in.writer_segments = modal->first.writers[k];
    in.elems = max_of(
        [&](const LayerObservation& o) { return o.inputs[k].elems; });
    c.inputs.push_back(std::move(in));
  }

  for (const LayerObservation* o : matching) {
    const bool exact = o->size_ifm == c.size_ifm &&
                       o->size_ofm == c.size_ofm &&
                       o->size_fltr == c.size_fltr;
    if (exact) ++lc.agreeing_votes;
  }
  return lc;
}

}  // namespace

std::vector<LayerObservation> RobustStructureResult::observations() const {
  std::vector<LayerObservation> obs;
  obs.reserve(consensus.size());
  for (const LayerConsensus& lc : consensus) obs.push_back(lc.observation);
  return obs;
}

AcquisitionAnalysis AnalyzeAcquisition(const trace::Trace& trace,
                                       const RobustStructureConfig& cfg) {
  cfg.attack.search.cancel.ThrowIfStopped("acquisition analysis");
  AcquisitionAnalysis out;
  // A corrupted trace can make AnalyzeTrace reject its own segmentation
  // (ambiguous input region, no identifiable writer); such acquisitions
  // are discarded, not fatal. Cancellation must escape the retry/discard
  // logic, so it is rethrown before the generic Error handler.
  try {
    out.observations = AnalyzeTrace(trace, cfg.attack.analysis).observations;
    out.analyzable = true;
  } catch (const CancelledError&) {
    throw;
  } catch (const Error&) {
    // unusable acquisition
  }
  return out;
}

RobustStructureResult ConsensusSearch(
    const std::vector<AcquisitionAnalysis>& analyses,
    const RobustStructureConfig& cfg) {
  SC_CHECK_MSG(!analyses.empty(), "robust structure attack needs >= 1 trace");
  SC_CHECK_MSG(!cfg.slack_ladder.empty(), "empty slack ladder");
  const support::CancelToken& cancel = cfg.attack.search.cancel;

  RobustStructureResult result;
  result.acquisitions = static_cast<int>(analyses.size());

  // Majority segment count (tie: fewer segments, the conservative read).
  std::vector<std::pair<std::size_t, int>> count_votes;
  for (const auto& a : analyses) {
    if (!a.analyzable) continue;
    ++result.analyzable;
    const std::size_t n = a.observations.size();
    auto it = std::find_if(count_votes.begin(), count_votes.end(),
                           [&](const auto& e) { return e.first == n; });
    if (it == count_votes.end())
      count_votes.emplace_back(n, 1);
    else
      ++it->second;
  }
  SC_CHECK_MSG(result.analyzable > 0, "no acquisition was analyzable");
  std::sort(count_votes.begin(), count_votes.end());
  std::size_t modal_count = 0;
  int best_votes = 0;
  for (const auto& [n, v] : count_votes) {
    if (v > best_votes) {
      best_votes = v;
      modal_count = n;
    }
  }

  std::vector<const AcquisitionAnalysis*> usable;
  for (const auto& a : analyses)
    if (a.analyzable && a.observations.size() == modal_count)
      usable.push_back(&a);
  result.usable = static_cast<int>(usable.size());

  for (std::size_t si = 0; si < modal_count; ++si) {
    cancel.ThrowIfStopped("consensus vote");
    std::vector<const LayerObservation*> votes;
    for (const AcquisitionAnalysis* a : usable)
      votes.push_back(&a->observations[si]);
    result.consensus.push_back(VoteSegment(votes, static_cast<int>(si)));
    Metrics().agreeing.Add(
        static_cast<std::uint64_t>(result.consensus.back().agreeing_votes));
  }

  Metrics().acquisitions.Add(static_cast<std::uint64_t>(result.acquisitions));
  Metrics().analyzable.Add(static_cast<std::uint64_t>(result.analyzable));
  Metrics().usable.Add(static_cast<std::uint64_t>(result.usable));

  const std::vector<LayerObservation> obs = result.observations();
  SearchConfig search_cfg = cfg.attack.search;
  if (cfg.attack.assume_identical_modules) {
    for (auto& g : DetectFireModuleGroups(obs))
      search_cfg.identical_groups.push_back(std::move(g));
  }

  // Slack ladder: exact matching first; widen only while the consensus
  // observations admit no structure at all. The result of the last rung is
  // kept even when empty so callers can inspect the failure.
  for (std::size_t r = 0; r < cfg.slack_ladder.size(); ++r) {
    cancel.ThrowIfStopped("slack ladder");
    search_cfg.solver.size_slack = cfg.slack_ladder[r];
    if (r > 0) Metrics().escalations.Add();
    result.search = SearchStructures(obs, search_cfg);
    result.slack_used = cfg.slack_ladder[r];
    if (!result.search.structures.empty()) break;
  }
  return result;
}

RobustStructureResult RunRobustStructureAttack(
    const std::vector<trace::Trace>& traces,
    const RobustStructureConfig& cfg) {
  SC_CHECK_MSG(!traces.empty(), "robust structure attack needs >= 1 trace");

  // Analyze every acquisition independently.
  std::vector<AcquisitionAnalysis> analyses(traces.size());
  support::ParallelFor(
      0, static_cast<std::int64_t>(traces.size()), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          analyses[static_cast<std::size_t>(i)] =
              AnalyzeAcquisition(traces[static_cast<std::size_t>(i)], cfg);
        }
      });
  return ConsensusSearch(analyses, cfg);
}

}  // namespace sc::attack
