#include "attack/structure/pipeline.h"

#include <algorithm>
#include <map>

#include "nn/activation.h"
#include "nn/combine.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace sc::attack {

StructureAttackResult RunStructureAttack(const trace::Trace& trace,
                                         const StructureAttackConfig& cfg) {
  static obs::Counter& attacks =
      obs::Registry::Get().GetCounter("attack.structure.runs");
  static obs::Counter& segments =
      obs::Registry::Get().GetCounter("attack.structure.segments_found");
  static obs::Histogram& attack_ns =
      obs::Registry::Get().GetHistogram("attack.structure.run_ns");
  obs::ScopedTimer timer(attack_ns);

  StructureAttackResult result;
  result.analysis = AnalyzeTrace(trace, cfg.analysis);
  attacks.Add();
  segments.Add(result.analysis.observations.size());

  SearchConfig search_cfg = cfg.search;
  if (cfg.assume_identical_modules) {
    for (auto& g : DetectFireModuleGroups(result.analysis.observations))
      search_cfg.identical_groups.push_back(std::move(g));
  }
  result.search = SearchStructures(result.analysis.observations, search_cfg);
  return result;
}

nn::Network InstantiateCandidate(const std::vector<LayerObservation>& obs,
                                 const CandidateStructure& cs,
                                 const InstantiateOptions& opts) {
  SC_CHECK_MSG(obs.size() == cs.layers.size(),
               "candidate does not match observations");
  SC_CHECK(opts.channel_divisor >= 1);
  SC_CHECK(!obs.empty());

  auto scaled = [&](int d) {
    return std::min(d, std::max(opts.min_channels, d / opts.channel_divisor));
  };

  // Find the segment that reads the network input (defines input shape)
  // and the last weighted segment (receives the class count).
  int input_segment = -1;
  int last_weighted = -1;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    if (obs[i].reads_network_input && input_segment == -1)
      input_segment = static_cast<int>(i);
    if (obs[i].role == SegmentRole::kConvOrFc)
      last_weighted = static_cast<int>(i);
  }
  SC_CHECK_MSG(input_segment != -1, "no segment reads the network input");
  SC_CHECK_MSG(last_weighted != -1, "no weighted segment found");

  SC_CHECK(opts.spatial_divisor >= 1);
  const nn::LayerGeometry& gin =
      cs.layers[static_cast<std::size_t>(input_segment)].geom;
  const int in_w = std::max(8, gin.w_ifm / opts.spatial_divisor);
  nn::Network net(nn::Shape{gin.d_ifm, in_w, in_w});

  std::vector<int> out_node(obs.size(), -1);
  std::map<std::vector<int>, int> concat_cache;

  auto node_for_writers = [&](const std::vector<int>& writers) -> int {
    if (writers.size() == 1 && writers[0] == -1) return nn::kInputNode;
    if (writers.size() == 1)
      return out_node[static_cast<std::size_t>(writers[0])];
    auto it = concat_cache.find(writers);
    if (it != concat_cache.end()) return it->second;
    std::vector<int> srcs;
    for (int t : writers) {
      SC_CHECK(t >= 0);
      srcs.push_back(out_node[static_cast<std::size_t>(t)]);
    }
    const int id = net.Add(std::make_unique<nn::Concat>(
                               "concat@" + std::to_string(writers[0]),
                               static_cast<int>(writers.size())),
                           srcs);
    concat_cache[writers] = id;
    return id;
  };

  for (std::size_t si = 0; si < obs.size(); ++si) {
    const LayerObservation& o = obs[si];
    const nn::LayerGeometry& g = cs.layers[si].geom;
    const std::string tag = "seg" + std::to_string(si);
    const bool is_last_segment = (si + 1 == obs.size());
    const bool takes_classes =
        (static_cast<int>(si) == last_weighted && opts.num_classes > 0);

    switch (cs.layers[si].role) {
      case SegmentRole::kConvOrFc: {
        SC_CHECK_MSG(o.inputs.size() == 1, "conv layer with multiple inputs");
        const int src = node_for_writers(o.inputs[0].writer_segments);
        const nn::Shape in_shape =
            src == nn::kInputNode ? net.input_shape() : net.output_shape(src);
        const int out_d = takes_classes ? opts.num_classes : scaled(g.d_ofm);
        int cur;
        if (g.IsFullyConnected()) {
          cur = net.Add(std::make_unique<nn::FullyConnected>(
                            tag + "_fc", static_cast<int>(in_shape.numel()),
                            out_d),
                        {src});
        } else {
          // Clamp the window to the (possibly spatially scaled) map.
          const int f =
              std::min(g.f_conv, in_shape[1] + 2 * g.p_conv);
          const int p = std::min(g.p_conv, f - 1);
          cur = net.Add(std::make_unique<nn::Conv2D>(tag + "_conv",
                                                     in_shape[0], out_d, f,
                                                     g.s_conv, p),
                        {src});
        }
        if (!is_last_segment || static_cast<int>(si) != last_weighted) {
          cur = net.Add(std::make_unique<nn::Relu>(tag + "_relu"), {cur});
        }
        if (g.has_pool()) {
          // A pool fused with the final weighted layer (or any pool that
          // produced a single output pixel) is a global head — keep it
          // global after spatial scaling; interior fused pools are max
          // pools with windows clamped to the shrunken map.
          const int cur_w = net.output_shape(cur)[1];
          const bool global = g.w_ofm == 1;
          const int fp = global ? cur_w : std::min(g.f_pool, cur_w);
          const int sp = global ? 1 : g.s_pool;
          const int pp = std::min(g.p_pool, fp - 1);
          auto pool_layer =
              is_last_segment
                  ? nn::MakeAvgPool(tag + "_gpool", fp, sp, pp)
                  : nn::MakeMaxPool(tag + "_pool", fp, sp, pp);
          cur = net.Add(std::move(pool_layer), {cur});
        }
        out_node[si] = cur;
        break;
      }
      case SegmentRole::kPool: {
        SC_CHECK(o.inputs.size() == 1);
        const int src = node_for_writers(o.inputs[0].writer_segments);
        SC_CHECK_MSG(g.has_pool(), "pool candidate without pool params");
        const nn::Shape in_shape =
            src == nn::kInputNode ? net.input_shape() : net.output_shape(src);
        const bool global = g.w_ofm == 1;
        const int fp = global ? in_shape[1] : std::min(g.f_pool, in_shape[1]);
        const int sp = global ? 1 : g.s_pool;
        const int pp = std::min(g.p_pool, fp - 1);
        // A trailing global pool is average pooling in modern networks
        // (SqueezeNet); interior pools are max pools.
        auto layer = is_last_segment
                         ? nn::MakeAvgPool(tag + "_gpool", fp, sp, pp)
                         : nn::MakeMaxPool(tag + "_pool", fp, sp, pp);
        out_node[si] = net.Add(std::move(layer), {src});
        break;
      }
      case SegmentRole::kEltwise: {
        SC_CHECK(o.inputs.size() >= 2);
        std::vector<int> srcs;
        for (const ObservedInput& in : o.inputs)
          srcs.push_back(node_for_writers(in.writer_segments));
        out_node[si] = net.Add(
            std::make_unique<nn::EltwiseAdd>(
                tag + "_add", static_cast<int>(srcs.size())),
            srcs);
        break;
      }
      case SegmentRole::kUnknown:
        SC_CHECK_MSG(false, "cannot instantiate an unclassified segment");
    }
  }
  return net;
}

}  // namespace sc::attack
