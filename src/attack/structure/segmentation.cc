#include "attack/structure/segmentation.h"

#include <algorithm>

#include "support/check.h"
#include "trace/interval.h"
#include "trace/trace_buffer.h"

namespace sc::attack {

namespace {

// Shared implementation: RAW-boundary rule, optionally augmented with the
// weight-region-switch rule when `regions` is non-null (kHasRegions lifts
// that choice to compile time so the hot loop carries no dead branches).
//
// The scan streams the trace's columns chunk by chunk and exploits the
// locality of DMA traffic: consecutive bursts almost always stay inside one
// region and one interval-set part, so region lookups and overlap queries
// are answered by a memoized hint first and fall back to binary search only
// on a miss. Semantics are identical to the straightforward per-event
// formulation (asserted by the differential tests in trace_buffer_test).
template <bool kHasRegions>
std::vector<Segment> SegmentImpl(
    const trace::Trace& trace,
    const std::vector<trace::AddrInterval>* regions) {
  std::vector<Segment> segments;
  if (trace.empty()) return segments;

  const trace::TraceBuffer& buf = trace.buffer();
  const std::size_t n = buf.size();
  constexpr auto kWrite = static_cast<std::uint8_t>(trace::MemOp::kWrite);

  // Pass 1 (region-aware mode only): resolve each event's region once and
  // record which regions are ever written.
  std::vector<std::uint32_t> event_region;
  std::vector<bool> region_written;
  if constexpr (kHasRegions) {
    event_region.resize(n);
    region_written.assign(regions->size(), false);
    std::size_t hint = regions->size();  // invalid until first lookup
    std::size_t idx = 0;
    for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
      const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
      for (std::size_t i = 0; i < v.count; ++i, ++idx) {
        const std::uint64_t addr = v.addrs[i];
        if (hint >= regions->size() || !(*regions)[hint].Contains(addr)) {
          auto it = std::upper_bound(
              regions->begin(), regions->end(), addr,
              [](std::uint64_t a, const trace::AddrInterval& r) {
                return a < r.hi;
              });
          SC_CHECK_MSG(it != regions->end() && it->Contains(addr),
                       "event outside every region");
          hint = static_cast<std::size_t>(it - regions->begin());
        }
        event_region[idx] = static_cast<std::uint32_t>(hint);
        if (v.ops[i] == kWrite) region_written[hint] = true;
      }
    }
  }

  trace::IntervalSet written_ever;
  trace::IntervalSet written_since_boundary;
  std::size_t ever_hint = 0;
  std::size_t since_hint = 0;
  bool wrote_since_boundary = false;
  std::vector<bool> weight_region_read;   // per region, this segment
  std::vector<bool> region_written_here;  // per region, this segment
  if constexpr (kHasRegions) {
    weight_region_read.assign(regions->size(), false);
    region_written_here.assign(regions->size(), false);
  }
  std::vector<std::size_t> boundaries{0};
  // raw_read[i]: event i is a read of data written in an *earlier* segment.
  // (A read of data written in the current segment triggers a boundary
  // instead, so it never carries this flag.)
  std::vector<std::uint8_t> raw_read(n, 0);

  // Does `s` overlap [lo, hi)? A hint hit is definitive (that part overlaps
  // by construction); a miss falls back to the canonical binary search.
  auto overlaps = [](const trace::IntervalSet& s, std::size_t& hint,
                     std::uint64_t lo, std::uint64_t hi) {
    const std::vector<trace::AddrInterval>& p = s.parts();
    if (hint < p.size() && p[hint].lo < hi && lo < p[hint].hi) return true;
    // Hull prefilter: reads of tensors the schedule has not written yet
    // (weights, the network input) sit entirely outside the written span.
    if (p.empty() || hi <= p.front().lo || lo >= p.back().hi) return false;
    auto it = std::upper_bound(
        p.begin(), p.end(), lo,
        [](std::uint64_t a, const trace::AddrInterval& x) { return a < x.hi; });
    if (it == p.end() || it->lo >= hi) return false;
    hint = static_cast<std::size_t>(it - p.begin());
    return true;
  };

  auto start_segment = [&](std::size_t i) {
    // Pull the run of operand prefetches (reads of older layers' outputs)
    // issued just before the triggering event into the new segment; the
    // previous segment must keep at least one event.
    std::size_t j = i;
    while (j > boundaries.back() + 1 && raw_read[j - 1]) --j;
    boundaries.push_back(j);
    written_since_boundary = trace::IntervalSet();
    since_hint = 0;
    wrote_since_boundary = false;
    if constexpr (kHasRegions) {
      std::fill(weight_region_read.begin(), weight_region_read.end(), false);
      std::fill(region_written_here.begin(), region_written_here.end(),
                false);
    }
  };

  std::size_t idx = 0;
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i, ++idx) {
      const std::uint64_t lo = v.addrs[i];
      const std::uint64_t hi = lo + v.bytes[i];
      if (v.ops[i] == kWrite) {
        // Write-region rule: one layer writes one output tensor, so a write
        // landing in a second region means a new layer began (needed for
        // weight-free layers — a pooling branch inside an inception module
        // triggers neither the RAW nor the weight-region rule).
        if constexpr (kHasRegions) {
          const std::size_t r = event_region[idx];
          if (wrote_since_boundary && !region_written_here[r])
            start_segment(idx);
          region_written_here[r] = true;
        }
        written_ever.Insert(lo, hi);
        written_since_boundary.Insert(lo, hi);
        wrote_since_boundary = true;
        continue;
      }
      if (overlaps(written_since_boundary, since_hint, lo, hi)) {
        start_segment(idx);  // RAW rule (paper §3.1)
      } else if (kHasRegions && !region_written[event_region[idx]]) {
        // Weight-region rule: a read-only region new to this segment after
        // write-back began means a sibling layer started (fire modules).
        const std::size_t r = event_region[idx];
        if (!weight_region_read[r] && wrote_since_boundary) {
          start_segment(idx);
        }
        weight_region_read[r] = true;
      } else if (overlaps(written_ever, ever_hint, lo, hi)) {
        raw_read[idx] = 1;
      }
    }
  }

  boundaries.push_back(n);
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    Segment s;
    s.first_event = boundaries[b];
    s.end_event = boundaries[b + 1];
    SC_CHECK(s.first_event < s.end_event);
    s.start_cycle = buf.Get(s.first_event).cycle;
    // A layer's time extends to the start of the next layer (its write-back
    // tail belongs to it); the final layer ends at the last event.
    s.end_cycle =
        s.end_event < n ? buf.Get(s.end_event).cycle : buf.Get(n - 1).cycle;
    segments.push_back(s);
  }
  return segments;
}

}  // namespace

std::vector<Segment> SegmentTrace(const trace::Trace& trace) {
  return SegmentImpl<false>(trace, nullptr);
}

std::vector<Segment> SegmentTraceWithRegions(
    const trace::Trace& trace,
    const std::vector<trace::AddrInterval>& regions) {
  return SegmentImpl<true>(trace, &regions);
}

}  // namespace sc::attack
