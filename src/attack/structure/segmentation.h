// Layer-boundary detection from RAW dependencies (paper §3.1, Algorithm 1
// step 1).
//
// "The beginning of a new convolutional/fully connected layer is revealed
// by the first read access on a memory address that was previously
// written." A layer never reads its own output, so a read hitting an
// address written *since the last boundary* marks the start of the next
// layer. Because an accelerator may prefetch operands written in older
// layers (e.g. the bypass operand of an element-wise layer) just before
// that triggering read, the detector also pulls the maximal run of
// directly-preceding reads-of-previously-written-data into the new segment.
#ifndef SC_ATTACK_STRUCTURE_SEGMENTATION_H_
#define SC_ATTACK_STRUCTURE_SEGMENTATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/interval.h"
#include "trace/trace.h"

namespace sc::attack {

// Half-open event-index range of one layer's activity.
struct Segment {
  std::size_t first_event = 0;
  std::size_t end_event = 0;  // exclusive
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;

  std::size_t num_events() const { return end_event - first_event; }
  std::uint64_t cycles() const { return end_cycle - start_cycle; }
};

// Splits the trace at RAW boundaries. Returns at least one segment for a
// non-empty trace; an empty trace yields no segments.
std::vector<Segment> SegmentTrace(const trace::Trace& trace);

// Region-aware segmentation. Adds a second boundary rule the pure RAW rule
// cannot express: sibling branch layers (the two expand convolutions of a
// fire module) read the same producer and share no RAW edge, but each reads
// its *own* read-only weight region. A read of a never-written region that
// is new to the current segment, after the segment already started writing
// its output, therefore starts a new layer. `regions` is the global region
// decomposition of the trace (see region_analysis.h).
std::vector<Segment> SegmentTraceWithRegions(
    const trace::Trace& trace,
    const std::vector<trace::AddrInterval>& regions);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_SEGMENTATION_H_
