// Self-healing structure extraction from noisy acquisitions (robustness
// layer, DESIGN.md §8).
//
// A single faulty trace can desynchronize segmentation or shift a region
// size by a few elements, and the exact Eq. (1)-(8) matching then rejects
// the true geometry. The robust driver instead analyzes K independent
// acquisitions of the same execution, majority-votes the segmentation
// (segment count, per-segment role, dependency edges), heals per-segment
// sizes (coverage-maximum: drops only shrink unique-byte footprints) and
// cycles (median), then runs the candidate search on the consensus
// observations — escalating SolverConfig::size_slack through a ladder only
// when the consensus is still inconsistent with every exact geometry.
#ifndef SC_ATTACK_STRUCTURE_ROBUST_H_
#define SC_ATTACK_STRUCTURE_ROBUST_H_

#include <vector>

#include "attack/structure/pipeline.h"

namespace sc::attack {

struct RobustStructureConfig {
  // Base attack configuration; search.solver.size_slack is overridden by
  // the ladder below. attack.search.cancel doubles as the cancellation
  // token for the whole robust driver: it is polled before each
  // acquisition analysis, each consensus vote and each ladder rung (and
  // inside the search itself).
  StructureAttackConfig attack;
  // Slack values (elements) tried in order until the search yields at least
  // one full structure. The first entry should be 0 so noise-free (or
  // fully healed) consensus reproduces the exact attack bit-for-bit.
  std::vector<long long> slack_ladder = {0, 1, 2, 4, 8, 16};
};

// One acquisition's independent analysis — the per-unit intermediate the
// campaign checkpoints (DESIGN.md §12). All observation fields are
// integral, so the JSON round trip is exact.
struct AcquisitionAnalysis {
  // False when AnalyzeTrace rejected the (corrupted) acquisition; such
  // acquisitions are discarded by the consensus, not fatal.
  bool analyzable = false;
  std::vector<LayerObservation> observations;
};

// Consensus over the K acquisitions for one trace segment.
struct LayerConsensus {
  LayerObservation observation;  // voted role/edges, healed sizes
  // Acquisitions agreeing with the consensus on role, dependency edges and
  // all three sizes, out of the usable ones. 1.0 means the noise never
  // touched anything this layer's solve depends on.
  int agreeing_votes = 0;
  int usable_votes = 0;
  double confidence() const {
    return usable_votes > 0
               ? static_cast<double>(agreeing_votes) / usable_votes
               : 0.0;
  }
};

struct RobustStructureResult {
  // Consensus observations (aligned with consensus entries) and the search
  // over them at the accepted slack.
  std::vector<LayerConsensus> consensus;
  SearchResult search;

  int acquisitions = 0;      // traces handed in
  int analyzable = 0;        // acquisitions AnalyzeTrace accepted
  int usable = 0;            // analyzable ones with the modal segment count
  long long slack_used = 0;  // ladder entry the search succeeded at

  std::size_t num_structures() const { return search.structures.size(); }
  std::vector<LayerObservation> observations() const;
};

// Analyzes one acquisition in isolation. sc::CancelledError propagates;
// any other sc::Error marks the acquisition unusable (analyzable=false).
AcquisitionAnalysis AnalyzeAcquisition(const trace::Trace& trace,
                                       const RobustStructureConfig& cfg);

// Votes the consensus over pre-analyzed acquisitions and runs the
// slack-ladder search. Throws sc::Error when no acquisition is analyzable;
// when every ladder rung leaves the search empty, the last rung's (empty)
// result is returned for inspection.
RobustStructureResult ConsensusSearch(
    const std::vector<AcquisitionAnalysis>& analyses,
    const RobustStructureConfig& cfg);

// Runs the voting analysis over K >= 1 independently corrupted acquisitions
// of one execution and searches structures over the consensus. With a
// single clean trace and slack ladder {0, ...} this is exactly
// RunStructureAttack. Equivalent to AnalyzeAcquisition over every trace
// followed by ConsensusSearch.
RobustStructureResult RunRobustStructureAttack(
    const std::vector<trace::Trace>& traces, const RobustStructureConfig& cfg);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_ROBUST_H_
