#include "attack/structure/schedule.h"

#include <algorithm>

namespace sc::attack {

namespace {

accel::ConvTiler TilerFor(const nn::LayerGeometry& g,
                          const accel::ScheduleModel& m) {
  accel::ConvTiler t;
  t.ic = g.d_ifm;
  t.ih = g.w_ifm;
  t.in_w = g.w_ifm;
  t.od = g.d_ofm;
  t.oh = g.w_ofm;
  t.ow = g.w_ofm;
  t.cw = g.ConvStageWidth();
  t.f = g.f_conv;
  t.s = g.s_conv;
  t.p = g.p_conv;
  t.pooled = g.has_pool();
  if (t.pooled) {
    t.f_pool = g.f_pool;
    t.s_pool = g.s_pool;
    t.p_pool = g.p_pool;
  }
  t.eb = static_cast<std::uint64_t>(m.element_bytes);
  t.ifm_buffer_bytes = m.ifm_buffer_bytes;
  t.weight_buffer_bytes = m.weight_buffer_bytes;
  t.ofm_buffer_bytes = m.ofm_buffer_bytes;
  return t;
}

}  // namespace

std::uint64_t PredictLayerTraffic(const nn::LayerGeometry& g,
                                  const accel::ScheduleModel& m) {
  const auto eb = static_cast<std::uint64_t>(m.element_bytes);
  const std::uint64_t ifm = static_cast<std::uint64_t>(g.SizeIfm()) * eb;
  const std::uint64_t weights =
      static_cast<std::uint64_t>(g.SizeFilter()) * eb;
  const std::uint64_t ofm = static_cast<std::uint64_t>(g.SizeOfm()) * eb;

  // FC: whole input vector on chip, each weight streamed once, one output
  // write-back — identical under both dataflows.
  if (g.IsFullyConnected()) return ifm + weights + ofm;

  const accel::ConvTiler t = TilerFor(g, m);
  const int oc_block = t.OcBlock();
  const int row_block = t.RowBlock();
  const std::uint64_t num_oc_blocks = static_cast<std::uint64_t>(
      (t.od + oc_block - 1) / oc_block);
  const std::uint64_t num_row_blocks = static_cast<std::uint64_t>(
      (t.oh + row_block - 1) / row_block);

  // Halo bytes summed over one full pass of row blocks.
  std::uint64_t halo_pass = 0;
  for (int ry0 = 0; ry0 < t.oh; ry0 += row_block) {
    const int ry1 = std::min(t.oh, ry0 + row_block);
    const auto [i0, i1] = t.IfmRowSpan(ry0, ry1);
    halo_pass += static_cast<std::uint64_t>(i1 - i0) *
                 static_cast<std::uint64_t>(t.in_w) *
                 static_cast<std::uint64_t>(t.ic) * eb;
  }
  const bool cache_whole_ifm = ifm <= m.ifm_buffer_bytes;

  std::uint64_t ifm_traffic = 0, weight_traffic = 0;
  if (m.oc_blocks_outer) {
    // Weight-stationary: weights once per oc block; the IFM streams past
    // every oc block unless it fits on chip.
    weight_traffic = weights;
    ifm_traffic = cache_whole_ifm ? ifm : num_oc_blocks * halo_pass;
  } else {
    // Output-stationary: each row block's halo once; every filter bank
    // streams past every row block.
    weight_traffic = num_row_blocks * weights;
    ifm_traffic = cache_whole_ifm ? ifm : halo_pass;
  }
  return ifm_traffic + weight_traffic + ofm;
}

std::uint64_t PredictLayerDrainOps(const nn::LayerGeometry& g,
                                   const accel::ScheduleModel& m) {
  if (m.drain_ops_per_elem <= 0 || g.IsFullyConnected()) return 0;
  return static_cast<std::uint64_t>(g.SizeOfm()) *
         static_cast<std::uint64_t>(m.drain_ops_per_elem);
}

}  // namespace sc::attack
