// Reporting helpers for structure-attack results: the Table 4-style view
// (per-layer configurations used by surviving structures) and CSV export.
#ifndef SC_ATTACK_STRUCTURE_REPORT_H_
#define SC_ATTACK_STRUCTURE_REPORT_H_

#include <iosfwd>
#include <vector>

#include "attack/structure/search.h"

namespace sc::attack {

// Distinct geometries used at `segment` across the surviving structures,
// in first-seen order.
std::vector<nn::LayerGeometry> UsedConfigsAt(const SearchResult& result,
                                             std::size_t segment);

// Paper-Table-4-style text table: one row per distinct conv configuration
// per layer (FC rows omitted — they are always unique, as the paper notes).
// Returns the number of rows printed.
std::size_t PrintConfigTable(std::ostream& os, const SearchResult& result);

// Machine-readable export: one row per (structure, layer) with all 11
// parameters. Header: structure,layer,role,w_ifm,d_ifm,w_ofm,d_ofm,f,s,p,
// pool,f_pool,s_pool,p_pool,timing_spread.
void WriteStructuresCsv(std::ostream& os, const SearchResult& result);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_REPORT_H_
