// Reporting helpers for structure-attack results: the Table 4-style view
// (per-layer configurations used by surviving structures) and CSV export.
#ifndef SC_ATTACK_STRUCTURE_REPORT_H_
#define SC_ATTACK_STRUCTURE_REPORT_H_

#include <iosfwd>
#include <vector>

#include "attack/structure/search.h"

namespace sc::attack {

// Distinct geometries used at `segment` across the surviving structures,
// in first-seen order.
std::vector<nn::LayerGeometry> UsedConfigsAt(const SearchResult& result,
                                             std::size_t segment);

// Paper-Table-4-style text table: one row per distinct conv configuration
// per layer (FC rows omitted — they are always unique, as the paper notes).
// Returns the number of rows printed.
std::size_t PrintConfigTable(std::ostream& os, const SearchResult& result);

// Machine-readable export: one row per (structure, layer) with all 11
// parameters. Header: structure,layer,role,w_ifm,d_ifm,w_ofm,d_ofm,f,s,p,
// pool,f_pool,s_pool,p_pool,timing_spread.
void WriteStructuresCsv(std::ostream& os, const SearchResult& result);

// Ground-truth scoring (defense evaluation, DESIGN.md §10). The evaluator
// knows the victim it attacked; a candidate "is" the truth when its
// weighted layers, in order, reproduce the parameters that define the
// architecture: filter width and output depth. (Feature-map sizes follow
// from those plus the observed chain, so comparing them adds nothing.)
struct LayerFingerprint {
  int f_conv = 0;
  int d_ofm = 0;
};

// True when the candidate's kConvOrFc layers match `truth` pairwise.
bool MatchesFingerprints(const CandidateStructure& cs,
                         const std::vector<LayerFingerprint>& truth);

struct TruthRanking {
  // 1-based rank of the first matching candidate when all candidates are
  // stably sorted by timing_spread ascending (the attack's preference
  // order); 0 = the truth survived nowhere.
  std::size_t rank = 0;
  // True iff a truth candidate ranks first AND strictly beats every
  // non-matching candidate's spread — the attacker can name the
  // architecture without ambiguity.
  bool unique_top = false;
  double truth_spread = 0.0;  // spread of the best matching candidate
};

TruthRanking RankTruth(const SearchResult& result,
                       const std::vector<LayerFingerprint>& truth);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_REPORT_H_
