#include "attack/structure/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "support/check.h"

namespace sc::attack {

std::vector<nn::LayerGeometry> UsedConfigsAt(const SearchResult& result,
                                             std::size_t segment) {
  std::vector<nn::LayerGeometry> used;
  for (const CandidateStructure& cs : result.structures) {
    SC_CHECK_MSG(segment < cs.layers.size(), "segment out of range");
    const nn::LayerGeometry& g = cs.layers[segment].geom;
    if (std::find(used.begin(), used.end(), g) == used.end())
      used.push_back(g);
  }
  return used;
}

std::size_t PrintConfigTable(std::ostream& os, const SearchResult& result) {
  os << std::left << std::setw(7) << "layer" << std::setw(7) << "Wifm"
     << std::setw(7) << "Difm" << std::setw(7) << "Wofm" << std::setw(7)
     << "Dofm" << std::setw(7) << "Fconv" << std::setw(7) << "Sconv"
     << std::setw(7) << "Pconv" << std::setw(7) << "Fpool" << std::setw(7)
     << "Spool" << std::setw(7) << "Ppool" << "\n";
  std::size_t rows = 0;
  if (result.structures.empty()) return rows;
  const std::size_t num_layers = result.structures.front().layers.size();
  for (std::size_t seg = 0; seg < num_layers; ++seg) {
    for (const nn::LayerGeometry& g : UsedConfigsAt(result, seg)) {
      if (g.IsFullyConnected()) continue;
      if (result.structures.front().layers[seg].role !=
          SegmentRole::kConvOrFc)
        continue;
      ++rows;
      os << std::left << "CONV" << std::setw(3) << seg + 1 << std::setw(7)
         << g.w_ifm << std::setw(7) << g.d_ifm << std::setw(7) << g.w_ofm
         << std::setw(7) << g.d_ofm << std::setw(7) << g.f_conv
         << std::setw(7) << g.s_conv << std::setw(7) << g.p_conv;
      if (g.has_pool()) {
        os << std::setw(7) << g.f_pool << std::setw(7) << g.s_pool
           << std::setw(7) << g.p_pool;
      } else {
        os << std::setw(7) << "N/A" << std::setw(7) << "N/A" << std::setw(7)
           << "N/A";
      }
      os << "\n";
    }
  }
  return rows;
}

void WriteStructuresCsv(std::ostream& os, const SearchResult& result) {
  os << "structure,layer,role,w_ifm,d_ifm,w_ofm,d_ofm,f,s,p,pool,f_pool,"
        "s_pool,p_pool,timing_spread\n";
  for (std::size_t si = 0; si < result.structures.size(); ++si) {
    const CandidateStructure& cs = result.structures[si];
    for (std::size_t li = 0; li < cs.layers.size(); ++li) {
      const nn::LayerGeometry& g = cs.layers[li].geom;
      os << si << ',' << li << ',' << ToString(cs.layers[li].role) << ','
         << g.w_ifm << ',' << g.d_ifm << ',' << g.w_ofm << ',' << g.d_ofm
         << ',' << g.f_conv << ',' << g.s_conv << ',' << g.p_conv << ','
         << nn::ToString(g.pool) << ',' << g.f_pool << ',' << g.s_pool
         << ',' << g.p_pool << ',' << cs.timing_spread << '\n';
    }
  }
}

bool MatchesFingerprints(const CandidateStructure& cs,
                         const std::vector<LayerFingerprint>& truth) {
  std::size_t next = 0;
  for (const LayerConfig& lc : cs.layers) {
    if (lc.role != SegmentRole::kConvOrFc) continue;
    if (next >= truth.size()) return false;
    if (lc.geom.f_conv != truth[next].f_conv ||
        lc.geom.d_ofm != truth[next].d_ofm)
      return false;
    ++next;
  }
  return next == truth.size();
}

TruthRanking RankTruth(const SearchResult& result,
                       const std::vector<LayerFingerprint>& truth) {
  TruthRanking out;
  if (result.structures.empty()) return out;

  // Attack preference order: best (smallest) timing spread first; ties
  // keep search order, so the ranking is deterministic.
  std::vector<std::size_t> order(result.structures.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.structures[a].timing_spread <
                            result.structures[b].timing_spread;
                   });

  double best_other = 0.0;
  bool have_other = false;
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const CandidateStructure& cs = result.structures[order[pos]];
    if (MatchesFingerprints(cs, truth)) {
      if (out.rank == 0) {
        out.rank = pos + 1;
        out.truth_spread = cs.timing_spread;
      }
    } else if (!have_other) {
      best_other = cs.timing_spread;
      have_other = true;
    }
  }
  out.unique_top =
      out.rank == 1 && (!have_other || out.truth_spread < best_other);
  return out;
}

}  // namespace sc::attack
