#include "attack/structure/region_analysis.h"

#include <algorithm>
#include <ostream>

#include "support/check.h"
#include "trace/trace_buffer.h"

namespace sc::attack {

const char* ToString(SegmentRole r) {
  switch (r) {
    case SegmentRole::kConvOrFc:
      return "conv/fc";
    case SegmentRole::kPool:
      return "pool";
    case SegmentRole::kEltwise:
      return "eltwise";
    case SegmentRole::kUnknown:
      return "unknown";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const LayerObservation& o) {
  os << "seg " << o.segment << " [" << ToString(o.role)
     << "] ifm=" << o.size_ifm << " ofm=" << o.size_ofm
     << " fltr=" << o.size_fltr << " cycles=" << o.cycles << " deps={";
  for (std::size_t i = 0; i < o.inputs.size(); ++i) {
    if (i) os << "; ";
    for (std::size_t j = 0; j < o.inputs[i].writer_segments.size(); ++j) {
      if (j) os << ',';
      os << o.inputs[i].writer_segments[j];
    }
  }
  return os << '}';
}

namespace {

// Per-(segment, region) access coverage.
struct Use {
  trace::IntervalSet reads;
  trace::IntervalSet writes;
};

// Index of the region containing `addr` (regions are sorted and disjoint).
std::size_t RegionIndex(const std::vector<trace::AddrInterval>& regions,
                        std::uint64_t addr) {
  auto it = std::upper_bound(
      regions.begin(), regions.end(), addr,
      [](std::uint64_t v, const trace::AddrInterval& r) { return v < r.hi; });
  SC_CHECK_MSG(it != regions.end() && it->Contains(addr),
               "address outside every region");
  return static_cast<std::size_t>(it - regions.begin());
}

}  // namespace

TraceAnalysis AnalyzeTrace(const trace::Trace& trace,
                           const AnalysisConfig& cfg) {
  SC_CHECK_MSG(cfg.element_bytes >= 1, "bad element size");
  TraceAnalysis out;
  if (trace.empty()) return out;

  const trace::TraceBuffer& buf = trace.buffer();
  constexpr auto kRead = static_cast<std::uint8_t>(trace::MemOp::kRead);

  // --- region discovery (first: segmentation uses region identities) ---
  trace::IntervalSet all;
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i)
      all.Insert(v.addrs[i], v.addrs[i] + v.bytes[i]);
  }
  const std::vector<trace::AddrInterval> spans =
      all.SplitRegions(cfg.region_gap);

  out.segments = SegmentTraceWithRegions(trace, spans);
  if (out.segments.empty()) return out;

  // --- per-(segment, region) coverage ---
  // Dense nseg x nreg grid: segment and region counts are layer-scale (tens),
  // so the grid is small, and indexing it beats a tree lookup per event.
  const std::size_t nseg = out.segments.size();
  const std::size_t nreg = spans.size();
  std::vector<Use> use(nseg * nreg);
  std::vector<bool> written(nreg, false);
  std::vector<std::uint64_t> seg_bytes(nseg, 0);

  {
    // One streaming pass: segments partition the event index space in
    // order, and consecutive bursts usually share a region (hinted lookup).
    std::size_t si = 0;
    std::size_t rhint = nreg;  // invalid until first lookup
    std::size_t idx = 0;
    for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
      const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
      for (std::size_t i = 0; i < v.count; ++i, ++idx) {
        while (idx >= out.segments[si].end_event) ++si;
        const std::uint64_t lo = v.addrs[i];
        const std::uint64_t hi = lo + v.bytes[i];
        if (rhint >= nreg || !spans[rhint].Contains(lo))
          rhint = RegionIndex(spans, lo);
        Use& u = use[si * nreg + rhint];
        if (v.ops[i] == kRead) {
          u.reads.Insert(lo, hi);
        } else {
          u.writes.Insert(lo, hi);
          written[rhint] = true;
        }
        seg_bytes[si] += v.bytes[i];
      }
    }
  }

  // --- region summaries & input identification ---
  const auto eb = static_cast<std::uint64_t>(cfg.element_bytes);
  out.regions.resize(nreg);
  for (std::size_t r = 0; r < nreg; ++r) {
    RegionSummary& summary = out.regions[r];
    summary.span = spans[r];
    summary.ever_written = written[r];
    trace::IntervalSet cover;
    for (std::size_t si = 0; si < nseg; ++si) {
      const Use& u = use[si * nreg + r];
      for (const auto& p : u.reads.parts()) cover.Insert(p);
      for (const auto& p : u.writes.parts()) cover.Insert(p);
    }
    summary.elems = static_cast<long long>(cover.CoveredBytes() / eb);
  }
  // Input region: never written, read from segment 0, matching the known
  // input size when provided (largest such region otherwise).
  std::size_t input_region = nreg;  // sentinel: none
  long long best = -1;
  for (std::size_t r = 0; r < nreg; ++r) {
    if (out.regions[r].ever_written) continue;
    if (use[r].reads.empty()) continue;  // segment 0's row of the grid
    const long long elems = out.regions[r].elems;
    if (cfg.known_input_elems > 0) {
      // A strided first convolution may leave a small unread tail of the
      // input (floor mode), so match with a tolerance.
      if (elems <= cfg.known_input_elems + cfg.input_elems_slack &&
          10 * elems >= 9 * cfg.known_input_elems) {
        SC_CHECK_MSG(input_region == nreg,
                     "two candidate input regions of the declared size");
        input_region = r;
      }
    } else if (elems > best) {
      best = elems;
      input_region = r;
    }
  }
  if (input_region != nreg)
    out.regions[input_region].is_network_input = true;

  // --- per-segment observations ---
  out.observations.resize(nseg);
  for (std::size_t si = 0; si < nseg; ++si) {
    LayerObservation& o = out.observations[si];
    o.segment = static_cast<int>(si);
    o.cycles = out.segments[si].cycles();
    o.bytes_accessed = seg_bytes[si];

    for (std::size_t r = 0; r < nreg; ++r) {
      const Use& u = use[si * nreg + r];
      if (u.reads.empty() && u.writes.empty()) continue;

      const std::uint64_t read_bytes = u.reads.CoveredBytes();
      const std::uint64_t write_bytes = u.writes.CoveredBytes();
      o.size_ofm += static_cast<long long>(write_bytes / eb);

      if (read_bytes == 0) continue;
      if (r == input_region) {
        ObservedInput in;
        in.writer_segments.push_back(-1);
        in.elems = static_cast<long long>(read_bytes / eb);
        o.size_ifm += in.elems;
        o.inputs.push_back(std::move(in));
        o.reads_network_input = true;
      } else if (!out.regions[r].ever_written) {
        o.size_fltr += static_cast<long long>(read_bytes / eb);
      } else {
        // FMAP input: find which earlier segments wrote what we read.
        ObservedInput in;
        in.elems = static_cast<long long>(read_bytes / eb);
        for (std::size_t t = 0; t < si; ++t) {
          const Use& w = use[t * nreg + r];
          if (w.writes.empty()) continue;
          bool overlaps = false;
          for (const auto& part : w.writes.parts())
            if (u.reads.OverlapsInterval(part)) {
              overlaps = true;
              break;
            }
          if (overlaps) in.writer_segments.push_back(static_cast<int>(t));
        }
        SC_CHECK_MSG(!in.writer_segments.empty(),
                     "segment " << si
                                << " reads a written region with no "
                                   "identifiable writer");
        o.size_ifm += in.elems;
        o.inputs.push_back(std::move(in));
      }
    }

    // Role classification.
    if (o.size_fltr > 0) {
      o.role = SegmentRole::kConvOrFc;
    } else if (o.inputs.size() >= 2 &&
               std::all_of(o.inputs.begin(), o.inputs.end(),
                           [&](const ObservedInput& in) {
                             return in.elems == o.inputs[0].elems;
                           })) {
      o.role = SegmentRole::kEltwise;
    } else if (o.inputs.size() == 1 && o.size_ofm <= o.size_ifm &&
               o.size_ofm > 0) {
      // Weight-free, one operand, non-growing output: a pooling stage.
      // (Size-preserving pools exist: inception's 3x3/1 SAME-pad branch.)
      o.role = SegmentRole::kPool;
    } else {
      o.role = SegmentRole::kUnknown;
    }
  }
  return out;
}

}  // namespace sc::attack
