// Schedule-aware DRAM traffic prediction for the timing filter.
//
// The search's bandwidth model (SearchConfig) needs each hypothesis'
// traffic under the victim's tiled schedule. Historically it reused the
// *observed* per-segment byte count, which silently assumes the candidate
// would move exactly as many bytes as the true layer did under the
// weight-stationary schedule. With multiple dataflow backends the
// multiplicity of IFM/weight re-reads depends on the schedule, so the
// filter instead predicts a candidate's traffic from the backend-reported
// ScheduleModel (accel/dataflow.h) — datasheet knowledge, same provenance
// as macs_per_cycle — by replaying the backend's own tile selection
// (ConvTiler) over the hypothesised geometry.
#ifndef SC_ATTACK_STRUCTURE_SCHEDULE_H_
#define SC_ATTACK_STRUCTURE_SCHEDULE_H_

#include <cstdint>

#include "accel/dataflow.h"
#include "nn/geometry.h"

namespace sc::attack {

// Total DRAM bytes (reads + writes) one CONV/FC layer of geometry `g`
// moves under schedule `m`, assuming dense (unpruned) tensors:
//   FC:      IFM + weights + OFM, each touched once.
//   conv WS: weights once; IFM once if it fits the buffer, else one halo
//            per (oc block, row block); OFM once.
//   conv OS: IFM once if cached, else one halo per row block; weights once
//            per (row block, oc block); OFM once.
// Never throws: infeasible candidate geometries still get an estimate (the
// geometry solver, not this filter, is responsible for rejecting them).
std::uint64_t PredictLayerTraffic(const nn::LayerGeometry& g,
                                  const accel::ScheduleModel& m);

// Extra SIMD ops the schedule's per-tile cycle model charges for one layer
// beyond the MAC count (the output-stationary accumulator drain: each
// output element drains exactly once across a layer's tiles). Zero for FC
// layers — their write-back path is shared across dataflows — and for
// schedules with no drain.
std::uint64_t PredictLayerDrainOps(const nn::LayerGeometry& g,
                                   const accel::ScheduleModel& m);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_SCHEDULE_H_
