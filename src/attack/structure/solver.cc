#include "attack/structure/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "support/check.h"

namespace sc::attack {

namespace {

// Solver metrics (DESIGN.md §9): how many geometries each Eq. (1)–(8)
// constraint kills is the attack's search-space story, so each prune site
// gets its own counter.
struct SolverMetrics {
  obs::Counter& emitted = obs::Registry::Get().GetCounter(
      "attack.structure.solver.candidates_emitted");
  obs::Counter& dedup = obs::Registry::Get().GetCounter(
      "attack.structure.solver.dedup_hits");
  obs::Counter& pruned_coverage = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.coverage");
  obs::Counter& pruned_eq3 = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.eq3_filter_quotient");
  obs::Counter& pruned_eq2 = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.eq2_ofm_square");
  obs::Counter& pruned_division = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.conv_division");
  obs::Counter& pruned_tail = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.coverage_tail");
  obs::Counter& pruned_canonical = obs::Registry::Get().GetCounter(
      "attack.structure.solver.pruned.canonical_padding");
};

SolverMetrics& Metrics() {
  static SolverMetrics m;
  return m;
}

// Nearest quotient q >= 1 with |q * divisor - value| <= slack; -1 when no
// multiple of divisor lies within slack of value. slack = 0 is exact
// divisibility. Only the *nearest* multiple is admitted even when slack
// exceeds divisor/2, keeping noisy candidate sets from fanning out.
long long NearestQuotient(long long value, long long divisor,
                          long long slack) {
  SC_CHECK(divisor >= 1);
  const long long q = (value + divisor / 2) / divisor;
  if (q < 1) return -1;
  return std::llabs(q * divisor - value) <= slack ? q : -1;
}

// Side length w >= 1 minimizing |w^2 * depth - elems| within slack; -1 when
// none qualifies. slack = 0 requires elems == w^2 * depth exactly (the
// perfect-square condition of Eq. (2)).
int NearestSquareSide(long long elems, long long depth, long long slack) {
  if (elems < 1 || depth < 1) return -1;
  const auto w0 = static_cast<long long>(
      std::sqrt(static_cast<double>(elems) / static_cast<double>(depth)));
  long long best = -1;
  long long best_dev = slack + 1;
  for (long long w = std::max(1LL, w0 - 1); w <= w0 + 2; ++w) {
    const long long dev = std::llabs(w * w * depth - elems);
    if (dev < best_dev) {
      best_dev = dev;
      best = w;
    }
  }
  return best > INT32_MAX ? -1 : static_cast<int>(best);
}

void PushUnique(std::vector<nn::LayerGeometry>& out,
                const nn::LayerGeometry& g, const SolverConfig& cfg) {
  SC_CHECK_MSG(out.size() < cfg.max_candidates,
               "candidate explosion: more than " << cfg.max_candidates
                                                 << " layer configurations");
  if (std::find(out.begin(), out.end(), g) == out.end()) {
    out.push_back(g);
    Metrics().emitted.Add();
  } else {
    Metrics().dedup.Add();
  }
}

// Enumerates (f_pool, s_pool, p_pool) taking w_conv to w_ofm and appends
// the resulting geometries.
void EnumeratePools(nn::LayerGeometry base, int w_conv, int max_window,
                    const SolverConfig& cfg,
                    std::vector<nn::LayerGeometry>& out) {
  for (int fp = 2; fp <= std::min(max_window, w_conv); ++fp) {
    for (int sp = 1; sp <= fp; ++sp) {
      const int max_pp = cfg.allow_pool_padding ? fp - 1 : 0;
      for (int pp = 0; pp <= max_pp; ++pp) {
        if (w_conv + 2 * pp < fp) continue;
        if (cfg.exact_pool_division &&
            !nn::PoolDividesExactly(w_conv, fp, sp, pp))
          continue;
        const int w_out = nn::PoolOutWidth(w_conv, fp, sp, pp);
        if (w_out != base.w_ofm) continue;
        if (cfg.forbid_pool_upsample && w_out > w_conv) continue;
        // A single-output (global) pool is insensitive to its stride; keep
        // the canonical stride-1 form only.
        if (w_out == 1 && sp > 1) continue;
        nn::LayerGeometry g = base;
        // Max vs average pooling are trace-indistinguishable; kMax stands
        // for "some pooling stage exists" (paper's P flag).
        g.pool = nn::PoolKind::kMax;
        g.f_pool = fp;
        g.s_pool = sp;
        g.p_pool = pp;
        if (g.IsConsistent()) PushUnique(out, g, cfg);
      }
    }
  }
}

}  // namespace

IfmDims FactorizeFmapSize(long long elems) {
  IfmDims dims;
  for (long long w = 1; w * w <= elems; ++w) {
    if (elems % (w * w) == 0)
      dims.emplace_back(static_cast<int>(w),
                        static_cast<int>(elems / (w * w)));
  }
  return dims;
}

IfmDims FactorizeFmapSizeSlack(long long elems, long long slack) {
  if (slack <= 0) return FactorizeFmapSize(elems);
  IfmDims dims;
  const long long hi = elems + slack;
  const long long lo = std::max(1LL, elems - slack);
  for (long long w = 1; w * w <= hi; ++w) {
    const long long sq = w * w;
    // All depths d with lo <= w^2 * d <= hi.
    const long long d_lo = std::max(1LL, (lo + sq - 1) / sq);
    const long long d_hi = hi / sq;
    for (long long d = d_lo; d <= d_hi; ++d)
      dims.emplace_back(static_cast<int>(w), static_cast<int>(d));
  }
  return dims;
}

std::vector<nn::LayerGeometry> EnumerateConvConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg) {
  SC_CHECK_MSG(obs.size_fltr > 0, "conv/fc observation has no filter bytes");
  SC_CHECK_MSG(obs.size_ofm > 0 && obs.size_ifm > 0,
               "degenerate observation");
  std::vector<nn::LayerGeometry> out;

  for (const auto& [w_ifm, d_ifm] : ifm_dims) {
    // Observed coverage: DMA fetches whole rows, so a conv walk that leaves
    // a tail of u rows unread covers (W - u) * W * D elements. Recover u
    // from the read footprint; a (W, D) hypothesis admitting no integer
    // tail is infeasible.
    int u_obs = 0;
    if (cfg.enforce_coverage) {
      const long long row_elems =
          static_cast<long long>(w_ifm) * d_ifm;
      long long covered_rows =
          NearestQuotient(obs.size_ifm, row_elems, cfg.size_slack);
      // Padding defenses only ever inflate the observed footprint, so a
      // quotient above W_IFM can still mean "every row read" when full
      // coverage lies within slack of the observation.
      if (covered_rows > w_ifm &&
          obs.size_ifm - static_cast<long long>(w_ifm) * row_elems <=
              cfg.size_slack)
        covered_rows = w_ifm;
      if (covered_rows < 1 || covered_rows > w_ifm) {
        Metrics().pruned_coverage.Add();
        continue;
      }
      u_obs = static_cast<int>(w_ifm - covered_rows);
    }

    // --- fully-connected interpretation (F == W_IFM, one output pixel per
    // class score). Always unique for a given input factorization. An FC
    // filter covers the whole input (no unread tail).
    const long long fc_per_out =
        static_cast<long long>(w_ifm) * w_ifm * d_ifm +
        (cfg.bias_in_filter_region ? 1 : 0);
    const long long fc_d_ofm =
        NearestQuotient(obs.size_fltr, fc_per_out, cfg.size_slack);
    if (u_obs == 0 && fc_d_ofm >= 1 && fc_d_ofm <= INT32_MAX &&
        std::llabs(fc_d_ofm - obs.size_ofm) <= cfg.size_slack) {
      nn::LayerGeometry fc;
      fc.w_ifm = w_ifm;
      fc.d_ifm = d_ifm;
      fc.w_ofm = 1;
      fc.d_ofm = static_cast<int>(fc_d_ofm);
      fc.f_conv = w_ifm;
      fc.s_conv = 1;
      fc.p_conv = 0;
      if (fc.IsConsistent()) PushUnique(out, fc, cfg);
    }

    // --- convolutional interpretations: F <= W_IFM / 2 (Eq. 5).
    for (int f = 1; 2 * f <= w_ifm; ++f) {
      // D_OFM from Eq. (3): SIZE_FLTR = D_OFM * (F^2 * D_IFM [+ 1]).
      const long long per_out =
          static_cast<long long>(f) * f * d_ifm +
          (cfg.bias_in_filter_region ? 1 : 0);
      const long long d_ofm_ll =
          NearestQuotient(obs.size_fltr, per_out, cfg.size_slack);
      if (d_ofm_ll < 1 || d_ofm_ll > INT32_MAX) {
        Metrics().pruned_eq3.Add();
        continue;
      }
      const int d_ofm = static_cast<int>(d_ofm_ll);
      // W_OFM from Eq. (2).
      const int w_ofm = NearestSquareSide(obs.size_ofm, d_ofm, cfg.size_slack);
      if (w_ofm < 1) {
        Metrics().pruned_eq2.Add();
        continue;
      }

      nn::LayerGeometry base;
      base.w_ifm = w_ifm;
      base.d_ifm = d_ifm;
      base.w_ofm = w_ofm;
      base.d_ofm = d_ofm;
      base.f_conv = f;

      const int max_pad = cfg.half_filter_padding ? (f - 1) / 2 : f - 1;
      for (int s = 1; s <= f; ++s) {          // Eq. (5): S_conv <= F_conv
        for (int p = 0; p <= max_pad; ++p) {  // Eq. (7) / half-filter prior
          if (w_ifm + 2 * p < f) continue;
          const int rem = (w_ifm + 2 * p - f) % s;
          if (cfg.exact_conv_division && rem != 0) {
            Metrics().pruned_division.Add();
            continue;
          }
          if (cfg.enforce_coverage && std::max(0, rem - p) != u_obs) {
            Metrics().pruned_tail.Add();
            continue;
          }
          const int w_conv = nn::ConvOutWidth(w_ifm, f, s, p);
          base.s_conv = s;
          base.p_conv = p;
          if (w_conv == w_ofm) {
            nn::LayerGeometry g = base;
            g.pool = nn::PoolKind::kNone;
            g.f_pool = g.s_pool = g.p_pool = 0;
            if (g.IsConsistent()) PushUnique(out, g, cfg);
          }
          // A one-pixel output admits global pooling (window == w_conv),
          // common as the final stage of modern networks.
          const int max_window =
              w_ofm == 1 ? w_conv : cfg.max_pool_window;
          EnumeratePools(base, w_conv, max_window, cfg, out);
        }
      }
    }
  }

  if (cfg.canonical_padding) {
    // Collapse candidates that differ only in conv padding (identical
    // F/S/conv width/pool) to the minimal-padding representative.
    std::vector<nn::LayerGeometry> canonical;
    for (const nn::LayerGeometry& g : out) {
      bool superseded = false;
      for (nn::LayerGeometry& kept : canonical) {
        const bool same = kept.w_ifm == g.w_ifm && kept.d_ifm == g.d_ifm &&
                          kept.w_ofm == g.w_ofm && kept.d_ofm == g.d_ofm &&
                          kept.f_conv == g.f_conv &&
                          kept.s_conv == g.s_conv &&
                          kept.pool == g.pool && kept.f_pool == g.f_pool &&
                          kept.s_pool == g.s_pool &&
                          kept.p_pool == g.p_pool &&
                          kept.ConvStageWidth() == g.ConvStageWidth();
        if (same) {
          if (g.p_conv < kept.p_conv) kept = g;
          superseded = true;
          Metrics().pruned_canonical.Add();
          break;
        }
      }
      if (!superseded) canonical.push_back(g);
    }
    out = std::move(canonical);
  }
  return out;
}

std::vector<nn::LayerGeometry> EnumerateStandalonePoolConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg_in) {
  SC_CHECK_MSG(obs.size_fltr == 0, "pool observation must have no weights");
  // Standalone pooling layers do use SAME padding in practice (inception's
  // 3x3/1 pad-1 branch), unlike fused output-reducing pools.
  SolverConfig cfg = cfg_in;
  cfg.allow_pool_padding = true;
  std::vector<nn::LayerGeometry> out;
  for (const auto& [w_ifm, d_ifm] : ifm_dims) {
    // Pooling preserves depth: D_OFM == D_IFM.
    const int w_ofm = NearestSquareSide(obs.size_ofm, d_ifm, cfg.size_slack);
    if (w_ofm < 1) continue;
    nn::LayerGeometry base;
    base.w_ifm = w_ifm;
    base.d_ifm = d_ifm;
    base.w_ofm = w_ofm;
    base.d_ofm = d_ifm;
    base.f_conv = 1;  // identity convolution stage carries the pool fields
    base.s_conv = 1;
    base.p_conv = 0;
    if (w_ifm >= 2) {
      const int max_window =
          w_ofm == 1 ? w_ifm : cfg.max_standalone_pool_window;
      EnumeratePools(base, w_ifm, max_window, cfg, out);
    }
  }
  return out;
}

std::vector<nn::LayerGeometry> EnumerateEltwiseConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg) {
  std::vector<nn::LayerGeometry> out;
  for (const auto& [w_ifm, d_ifm] : ifm_dims) {
    // Element-wise addition is shape-preserving; the observation's per-
    // operand size must equal the output size (within slack under noise).
    const long long elems = static_cast<long long>(w_ifm) * w_ifm * d_ifm;
    if (obs.inputs.empty() ||
        std::llabs(obs.inputs[0].elems - elems) > cfg.size_slack)
      continue;
    if (std::llabs(obs.size_ofm - obs.inputs[0].elems) > cfg.size_slack)
      continue;
    nn::LayerGeometry g;
    g.w_ifm = w_ifm;
    g.d_ifm = d_ifm;
    g.w_ofm = w_ifm;
    g.d_ofm = d_ifm;
    g.f_conv = 1;
    g.s_conv = 1;
    g.p_conv = 0;
    out.push_back(g);
  }
  return out;
}

}  // namespace sc::attack
