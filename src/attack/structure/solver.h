// Per-layer constraint solver (paper §3.1, Eq. (1)-(8); Algorithm 1 step 3).
//
// Given the sizes a trace segment reveals (SIZE_IFM, SIZE_OFM, SIZE_FLTR)
// and the input dimensions allowed by the preceding layer, enumerates every
// 11-parameter layer geometry (Table 2) consistent with the equations and
// the practical constraints. See DESIGN.md §5 for the conventions and the
// calibrated practical priors (exact window division, small pool windows).
#ifndef SC_ATTACK_STRUCTURE_SOLVER_H_
#define SC_ATTACK_STRUCTURE_SOLVER_H_

#include <utility>
#include <vector>

#include "attack/structure/observation.h"
#include "nn/geometry.h"

namespace sc::attack {

struct SolverConfig {
  // Some accelerators store each filter's bias with its weights, making
  // the observed filter-region size F^2*D_IFM*D_OFM + D_OFM — which pins
  // D_OFM uniquely and collapses the candidate set far below the paper's.
  // Our reference accelerator keeps biases on chip, matching the paper's
  // Eq. (3), so the default is false.
  bool bias_in_filter_region = false;
  // Coverage constraint: a floor-mode convolution walk that does not
  // divide the padded input exactly leaves an L-shaped unread tail of
  // max(0, (W + 2P - F) % S - P) rows/columns, and that tail is *visible*
  // in the trace (those IFM addresses are never read). Candidates must
  // reproduce the observed tail exactly — this subsumes an exact-division
  // prior (tail 0) but also admits nets like SqueezeNet's 7/2 conv1 on a
  // 224 input (tail 1). Pooling needs no such constraint: ceil mode's
  // partial window still consumes the tail.
  bool enforce_coverage = true;
  // Optional paper-style prior on top of the coverage constraint: require
  // the conv walk to divide the padded input exactly (remainder 0). The
  // paper's Table 4 is consistent with this restriction, but it excludes
  // real nets (SqueezeNet's conv1 walk has remainder 1), so it is off by
  // default; the Table 3 bench reports counts both ways.
  bool exact_conv_division = false;
  bool exact_pool_division = false;
  // Canonical-padding prior: with floor division several paddings can give
  // the same conv output width (the extra padded ring is computed and
  // discarded); real designs use the smallest. Candidates that differ only
  // in p_conv (same F, S, conv width and pooling) collapse to min p.
  bool canonical_padding = true;
  // Practical prior: fused pooling windows are small.
  int max_pool_window = 4;
  // Pooling with padding is uncommon; allow it only when set.
  bool allow_pool_padding = false;
  // Strengthened Eq. (7): real nets never pad beyond half the filter
  // (2P < F; "SAME" padding is the extreme case). Every row of the paper's
  // Table 4 satisfies this.
  bool half_filter_padding = true;
  // Reject pooling stages that enlarge the feature map.
  bool forbid_pool_upsample = true;
  // Standalone pooling layers (SqueezeNet) may use windows up to this.
  int max_standalone_pool_window = 4;
  // Safety valve against degenerate observations.
  std::size_t max_candidates = 200000;
  // Noisy-measurement slack (elements): a candidate geometry is accepted
  // when its predicted SIZE_IFM / SIZE_OFM / SIZE_FLTR each lie within this
  // many elements of the observed sizes. 0 (default) keeps the exact
  // Eq. (1)-(8) matching; the robust structure attack (robust.h) escalates
  // this ladder-wise when consensus observations from noisy acquisitions
  // stay inconsistent.
  long long size_slack = 0;
};

// (width, depth) pairs a layer's input may have.
using IfmDims = std::vector<std::pair<int, int>>;

// All (W, D) with W^2 * D == elems.
IfmDims FactorizeFmapSize(long long elems);

// Slack-tolerant variant: all (W, D) with |W^2 * D - elems| <= slack,
// deduplicated, in (W, D) order. slack = 0 reduces to FactorizeFmapSize.
IfmDims FactorizeFmapSizeSlack(long long elems, long long slack);

// Enumerates conv and FC geometries for one conv/fc observation. Each
// returned geometry is IsConsistent(). When a geometry admits pooling, the
// pool kind is reported as kMax (max vs average pooling produce identical
// traces and are indistinguishable to this attack).
std::vector<nn::LayerGeometry> EnumerateConvConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg);

// Enumerates geometries for a standalone pooling observation (no weights).
// Encoded as LayerGeometry with a 1x1/s1/p0 identity convolution stage so
// the pool fields carry the parameters.
std::vector<nn::LayerGeometry> EnumerateStandalonePoolConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg);

// The element-wise (bypass-merge) layer has no free parameters; this checks
// dimensional consistency (within cfg.size_slack) and returns the
// pass-through geometry.
std::vector<nn::LayerGeometry> EnumerateEltwiseConfigs(
    const LayerObservation& obs, const IfmDims& ifm_dims,
    const SolverConfig& cfg = {});

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_SOLVER_H_
