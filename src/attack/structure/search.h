// Whole-network candidate search (paper §3.1, Algorithm 1 steps 4-5).
//
// Chains per-layer candidate sets along the observed dependency graph
// (W_OFM_i == W_IFM_{i+1}, D_OFM_i == D_IFM_{i+1}, with concat inputs
// summing producer depths), prunes candidates whose MAC count is
// inconsistent with the measured per-layer execution time, and optionally
// applies the paper's "identical repeated modules" assumption used for
// SqueezeNet.
#ifndef SC_ATTACK_STRUCTURE_SEARCH_H_
#define SC_ATTACK_STRUCTURE_SEARCH_H_

#include <optional>
#include <vector>

#include "accel/dataflow.h"
#include "attack/structure/observation.h"
#include "attack/structure/solver.h"
#include "nn/geometry.h"
#include "support/cancel.h"

namespace sc::attack {

struct SearchConfig {
  SolverConfig solver;

  // Timing filter: the per-layer ratio (predicted work / measured cycles)
  // must agree across all weighted layers of a structure to within this
  // factor (max/min). Executed MACs are the pre-pooling count — see
  // DESIGN.md §4. <= 1 disables the filter.
  double timing_tolerance = 1.3;

  // Accelerator datasheet values (public microarchitecture, not part of
  // the secret model). When both are > 0 the predicted work is
  // max(macs / macs_per_cycle, observed_bytes / bytes_per_cycle), which
  // stays valid for memory-bound layers (1x1 convolutions, FC); when 0 the
  // paper's pure-MAC proportionality is used and FC layers are skipped.
  int macs_per_cycle = 0;
  int bytes_per_cycle = 0;

  // The victim backend's tiling summary (Accelerator::schedule_model()),
  // also datasheet knowledge. When set and the bandwidth model is active,
  // the byte term is *predicted* for each candidate geometry under this
  // schedule (attack/structure/schedule.h) instead of reusing the observed
  // byte count — required for correctness on non-weight-stationary victims,
  // whose re-read multiplicity differs per hypothesis. Unset preserves the
  // observed-bytes behaviour.
  std::optional<accel::ScheduleModel> schedule;

  // Prior knowledge from the threat model (paper §3.1): the adversary sees
  // the accelerator's input and output, so it knows the first layer's input
  // dimensions and the class count (last layer has W_OFM == 1).
  int known_input_width = 0;   // 0 = unknown
  int known_input_depth = 0;
  long long known_output_classes = 0;  // 0 = unknown

  // The paper's modularity assumption: layers within each group must share
  // identical structural parameters (F/S/P of conv and pool); feature-map
  // dimensions may differ. Used to shrink SqueezeNet's candidate set.
  std::vector<std::vector<int>> identical_groups;

  // Abort if more than this many full structures survive (guards against a
  // mis-calibrated solver).
  std::size_t max_structures = 100000;

  // Cooperative cancellation (DESIGN.md §12): polled at every node of the
  // depth-first search. On stop the search throws sc::CancelledError /
  // sc::DeadlineExceededError. Default token never stops.
  support::CancelToken cancel;
};

// One fully-specified layer hypothesis.
struct LayerConfig {
  SegmentRole role = SegmentRole::kUnknown;
  nn::LayerGeometry geom;
};

struct CandidateStructure {
  std::vector<LayerConfig> layers;  // aligned with the observations
  double timing_spread = 1.0;      // max/min MAC-per-cycle ratio achieved
};

struct SearchResult {
  std::vector<CandidateStructure> structures;
  // Per-segment candidate counts before chaining (Table 4-style view),
  // taken over all input-dimension hypotheses that occurred in the search.
  std::vector<std::vector<nn::LayerGeometry>> per_layer_candidates;
};

SearchResult SearchStructures(const std::vector<LayerObservation>& obs,
                              const SearchConfig& cfg);

// Groups segments belonging to repeated fire-module motifs: a conv segment
// whose output feeds exactly two conv segments which then merge (their
// outputs are read together downstream) is a squeeze layer. Returns groups
// {squeezes, first expands, second expands} when at least two motifs exist,
// else an empty vector.
std::vector<std::vector<int>> DetectFireModuleGroups(
    const std::vector<LayerObservation>& obs);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_SEARCH_H_
