// What the adversary can extract from a memory trace before any
// constraint solving: per-layer sizes, timing, and the dependency graph.
#ifndef SC_ATTACK_STRUCTURE_OBSERVATION_H_
#define SC_ATTACK_STRUCTURE_OBSERVATION_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace sc::attack {

// Coarse role of a trace segment, inferred from region access patterns
// (weights present / input arity / size relations).
enum class SegmentRole {
  kConvOrFc,   // reads a read-only (weight) region
  kPool,       // no weights, one FMAP input, output smaller than input
  kEltwise,    // no weights, >= 2 equally-sized FMAP inputs
  kUnknown,
};

const char* ToString(SegmentRole r);

// One feature-map input of a segment.
struct ObservedInput {
  // Segments whose writes produced the bytes this segment read; -1 denotes
  // the network input region (written by the host before the run).
  std::vector<int> writer_segments;
  long long elems = 0;  // unique elements read
};

// Everything the trace reveals about one layer (= one trace segment).
struct LayerObservation {
  int segment = -1;
  SegmentRole role = SegmentRole::kUnknown;
  std::vector<ObservedInput> inputs;
  long long size_ifm = 0;   // total unique FMAP elements read (all inputs)
  long long size_ofm = 0;   // unique elements written
  long long size_fltr = 0;  // unique elements read from weight regions
  std::uint64_t cycles = 0; // segment duration
  // Total bytes moved during the segment (reads + writes, with re-reads) —
  // directly observable and used by the bandwidth-aware timing filter.
  std::uint64_t bytes_accessed = 0;
  bool reads_network_input = false;
};

std::ostream& operator<<(std::ostream& os, const LayerObservation& o);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_OBSERVATION_H_
