// End-to-end structure reverse engineering (paper Algorithm 1) and
// candidate instantiation for the training-based ranking step.
#ifndef SC_ATTACK_STRUCTURE_PIPELINE_H_
#define SC_ATTACK_STRUCTURE_PIPELINE_H_

#include "attack/structure/region_analysis.h"
#include "attack/structure/search.h"
#include "nn/network.h"
#include "trace/trace.h"

namespace sc::attack {

struct StructureAttackConfig {
  AnalysisConfig analysis;
  SearchConfig search;
  // Detect repeated fire-module motifs and apply the identical-modules
  // assumption automatically (paper's SqueezeNet analysis).
  bool assume_identical_modules = false;
};

struct StructureAttackResult {
  TraceAnalysis analysis;
  SearchResult search;

  std::size_t num_structures() const { return search.structures.size(); }
};

// Runs segmentation -> region analysis -> per-layer solving -> chained
// search on an observed memory trace.
StructureAttackResult RunStructureAttack(const trace::Trace& trace,
                                         const StructureAttackConfig& cfg);

// Builds a trainable network realizing one candidate structure.
struct InstantiateOptions {
  // Divide every channel/feature depth by this factor (>= 1) to make
  // training tractable; spatial geometry is preserved. The network input
  // depth and the class count are never scaled.
  int channel_divisor = 1;
  // Floor for scaled depths (deep nets with narrow bottleneck layers —
  // SqueezeNet squeeze stages — stop learning below a few channels).
  int min_channels = 1;
  // Divide the spatial extent by this factor (>= 1). Filter/stride/padding
  // parameters — the quantities being ranked — are preserved; windows are
  // clamped to the shrunken maps where necessary and a fused global pool
  // stays global. Cuts the training proxy's compute by the factor squared.
  int spatial_divisor = 1;
  // Class count for the final layer (overrides the candidate's D_OFM,
  // which came from the victim's class count).
  int num_classes = 0;  // 0 = keep candidate D_OFM
};

nn::Network InstantiateCandidate(const std::vector<LayerObservation>& obs,
                                 const CandidateStructure& cs,
                                 const InstantiateOptions& opts);

}  // namespace sc::attack

#endif  // SC_ATTACK_STRUCTURE_PIPELINE_H_
