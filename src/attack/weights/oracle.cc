#include "attack/weights/oracle.h"

#include <algorithm>
#include <limits>

#include "accel/stage.h"
#include "nn/conv2d.h"
#include "support/check.h"
#include "trace/trace.h"

namespace sc::attack {

namespace {

nn::Tensor Densify(const nn::Shape& shape,
                   const std::vector<SparsePixel>& pixels) {
  nn::Tensor t(shape);
  // Additive so duplicate positions mean the same thing to every oracle.
  for (const SparsePixel& p : pixels) t.at(p.c, p.y, p.x) += p.value;
  return t;
}

accel::AcceleratorConfig WithPruning(accel::AcceleratorConfig cfg) {
  cfg.zero_pruning = true;  // the §4 leak requires pruning
  return cfg;
}

}  // namespace

// --- AcceleratorOracle -------------------------------------------------------

AcceleratorOracle::AcceleratorOracle(const nn::Network& net, int target_node,
                                     accel::AcceleratorConfig cfg)
    : net_(net),
      target_node_(target_node),
      accel_(WithPruning(cfg)),
      map_(accel_.BuildMap(net)) {
  const std::vector<accel::Stage> stages = accel::BuildStages(net);
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].output_node == target_node_) {
      target_stage_ = static_cast<int>(i);
      break;
    }
  }
  SC_CHECK_MSG(target_stage_ != -1,
               "node " << target_node_
                       << " is not a stage output (fused away?)");
  num_channels_ = net.output_shape(target_node_)[0];
}

std::size_t AcceleratorOracle::channel_elems() const {
  const nn::Shape shape = net_.output_shape(target_node_);
  return static_cast<std::size_t>(shape[1]) *
         static_cast<std::size_t>(shape[2]);
}

bool AcceleratorOracle::SetActivationThreshold(float threshold) {
  accel_.config().relu_threshold_override = threshold;
  return true;
}

std::unique_ptr<ZeroCountOracle> AcceleratorOracle::Clone() const {
  // Rebuilds against the same victim network with the current accelerator
  // configuration (including any threshold override already applied).
  return std::make_unique<AcceleratorOracle>(net_, target_node_,
                                             accel_.config());
}

AcceleratorOracle::Counts AcceleratorOracle::Query(
    const std::vector<SparsePixel>& pixels) {
  ++queries_;
  const nn::Tensor input = Densify(net_.input_shape(), pixels);
  scratch_.Clear();
  accel_.Run(net_, input, &scratch_, &map_, &cache_);

  // Side-channel decode: compressed write bursts inside the target OFM
  // region. Burst size = header + nnz*(element+index); the channel is the
  // slot the burst's address falls into.
  const accel::Region region = map_.ofm(target_node_);
  const auto& cfg = accel_.config();
  const auto eb = static_cast<std::uint64_t>(cfg.element_bytes);
  const auto per_elem = eb + static_cast<std::uint64_t>(cfg.prune_index_bytes);
  const auto header = static_cast<std::uint64_t>(cfg.prune_header_bytes);

  const auto d = static_cast<std::uint64_t>(num_channels_);
  const auto shape = net_.output_shape(target_node_);
  const auto h = static_cast<std::uint64_t>(shape[1]);
  const auto w = static_cast<std::uint64_t>(shape[2]);
  const std::uint64_t slot = h * w * per_elem + h * header;

  Counts counts;
  counts.per_channel.assign(static_cast<std::size_t>(d), 0);
  // Chunk-view scan (no per-event facade materialization on the sweep's
  // hottest loop).
  const trace::TraceBuffer& buf = scratch_.buffer();
  for (std::size_t ci = 0; ci < buf.num_chunks(); ++ci) {
    const trace::TraceBuffer::ChunkView v = buf.chunk(ci);
    for (std::size_t i = 0; i < v.count; ++i) {
      if (static_cast<trace::MemOp>(v.ops[i]) != trace::MemOp::kWrite)
        continue;
      const std::uint64_t addr = v.addrs[i];
      if (addr < region.base || addr >= region.end()) continue;
      const std::uint64_t burst = v.bytes[i];
      SC_CHECK_MSG(burst >= header && (burst - header) % per_elem == 0,
                   "unexpected compressed burst size");
      const std::size_t nnz = (burst - header) / per_elem;
      counts.total += nnz;
      const std::uint64_t channel = (addr - region.base) / slot;
      SC_CHECK(channel < d);
      counts.per_channel[static_cast<std::size_t>(channel)] += nnz;
    }
  }
  return counts;
}

std::size_t AcceleratorOracle::ChannelNonZeros(
    const std::vector<SparsePixel>& pixels, int channel) {
  SC_CHECK(channel >= 0 && channel < num_channels_);
  return Query(pixels).per_channel[static_cast<std::size_t>(channel)];
}

std::size_t AcceleratorOracle::TotalNonZeros(
    const std::vector<SparsePixel>& pixels) {
  return Query(pixels).total;
}

// --- SparseConvOracle --------------------------------------------------------

SparseConvOracle::SparseConvOracle(StageSpec spec, nn::Tensor weights,
                                   nn::Tensor bias)
    : spec_(spec), weights_(std::move(weights)), bias_(std::move(bias)) {
  SC_CHECK_MSG(weights_.shape().rank() == 4, "weights must be {oc,ic,f,f}");
  SC_CHECK(weights_.shape()[1] == spec_.in_depth);
  SC_CHECK(weights_.shape()[2] == spec_.filter &&
           weights_.shape()[3] == spec_.filter);
  SC_CHECK(bias_.shape().rank() == 1 &&
           bias_.shape()[0] == weights_.shape()[0]);
  SC_CHECK(spec_.stride >= 1 && spec_.pad >= 0 && spec_.pad < spec_.filter);
  if (spec_.pool != nn::PoolKind::kNone) {
    SC_CHECK(spec_.pool_window >= 1 && spec_.pool_stride >= 1 &&
             spec_.pool_pad == 0);
    SC_CHECK_MSG(!(spec_.pool == nn::PoolKind::kMax && !spec_.relu_before_pool),
                 "max pooling is only modelled after the activation");
  }
}

int SparseConvOracle::num_channels() const { return weights_.shape()[0]; }

std::size_t SparseConvOracle::channel_elems() const {
  const int pw = pooled_width();
  return static_cast<std::size_t>(pw) * static_cast<std::size_t>(pw);
}

int SparseConvOracle::out_width() const {
  return nn::ConvOutWidth(spec_.in_width, spec_.filter, spec_.stride,
                          spec_.pad);
}

int SparseConvOracle::pooled_width() const {
  const int cw = out_width();
  if (spec_.pool == nn::PoolKind::kNone) return cw;
  return nn::PoolOutWidth(cw, spec_.pool_window, spec_.pool_stride,
                          spec_.pool_pad);
}

bool SparseConvOracle::SetActivationThreshold(float threshold) {
  if (!spec_.has_threshold_knob) return false;
  SC_CHECK(threshold >= 0.0f);
  spec_.relu_threshold = threshold;
  return true;
}

std::unique_ptr<ZeroCountOracle> SparseConvOracle::Clone() const {
  return std::make_unique<SparseConvOracle>(spec_, weights_, bias_);
}

std::size_t SparseConvOracle::ChannelCount(
    const std::vector<SparsePixel>& pixels, int oc) {
  const int cw = out_width();
  const float b = bias_.at(oc);
  const float thr = spec_.relu_threshold;

  // Convolution outputs differing from the all-zero-input baseline: only
  // those touched by the sparse pixels.
  // delta[(oy, ox)] = sum of w * pixel contributions.
  std::vector<std::pair<int, float>> deltas;  // key = oy*cw+ox
  auto add_delta = [&](int oy, int ox, float v) {
    const int key = oy * cw + ox;
    for (auto& kv : deltas) {
      if (kv.first == key) {
        kv.second += v;
        return;
      }
    }
    deltas.emplace_back(key, v);
  };
  for (const SparsePixel& p : pixels) {
    SC_CHECK(p.c >= 0 && p.c < spec_.in_depth);
    SC_CHECK(p.y >= 0 && p.y < spec_.in_width && p.x >= 0 &&
             p.x < spec_.in_width);
    if (p.value == 0.0f) continue;
    // Outputs (oy, ox) with oy*s - pad <= y < oy*s - pad + f.
    for (int ky = 0; ky < spec_.filter; ++ky) {
      const int num = p.y + spec_.pad - ky;
      if (num < 0 || num % spec_.stride != 0) continue;
      const int oy = num / spec_.stride;
      if (oy >= cw) continue;
      for (int kx = 0; kx < spec_.filter; ++kx) {
        const int numx = p.x + spec_.pad - kx;
        if (numx < 0 || numx % spec_.stride != 0) continue;
        const int ox = numx / spec_.stride;
        if (ox >= cw) continue;
        add_delta(oy, ox, weights_.at(oc, p.c, ky, kx) * p.value);
      }
    }
  }

  auto conv_at = [&](int oy, int ox) {
    const int key = oy * cw + ox;
    for (const auto& kv : deltas)
      if (kv.first == key) return b + kv.second;
    return b;
  };
  auto relu = [&](float v) { return v > thr ? v : 0.0f; };

  if (spec_.pool == nn::PoolKind::kNone) {
    // Baseline: every output is relu(b).
    std::size_t count = (b > thr) ? static_cast<std::size_t>(cw) *
                                        static_cast<std::size_t>(cw)
                                  : 0;
    for (const auto& kv : deltas) {
      const bool base_nz = b > thr;
      const bool now_nz = (b + kv.second) > thr;
      if (base_nz && !now_nz) --count;
      if (!base_nz && now_nz) ++count;
    }
    return count;
  }

  // Pooled: evaluate only windows whose members include a delta; all other
  // windows equal the baseline, which is analytic: every window has at
  // least one valid member of value b (relu'd for max-like pooling;
  // averaged with positive weight for pre-activation average pooling at
  // threshold 0), so the whole baseline OFM is non-zero iff b > threshold.
  const int pw = pooled_width();
  const float area = static_cast<float>(spec_.pool_window) *
                     static_cast<float>(spec_.pool_window);
  SC_CHECK_MSG(spec_.relu_before_pool || thr == 0.0f,
               "thresholded pre-activation average pooling is unsupported");

  // Collect candidate windows: those containing a delta output. Edge
  // windows of average pooling have fewer valid members than area, so every
  // touched window is evaluated with exact clipped-window arithmetic below.
  std::vector<int> window_keys;
  for (const auto& kv : deltas) {
    const int oy = kv.first / cw;
    const int ox = kv.first % cw;
    for (int qy = 0; qy < pw; ++qy) {
      const int wy0 = qy * spec_.pool_stride - spec_.pool_pad;
      if (oy < wy0) break;  // windows only move right/down with q
      if (oy >= wy0 + spec_.pool_window) continue;
      for (int qx = 0; qx < pw; ++qx) {
        const int wx0 = qx * spec_.pool_stride - spec_.pool_pad;
        if (ox < wx0) break;
        if (ox >= wx0 + spec_.pool_window) continue;
        const int key = qy * pw + qx;
        if (std::find(window_keys.begin(), window_keys.end(), key) ==
            window_keys.end())
          window_keys.push_back(key);
      }
    }
  }

  auto window_value = [&](int qy, int qx, bool with_deltas) {
    const int wy0 = qy * spec_.pool_stride - spec_.pool_pad;
    const int wx0 = qx * spec_.pool_stride - spec_.pool_pad;
    if (spec_.pool == nn::PoolKind::kMax) {
      float m = -std::numeric_limits<float>::infinity();
      for (int dy = 0; dy < spec_.pool_window; ++dy) {
        const int oy = wy0 + dy;
        if (oy < 0 || oy >= cw) continue;
        for (int dx = 0; dx < spec_.pool_window; ++dx) {
          const int ox = wx0 + dx;
          if (ox < 0 || ox >= cw) continue;
          m = std::max(m, relu(with_deltas ? conv_at(oy, ox) : b));
        }
      }
      return m;
    }
    float sum = 0.0f;
    for (int dy = 0; dy < spec_.pool_window; ++dy) {
      const int oy = wy0 + dy;
      if (oy < 0 || oy >= cw) continue;
      for (int dx = 0; dx < spec_.pool_window; ++dx) {
        const int ox = wx0 + dx;
        if (ox < 0 || ox >= cw) continue;
        const float v = with_deltas ? conv_at(oy, ox) : b;
        sum += spec_.relu_before_pool ? relu(v) : v;
      }
    }
    const float pooled = sum / area;
    return spec_.relu_before_pool ? pooled : relu(pooled);
  };

  // Analytic baseline (all windows), then correct the touched ones.
  std::size_t count = (b > thr) ? static_cast<std::size_t>(pw) *
                                      static_cast<std::size_t>(pw)
                                : 0;
  for (int key : window_keys) {
    const int qy = key / pw;
    const int qx = key % pw;
    const bool base_nz = window_value(qy, qx, false) != 0.0f;
    const bool now_nz = window_value(qy, qx, true) != 0.0f;
    if (base_nz && !now_nz) --count;
    if (!base_nz && now_nz) ++count;
  }
  return count;
}

std::size_t SparseConvOracle::ChannelNonZeros(
    const std::vector<SparsePixel>& pixels, int channel) {
  ++queries_;
  SC_CHECK(channel >= 0 && channel < num_channels());
  return ChannelCount(pixels, channel);
}

std::size_t SparseConvOracle::TotalNonZeros(
    const std::vector<SparsePixel>& pixels) {
  ++queries_;
  std::size_t total = 0;
  for (int oc = 0; oc < num_channels(); ++oc)
    total += ChannelCount(pixels, oc);
  return total;
}

}  // namespace sc::attack
