#include "attack/weights/attack.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <optional>

#include "nn/geometry.h"
#include "obs/metrics.h"
#include "support/check.h"
#include "support/thread_pool.h"

namespace sc::attack {

namespace {

// Weight-attack metrics (DESIGN.md §9). Updated from pool workers during
// parallel sweeps; counters are atomics, so no extra locking.
struct WeightMetrics {
  obs::Counter& queries =
      obs::Registry::Get().GetCounter("attack.weights.oracle_queries");
  obs::Counter& bisect_iters =
      obs::Registry::Get().GetCounter("attack.weights.bisect_iters");
  obs::Counter& rebrackets =
      obs::Registry::Get().GetCounter("attack.weights.rebrackets");
  obs::Counter& filters =
      obs::Registry::Get().GetCounter("attack.weights.filters_recovered");
  obs::Histogram& queries_per_filter = obs::Registry::Get().GetHistogram(
      "attack.weights.queries_per_filter");
};

WeightMetrics& Metrics() {
  static WeightMetrics m;
  return m;
}

// Affected convolution output: conv output (oy, ox) whose value changed
// because of the crafted pixels; sigma = sum of (w/b) * pixel over known
// weights, i.e. its value is b * (sigma + 1). Outputs touched through the
// still-unknown weight are marked contaminated and must lie in the
// excluded window.
struct Affected {
  int oy = 0;
  int ox = 0;
  double sigma = 0.0;
  bool contaminated = false;
};

}  // namespace

WeightAttack::WeightAttack(ZeroCountOracle& oracle,
                           const SparseConvOracle::StageSpec& geometry,
                           WeightAttackConfig cfg)
    : oracle_(oracle), geo_(geometry), cfg_(cfg) {
  SC_CHECK(geo_.filter >= 1 && geo_.stride >= 1 && geo_.pad >= 0);
  // A non-zero geo_.relu_threshold means the caller has set the victim's
  // tunable threshold to T; recovery then works in *effective-bias* units
  // (b - T), and RecoverFilter's ratios are w / (b - T). The caller must
  // have configured the oracle to the same T.
  SC_CHECK_MSG(geo_.relu_threshold >= 0.0f, "negative threshold");
  SC_CHECK_MSG(geo_.relu_threshold == 0.0f ||
                   geo_.pool != nn::PoolKind::kAvg || geo_.relu_before_pool,
               "thresholded pre-activation average pooling is unsupported");
  if (geo_.pool == nn::PoolKind::kAvg && !geo_.relu_before_pool) {
    SC_CHECK_MSG(geo_.pool_stride >= geo_.pool_window,
                 "pre-activation average pooling must be non-overlapping "
                 "for the linear-window attack");
  }
  SC_CHECK_MSG(geo_.pool == nn::PoolKind::kNone || geo_.pool_pad == 0,
               "pooled attack assumes unpadded pooling");
}

namespace {

int ConvWidth(const SparseConvOracle::StageSpec& g) {
  return nn::ConvOutWidth(g.in_width, g.filter, g.stride, g.pad);
}

int PooledWidth(const SparseConvOracle::StageSpec& g) {
  const int cw = ConvWidth(g);
  return g.pool == nn::PoolKind::kNone
             ? cw
             : nn::PoolOutWidth(cw, g.pool_window, g.pool_stride, g.pool_pad);
}

// Enumerates the affected outputs for a set of pixels in one input channel,
// accumulating known-ratio contributions. `unknown` marks the single
// not-yet-recovered weight (or {-1,-1,-1} when all contributions are known).
std::vector<Affected> AffectedOutputs(const SparseConvOracle::StageSpec& g,
                                      const std::vector<SparsePixel>& pixels,
                                      const nn::Tensor& ratio,
                                      const std::vector<bool>& known,
                                      int uc, int ui, int uj) {
  const int cw = ConvWidth(g);
  const int f = g.filter;
  std::vector<Affected> out;
  auto slot = [&](int oy, int ox) -> Affected& {
    for (Affected& a : out)
      if (a.oy == oy && a.ox == ox) return a;
    out.push_back(Affected{oy, ox, 0.0, false});
    return out.back();
  };
  for (const SparsePixel& p : pixels) {
    if (p.value == 0.0f) continue;
    for (int ky = 0; ky < f; ++ky) {
      const int num = p.y + g.pad - ky;
      if (num < 0 || num % g.stride != 0) continue;
      const int oy = num / g.stride;
      if (oy >= cw) continue;
      for (int kx = 0; kx < f; ++kx) {
        const int numx = p.x + g.pad - kx;
        if (numx < 0 || numx % g.stride != 0) continue;
        const int ox = numx / g.stride;
        if (ox >= cw) continue;
        Affected& a = slot(oy, ox);
        if (p.c == uc && ky == ui && kx == uj) {
          a.contaminated = true;
        } else {
          const std::size_t idx = static_cast<std::size_t>(
              (p.c * f + ky) * f + kx);
          SC_CHECK_MSG(known[idx],
                       "attack touched an unrecovered weight out of order");
          a.sigma += static_cast<double>(ratio.at(p.c, ky, kx)) *
                     static_cast<double>(p.value);
        }
      }
    }
  }
  return out;
}

// Sign of a conv output in bias units: value = b * (sigma + 1).
bool ValuePositive(double sigma, bool bias_positive) {
  return bias_positive ? (sigma + 1.0 > 0.0) : (sigma + 1.0 < 0.0);
}

}  // namespace

long long WeightAttack::PredictKnown(const std::vector<SparsePixel>& pixels,
                                     const nn::Tensor& ratio,
                                     const std::vector<bool>& known,
                                     bool bias_positive, int uc, int ui,
                                     int uj) {
  // Note: the unknown weight only ever touches conv output (0,0) (pixels
  // are placed so), and the excluded window is the pooled window (0,0).
  const std::vector<Affected> affected =
      AffectedOutputs(geo_, pixels, ratio, known, uc, ui, uj);
  const int cw = ConvWidth(geo_);

  if (geo_.pool == nn::PoolKind::kNone) {
    long long count = 0;
    long long baseline_cells =
        static_cast<long long>(cw) * cw - 1;  // all but (0,0)
    for (const Affected& a : affected) {
      if (a.oy == 0 && a.ox == 0) continue;
      --baseline_cells;
      if (ValuePositive(a.sigma, bias_positive)) ++count;
    }
    if (bias_positive) count += baseline_cells;
    return count;
  }

  const int pw = PooledWidth(geo_);
  const int m = geo_.pool_window;
  const int ps = geo_.pool_stride;
  const bool max_like =
      geo_.pool == nn::PoolKind::kMax || geo_.relu_before_pool;

  // Windows containing an affected output (touched); everything else is at
  // baseline: untouched windows always hold a valid member of value b, so
  // they are non-zero iff the (effective) bias is positive.
  std::vector<std::pair<int, int>> touched;
  for (const Affected& a : affected) {
    for (int qy = 0; qy < pw; ++qy) {
      const int wy0 = qy * ps;
      if (a.oy < wy0) break;
      if (a.oy >= wy0 + m) continue;
      for (int qx = 0; qx < pw; ++qx) {
        const int wx0 = qx * ps;
        if (a.ox < wx0) break;
        if (a.ox >= wx0 + m) continue;
        if (std::find(touched.begin(), touched.end(),
                      std::make_pair(qy, qx)) == touched.end())
          touched.emplace_back(qy, qx);
      }
    }
  }

  long long count =
      bias_positive ? static_cast<long long>(pw) * pw - 1 : 0;  // excl (0,0)
  for (const auto& [qy, qx] : touched) {
    if (qy == 0 && qx == 0) continue;  // excluded window (contains (0,0))
    const int wy0 = qy * ps;
    const int wx0 = qx * ps;
    int n_valid = 0;
    int n_affected = 0;
    bool any_positive_affected = false;
    double sigma_sum = 0.0;
    for (int dy = 0; dy < m; ++dy) {
      const int oy = wy0 + dy;
      if (oy >= cw) continue;
      for (int dx = 0; dx < m; ++dx) {
        const int ox = wx0 + dx;
        if (ox >= cw) continue;
        ++n_valid;
        for (const Affected& a : affected) {
          if (a.oy == oy && a.ox == ox) {
            SC_CHECK_MSG(!a.contaminated,
                         "unknown weight leaked outside window (0,0)");
            ++n_affected;
            sigma_sum += a.sigma;
            if (ValuePositive(a.sigma, bias_positive))
              any_positive_affected = true;
            break;
          }
        }
      }
    }
    bool nonzero;
    if (max_like) {
      // Non-zero iff any member's activation is positive.
      nonzero = (bias_positive && n_valid > n_affected) ||
                any_positive_affected;
    } else {
      // Pre-activation average: value = b*(sigma_sum + n_valid)/area.
      const double tau = sigma_sum + static_cast<double>(n_valid);
      nonzero = bias_positive ? tau > 0.0 : tau < 0.0;
    }
    count += (nonzero ? 1 : 0) - (bias_positive ? 1 : 0);
  }
  return count;
}

long long WeightAttack::Residual(int channel,
                                 const std::vector<SparsePixel>& pixels,
                                 const nn::Tensor& ratio,
                                 const std::vector<bool>& known,
                                 bool bias_positive, int uc, int ui,
                                 int uj) {
  const long long measured = static_cast<long long>(
      oracle_.ChannelNonZeros(pixels, channel));
  return measured -
         PredictKnown(pixels, ratio, known, bias_positive, uc, ui, uj);
}

RecoveredFilter WeightAttack::RecoverFilter(int channel) {
  // Cached once: the bisection loop below records per iteration, and the
  // function-local-static guard inside Metrics() must not be paid there.
  WeightMetrics& metrics = Metrics();
  const int f = geo_.filter;
  const int ic = geo_.in_depth;
  const int s = geo_.stride;
  const int p = geo_.pad;
  const int m = geo_.pool == nn::PoolKind::kNone ? 1 : geo_.pool_window;
  const bool max_like =
      geo_.pool != nn::PoolKind::kNone &&
      (geo_.pool == nn::PoolKind::kMax || geo_.relu_before_pool);

  RecoveredFilter rec;
  rec.channel = channel;
  rec.ratio = nn::Tensor(nn::Shape{ic, f, f});
  rec.is_zero.assign(static_cast<std::size_t>(ic * f * f), false);
  rec.failed.assign(static_cast<std::size_t>(ic * f * f), false);
  std::vector<bool> known(static_cast<std::size_t>(ic * f * f), false);

  const std::uint64_t q0 = oracle_.queries();

  // Bias sign from the all-zero baseline (paper: the count itself leaks).
  const std::size_t count0 = oracle_.ChannelNonZeros({}, channel);
  rec.bias_positive = count0 > 0;

  if (max_like && rec.bias_positive) {
    // Every pooled window contains an always-positive baseline member, so
    // the count never changes at threshold 0: the ratio attack is blind.
    // (RecoverAbsolute with a threshold knob still works — paper §4.1.)
    rec.failed.assign(rec.failed.size(), true);
    rec.queries = oracle_.queries() - q0;
    metrics.queries.Add(rec.queries);
    metrics.queries_per_filter.Record(rec.queries);
    return rec;
  }

  auto idx = [&](int c, int i, int j) {
    return static_cast<std::size_t>((c * f + i) * f + j);
  };
  const double R = cfg_.search_radius;

  enum class BisectStatus { kCrossing, kFlat, kInconsistent };
  struct BisectResult {
    BisectStatus status;
    double x;
  };

  // Generic single-flip bisection of the residual over pixel value theta;
  // (uc, ui, uj) is the weight being recovered. With max_rebrackets > 0
  // every verdict is re-verified against fresh endpoint queries (a noisy
  // count can fake a flat bracket or send the search into the wrong
  // sub-interval); contradicted searches restart from the full radius.
  auto bisect = [&](auto&& make_pixels, int uc, int ui,
                    int uj) -> BisectResult {
    auto res = [&](double theta) {
      return Residual(channel, make_pixels(theta), rec.ratio, known,
                      rec.bias_positive, uc, ui, uj);
    };
    const int verify = cfg_.max_rebrackets;
    for (int attempt = 0; attempt <= std::max(0, verify); ++attempt) {
      cfg_.cancel.ThrowIfStopped("weight bisection");
      if (attempt > 0) {
        ++rec.rebrackets;
        metrics.rebrackets.Add();
      }
      double lo = -R, hi = R;
      const long long r_lo = res(lo);
      if (res(hi) == r_lo) {
        // Flat bracket: no crossing inside the radius — unless an endpoint
        // count was perturbed. Confirm both endpoints before concluding.
        if (verify > 0 && (res(lo) != r_lo || res(hi) != r_lo)) continue;
        return {BisectStatus::kFlat, 0.0};
      }
      for (int it = 0; it < cfg_.max_bisect_iters; ++it) {
        metrics.bisect_iters.Add();
        const double mid = 0.5 * (lo + hi);
        if (res(mid) == r_lo) {
          lo = mid;
        } else {
          hi = mid;
        }
        if (hi - lo <
            cfg_.rel_tolerance * std::max(1.0, std::fabs(0.5 * (lo + hi))))
          break;
      }
      // Bracket consistency: the converged bracket must still straddle the
      // flip (res(lo) at the baseline residual, res(hi) off it).
      if (verify > 0 && (res(lo) != r_lo || res(hi) == r_lo)) continue;
      return {BisectStatus::kCrossing, 0.5 * (lo + hi)};
    }
    return {BisectStatus::kInconsistent, 0.0};
  };

  for (int c = 0; c < ic; ++c) {
    for (int i = 0; i < f; ++i) {
      for (int j = 0; j < f; ++j) {
        cfg_.cancel.ThrowIfStopped("weight recovery");
        const std::size_t id = idx(c, i, j);
        // The pixel isolating weight (i, j) sits at (i - pad, j - pad):
        // it reaches (i, j) exactly at conv output (0,0).
        const int py = i - p;
        const int px = j - p;
        if (py < 0 || px < 0 || py >= geo_.in_width || px >= geo_.in_width) {
          rec.failed[id] = true;  // shadowed by padding geometry
          known[id] = true;       // treat as 0 in later predictions
          continue;
        }

        // Interfering outputs: affected outputs sharing pooled window
        // (0,0), i.e. (t, u) != (0,0) with t,u < pool window and weights
        // (i - s*t, j - s*u) — all recovered earlier (row-major order).
        std::vector<std::pair<int, int>> interferers;  // weight coords
        for (int t = 0; t * s <= i && t < m; ++t) {
          for (int u = 0; u * s <= j && u < m; ++u) {
            if (t == 0 && u == 0) continue;
            interferers.emplace_back(i - s * t, j - s * u);
          }
        }

        double recovered = 0.0;
        bool got = false;

        if (geo_.pool == nn::PoolKind::kAvg && !geo_.relu_before_pool) {
          // Linear window: one crossing even with interference.
          double known_sum = 0.0;
          for (auto& [ky, kx] : interferers)
            known_sum += rec.ratio.at(c, ky, kx);
          // Valid members of window (0,0).
          const int cw = ConvWidth(geo_);
          const int n_valid =
              std::min(m, cw) * std::min(m, cw);
          auto pixels = [&](double x) {
            return std::vector<SparsePixel>{
                {c, py, px, static_cast<float>(x)}};
          };
          const BisectResult br = bisect(pixels, c, i, j);
          if (br.status == BisectStatus::kCrossing) {
            recovered = -static_cast<double>(n_valid) / br.x - known_sum;
            got = true;
          } else if (br.status == BisectStatus::kFlat && known_sum == 0.0) {
            got = true;  // flat window: zero weight
            recovered = 0.0;
          } else {
            rec.failed[id] = true;
          }
        } else if (interferers.empty()) {
          // Direct crossing: value = b*(rho*x + 1), crossing at -1/rho.
          auto pixels = [&](double x) {
            return std::vector<SparsePixel>{
                {c, py, px, static_cast<float>(x)}};
          };
          const BisectResult br = bisect(pixels, c, i, j);
          if (br.status == BisectStatus::kCrossing) {
            recovered = -1.0 / br.x;
            got = true;
          } else if (br.status == BisectStatus::kFlat) {
            got = true;  // no crossing in radius: zero weight (paper §4.1)
            recovered = 0.0;
          } else {
            rec.failed[id] = true;  // contradictory counts even after retry
          }
        } else {
          // Pinned two-pixel search (paper Eq. (10) generalized): fix the
          // isolating pixel at v such that every interferer stays pruned
          // (bias is negative here), then sweep a helper pixel that reaches
          // output (0,0) through an already-known non-zero weight.
          double lo = -R, hi = R;
          for (auto& [ky, kx] : interferers) {
            const double r = rec.ratio.at(c, ky, kx);
            // b < 0: need rho*v + 1 >= 0.
            if (r > 0.0) lo = std::max(lo, -1.0 / r);
            if (r < 0.0) hi = std::min(hi, -1.0 / r);
          }
          // Helper weight (hk, hl) in [pad, stride) so its pixel touches
          // only output (0,0).
          int hk = -1, hl = -1;
          for (int a = p; a < s && hk < 0; ++a)
            for (int bcol = p; bcol < s && hk < 0; ++bcol)
              if (known[idx(c, a, bcol)] &&
                  rec.ratio.at(c, a, bcol) != 0.0f) {
                hk = a;
                hl = bcol;
              }
          if (lo >= hi || hk < 0) {
            rec.failed[id] = true;
          } else {
            // Pin magnitude: aim for |rho_unknown * v| ~ 1 so the helper's
            // crossing stays inside the search radius. The unknown ratio's
            // scale is estimated from the ratios recovered so far; fall
            // back to progressively smaller pins when the crossing escapes.
            double rho_typ = 0.0;
            int nonzero_known = 0;
            for (std::size_t q = 0; q < known.size(); ++q) {
              if (known[q] && rec.ratio[q] != 0.0f) {
                rho_typ += std::fabs(rec.ratio[q]);
                ++nonzero_known;
              }
            }
            rho_typ = nonzero_known ? rho_typ / nonzero_known : 1.0;

            const double rho_h = rec.ratio.at(c, hk, hl);
            bool done = false;
            for (double scale : {1.0, 0.2, 0.04, 5.0, 0.008}) {
              for (double sign : {1.0, -1.0}) {
                double v = sign * scale / rho_typ;
                if (v <= lo || v >= hi || v == 0.0) continue;
                auto pixels = [&](double h) {
                  return std::vector<SparsePixel>{
                      {c, py, px, static_cast<float>(v)},
                      {c, hk - p, hl - p, static_cast<float>(h)}};
                };
                const BisectResult br = bisect(pixels, c, i, j);
                if (br.status == BisectStatus::kCrossing) {
                  // Crossing: rho*v + rho_h*h + 1 == 0.
                  recovered = (-1.0 - rho_h * br.x) / v;
                  got = true;
                  done = true;
                  break;
                }
              }
              if (done) break;
            }
            if (!done) rec.failed[id] = true;
          }
        }

        if (got) {
          if (std::fabs(recovered) <= 1.0 / R) {
            rec.is_zero[id] = true;
            rec.ratio.at(c, i, j) = 0.0f;
          } else {
            rec.ratio.at(c, i, j) = static_cast<float>(recovered);
          }
        }
        known[id] = true;
      }
    }
  }
  rec.queries = oracle_.queries() - q0;
  metrics.queries.Add(rec.queries);
  metrics.queries_per_filter.Record(rec.queries);
  metrics.filters.Add();
  return rec;
}

std::optional<AbsoluteFilter> WeightAttack::RecoverAbsolute(
    int channel, const RecoveredFilter& ratios) {
  const int f = geo_.filter;
  const int s = geo_.stride;
  const int p = geo_.pad;

  // Anchor: a non-zero weight whose isolating pixel touches only conv
  // output (0,0) (no interference regardless of pooling): (i, j) in
  // [pad, pad + stride) works because further outputs need ky = i - s*t.
  int ac = -1, ai = -1, aj = -1;
  for (int c = 0; c < geo_.in_depth && ac < 0; ++c)
    for (int i = p; i < std::min(f, p + s) && ac < 0; ++i)
      for (int j = p; j < std::min(f, p + s) && ac < 0; ++j)
        if (!ratios.zero_at(c, i, j, f) &&
            ratios.ratio.at(c, i, j) != 0.0f &&
            !ratios.failed[static_cast<std::size_t>((c * f + i) * f + j)]) {
          ac = c;
          ai = i;
          aj = j;
        }
  if (ac < 0) return std::nullopt;

  // Find a threshold high enough to prune the whole baseline OFM.
  float t1 = 1.0f;
  bool knob = oracle_.SetActivationThreshold(t1);
  if (!knob) return std::nullopt;
  for (int it = 0; it < 64; ++it) {
    if (oracle_.ChannelNonZeros({}, channel) == 0) break;
    t1 *= 2.0f;
    SC_CHECK_MSG(it + 1 < 64, "cannot prune baseline: threshold too small");
    oracle_.SetActivationThreshold(t1);
  }
  const float t2 = 2.0f * t1;

  // With the baseline fully pruned, the count is exactly the indicator of
  // the anchor's window, flipping where w*x + b crosses the threshold.
  auto crossing_at = [&](float threshold) -> std::optional<double> {
    oracle_.SetActivationThreshold(threshold);
    auto count = [&](double x) {
      return oracle_.ChannelNonZeros(
          {{ac, ai - p, aj - p, static_cast<float>(x)}}, channel);
    };
    double lo = -static_cast<double>(cfg_.search_radius);
    double hi = static_cast<double>(cfg_.search_radius);
    const std::size_t r_lo = count(lo);
    if (count(hi) == r_lo) return std::nullopt;
    for (int it = 0; it < cfg_.max_bisect_iters; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (count(mid) == r_lo) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (hi - lo <
          cfg_.rel_tolerance * std::max(1.0, std::fabs(0.5 * (lo + hi))))
        break;
    }
    return 0.5 * (lo + hi);
  };

  const std::optional<double> x1 = crossing_at(t1);
  const std::optional<double> x2 = crossing_at(t2);
  oracle_.SetActivationThreshold(0.0f);  // restore the victim's default
  if (!x1 || !x2 || *x1 == *x2) return std::nullopt;

  // w*x1 + b = t1, w*x2 + b = t2  =>  w = (t2 - t1) / (x2 - x1).
  const double w_anchor =
      (static_cast<double>(t2) - static_cast<double>(t1)) / (*x2 - *x1);
  const double bias = static_cast<double>(t1) - w_anchor * *x1;

  AbsoluteFilter abs;
  abs.channel = channel;
  abs.bias = static_cast<float>(bias);
  abs.weights = nn::Tensor(nn::Shape{geo_.in_depth, f, f});
  for (int c = 0; c < geo_.in_depth; ++c)
    for (int i = 0; i < f; ++i)
      for (int j = 0; j < f; ++j)
        abs.weights.at(c, i, j) = static_cast<float>(
            static_cast<double>(ratios.ratio.at(c, i, j)) * bias);
  return abs;
}

std::optional<float> WeightAttack::FindBiasViaThreshold(int channel) {
  if (!oracle_.SetActivationThreshold(0.0f)) return std::nullopt;
  if (oracle_.ChannelNonZeros({}, channel) == 0) {
    return std::nullopt;  // bias <= 0: the baseline leaks nothing more
  }
  // Bracket: double until the baseline disappears.
  float hi = 1.0f;
  for (int it = 0; it < 64; ++it) {
    oracle_.SetActivationThreshold(hi);
    if (oracle_.ChannelNonZeros({}, channel) == 0) break;
    hi *= 2.0f;
    SC_CHECK_MSG(it + 1 < 64, "bias beyond threshold search range");
  }
  float lo = 0.0f;
  for (int it = 0; it < cfg_.max_bisect_iters; ++it) {
    const float mid = 0.5f * (lo + hi);
    oracle_.SetActivationThreshold(mid);
    if (oracle_.ChannelNonZeros({}, channel) == 0) {
      hi = mid;
    } else {
      lo = mid;
    }
    if (hi - lo < cfg_.rel_tolerance *
                      std::max(1.0f, std::fabs(0.5f * (lo + hi))))
      break;
  }
  oracle_.SetActivationThreshold(0.0f);
  return 0.5f * (lo + hi);
}

std::vector<std::vector<float>> WeightAttack::RecoverRatioSetsAggregate() {
  SC_CHECK_MSG(geo_.pool == nn::PoolKind::kNone,
               "aggregate-mode recovery is implemented for un-pooled layers");
  const int f = geo_.filter;
  const int p = geo_.pad;
  std::vector<std::vector<float>> sets;

  for (int c = 0; c < geo_.in_depth; ++c) {
    for (int i = 0; i < f; ++i) {
      for (int j = 0; j < f; ++j) {
        std::vector<float> crossings;
        const int py = i - p;
        const int px = j - p;
        if (py < 0 || px < 0 || py >= geo_.in_width ||
            px >= geo_.in_width) {
          sets.push_back(std::move(crossings));
          continue;
        }
        auto count = [&](double x) {
          return static_cast<long long>(oracle_.TotalNonZeros(
              {{c, py, px, static_cast<float>(x)}}));
        };
        // Grid sweep, then bisect every cell whose endpoint counts differ.
        // Two resolutions: coarse over the whole radius, fine over the
        // central band where weight/bias ratios concentrate — crossings
        // closer than the fine step can still merge (a limitation the
        // paper shares: only count *changes* are observable).
        auto sweep = [&](double lo_r, double hi_r, int cells) {
          const double step = (hi_r - lo_r) / cells;
          long long prev = count(lo_r);
          for (int g = 1; g <= cells; ++g) {
            const double hi_x = lo_r + g * step;
            const long long cur = count(hi_x);
            if (cur != prev) {
              double lo = hi_x - step, hi = hi_x;
              const long long r_lo = prev;
              for (int it = 0; it < cfg_.max_bisect_iters; ++it) {
                const double mid = 0.5 * (lo + hi);
                if (count(mid) == r_lo) {
                  lo = mid;
                } else {
                  hi = mid;
                }
                if (hi - lo < cfg_.rel_tolerance *
                                  std::max(1.0, std::fabs(0.5 * (lo + hi))))
                  break;
              }
              crossings.push_back(static_cast<float>(0.5 * (lo + hi)));
            }
            prev = cur;
          }
        };
        const double R = cfg_.search_radius;
        const double kFineBand = std::min(64.0, R);
        sweep(-R, -kFineBand, 1 << 9);
        sweep(-kFineBand, kFineBand, 1 << 13);
        sweep(kFineBand, R, 1 << 9);
        sets.push_back(std::move(crossings));
      }
    }
  }
  return sets;
}

std::vector<RecoveredFilter> RecoverAllFilters(
    ZeroCountOracle& oracle, const SparseConvOracle::StageSpec& geometry,
    const WeightAttackConfig& cfg) {
  const int n = oracle.num_channels();
  std::vector<RecoveredFilter> out(static_cast<std::size_t>(n));
  auto sweep = [&](ZeroCountOracle& orc, std::int64_t lo, std::int64_t hi) {
    WeightAttack attack(orc, geometry, cfg);
    for (std::int64_t k = lo; k < hi; ++k)
      out[static_cast<std::size_t>(k)] =
          attack.RecoverFilter(static_cast<int>(k));
  };

  const bool cloneable = oracle.Clone() != nullptr;
  if (!cloneable || n < 2 || support::ThreadPool::GlobalThreads() <= 1 ||
      support::InParallelRegion()) {
    sweep(oracle, 0, n);
    return out;
  }

  std::mutex shared_mu;
  support::ParallelFor(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    const std::unique_ptr<ZeroCountOracle> clone = oracle.Clone();
    if (clone) {
      sweep(*clone, lo, hi);
      return;
    }
    // An oracle may stop cloning mid-run (e.g. a probe-count budget even
    // though the initial probe succeeded). Serialize such chunks on the
    // shared oracle: each filter's query sequence is then still contiguous,
    // so the recovered ratios match the serial loop.
    const std::lock_guard<std::mutex> lock(shared_mu);
    sweep(oracle, lo, hi);
  });
  return out;
}

}  // namespace sc::attack
