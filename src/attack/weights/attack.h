// Weight reverse engineering through zero pruning (paper §4, Algorithm 2).
//
// The adversary crafts inputs that are zero except for one or two pixels,
// watches the non-zero count of the target layer's OFM, and binary-searches
// the pixel value for the point where an output crosses the activation
// threshold. Each crossing fixes one ratio w_{c,i,j}/b. Extensions:
//   - fused max pooling merges outputs: a second, already-understood pixel
//     pins the interfering outputs below zero (paper Eq. (10));
//   - fused average pooling (accumulated before the activation) scales the
//     crossing by the window arithmetic (paper Eq. (11); we derive the
//     exact form for our clipped-window semantics);
//   - weights that never produce a crossing inside the search radius are
//     zero (paper: "zero-valued weights can be identified from missing
//     zero-crossing points");
//   - with a tunable activation threshold (Minerva-style), two threshold
//     settings turn one ratio into absolute w and b values (paper §4.1,
//     last paragraph).
#ifndef SC_ATTACK_WEIGHTS_ATTACK_H_
#define SC_ATTACK_WEIGHTS_ATTACK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "attack/weights/oracle.h"
#include "nn/tensor.h"
#include "support/cancel.h"

namespace sc::attack {

struct WeightAttackConfig {
  // Crossings with |x| beyond this radius are treated as zero weights.
  float search_radius = 1.0e4f;
  // Bisection stops when the bracket is narrower than
  // rel_tolerance * max(1, |x|).
  float rel_tolerance = 1.0e-7f;
  int max_bisect_iters = 100;
  // Noisy-oracle self-healing (DESIGN.md §8): after each bisection the
  // converged bracket is re-verified against fresh endpoint queries; a
  // count perturbation that misdirected the search leaves endpoints that
  // no longer straddle the flip, and the search restarts from the full
  // radius — up to this many times. 0 (default) disables the checks and
  // keeps query sequences exactly those of the noise-free attack.
  int max_rebrackets = 0;

  // Cooperative cancellation (DESIGN.md §12): polled before every weight
  // position and every bisection attempt. On stop RecoverFilter throws
  // sc::CancelledError / sc::DeadlineExceededError. Default never stops.
  support::CancelToken cancel;
};

// Ratios recovered for one output channel (filter).
struct RecoveredFilter {
  int channel = -1;
  bool bias_positive = false;
  nn::Tensor ratio;           // {ic, f, f}: w / b; 0 where is_zero
  std::vector<bool> is_zero;  // row-major (c, i, j): no crossing found
  std::vector<bool> failed;   // positions the attack could not isolate
  std::uint64_t queries = 0;
  // Bisections restarted after a bracket-consistency contradiction (only
  // with WeightAttackConfig::max_rebrackets > 0).
  std::uint64_t rebrackets = 0;

  bool zero_at(int c, int i, int j, int f) const {
    return is_zero[static_cast<std::size_t>((c * f + i) * f + j)];
  }
};

// Absolute weights after the threshold-assisted extension.
struct AbsoluteFilter {
  int channel = -1;
  float bias = 0.0f;
  nn::Tensor weights;  // {ic, f, f}
};

class WeightAttack {
 public:
  // `geometry` carries only public facts (layer geometry recovered by the
  // structure attack + the accelerator's fusion/activation conventions).
  // The oracle holds the secrets.
  WeightAttack(ZeroCountOracle& oracle,
               const SparseConvOracle::StageSpec& geometry,
               WeightAttackConfig cfg);

  // Algorithm 2 generalized: recovers w/b for every weight of one filter
  // using per-channel counts.
  RecoveredFilter RecoverFilter(int channel);

  // Threshold-assisted absolute recovery: needs a filter's ratios and a
  // victim exposing the activation-threshold knob. Returns nullopt when
  // the oracle has no knob or no usable non-zero anchor weight exists.
  std::optional<AbsoluteFilter> RecoverAbsolute(
      int channel, const RecoveredFilter& ratios);

  // Binary-searches the smallest activation threshold that prunes the
  // channel's whole baseline OFM; for a positive bias under ReLU/max
  // pooling that threshold *is* the bias. Requires the threshold knob.
  // Returns nullopt without a knob or when the baseline is already zero
  // (bias <= 0). Restores threshold 0 before returning.
  std::optional<float> FindBiasViaThreshold(int channel);

  // Aggregate-count variant (minimal leak; no per-channel attribution):
  // for each filter position, the unordered set of crossing points over
  // all filters. Only supported for un-pooled layers.
  std::vector<std::vector<float>> RecoverRatioSetsAggregate();

 private:
  // Residual = measured channel count minus the predicted count of every
  // window not containing conv output (0,0), in ratio arithmetic.
  // (uc, ui, uj) names the weight currently being recovered so its
  // contributions are excluded from the prediction.
  long long Residual(int channel, const std::vector<SparsePixel>& pixels,
                     const nn::Tensor& ratio,
                     const std::vector<bool>& known, bool bias_positive,
                     int uc, int ui, int uj);

  // Predicted non-zero count of all windows/outputs that do NOT contain
  // conv output (0,0), given known ratios.
  long long PredictKnown(const std::vector<SparsePixel>& pixels,
                         const nn::Tensor& ratio,
                         const std::vector<bool>& known, bool bias_positive,
                         int uc, int ui, int uj);

  ZeroCountOracle& oracle_;
  SparseConvOracle::StageSpec geo_;
  WeightAttackConfig cfg_;
};

// Runs RecoverFilter for every output channel of the oracle, spreading the
// per-filter binary-search sweeps over the global thread pool. Each worker
// chunk queries its own oracle clone (ZeroCountOracle::Clone), so the
// query sequences — and therefore the recovered ratios and per-filter query
// counts — are identical to a serial RecoverFilter loop. Falls back to the
// serial loop on `oracle` itself when the oracle is not cloneable or only
// one thread is configured.
std::vector<RecoveredFilter> RecoverAllFilters(
    ZeroCountOracle& oracle, const SparseConvOracle::StageSpec& geometry,
    const WeightAttackConfig& cfg);

}  // namespace sc::attack

#endif  // SC_ATTACK_WEIGHTS_ATTACK_H_
